(* The counterexample corpus: exact serialization round trips, crash
   tolerance (corrupt/truncated files quarantined — never fatal; a
   SIGKILL mid-append never tears the file), shard merge dedup, replay
   semantics (exact-signature hits reject with zero tensor work, family
   siblings re-execute and pass when healthy), and the Admit gate's
   replay-first stage order with distillation. *)

module Corpus = Validate.Corpus
module Differential = Validate.Differential
module Guard = Robust.Guard

let vs = Syno.Api.default_validation_valuations
let conv = Syno.Zoo.conv2d.Syno.Zoo.operator

(* A real differential counterexample: a rate-1.0 output corruption of
   the einsum backend makes conv2d disagree with the reference. *)
let differential_entry () =
  let fault = Differential.fault ~rate:1.0 Differential.Einsum in
  let config = Differential.config ~fault () in
  match Differential.check_full ~config conv vs with
  | Error f -> Corpus.of_differential ~tolerance:1e-6 conv f
  | Ok _ -> Alcotest.fail "expected a differential failure under a rate-1.0 fault"

(* A real static counterexample: the seeded out-of-bounds gather. *)
let static_entry () =
  let corrupt = Differential.corrupt_operator conv in
  match Analysis.Verify.program_opt corrupt (List.hd vs) with
  | Some (Analysis.Verify.Violation d) -> (corrupt, Corpus.of_static corrupt (List.hd vs) d)
  | _ -> Alcotest.fail "expected a static bounds violation on the corrupted operator"

let with_temp_path f =
  let path = Filename.temp_file "syno_corpus" ".corpus" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".corrupt"; path ^ ".tmp" ])
    (fun () ->
      Sys.remove path;
      f path)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let idents es = List.map Corpus.ident es

(* Entries as they come back from disk.  For trace-built operators
   (everything the search produces) this is the identity; the
   artificially corrupted operator in [static_entry] mutates its
   expression outside the trace language, so its rebuilt signature
   legitimately differs — replay still rejects it via the
   family-sibling re-execution path. *)
let roundtripped es =
  match Corpus.of_string_result (Corpus.to_string es) with
  | Ok l -> l
  | Error err -> Alcotest.fail (Corpus.string_of_error err)

let test_roundtrip_exact () =
  let e = differential_entry () in
  let _, s = static_entry () in
  let text = Corpus.to_string [ e; s ] in
  match Corpus.of_string_result text with
  | Error err -> Alcotest.fail (Corpus.string_of_error err)
  | Ok loaded ->
      Alcotest.(check int) "both entries survive" 2 (List.length loaded);
      let e' =
        List.find (fun x -> x.Corpus.ce_origin = Corpus.Differential) loaded
      in
      let s' = List.find (fun x -> x.Corpus.ce_origin = Corpus.Static) loaded in
      Alcotest.(check string) "static detail preserved" s.Corpus.ce_detail
        s'.Corpus.ce_detail;
      Alcotest.(check bool) "static valuation preserved" true
        (Shape.Valuation.bindings s.Corpus.ce_valuation
        = Shape.Valuation.bindings s'.Corpus.ce_valuation);
      Alcotest.(check (list string)) "trace-built entry ident is stable"
        (idents [ e ])
        (idents (roundtripped [ e ]));
      Alcotest.(check int) "seed exact" e.Corpus.ce_seed e'.Corpus.ce_seed;
      Alcotest.(check (float 0.0)) "tolerance bit-exact (hex floats)"
        e.Corpus.ce_tolerance e'.Corpus.ce_tolerance;
      Alcotest.(check (float 0.0)) "abs error bit-exact" e.Corpus.ce_abs_err
        e'.Corpus.ce_abs_err;
      (match (e.Corpus.ce_fail, e'.Corpus.ce_fail) with
      | Some (i, exp, got), Some (i', exp', got') ->
          Alcotest.(check int) "failing index" i i';
          Alcotest.(check (float 0.0)) "expected bit-exact" exp exp';
          Alcotest.(check (float 0.0)) "got bit-exact" got got'
      | None, None -> ()
      | _ -> Alcotest.fail "fail record lost in the round trip");
      Alcotest.(check string) "operator signature preserved" e.Corpus.ce_signature
        e'.Corpus.ce_signature

let test_corrupt_file_quarantined () =
  with_temp_path (fun path ->
      write_file path "this is not a corpus\n";
      let t, report = Corpus.open_file path in
      (match report.Corpus.or_quarantined with
      | Some (qpath, Corpus.Bad_header _) ->
          Alcotest.(check bool) "damaged file moved aside" true (Sys.file_exists qpath);
          Alcotest.(check bool) "original path freed" false (Sys.file_exists path)
      | Some (_, err) -> Alcotest.failf "expected Bad_header, got %s" (Corpus.string_of_error err)
      | None -> Alcotest.fail "damaged corpus was not quarantined");
      Alcotest.(check int) "corpus starts empty" 0 (Corpus.size t);
      (* The quarantined corpus keeps working: adds persist cleanly. *)
      Alcotest.(check bool) "add after quarantine" true (Corpus.add t (differential_entry ()));
      match Corpus.load_result ~path with
      | Ok es -> Alcotest.(check int) "regrown corpus loads" 1 (List.length es)
      | Error err -> Alcotest.fail (Corpus.string_of_error err))

let test_truncated_file_detected () =
  with_temp_path (fun path ->
      let e = differential_entry () in
      let _, s = static_entry () in
      Corpus.save ~path [ e; s ];
      (* Drop the last entry's block but keep the declared count: the
         typed loader must report Truncated, and open_file must
         quarantine instead of dying. *)
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let lines = String.split_on_char '\n' text in
      let is_entry l =
        String.length l >= 6 && String.sub l 0 6 = "entry:"
      in
      let last_entry_at =
        List.fold_left
          (fun (i, best) l -> (i + 1, if is_entry l then i else best))
          (0, -1) lines
        |> snd
      in
      let kept = List.filteri (fun i _ -> i < last_entry_at) lines in
      write_file path (String.concat "\n" kept);
      (match Corpus.load_result ~path with
      | Error (Corpus.Truncated { expected = 2; found = 1 }) -> ()
      | Error err -> Alcotest.failf "expected Truncated 2/1, got %s" (Corpus.string_of_error err)
      | Ok _ -> Alcotest.fail "truncated corpus loaded");
      let t, report = Corpus.open_file path in
      Alcotest.(check bool) "truncated file quarantined, not fatal" true
        (report.Corpus.or_quarantined <> None);
      Alcotest.(check int) "corpus starts empty after quarantine" 0 (Corpus.size t))

let test_readonly_never_writes () =
  with_temp_path (fun path ->
      let e = differential_entry () in
      Corpus.save ~path [ e ];
      let t, report = Corpus.open_file ~readonly:true path in
      Alcotest.(check int) "readonly load" 1 report.Corpus.or_loaded;
      Alcotest.(check bool) "readonly add is a no-op" false
        (Corpus.add t { e with Corpus.ce_seed = e.Corpus.ce_seed + 1 });
      Corpus.flush t;
      Alcotest.(check int) "no writes in readonly mode" 0 (Corpus.writes t);
      (* A damaged readonly corpus is skipped in place, not renamed. *)
      write_file path "garbage\n";
      let _, report = Corpus.open_file ~readonly:true path in
      Alcotest.(check bool) "readonly quarantine reported" true
        (report.Corpus.or_quarantined <> None);
      Alcotest.(check bool) "readonly file left in place" true (Sys.file_exists path))

let test_shard_merge_dedup () =
  with_temp_path (fun base ->
      let e = differential_entry () in
      let _, s = static_entry () in
      (* Shard 0 and shard 1 overlap on [e]; shard 2 is missing; shard 3
         is damaged.  The merge keeps going and dedups by ident. *)
      Corpus.save ~path:(Corpus.shard_path ~base ~shard_id:0) [ e; s ];
      Corpus.save ~path:(Corpus.shard_path ~base ~shard_id:1) [ e ];
      write_file (Corpus.shard_path ~base ~shard_id:3) "not a corpus\n";
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun i ->
              let p = Corpus.shard_path ~base ~shard_id:i in
              if Sys.file_exists p then Sys.remove p)
            [ 0; 1; 2; 3 ])
        (fun () ->
          let m = Corpus.load_and_merge ~base ~shards:4 in
          Alcotest.(check (list string)) "merged entries dedup by ident"
            (List.sort compare (idents (roundtripped [ e; s ])))
            (idents m.Corpus.mr_entries);
          Alcotest.(check (list int)) "clean shards" [ 0; 1 ] m.Corpus.mr_loaded;
          Alcotest.(check (list int)) "missing shards" [ 2 ] m.Corpus.mr_missing;
          Alcotest.(check (list int)) "damaged shards quarantined" [ 3 ]
            (List.map fst m.Corpus.mr_quarantined);
          Alcotest.(check int) "entries surviving dedup" 2 m.Corpus.mr_added))

(* SIGKILL mid-append: a child process appends entries one at a time
   (cadence 1 — one atomic rewrite per add) and is killed at a random
   point.  Whatever the timing, the file on disk must load cleanly and
   hold a prefix of the adds — the atomic-rename recipe's guarantee. *)
let test_kill_mid_append_never_tears () =
  with_temp_path (fun path ->
      let base = differential_entry () in
      let adds = 40 in
      (match Unix.fork () with
      | 0 ->
          let t, _ = Corpus.open_file ~every:1 path in
          for i = 1 to adds do
            ignore (Corpus.add t { base with Corpus.ce_seed = i })
          done;
          Unix._exit 0
      | pid ->
          Unix.sleepf 0.02;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid));
      if Sys.file_exists path then
        match Corpus.load_result ~path with
        | Ok entries ->
            let n = List.length entries in
            Alcotest.(check bool)
              (Printf.sprintf "prefix of adds on disk (%d of %d)" n adds)
              true
              (n >= 0 && n <= adds);
            List.iter
              (fun e ->
                Alcotest.(check string) "entry signature intact" base.Corpus.ce_signature
                  e.Corpus.ce_signature)
              entries
        | Error err -> Alcotest.failf "killed writer tore the file: %s" (Corpus.string_of_error err))

let test_replay_semantics () =
  let e = differential_entry () in
  let t = Corpus.in_memory () in
  Alcotest.(check bool) "add" true (Corpus.add t e);
  (* Exact signature: rejected with zero tensor work. *)
  let alloc0 = Nd.Tensor.allocations () in
  (match Corpus.replay t conv with
  | Error (Guard.Counterexample _) -> ()
  | Error k -> Alcotest.failf "expected Counterexample, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "known counterexample passed replay");
  Alcotest.(check int) "exact-signature rejection allocates nothing" 0
    (Nd.Tensor.allocations () - alloc0);
  (* A healthy family sibling (same fingerprint, different signature)
     re-executes the recorded pair and passes: the recorded fault lived
     in the injection harness, not the operator. *)
  let sibling = Corpus.in_memory () in
  ignore (Corpus.add sibling { e with Corpus.ce_signature = "someone-else" });
  (match Corpus.replay sibling conv with
  | Ok () -> ()
  | Error k -> Alcotest.failf "healthy sibling rejected: %s" (Guard.kind_label k));
  let st = Corpus.stats sibling in
  Alcotest.(check int) "sibling was concretely re-executed" 1 st.Corpus.st_executed;
  Alcotest.(check int) "no rejection for the healthy sibling" 0 st.Corpus.st_rejected;
  (* A genuinely broken sibling still fails its recorded obligation:
     the corrupted gather violates bounds at the recorded valuation. *)
  let corrupt, s_entry = static_entry () in
  let broken = Corpus.in_memory () in
  ignore (Corpus.add broken { s_entry with Corpus.ce_signature = "someone-else" });
  (match Corpus.replay broken corrupt with
  | Error (Guard.Counterexample _) -> ()
  | Error k -> Alcotest.failf "expected Counterexample, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "broken sibling passed replay");
  (* No fingerprint overlap: pass in O(1), nothing executed. *)
  let unrelated = Corpus.in_memory () in
  ignore (Corpus.add unrelated e);
  let matmul = Syno.Zoo.matmul.Syno.Zoo.operator in
  (match Corpus.replay unrelated matmul with
  | Ok () -> ()
  | Error k -> Alcotest.failf "unrelated operator rejected: %s" (Guard.kind_label k));
  let st = Corpus.stats unrelated in
  Alcotest.(check int) "unrelated: no matches" 0 st.Corpus.st_matched

(* The gate: differential failure distilled on first sight, replay
   rejection (not differential) on the second — and replay outranks
   even the static stage. *)
let test_admit_replay_stage () =
  let corpus = Corpus.in_memory () in
  let fault = Differential.fault ~rate:1.0 Differential.Einsum in
  let gate =
    Validate.Admit.create ~corpus
      ~differential:(Differential.config ~fault ())
      ~valuations:vs ~check_valuations:vs ()
  in
  (match Validate.Admit.gate gate conv with
  | Error (Guard.Backend_mismatch _) -> ()
  | Error k -> Alcotest.failf "expected Backend_mismatch, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "faulted candidate admitted");
  let s = Validate.Admit.stats gate in
  Alcotest.(check int) "differential rejection recorded" 1
    s.Validate.Admit.rejected_differential;
  Alcotest.(check int) "counterexample distilled" 1 s.Validate.Admit.distilled;
  Alcotest.(check int) "corpus grew" 1 (Corpus.size corpus);
  (match Validate.Admit.gate gate conv with
  | Error (Guard.Counterexample _) -> ()
  | Error k -> Alcotest.failf "expected Counterexample on re-encounter, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "known counterexample admitted");
  let s = Validate.Admit.stats gate in
  Alcotest.(check int) "replay rejection recorded" 1 s.Validate.Admit.rejected_replay;
  Alcotest.(check int) "differential did not run again" 1
    s.Validate.Admit.rejected_differential;
  Alcotest.(check int) "nothing distilled twice" 1 s.Validate.Admit.distilled;
  (* Replay runs before static: a candidate both stages would reject
     carries the replay verdict. *)
  let corrupt, s_entry = static_entry () in
  let corpus2 = Corpus.in_memory () in
  ignore (Corpus.add corpus2 s_entry);
  let gate2 =
    Validate.Admit.create ~corpus:corpus2 ~static:[ List.hd vs ] ~valuations:vs ()
  in
  (match Validate.Admit.gate gate2 corrupt with
  | Error (Guard.Counterexample _) -> ()
  | Error (Guard.Static_violation _) ->
      Alcotest.fail "static ran before replay (stage order inverted)"
  | Error k -> Alcotest.failf "unexpected kind %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "corrupted candidate admitted");
  (* Guard classification: counterexamples are permanent, no retries. *)
  Alcotest.(check bool) "Counterexample is permanent" true
    (Guard.permanent (Guard.Counterexample "x"))

let () =
  Alcotest.run "corpus"
    [
      ( "serialization",
        [
          Alcotest.test_case "hex-float round trip is exact" `Quick test_roundtrip_exact;
        ] );
      ( "durability",
        [
          Alcotest.test_case "corrupt file quarantined, never fatal" `Quick
            test_corrupt_file_quarantined;
          Alcotest.test_case "truncated file detected and quarantined" `Quick
            test_truncated_file_detected;
          Alcotest.test_case "readonly mode never writes or renames" `Quick
            test_readonly_never_writes;
          Alcotest.test_case "SIGKILL mid-append never tears the file" `Quick
            test_kill_mid_append_never_tears;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "merge dedups, quarantines, keeps going" `Quick
            test_shard_merge_dedup;
        ] );
      ( "replay",
        [
          Alcotest.test_case "exact hit free, siblings re-execute" `Quick
            test_replay_semantics;
          Alcotest.test_case "gate: distill once, replay thereafter" `Quick
            test_admit_replay_stage;
        ] );
    ]
