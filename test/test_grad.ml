(* Finite-difference validation of every differentiable op. *)

module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Tape = Grad.Tape
module Op = Grad.Op

let rng = Rng.create ~seed:99

(* Numeric gradient of [f] (a scalar function of the tensor) at [x]. *)
let numeric_grad f x =
  let eps = 1e-4 in
  let data = Tensor.unsafe_data x in
  let g = Tensor.create (Tensor.shape x) in
  let gd = Tensor.unsafe_data g in
  for i = 0 to Array.length data - 1 do
    let saved = data.(i) in
    data.(i) <- saved +. eps;
    let l1 = f () in
    data.(i) <- saved -. eps;
    let l0 = f () in
    data.(i) <- saved;
    gd.(i) <- (l1 -. l0) /. (2.0 *. eps)
  done;
  g

let check_close name a b =
  let da = Tensor.unsafe_data a and db = Tensor.unsafe_data b in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. db.(i)) > 1e-2 *. (1.0 +. Float.abs x) then
        Alcotest.failf "%s[%d]: numeric %.6f vs analytic %.6f" name i x db.(i))
    da

(* Generic harness: loss = mean of (elementwise square of output). *)
let gradcheck name build inputs =
  let forward () =
    let tape = Tape.create () in
    let vars = List.map (Tape.var tape) inputs in
    let out = build tape vars in
    Tensor.mean (Tensor.mul (Tape.data out) (Tape.data out))
  in
  let tape = Tape.create () in
  let vars = List.map (Tape.var tape) inputs in
  let out = build tape vars in
  let loss =
    Op.mean tape (Op.mul tape out out)
  in
  Tape.backward tape loss;
  List.iteri
    (fun i x ->
      let analytic = Tape.grad (List.nth vars i) in
      let numeric = numeric_grad forward x in
      check_close (Printf.sprintf "%s input %d" name i) numeric analytic)
    inputs

let t shape = Tensor.rand_normal rng ~scale:1.0 shape

let test_add_mul () =
  gradcheck "add" (fun tp -> function [ a; b ] -> Op.add tp a b | _ -> assert false)
    [ t [| 3; 2 |]; t [| 3; 2 |] ];
  gradcheck "mul" (fun tp -> function [ a; b ] -> Op.mul tp a b | _ -> assert false)
    [ t [| 4 |]; t [| 4 |] ];
  gradcheck "sub+scale"
    (fun tp -> function [ a; b ] -> Op.scale tp 2.5 (Op.sub tp a b) | _ -> assert false)
    [ t [| 2; 2 |]; t [| 2; 2 |] ]

let test_relu () =
  gradcheck "relu" (fun tp -> function [ a ] -> Op.relu tp a | _ -> assert false) [ t [| 10 |] ]

let test_einsum_matmul () =
  gradcheck "einsum mm"
    (fun tp -> function [ a; b ] -> Op.einsum tp "ik,kj->ij" [ a; b ] | _ -> assert false)
    [ t [| 3; 4 |]; t [| 4; 2 |] ]

let test_einsum_three () =
  gradcheck "einsum 3-way"
    (fun tp -> function
      | [ a; b; c ] -> Op.einsum tp "bi,io,o->bo" [ a; b; c ]
      | _ -> assert false)
    [ t [| 2; 3 |]; t [| 3; 4 |]; t [| 4 |] ]

let test_einsum_attention_shape () =
  gradcheck "einsum attention scores"
    (fun tp -> function
      | [ q; k ] -> Op.einsum tp "bqhd,bkhd->bhqk" [ q; k ]
      | _ -> assert false)
    [ t [| 2; 3; 2; 2 |]; t [| 2; 3; 2; 2 |] ]

let test_reshape_transpose () =
  gradcheck "reshape"
    (fun tp -> function [ a ] -> Op.reshape tp a [| 6 |] | _ -> assert false)
    [ t [| 2; 3 |] ];
  gradcheck "transpose"
    (fun tp -> function [ a ] -> Op.transpose tp a [| 1; 0 |] | _ -> assert false)
    [ t [| 2; 3 |] ]

let test_bias_broadcast () =
  gradcheck "add_bias"
    (fun tp -> function [ a; b ] -> Op.add_bias tp a ~bias:b ~axis:1 | _ -> assert false)
    [ t [| 2; 3 |]; t [| 3 |] ];
  gradcheck "add_broadcast"
    (fun tp -> function [ a; b ] -> Op.add_broadcast tp a b | _ -> assert false)
    [ t [| 2; 3; 2 |]; t [| 3; 2 |] ]

let test_pool_softmax () =
  gradcheck "global_avg_pool"
    (fun tp -> function [ a ] -> Op.global_avg_pool tp a | _ -> assert false)
    [ t [| 2; 3; 2; 2 |] ];
  gradcheck "softmax"
    (fun tp -> function [ a ] -> Op.softmax tp a | _ -> assert false)
    [ t [| 3; 4 |] ]

let test_layer_norm () =
  gradcheck "layer_norm"
    (fun tp -> function
      | [ x; g; b ] -> Op.layer_norm tp x ~gain:g ~bias:b
      | _ -> assert false)
    [ t [| 3; 5 |]; t [| 5 |]; t [| 5 |] ]

let test_causal_mask () =
  (* The mask output contains -1e9 entries; square loss would explode,
     so test the gradient structure directly. *)
  let tape = Tape.create () in
  let x = Tape.var tape (t [| 1; 1; 3; 3 |]) in
  let y = Op.causal_mask tape x in
  (let d = Tensor.unsafe_data (Tape.data y) in
   Alcotest.(check bool) "upper triangle masked" true (d.(1) < -1e8 && d.(2) < -1e8 && d.(5) < -1e8));
  Tape.backward tape (Op.mean tape y);
  let g = Tensor.unsafe_data (Tape.grad x) in
  Alcotest.(check (float 1e-9)) "masked grad zero" 0.0 g.(1);
  Alcotest.(check bool) "kept grad nonzero" true (g.(0) > 0.0)

let test_embedding () =
  let table = t [| 5; 3 |] in
  let ids = [| [| 0; 2 |]; [| 2; 4 |] |] in
  let forward () =
    let tape = Tape.create () in
    let tv = Tape.var tape table in
    let out = Op.embedding tape ~table:tv ~ids in
    Tensor.mean (Tensor.mul (Tape.data out) (Tape.data out))
  in
  let tape = Tape.create () in
  let tv = Tape.var tape table in
  let out = Op.embedding tape ~table:tv ~ids in
  let loss = Op.mean tape (Op.mul tape out out) in
  Tape.backward tape loss;
  check_close "embedding" (numeric_grad forward table) (Tape.grad tv)

let test_cross_entropy () =
  let logits = t [| 4; 3 |] in
  let labels = [| 0; 2; 1; 2 |] in
  let forward () =
    let tape = Tape.create () in
    let lv = Tape.var tape logits in
    let loss = Op.cross_entropy tape lv ~labels in
    Tensor.flat_get (Tape.data loss) 0
  in
  let tape = Tape.create () in
  let lv = Tape.var tape logits in
  let loss = Op.cross_entropy tape lv ~labels in
  Tape.backward tape loss;
  check_close "cross_entropy" (numeric_grad forward logits) (Tape.grad lv);
  (* loss of uniform logits is log C *)
  let tape = Tape.create () in
  let u = Tape.var tape (Tensor.create [| 2; 4 |]) in
  let l = Op.cross_entropy tape u ~labels:[| 1; 3 |] in
  Alcotest.(check (float 1e-6)) "uniform loss" (log 4.0) (Tensor.flat_get (Tape.data l) 0)

let test_accuracy () =
  let tape = Tape.create () in
  let logits =
    Tape.constant tape (Tensor.of_array [| 2; 3 |] [| 0.1; 0.9; 0.0; 0.8; 0.1; 0.1 |])
  in
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (Op.accuracy logits ~labels:[| 1; 2 |])

let test_grad_accumulation () =
  (* A value used twice accumulates both contributions. *)
  let tape = Tape.create () in
  let x = Tape.var tape (Tensor.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let y = Op.add tape x x in
  Tape.backward tape (Op.mean tape y);
  let g = Tensor.unsafe_data (Tape.grad x) in
  Alcotest.(check (float 1e-9)) "2/n" 1.0 g.(0)

let test_nonfinite_backprop () =
  (* A NaN in the forward pass must reach the gradients, not be
     silently laundered into a finite number: downstream sentinels
     (Train's finite check, Guard's Non_finite) depend on it. *)
  let tape = Tape.create () in
  let x = Tape.var tape (Tensor.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let poison = Tape.constant tape (Tensor.of_array [| 2 |] [| Float.nan; 1.0 |]) in
  let y = Op.mul tape x poison in
  let loss = Op.mean tape y in
  Alcotest.(check bool) "loss is NaN" true (Float.is_nan (Tensor.flat_get (Tape.data loss) 0));
  Tape.backward tape loss;
  let g = Tensor.unsafe_data (Tape.grad x) in
  Alcotest.(check bool) "poisoned lane's grad is NaN" true (Float.is_nan g.(0));
  Alcotest.(check (float 1e-9)) "clean lane's grad survives" 0.5 g.(1);
  (* Same story with Inf entering through an einsum contraction. *)
  let tape = Tape.create () in
  let x = Tape.var tape (Tensor.of_array [| 2; 2 |] [| 1.0; 0.0; 0.0; 1.0 |]) in
  let w = Tape.constant tape (Tensor.of_array [| 2; 2 |] [| Float.infinity; 0.0; 0.0; 1.0 |]) in
  let y = Op.einsum tape "ik,kj->ij" [ x; w ] in
  Tape.backward tape (Op.mean tape y);
  let g = Tensor.unsafe_data (Tape.grad x) in
  Alcotest.(check bool) "inf reaches the input gradient" true
    (Array.exists (fun v -> not (Float.is_finite v)) g)

let test_constant_no_grad () =
  let tape = Tape.create () in
  let x = Tape.constant tape (t [| 2 |]) in
  let y = Op.scale tape 2.0 x in
  Tape.backward tape (Op.mean tape y);
  Alcotest.(check (float 0.0)) "constant grad stays zero" 0.0 (Tensor.sum (Tape.grad x))

let () =
  Alcotest.run "grad"
    [
      ( "ops",
        [
          Alcotest.test_case "add/mul/sub/scale" `Quick test_add_mul;
          Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "einsum matmul" `Quick test_einsum_matmul;
          Alcotest.test_case "einsum 3-way" `Quick test_einsum_three;
          Alcotest.test_case "einsum attention" `Quick test_einsum_attention_shape;
          Alcotest.test_case "reshape/transpose" `Quick test_reshape_transpose;
          Alcotest.test_case "bias/broadcast" `Quick test_bias_broadcast;
          Alcotest.test_case "pool/softmax" `Quick test_pool_softmax;
          Alcotest.test_case "layer_norm" `Quick test_layer_norm;
          Alcotest.test_case "causal mask" `Quick test_causal_mask;
          Alcotest.test_case "embedding" `Quick test_embedding;
          Alcotest.test_case "cross entropy" `Quick test_cross_entropy;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
        ] );
      ( "tape",
        [
          Alcotest.test_case "accumulation" `Quick test_grad_accumulation;
          Alcotest.test_case "constants" `Quick test_constant_no_grad;
          Alcotest.test_case "non-finite backprop" `Quick test_nonfinite_backprop;
        ] );
    ]
