(* Tests for the domain pool and the parallel einsum hot path. *)

module Pool = Par.Pool
module Rng = Nd.Rng
module Tensor = Nd.Tensor
module Einsum = Nd.Einsum

let with_pools f =
  Pool.with_pool ~domains:1 (fun p1 -> Pool.with_pool ~domains:4 (fun p4 -> f p1 p4))

let test_parallel_for_matches_sequential () =
  with_pools (fun p1 p4 ->
      let n = 10_000 in
      let fill pool =
        let out = Array.make n 0 in
        Pool.parallel_for pool ~n (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- (i * i) + 7
            done);
        out
      in
      Alcotest.(check bool) "1-domain = 4-domain" true (fill p1 = fill p4);
      Alcotest.(check int) "covers all" ((9999 * 9999) + 7) (fill p4).(n - 1))

let test_parallel_for_edge_cases () =
  with_pools (fun _ p4 ->
      let hits = ref [] in
      Pool.parallel_for p4 ~n:0 (fun lo hi -> hits := (lo, hi) :: !hits);
      Alcotest.(check int) "n=0 never calls body" 0 (List.length !hits);
      let out = Array.make 1 0 in
      Pool.parallel_for p4 ~n:1 (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- 42
          done);
      Alcotest.(check int) "n=1 runs" 42 out.(0);
      (* more chunks than elements *)
      let out = Array.make 3 0 in
      Pool.parallel_for p4 ~n:3 ~chunks:64 (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i + 1
          done);
      Alcotest.(check (array int)) "chunks capped at n" [| 1; 2; 3 |] out)

let test_map_preserves_order () =
  with_pools (fun p1 p4 ->
      let arr = Array.init 37 (fun i -> i) in
      let seq = Array.map (fun i -> i * 3) arr in
      Alcotest.(check (array int)) "1-domain map" seq (Pool.map p1 (fun i -> i * 3) arr);
      Alcotest.(check (array int)) "4-domain map" seq (Pool.map p4 (fun i -> i * 3) arr);
      Alcotest.(check (array int)) "empty" [||] (Pool.map p4 (fun i -> i * 3) [||]))

let test_exception_propagates () =
  with_pools (fun _ p4 ->
      match
        Pool.parallel_for p4 ~n:1000 (fun lo _ -> if lo > 0 then failwith "boom")
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "payload" "boom" msg)

let test_pool_usable_after_raise () =
  with_pools (fun _ p4 ->
      (* A raising body must not wedge the pool: subsequent calls on the
         same pool run normally and produce correct results. *)
      for round = 1 to 3 do
        (match Pool.parallel_for p4 ~n:1000 (fun _ _ -> failwith "kaboom") with
        | () -> Alcotest.fail "expected exception"
        | exception Failure msg -> Alcotest.(check string) "payload" "kaboom" msg);
        let out = Array.make 1000 0 in
        Pool.parallel_for p4 ~n:1000 (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- i + round
            done);
        Alcotest.(check int) "first" round out.(0);
        Alcotest.(check int) "last" (999 + round) out.(999)
      done;
      (* Same for map, including the raising case. *)
      (match Pool.map p4 (fun i -> if i = 2 then failwith "m" else i) [| 0; 1; 2; 3 |] with
      | (_ : int array) -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "map payload" "m" msg);
      let sq = Pool.map p4 (fun i -> i * i) [| 0; 1; 2; 3; 4 |] in
      Alcotest.(check (array int)) "map after raise" [| 0; 1; 4; 9; 16 |] sq)

let test_pool_cancellation () =
  with_pools (fun _ p4 ->
      (* A token tripped mid-loop skips the unclaimed chunks, drains
         in-flight ones, and raises Cancelled in the caller — mirroring
         the error path's discipline. *)
      let n = 1000 in
      let executed = Atomic.make 0 in
      let tok = Robust.Cancel.create () in
      (match
         Pool.parallel_for p4 ~cancel:tok ~n ~chunks:100 (fun lo hi ->
             (* Trip from inside the body: everything claimed before the
                trip still completes (the drain), later chunks don't. *)
             Robust.Cancel.cancel ~reason:"mid-loop" tok;
             Atomic.set executed (Atomic.get executed + (hi - lo)))
       with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Robust.Cancel.Cancelled (Robust.Cancel.Cancelled_by "mid-loop") -> ()
      | exception Robust.Cancel.Cancelled _ -> Alcotest.fail "wrong reason");
      let ran = Atomic.get executed in
      Alcotest.(check bool)
        (Printf.sprintf "unclaimed chunks skipped (%d < %d elements)" ran n)
        true (ran < n);
      Alcotest.(check bool) "in-flight chunks drained" true (ran > 0);
      (* The pool comes out reusable, exactly like after a raise. *)
      let out = Array.make n 0 in
      Pool.parallel_for p4 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i
          done);
      Alcotest.(check int) "reusable after cancellation" (n - 1) out.(n - 1);
      (* An untripped token is invisible. *)
      let fresh = Robust.Cancel.create () in
      let sum = Atomic.make 0 in
      Pool.parallel_for p4 ~cancel:fresh ~n (fun lo hi ->
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + i
          done;
          let rec add () =
            let cur = Atomic.get sum in
            if not (Atomic.compare_and_set sum cur (cur + !s)) then add ()
          in
          add ());
      Alcotest.(check int) "untripped token: full result" (n * (n - 1) / 2) (Atomic.get sum);
      (* A pre-tripped token raises before any work, including on the
         sequential fallback paths. *)
      let dead = Robust.Cancel.create () in
      Robust.Cancel.cancel dead;
      let calls = Atomic.make 0 in
      (match Pool.parallel_for p4 ~cancel:dead ~n (fun _ _ -> Atomic.incr calls) with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Robust.Cancel.Cancelled _ -> ());
      Alcotest.(check int) "no chunk ran" 0 (Atomic.get calls);
      (match Pool.map p4 ~cancel:dead (fun i -> i) [| 1; 2; 3 |] with
      | (_ : int array) -> Alcotest.fail "expected Cancelled from map"
      | exception Robust.Cancel.Cancelled _ -> ()))

let test_nested_calls_do_not_deadlock () =
  with_pools (fun _ p4 ->
      (* parallel_for from inside a worker of the same pool must fall
         back to a sequential loop instead of deadlocking. *)
      let outer = Array.make 8 0 in
      Pool.parallel_for p4 ~n:8 ~chunks:8 (fun lo hi ->
          for i = lo to hi - 1 do
            let acc = ref 0 in
            Pool.parallel_for p4 ~n:100 (fun lo' hi' ->
                for j = lo' to hi' - 1 do
                  acc := !acc + j
                done);
            outer.(i) <- !acc
          done);
      Alcotest.(check (array int)) "inner sums" (Array.make 8 4950) outer)

let test_num_domains_positive () =
  Alcotest.(check bool) "detection >= 1" true (Pool.num_domains () >= 1);
  Pool.with_pool ~domains:0 (fun p -> Alcotest.(check int) "clamped to 1" 1 (Pool.size p))

(* --- Einsum determinism across pool sizes -------------------------------- *)

(* Bit-identical means exactly equal float arrays, not within-epsilon. *)
let bits t = Array.map Int64.bits_of_float (Tensor.unsafe_data t)

let einsum_specs =
  [
    ("ik,kj->ij", [ [| 24; 17 |]; [| 17; 31 |] ]);
    ("bik,kj->bij", [ [| 3; 14; 9 |]; [| 9; 21 |] ]);
    ("nchw,dc->ndhw", [ [| 2; 6; 7; 7 |]; [| 5; 6 |] ]);
    ("i,i->", [ [| 257 |]; [| 257 |] ]);
    ("ij->j", [ [| 33; 19 |] ]);
    ("abc,cd,db->a", [ [| 5; 6; 7 |]; [| 7; 8 |]; [| 8; 6 |] ]);
  ]

let test_einsum_bit_identical () =
  with_pools (fun p1 p4 ->
      let rng = Rng.create ~seed:99 in
      List.iter
        (fun (spec, shapes) ->
          (* a batch of random instances per spec *)
          for _ = 1 to 3 do
            let tensors =
              List.map (fun sh -> Tensor.rand_normal rng ~scale:1.0 sh) shapes
            in
            let a = Einsum.einsum ~pool:p1 spec tensors in
            let b = Einsum.einsum ~pool:p4 spec tensors in
            Alcotest.(check (array int64))
              (spec ^ " bit-identical") (bits a) (bits b);
            Alcotest.(check (array int))
              (spec ^ " same shape") (Tensor.shape a) (Tensor.shape b)
          done)
        einsum_specs)

let test_einsum_large_parallel_path () =
  (* Big enough to cross the sequential-work threshold, so the 4-domain
     run really exercises chunked execution. *)
  with_pools (fun p1 p4 ->
      let rng = Rng.create ~seed:5 in
      let a = Tensor.rand_normal rng ~scale:1.0 [| 64; 48 |] in
      let b = Tensor.rand_normal rng ~scale:1.0 [| 48; 64 |] in
      let p = Einsum.plan "ik,kj->ij" [ [| 64; 48 |]; [| 48; 64 |] ] in
      let r1 = Einsum.run ~pool:p1 p [ a; b ] in
      let r4 = Einsum.run ~pool:p4 p [ a; b ] in
      Alcotest.(check (array int64)) "matmul bit-identical" (bits r1) (bits r4))

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for = sequential" `Quick
            test_parallel_for_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_parallel_for_edge_cases;
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "usable after raise" `Quick test_pool_usable_after_raise;
          Alcotest.test_case "cancellation" `Quick test_pool_cancellation;
          Alcotest.test_case "nested calls" `Quick test_nested_calls_do_not_deadlock;
          Alcotest.test_case "num_domains" `Quick test_num_domains_positive;
        ] );
      ( "einsum",
        [
          Alcotest.test_case "random specs bit-identical" `Quick test_einsum_bit_identical;
          Alcotest.test_case "large parallel path" `Quick test_einsum_large_parallel_path;
        ] );
    ]
