(* Tests for the domain pool and the parallel einsum hot path. *)

module Pool = Par.Pool
module Rng = Nd.Rng
module Tensor = Nd.Tensor
module Einsum = Nd.Einsum

let with_pools f =
  Pool.with_pool ~domains:1 (fun p1 -> Pool.with_pool ~domains:4 (fun p4 -> f p1 p4))

let test_parallel_for_matches_sequential () =
  with_pools (fun p1 p4 ->
      let n = 10_000 in
      let fill pool =
        let out = Array.make n 0 in
        Pool.parallel_for pool ~n (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- (i * i) + 7
            done);
        out
      in
      Alcotest.(check bool) "1-domain = 4-domain" true (fill p1 = fill p4);
      Alcotest.(check int) "covers all" ((9999 * 9999) + 7) (fill p4).(n - 1))

let test_parallel_for_edge_cases () =
  with_pools (fun _ p4 ->
      let hits = ref [] in
      Pool.parallel_for p4 ~n:0 (fun lo hi -> hits := (lo, hi) :: !hits);
      Alcotest.(check int) "n=0 never calls body" 0 (List.length !hits);
      let out = Array.make 1 0 in
      Pool.parallel_for p4 ~n:1 (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- 42
          done);
      Alcotest.(check int) "n=1 runs" 42 out.(0);
      (* more chunks than elements *)
      let out = Array.make 3 0 in
      Pool.parallel_for p4 ~n:3 ~chunks:64 (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i + 1
          done);
      Alcotest.(check (array int)) "chunks capped at n" [| 1; 2; 3 |] out)

let test_map_preserves_order () =
  with_pools (fun p1 p4 ->
      let arr = Array.init 37 (fun i -> i) in
      let seq = Array.map (fun i -> i * 3) arr in
      Alcotest.(check (array int)) "1-domain map" seq (Pool.map p1 (fun i -> i * 3) arr);
      Alcotest.(check (array int)) "4-domain map" seq (Pool.map p4 (fun i -> i * 3) arr);
      Alcotest.(check (array int)) "empty" [||] (Pool.map p4 (fun i -> i * 3) [||]))

let test_exception_propagates () =
  with_pools (fun _ p4 ->
      match
        Pool.parallel_for p4 ~n:1000 (fun lo _ -> if lo > 0 then failwith "boom")
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "payload" "boom" msg)

let test_pool_usable_after_raise () =
  with_pools (fun _ p4 ->
      (* A raising body must not wedge the pool: subsequent calls on the
         same pool run normally and produce correct results. *)
      for round = 1 to 3 do
        (match Pool.parallel_for p4 ~n:1000 (fun _ _ -> failwith "kaboom") with
        | () -> Alcotest.fail "expected exception"
        | exception Failure msg -> Alcotest.(check string) "payload" "kaboom" msg);
        let out = Array.make 1000 0 in
        Pool.parallel_for p4 ~n:1000 (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- i + round
            done);
        Alcotest.(check int) "first" round out.(0);
        Alcotest.(check int) "last" (999 + round) out.(999)
      done;
      (* Same for map, including the raising case. *)
      (match Pool.map p4 (fun i -> if i = 2 then failwith "m" else i) [| 0; 1; 2; 3 |] with
      | (_ : int array) -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "map payload" "m" msg);
      let sq = Pool.map p4 (fun i -> i * i) [| 0; 1; 2; 3; 4 |] in
      Alcotest.(check (array int)) "map after raise" [| 0; 1; 4; 9; 16 |] sq)

let test_pool_cancellation () =
  with_pools (fun _ p4 ->
      (* A token tripped mid-loop skips the unclaimed chunks, drains
         in-flight ones, and raises Cancelled in the caller — mirroring
         the error path's discipline. *)
      let n = 1000 in
      let executed = Atomic.make 0 in
      let tok = Robust.Cancel.create () in
      (match
         Pool.parallel_for p4 ~cancel:tok ~n ~chunks:100 (fun lo hi ->
             (* Trip from inside the body: everything claimed before the
                trip still completes (the drain), later chunks don't. *)
             Robust.Cancel.cancel ~reason:"mid-loop" tok;
             Atomic.set executed (Atomic.get executed + (hi - lo)))
       with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Robust.Cancel.Cancelled (Robust.Cancel.Cancelled_by "mid-loop") -> ()
      | exception Robust.Cancel.Cancelled _ -> Alcotest.fail "wrong reason");
      let ran = Atomic.get executed in
      Alcotest.(check bool)
        (Printf.sprintf "unclaimed chunks skipped (%d < %d elements)" ran n)
        true (ran < n);
      Alcotest.(check bool) "in-flight chunks drained" true (ran > 0);
      (* The pool comes out reusable, exactly like after a raise. *)
      let out = Array.make n 0 in
      Pool.parallel_for p4 ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- i
          done);
      Alcotest.(check int) "reusable after cancellation" (n - 1) out.(n - 1);
      (* An untripped token is invisible. *)
      let fresh = Robust.Cancel.create () in
      let sum = Atomic.make 0 in
      Pool.parallel_for p4 ~cancel:fresh ~n (fun lo hi ->
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + i
          done;
          let rec add () =
            let cur = Atomic.get sum in
            if not (Atomic.compare_and_set sum cur (cur + !s)) then add ()
          in
          add ());
      Alcotest.(check int) "untripped token: full result" (n * (n - 1) / 2) (Atomic.get sum);
      (* A pre-tripped token raises before any work, including on the
         sequential fallback paths. *)
      let dead = Robust.Cancel.create () in
      Robust.Cancel.cancel dead;
      let calls = Atomic.make 0 in
      (match Pool.parallel_for p4 ~cancel:dead ~n (fun _ _ -> Atomic.incr calls) with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Robust.Cancel.Cancelled _ -> ());
      Alcotest.(check int) "no chunk ran" 0 (Atomic.get calls);
      (match Pool.map p4 ~cancel:dead (fun i -> i) [| 1; 2; 3 |] with
      | (_ : int array) -> Alcotest.fail "expected Cancelled from map"
      | exception Robust.Cancel.Cancelled _ -> ()))

let test_nested_calls_do_not_deadlock () =
  with_pools (fun _ p4 ->
      (* parallel_for from inside a worker of the same pool must fall
         back to a sequential loop instead of deadlocking. *)
      let outer = Array.make 8 0 in
      Pool.parallel_for p4 ~n:8 ~chunks:8 (fun lo hi ->
          for i = lo to hi - 1 do
            let acc = ref 0 in
            Pool.parallel_for p4 ~n:100 (fun lo' hi' ->
                for j = lo' to hi' - 1 do
                  acc := !acc + j
                done);
            outer.(i) <- !acc
          done);
      Alcotest.(check (array int)) "inner sums" (Array.make 8 4950) outer)

let test_num_domains_positive () =
  Alcotest.(check bool) "detection >= 1" true (Pool.num_domains () >= 1);
  Pool.with_pool ~domains:0 (fun p -> Alcotest.(check int) "clamped to 1" 1 (Pool.size p))

let test_parse_domains () =
  (match Pool.parse_domains "4" with
  | Ok n -> Alcotest.(check int) "positive integer" 4 n
  | Error e -> Alcotest.fail ("unexpected error: " ^ e));
  (match Pool.parse_domains "1" with
  | Ok n -> Alcotest.(check int) "one" 1 n
  | Error e -> Alcotest.fail ("unexpected error: " ^ e));
  let expect_error label s =
    match Pool.parse_domains s with
    | Ok n -> Alcotest.fail (Printf.sprintf "%s: accepted %S as %d" label s n)
    | Error msg -> Alcotest.(check bool) (label ^ " has message") true (msg <> "")
  in
  expect_error "zero" "0";
  expect_error "negative" "-3";
  expect_error "garbage" "abc";
  expect_error "empty" ""

let test_num_domains_env () =
  (* Both branches of the SYNO_DOMAINS handling: a valid setting is
     obeyed, an invalid one falls back to auto-detection (with a
     one-line stderr warning) instead of crashing or silently parsing
     as something else. *)
  let original = Sys.getenv_opt "SYNO_DOMAINS" in
  let restore () =
    Unix.putenv "SYNO_DOMAINS" (match original with Some v -> v | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "SYNO_DOMAINS" "3";
      Alcotest.(check int) "valid setting obeyed" 3 (Pool.num_domains ());
      Unix.putenv "SYNO_DOMAINS" "abc";
      let fallback = Pool.num_domains () in
      Alcotest.(check bool) "invalid setting falls back" true (fallback >= 1);
      Unix.putenv "SYNO_DOMAINS" "0";
      Alcotest.(check int) "non-positive falls back the same way" fallback
        (Pool.num_domains ()))

let test_contended_fallback_polls_cancellation () =
  (* Regression: when another domain already drives a loop on the pool,
     the submitter runs its loop sequentially — and that fallback must
     poll cancellation periodically, not just once up front.  A fake
     clock that advances one tick per poll proves the polls happen:
     the deadline trips mid-loop after a bounded number of slices. *)
  Pool.with_pool ~domains:2 (fun pool ->
      let gate = Atomic.make false in
      let holding = Atomic.make false in
      let holder =
        Domain.spawn (fun () ->
            Pool.parallel_for pool ~n:2 ~chunks:2 (fun lo _ ->
                if lo = 0 then begin
                  Atomic.set holding true;
                  while not (Atomic.get gate) do
                    Domain.cpu_relax ()
                  done
                end))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set gate true;
          Domain.join holder)
        (fun () ->
          while not (Atomic.get holding) do
            Domain.cpu_relax ()
          done;
          (* the pool is now busy: this submission takes the contended
             sequential fallback *)
          let polls = Atomic.make 0 in
          let clock () = float_of_int (Atomic.fetch_and_add polls 1) in
          let tok = Robust.Cancel.of_deadline ~clock 5.0 in
          let executed = Atomic.make 0 in
          (match
             Pool.parallel_for pool ~cancel:tok ~n:1000 ~chunks:100 (fun lo hi ->
                 Atomic.set executed (Atomic.get executed + (hi - lo)))
           with
          | () -> Alcotest.fail "expected Cancelled from the contended fallback"
          | exception Robust.Cancel.Cancelled _ -> ());
          let ran = Atomic.get executed in
          Alcotest.(check bool)
            (Printf.sprintf "some slices ran before the trip (%d)" ran)
            true (ran > 0);
          Alcotest.(check bool)
            (Printf.sprintf "tripped mid-loop, not at the end (%d < 1000)" ran)
            true (ran < 1000)))

let test_skewed_workload () =
  (* One element 100x heavier than the rest: lazy splitting plus
     stealing must still cover every index exactly once and produce the
     sequential result. *)
  with_pools (fun p1 p4 ->
      let n = 512 in
      let weight i = if i = 0 then 40_000 else 400 in
      let fill pool =
        let out = Array.make n 0 in
        Pool.parallel_for pool ~n (fun lo hi ->
            for i = lo to hi - 1 do
              let acc = ref 0 in
              for j = 1 to weight i do
                acc := (!acc + j) land 0xFFFFFF
              done;
              out.(i) <- !acc
            done);
        out
      in
      Alcotest.(check (array int)) "skewed 1-domain = 4-domain" (fill p1) (fill p4))

let test_nested_distinct_pools () =
  (* A loop on one pool whose body drives a loop on a different pool —
     the MCTS-worker-calls-einsum shape.  Must neither deadlock nor
     corrupt either loop's results. *)
  Pool.with_pool ~domains:3 (fun outer ->
      Pool.with_pool ~domains:2 (fun inner ->
          let results = Array.make 6 0 in
          Pool.parallel_for outer ~n:6 ~chunks:6 (fun lo hi ->
              for i = lo to hi - 1 do
                let acc = Atomic.make 0 in
                Pool.parallel_for inner ~n:200 (fun lo' hi' ->
                    let s = ref 0 in
                    for j = lo' to hi' - 1 do
                      s := !s + j
                    done;
                    let rec add () =
                      let cur = Atomic.get acc in
                      if not (Atomic.compare_and_set acc cur (cur + !s)) then add ()
                    in
                    add ());
                results.(i) <- Atomic.get acc
              done);
          Alcotest.(check (array int)) "inner sums under outer loop"
            (Array.make 6 (200 * 199 / 2))
            results))

let test_steal_under_cancellation () =
  (* Trip the token while distributed ranges are still waiting in other
     deques: the steals must observe the trip and discard, never
     execute, the stolen ranges — and the drain still terminates. *)
  with_pools (fun _ p4 ->
      for round = 1 to 5 do
        let tok = Robust.Cancel.create () in
        let executed = Atomic.make 0 in
        (match
           Pool.parallel_for p4 ~cancel:tok ~n:1024 ~chunks:64 (fun lo hi ->
               if lo = 0 then Robust.Cancel.cancel ~reason:"steal-test" tok
               else
                 for _ = 1 to 50 do
                   Domain.cpu_relax ()
                 done;
               Atomic.set executed (Atomic.get executed + (hi - lo)))
         with
        | () -> Alcotest.fail "expected Cancelled"
        | exception Robust.Cancel.Cancelled _ -> ());
        let ran = Atomic.get executed in
        Alcotest.(check bool)
          (Printf.sprintf "round %d: unclaimed ranges discarded (%d < 1024)" round ran)
          true
          (ran < 1024);
        (* the pool survives every round *)
        let out = Array.make 64 0 in
        Pool.parallel_for p4 ~n:64 (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- i
            done);
        Alcotest.(check int) "reusable" 63 out.(63)
      done)

let test_map_large_cheap () =
  (* The large-array path: no per-element scheduling, order preserved,
     and the result matches Array.map exactly even for a cheap f. *)
  with_pools (fun p1 p4 ->
      let arr = Array.init 50_000 (fun i -> i) in
      let expect = Array.map (fun i -> (i * 7) + 1) arr in
      Alcotest.(check (array int)) "1-domain large map" expect
        (Pool.map p1 (fun i -> (i * 7) + 1) arr);
      Alcotest.(check (array int)) "4-domain large map" expect
        (Pool.map p4 (fun i -> (i * 7) + 1) arr);
      (* boundary between the small (per-element) and large path *)
      for n = 7 to 10 do
        let arr = Array.init n (fun i -> i) in
        Alcotest.(check (array int))
          (Printf.sprintf "boundary n=%d" n)
          (Array.map (fun i -> i - 3) arr)
          (Pool.map p4 (fun i -> i - 3) arr)
      done)

let test_set_default_domains_racing () =
  (* Retiring the default pool while another domain still drives a loop
     on it must let that loop finish normally; the old pool is shut
     down when it drains, and later submissions to it run sequentially
     but correctly. *)
  let old = Pool.get_default () in
  let n = 100_000 in
  let out = Array.make n 0 in
  let started = Atomic.make false in
  let runner =
    Domain.spawn (fun () ->
        Pool.parallel_for old ~n ~chunks:256 (fun lo hi ->
            Atomic.set started true;
            for i = lo to hi - 1 do
              out.(i) <- i + 1
            done))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Pool.set_default_domains 2;
  let fresh = Pool.get_default () in
  Domain.join runner;
  Alcotest.(check bool) "a new default pool exists" true (fresh != old);
  Alcotest.(check int) "new default size" 2 (Pool.size fresh);
  let ok = ref true in
  for i = 0 to n - 1 do
    if out.(i) <> i + 1 then ok := false
  done;
  Alcotest.(check bool) "racing loop completed correctly" true !ok;
  (* the retired pool still serves loops (sequentially) *)
  let out2 = Array.make 128 0 in
  Pool.parallel_for old ~n:128 (fun lo hi ->
      for i = lo to hi - 1 do
        out2.(i) <- i * 2
      done);
  Alcotest.(check int) "retired pool still correct" 254 out2.(127);
  (* and the new default is fully functional *)
  let out3 = Array.make 128 0 in
  Pool.parallel_for fresh ~n:128 (fun lo hi ->
      for i = lo to hi - 1 do
        out3.(i) <- i + 10
      done);
  Alcotest.(check int) "new default works" 137 out3.(127)

(* --- Einsum determinism across pool sizes -------------------------------- *)

(* Bit-identical means exactly equal float arrays, not within-epsilon. *)
let bits t = Array.map Int64.bits_of_float (Tensor.unsafe_data t)

let einsum_specs =
  [
    ("ik,kj->ij", [ [| 24; 17 |]; [| 17; 31 |] ]);
    ("bik,kj->bij", [ [| 3; 14; 9 |]; [| 9; 21 |] ]);
    ("nchw,dc->ndhw", [ [| 2; 6; 7; 7 |]; [| 5; 6 |] ]);
    ("i,i->", [ [| 257 |]; [| 257 |] ]);
    ("ij->j", [ [| 33; 19 |] ]);
    ("abc,cd,db->a", [ [| 5; 6; 7 |]; [| 7; 8 |]; [| 8; 6 |] ]);
  ]

let test_einsum_bit_identical () =
  (* Across 1/2/4-domain pools AND across repeated runs on the same
     pool: the work-stealing schedule varies run to run, the results
     must not. *)
  with_pools (fun p1 p4 ->
      Pool.with_pool ~domains:2 (fun p2 ->
          let rng = Rng.create ~seed:99 in
          List.iter
            (fun (spec, shapes) ->
              (* a batch of random instances per spec *)
              for _ = 1 to 3 do
                let tensors =
                  List.map (fun sh -> Tensor.rand_normal rng ~scale:1.0 sh) shapes
                in
                let a = Einsum.einsum ~pool:p1 spec tensors in
                let b2 = Einsum.einsum ~pool:p2 spec tensors in
                let b = Einsum.einsum ~pool:p4 spec tensors in
                let b' = Einsum.einsum ~pool:p4 spec tensors in
                Alcotest.(check (array int64))
                  (spec ^ " 1 vs 4 domains bit-identical") (bits a) (bits b);
                Alcotest.(check (array int64))
                  (spec ^ " 1 vs 2 domains bit-identical") (bits a) (bits b2);
                Alcotest.(check (array int64))
                  (spec ^ " repeated run bit-identical") (bits b) (bits b');
                Alcotest.(check (array int))
                  (spec ^ " same shape") (Tensor.shape a) (Tensor.shape b)
              done)
            einsum_specs))

let test_einsum_large_parallel_path () =
  (* Big enough to cross the sequential-work threshold, so the 4-domain
     run really exercises chunked execution. *)
  with_pools (fun p1 p4 ->
      let rng = Rng.create ~seed:5 in
      let a = Tensor.rand_normal rng ~scale:1.0 [| 64; 48 |] in
      let b = Tensor.rand_normal rng ~scale:1.0 [| 48; 64 |] in
      let p = Einsum.plan "ik,kj->ij" [ [| 64; 48 |]; [| 48; 64 |] ] in
      let r1 = Einsum.run ~pool:p1 p [ a; b ] in
      let r4 = Einsum.run ~pool:p4 p [ a; b ] in
      Alcotest.(check (array int64)) "matmul bit-identical" (bits r1) (bits r4))

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for = sequential" `Quick
            test_parallel_for_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_parallel_for_edge_cases;
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "usable after raise" `Quick test_pool_usable_after_raise;
          Alcotest.test_case "cancellation" `Quick test_pool_cancellation;
          Alcotest.test_case "nested calls" `Quick test_nested_calls_do_not_deadlock;
          Alcotest.test_case "num_domains" `Quick test_num_domains_positive;
          Alcotest.test_case "parse_domains" `Quick test_parse_domains;
          Alcotest.test_case "SYNO_DOMAINS env" `Quick test_num_domains_env;
          Alcotest.test_case "contended fallback polls cancellation" `Quick
            test_contended_fallback_polls_cancellation;
          Alcotest.test_case "skewed workload" `Quick test_skewed_workload;
          Alcotest.test_case "nested distinct pools" `Quick test_nested_distinct_pools;
          Alcotest.test_case "steal under cancellation" `Quick
            test_steal_under_cancellation;
          Alcotest.test_case "map large cheap f" `Quick test_map_large_cheap;
          Alcotest.test_case "set_default_domains racing" `Quick
            test_set_default_domains_racing;
        ] );
      ( "einsum",
        [
          Alcotest.test_case "random specs bit-identical" `Quick test_einsum_bit_identical;
          Alcotest.test_case "large parallel path" `Quick test_einsum_large_parallel_path;
        ] );
    ]
