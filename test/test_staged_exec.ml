(* Differential tests: the materialized-reduction executor must agree
   with the reference loop nest on every operator, including randomly
   synthesized ones. *)

module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Graph = Pgraph.Graph
module Zoo = Syno.Zoo
module Reference = Lower.Reference
module Staged = Lower.Staged_exec

let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:10 ~k:3 ~g:2 ~s:2 ()

let agree ?(eps = 1e-4) name op v =
  let r = Reference.compile op v in
  let st = Staged.compile op v in
  let rng = Rng.create ~seed:13 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let a = Reference.forward r ~input:x ~weights:w in
  let b = Staged.forward st ~input:x ~weights:w in
  if not (Tensor.equal ~eps a b) then begin
    let da = Tensor.unsafe_data a and db = Tensor.unsafe_data b in
    let worst = ref 0.0 in
    Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. db.(i)))) da;
    Alcotest.failf "%s: staged output deviates (max abs diff %g, %d stages)" name !worst
      (Staged.num_stages st)
  end

let test_zoo_operators () =
  List.iter
    (fun e -> agree e.Zoo.name e.Zoo.operator valuation)
    [
      Zoo.conv2d;
      Zoo.conv1x1;
      Zoo.grouped_conv;
      Zoo.depthwise_conv;
      Zoo.operator1;
      Zoo.operator2;
      Zoo.stacked_conv;
      Zoo.shift_conv;
      Zoo.nas_pte_bottleneck;
      Zoo.nas_pte_range_bottleneck;
      Zoo.nas_pte_depthwise_separable;
    ]

let test_operator1_actually_stages () =
  let st = Staged.compile Zoo.operator1.Zoo.operator valuation in
  Alcotest.(check bool) "op1 has materialized stages" true (Staged.num_stages st >= 1);
  let p = Staged.plan st in
  Alcotest.(check bool) "staging reduces flops" true
    (p.Lower.Staging.total_flops < p.Lower.Staging.naive_flops)

let test_matmul_no_stage_path () =
  (* matmul cannot stage: the executor must still agree via the final
     stage only. *)
  let v = Zoo.Vars.matmul_valuation ~m:6 ~n:5 ~k:7 in
  agree "matmul" Zoo.matmul.Zoo.operator v;
  let st = Staged.compile Zoo.matmul.Zoo.operator v in
  Alcotest.(check int) "no stages" 0 (Staged.num_stages st)

let test_pure_views () =
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:12 ~k:3 ~g:2 ~s:2 () in
  agree "pixel_shuffle" Zoo.pixel_shuffle.Zoo.operator v;
  agree "avgpool" Zoo.avgpool.Zoo.operator v

let test_parallel_bit_identical () =
  (* The executor offers large stages to the default pool; the result
     must be bit-identical (not within-epsilon) at any pool size and
     across repeated runs, since each output element is computed
     independently with domain-private scratch. *)
  let bits t = Array.map Int64.bits_of_float (Tensor.unsafe_data t) in
  Fun.protect
    ~finally:(fun () -> Par.Pool.set_default_domains (Par.Pool.num_domains ()))
    (fun () ->
      List.iter
        (fun e ->
          let op = e.Zoo.operator in
          let st = Staged.compile op valuation in
          let r = Reference.compile op valuation in
          let rng = Rng.create ~seed:31 in
          let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
          let w = Reference.init_weights r rng in
          let run domains =
            Par.Pool.set_default_domains domains;
            Staged.forward st ~input:x ~weights:w
          in
          let a = run 1 and b = run 2 and c = run 4 and c' = run 4 in
          Alcotest.(check (array int64))
            (e.Zoo.name ^ ": 1 vs 2 domains") (bits a) (bits b);
          Alcotest.(check (array int64))
            (e.Zoo.name ^ ": 1 vs 4 domains") (bits a) (bits c);
          Alcotest.(check (array int64))
            (e.Zoo.name ^ ": repeated 4-domain runs") (bits c) (bits c'))
        [ Zoo.conv2d; Zoo.operator1 ])

(* Property: any canonically synthesized operator executes identically
   under both backends (and under the gather+einsum program). *)
let random_op_agreement =
  QCheck.Test.make ~name:"random synthesized operators agree across all backends" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let open Zoo.Vars in
      let sz = Shape.Size.of_var in
      let valuations =
        [ Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:6 ~k:3 ~g:2 ~s:2 () ]
      in
      let base =
        Search.Enumerate.default_config
          ~output_shape:[ sz n; sz c_out; sz h; sz w ]
          ~desired_shape:[ sz n; sz c_in; sz h; sz w ]
          ~valuations ()
      in
      let cfg =
        {
          base with
          Search.Enumerate.max_prims = 7;
          coefficient_candidates = [ sz k; sz s ];
          reduce_candidates = [ sz c_in; sz k ];
          frozen_sizes = [ sz n ];
        }
      in
      let rng = Rng.create ~seed in
      match Search.Enumerate.random_completion cfg rng ~use_distance:true with
      | None -> true (* dead-end trials prove nothing but are fine *)
      | Some op ->
          let v = List.hd valuations in
          let r = Reference.compile op v in
          let st = Staged.compile op v in
          let ep = Lower.Einsum_program.compile op v in
          let data_rng = Rng.create ~seed:(seed + 1) in
          let x = Tensor.rand_normal data_rng ~scale:1.0 (Reference.input_shape r) in
          let w = Reference.init_weights r data_rng in
          let a = Reference.forward r ~input:x ~weights:w in
          let b = Staged.forward st ~input:x ~weights:w in
          let c = Lower.Einsum_program.forward ep ~input:x ~weights:w in
          Tensor.equal ~eps:1e-4 a b && Tensor.equal ~eps:1e-4 a c)

let () =
  Alcotest.run "staged_exec"
    [
      ( "differential",
        [
          Alcotest.test_case "zoo operators" `Quick test_zoo_operators;
          Alcotest.test_case "operator1 stages" `Quick test_operator1_actually_stages;
          Alcotest.test_case "matmul final-only" `Quick test_matmul_no_stage_path;
          Alcotest.test_case "pure views" `Quick test_pure_views;
          Alcotest.test_case "parallel bit-identical" `Quick test_parallel_bit_identical;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest random_op_agreement ]);
    ]
