(* Tests for the static analysis layer: the interval domain, the bounds
   verifier (every zoo operator proved or exactly padded; corrupted
   programs refused before any allocation), the rewrite-soundness
   checker, and the lint pass. *)

module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Guard = Robust.Guard
module Interval = Analysis.Interval
module Verify = Analysis.Verify
module Rewrite = Analysis.Rewrite
module Lint = Analysis.Lint
module Zoo = Syno.Zoo

let conv = Zoo.conv2d.Zoo.operator
let tiny = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:4 ~k:3 ~g:2 ~s:2 ()
let foreign = Zoo.Vars.matmul_valuation ~m:4 ~n:4 ~k:4

let interval = Alcotest.testable Interval.pp Interval.equal
let iv = Interval.make

(* --- Interval domain -------------------------------------------------------- *)

let test_interval_arith () =
  Alcotest.check interval "add" (iv 2 8) (Interval.add (iv 0 5) (iv 2 3));
  Alcotest.check interval "sub" (iv (-3) 3) (Interval.sub (iv 0 5) (iv 2 3));
  Alcotest.check interval "scale pos" (iv 0 15) (Interval.scale 3 (iv 0 5));
  Alcotest.check interval "scale neg" (iv (-15) 0) (Interval.scale (-3) (iv 0 5));
  Alcotest.check interval "fdiv floors negatives" (iv (-2) 1) (Interval.fdiv (iv (-4) 3) 2);
  Alcotest.check interval "join" (iv (-1) 9) (Interval.join (iv (-1) 2) (iv 4 9));
  Alcotest.check_raises "empty interval refused" (Invalid_argument "Interval.make: [3, 2] is empty")
    (fun () -> ignore (Interval.make 3 2))

let test_interval_emod () =
  (* Within one period: exact, not widened. *)
  Alcotest.check interval "in-range pass-through" (iv 1 3) (Interval.emod (iv 1 3) 5);
  Alcotest.check interval "single shifted period" (iv 1 3) (Interval.emod (iv 6 8) 5);
  Alcotest.check interval "negative period" (iv 2 4) (Interval.emod (iv (-3) (-1)) 5);
  (* Period crossing: widened to the full range. *)
  Alcotest.check interval "wraparound widens" (iv 0 4) (Interval.emod (iv 3 6) 5)

let test_interval_eval_tighter_than_bounds () =
  (* (i + 8) % 8 over i in [0, 1]: the operand range [8, 9] stays in a
     single period, so the interval domain keeps the exact [0, 1];
     Ast.bounds widens to [0, 7]. *)
  let it = { Ast.id = 0; dom = Size.of_int 2; role = Ast.Spatial } in
  let e = Ast.modulo (Ast.add (Ast.iter it) (Ast.const 8)) (Size.of_int 8) in
  let lookup _ = failwith "no variables" in
  Alcotest.check interval "exact period" (iv 0 1) (Interval.eval ~lookup e);
  let lo, hi = Ast.bounds ~lookup e in
  Alcotest.(check (pair int int)) "Ast.bounds is wider" (0, 7) (lo, hi)

(* Soundness + exactness against brute force on randomized small
   expressions is covered by the zoo sweep below, which compares the
   static intervals with the dynamically attained min/max. *)

(* --- Bounds verification over the zoo --------------------------------------- *)

let valuation_for (entry : Zoo.entry) =
  (* Operators over the conv signature instantiate under [tiny]; the
     matmul entry needs its own variables. *)
  if Option.is_some (Verify.program_opt entry.Zoo.operator tiny) then tiny else foreign

let test_zoo_never_violates () =
  List.iter
    (fun (entry : Zoo.entry) ->
      let v = valuation_for entry in
      match Verify.program_opt entry.Zoo.operator v with
      | None -> Alcotest.failf "%s: not instantiable under either valuation" entry.Zoo.name
      | Some (Verify.Violation d) ->
          Alcotest.failf "%s: violation: %s" entry.Zoo.name (Verify.diagnostic_to_string d)
      | Some Verify.Proved | Some (Verify.Padded _) -> ())
    Zoo.all

let test_zoo_verdict_shapes () =
  (* conv2d unfolds with a centering offset: padded, not proved. *)
  (match Verify.program conv tiny with
  | Verify.Padded regions ->
      Alcotest.(check bool) "conv2d has padded regions" true (regions <> [])
  | v -> Alcotest.failf "conv2d: expected padded, got %s" (Verify.verdict_to_string v));
  (* conv1x1 and matmul index exactly: proved. *)
  (match Verify.program Zoo.conv1x1.Zoo.operator tiny with
  | Verify.Proved -> ()
  | v -> Alcotest.failf "conv1x1: expected proved, got %s" (Verify.verdict_to_string v));
  match Verify.program Zoo.matmul.Zoo.operator foreign with
  | Verify.Proved -> ()
  | v -> Alcotest.failf "matmul: expected proved, got %s" (Verify.verdict_to_string v)

(* The static intervals for the input gather must match the dynamically
   attained min/max exactly: enumerate the full iteration space and
   compare.  This is the "precisely identifies the padded regions"
   guarantee, checked operator by operator. *)
let test_zoo_input_intervals_exact () =
  List.iter
    (fun (entry : Zoo.entry) ->
      let op = entry.Zoo.operator in
      let v = valuation_for entry in
      let lookup = Valuation.lookup v in
      List.iteri
        (fun dim expr ->
          let iters = Ast.iters expr in
          let doms = List.map (fun it -> Size.eval it.Ast.dom lookup) iters in
          let total = List.fold_left ( * ) 1 doms in
          if total <= 1 lsl 16 then begin
            let ids = Array.of_list (List.map (fun it -> it.Ast.id) iters) in
            let doms = Array.of_list doms in
            let n = Array.length doms in
            let values = Hashtbl.create 16 in
            let dyn_lo = ref max_int and dyn_hi = ref min_int in
            for flat = 0 to total - 1 do
              let rem = ref flat in
              for i = n - 1 downto 0 do
                Hashtbl.replace values ids.(i) (!rem mod doms.(i));
                rem := !rem / doms.(i)
              done;
              let x = Ast.eval ~env:(Hashtbl.find values) ~lookup expr in
              if x < !dyn_lo then dyn_lo := x;
              if x > !dyn_hi then dyn_hi := x
            done;
            let static = Interval.eval ~lookup expr in
            Alcotest.check interval
              (Printf.sprintf "%s input dim %d interval is exact" entry.Zoo.name dim)
              (iv !dyn_lo !dyn_hi) static
          end)
        op.Graph.op_input_exprs)
    Zoo.all

let corrupt op =
  (* Shift the first input expression past twice its extent: every
     access lands above the window, a statically refutable miscompile. *)
  let shift e s = Ast.add e (Ast.Size_const (Size.mul (Size.of_int 2) s)) in
  {
    op with
    Graph.op_input_exprs =
      (match (op.Graph.op_input_exprs, op.Graph.op_input_shape) with
      | e :: es, s :: _ -> shift e s :: es
      | _ -> assert false);
  }

let test_corrupt_is_violation () =
  let bad = corrupt conv in
  (match Verify.program bad tiny with
  | Verify.Violation _ -> ()
  | v -> Alcotest.failf "corrupted conv: expected violation, got %s" (Verify.verdict_to_string v));
  match Verify.admit bad [ tiny ] with
  | Error (Guard.Static_violation msg) ->
      Alcotest.(check bool) "diagnostic names the window" true
        (Astring.String.is_infix ~affix:"window" msg)
  | Error k -> Alcotest.failf "wrong kind %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "corrupted operator admitted"

let test_admit_allocates_nothing () =
  let before = Tensor.allocations () in
  List.iter
    (fun (entry : Zoo.entry) ->
      ignore (Verify.admit entry.Zoo.operator [ valuation_for entry ]))
    Zoo.all;
  (match Verify.admit (corrupt conv) [ tiny ] with Error _ -> () | Ok () -> ());
  Alcotest.(check int) "static verification allocates no tensor" 0
    (Tensor.allocations () - before)

let test_admit_skips_non_instantiable () =
  match Verify.admit conv [ foreign ] with
  | Ok () -> ()
  | Error k -> Alcotest.failf "foreign valuation must be skipped, got %s" (Guard.kind_label k)

(* --- Rewrite soundness -------------------------------------------------------- *)

let exact_ctx vals = Simplify.ctx ~approx_factor:None vals
let approx_ctx vals = Simplify.ctx vals

let test_zoo_rewrites_sound () =
  List.iter
    (fun (entry : Zoo.entry) ->
      let vals = [ valuation_for entry ] in
      List.iter
        (fun ctx ->
          let report = Rewrite.check_operator ctx entry.Zoo.operator in
          match report.Rewrite.rp_failures with
          | [] -> ()
          | f :: _ ->
              Alcotest.failf "%s: %s" entry.Zoo.name (Rewrite.failure_to_string f))
        [ exact_ctx vals; approx_ctx vals ])
    Zoo.all

let test_rewrite_checker_catches_unsound () =
  (* Plant the classic broken rule: (i + j) / B = i / B without any
     range justification for j. *)
  let b = Size.of_int 4 in
  let i = { Ast.id = 0; dom = Size.of_int 8; role = Ast.Spatial } in
  let j = { Ast.id = 1; dom = Size.of_int 8; role = Ast.Reduction } in
  let before = Ast.div (Ast.add (Ast.iter i) (Ast.iter j)) b in
  let after = Ast.div (Ast.iter i) b in
  let rw = { Simplify.rw_before = before; rw_after = after; rw_approx = false } in
  (match Rewrite.check_rewrite [ tiny ] rw with
  | Some f, `Exhaustive ->
      Alcotest.(check bool) "witness recorded" true (f.Rewrite.fl_witness <> [])
  | Some _, `Sampled -> Alcotest.fail "a 64-point space must be checked exhaustively"
  | None, _ -> Alcotest.fail "unsound rewrite not caught");
  (* The same pair tagged approximate is exempt. *)
  let approx = { rw with Simplify.rw_approx = true } in
  let report =
    List.fold_left
      (fun acc rw' ->
        if rw'.Simplify.rw_approx then
          { acc with Rewrite.rp_checked = acc.Rewrite.rp_checked + 1; rp_approx = acc.Rewrite.rp_approx + 1 }
        else acc)
      Rewrite.empty_report [ approx ]
  in
  Alcotest.(check int) "approx exempt" 1 report.Rewrite.rp_approx

let test_traced_simplify_agrees () =
  (* simplify_traced returns the same normal form as simplify, and the
     trace actually contains the fired rules for an expression known to
     simplify. *)
  let ctx = approx_ctx [ tiny ] in
  List.iter
    (fun e ->
      let plain = Simplify.simplify ctx e in
      let traced, fired = Simplify.simplify_traced ctx e in
      Alcotest.(check bool) "same normal form" true (Ast.equal plain traced);
      if not (Ast.equal plain e) then
        Alcotest.(check bool) "rewrites recorded" true (fired <> []))
    conv.Graph.op_input_exprs

(* --- Lint -------------------------------------------------------------------- *)

let test_zoo_lint_clean () =
  List.iter
    (fun (entry : Zoo.entry) ->
      let findings =
        Lint.check ~valuations:[ valuation_for entry ] entry.Zoo.operator
      in
      match Lint.errors findings with
      | [] -> ()
      | f :: _ -> Alcotest.failf "%s: %s" entry.Zoo.name (Lint.finding_to_string f))
    Zoo.all

let test_lint_futile_reduction () =
  (* Blank conv2d's input gather: its reduction iterators then reach only
     a single weight group, i.e. the contraction folds to a constant. *)
  let bad =
    { conv with Graph.op_input_exprs = List.map (fun _ -> Ast.const 0) conv.Graph.op_input_exprs }
  in
  let findings = Lint.check bad in
  Alcotest.(check bool) "futile-reduction reported" true
    (List.exists (fun f -> f.Lint.lint_rule = "futile-reduction") (Lint.errors findings))

let test_lint_unknown_iterator () =
  let ghost = { Ast.id = 999; dom = Size.of_int 4; role = Ast.Reduction } in
  let bad =
    {
      conv with
      Graph.op_input_exprs =
        (match conv.Graph.op_input_exprs with
        | e :: es -> Ast.add e (Ast.iter ghost) :: es
        | [] -> assert false);
    }
  in
  let findings = Lint.check bad in
  Alcotest.(check bool) "unknown-iterator reported" true
    (List.exists (fun f -> f.Lint.lint_rule = "unknown-iterator") (Lint.errors findings))

let test_lint_dead_axis () =
  (* Deleting every use of a spatial iterator replicates the output. *)
  let bad =
    { conv with Graph.op_weights = []; Graph.op_input_exprs = []; Graph.op_input_shape = [] }
  in
  let findings = Lint.check bad in
  Alcotest.(check bool) "dead-axis reported" true
    (List.exists (fun f -> f.Lint.lint_rule = "dead-axis") (Lint.errors findings))

let test_lint_cost_cross_check () =
  List.iter
    (fun (entry : Zoo.entry) ->
      let op = entry.Zoo.operator in
      let v = valuation_for entry in
      let c = Lint.cost op v in
      Alcotest.(check int) (entry.Zoo.name ^ " flops") (Pgraph.Flops.naive_flops op v)
        c.Lint.c_flops;
      Alcotest.(check int) (entry.Zoo.name ^ " peak") (Pgraph.Flops.peak_footprint op v)
        c.Lint.c_peak_elems;
      let est = Validate.Budget.estimate op v in
      Alcotest.(check int)
        (entry.Zoo.name ^ " budget bytes = priced peak")
        (Validate.Budget.bytes_per_elem * c.Lint.c_peak_elems)
        est.Validate.Budget.est_bytes;
      Alcotest.(check int) (entry.Zoo.name ^ " budget flops") c.Lint.c_flops
        est.Validate.Budget.est_flops)
    Zoo.all

let () =
  Alcotest.run "analysis"
    [
      ( "interval",
        [
          Alcotest.test_case "arithmetic" `Quick test_interval_arith;
          Alcotest.test_case "emod wraparound" `Quick test_interval_emod;
          Alcotest.test_case "tighter than Ast.bounds" `Quick
            test_interval_eval_tighter_than_bounds;
        ] );
      ( "verify",
        [
          Alcotest.test_case "zoo never violates" `Quick test_zoo_never_violates;
          Alcotest.test_case "verdict shapes" `Quick test_zoo_verdict_shapes;
          Alcotest.test_case "input intervals exact" `Quick test_zoo_input_intervals_exact;
          Alcotest.test_case "corrupted program is a violation" `Quick
            test_corrupt_is_violation;
          Alcotest.test_case "zero allocations" `Quick test_admit_allocates_nothing;
          Alcotest.test_case "skips non-instantiable" `Quick test_admit_skips_non_instantiable;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "zoo rewrites sound" `Quick test_zoo_rewrites_sound;
          Alcotest.test_case "catches an unsound rule" `Quick
            test_rewrite_checker_catches_unsound;
          Alcotest.test_case "traced simplify agrees" `Quick test_traced_simplify_agrees;
        ] );
      ( "lint",
        [
          Alcotest.test_case "zoo is clean" `Quick test_zoo_lint_clean;
          Alcotest.test_case "futile reduction" `Quick test_lint_futile_reduction;
          Alcotest.test_case "unknown iterator" `Quick test_lint_unknown_iterator;
          Alcotest.test_case "dead axis" `Quick test_lint_dead_axis;
          Alcotest.test_case "cost cross-check" `Quick test_lint_cost_cross_check;
        ] );
    ]
