(* End-to-end tests for the syno CLI's exit-code contract and graceful
   shutdown: 0 success, 1 usage/validation error, 2 search failure, 130
   interrupted.  The SIGINT test drives a real child process: spawn a
   long search with checkpointing, wait for the checkpoint file to
   prove the search is underway, send SIGINT, and assert the process
   flushed its checkpoint and exited 130 — then that resuming from that
   checkpoint replays to the same top-k as an uninterrupted run. *)

(* The CLI binary sits next to this test in the build tree
   (_build/default/{test,bin}/), so resolve it relative to the test
   executable rather than the cwd — dune runtest and dune exec run
   from different directories. *)
let cli =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) Filename.parent_dir_name)
    (Filename.concat "bin" "syno_cli.exe")

let with_temp_dir f =
  let dir = Filename.temp_file "syno_cli" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Run the CLI to completion, capturing stdout; stderr goes to a file
   too so failures can report it. *)
let run_cli args =
  with_temp_dir (fun dir ->
      let out_path = Filename.concat dir "stdout" in
      let err_path = Filename.concat dir "stderr" in
      let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      let err_fd = Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      let pid =
        Unix.create_process cli (Array.of_list (cli :: args)) Unix.stdin out_fd err_fd
      in
      Unix.close out_fd;
      Unix.close err_fd;
      let _, status = Unix.waitpid [] pid in
      let slurp path =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let code =
        match status with
        | Unix.WEXITED c -> c
        | Unix.WSIGNALED s -> Alcotest.failf "killed by signal %d" s
        | Unix.WSTOPPED s -> Alcotest.failf "stopped by signal %d" s
      in
      (code, slurp out_path, slurp err_path))

let test_exit_codes () =
  let code, out, _ = run_cli [ "list" ] in
  Alcotest.(check int) "list exits 0" 0 code;
  Alcotest.(check bool) "catalog printed" true
    (Astring.String.is_infix ~affix:"conv2d" out);
  let code, _, _ = run_cli [ "describe"; "no-such-operator" ] in
  Alcotest.(check int) "unknown operator exits 1" 1 code;
  with_temp_dir (fun dir ->
      let bad = Filename.concat dir "bad.ckpt" in
      let oc = open_out bad in
      output_string oc "this is not a checkpoint\n";
      close_out oc;
      let code, _, err =
        run_cli [ "search"; "--iterations"; "5"; "--max-prims"; "4"; "--resume"; bad ]
      in
      Alcotest.(check int) "corrupt resume exits 2" 2 code;
      Alcotest.(check bool) "error names the file" true
        (Astring.String.is_infix ~affix:"bad.ckpt" err))

(* Every sharding flag parses through a validated converter: a
   non-positive count, a negative restart budget, or a non-finite
   timeout must die at parse time with a one-line error naming the flag
   and the constraint — never reach the coordinator as nonsense. *)
let test_sharding_flag_validation () =
  let rejects flag value constraint_hint =
    let code, _, err = run_cli [ "search"; "--iterations"; "1"; flag ^ "=" ^ value ] in
    Alcotest.(check bool)
      (Printf.sprintf "%s=%s exits non-zero" flag value)
      true (code <> 0);
    Alcotest.(check bool)
      (Printf.sprintf "%s=%s error names the flag" flag value)
      true
      (Astring.String.is_infix ~affix:flag err);
    Alcotest.(check bool)
      (Printf.sprintf "%s=%s error states the constraint" flag value)
      true
      (Astring.String.is_infix ~affix:constraint_hint err)
  in
  rejects "--shards" "0" "must be >= 1";
  rejects "--shards" "junk" "expected an integer";
  rejects "--shard-workers" "0" "must be >= 1";
  rejects "--max-restarts" "-1" "must be >= 0";
  rejects "--heartbeat-timeout" "0" "must be > 0";
  rejects "--heartbeat-timeout" "nan" "must be > 0";
  rejects "--heartbeat-timeout" "junk" "expected a number";
  rejects "--shard-deadline" "-2.5" "must be > 0"

(* The remaining search flags are validated the same way: the fault
   rate is a probability, the fault seed an integer, and every path
   flag must name a writable file — not the empty string and not a
   directory.  cmdliner reports parse errors with exit 124. *)
let test_fault_and_path_flag_validation () =
  (* cmdliner wraps its error output, so a hint with spaces can be
     split across lines; compare against a whitespace-flattened view. *)
  let flatten s = String.concat " " (Astring.String.fields ~empty:false s) in
  let rejects flag value constraint_hint =
    let code, _, err = run_cli [ "search"; "--iterations"; "1"; flag ^ "=" ^ value ] in
    let err = flatten err in
    Alcotest.(check int) (Printf.sprintf "%s=%S exits 124" flag value) 124 code;
    Alcotest.(check bool)
      (Printf.sprintf "%s=%S error names the flag" flag value)
      true
      (Astring.String.is_infix ~affix:flag err);
    Alcotest.(check bool)
      (Printf.sprintf "%s=%S error states the constraint" flag value)
      true
      (Astring.String.is_infix ~affix:constraint_hint err)
  in
  rejects "--fault-rate" "nan" "must be in [0, 1]";
  rejects "--fault-rate" "1.5" "must be in [0, 1]";
  rejects "--fault-rate" "junk" "expected a number";
  rejects "--fault-seed" "junk" "expected an integer";
  rejects "--checkpoint" "" "must not be empty";
  rejects "--checkpoint" "   " "must not be empty";
  rejects "--resume" "" "must not be empty";
  rejects "--corpus" "" "must not be empty";
  with_temp_dir (fun dir ->
      List.iter
        (fun flag ->
          let code, _, err =
            run_cli [ "search"; "--iterations"; "1"; flag ^ "=" ^ dir ]
          in
          Alcotest.(check int) (Printf.sprintf "%s=<dir> exits 124" flag) 124 code;
          Alcotest.(check bool)
            (Printf.sprintf "%s=<dir> error says directory" flag)
            true
            (Astring.String.is_infix ~affix:"is a directory" (flatten err)))
        [ "--checkpoint"; "--resume"; "--corpus" ])

(* --specialize parses through the same validated-converter discipline
   on both commands that take it: junk dies at parse time with a
   one-line error naming the flag and the accepted values (exit 124),
   and every accepted value parses. *)
let test_specialize_flag_validation () =
  let flatten s = String.concat " " (Astring.String.fields ~empty:false s) in
  List.iter
    (fun prefix ->
      let code, _, err = run_cli (prefix @ [ "--specialize"; "junk" ]) in
      let err = flatten err in
      Alcotest.(check int) "--specialize=junk exits 124" 124 code;
      Alcotest.(check bool) "error names the flag" true
        (Astring.String.is_infix ~affix:"--specialize" err);
      Alcotest.(check bool) "error lists the accepted values" true
        (Astring.String.is_infix ~affix:"expected on, off or auto" err))
    [
      [ "train"; "conv2d"; "--epochs"; "1" ];
      [ "serve"; "--socket"; "/tmp/syno-test.sock" ];
    ];
  (* The accepted values get past argument parsing: "serve" with a
     socket path inside an unwritable directory fails at startup (exit
     2), not at parse time (124). *)
  List.iter
    (fun mode ->
      let code, _, _ =
        run_cli
          [ "serve"; "--socket"; "/nonexistent-dir/s.sock"; "--specialize"; mode ]
      in
      Alcotest.(check int) (Printf.sprintf "--specialize=%s parses" mode) 2 code)
    [ "on"; "off"; "auto" ]

(* syno lint --regions: one machine-readable certificate line per
   operator, and the degenerate-free zoo keeps the all-border lint rule
   quiet. *)
let test_lint_regions () =
  let code, out, _ = run_cli [ "lint"; "conv2d"; "--regions"; "--hw"; "10" ] in
  Alcotest.(check int) "lint --regions exits 0" 0 code;
  Alcotest.(check bool) "certificate line printed" true
    (Astring.String.is_infix ~affix:"conv2d regions verdict=padded interior=" out);
  Alcotest.(check bool) "strip count printed" true
    (Astring.String.is_infix ~affix:"strips=" out);
  (* Without the flag the line is absent. *)
  let code, out, _ = run_cli [ "lint"; "conv2d"; "--hw"; "10" ] in
  Alcotest.(check int) "plain lint exits 0" 0 code;
  Alcotest.(check bool) "no certificate line without --regions" false
    (Astring.String.is_infix ~affix:" regions " out);
  (* --all prints a certificate per catalog operator, including the
     fully-interior proved ones. *)
  let code, out, _ = run_cli [ "lint"; "--all"; "--regions"; "--hw"; "10" ] in
  Alcotest.(check int) "lint --all --regions exits 0" 0 code;
  Alcotest.(check bool) "proved operators report interior fraction 1" true
    (Astring.String.is_infix ~affix:"conv1x1 regions verdict=proved interior=1.000 strips=0"
       out)

(* --corpus end to end.  Distillation needs a real differential
   failure, which the CLI cannot fabricate, so the corpus is seeded by
   an in-process faulted search configured exactly like the CLI run
   (same seed, domains, guard); the CLI then re-encounters the same
   family and must reject it by replay — the exact per-stage counts
   appear in the admission and corpus stats lines — without adding
   anything new to the file. *)
let test_corpus_flag_roundtrip () =
  with_temp_dir (fun dir ->
      let corpus = Filename.concat dir "bugs.corpus" in
      let fault =
        Validate.Differential.fault ~seed:3 ~rate:0.5 Validate.Differential.Einsum
      in
      let seeded =
        Syno.Api.search_conv_operators_run ~iterations:150 ~max_prims:6 ~domains:1
          ~guard:(Robust.Guard.policy ~retries:2 ()) ~validate:true
          ~validate_config:(Validate.Differential.config ~fault ())
          ~corpus ~rng:(Nd.Rng.create ~seed:2024)
          ~valuations:Syno.Api.default_search_valuations ()
      in
      let d =
        match seeded.Syno.Api.admission with
        | Some s -> s.Validate.Admit.rejected_differential
        | None -> 0
      in
      Alcotest.(check bool) "seeding run distilled counterexamples" true (d > 0);
      let n =
        match Validate.Corpus.load_result ~path:corpus with
        | Ok entries -> List.length entries
        | Error e -> Alcotest.fail (Validate.Corpus.string_of_error e)
      in
      let code, out, err =
        run_cli
          [ "search"; "--iterations"; "150"; "--max-prims"; "6"; "--seed"; "2024";
            "--validate"; "--corpus"; corpus; "--top"; "5" ]
      in
      Alcotest.(check int) ("corpus CLI run exits 0: " ^ err) 0 code;
      Alcotest.(check bool)
        (Printf.sprintf "admission line reports replay %d" d)
        true
        (Astring.String.is_infix ~affix:(Printf.sprintf "replay %d," d) out);
      Alcotest.(check bool)
        (Printf.sprintf "corpus line reports %d replay rejections" d)
        true
        (Astring.String.is_infix ~affix:(Printf.sprintf "rejected %d" d) out);
      match Validate.Corpus.load_result ~path:corpus with
      | Ok entries2 ->
          Alcotest.(check int) "re-encounter adds no new entries" n (List.length entries2)
      | Error e -> Alcotest.fail (Validate.Corpus.string_of_error e))

(* The "#k reward ... <signature>" result lines, the part of the output
   that must replay identically. *)
let result_lines out =
  List.filter
    (fun line -> String.length line > 0 && line.[0] = '#')
    (String.split_on_char '\n' out)

let search_args = [ "--max-prims"; "6"; "--seed"; "3"; "--top"; "5" ]

let test_sigint_graceful_shutdown () =
  with_temp_dir (fun dir ->
      let ckpt = Filename.concat dir "search.ckpt" in
      let out_path = Filename.concat dir "stdout" in
      let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      (* An iteration budget far beyond what could finish before the
         signal: the run can only end via the shutdown path. *)
      let args =
        [ "search"; "--iterations"; "2000000000"; "--checkpoint"; ckpt;
          "--checkpoint-every"; "5" ]
        @ search_args
      in
      let pid =
        Unix.create_process cli (Array.of_list (cli :: args)) Unix.stdin out_fd Unix.stderr
      in
      Unix.close out_fd;
      (* Wait for the first checkpoint write — proof the search is in
         its hot loop — before interrupting. *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      while not (Sys.file_exists ckpt) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.05
      done;
      Alcotest.(check bool) "search started (checkpoint appeared)" true
        (Sys.file_exists ckpt);
      Unix.kill pid Sys.sigint;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 130 -> ()
      | Unix.WEXITED c -> Alcotest.failf "expected exit 130, got %d" c
      | Unix.WSIGNALED s -> Alcotest.failf "killed by signal %d (handler not installed?)" s
      | Unix.WSTOPPED s -> Alcotest.failf "stopped by signal %d" s);
      (* The final flush must leave a loadable checkpoint. *)
      (match Search.Checkpoint.load_result ~path:ckpt with
      | Ok entries ->
          Alcotest.(check bool) "flushed checkpoint has entries" true (entries <> [])
      | Error e -> Alcotest.fail (Search.Checkpoint.string_of_error e));
      (* And the interrupted run reported partial results. *)
      let ic = open_in_bin out_path in
      let out = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "partial top-k reported" true (result_lines out <> []);
      Alcotest.(check bool) "interruption reported" true
        (Astring.String.is_infix ~affix:"interrupted" out);
      (* Killed-and-resumed replays to the uninterrupted results. *)
      let iters = [ "--iterations"; "300" ] in
      let code_f, fresh, _ = run_cli (("search" :: iters) @ search_args) in
      let code_r, resumed, _ =
        run_cli (("search" :: iters) @ search_args @ [ "--resume"; ckpt ])
      in
      Alcotest.(check int) "fresh run exits 0" 0 code_f;
      Alcotest.(check int) "resumed run exits 0" 0 code_r;
      Alcotest.(check bool) "fresh run found results" true (result_lines fresh <> []);
      Alcotest.(check (list string)) "resumed top-k identical to uninterrupted"
        (result_lines fresh) (result_lines resumed))

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0 / 1 / 2" `Quick test_exit_codes;
          Alcotest.test_case "SIGINT: flush, 130, resume replays" `Quick
            test_sigint_graceful_shutdown;
        ] );
      ( "flag-validation",
        [
          Alcotest.test_case "sharding flags reject nonsense at parse time" `Quick
            test_sharding_flag_validation;
          Alcotest.test_case "fault + path flags reject nonsense at parse time" `Quick
            test_fault_and_path_flag_validation;
          Alcotest.test_case "--specialize rejects junk at parse time" `Quick
            test_specialize_flag_validation;
        ] );
      ( "regions",
        [ Alcotest.test_case "lint --regions certificate lines" `Quick test_lint_regions ]
      );
      ( "corpus",
        [
          Alcotest.test_case "--corpus: replay on re-encounter, no re-adds" `Quick
            test_corpus_flag_roundtrip;
        ] );
    ]
