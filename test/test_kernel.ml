(* Proof-guided specialization: certificates, translation validation,
   and bit-identity of the checkless executor. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Prim = Pgraph.Prim
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Zoo = Syno.Zoo
module Reference = Lower.Reference
module Staged = Lower.Staged_exec
module Specialize = Lower.Specialize
module Regions = Analysis.Regions
module Certify = Analysis.Certify
module Verify = Analysis.Verify
module Cancel = Robust.Cancel

let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:10 ~k:3 ~g:2 ~s:2 ()

let zoo_cases =
  [
    Zoo.conv2d;
    Zoo.conv1x1;
    Zoo.grouped_conv;
    Zoo.depthwise_conv;
    Zoo.avgpool;
    Zoo.pixel_shuffle;
    Zoo.operator1;
    Zoo.operator2;
    Zoo.stacked_conv;
    Zoo.shift_conv;
    Zoo.nas_pte_grouped;
    Zoo.nas_pte_bottleneck;
    Zoo.nas_pte_range_bottleneck;
    Zoo.nas_pte_depthwise_separable;
  ]

let bits t = Array.map Int64.bits_of_float (Tensor.unsafe_data t)
let ok_graph = function Ok v -> v | Error e -> Alcotest.failf "graph error: %s" e

let certified name op v =
  let st = Staged.compile op v in
  let cert = Regions.of_staged st in
  (match Certify.validate st cert.Regions.rc_plan with
  | Ok _ -> ()
  | Error (Robust.Guard.Static_violation msg) ->
      Alcotest.failf "%s: sound certificate rejected: %s" name msg
  | Error _ -> Alcotest.failf "%s: unexpected guard kind" name);
  (st, cert)

let forward_pair ?cancel name op v =
  let st, cert = certified name op v in
  let sp = Specialize.compile st cert.Regions.rc_plan in
  let r = Staged.reference st in
  let rng = Rng.create ~seed:13 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let a = Staged.forward st ~input:x ~weights:w in
  let b = Specialize.forward ?cancel sp ~input:x ~weights:w in
  (a, b)

let check_identical name op v =
  let a, b = forward_pair name op v in
  Alcotest.(check (array int64)) (name ^ ": bit-identical") (bits a) (bits b)

(* --- Bit-identity over the zoo -------------------------------------------- *)

let test_zoo_bit_identity () =
  List.iter (fun e -> check_identical e.Zoo.name e.Zoo.operator valuation) zoo_cases

let test_matmul_bit_identity () =
  let v = Zoo.Vars.matmul_valuation ~m:6 ~n:5 ~k:7 in
  check_identical "matmul" Zoo.matmul.Zoo.operator v

let test_pool_sizes_bit_identical () =
  Fun.protect
    ~finally:(fun () -> Par.Pool.set_default_domains (Par.Pool.num_domains ()))
    (fun () ->
      List.iter
        (fun e ->
          let st, cert = certified e.Zoo.name e.Zoo.operator valuation in
          let sp = Specialize.compile st cert.Regions.rc_plan in
          let r = Staged.reference st in
          let rng = Rng.create ~seed:31 in
          let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
          let w = Reference.init_weights r rng in
          let reference = Staged.forward st ~input:x ~weights:w in
          List.iter
            (fun domains ->
              Par.Pool.set_default_domains domains;
              let b = Specialize.forward sp ~input:x ~weights:w in
              Alcotest.(check (array int64))
                (Printf.sprintf "%s: %d domains" e.Zoo.name domains)
                (bits reference) (bits b))
            [ 1; 2; 4 ])
        [ Zoo.conv2d; Zoo.operator1 ])

(* --- Cancellation --------------------------------------------------------- *)

let test_mid_loop_cancellation () =
  (* A fake clock that advances one tick per poll: the deadline token
     trips mid-execution, deterministically, after a few safe points. *)
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    float_of_int !ticks
  in
  let cancel = Cancel.of_deadline ~clock 5.0 in
  match forward_pair ~cancel "conv2d" Zoo.conv2d.Zoo.operator valuation with
  | _ -> Alcotest.fail "expected mid-loop cancellation"
  | exception Cancel.Cancelled (Cancel.Deadline_exceeded _) ->
      Alcotest.(check bool) "polled more than once" true (!ticks >= 5)

let test_precancelled () =
  let cancel = Cancel.create () in
  Cancel.cancel ~reason:"test" cancel;
  match forward_pair ~cancel "conv2d" Zoo.conv2d.Zoo.operator valuation with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Cancel.Cancelled (Cancel.Cancelled_by "test") -> ()

(* --- Partition edge cases ------------------------------------------------- *)

let test_empty_interior () =
  (* hw = 2 with a 3-wide window: every spatial position may clip, so
     the padded axes have no interior run, yet the partition still
     covers everything and executes identically. *)
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:2 ~k:3 ~g:2 ~s:2 () in
  let st, cert = certified "conv2d/hw=2" Zoo.conv2d.Zoo.operator v in
  ignore st;
  Alcotest.(check bool)
    "interior fraction below 1" true
    (cert.Regions.rc_interior_fraction < 1.0);
  check_identical "conv2d/hw=2" Zoo.conv2d.Zoo.operator v

let test_size_one_axes () =
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:1 ~c_out:1 ~hw:1 ~k:1 ~g:1 ~s:1 () in
  List.iter
    (fun e -> check_identical (e.Zoo.name ^ "/ones") e.Zoo.operator v)
    [ Zoo.conv2d; Zoo.conv1x1; Zoo.depthwise_conv ]

let test_scalar_output () =
  (* A full contraction to a 0-d output: dot product of the input with
     one weight vector. *)
  let h = Zoo.Vars.h in
  let sz = Size.of_var in
  let g = Graph.init [] in
  let g = ok_graph (Graph.apply g (Prim.Reduce (sz h))) in
  let g = ok_graph (Graph.apply g (Prim.Share (0, Prim.New_group))) in
  let op = ok_graph (Graph.complete g ~desired:[ sz h ]) in
  let v = Valuation.of_list [ (h, 9) ] in
  check_identical "dot" op v

let test_all_padded_program () =
  (* conv2d's Unfold windows clip on both spatial axes: the verdict is
     Padded, the certificate records border strips, and the interior
     still dominates. *)
  let _, cert = certified "conv2d" Zoo.conv2d.Zoo.operator valuation in
  (match cert.Regions.rc_verdict with
  | Verify.Padded _ -> ()
  | verdict ->
      Alcotest.failf "expected Padded, got %s" (Verify.verdict_to_string verdict));
  Alcotest.(check bool) "has border strips" true (Regions.strips cert > 0);
  Alcotest.(check bool)
    "interior still dominates" true
    (cert.Regions.rc_interior_fraction > 0.5)

let test_proved_program_single_interior () =
  (* conv1x1 has no padding anywhere: every nest should be one interior
     piece and the certificate verdict Proved. *)
  let _, cert = certified "conv1x1" Zoo.conv1x1.Zoo.operator valuation in
  (match cert.Regions.rc_verdict with
  | Verify.Proved -> ()
  | verdict ->
      Alcotest.failf "expected Proved, got %s" (Verify.verdict_to_string verdict));
  Alcotest.(check int) "no border strips" 0 (Regions.strips cert);
  Alcotest.(check (float 1e-9)) "interior fraction 1" 1.0 cert.Regions.rc_interior_fraction

(* --- Certificate soundness ------------------------------------------------ *)

let test_zero_tensor_allocations () =
  let st = Staged.compile Zoo.conv2d.Zoo.operator valuation in
  let before = Tensor.allocations () in
  let cert = Regions.of_staged st in
  let validated = Certify.validate st cert.Regions.rc_plan in
  Alcotest.(check int)
    "certificate construction and validation allocate no tensor" 0
    (Tensor.allocations () - before);
  match validated with
  | Ok stats ->
      Alcotest.(check bool) "has cells" true (stats.Certify.ct_cells > 0);
      Alcotest.(check bool)
        "interior cells within total" true
        (stats.Certify.ct_interior_cells <= stats.Certify.ct_cells)
  | Error _ -> Alcotest.fail "sound certificate rejected"

let invisible_faults = [ Specialize.Overlap_strip; Specialize.Duplicate_strip; Specialize.Spurious_clip ]

let test_corrupt_plans_rejected () =
  List.iter
    (fun e ->
      let st, cert = certified e.Zoo.name e.Zoo.operator valuation in
      List.iter
        (fun fault ->
          match Specialize.corrupt fault st cert.Regions.rc_plan with
          | None -> ()
          | Some corrupted -> (
              match Certify.validate st corrupted with
              | Error (Robust.Guard.Static_violation _) -> ()
              | Error _ -> Alcotest.fail "unexpected guard kind"
              | Ok _ ->
                  Alcotest.failf "%s: %s not rejected" e.Zoo.name
                    (Specialize.fault_to_string fault)))
        (Specialize.Cover_gap :: invisible_faults))
    zoo_cases

let test_corrupt_plans_execute_invisibly () =
  (* The whole point of translation validation: these faults produce a
     plan that runs to completion with bit-identical outputs — without
     Certify, nothing notices. *)
  List.iter
    (fun e ->
      let st, cert = certified e.Zoo.name e.Zoo.operator valuation in
      let r = Staged.reference st in
      let rng = Rng.create ~seed:7 in
      let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
      let w = Reference.init_weights r rng in
      let reference = Staged.forward st ~input:x ~weights:w in
      List.iter
        (fun fault ->
          match Specialize.corrupt fault st cert.Regions.rc_plan with
          | None -> ()
          | Some corrupted ->
              let sp = Specialize.compile st corrupted in
              let b = Specialize.forward sp ~input:x ~weights:w in
              Alcotest.(check (array int64))
                (Printf.sprintf "%s: %s invisible" e.Zoo.name
                   (Specialize.fault_to_string fault))
                (bits reference) (bits b))
        invisible_faults)
    [ Zoo.conv2d; Zoo.operator1; Zoo.shift_conv ]

let test_faults_available () =
  (* On a padded program every fault class must actually apply —
     otherwise the rejection test above would pass vacuously. *)
  let st, cert = certified "conv2d" Zoo.conv2d.Zoo.operator valuation in
  List.iter
    (fun fault ->
      match Specialize.corrupt fault st cert.Regions.rc_plan with
      | Some _ -> ()
      | None ->
          Alcotest.failf "fault %s not applicable to conv2d"
            (Specialize.fault_to_string fault))
    (Specialize.Cover_gap :: invisible_faults)

let test_plan_shape_mismatch_rejected () =
  let st, cert = certified "conv2d" Zoo.conv2d.Zoo.operator valuation in
  let truncated = Array.sub cert.Regions.rc_plan 0 (Array.length cert.Regions.rc_plan - 1) in
  (match Certify.validate st truncated with
  | Error (Robust.Guard.Static_violation _) -> ()
  | _ -> Alcotest.fail "truncated plan accepted");
  match Specialize.compile st truncated with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Specialize.compile accepted truncated plan"

(* --- Random programs ------------------------------------------------------ *)

let random_specialized_agreement =
  QCheck.Test.make ~name:"random synthesized operators specialize bit-identically"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let open Zoo.Vars in
      let sz = Size.of_var in
      let valuations = [ Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:6 ~k:3 ~g:2 ~s:2 () ] in
      let base =
        Search.Enumerate.default_config
          ~output_shape:[ sz n; sz c_out; sz h; sz w ]
          ~desired_shape:[ sz n; sz c_in; sz h; sz w ]
          ~valuations ()
      in
      let cfg =
        {
          base with
          Search.Enumerate.max_prims = 7;
          coefficient_candidates = [ sz k; sz s ];
          reduce_candidates = [ sz c_in; sz k ];
          frozen_sizes = [ sz n ];
        }
      in
      let rng = Rng.create ~seed in
      match Search.Enumerate.random_completion cfg rng ~use_distance:true with
      | None -> true
      | Some op ->
          let v = List.hd valuations in
          let st = Staged.compile op v in
          let cert = Regions.of_staged st in
          (match Certify.validate st cert.Regions.rc_plan with
          | Error _ -> false
          | Ok _ ->
              let sp = Specialize.compile st cert.Regions.rc_plan in
              let r = Staged.reference st in
              let data_rng = Rng.create ~seed:(seed + 1) in
              let x = Tensor.rand_normal data_rng ~scale:1.0 (Reference.input_shape r) in
              let w = Reference.init_weights r data_rng in
              let a = Staged.forward st ~input:x ~weights:w in
              let b = Specialize.forward sp ~input:x ~weights:w in
              bits a = bits b))

let () =
  Alcotest.run "kernel"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "zoo operators" `Quick test_zoo_bit_identity;
          Alcotest.test_case "matmul" `Quick test_matmul_bit_identity;
          Alcotest.test_case "pool sizes" `Quick test_pool_sizes_bit_identical;
          QCheck_alcotest.to_alcotest random_specialized_agreement;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "mid-loop deadline" `Quick test_mid_loop_cancellation;
          Alcotest.test_case "pre-cancelled" `Quick test_precancelled;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "empty interior" `Quick test_empty_interior;
          Alcotest.test_case "size-1 axes" `Quick test_size_one_axes;
          Alcotest.test_case "scalar output" `Quick test_scalar_output;
          Alcotest.test_case "all-padded program" `Quick test_all_padded_program;
          Alcotest.test_case "proved program" `Quick test_proved_program_single_interior;
        ] );
      ( "certification",
        [
          Alcotest.test_case "zero allocations" `Quick test_zero_tensor_allocations;
          Alcotest.test_case "corrupt plans rejected" `Quick test_corrupt_plans_rejected;
          Alcotest.test_case "corrupt plans invisible" `Quick
            test_corrupt_plans_execute_invisibly;
          Alcotest.test_case "faults applicable" `Quick test_faults_available;
          Alcotest.test_case "plan shape mismatch" `Quick test_plan_shape_mismatch_rejected;
        ] );
    ]
