(* Tests for the admission layer: resource budgets (rejection before
   any allocation), differential validation across the three lowering
   backends, the composed gate, and its integration with the search. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Guard = Robust.Guard
module Budget = Validate.Budget
module Differential = Validate.Differential
module Admit = Validate.Admit
module Enumerate = Search.Enumerate
module Mcts = Search.Mcts
module Reward = Search.Reward
module Zoo = Syno.Zoo
module Api = Syno.Api

let conv = Zoo.conv2d.Zoo.operator
let tiny = Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:4 ~k:3 ~g:2 ~s:2 ()
let search_v = List.hd Api.default_search_valuations

(* A valuation for a different signature: conv's variables are unbound,
   so conv is not instantiable under it. *)
let foreign = Zoo.Vars.matmul_valuation ~m:4 ~n:4 ~k:4

(* --- Budget ---------------------------------------------------------------- *)

let test_budget_estimate () =
  let e = Budget.estimate conv tiny in
  Alcotest.(check bool) "bytes positive" true (e.Budget.est_bytes > 0);
  Alcotest.(check int) "flops from the cost model"
    (Pgraph.Flops.naive_flops conv tiny)
    e.Budget.est_flops;
  Alcotest.(check bool) "gather term counted" true
    (e.Budget.est_bytes >= Budget.bytes_per_elem * e.Budget.est_gather_elems);
  let big = Budget.estimate conv search_v in
  Alcotest.(check bool) "monotone in the shape" true
    (big.Budget.est_bytes > e.Budget.est_bytes && big.Budget.est_flops > e.Budget.est_flops)

let test_budget_rejects_before_allocation () =
  let before = Tensor.allocations () in
  (match Budget.admit ~max_bytes:1 conv [ search_v ] with
  | Error (Guard.Over_budget _) -> ()
  | Error k -> Alcotest.failf "wrong kind %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "a 1-byte budget must reject");
  (match Budget.admit ~max_flops:1 conv [ search_v ] with
  | Error (Guard.Over_budget _) -> ()
  | _ -> Alcotest.fail "a 1-flop budget must reject");
  (* Generous budgets admit -- and the whole exercise, pass or fail,
     never allocates a tensor. *)
  (match Budget.admit ~max_bytes:max_int ~max_flops:max_int conv [ tiny; search_v ] with
  | Ok () -> ()
  | Error k -> Alcotest.failf "unexpected rejection %s" (Guard.kind_label k));
  Alcotest.(check int) "no tensor allocated by the budget gate" 0
    (Tensor.allocations () - before)

let test_budget_not_instantiable () =
  (match Budget.check conv foreign with
  | Error (Guard.Eval_error _) -> ()
  | Error k -> Alcotest.failf "wrong kind %s" (Guard.kind_label k)
  | Ok _ -> Alcotest.fail "conv has unbound variables under a matmul valuation")

(* --- Differential validation ----------------------------------------------- *)

let test_differential_accepts_zoo () =
  List.iter
    (fun (entry : Zoo.entry) ->
      match Differential.check entry.Zoo.operator [ tiny ] with
      | Ok r ->
          Alcotest.(check int) (entry.Zoo.name ^ " checked") 1 r.Differential.rep_valuations;
          Alcotest.(check bool) (entry.Zoo.name ^ " compared elements") true
            (r.Differential.rep_elements > 0);
          Alcotest.(check bool) (entry.Zoo.name ^ " within tolerance") true
            (r.Differential.rep_max_rel_err <= Differential.default_config.Differential.tolerance)
      | Error k ->
          Alcotest.failf "%s rejected: %s" entry.Zoo.name (Guard.kind_label k))
    [ Zoo.conv2d; Zoo.conv1x1; Zoo.grouped_conv; Zoo.avgpool ]

let test_differential_skips_non_instantiable () =
  (* The gate must never quarantine a candidate the un-validated search
     would have scored: foreign valuations are skipped, not failed. *)
  match Differential.check conv [ foreign ] with
  | Ok r -> Alcotest.(check int) "skipped" 0 r.Differential.rep_valuations
  | Error k -> Alcotest.failf "skip expected, got %s" (Guard.kind_label k)

let test_differential_catches_fault () =
  List.iter
    (fun backend ->
      let fault = Differential.fault ~seed:4 ~rate:1.0 backend in
      let config = Differential.config ~fault () in
      (match Differential.check ~config conv [ tiny ] with
      | Error (Guard.Backend_mismatch _) -> ()
      | Error k ->
          Alcotest.failf "%s fault: wrong kind %s"
            (Differential.backend_label backend)
            (Guard.kind_label k)
      | Ok _ ->
          Alcotest.failf "%s fault went undetected" (Differential.backend_label backend));
      Alcotest.(check int)
        (Differential.backend_label backend ^ " corruption delivered")
        1 (Differential.fault_count fault))
    Differential.backends

let test_differential_config_validation () =
  Alcotest.check_raises "tolerance must be positive"
    (Invalid_argument "Differential.config: tolerance must be > 0") (fun () ->
      ignore (Differential.config ~tolerance:0.0 ()))

(* --- Composed gate ---------------------------------------------------------- *)

let test_admit_gate_stats () =
  let g = Admit.create ~max_bytes:1 ~valuations:[ search_v ] () in
  Alcotest.(check bool) "active" true (Admit.active g);
  (match Admit.gate g conv with
  | Error (Guard.Over_budget _) -> ()
  | _ -> Alcotest.fail "expected over_budget");
  (match Admit.gate g conv with Error _ -> () | Ok () -> Alcotest.fail "still over budget");
  let s = Admit.stats g in
  Alcotest.(check int) "calls" 2 s.Admit.calls;
  Alcotest.(check int) "rejected" 2 s.Admit.rejected;
  Alcotest.(check bool) "time accounted" true (s.Admit.seconds >= 0.0)

let test_admit_gate_inactive () =
  let g = Admit.create () in
  Alcotest.(check bool) "inactive" false (Admit.active g);
  (match Admit.gate g conv with
  | Ok () -> ()
  | Error k -> Alcotest.failf "inactive gate rejected: %s" (Guard.kind_label k))

(* A corrupt-expr candidate reads consistently out of window, so every
   backend zero-clips it and differential validation alone passes it:
   only the static stage can reject, and without any tensor work. *)
let test_admit_static_catches_corrupt_expr () =
  let bad = Differential.corrupt_operator conv in
  (match Differential.check bad [ tiny ] with
  | Ok _ -> ()
  | Error k ->
      Alcotest.failf "differential unexpectedly caught the corrupt expr: %s"
        (Guard.kind_label k));
  let g =
    Admit.create ~static:[ tiny ] ~max_bytes:max_int ~valuations:[ tiny ]
      ~differential:Differential.default_config ()
  in
  Alcotest.(check bool) "active" true (Admit.active g);
  let before = Tensor.allocations () in
  (match Admit.gate g bad with
  | Error (Guard.Static_violation msg) ->
      Alcotest.(check bool) "diagnostic names the window" true
        (Astring.String.is_infix ~affix:"window" msg)
  | Error k -> Alcotest.failf "wrong kind %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "static gate must reject the corrupt expr");
  Alcotest.(check int) "rejected without allocating" 0 (Tensor.allocations () - before);
  (match Admit.gate g conv with
  | Ok () -> ()
  | Error k -> Alcotest.failf "healthy conv rejected: %s" (Guard.kind_label k));
  let s = Admit.stats g in
  Alcotest.(check int) "static rejections" 1 s.Admit.rejected_static;
  Alcotest.(check int) "budget rejections" 0 s.Admit.rejected_budget;
  Alcotest.(check int) "differential rejections" 0 s.Admit.rejected_differential;
  Alcotest.(check int) "total" 1 s.Admit.rejected

(* Stage order: a candidate that would fail several stages is charged
   to the earliest, and disabling a stage moves the verdict down the
   pipeline. *)
let test_admit_stage_order () =
  let bad = Differential.corrupt_operator conv in
  let with_static =
    Admit.create ~static:[ tiny ] ~max_bytes:1 ~valuations:[ tiny ]
      ~differential:Differential.default_config ()
  in
  (match Admit.gate with_static bad with
  | Error (Guard.Static_violation _) -> ()
  | Error k -> Alcotest.failf "static must win, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "must reject");
  let no_static =
    Admit.create ~max_bytes:1 ~valuations:[ tiny ]
      ~differential:Differential.default_config ()
  in
  (match Admit.gate no_static bad with
  | Error (Guard.Over_budget _) -> ()
  | Error k -> Alcotest.failf "budget must win next, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "must reject");
  (* The corrupt-output fault only materializes inside differential —
     static and budget both pass the healthy-looking graph. *)
  let fault = Differential.fault ~seed:4 ~rate:1.0 Differential.Einsum in
  let deep =
    Admit.create ~static:[ tiny ] ~max_bytes:max_int ~valuations:[ tiny ]
      ~differential:(Differential.config ~fault ()) ()
  in
  (match Admit.gate deep conv with
  | Error (Guard.Backend_mismatch _) -> ()
  | Error k -> Alcotest.failf "differential must reject, got %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "must reject");
  let s = Admit.stats deep in
  Alcotest.(check int) "charged to differential" 1 s.Admit.rejected_differential;
  Alcotest.(check int) "not to static" 0 s.Admit.rejected_static

(* The Corrupt_expr fault mode rewrites the candidate inside the
   differential checker itself; all backends then agree on zeros, so
   the check passes — proof that the static stage is load-bearing. *)
let test_corrupt_expr_fault_mode_invisible_to_differential () =
  let fault =
    Differential.fault ~seed:4 ~rate:1.0 ~mode:Differential.Corrupt_expr Differential.Reference
  in
  let config = Differential.config ~fault () in
  (match Differential.check ~config conv [ tiny ] with
  | Ok r -> Alcotest.(check int) "still checked" 1 r.Differential.rep_valuations
  | Error k ->
      Alcotest.failf "corrupt-expr fault visible to differential: %s" (Guard.kind_label k));
  Alcotest.(check int) "corruption delivered" 1 (Differential.fault_count fault);
  (* The same corruption applied to the operator record is caught
     statically. *)
  match Analysis.Verify.admit (Differential.corrupt_operator conv) [ tiny ] with
  | Error (Guard.Static_violation _) -> ()
  | Error k -> Alcotest.failf "wrong kind %s" (Guard.kind_label k)
  | Ok () -> Alcotest.fail "static verifier must catch the corrupt expr"

(* --- Search integration ------------------------------------------------------ *)

let m = Var.primary "M"
let nd_ = Var.primary "Nd"
let kd = Var.primary "Kd"
let sz = Size.of_var
let matmul_v = Valuation.of_list [ (m, 8); (nd_, 8); (kd, 8) ]

let matmul_cfg () =
  let base =
    Enumerate.default_config ~output_shape:[ sz m; sz nd_ ] ~desired_shape:[ sz m; sz kd ]
      ~valuations:[ matmul_v ] ()
  in
  { base with Enumerate.max_prims = 4; reduce_candidates = [ sz kd ] }

let reward ~cancel:_ op = Reward.score op matmul_v
let config = Mcts.default_config ~iterations:120 ()
let top r = List.map (fun (x : Mcts.result) -> (Graph.operator_signature x.operator, x.reward)) r

let test_search_admit_reject_all () =
  let r =
    Mcts.search_run ~config ~admit:(fun _ -> Error (Guard.Over_budget "cap 0"))
      (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ()
  in
  Alcotest.(check bool) "found candidates" true (r.Mcts.results <> []);
  Alcotest.(check int) "nothing evaluated" 0 r.Mcts.stats.Mcts.evaluations;
  Alcotest.(check int) "all quarantined" (List.length r.Mcts.results)
    r.Mcts.stats.Mcts.quarantined;
  List.iter
    (fun (x : Mcts.result) -> Alcotest.(check bool) "quarantined" true x.Mcts.quarantined)
    r.Mcts.results;
  let over_budget =
    Option.value ~default:0 (List.assoc_opt "over_budget" r.Mcts.stats.Mcts.failed_attempts)
  in
  Alcotest.(check int) "rejections recorded as over_budget"
    r.Mcts.stats.Mcts.attempts over_budget

let test_search_admit_passthrough () =
  let clean = Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) () in
  let gated =
    Mcts.search ~config ~admit:(fun _ -> Ok ()) (matmul_cfg ()) ~reward
      ~rng:(Nd.Rng.create ~seed:7) ()
  in
  Alcotest.(check bool) "admit Ok is invisible" true (top clean = top gated)

(* --- Corrupt-resume handling at the API level -------------------------------- *)

let with_temp f =
  let path = Filename.temp_file "syno_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_api_resume_corrupt () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "garbage, not a checkpoint\n";
      close_out oc;
      let run ?on_corrupt () =
        Api.search_conv_operators_run ~iterations:40 ~max_prims:4 ~resume:path ?on_corrupt
          ~rng:(Nd.Rng.create ~seed:3) ~valuations:Api.default_search_valuations ()
      in
      (match run () with
      | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error names the header problem (%s)" msg)
            true
            (Astring.String.is_infix ~affix:"header" msg)
      | _ -> Alcotest.fail "corrupt resume must fail by default");
      let r = run ~on_corrupt:`Restart () in
      Alcotest.(check bool) "restart ignores the damaged file" true (r.Api.candidates <> []))

let () =
  Alcotest.run "validate"
    [
      ( "budget",
        [
          Alcotest.test_case "estimate" `Quick test_budget_estimate;
          Alcotest.test_case "rejects before allocation" `Quick
            test_budget_rejects_before_allocation;
          Alcotest.test_case "not instantiable" `Quick test_budget_not_instantiable;
        ] );
      ( "differential",
        [
          Alcotest.test_case "accepts the zoo" `Quick test_differential_accepts_zoo;
          Alcotest.test_case "skips non-instantiable valuations" `Quick
            test_differential_skips_non_instantiable;
          Alcotest.test_case "catches a seeded miscompile" `Quick
            test_differential_catches_fault;
          Alcotest.test_case "config validation" `Quick test_differential_config_validation;
        ] );
      ( "gate",
        [
          Alcotest.test_case "stats" `Quick test_admit_gate_stats;
          Alcotest.test_case "inactive" `Quick test_admit_gate_inactive;
          Alcotest.test_case "static catches corrupt expr, no allocation" `Quick
            test_admit_static_catches_corrupt_expr;
          Alcotest.test_case "stage order static > budget > differential" `Quick
            test_admit_stage_order;
          Alcotest.test_case "corrupt-expr fault invisible to differential" `Quick
            test_corrupt_expr_fault_mode_invisible_to_differential;
        ] );
      ( "search",
        [
          Alcotest.test_case "reject-all quarantines everything" `Quick
            test_search_admit_reject_all;
          Alcotest.test_case "admit Ok is invisible" `Quick test_search_admit_passthrough;
          Alcotest.test_case "corrupt resume: fail or restart" `Quick test_api_resume_corrupt;
        ] );
    ]
