(* Tests for layers, optimizers, attention, and the training loop. *)

module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Tape = Grad.Tape
module Op = Grad.Op

let rng () = Rng.create ~seed:7

let test_linear_shapes () =
  let l = Nn.Layer.linear (rng ()) ~in_features:4 ~out_features:3 in
  Alcotest.(check int) "params" ((4 * 3) + 3) (Nn.Layer.num_params l);
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) l.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.create [| 2; 4 |]) in
  let y = l.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "output shape" [| 2; 3 |] (Tensor.shape (Tape.data y));
  (* higher-rank input maps over the last axis *)
  let x3 = Tape.constant tape (Tensor.create [| 2; 5; 4 |]) in
  let y3 = l.Nn.Layer.apply tape params x3 in
  Alcotest.(check (array int)) "rank-3 shape" [| 2; 5; 3 |] (Tensor.shape (Tape.data y3))

let test_sequential_residual () =
  let r = rng () in
  let body = Nn.Layer.sequential "s" [ Nn.Layer.relu; Nn.Layer.relu ] in
  Alcotest.(check int) "no params" 0 (Nn.Layer.num_params body);
  let res = Nn.Layer.residual "r" [ body ] in
  let tape = Tape.create () in
  let x = Tape.constant tape (Tensor.of_array [| 2 |] [| -1.0; 2.0 |]) in
  let y = res.Nn.Layer.apply tape [] x in
  (* residual: x + relu(relu x) *)
  Alcotest.(check (float 1e-9)) "neg passes via skip" (-1.0) (Tensor.get (Tape.data y) [| 0 |]);
  Alcotest.(check (float 1e-9)) "pos doubled" 4.0 (Tensor.get (Tape.data y) [| 1 |]);
  ignore r

let quadratic_descent make_opt =
  (* minimize ||p - target||^2 by gradient steps *)
  let p = Tensor.of_array [| 2 |] [| 5.0; -3.0 |] in
  let target = Tensor.of_array [| 2 |] [| 1.0; 2.0 |] in
  let opt = make_opt () in
  for _ = 1 to 200 do
    let grad = Tensor.scale 2.0 (Tensor.sub p target) in
    Nn.Optimizer.step opt ~params:[ p ] ~grads:[ grad ]
  done;
  Tensor.sum (Tensor.map Float.abs (Tensor.sub p target))

let test_sgd () =
  let err = quadratic_descent (fun () -> Nn.Optimizer.sgd ~momentum:0.9 ~lr:0.05 ()) in
  Alcotest.(check bool) "sgd converges" true (err < 1e-3)

let test_adam () =
  let err = quadratic_descent (fun () -> Nn.Optimizer.adam ~lr:0.1 ()) in
  Alcotest.(check bool) "adam converges" true (err < 1e-2)

let test_cosine_schedule () =
  Alcotest.(check (float 1e-9)) "start" 1.0 (Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 0);
  Alcotest.(check (float 1e-9)) "end" 0.0 (Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 100);
  let mid = Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 50 in
  Alcotest.(check (float 1e-9)) "mid" 0.5 mid

let test_linear_model_learns () =
  (* Separable 2-class problem in 4 features. *)
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf"
         [ Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let make_batch () =
    let images = Tensor.create [| 16; 4 |] in
    let labels = Array.make 16 0 in
    for i = 0 to 15 do
      let cls = Rng.int r 2 in
      labels.(i) <- cls;
      for j = 0 to 3 do
        let mean = if cls = 0 then 1.0 else -1.0 in
        Tensor.set images [| i; j |] (mean +. (0.5 *. Rng.normal r))
      done
    done;
    { Nn.Train.images; labels }
  in
  let train = List.init 10 (fun _ -> make_batch ()) in
  let eval = List.init 3 (fun _ -> make_batch ()) in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  let h = Nn.Train.fit model opt ~epochs:5 ~train ~eval in
  Alcotest.(check bool) "learns separable task" true (h.Nn.Train.final_eval_accuracy > 0.95)

(* --- Gradient clipping and training sentinels ------------------------------- *)

let test_clip_global_norm () =
  let grads () = [ Tensor.of_array [| 2 |] [| 3.0; 0.0 |]; Tensor.of_array [| 1 |] [| 4.0 |] ] in
  Alcotest.(check (float 1e-9)) "global norm" 5.0 (Nn.Optimizer.global_norm (grads ()));
  (* Above the threshold: rescaled to max_norm, pre-clip norm returned. *)
  let g = grads () in
  let pre = Nn.Optimizer.clip_global_norm ~max_norm:1.0 g in
  Alcotest.(check (float 1e-9)) "pre-clip norm reported" 5.0 pre;
  Alcotest.(check (float 1e-6)) "rescaled" 1.0 (Nn.Optimizer.global_norm g);
  Alcotest.(check (float 1e-6)) "direction kept" (3.0 /. 5.0) (Tensor.get (List.hd g) [| 0 |]);
  (* Below the threshold: untouched. *)
  let g = grads () in
  ignore (Nn.Optimizer.clip_global_norm ~max_norm:10.0 g);
  Alcotest.(check (float 1e-9)) "no-op below threshold" 3.0 (Tensor.get (List.hd g) [| 0 |]);
  (* Non-finite norm: rescaling would be meaningless, grads stay as-is
     for the caller's sentinel to see. *)
  let g = [ Tensor.of_array [| 2 |] [| Float.nan; 2.0 |] ] in
  let pre = Nn.Optimizer.clip_global_norm ~max_norm:1.0 g in
  Alcotest.(check bool) "NaN norm reported" true (Float.is_nan pre);
  Alcotest.(check (float 1e-9)) "finite lane untouched" 2.0 (Tensor.get (List.hd g) [| 1 |]);
  Alcotest.check_raises "max_norm must be positive"
    (Invalid_argument "Optimizer.clip_global_norm: max_norm must be > 0") (fun () ->
      ignore (Nn.Optimizer.clip_global_norm ~max_norm:0.0 []))

let separable_batches r n =
  List.init n (fun _ ->
      let images = Tensor.create [| 16; 4 |] in
      let labels = Array.make 16 0 in
      for i = 0 to 15 do
        let cls = Rng.int r 2 in
        labels.(i) <- cls;
        for j = 0 to 3 do
          let mean = if cls = 0 then 1.0 else -1.0 in
          Tensor.set images [| i; j |] (mean +. (0.5 *. Rng.normal r))
        done
      done;
      { Nn.Train.images; labels })

(* A parameter-free layer that replaces its input with NaN from the
   [after]-th application on — a stand-in for a candidate operator that
   goes numerically bad mid-training. *)
let poison_layer ~after =
  let count = ref 0 in
  {
    Nn.Layer.name = "poison";
    params = [];
    apply =
      (fun tape _ x ->
        incr count;
        if !count < after then x
        else
          let d = Tape.data x in
          Tape.custom tape ~inputs:[ x ]
            ~output:(Tensor.map (fun _ -> Float.nan) d)
            ~vjp:(fun ~grad_out -> [ Some grad_out ]));
  }

let test_step_stats_grad_norm () =
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf" [ Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let b = List.hd (separable_batches r 1) in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  let s = Nn.Model.train_step model opt ~images:b.Nn.Train.images ~labels:b.Nn.Train.labels in
  Alcotest.(check bool) "live gradient norm" true
    (Float.is_finite s.Nn.Model.grad_norm && s.Nn.Model.grad_norm > 0.0);
  (* With an absurdly tight clip the pre-clip norm is still reported. *)
  let s2 =
    Nn.Model.train_step ~clip_norm:1e-6 model opt ~images:b.Nn.Train.images
      ~labels:b.Nn.Train.labels
  in
  Alcotest.(check bool) "pre-clip norm reported" true (s2.Nn.Model.grad_norm > 1e-6);
  let e = Nn.Model.evaluate model ~images:b.Nn.Train.images ~labels:b.Nn.Train.labels in
  Alcotest.(check (float 0.0)) "evaluate reports no grad norm" 0.0 e.Nn.Model.grad_norm

let test_sentinel_non_finite_abort () =
  let r = rng () in
  (* 4 batches per epoch; the poison fires at application 7, i.e. epoch
     2, step 3 (train_step runs the forward once per batch). *)
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf"
         [ poison_layer ~after:7; Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let train = separable_batches r 4 in
  let eval = separable_batches r 1 in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  let h = Nn.Train.fit model opt ~epochs:5 ~train ~eval in
  (match h.Nn.Train.outcome with
  | Nn.Train.Aborted_non_finite { epoch; step } ->
      Alcotest.(check int) "aborts in epoch 2" 2 epoch;
      Alcotest.(check int) "at step 3" 3 step
  | o -> Alcotest.failf "expected non-finite abort, got %s" (Nn.Train.outcome_label o));
  Alcotest.(check bool) "aborted flag" true h.Nn.Train.aborted;
  Alcotest.(check int) "only epoch 1 recorded" 1 (List.length h.Nn.Train.epoch_losses);
  (* final_train_accuracy comes from the last completed epoch, never
     from the poisoned partial one. *)
  Alcotest.(check (float 1e-9)) "accuracy from last completed epoch"
    (List.hd h.Nn.Train.epoch_accuracies)
    h.Nn.Train.final_train_accuracy

let test_sentinel_disabled_runs_through () =
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf"
         [ poison_layer ~after:7; Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  let h =
    Nn.Train.fit model opt
      ~sentinel:(Nn.Train.sentinel ~check_finite:false ~divergence_factor:1e30 ())
      ~epochs:3 ~train:(separable_batches r 4) ~eval:(separable_batches r 1)
  in
  Alcotest.(check bool) "runs to completion" false h.Nn.Train.aborted;
  Alcotest.(check int) "all epochs recorded" 3 (List.length h.Nn.Train.epoch_losses)

let test_sentinel_divergence_abort () =
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf" [ Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  (* A vanishingly small divergence factor makes any positive epoch-2
     loss count as divergence; patience 1 aborts immediately. *)
  let h =
    Nn.Train.fit model opt
      ~sentinel:(Nn.Train.sentinel ~divergence_factor:1e-12 ~divergence_patience:1 ())
      ~epochs:5 ~train:(separable_batches r 4) ~eval:(separable_batches r 1)
  in
  (match h.Nn.Train.outcome with
  | Nn.Train.Aborted_diverged { epoch; loss; initial } ->
      Alcotest.(check int) "aborts after epoch 2" 2 epoch;
      Alcotest.(check bool) "loss over threshold" true (loss > 1e-12 *. initial)
  | o -> Alcotest.failf "expected divergence abort, got %s" (Nn.Train.outcome_label o));
  Alcotest.(check string) "label" "diverged" (Nn.Train.outcome_label h.Nn.Train.outcome);
  Alcotest.(check int) "both epochs recorded" 2 (List.length h.Nn.Train.epoch_losses)

let test_cancelled_abort () =
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf" [ Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let train = separable_batches r 4 in
  let eval = separable_batches r 1 in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  (* A counting fake clock: one tick per poll, one poll per step, so
     the deadline of 6.5 trips deterministically before step 7 — i.e.
     epoch 2, step 3 (4 batches per epoch). *)
  let ticks = ref 0.0 in
  let clock () =
    ticks := !ticks +. 1.0;
    !ticks
  in
  let cancel = Robust.Cancel.of_deadline ~clock 6.5 in
  let h = Nn.Train.fit ~cancel model opt ~epochs:5 ~train ~eval in
  (match h.Nn.Train.outcome with
  | Nn.Train.Aborted_cancelled { epoch; step } ->
      Alcotest.(check int) "aborts in epoch 2" 2 epoch;
      Alcotest.(check int) "before step 3" 3 step
  | o -> Alcotest.failf "expected cancelled abort, got %s" (Nn.Train.outcome_label o));
  Alcotest.(check string) "label" "cancelled" (Nn.Train.outcome_label h.Nn.Train.outcome);
  Alcotest.(check bool) "aborted flag" true h.Nn.Train.aborted;
  Alcotest.(check int) "only epoch 1 recorded" 1 (List.length h.Nn.Train.epoch_losses);
  (* Stats come from the last completed epoch, not the cancelled one. *)
  Alcotest.(check (float 1e-9)) "accuracy from last completed epoch"
    (List.hd h.Nn.Train.epoch_accuracies)
    h.Nn.Train.final_train_accuracy;
  (* An untripped token is invisible: the run completes. *)
  let h2 =
    Nn.Train.fit ~cancel:(Robust.Cancel.create ()) model opt ~epochs:2 ~train ~eval
  in
  Alcotest.(check bool) "untripped token completes" false h2.Nn.Train.aborted

let test_sentinel_validation () =
  Alcotest.check_raises "factor must be positive"
    (Invalid_argument "Train.sentinel: divergence_factor must be > 0") (fun () ->
      ignore (Nn.Train.sentinel ~divergence_factor:0.0 ()));
  Alcotest.check_raises "patience must be >= 1"
    (Invalid_argument "Train.sentinel: divergence_patience must be >= 1") (fun () ->
      ignore (Nn.Train.sentinel ~divergence_patience:0 ()))

let test_attention_shapes () =
  let r = rng () in
  let attn = Nn.Attention.causal_self_attention r ~embed:8 ~heads:2 () in
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) attn.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.rand_normal r ~scale:1.0 [| 2; 5; 8 |]) in
  let y = attn.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "shape preserved" [| 2; 5; 8 |] (Tensor.shape (Tape.data y))

let test_attention_causality () =
  (* Changing a future token must not change earlier outputs. *)
  let r = rng () in
  let attn = Nn.Attention.causal_self_attention r ~embed:4 ~heads:1 () in
  let x0 = Tensor.rand_normal r ~scale:1.0 [| 1; 4; 4 |] in
  let x1 = Tensor.copy x0 in
  for j = 0 to 3 do
    Tensor.set x1 [| 0; 3; j |] 9.0
  done;
  let run x =
    let tape = Tape.create () in
    let params = List.map (Tape.var tape) attn.Nn.Layer.params in
    Tape.data (attn.Nn.Layer.apply tape params (Tape.constant tape x))
  in
  let y0 = run x0 and y1 = run x1 in
  for t = 0 to 2 do
    for j = 0 to 3 do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "t=%d j=%d unchanged" t j)
        (Tensor.get y0 [| 0; t; j |])
        (Tensor.get y1 [| 0; t; j |])
    done
  done;
  Alcotest.(check bool) "last position changed" true
    (Float.abs (Tensor.get y0 [| 0; 3; 0 |] -. Tensor.get y1 [| 0; 3; 0 |]) > 1e-9)

let test_transformer_block () =
  let r = rng () in
  let block = Nn.Attention.transformer_block r ~embed:8 ~heads:2 () in
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) block.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.rand_normal r ~scale:1.0 [| 1; 3; 8 |]) in
  let y = block.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "block preserves shape" [| 1; 3; 8 |] (Tensor.shape (Tape.data y))

let test_operator_layer_trains () =
  (* A Syno conv operator substituted as a layer learns the synthetic
     vision task clearly above chance. *)
  let r = rng () in
  let data =
    Dataset.Synth_vision.generate r ~classes:3 ~channels:4 ~size:8 ~motif:3
      ~train_batches:8 ~eval_batches:3 ~batch_size:16 ()
  in
  let make_op rng (stage : Backbones.Proxy.stage_shape) =
    let valuation =
      Syno.Zoo.Vars.conv_valuation ~n:16 ~c_in:stage.Backbones.Proxy.in_ch
        ~c_out:stage.Backbones.Proxy.out_ch ~hw:stage.Backbones.Proxy.hw ~k:3 ~g:2 ~s:2 ()
    in
    Nn.Layer.of_operator rng ~name:"conv"
      (Lower.Reference.compile Syno.Zoo.conv2d.Syno.Zoo.operator valuation)
  in
  let model =
    Backbones.Proxy.vision_model r ~make_op ~in_channels:4 ~channels:8 ~classes:3 ~size:8 ()
  in
  let opt = Nn.Optimizer.sgd ~momentum:0.9 ~lr:0.05 () in
  let h =
    Nn.Train.fit model opt ~epochs:10 ~train:data.Dataset.Synth_vision.train
      ~eval:data.Dataset.Synth_vision.eval
  in
  Alcotest.(check bool)
    (Printf.sprintf "above chance (got %.2f)" h.Nn.Train.final_eval_accuracy)
    true
    (h.Nn.Train.final_eval_accuracy > 0.5)

let () =
  Alcotest.run "nn"
    [
      ( "layers",
        [
          Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
          Alcotest.test_case "sequential/residual" `Quick test_sequential_residual;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "sgd" `Quick test_sgd;
          Alcotest.test_case "adam" `Quick test_adam;
          Alcotest.test_case "cosine" `Quick test_cosine_schedule;
        ] );
      ( "training",
        [
          Alcotest.test_case "linear model learns" `Quick test_linear_model_learns;
          Alcotest.test_case "operator layer trains" `Slow test_operator_layer_trains;
        ] );
      ( "sentinels",
        [
          Alcotest.test_case "clip_global_norm" `Quick test_clip_global_norm;
          Alcotest.test_case "step stats grad norm" `Quick test_step_stats_grad_norm;
          Alcotest.test_case "non-finite abort" `Quick test_sentinel_non_finite_abort;
          Alcotest.test_case "disabled sentinel runs through" `Quick
            test_sentinel_disabled_runs_through;
          Alcotest.test_case "divergence abort" `Quick test_sentinel_divergence_abort;
          Alcotest.test_case "cancelled abort" `Quick test_cancelled_abort;
          Alcotest.test_case "sentinel validation" `Quick test_sentinel_validation;
        ] );
      ( "attention",
        [
          Alcotest.test_case "shapes" `Quick test_attention_shapes;
          Alcotest.test_case "causality" `Quick test_attention_causality;
          Alcotest.test_case "transformer block" `Quick test_transformer_block;
        ] );
    ]
