(* Tests for coordinate expressions and the TRS simplifier (\u{00a7}6). *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify

let va = Var.primary "A"
let vb = Var.coefficient "b"
let vc = Var.coefficient "c"
let vk = Var.coefficient "k"

let a = Size.of_var va
let b = Size.of_var vb
let c = Size.of_var vc
let k = Size.of_var vk

(* Two valuations so that "for all valuations" is non-trivial. *)
let val1 = Valuation.of_list [ (va, 24); (vb, 4); (vc, 6); (vk, 3) ]
let val2 = Valuation.of_list [ (va, 48); (vb, 4); (vc, 6); (vk, 3) ]
let exact_ctx = Simplify.ctx ~approx_factor:None [ val1; val2 ]
let approx_ctx = Simplify.ctx ~approx_factor:(Some 2) [ val1; val2 ]

let it id dom = { Ast.id; dom; role = Ast.Spatial }
let expr = Alcotest.testable Ast.pp Ast.equal

let test_fdiv_emod () =
  Alcotest.(check int) "fdiv pos" 2 (Ast.fdiv 7 3);
  Alcotest.(check int) "fdiv neg" (-3) (Ast.fdiv (-7) 3);
  Alcotest.(check int) "emod pos" 1 (Ast.emod 7 3);
  Alcotest.(check int) "emod neg" 2 (Ast.emod (-7) 3);
  Alcotest.(check int) "emod zero" 0 (Ast.emod (-6) 3)

let test_eval () =
  let i = it 0 a in
  let e = Ast.modulo (Ast.add (Ast.iter i) (Ast.const 1)) a in
  let env _ = 23 in
  Alcotest.(check int) "shift wraps" 0 (Ast.eval ~env ~lookup:(Valuation.lookup val1) e)

let test_bounds () =
  let i = it 0 b in
  let e = Ast.sub (Ast.iter i) (Ast.div (Ast.Size_const k) (Size.of_int 2)) in
  let lo, hi = Ast.bounds ~lookup:(Valuation.lookup val1) e in
  Alcotest.(check (pair int int)) "unfold offset bounds" (-1, 2) (lo, hi)

let simp e = Simplify.simplify exact_ctx e

let test_mul_mod_factor () =
  (* (B*i) % (B*C) = B * (i % C) *)
  let i = it 0 (Size.mul a c) in
  let lhs = Ast.modulo (Ast.mul b (Ast.iter i)) (Size.mul b c) in
  let rhs = Ast.mul b (Ast.modulo (Ast.iter i) c) in
  Alcotest.check expr "factor out of mod" (simp rhs) (simp lhs)

let test_mul_div_factor () =
  (* (B*i) / (B*C) = i / C *)
  let i = it 0 (Size.mul a c) in
  let lhs = Ast.div (Ast.mul b (Ast.iter i)) (Size.mul b c) in
  let rhs = Ast.div (Ast.iter i) c in
  Alcotest.check expr "factor out of div" (simp rhs) (simp lhs)

let test_split_merge_identity () =
  (* B*(i/B) + i%B = i *)
  let i = it 0 (Size.mul a b) in
  let e = Ast.add (Ast.mul b (Ast.div (Ast.iter i) b)) (Ast.modulo (Ast.iter i) b) in
  Alcotest.check expr "split of merge collapses" (Ast.iter i) (simp e)

let test_mod_collapse () =
  (* i % N = i when dom(i) <= N under every valuation. *)
  let i = it 0 b in
  Alcotest.check expr "mod collapses" (Ast.iter i) (simp (Ast.modulo (Ast.iter i) (Size.mul b c)));
  (* ... but not when it can wrap. *)
  let j = it 1 (Size.mul b c) in
  let e = Ast.modulo (Ast.iter j) b in
  Alcotest.check expr "mod stays" e (simp e)

let test_div_collapse () =
  let i = it 0 b in
  Alcotest.check expr "div collapses to 0" (Ast.const 0)
    (simp (Ast.div (Ast.iter i) (Size.mul b c)))

let test_fig3a () =
  (* (C*i + j) / (B*C) = i / B and (C*i + j) % (B*C) = C*(i%B) + j,
     with dom(i) = A*B, dom(j) = C (Fig. 3(a)). *)
  let i = it 0 (Size.mul a b) and j = it 1 c in
  let top = Ast.add (Ast.mul c (Ast.iter i)) (Ast.iter j) in
  let div = simp (Ast.div top (Size.mul b c)) in
  let md = simp (Ast.modulo top (Size.mul b c)) in
  Alcotest.check expr "div side" (simp (Ast.div (Ast.iter i) b)) div;
  Alcotest.check expr "mod side"
    (simp (Ast.add (Ast.mul c (Ast.modulo (Ast.iter i) b)) (Ast.iter j)))
    md

let test_exact_multiple_extraction () =
  (* (B*C*x + y) / C = B*x + y/C for any y. *)
  let x = it 0 a and y = it 1 (Size.mul a b) in
  let e = Ast.div (Ast.add (Ast.mul (Size.mul b c) (Ast.iter x)) (Ast.iter y)) c in
  let expected = simp (Ast.add (Ast.mul b (Ast.iter x)) (Ast.div (Ast.iter y) c)) in
  Alcotest.check expr "multiple pulled out" expected (simp e)

let test_approx_fig3c () =
  (* (i + j - k/2) / B = i / B when dom(j), k << B: approximate rule. *)
  let bigb = Size.mul b c in
  (* B = 24 under both valuations *)
  let i = it 0 (Size.mul a bigb) and j = it 1 (Size.of_int 3) in
  let e =
    Ast.div
      (Ast.add (Ast.iter i) (Ast.sub (Ast.iter j) (Ast.div (Ast.Size_const (Size.of_int 3)) (Size.of_int 2))))
      bigb
  in
  let approx = Simplify.simplify approx_ctx e in
  Alcotest.check expr "perturbation dropped" (Ast.div (Ast.iter i) bigb) approx;
  (* The exact context must keep it. *)
  let exact = Simplify.simplify exact_ctx e in
  Alcotest.(check bool) "exact keeps perturbation" false (Ast.equal exact (Ast.div (Ast.iter i) bigb))

let test_constant_folding () =
  let e = Ast.add (Ast.const 3) (Ast.sub (Ast.const 10) (Ast.const 5)) in
  Alcotest.check expr "constants fold" (Ast.const 8) (simp e);
  Alcotest.check expr "size const folds" (Ast.const 12)
    (simp (Ast.mul (Size.of_int 4) (Ast.const 3)))

let test_nested_div () =
  let i = it 0 (Size.mul (Size.mul a b) c) in
  let e = Ast.div (Ast.div (Ast.iter i) b) c in
  Alcotest.check expr "divisions combine" (Ast.div (Ast.iter i) (Size.mul b c)) (simp e)

(* --- Differential property: simplify preserves semantics --------------- *)

let iters_pool = [ it 0 a; it 1 b; it 2 c; it 3 (Size.mul b c) ]
let sizes_pool = [ b; c; Size.of_int 2; Size.of_int 3; Size.mul b c ]

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map Ast.iter (oneofl iters_pool); map Ast.const (int_range 0 5) ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 Ast.add (go (n - 1)) (go (n - 1)));
          (1, map2 Ast.sub (go (n - 1)) (go (n - 1)));
          (2, map2 Ast.mul (oneofl sizes_pool) (go (n - 1)));
          (2, map2 Ast.div (go (n - 1)) (oneofl sizes_pool));
          (2, map2 Ast.modulo (go (n - 1)) (oneofl sizes_pool));
        ]
  in
  go 4

let arb_expr = QCheck.make ~print:Ast.to_string gen_expr

let eval_everywhere valuation e =
  (* Evaluate at a pseudo-random sample of iterator assignments. *)
  let lookup = Valuation.lookup valuation in
  let dims = List.map (fun i -> Size.eval i.Ast.dom lookup) iters_pool in
  let seed = ref 12345 in
  let next bound =
    seed := (!seed * 1103515245) + 12345;
    abs !seed mod bound
  in
  List.init 40 (fun _ ->
      let assignment = List.map next dims in
      let env id = List.nth assignment id in
      Ast.eval ~env ~lookup e)

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation (exact rules)" ~count:300 arb_expr
    (fun e ->
      let e' = Simplify.simplify exact_ctx e in
      List.for_all2 ( = ) (eval_everywhere val1 e) (eval_everywhere val1 e')
      && List.for_all2 ( = ) (eval_everywhere val2 e) (eval_everywhere val2 e'))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:300 arb_expr (fun e ->
      let once = Simplify.simplify exact_ctx e in
      Ast.equal once (Simplify.simplify exact_ctx once))

let prop_simplify_no_growth =
  QCheck.Test.make ~name:"simplify never grows much" ~count:300 arb_expr (fun e ->
      Ast.size_of_ast (Simplify.simplify exact_ctx e) <= (3 * Ast.size_of_ast e) + 4)

let prop_simplify_idempotent_approx =
  QCheck.Test.make ~name:"simplify idempotent (approximate rules)" ~count:300 arb_expr
    (fun e ->
      let once = Simplify.simplify approx_ctx e in
      Ast.equal once (Simplify.simplify approx_ctx once))

(* The rewrite trace partitions firings into exact and approximate;
   every firing tagged exact must preserve concrete evaluation at both
   valuations (the approximate Fig. 3(c) rules are the only ones
   allowed to change semantics). *)
let prop_exact_rewrites_preserve_eval =
  QCheck.Test.make ~name:"exact-tagged rewrites preserve evaluation" ~count:300 arb_expr
    (fun e ->
      List.for_all
        (fun (rw : Simplify.rewrite) ->
          rw.Simplify.rw_approx
          || (List.for_all2 ( = )
                (eval_everywhere val1 rw.Simplify.rw_before)
                (eval_everywhere val1 rw.Simplify.rw_after)
             && List.for_all2 ( = )
                  (eval_everywhere val2 rw.Simplify.rw_before)
                  (eval_everywhere val2 rw.Simplify.rw_after)))
        (snd (Simplify.simplify_traced approx_ctx e)))

let prop_bounds_sound =
  QCheck.Test.make ~name:"bounds contain all evaluations" ~count:300 arb_expr (fun e ->
      let lookup = Valuation.lookup val1 in
      let lo, hi = Ast.bounds ~lookup e in
      List.for_all (fun v -> lo <= v && v <= hi) (eval_everywhere val1 e))

let () =
  Alcotest.run "coord"
    [
      ( "ast",
        [
          Alcotest.test_case "fdiv/emod" `Quick test_fdiv_emod;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "(B*i)%(B*C)" `Quick test_mul_mod_factor;
          Alcotest.test_case "(B*i)/(B*C)" `Quick test_mul_div_factor;
          Alcotest.test_case "split-merge identity" `Quick test_split_merge_identity;
          Alcotest.test_case "mod collapse" `Quick test_mod_collapse;
          Alcotest.test_case "div collapse" `Quick test_div_collapse;
          Alcotest.test_case "fig3a" `Quick test_fig3a;
          Alcotest.test_case "exact multiple extraction" `Quick test_exact_multiple_extraction;
          Alcotest.test_case "fig3c approximate" `Quick test_approx_fig3c;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "nested div" `Quick test_nested_div;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_eval;
            prop_simplify_idempotent;
            prop_simplify_idempotent_approx;
            prop_exact_rewrites_preserve_eval;
            prop_simplify_no_growth;
            prop_bounds_sound;
          ] );
    ]
