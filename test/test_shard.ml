(* Tests for the sharded multi-process search: partitioning
   (Search.Shard), checkpoint merging with quarantine-wins conflicts,
   the crash-tolerant coordinator (Search.Coordinator), per-shard fault
   injection derivation (Robust.Inject.split), the Checkpoint.preload
   resume fix, and the end-to-end determinism guarantee at the API
   level. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Enumerate = Search.Enumerate
module Mcts = Search.Mcts
module Shard = Search.Shard
module Coordinator = Search.Coordinator
module Checkpoint = Search.Checkpoint
module Cancel = Robust.Cancel
module Inject = Robust.Inject
module Zoo = Syno.Zoo
module Api = Syno.Api

let op1 = Zoo.conv2d.Zoo.operator
let op2 = Zoo.depthwise_conv.Zoo.operator

let entry ?(quarantined = false) ?reason ~reward ~visits op =
  {
    Checkpoint.signature = Graph.operator_signature op;
    operator = op;
    reward;
    visits;
    quarantined;
    reason;
  }

let with_tmp_base f =
  let base = Filename.temp_file "syno_test_shard" ".ckpt" in
  Sys.remove base;
  let cleanup () =
    for i = 0 to 7 do
      let p = Shard.checkpoint_path ~base ~shard_id:i in
      if Sys.file_exists p then Sys.remove p
    done;
    if Sys.file_exists base then Sys.remove base
  in
  Fun.protect ~finally:cleanup (fun () -> f base)

(* --- Partitioning ---------------------------------------------------------- *)

let test_owner_partition () =
  let shards = 3 in
  let keys = List.init 60 (Printf.sprintf "root-action-%d") in
  List.iter
    (fun key ->
      let o = Shard.owner ~seed:42 ~shards key in
      Alcotest.(check bool) "in range" true (o >= 0 && o < shards);
      Alcotest.(check int) "deterministic" o (Shard.owner ~seed:42 ~shards key))
    keys;
  let covered = List.sort_uniq compare (List.map (Shard.owner ~seed:42 ~shards) keys) in
  Alcotest.(check int) "every shard owns some keys" shards (List.length covered);
  Alcotest.(check bool) "partition depends on the seed" true
    (List.exists (fun k -> Shard.owner ~seed:1 ~shards k <> Shard.owner ~seed:2 ~shards k) keys)

let test_derive_seed () =
  let s0 = Shard.derive_seed ~seed:2024 ~shard_id:0 in
  let s1 = Shard.derive_seed ~seed:2024 ~shard_id:1 in
  Alcotest.(check int) "deterministic" s0 (Shard.derive_seed ~seed:2024 ~shard_id:0);
  Alcotest.(check bool) "distinct per shard" true (s0 <> s1);
  Alcotest.(check bool) "distinct per run seed" true
    (s0 <> Shard.derive_seed ~seed:2025 ~shard_id:0);
  Alcotest.(check bool) "non-negative" true (s0 >= 0 && s1 >= 0)

(* Every root action of a real enumeration must be owned by exactly one
   shard's filter, so the shards cover the space without overlap. *)
let m = Var.primary "M"
let nd_ = Var.primary "Nd"
let kd = Var.primary "Kd"
let sz = Size.of_var

let matmul_cfg ?(max_prims = 4) () =
  let valuations =
    [
      Valuation.of_list [ (m, 8); (nd_, 8); (kd, 8) ];
      Valuation.of_list [ (m, 16); (nd_, 4); (kd, 8) ];
    ]
  in
  let base =
    Enumerate.default_config ~output_shape:[ sz m; sz nd_ ] ~desired_shape:[ sz m; sz kd ]
      ~valuations ()
  in
  { base with Enumerate.max_prims; reduce_candidates = [ sz kd ] }

let test_root_filter_exact_cover () =
  let shards = 3 and seed = 7 in
  let assignments =
    List.init shards (fun i -> Shard.make ~base:"b" ~seed ~shards ~shard_id:i)
  in
  let cfg = matmul_cfg () in
  let roots = List.map fst (Enumerate.children cfg (Graph.init [ sz m; sz nd_ ])) in
  Alcotest.(check bool) "has root actions" true (roots <> []);
  List.iter
    (fun prim ->
      let owners = List.filter (fun a -> Shard.root_filter a prim) assignments in
      Alcotest.(check int) "exactly one owner" 1 (List.length owners))
    roots

let test_mcts_root_filter () =
  let cfg = matmul_cfg () in
  let config = Mcts.default_config ~iterations:50 () in
  let reward ~cancel:_ _ = 0.5 in
  let none =
    Mcts.search ~config ~root_filter:(fun _ -> false) cfg ~reward
      ~rng:(Nd.Rng.create ~seed:3) ()
  in
  Alcotest.(check int) "empty root partition finds nothing" 0 (List.length none);
  let all =
    Mcts.search ~config ~root_filter:(fun _ -> true) cfg ~reward
      ~rng:(Nd.Rng.create ~seed:3) ()
  in
  let plain = Mcts.search ~config cfg ~reward ~rng:(Nd.Rng.create ~seed:3) () in
  Alcotest.(check int) "accept-all filter is the unfiltered search" (List.length plain)
    (List.length all)

(* --- Inject.split ---------------------------------------------------------- *)

let test_inject_split () =
  let t = Inject.create ~seed:9 ~rate:0.5 ~max_failures:2 () in
  let a = Inject.split t ~index:3 in
  let b = Inject.split t ~index:3 in
  Alcotest.(check int) "same index, same derived seed" (Inject.seed a) (Inject.seed b);
  let c = Inject.split t ~index:4 in
  Alcotest.(check bool) "distinct index, distinct seed" true (Inject.seed a <> Inject.seed c);
  Alcotest.(check bool) "derived differs from parent" true (Inject.seed a <> Inject.seed t);
  (* Same derived seed means the same fault schedule... *)
  let keys = List.init 40 (Printf.sprintf "sig-%d") in
  List.iter
    (fun key ->
      Alcotest.(check int)
        ("schedule " ^ key)
        (Inject.failures_planned a ~key)
        (Inject.failures_planned b ~key))
    keys;
  (* ...and distinct shards do not replay one identical stream. *)
  Alcotest.(check bool) "schedules diverge across shards" true
    (List.exists
       (fun key -> Inject.failures_planned a ~key <> Inject.failures_planned c ~key)
       keys);
  (* Disabled injectors split to themselves and counters start fresh. *)
  Alcotest.(check int) "none splits to none" (Inject.seed Inject.none)
    (Inject.seed (Inject.split Inject.none ~index:5));
  Alcotest.(check int) "fresh fault counter" 0 (Inject.injected_count a);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Inject.split: index must be >= 0") (fun () ->
      ignore (Inject.split t ~index:(-1)))

(* --- Merge semantics ------------------------------------------------------- *)

let test_merge_clean_conflict () =
  let a = entry ~reward:0.3 ~visits:2 op1 in
  let b = entry ~reward:0.7 ~visits:3 op1 in
  let merged, conflicts = Shard.merge_entries [ [ a ]; [ b ] ] in
  Alcotest.(check int) "one conflict" 1 conflicts;
  match merged with
  | [ e ] ->
      Alcotest.(check (float 0.0)) "best reward wins" 0.7 e.Checkpoint.reward;
      Alcotest.(check int) "visits summed" 5 e.Checkpoint.visits;
      Alcotest.(check bool) "stays clean" false e.Checkpoint.quarantined
  | es -> Alcotest.failf "expected 1 merged entry, got %d" (List.length es)

let test_merge_quarantine_wins () =
  let q = entry ~quarantined:true ~reason:"static_violation" ~reward:(-1.0) ~visits:1 op1 in
  let c = entry ~reward:0.9 ~visits:2 op1 in
  List.iter
    (fun lists ->
      match Shard.merge_entries lists with
      | [ e ], 1 ->
          Alcotest.(check bool) "quarantine survives the merge" true e.Checkpoint.quarantined;
          Alcotest.(check (float 0.0)) "quarantine reward kept" (-1.0) e.Checkpoint.reward;
          Alcotest.(check (option string)) "reason kept" (Some "static_violation")
            e.Checkpoint.reason;
          Alcotest.(check int) "visits summed" 3 e.Checkpoint.visits
      | es, n -> Alcotest.failf "expected 1 entry 1 conflict, got %d/%d" (List.length es) n)
    [ [ [ q ]; [ c ] ]; [ [ c ]; [ q ] ] ]

let test_merge_nan_safe () =
  let a = entry ~reward:Float.nan ~visits:1 op1 in
  let b = entry ~reward:0.5 ~visits:1 op1 in
  let merged, _ = Shard.merge_entries [ [ a ]; [ b ] ] in
  (match merged with
  | [ e ] -> Alcotest.(check (float 0.0)) "NaN never wins" 0.5 e.Checkpoint.reward
  | _ -> Alcotest.fail "expected one entry");
  (* Distinct signatures never conflict. *)
  let merged, conflicts =
    Shard.merge_entries [ [ entry ~reward:0.1 ~visits:1 op1 ]; [ entry ~reward:0.2 ~visits:1 op2 ] ]
  in
  Alcotest.(check int) "no conflicts" 0 conflicts;
  Alcotest.(check int) "both kept" 2 (List.length merged)

let test_rank () =
  let q = entry ~quarantined:true ~reward:5.0 ~visits:1 op1 in
  let c = entry ~reward:0.2 ~visits:1 op2 in
  match Shard.rank [ q; c ] with
  | [ first; second ] ->
      Alcotest.(check bool) "clean entry ranks first" false first.Checkpoint.quarantined;
      Alcotest.(check bool) "quarantined last despite reward" true second.Checkpoint.quarantined
  | _ -> Alcotest.fail "expected two entries"

(* --- Damaged shard files --------------------------------------------------- *)

let test_load_and_merge_truncated () =
  with_tmp_base (fun base ->
      let a0 = Shard.make ~base ~seed:1 ~shards:2 ~shard_id:0 in
      let a1 = Shard.make ~base ~seed:1 ~shards:2 ~shard_id:1 in
      Checkpoint.save ~path:a0.Shard.path [ entry ~reward:0.5 ~visits:1 op1 ];
      Checkpoint.save ~path:a1.Shard.path [ entry ~reward:0.25 ~visits:1 op2 ];
      (* A mid-write SIGKILL cannot damage the snapshot (writes are
         atomic), but external truncation after the fact can — the merge
         must quarantine the file and keep going. *)
      let size = (Unix.stat a1.Shard.path).Unix.st_size in
      Unix.truncate a1.Shard.path (size / 2);
      let m = Shard.load_and_merge [ a0; a1 ] in
      Alcotest.(check (list int)) "clean shard loaded" [ 0 ] m.Shard.mr_loaded;
      Alcotest.(check (list int)) "damaged shard quarantined" [ 1 ]
        (List.map fst m.Shard.mr_quarantined);
      Alcotest.(check int) "clean entries survive" 1 (List.length m.Shard.mr_entries);
      Alcotest.(check (list int)) "nothing missing" [] m.Shard.mr_missing)

let test_load_and_merge_missing () =
  with_tmp_base (fun base ->
      let a0 = Shard.make ~base ~seed:1 ~shards:2 ~shard_id:0 in
      let a1 = Shard.make ~base ~seed:1 ~shards:2 ~shard_id:1 in
      Checkpoint.save ~path:a0.Shard.path [ entry ~reward:0.5 ~visits:1 op1 ];
      let m = Shard.load_and_merge [ a0; a1 ] in
      Alcotest.(check (list int)) "missing shard reported" [ 1 ] m.Shard.mr_missing;
      Alcotest.(check (list int)) "no quarantine for missing" []
        (List.map fst m.Shard.mr_quarantined);
      Alcotest.(check int) "merge proceeds" 1 (List.length m.Shard.mr_entries))

(* --- Checkpoint.preload ---------------------------------------------------- *)

(* The resume fix: a resumed run's sink must carry the resumed history
   into every snapshot it writes, or a second kill/resume cycle shrinks
   the memo. *)
let test_checkpoint_preload () =
  with_tmp_base (fun base ->
      let path = Shard.checkpoint_path ~base ~shard_id:0 in
      let sink = Checkpoint.sink ~path ~every:1000 () in
      Checkpoint.preload sink [ entry ~reward:0.5 ~visits:3 op1 ];
      Checkpoint.note sink (entry ~reward:0.25 ~visits:1 op2);
      Checkpoint.flush sink;
      (match Checkpoint.load_result ~path with
      | Ok es -> Alcotest.(check int) "preloaded + noted both persisted" 2 (List.length es)
      | Error e -> Alcotest.fail (Checkpoint.string_of_error e));
      (* A fresh note beats the preloaded entry for the same signature,
         in either call order. *)
      let sink = Checkpoint.sink ~path ~every:1000 () in
      Checkpoint.preload sink [ entry ~reward:0.5 ~visits:3 op1 ];
      Checkpoint.note sink (entry ~reward:0.9 ~visits:5 op1);
      Checkpoint.flush sink;
      (match Checkpoint.load_result ~path with
      | Ok [ e ] -> Alcotest.(check (float 0.0)) "note wins after preload" 0.9 e.Checkpoint.reward
      | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error e -> Alcotest.fail (Checkpoint.string_of_error e));
      let sink = Checkpoint.sink ~path ~every:1000 () in
      Checkpoint.note sink (entry ~reward:0.9 ~visits:5 op1);
      Checkpoint.preload sink [ entry ~reward:0.5 ~visits:3 op1 ];
      Checkpoint.flush sink;
      match Checkpoint.load_result ~path with
      | Ok [ e ] -> Alcotest.(check (float 0.0)) "note wins before preload" 0.9 e.Checkpoint.reward
      | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error e -> Alcotest.fail (Checkpoint.string_of_error e))

(* --- Coordinator ----------------------------------------------------------- *)

let quick_config ?(shards = 2) () =
  { (Coordinator.default_config ~shards ()) with Coordinator.backoff = 0.01 }

let shard_op (a : Shard.assignment) = if a.Shard.shard_id = 0 then op1 else op2

let save_shard (a : Shard.assignment) reward =
  Checkpoint.save ~path:a.Shard.path [ entry ~reward ~visits:1 (shard_op a) ]

let is_done = function Coordinator.Done -> true | _ -> false

let test_coordinator_crash_restart () =
  with_tmp_base (fun base ->
      (* Every shard's first forked attempt crashes; the restart resumes
         and succeeds.  ctx.attempt is the only cross-process channel. *)
      let body (ctx : Coordinator.ctx) =
        if ctx.Coordinator.attempt = 0 then failwith "injected crash"
        else save_shard ctx.Coordinator.assignment 0.5
      in
      let r = Coordinator.run ~config:(quick_config ()) ~base ~seed:3 ~body () in
      Alcotest.(check int) "one restart per shard" 2 r.Coordinator.rp_restarts;
      List.iter
        (fun s ->
          Alcotest.(check bool) "shard done" true (is_done s.Coordinator.sh_status);
          Alcotest.(check int) "two attempts" 2 s.Coordinator.sh_attempts)
        r.Coordinator.rp_shards;
      Alcotest.(check int) "both shards merged" 2
        (List.length r.Coordinator.rp_merge.Shard.mr_entries);
      Alcotest.(check bool) "not interrupted" false r.Coordinator.rp_interrupted)

(* The coordinator opens a heartbeat pipe per forked attempt; across
   crash/restart cycles every descriptor must be reclaimed (parent
   closes the read end on retire, children close sibling read ends, and
   a failed fork closes both).  A leak here is invisible in a single
   run and fatal in a long-lived daemon, so pin the process-wide fd
   count across repeated cycles. *)
let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_coordinator_fd_hygiene () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else
    with_tmp_base (fun base ->
        let body (ctx : Coordinator.ctx) =
          if ctx.Coordinator.attempt = 0 then failwith "injected crash"
          else save_shard ctx.Coordinator.assignment 0.5
        in
        let cycle () =
          let r = Coordinator.run ~config:(quick_config ()) ~base ~seed:3 ~body () in
          List.iter
            (fun s ->
              Alcotest.(check bool) "shard done" true (is_done s.Coordinator.sh_status))
            r.Coordinator.rp_shards
        in
        (* Warm-up cycle first so one-time lazy allocations don't count
           against the comparison. *)
        cycle ();
        let before = count_fds () in
        for _ = 1 to 5 do
          cycle ()
        done;
        Alcotest.(check int) "fd count unchanged after 5 crash/restart cycles" before
          (count_fds ()))

let test_coordinator_heartbeat_kill () =
  with_tmp_base (fun base ->
      (* First attempt hangs without heartbeating; the supervisor must
         SIGKILL it and the restart succeeds. *)
      let body (ctx : Coordinator.ctx) =
        if ctx.Coordinator.attempt = 0 then Unix.sleepf 30.0
        else save_shard ctx.Coordinator.assignment 0.5
      in
      let config =
        { (quick_config ~shards:1 ()) with Coordinator.heartbeat_timeout = 0.3 }
      in
      let t0 = Unix.gettimeofday () in
      let r = Coordinator.run ~config ~base ~seed:3 ~body () in
      Alcotest.(check bool) "killed well before the hang ends" true
        (Unix.gettimeofday () -. t0 < 10.0);
      match r.Coordinator.rp_shards with
      | [ s ] ->
          Alcotest.(check bool) "done after restart" true (is_done s.Coordinator.sh_status);
          Alcotest.(check bool) "supervisor killed it" true (s.Coordinator.sh_kills >= 1);
          Alcotest.(check int) "two attempts" 2 s.Coordinator.sh_attempts
      | _ -> Alcotest.fail "expected one shard")

let test_coordinator_deadline_kill () =
  with_tmp_base (fun base ->
      (* The hung attempt heartbeats, so only the per-shard deadline
         catches it. *)
      let body (ctx : Coordinator.ctx) =
        if ctx.Coordinator.attempt = 0 then
          for _ = 1 to 1000 do
            ctx.Coordinator.beat ();
            Unix.sleepf 0.03
          done
        else save_shard ctx.Coordinator.assignment 0.5
      in
      let config =
        {
          (quick_config ~shards:1 ()) with
          Coordinator.heartbeat_timeout = 30.0;
          shard_deadline = Some 0.3;
        }
      in
      let r = Coordinator.run ~config ~base ~seed:3 ~body () in
      match r.Coordinator.rp_shards with
      | [ s ] ->
          Alcotest.(check bool) "done after restart" true (is_done s.Coordinator.sh_status);
          Alcotest.(check bool) "deadline kill recorded" true (s.Coordinator.sh_kills >= 1)
      | _ -> Alcotest.fail "expected one shard")

let test_coordinator_restart_budget () =
  with_tmp_base (fun base ->
      let body (_ : Coordinator.ctx) = failwith "always crashes" in
      let config = { (quick_config ~shards:1 ()) with Coordinator.max_restarts = 1 } in
      let r = Coordinator.run ~config ~base ~seed:3 ~body () in
      match r.Coordinator.rp_shards with
      | [ s ] ->
          (match s.Coordinator.sh_status with
          | Coordinator.Failed reason ->
              Alcotest.(check string) "worker exception exit code" "exit 70" reason
          | _ -> Alcotest.fail "expected Failed");
          Alcotest.(check int) "budget honoured" 2 s.Coordinator.sh_attempts;
          Alcotest.(check int) "one restart consumed" 1 r.Coordinator.rp_restarts
      | _ -> Alcotest.fail "expected one shard")

let test_coordinator_cancel_cascade () =
  with_tmp_base (fun base ->
      (* Workers loop until cancelled, then flush their checkpoint and
         return; the coordinator's deadline token trips mid-run and the
         SIGTERM cascade must reach every worker. *)
      let body (ctx : Coordinator.ctx) =
        let rec loop n =
          ctx.Coordinator.beat ();
          if Cancel.is_cancelled ctx.Coordinator.cancel then
            save_shard ctx.Coordinator.assignment 0.5
          else if n > 2000 then failwith "cancellation never arrived"
          else begin
            Unix.sleepf 0.02;
            loop (n + 1)
          end
        in
        loop 0
      in
      let cancel = Cancel.with_timeout 0.4 in
      let r = Coordinator.run ~config:(quick_config ()) ~cancel ~base ~seed:3 ~body () in
      Alcotest.(check bool) "run reports interruption" true r.Coordinator.rp_interrupted;
      List.iter
        (fun s ->
          Alcotest.(check bool) "shard interrupted" true
            (s.Coordinator.sh_status = Coordinator.Interrupted))
        r.Coordinator.rp_shards;
      Alcotest.(check int) "both workers flushed before exiting" 2
        (List.length r.Coordinator.rp_merge.Shard.mr_entries))

let test_coordinator_inline_matches_forked () =
  with_tmp_base (fun base ->
      let forked_seen = ref [] in
      let body (ctx : Coordinator.ctx) =
        forked_seen := ctx.Coordinator.forked :: !forked_seen;
        save_shard ctx.Coordinator.assignment
          (0.1 *. float_of_int (ctx.Coordinator.assignment.Shard.shard_id + 1))
      in
      let inline = Coordinator.run_inline ~config:(quick_config ()) ~base ~seed:3 ~body () in
      Alcotest.(check (list bool)) "inline bodies see forked=false" [ false; false ]
        !forked_seen;
      let pick (r : Coordinator.report) =
        List.map
          (fun (e : Checkpoint.entry) -> (e.Checkpoint.signature, e.Checkpoint.reward))
          r.Coordinator.rp_merge.Shard.mr_entries
      in
      let inline_entries = pick inline in
      let forked = Coordinator.run ~config:(quick_config ()) ~base ~seed:3 ~body () in
      Alcotest.(check bool) "forked merge equals inline merge" true
        (pick forked = inline_entries))

(* --- End-to-end API determinism -------------------------------------------- *)

let test_api_sharded_determinism () =
  with_tmp_base (fun base ->
      let clear () =
        for i = 0 to 1 do
          let p = Shard.checkpoint_path ~base ~shard_id:i in
          if Sys.file_exists p then Sys.remove p
        done
      in
      let run ?kill_after ~inline () =
        clear ();
        Api.search_conv_operators_sharded_run ~iterations:240 ~max_prims:6 ~shards:2
          ~backoff:0.01 ?kill_after ~inline ~checkpoint_base:base ~seed:2024
          ~valuations:Api.default_search_valuations ()
      in
      let sigs (r : Api.sharded_run) =
        List.map (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward)) r.Api.sh_candidates
      in
      let inline_r = run ~inline:true () in
      Alcotest.(check bool) "inline run finds operators" true (sigs inline_r <> []);
      let killed = run ~kill_after:1 ~inline:false () in
      Alcotest.(check bool) "workers actually crashed and restarted" true
        (killed.Api.sh_report.Coordinator.rp_restarts >= 1);
      Alcotest.(check bool) "killed+restarted merge equals the inline reference" true
        (sigs killed = sigs inline_r))

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "owner covers and is stable" `Quick test_owner_partition;
          Alcotest.test_case "derived seeds" `Quick test_derive_seed;
          Alcotest.test_case "root actions covered exactly once" `Quick
            test_root_filter_exact_cover;
          Alcotest.test_case "mcts root_filter" `Quick test_mcts_root_filter;
        ] );
      ( "inject-split",
        [ Alcotest.test_case "per-shard fault streams" `Quick test_inject_split ] );
      ( "merge",
        [
          Alcotest.test_case "clean conflict takes best" `Quick test_merge_clean_conflict;
          Alcotest.test_case "quarantine wins" `Quick test_merge_quarantine_wins;
          Alcotest.test_case "NaN-safe, distinct kept" `Quick test_merge_nan_safe;
          Alcotest.test_case "ranking" `Quick test_rank;
          Alcotest.test_case "truncated file quarantined" `Quick
            test_load_and_merge_truncated;
          Alcotest.test_case "missing file reported" `Quick test_load_and_merge_missing;
        ] );
      ( "checkpoint-preload",
        [ Alcotest.test_case "resumed history persists" `Quick test_checkpoint_preload ] );
      ( "coordinator",
        [
          Alcotest.test_case "crash restarts and resumes" `Quick
            test_coordinator_crash_restart;
          Alcotest.test_case "fd hygiene across restart cycles" `Quick
            test_coordinator_fd_hygiene;
          Alcotest.test_case "heartbeat silence kills" `Quick test_coordinator_heartbeat_kill;
          Alcotest.test_case "deadline kills" `Quick test_coordinator_deadline_kill;
          Alcotest.test_case "restart budget exhausts to Failed" `Quick
            test_coordinator_restart_budget;
          Alcotest.test_case "cancel cascades and flushes" `Quick
            test_coordinator_cancel_cascade;
          Alcotest.test_case "inline matches forked" `Quick
            test_coordinator_inline_matches_forked;
        ] );
      ( "api",
        [
          Alcotest.test_case "kills + restarts = inline reference" `Quick
            test_api_sharded_determinism;
        ] );
    ]
