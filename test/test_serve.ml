(* Tests for the serving subsystem: wire-protocol round-trips, the LRU
   result cache and its crash-tolerant snapshots, bounded admission,
   and an embedded end-to-end daemon (in-process, signals disabled)
   covering cold/cached eval, deadline timeouts, poison containment
   with corpus replay, warm restart from a persisted cache, and
   graceful drain. *)

module P = Serve.Protocol
module Cache = Serve.Cache
module Admission = Serve.Admission
module Server = Serve.Server
module Client = Serve.Client

let with_temp_dir f =
  let dir = Filename.temp_file "syno_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- Protocol --------------------------------------------------------------- *)

let test_protocol_request_roundtrip () =
  (* Every byte a value can carry must survive render -> parse,
     including the separators the framing itself uses. *)
  let nasty = "a b%=\n\tc\x01\x7f\xffend" in
  let rq =
    { P.rq_id = "req-42"; rq_verb = P.Eval; rq_params = [ ("trace", nasty); ("n", "4") ] }
  in
  (match P.parse_request (P.render_request rq) with
  | Ok back ->
      Alcotest.(check string) "id" rq.P.rq_id back.P.rq_id;
      Alcotest.(check bool) "verb" true (back.P.rq_verb = P.Eval);
      Alcotest.(check (option string)) "nasty value intact" (Some nasty)
        (P.param back "trace");
      Alcotest.(check (option string)) "second param" (Some "4") (P.param back "n")
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* Last occurrence wins: clients override defaults by appending. *)
  let dup =
    { P.rq_id = "d"; rq_verb = P.Eval; rq_params = [ ("k", "old"); ("k", "new") ] }
  in
  match P.parse_request (P.render_request dup) with
  | Ok back -> Alcotest.(check (option string)) "last wins" (Some "new") (P.param back "k")
  | Error e -> Alcotest.failf "dup round-trip failed: %s" e

let test_protocol_response_roundtrip () =
  let ok = P.Resp_ok [ ("verdict", "proved"); ("detail", "has spaces") ] in
  (match P.parse_response (P.render_response ~id:"r1" ok) with
  | Ok ("r1", P.Resp_ok ps) ->
      Alcotest.(check (option string)) "param" (Some "has spaces") (List.assoc_opt "detail" ps)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "ok round-trip: %s" e);
  let err =
    P.Resp_error
      {
        err_kind = "overloaded";
        err_detail = "queue depth 64";
        err_retry_after = Some 0.05;
      }
  in
  (match P.parse_response (P.render_response ~id:"r2" err) with
  | Ok ("r2", P.Resp_error { err_kind; err_detail; err_retry_after }) ->
      Alcotest.(check string) "kind" "overloaded" err_kind;
      Alcotest.(check string) "detail" "queue depth 64" err_detail;
      Alcotest.(check (option (float 1e-9))) "retry-after" (Some 0.05) err_retry_after
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "error round-trip: %s" e);
  let no_retry =
    P.Resp_error { err_kind = "timeout"; err_detail = "x"; err_retry_after = None }
  in
  match P.parse_response (P.render_response ~id:"r3" no_retry) with
  | Ok ("r3", P.Resp_error { err_retry_after; _ }) ->
      Alcotest.(check (option (float 0.0))) "no retry-after" None err_retry_after
  | _ -> Alcotest.fail "no-retry round-trip failed"

let test_protocol_rejects_junk () =
  let bad s =
    match P.parse_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed junk %S" s
  in
  bad "";
  bad "only-an-id";
  bad "id not-a-verb";
  bad "id eval naked-no-equals";
  (match P.decode "%zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded bad escape");
  Alcotest.(check bool) "empty not a token" false (P.is_token "");
  Alcotest.(check bool) "space not a token" false (P.is_token "a b");
  Alcotest.(check bool) "= not a token" false (P.is_token "k=v");
  Alcotest.(check bool) "plain token ok" true (P.is_token "req-42");
  let rq = { P.rq_id = "i"; rq_verb = P.Eval; rq_params = [ ("n", "junk"); ("d", "nan") ] } in
  (match P.int_param rq "n" ~default:1 with
  | Error msg ->
      Alcotest.(check bool) "int error names key" true
        (Astring.String.is_infix ~affix:"n" msg)
  | Ok _ -> Alcotest.fail "accepted junk int");
  (match P.float_param rq "d" ~default:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-finite float");
  match P.int_param rq "absent" ~default:7 with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "default not applied"

(* --- Cache ------------------------------------------------------------------ *)

let entry ?(checksum = 1.5) ?(spec = -1.0) key =
  {
    Cache.e_key = key;
    e_verdict = "proved";
    e_flops = 1000;
    e_params = 10;
    e_elements = 64;
    e_checksum = checksum;
    e_cold_seconds = 0.25;
    e_spec_seconds = spec;
  }

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.put c (entry "a");
  Cache.put c (entry "b");
  (* Touch "a" so "b" is the least recently used when "c" arrives. *)
  Alcotest.(check bool) "hit a" true (Cache.find c "a" <> None);
  Cache.put c (entry "c");
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "a retained" true (Cache.find c "a" <> None);
  Alcotest.(check bool) "c present" true (Cache.find c "c" <> None);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "size bounded" 2 (Cache.size c)

let test_cache_persistence_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "cache.snap" in
      let c, report = Cache.open_file ~capacity:8 ~every:1 path in
      Alcotest.(check int) "fresh file loads nothing" 0 report.Cache.or_loaded;
      (* A checksum with no short decimal form must survive the %h
         round-trip bit-for-bit. *)
      Cache.put c (entry ~checksum:(1.0 /. 3.0) "op-a@v1");
      Cache.put c (entry "op-b@v1");
      Cache.flush c;
      let c2, report2 = Cache.open_file ~capacity:8 path in
      Alcotest.(check int) "both entries load" 2 report2.Cache.or_loaded;
      Alcotest.(check bool) "no quarantine" true (report2.Cache.or_quarantined = None);
      match Cache.find c2 "op-a@v1" with
      | Some e ->
          Alcotest.(check (float 0.0)) "checksum bit-exact" (1.0 /. 3.0) e.Cache.e_checksum;
          Alcotest.(check string) "verdict" "proved" e.Cache.e_verdict
      | None -> Alcotest.fail "persisted entry missing")

let test_cache_spec_seconds_compat () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "cache.snap" in
      let c, _ = Cache.open_file ~capacity:8 ~every:1 path in
      Cache.put c (entry ~spec:(1.0 /. 7.0) "op-spec@v1");
      Cache.put c (entry "op-plain@v1");
      Cache.flush c;
      let c2, report = Cache.open_file ~capacity:8 path in
      Alcotest.(check int) "both load" 2 report.Cache.or_loaded;
      (match Cache.find c2 "op-spec@v1" with
      | Some e ->
          Alcotest.(check (float 0.0)) "spec bit-exact" (1.0 /. 7.0) e.Cache.e_spec_seconds
      | None -> Alcotest.fail "spec entry missing");
      (match Cache.find c2 "op-plain@v1" with
      | Some e ->
          Alcotest.(check bool) "unspecialized negative" true (e.Cache.e_spec_seconds < 0.0)
      | None -> Alcotest.fail "plain entry missing");
      (* Snapshots written before the spec field existed still load. *)
      let legacy =
        "syno-serve-cache v1\nentries: 1\n\
         entry: key legacy@v1 verdict proved flops 1 params 1 elements 1 checksum 0x1p-1 \
         cold 0x1p-3\n"
      in
      match Cache.of_string_result legacy with
      | Error _ -> Alcotest.fail "legacy snapshot rejected"
      | Ok c3 -> (
          match Cache.find c3 "legacy@v1" with
          | Some e ->
              Alcotest.(check (float 0.0)) "legacy spec default" (-1.0) e.Cache.e_spec_seconds
          | None -> Alcotest.fail "legacy entry missing"))

let test_cache_quarantines_garbage () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "cache.snap" in
      let oc = open_out path in
      output_string oc "this is not a cache snapshot\n";
      close_out oc;
      let c, report = Cache.open_file path in
      Alcotest.(check int) "nothing loaded" 0 report.Cache.or_loaded;
      (match report.Cache.or_quarantined with
      | Some (_, Cache.Bad_header _) -> ()
      | Some (_, e) -> Alcotest.failf "wrong error: %s" (Cache.string_of_error e)
      | None -> Alcotest.fail "garbage not quarantined");
      Alcotest.(check bool) "moved aside" true (Sys.file_exists (path ^ ".corrupt"));
      (* The daemon keeps serving with a fresh cache on the same path. *)
      Cache.put c (entry "fresh");
      Cache.flush c;
      let _, report3 = Cache.open_file path in
      Alcotest.(check int) "fresh snapshot readable" 1 report3.Cache.or_loaded)

let test_cache_detects_truncation () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "cache.snap" in
      let c, _ = Cache.open_file path in
      Cache.put c (entry "a");
      Cache.put c (entry "b");
      Cache.flush c;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* Claim more entries than the file carries, as a crash that lost
         the tail would. *)
      let lying =
        match Astring.String.cut ~sep:"entries: 2" text with
        | Some (before, after) -> before ^ "entries: 5" ^ after
        | None -> Alcotest.fail "snapshot missing its count line"
      in
      let oc = open_out_bin path in
      output_string oc lying;
      close_out oc;
      let _, report = Cache.open_file path in
      match report.Cache.or_quarantined with
      | Some (_, Cache.Truncated { expected = 5; found = 2 }) -> ()
      | Some (_, e) -> Alcotest.failf "wrong error: %s" (Cache.string_of_error e)
      | None -> Alcotest.fail "truncation not detected")

(* --- Admission -------------------------------------------------------------- *)

let test_admission_sheds_on_depth_and_bytes () =
  let q = Admission.create { Admission.max_depth = 2; max_bytes = 100; retry_after = 0.25 } in
  Alcotest.(check bool) "first admitted" true (Admission.offer q ~bytes:10 1 = Ok ());
  Alcotest.(check bool) "second admitted" true (Admission.offer q ~bytes:10 2 = Ok ());
  (match Admission.offer q ~bytes:10 3 with
  | Error shed ->
      Alcotest.(check int) "reports depth" 2 shed.Admission.sh_depth;
      Alcotest.(check (float 0.0)) "echoes retry-after" 0.25 shed.Admission.sh_retry_after
  | Ok () -> Alcotest.fail "third must shed on depth");
  (* A worker taking one frees a depth slot, but bytes stay in flight
     until completion. *)
  Alcotest.(check bool) "take" true (Admission.take q = Some 1);
  (match Admission.offer q ~bytes:95 4 with
  | Error shed -> Alcotest.(check int) "bytes pressure reported" 20 shed.Admission.sh_bytes
  | Ok () -> Alcotest.fail "must shed on bytes");
  Alcotest.(check bool) "small one fits" true (Admission.offer q ~bytes:5 5 = Ok ());
  Admission.complete q ~bytes:10;
  Alcotest.(check int) "completion releases bytes" 15 (Admission.inflight_bytes q);
  Alcotest.(check int) "sheds counted" 2 (Admission.shed_count q);
  Alcotest.(check int) "admissions counted" 3 (Admission.admitted_count q)

let test_admission_close_drains () =
  let q = Admission.create { Admission.max_depth = 8; max_bytes = 100; retry_after = 0.1 } in
  Alcotest.(check bool) "admitted" true (Admission.offer q ~bytes:1 1 = Ok ());
  Alcotest.(check bool) "admitted" true (Admission.offer q ~bytes:1 2 = Ok ());
  Admission.close q;
  (match Admission.offer q ~bytes:1 3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "closed queue must shed");
  Alcotest.(check bool) "drains first" true (Admission.take q = Some 1);
  Alcotest.(check bool) "drains second" true (Admission.take q = Some 2);
  Alcotest.(check bool) "then signals exit" true (Admission.take q = None);
  let q2 = Admission.create Admission.default_config in
  Alcotest.(check bool) "admitted" true (Admission.offer q2 ~bytes:1 1 = Ok ());
  Admission.close ~discard:true q2;
  Alcotest.(check bool) "discard drops queued work" true (Admission.take q2 = None)

(* --- End-to-end daemon ------------------------------------------------------ *)

let daemon_config dir =
  {
    (Server.default_config ~socket:(Filename.concat dir "sock")) with
    Server.cache_path = Some (Filename.concat dir "cache.snap");
    cache_every = 1;
    corpus_path = Some (Filename.concat dir "bugs.corpus");
    workers = 1;
    guard = Robust.Guard.policy ~retries:0 ~backoff:0.0 ();
  }

let with_daemon cfg f =
  let d = Domain.spawn (fun () -> Server.run ~signals:false cfg) in
  let conn =
    match Client.connect ~timeout:10.0 cfg.Server.socket_path with
    | Ok c -> c
    | Error e ->
        ignore (Domain.join d);
        Alcotest.failf "connect: %s" e
  in
  let finish () =
    (match Client.call ~timeout:10.0 conn { P.rq_id = "drain"; rq_verb = P.Drain; rq_params = [] } with
    | Ok (P.Resp_ok _) -> ()
    | Ok (P.Resp_error { err_kind; _ }) -> Alcotest.failf "drain refused: %s" err_kind
    | Error e -> Alcotest.failf "drain: %s" e);
    Client.close conn;
    Domain.join d
  in
  let result =
    try f conn
    with e ->
      (try ignore (finish ()) with _ -> ());
      raise e
  in
  let code = finish () in
  Alcotest.(check int) "daemon drains to exit 0" 0 code;
  result

let call conn ?(params = []) id verb =
  match Client.call ~timeout:30.0 conn { P.rq_id = id; rq_verb = verb; rq_params = params } with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "call %s: %s" id e

let ok_param resp key =
  match resp with
  | P.Resp_ok ps -> List.assoc_opt key ps
  | P.Resp_error { err_kind; err_detail; _ } ->
      Alcotest.failf "unexpected error %s (%s)" err_kind err_detail

let err_kind = function
  | P.Resp_error { err_kind; _ } -> err_kind
  | P.Resp_ok _ -> Alcotest.fail "expected a typed error"

let test_daemon_eval_cache_and_errors () =
  with_temp_dir (fun dir ->
      with_daemon (daemon_config dir) (fun conn ->
          (* Cold, then cached. *)
          let cold = call conn ~params:[ ("op", "conv1x1") ] "e1" P.Eval in
          Alcotest.(check (option string)) "cold" (Some "0") (ok_param cold "cached");
          Alcotest.(check bool) "verdict present" true (ok_param cold "verdict" <> None);
          let warm = call conn ~params:[ ("op", "conv1x1") ] "e2" P.Eval in
          Alcotest.(check (option string)) "cached" (Some "1") (ok_param warm "cached");
          Alcotest.(check (option string)) "same checksum" (ok_param cold "checksum")
            (ok_param warm "checksum");
          (* Unknown operator and junk parameters die as bad_request. *)
          Alcotest.(check string) "unknown op" "bad_request"
            (err_kind (call conn ~params:[ ("op", "no-such-op") ] "e3" P.Eval));
          Alcotest.(check string) "junk valuation" "bad_request"
            (err_kind (call conn ~params:[ ("op", "conv1x1"); ("n", "junk") ] "e4" P.Eval));
          (* An unmeetable deadline is a typed timeout, not a hang. *)
          Alcotest.(check string) "timeout"
            "timeout"
            (err_kind
               (call conn
                  ~params:[ ("op", "conv2d"); ("cache", "0"); ("deadline", "0.000001") ]
                  "e5" P.Eval));
          (* Daemon still serving afterwards. *)
          (match call conn "p1" P.Ping with
          | P.Resp_ok _ -> ()
          | P.Resp_error _ -> Alcotest.fail "ping after timeout");
          (* Status reflects the traffic. *)
          let st = call conn "s1" P.Status in
          (match ok_param st "cache_hits" with
          | Some h -> Alcotest.(check bool) "hits counted" true (int_of_string h >= 1)
          | None -> Alcotest.fail "status missing cache_hits");
          Alcotest.(check (option string)) "not draining" (Some "0") (ok_param st "draining")))

let test_daemon_poison_and_replay () =
  with_temp_dir (fun dir ->
      with_daemon (daemon_config dir) (fun conn ->
          let poisoned =
            call conn
              ~params:
                [ ("op", "conv1x1"); ("cache", "0"); ("fault_backend", "einsum");
                  ("fault_rate", "1"); ("fault_seed", "3") ]
              "p1" P.Eval
          in
          Alcotest.(check string) "typed poison" "backend_mismatch" (err_kind poisoned);
          (match call conn "p2" P.Ping with
          | P.Resp_ok _ -> ()
          | P.Resp_error _ -> Alcotest.fail "daemon died with the request");
          (* The poisoned operator was distilled: a fault-free
             re-encounter is rejected by corpus replay before any
             evaluation. *)
          let replay = call conn ~params:[ ("op", "conv1x1"); ("cache", "0") ] "p3" P.Eval in
          Alcotest.(check string) "replay rejects" "counterexample" (err_kind replay)))

let test_daemon_warm_restart () =
  with_temp_dir (fun dir ->
      let cfg = daemon_config dir in
      with_daemon cfg (fun conn ->
          let cold = call conn ~params:[ ("op", "conv1x1") ] "w1" P.Eval in
          Alcotest.(check (option string)) "first life: cold" (Some "0")
            (ok_param cold "cached"));
      (* Second life, same cache file: the first request is already
         warm. *)
      with_daemon cfg (fun conn ->
          let st = call conn "w2" P.Status in
          (match ok_param st "cache_loaded" with
          | Some n -> Alcotest.(check bool) "snapshot loaded" true (int_of_string n >= 1)
          | None -> Alcotest.fail "status missing cache_loaded");
          let warm = call conn ~params:[ ("op", "conv1x1") ] "w3" P.Eval in
          Alcotest.(check (option string)) "second life: warm" (Some "1")
            (ok_param warm "cached")))

let test_daemon_external_cancel_drains () =
  with_temp_dir (fun dir ->
      let cfg = { (daemon_config dir) with Server.cache_path = None; corpus_path = None } in
      let cancel = Robust.Cancel.create () in
      let d = Domain.spawn (fun () -> Server.run ~signals:false ~cancel cfg) in
      (match Client.connect ~timeout:10.0 cfg.Server.socket_path with
      | Ok conn ->
          (match call conn "c1" P.Ping with
          | P.Resp_ok _ -> ()
          | P.Resp_error _ -> Alcotest.fail "ping");
          Robust.Cancel.cancel ~reason:"test shutdown" cancel;
          Client.close conn
      | Error e ->
          ignore (Domain.join d);
          Alcotest.failf "connect: %s" e);
      Alcotest.(check int) "external cancel drains to 0" 0 (Domain.join d))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_protocol_response_roundtrip;
          Alcotest.test_case "junk rejected" `Quick test_protocol_rejects_junk;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "persistence round-trip" `Quick test_cache_persistence_roundtrip;
          Alcotest.test_case "spec seconds compat" `Quick test_cache_spec_seconds_compat;
          Alcotest.test_case "garbage quarantined" `Quick test_cache_quarantines_garbage;
          Alcotest.test_case "truncation detected" `Quick test_cache_detects_truncation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "sheds on depth and bytes" `Quick
            test_admission_sheds_on_depth_and_bytes;
          Alcotest.test_case "close drains, discard drops" `Quick test_admission_close_drains;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "eval, cache, typed errors" `Quick
            test_daemon_eval_cache_and_errors;
          Alcotest.test_case "poison containment + replay" `Quick
            test_daemon_poison_and_replay;
          Alcotest.test_case "warm restart from snapshot" `Quick test_daemon_warm_restart;
          Alcotest.test_case "external cancel drains" `Quick
            test_daemon_external_cancel_drains;
        ] );
    ]
