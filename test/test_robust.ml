(* Tests for the fault-tolerance layer: Guard / Inject, quarantine and
   NaN-safe ranking in the search, and checkpoint/resume equivalence. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Enumerate = Search.Enumerate
module Mcts = Search.Mcts
module Reward = Search.Reward
module Checkpoint = Search.Checkpoint
module Guard = Robust.Guard
module Inject = Robust.Inject
module Cancel = Robust.Cancel

(* --- Cancel --------------------------------------------------------------- *)

let test_cancel_explicit () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token untripped" false (Cancel.is_cancelled t);
  Cancel.check t;
  Cancel.cancel ~reason:"test" t;
  Alcotest.(check bool) "tripped" true (Cancel.is_cancelled t);
  (match Cancel.status t with
  | Some (Cancel.Cancelled_by "test") -> ()
  | _ -> Alcotest.fail "expected Cancelled_by \"test\"");
  Alcotest.check_raises "check raises"
    (Cancel.Cancelled (Cancel.Cancelled_by "test"))
    (fun () -> Cancel.check t)

let test_cancel_deadline_fake_clock () =
  (* The deadline is evaluated lazily against the injected clock, so the
     trip is fully deterministic: untripped at 4.9, tripped at 5.0. *)
  let t = ref 0.0 in
  let clock () = !t in
  let tok = Cancel.of_deadline ~clock 5.0 in
  Alcotest.(check (option (float 0.0))) "deadline recorded" (Some 5.0) (Cancel.deadline tok);
  t := 4.9;
  Alcotest.(check bool) "before deadline" false (Cancel.is_cancelled tok);
  Alcotest.(check (option (float 1e-9))) "remaining" (Some 0.1) (Cancel.remaining tok);
  t := 5.0;
  Alcotest.(check bool) "at deadline" true (Cancel.is_cancelled tok);
  (match Cancel.status tok with
  | Some (Cancel.Deadline_exceeded d) -> Alcotest.(check (float 0.0)) "which deadline" 5.0 d
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  (* The verdict is cached: winding the clock back cannot untrip it. *)
  t := 0.0;
  Alcotest.(check bool) "trip is permanent" true (Cancel.is_cancelled tok)

let test_cancel_child_inherits_parent () =
  let parent = Cancel.create () in
  let child = Cancel.create ~parent () in
  Alcotest.(check bool) "child untripped" false (Cancel.is_cancelled child);
  Cancel.cancel ~reason:"shutdown" parent;
  Alcotest.(check bool) "child observes parent" true (Cancel.is_cancelled child);
  (match Cancel.status child with
  | Some (Cancel.Cancelled_by "shutdown") -> ()
  | _ -> Alcotest.fail "child should report the parent's reason");
  (* Cancelling a child leaves the parent untouched. *)
  let p2 = Cancel.create () in
  let c2 = Cancel.create ~parent:p2 () in
  Cancel.cancel c2;
  Alcotest.(check bool) "parent unaffected" false (Cancel.is_cancelled p2);
  (* A deadline child of a healthy parent trips on its own clock. *)
  let t = ref 0.0 in
  let c3 = Cancel.of_deadline ~parent:p2 ~clock:(fun () -> !t) 1.0 in
  t := 2.0;
  Alcotest.(check bool) "deadline child trips" true (Cancel.is_cancelled c3);
  Alcotest.(check bool) "parent still unaffected" false (Cancel.is_cancelled p2)

let test_cancel_first_reason_wins () =
  let t = ref 10.0 in
  let tok = Cancel.of_deadline ~clock:(fun () -> !t) 5.0 in
  (* The deadline has already passed when the explicit cancel arrives;
     whichever is observed first is the one reason forever after. *)
  Alcotest.(check bool) "deadline observed" true (Cancel.is_cancelled tok);
  Cancel.cancel ~reason:"late caller" tok;
  (match Cancel.status tok with
  | Some (Cancel.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "first (deadline) reason must win");
  let tok2 = Cancel.create () in
  Cancel.cancel ~reason:"first" tok2;
  Cancel.cancel ~reason:"second" tok2;
  match Cancel.status tok2 with
  | Some (Cancel.Cancelled_by "first") -> ()
  | _ -> Alcotest.fail "first explicit reason must win"

(* The serving daemon mints a child token per accepted request
   (request deadline under the server's work root); these three pin the
   edge cases that path depends on. *)

let test_cancel_already_expired_deadline () =
  (* A request whose deadline has already passed by dispatch time
     (queueing, clock skew): the token is born tripped and [check]
     raises before any work runs. *)
  let t = ref 7.0 in
  let clock () = !t in
  let tok = Cancel.of_deadline ~clock 5.0 in
  Alcotest.(check bool) "born tripped" true (Cancel.is_cancelled tok);
  (match Cancel.status tok with
  | Some (Cancel.Deadline_exceeded d) -> Alcotest.(check (float 0.0)) "which deadline" 5.0 d
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  Alcotest.check_raises "check raises immediately"
    (Cancel.Cancelled (Cancel.Deadline_exceeded 5.0))
    (fun () -> Cancel.check tok)

let test_cancel_parent_between_accept_and_dispatch () =
  (* A request is admitted (child minted from the work root), then the
     root is cancelled before a worker picks the job up: the child must
     observe the parent's reason even though its own deadline is far
     away. *)
  let t = ref 0.0 in
  let clock () = !t in
  let parent = Cancel.create () in
  let child = Cancel.of_deadline ~parent ~clock 100.0 in
  Alcotest.(check bool) "admitted untripped" false (Cancel.is_cancelled child);
  Cancel.cancel ~reason:"shutdown" parent;
  Alcotest.(check bool) "dispatch observes the shutdown" true (Cancel.is_cancelled child);
  (match Cancel.status child with
  | Some (Cancel.Cancelled_by "shutdown") -> ()
  | _ -> Alcotest.fail "child must report the parent's reason");
  Alcotest.check_raises "check raises the parent's reason"
    (Cancel.Cancelled (Cancel.Cancelled_by "shutdown"))
    (fun () -> Cancel.check child)

let test_cancel_child_deadline_after_parents () =
  (* A request asks for a deadline *later* than the server's own: the
     parent's earlier deadline wins, and the child reports the parent's
     deadline, not its own. *)
  let t = ref 0.0 in
  let clock () = !t in
  let parent = Cancel.of_deadline ~clock 5.0 in
  let child = Cancel.of_deadline ~parent ~clock 10.0 in
  t := 4.9;
  Alcotest.(check bool) "both live before the parent trips" false (Cancel.is_cancelled child);
  t := 6.0;
  Alcotest.(check bool) "parent deadline trips the child" true (Cancel.is_cancelled child);
  (match Cancel.status child with
  | Some (Cancel.Deadline_exceeded d) ->
      Alcotest.(check (float 0.0)) "parent's deadline" 5.0 d
  | _ -> Alcotest.fail "expected the parent's Deadline_exceeded");
  (* Past the child's own deadline too, the first-observed reason is
     stable. *)
  t := 20.0;
  match Cancel.status child with
  | Some (Cancel.Deadline_exceeded d) -> Alcotest.(check (float 0.0)) "reason stable" 5.0 d
  | _ -> Alcotest.fail "expected the cached parent reason"

(* --- Guard ---------------------------------------------------------------- *)

let test_guard_success_passthrough () =
  let out = Guard.run ~key:"k" (fun _ -> 0.75) in
  Alcotest.(check bool) "ok" true (out.Guard.result = Ok 0.75);
  Alcotest.(check int) "one attempt" 1 out.Guard.attempts;
  Alcotest.(check int) "no failures" 0 (List.length out.Guard.failures);
  Alcotest.(check (float 0.0)) "no sleeping" 0.0 out.Guard.slept

let test_guard_retry_backoff_schedule () =
  let policy = Guard.policy ~retries:3 ~backoff:0.5 ~backoff_factor:2.0 ~max_backoff:1.0 () in
  Alcotest.(check (list (float 1e-12))) "schedule" [ 0.5; 1.0; 1.0 ] (Guard.delays policy);
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let calls = ref 0 in
  let out =
    Guard.run ~policy ~sleep ~key:"k" (fun _ ->
        incr calls;
        if !calls <= 2 then failwith "flaky" else 0.25)
  in
  Alcotest.(check bool) "recovers" true (out.Guard.result = Ok 0.25);
  Alcotest.(check int) "attempts" 3 out.Guard.attempts;
  (* The sleeps actually performed are exactly the first two entries of
     the deterministic schedule. *)
  Alcotest.(check (list (float 1e-12))) "slept delays" [ 0.5; 1.0 ] (List.rev !slept);
  Alcotest.(check (float 1e-12)) "slept total" 1.5 out.Guard.slept;
  Alcotest.(check int) "failures recorded" 2 (List.length out.Guard.failures);
  List.iter
    (fun k ->
      Alcotest.(check string) "classified eval_error" "eval_error" (Guard.kind_label k))
    out.Guard.failures

(* --- Seeded jitter ---------------------------------------------------------- *)

let jittered ?(seed = 7) () =
  Guard.policy ~retries:4 ~backoff:0.5 ~backoff_factor:2.0 ~max_backoff:4.0 ~jitter:0.5
    ~jitter_seed:seed ()

let test_jitter_reproducible () =
  (* The jitter stream is a pure function of (seed, key, retry): the
     same inputs give a bit-for-bit identical schedule, and changing
     either the seed or the key changes it. *)
  let p = jittered () in
  let a = Guard.delays ~key:"op-a" p in
  Alcotest.(check (list (float 0.0))) "bit-for-bit reproducible" a (Guard.delays ~key:"op-a" p);
  Alcotest.(check bool) "seed changes the schedule" true
    (Guard.delays ~key:"op-a" (jittered ~seed:8 ()) <> a);
  Alcotest.(check bool) "key decorrelates callers" true (Guard.delays ~key:"op-b" p <> a)

let test_jitter_bounds () =
  (* Every jittered delay stays within +-(jitter/2) of the exponential
     base and never exceeds max_backoff. *)
  let p =
    Guard.policy ~retries:6 ~backoff:0.3 ~backoff_factor:2.0 ~max_backoff:2.0 ~jitter:1.0
      ~jitter_seed:42 ()
  in
  List.iteri
    (fun i d ->
      let base = Float.min 2.0 (0.3 *. (2.0 ** float_of_int i)) in
      Alcotest.(check bool)
        (Printf.sprintf "retry %d delay %g within [%g, %g]" (i + 1) d (base *. 0.5)
           (Float.min 2.0 (base *. 1.5)))
        true
        (d >= (base *. 0.5) -. 1e-12 && d <= Float.min 2.0 (base *. 1.5) +. 1e-12))
    (Guard.delays ~key:"k" p)

let test_jitter_zero_is_legacy_schedule () =
  (* jitter = 0 (the default) must reproduce the historical
     deterministic schedule exactly, for any key. *)
  let p = Guard.policy ~retries:3 ~backoff:0.5 ~backoff_factor:2.0 ~max_backoff:1.0 () in
  List.iter
    (fun key ->
      Alcotest.(check (list (float 0.0))) ("key " ^ key) [ 0.5; 1.0; 1.0 ]
        (Guard.delays ~key p))
    [ ""; "a"; "some/operator@sig" ]

let test_jitter_validation () =
  let rejects j =
    Alcotest.check_raises
      (Printf.sprintf "jitter %g rejected" j)
      (Invalid_argument "Guard.policy: jitter must be in [0, 1]")
      (fun () -> ignore (Guard.policy ~jitter:j ()))
  in
  rejects 1.5;
  rejects (-0.1);
  rejects Float.nan

let test_jitter_run_sleeps_keyed_schedule () =
  (* Guard.run's actual sleeps are exactly the keyed schedule that
     [delays] predicts — the jitter is observable, not advisory. *)
  let p = jittered () in
  let slept = ref [] in
  let out =
    Guard.run ~policy:p
      ~sleep:(fun d -> slept := d :: !slept)
      ~key:"shared/resource"
      (fun _ -> raise Not_found)
  in
  (match out.Guard.result with
  | Error (Guard.Eval_error _) -> ()
  | _ -> Alcotest.fail "expected exhaustion");
  Alcotest.(check (list (float 0.0))) "sleeps follow the keyed schedule"
    (Guard.delays ~key:"shared/resource" p)
    (List.rev !slept)

let test_guard_exhausts_retries () =
  let policy = Guard.policy ~retries:2 () in
  let out = Guard.run ~policy ~key:"k" (fun _ -> raise Not_found) in
  (match out.Guard.result with
  | Error (Guard.Eval_error _) -> ()
  | _ -> Alcotest.fail "expected Eval_error");
  Alcotest.(check int) "attempts = 1 + retries" 3 out.Guard.attempts;
  Alcotest.(check int) "a failure per attempt" 3 (List.length out.Guard.failures)

let test_guard_non_finite () =
  List.iter
    (fun bad ->
      let out = Guard.run ~policy:(Guard.policy ~retries:1 ()) ~key:"k" (fun _ -> bad) in
      Alcotest.(check bool) "non_finite" true (out.Guard.result = Error Guard.Non_finite))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_guard_timeout () =
  (* A fake clock that jumps 10 s per reading: every attempt blows a 5 s
     budget even though the thunk returns instantly. *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 10.0;
    !t
  in
  let policy = Guard.policy ~retries:1 ~timeout:5.0 () in
  let out = Guard.run ~policy ~now ~key:"k" (fun _ -> 1.0) in
  Alcotest.(check bool) "timeout" true (out.Guard.result = Error Guard.Timeout);
  Alcotest.(check int) "retried once" 2 out.Guard.attempts;
  (* With a generous budget the same thunk passes. *)
  let out = Guard.run ~policy:(Guard.policy ~timeout:1e6 ()) ~now ~key:"k" (fun _ -> 1.0) in
  Alcotest.(check bool) "within budget" true (out.Guard.result = Ok 1.0)

let test_guard_preemptive_deadline () =
  (* The thunk polls its token inside a "long" loop; the fake clock
     advances one second per iteration, so a 3 s budget preempts it at
     the fourth poll — the loop never runs to completion. *)
  let t = ref 0.0 in
  let now () = !t in
  let iterations = ref 0 in
  let policy = Guard.policy ~retries:0 ~timeout:3.0 () in
  let out =
    Guard.run ~policy ~now ~key:"k" (fun token ->
        for _ = 1 to 1000 do
          t := !t +. 1.0;
          incr iterations;
          Cancel.check token
        done;
        1.0)
  in
  Alcotest.(check bool) "classified Timeout" true (out.Guard.result = Error Guard.Timeout);
  Alcotest.(check bool)
    (Printf.sprintf "preempted early (%d iterations)" !iterations)
    true (!iterations < 10)

let test_guard_exception_after_budget_is_timeout () =
  (* Satellite bugfix: an exception raised after the budget expired is a
     symptom of the overrun, so it must classify as Timeout, not
     Eval_error.  The fake clock blows the budget before the raise. *)
  let t = ref 0.0 in
  let now () = !t in
  let policy = Guard.policy ~retries:0 ~timeout:5.0 () in
  let out =
    Guard.run ~policy ~now ~key:"k" (fun _ ->
        t := !t +. 100.0;
        raise Not_found)
  in
  Alcotest.(check bool) "Timeout, not Eval_error" true (out.Guard.result = Error Guard.Timeout);
  (* Within budget the same raise still classifies as Eval_error. *)
  let out =
    Guard.run ~policy ~now:(fun () -> 0.0) ~key:"k" (fun _ -> raise Not_found)
  in
  match out.Guard.result with
  | Error (Guard.Eval_error _) -> ()
  | _ -> Alcotest.fail "expected Eval_error within budget"

let test_guard_external_cancel_reraises () =
  (* A shutdown (external token) observed inside the thunk is not a
     verdict on the candidate: Cancelled escapes the guard so the
     search loop can stop, instead of being classified as Timeout. *)
  let external_tok = Cancel.create () in
  let raised = ref false in
  (try
     ignore
       (Guard.run
          ~policy:(Guard.policy ~retries:2 ~timeout:1e6 ())
          ~cancel:external_tok ~key:"k"
          (fun token ->
            Cancel.cancel ~reason:"shutdown" external_tok;
            Cancel.check token;
            1.0))
   with Cancel.Cancelled _ -> raised := true);
  Alcotest.(check bool) "Cancelled escapes" true !raised;
  (* And a pre-tripped external token stops the attempt loop before the
     thunk ever runs. *)
  let calls = ref 0 in
  let raised = ref false in
  (try
     ignore
       (Guard.run ~cancel:external_tok ~key:"k" (fun _ ->
            incr calls;
            1.0))
   with Cancel.Cancelled _ -> raised := true);
  Alcotest.(check bool) "raised before any attempt" true !raised;
  Alcotest.(check int) "thunk never ran" 0 !calls

let test_guard_injected () =
  let inject = Inject.create ~seed:3 ~rate:1.0 ~max_failures:1 () in
  let out = Guard.run ~policy:(Guard.policy ~retries:2 ()) ~inject ~key:"sig" (fun _ -> 0.5) in
  Alcotest.(check bool) "recovers after injected fault" true (out.Guard.result = Ok 0.5);
  Alcotest.(check bool) "injected recorded" true (List.mem Guard.Injected out.Guard.failures);
  Alcotest.(check int) "counted" 1 (Inject.injected_count inject)

(* --- Inject --------------------------------------------------------------- *)

let test_inject_deterministic () =
  let keys = List.init 64 (fun i -> Printf.sprintf "key-%d" i) in
  let a = Inject.create ~seed:11 ~rate:0.4 ~max_failures:3 () in
  let b = Inject.create ~seed:11 ~rate:0.4 ~max_failures:3 () in
  List.iter
    (fun key ->
      Alcotest.(check int)
        ("same plan for " ^ key)
        (Inject.failures_planned a ~key)
        (Inject.failures_planned b ~key))
    keys;
  (* The plan is a prefix: once an attempt succeeds, all later ones do. *)
  List.iter
    (fun key ->
      let n = Inject.failures_planned a ~key in
      Alcotest.(check bool) "bounded" true (n >= 0 && n <= 3);
      for attempt = 0 to 5 do
        Alcotest.(check bool) "prefix" (attempt < n)
          (Inject.should_fail a ~key ~attempt)
      done)
    keys;
  let some_fail = List.exists (fun key -> Inject.failures_planned a ~key > 0) keys in
  let some_pass = List.exists (fun key -> Inject.failures_planned a ~key = 0) keys in
  Alcotest.(check bool) "rate 0.4 fails some" true some_fail;
  Alcotest.(check bool) "rate 0.4 passes some" true some_pass

let test_inject_rate_extremes () =
  let zero = Inject.create ~rate:0.0 () in
  let one = Inject.create ~rate:1.0 ~max_failures:2 () in
  let keys = List.init 32 (fun i -> string_of_int i) in
  List.iter
    (fun key ->
      Alcotest.(check int) "rate 0 never fails" 0 (Inject.failures_planned zero ~key);
      let n = Inject.failures_planned one ~key in
      Alcotest.(check bool) "rate 1 always fails" true (n >= 1 && n <= 2))
    keys;
  Alcotest.(check bool) "none inactive" false (Inject.active Inject.none);
  Alcotest.(check bool) "zero-rate inactive" false (Inject.active zero);
  Alcotest.(check bool) "active" true (Inject.active one);
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Inject.create: rate must be in [0, 1]") (fun () ->
      ignore (Inject.create ~rate:1.5 ()))

(* --- Search under faults --------------------------------------------------- *)

let m = Var.primary "M"
let nd_ = Var.primary "Nd"
let kd = Var.primary "Kd"
let sz = Size.of_var

let matmul_valuations =
  [
    Valuation.of_list [ (m, 8); (nd_, 8); (kd, 8) ];
    Valuation.of_list [ (m, 16); (nd_, 4); (kd, 8) ];
  ]

let matmul_cfg ?(max_prims = 4) () =
  let base =
    Enumerate.default_config ~output_shape:[ sz m; sz nd_ ] ~desired_shape:[ sz m; sz kd ]
      ~valuations:matmul_valuations ()
  in
  { base with Enumerate.max_prims; reduce_candidates = [ sz kd ] }

let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations)
let config = Mcts.default_config ~iterations:120 ()
let top r = List.map (fun (x : Mcts.result) -> (Graph.operator_signature x.operator, x.reward)) r

let test_injected_search_matches_fault_free () =
  let clean = Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) () in
  Alcotest.(check bool) "baseline finds operators" true (clean <> []);
  (* max_failures <= retries, so every candidate recovers and the run
     must reproduce the fault-free results exactly. *)
  let inject = Inject.create ~seed:5 ~rate:0.6 ~max_failures:2 () in
  let faulted =
    Mcts.search_run ~config ~guard:(Guard.policy ~retries:2 ()) ~inject (matmul_cfg ())
      ~reward ~rng:(Nd.Rng.create ~seed:7) ()
  in
  Alcotest.(check bool) "same top-K" true (top clean = top faulted.Mcts.results);
  Alcotest.(check bool) "nothing quarantined" true
    (faulted.Mcts.stats.Mcts.quarantined = 0);
  (* Every injected fault shows up in the failure accounting. *)
  let recorded =
    Option.value ~default:0 (List.assoc_opt "injected" faulted.Mcts.stats.Mcts.failed_attempts)
  in
  Alcotest.(check bool) "some faults were delivered" true (Inject.injected_count inject > 0);
  Alcotest.(check int) "all faults accounted" (Inject.injected_count inject) recorded;
  Alcotest.(check int) "retries = extra attempts"
    (faulted.Mcts.stats.Mcts.attempts - faulted.Mcts.stats.Mcts.evaluations)
    faulted.Mcts.stats.Mcts.retries

let test_persistent_faults_quarantine () =
  (* retries = 0 and every key fails at least once: every candidate is
     quarantined at the penalty reward and no evaluation succeeds. *)
  let inject = Inject.create ~seed:1 ~rate:1.0 ~max_failures:1 () in
  let r =
    Mcts.search_run ~config ~guard:(Guard.policy ~retries:0 ()) ~inject
      ~quarantine_reward:(-1.0) (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ()
  in
  Alcotest.(check bool) "found candidates" true (r.Mcts.results <> []);
  List.iter
    (fun (x : Mcts.result) ->
      Alcotest.(check bool) "quarantined" true x.Mcts.quarantined;
      Alcotest.(check (float 0.0)) "penalty reward" (-1.0) x.Mcts.reward)
    r.Mcts.results;
  Alcotest.(check int) "no successful evaluations" 0 r.Mcts.stats.Mcts.evaluations;
  Alcotest.(check int) "all quarantined" (List.length r.Mcts.results)
    r.Mcts.stats.Mcts.quarantined

let test_quarantined_rank_last_and_nan_safe () =
  (* Partial quarantine with a NaN penalty: the sort must put every
     quarantined candidate after every healthy one and stay total (NaN
     must not poison the comparator). *)
  let inject = Inject.create ~seed:2 ~rate:0.5 ~max_failures:3 () in
  let r =
    Mcts.search_run ~config ~guard:(Guard.policy ~retries:0 ()) ~inject
      ~quarantine_reward:Float.nan (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ()
  in
  let results = r.Mcts.results in
  Alcotest.(check bool) "mixed verdicts" true
    (List.exists (fun (x : Mcts.result) -> x.Mcts.quarantined) results
    && List.exists (fun (x : Mcts.result) -> not x.Mcts.quarantined) results);
  (* healthy prefix, quarantined suffix *)
  let rec check_order seen_quarantined = function
    | [] -> ()
    | (x : Mcts.result) :: rest ->
        if seen_quarantined then
          Alcotest.(check bool) "no healthy after quarantined" true x.Mcts.quarantined;
        check_order (seen_quarantined || x.Mcts.quarantined) rest
  in
  check_order false results;
  (* the healthy prefix is still sorted by decreasing reward *)
  let healthy = List.filter (fun (x : Mcts.result) -> not x.Mcts.quarantined) results in
  let rec decreasing = function
    | (a : Mcts.result) :: (b : Mcts.result) :: rest ->
        Alcotest.(check bool) "rewards decreasing" true (a.Mcts.reward >= b.Mcts.reward);
        decreasing (b :: rest)
    | _ -> ()
  in
  decreasing healthy

let test_parallel_search_under_faults () =
  let trees = 3 in
  let rng () = Nd.Rng.create ~seed:21 in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let clean =
        Mcts.search_parallel ~config ~pool ~trees (matmul_cfg ()) ~reward ~rng:(rng ()) ()
      in
      Alcotest.(check bool) "parallel baseline finds operators" true (clean <> []);
      let inject = Inject.create ~seed:9 ~rate:0.5 ~max_failures:2 () in
      let faulted =
        Mcts.search_parallel_run ~config ~pool ~guard:(Guard.policy ~retries:2 ()) ~inject
          ~trees (matmul_cfg ()) ~reward ~rng:(rng ()) ()
      in
      Alcotest.(check bool) "same top-K under faults" true
        (top clean = top faulted.Mcts.results);
      let recorded =
        Option.value ~default:0
          (List.assoc_opt "injected" faulted.Mcts.stats.Mcts.failed_attempts)
      in
      Alcotest.(check int) "all faults accounted" (Inject.injected_count inject) recorded)

(* --- Checkpointing --------------------------------------------------------- *)

let with_temp f =
  let path = Filename.temp_file "syno_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp (fun path ->
      let ops =
        List.map
          (fun (x : Mcts.result) -> x.Mcts.operator)
          (Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ())
      in
      Alcotest.(check bool) "have operators" true (List.length ops >= 2);
      let entries =
        List.mapi
          (fun i op ->
            {
              Checkpoint.signature = Graph.operator_signature op;
              operator = op;
              (* awkward rewards: inexact decimals, zero, a quarantined NaN *)
              reward = (if i = 0 then Float.nan else 0.1 +. (float_of_int i /. 3.0));
              visits = (i * 7) + 1;
              quarantined = i = 0;
              reason = (if i = 0 then Some "eval_error" else None);
            })
          ops
      in
      Checkpoint.save ~path entries;
      match Checkpoint.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
          Alcotest.(check int) "entry count" (List.length entries) (List.length loaded);
          let by_sig l =
            List.sort (fun a b -> compare a.Checkpoint.signature b.Checkpoint.signature) l
          in
          List.iter2
            (fun (a : Checkpoint.entry) (b : Checkpoint.entry) ->
              Alcotest.(check string) "signature" a.Checkpoint.signature b.Checkpoint.signature;
              Alcotest.(check string) "operator rebuilt" a.Checkpoint.signature
                (Graph.operator_signature b.Checkpoint.operator);
              (* bit-exact round-trip for finite rewards; NaN keeps its
                 NaN-ness (the payload is not preserved by %h) *)
              if Float.is_nan a.Checkpoint.reward then
                Alcotest.(check bool) "nan stays nan" true (Float.is_nan b.Checkpoint.reward)
              else
                Alcotest.(check int64) "reward bits"
                  (Int64.bits_of_float a.Checkpoint.reward)
                  (Int64.bits_of_float b.Checkpoint.reward);
              Alcotest.(check int) "visits" a.Checkpoint.visits b.Checkpoint.visits;
              Alcotest.(check bool) "quarantined" a.Checkpoint.quarantined
                b.Checkpoint.quarantined;
              Alcotest.(check (option string)) "reason" a.Checkpoint.reason b.Checkpoint.reason)
            (by_sig entries) (by_sig loaded))

(* Every catalog operator — including the strided one, which the
   strict parser refuses — survives a checkpoint round trip carrying
   quarantine/rejection metadata. *)
let test_checkpoint_zoo_metadata_roundtrip () =
  with_temp (fun path ->
      let reasons =
        [ Some "static_violation"; Some "over_budget"; Some "backend_mismatch"; None ]
      in
      (* Metadata is keyed off the signature: distinct catalog entries
         can canonicalize to the same operator, and the loader keys
         entries by signature too. *)
      let seen = Hashtbl.create 16 in
      let entries =
        List.filter_map
          (fun (e : Syno.Zoo.entry) ->
            let signature = Graph.operator_signature e.Syno.Zoo.operator in
            if Hashtbl.mem seen signature then None
            else begin
              Hashtbl.add seen signature ();
              let h = Hashtbl.hash signature in
              let reason = List.nth reasons (h mod List.length reasons) in
              Some
                {
                  Checkpoint.signature;
                  operator = e.Syno.Zoo.operator;
                  reward = float_of_int (h mod 13) /. 7.0;
                  visits = (h mod 5) + 1;
                  quarantined = reason <> None;
                  reason;
                }
            end)
          Syno.Zoo.all
      in
      Checkpoint.save ~path entries;
      match Checkpoint.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
          let by_sig l =
            List.sort (fun a b -> compare a.Checkpoint.signature b.Checkpoint.signature) l
          in
          List.iter2
            (fun (a : Checkpoint.entry) (b : Checkpoint.entry) ->
              Alcotest.(check string) "signature" a.Checkpoint.signature b.Checkpoint.signature;
              Alcotest.(check string) "operator rebuilt" a.Checkpoint.signature
                (Graph.operator_signature b.Checkpoint.operator);
              Alcotest.(check (option string)) "reason" a.Checkpoint.reason b.Checkpoint.reason;
              Alcotest.(check bool) "quarantined" a.Checkpoint.quarantined
                b.Checkpoint.quarantined;
              Alcotest.(check int) "visits" a.Checkpoint.visits b.Checkpoint.visits)
            (by_sig entries) (by_sig loaded))

(* Snapshots written before the [reason] field existed still load. *)
let test_checkpoint_legacy_header () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc
        "syno-checkpoint v1\nentries: 1\nentry: reward 0x1p-1 visits 3 quarantined false\n\
         syno-operator v1\noutput: M Nd\ninput: M Kd\ntrace: Reduce(Kd); Share(2,new); \
         Match(1)\n";
      close_out oc;
      match Checkpoint.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok [ e ] ->
          Alcotest.(check (option string)) "no reason" None e.Checkpoint.reason;
          Alcotest.(check int) "visits" 3 e.Checkpoint.visits
      | Ok l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let test_checkpoint_load_errors () =
  (match Checkpoint.load ~path:"/nonexistent/syno.ckpt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file");
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      match Checkpoint.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected error for garbage file")

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_checkpoint_typed_errors () =
  (match Checkpoint.load_result ~path:"/nonexistent/syno.ckpt" with
  | Error (Checkpoint.Io _) -> ()
  | _ -> Alcotest.fail "missing file must be Io");
  with_temp (fun path ->
      write_file path "";
      (match Checkpoint.load_result ~path with
      | Error (Checkpoint.Corrupt _) -> ()
      | _ -> Alcotest.fail "empty file must be Corrupt");
      write_file path "not a checkpoint\nentry: reward 0x1p0 visits 1 quarantined false\n";
      (match Checkpoint.load_result ~path with
      | Error (Checkpoint.Bad_header line) ->
          Alcotest.(check string) "offending line" "not a checkpoint" line
      | _ -> Alcotest.fail "wrong first line must be Bad_header");
      (* Every typed error has a one-line human rendering. *)
      List.iter
        (fun e -> Alcotest.(check bool) "message" true (String.length (Checkpoint.string_of_error e) > 0))
        [
          Checkpoint.Io "x";
          Checkpoint.Bad_header "y";
          Checkpoint.Truncated { expected = 3; found = 2 };
          Checkpoint.Corrupt "z";
        ])

let test_checkpoint_truncated () =
  with_temp (fun path ->
      let ops =
        List.map
          (fun (x : Mcts.result) -> x.Mcts.operator)
          (Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ())
      in
      Alcotest.(check bool) "have operators" true (List.length ops >= 2);
      let entries =
        List.map
          (fun op ->
            {
              Checkpoint.signature = Graph.operator_signature op;
              operator = op;
              reward = 0.5;
              visits = 1;
              quarantined = false;
              reason = None;
            })
          ops
      in
      Checkpoint.save ~path entries;
      (* Cut the file at the last entry header, simulating damage after
         the atomic write: the declared count no longer matches. *)
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let last_entry =
        let rec find from acc =
          match String.index_from_opt text from 'e' with
          | None -> acc
          | Some i ->
              let acc =
                if i + 6 <= String.length text && String.sub text i 6 = "entry:" then Some i
                else acc
              in
              find (i + 1) acc
        in
        match find 0 None with Some i -> i | None -> Alcotest.fail "no entry header"
      in
      write_file path (String.sub text 0 last_entry);
      (match Checkpoint.load_result ~path with
      | Error (Checkpoint.Truncated { expected; found }) ->
          Alcotest.(check int) "declared" (List.length entries) expected;
          Alcotest.(check int) "found" (List.length entries - 1) found
      | Error e -> Alcotest.failf "wrong error: %s" (Checkpoint.string_of_error e)
      | Ok _ -> Alcotest.fail "truncated checkpoint must be refused");
      (* The string-typed compatibility loader refuses it too. *)
      match Checkpoint.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "load must agree with load_result")

let test_sink_cadence () =
  with_temp (fun path ->
      let ops =
        List.map
          (fun (x : Mcts.result) -> x.Mcts.operator)
          (Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ())
      in
      let entry op =
        {
          Checkpoint.signature = Graph.operator_signature op;
          operator = op;
          reward = 0.5;
          visits = 1;
          quarantined = false;
          reason = None;
        }
      in
      let sink = Checkpoint.sink ~path ~every:2 () in
      List.iter (fun op -> Checkpoint.note sink (entry op)) ops;
      Checkpoint.flush sink;
      Alcotest.(check bool) "wrote at cadence" true (Checkpoint.writes sink >= 1);
      match Checkpoint.load ~path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
          Alcotest.(check int) "all entries on disk" (List.length ops) (List.length loaded))

let test_cancelled_search_partial_and_resume () =
  with_temp (fun path ->
      (* Uninterrupted baseline. *)
      let clean =
        Mcts.search ~config (matmul_cfg ()) ~reward ~rng:(Nd.Rng.create ~seed:7) ()
      in
      Alcotest.(check bool) "baseline finds operators" true (clean <> []);
      (* "SIGINT": trip the root token after K reward evaluations.  The
         search must RETURN partial results (no exception) and the sink
         must still flush. *)
      let root = Cancel.create () in
      let evals = ref 0 in
      let tripping ~cancel op =
        incr evals;
        if !evals >= 3 then Cancel.cancel ~reason:"test SIGINT" root;
        reward ~cancel op
      in
      let sink = Checkpoint.sink ~path ~every:2 () in
      let partial =
        Mcts.search ~config ~checkpoint:sink ~cancel:root (matmul_cfg ()) ~reward:tripping
          ~rng:(Nd.Rng.create ~seed:7) ()
      in
      Alcotest.(check bool) "partial results returned" true (partial <> []);
      Alcotest.(check bool)
        (Printf.sprintf "stopped early (%d < %d distinct)" (List.length partial)
           (List.length clean))
        true
        (List.length partial < List.length clean);
      (* The flushed checkpoint resumes to the uninterrupted results. *)
      let entries =
        match Checkpoint.load ~path with Ok e -> e | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check bool) "flushed checkpoint has entries" true (entries <> []);
      let resumed =
        Mcts.search ~config ~resume:entries (matmul_cfg ()) ~reward
          ~rng:(Nd.Rng.create ~seed:7) ()
      in
      Alcotest.(check bool) "resumed replays to identical top-K" true
        (top clean = top resumed))

let test_kill_resume_equivalence () =
  with_temp (fun path ->
      (* Uninterrupted baseline, counting reward calls. *)
      let calls = ref 0 in
      let counting ~cancel op =
        incr calls;
        reward ~cancel op
      in
      let clean =
        Mcts.search ~config (matmul_cfg ()) ~reward:counting ~rng:(Nd.Rng.create ~seed:7) ()
      in
      let clean_calls = !calls in
      Alcotest.(check bool) "baseline finds operators" true (clean <> []);
      (* "Kill": run only a third of the iterations, checkpointing. *)
      let truncated = Mcts.default_config ~iterations:(config.Mcts.iterations / 3) () in
      let sink = Checkpoint.sink ~path ~every:2 () in
      let (_ : Mcts.result list) =
        Mcts.search ~config:truncated ~checkpoint:sink (matmul_cfg ()) ~reward
          ~rng:(Nd.Rng.create ~seed:7) ()
      in
      let entries =
        match Checkpoint.load ~path with Ok e -> e | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check bool) "snapshot has entries" true (entries <> []);
      (* Resume: same seed, full iteration budget, preloaded memo. *)
      calls := 0;
      let resumed =
        Mcts.search ~config ~resume:entries (matmul_cfg ()) ~reward:counting
          ~rng:(Nd.Rng.create ~seed:7) ()
      in
      Alcotest.(check bool) "resumed top-K identical" true (top clean = top resumed);
      Alcotest.(check bool)
        (Printf.sprintf "fewer fresh evaluations (%d < %d)" !calls clean_calls)
        true (!calls < clean_calls))

let () =
  Alcotest.run "robust"
    [
      ( "cancel",
        [
          Alcotest.test_case "explicit cancel" `Quick test_cancel_explicit;
          Alcotest.test_case "deadline (fake clock)" `Quick test_cancel_deadline_fake_clock;
          Alcotest.test_case "child inherits parent" `Quick test_cancel_child_inherits_parent;
          Alcotest.test_case "first reason wins" `Quick test_cancel_first_reason_wins;
          Alcotest.test_case "already-expired deadline" `Quick
            test_cancel_already_expired_deadline;
          Alcotest.test_case "parent cancelled between accept and dispatch" `Quick
            test_cancel_parent_between_accept_and_dispatch;
          Alcotest.test_case "child deadline later than parent's" `Quick
            test_cancel_child_deadline_after_parents;
        ] );
      ( "jitter",
        [
          Alcotest.test_case "reproducible, seed- and key-sensitive" `Quick
            test_jitter_reproducible;
          Alcotest.test_case "bounded by half-width and max_backoff" `Quick
            test_jitter_bounds;
          Alcotest.test_case "jitter=0 is the legacy schedule" `Quick
            test_jitter_zero_is_legacy_schedule;
          Alcotest.test_case "out-of-range jitter rejected" `Quick test_jitter_validation;
          Alcotest.test_case "run sleeps the keyed schedule" `Quick
            test_jitter_run_sleeps_keyed_schedule;
        ] );
      ( "guard",
        [
          Alcotest.test_case "success passthrough" `Quick test_guard_success_passthrough;
          Alcotest.test_case "retry + backoff schedule" `Quick
            test_guard_retry_backoff_schedule;
          Alcotest.test_case "exhausts retries" `Quick test_guard_exhausts_retries;
          Alcotest.test_case "non-finite rewards" `Quick test_guard_non_finite;
          Alcotest.test_case "timeout" `Quick test_guard_timeout;
          Alcotest.test_case "preemptive deadline" `Quick test_guard_preemptive_deadline;
          Alcotest.test_case "post-budget exception is timeout" `Quick
            test_guard_exception_after_budget_is_timeout;
          Alcotest.test_case "external cancel re-raises" `Quick
            test_guard_external_cancel_reraises;
          Alcotest.test_case "injected faults" `Quick test_guard_injected;
        ] );
      ( "inject",
        [
          Alcotest.test_case "deterministic plans" `Quick test_inject_deterministic;
          Alcotest.test_case "rate extremes" `Quick test_inject_rate_extremes;
        ] );
      ( "search",
        [
          Alcotest.test_case "injected = fault-free" `Quick
            test_injected_search_matches_fault_free;
          Alcotest.test_case "persistent faults quarantine" `Quick
            test_persistent_faults_quarantine;
          Alcotest.test_case "quarantined rank last, NaN-safe" `Quick
            test_quarantined_rank_last_and_nan_safe;
          Alcotest.test_case "parallel under faults" `Quick
            test_parallel_search_under_faults;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "zoo metadata roundtrip" `Quick
            test_checkpoint_zoo_metadata_roundtrip;
          Alcotest.test_case "legacy header (no reason)" `Quick test_checkpoint_legacy_header;
          Alcotest.test_case "load errors" `Quick test_checkpoint_load_errors;
          Alcotest.test_case "typed errors" `Quick test_checkpoint_typed_errors;
          Alcotest.test_case "truncation detected" `Quick test_checkpoint_truncated;
          Alcotest.test_case "sink cadence" `Quick test_sink_cadence;
          Alcotest.test_case "cancelled search: partial + resume" `Quick
            test_cancelled_search_partial_and_resume;
          Alcotest.test_case "kill/resume equivalence" `Quick test_kill_resume_equivalence;
        ] );
    ]
