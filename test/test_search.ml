(* Tests for guided enumeration, MCTS, and the reward proxy. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Enumerate = Search.Enumerate
module Mcts = Search.Mcts
module Reward = Search.Reward

let m = Var.primary "M"
let nd_ = Var.primary "Nd"
let kd = Var.primary "Kd"
let sz = Size.of_var

let matmul_valuations =
  [
    Valuation.of_list [ (m, 8); (nd_, 8); (kd, 8) ];
    Valuation.of_list [ (m, 16); (nd_, 4); (kd, 8) ];
  ]

let matmul_cfg ?(max_prims = 4) () =
  let base =
    Enumerate.default_config ~output_shape:[ sz m; sz nd_ ] ~desired_shape:[ sz m; sz kd ]
      ~valuations:matmul_valuations ()
  in
  { base with Enumerate.max_prims; reduce_candidates = [ sz kd ] }

let test_children_are_canonical () =
  let cfg = matmul_cfg () in
  let g = Graph.init [ sz m; sz nd_ ] in
  let kids = Enumerate.children cfg g in
  Alcotest.(check bool) "has children" true (kids <> []);
  (* no duplicate actions *)
  let prims = List.map fst kids in
  Alcotest.(check int) "no duplicates" (List.length prims)
    (List.length (List.sort_uniq Prim.compare prims))

let test_synthesize_finds_matmul () =
  let cfg = matmul_cfg () in
  let stats = Enumerate.make_stats () in
  let ops = Enumerate.synthesize ~max_results:200 ~max_visits:100_000 ~stats cfg in
  Alcotest.(check bool) "found operators" true (ops <> []);
  (* One of them must be exactly matmul: one weight [Kd, Nd] group. *)
  let is_matmul op =
    match op.Graph.op_weights with
    | [ [ a; b ] ] ->
        Size.equal a.Coord.Ast.dom (sz kd) && Size.equal b.Coord.Ast.dom (sz nd_)
    | _ -> false
  in
  Alcotest.(check bool) "matmul among results" true (List.exists is_matmul ops);
  Alcotest.(check bool) "distance pruning fired" true (stats.Enumerate.pruned_by_distance > 0)

let test_synthesized_ops_valid () =
  let cfg = matmul_cfg () in
  let ops = Enumerate.synthesize ~max_results:30 ~max_visits:30_000 cfg in
  List.iter
    (fun op ->
      (* every result must satisfy the completion contract *)
      Alcotest.(check int) "input dims" 2 (List.length op.Graph.op_input_exprs);
      List.iter2
        (fun s d -> Alcotest.(check bool) "shape" true (Size.equal s d))
        op.Graph.op_input_shape [ sz m; sz kd ])
    ops

let test_flops_budget_respected () =
  let cfg = matmul_cfg () in
  let budget = 2 * 8 * 8 * 8 in
  let cfg = { cfg with Enumerate.max_flops = Some budget } in
  let ops = Enumerate.synthesize ~max_results:30 ~max_visits:30_000 cfg in
  List.iter
    (fun op ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "within budget" true
            (Pgraph.Flops.naive_flops op v <= budget))
        matmul_valuations)
    ops

(* --- Random trials: the shape-distance ablation mechanism -------------- *)

let test_random_completion_guided () =
  let cfg = matmul_cfg ~max_prims:4 () in
  let rng = Nd.Rng.create ~seed:11 in
  let successes = ref 0 in
  for _ = 1 to 60 do
    match Enumerate.random_completion cfg rng ~use_distance:true with
    | Some _ -> incr successes
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "guided trials succeed often (%d/60)" !successes)
    true (!successes > 8)

let test_random_completion_unguided_worse () =
  let cfg = matmul_cfg ~max_prims:4 () in
  let rng_g = Nd.Rng.create ~seed:12 in
  let rng_u = Nd.Rng.create ~seed:12 in
  let count use_distance rng =
    let successes = ref 0 in
    for _ = 1 to 60 do
      if Enumerate.random_completion cfg rng ~use_distance <> None then incr successes
    done;
    !successes
  in
  let guided = count true rng_g in
  let unguided = count false rng_u in
  Alcotest.(check bool)
    (Printf.sprintf "guided (%d) > unguided (%d)" guided unguided)
    true (guided > unguided)

(* --- MCTS ---------------------------------------------------------------- *)

let test_mcts_finds_operators () =
  let cfg = matmul_cfg () in
  let rng = Nd.Rng.create ~seed:13 in
  let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations) in
  let results =
    Mcts.search ~config:(Mcts.default_config ~iterations:120 ()) cfg ~reward ~rng ()
  in
  Alcotest.(check bool) "found some" true (results <> []);
  (* sorted by decreasing reward *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Mcts.reward >= b.Mcts.reward && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted results);
  let best = List.hd results in
  Alcotest.(check bool) "best positive" true (best.Mcts.reward > 0.0)

let test_mcts_rollout_depth_honored () =
  (* Regression: rollout_depth used to be declared but never read, so
     any value produced the same search.  A zero horizon pins rollouts
     to their start state and must find strictly fewer operators than
     the default horizon under the same seed. *)
  let cfg = matmul_cfg () in
  let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations) in
  let run rollout_depth =
    let base = Mcts.default_config ~iterations:80 () in
    let results =
      Mcts.search
        ~config:{ base with Mcts.rollout_depth }
        cfg ~reward ~rng:(Nd.Rng.create ~seed:21) ()
    in
    List.map (fun r -> Graph.operator_signature r.Mcts.operator) results
  in
  let shallow = run 0 in
  let deep = run 12 in
  Alcotest.(check bool)
    (Printf.sprintf "depth 0 (%d ops) finds fewer than depth 12 (%d ops)"
       (List.length shallow) (List.length deep))
    true
    (List.length shallow < List.length deep)

let test_mcts_reward_memoized () =
  (* Each distinct operator signature is scored exactly once; duplicate
     encounters only bump the visit counter. *)
  let cfg = matmul_cfg () in
  let calls = ref 0 in
  let reward ~cancel:_ op =
    incr calls;
    Reward.score op (List.hd matmul_valuations)
  in
  let results =
    Mcts.search ~config:(Mcts.default_config ~iterations:150 ()) cfg ~reward
      ~rng:(Nd.Rng.create ~seed:13) ()
  in
  let revisits = List.fold_left (fun acc r -> acc + r.Mcts.visits) 0 results in
  Alcotest.(check int) "one reward call per distinct operator" (List.length results) !calls;
  Alcotest.(check bool)
    (Printf.sprintf "duplicates occurred (%d visits, %d distinct)" revisits !calls)
    true (revisits > !calls)

let test_mcts_parallel_matches_sequential_pool () =
  (* Root-parallel with fixed per-tree seeds: the merged result must not
     depend on the pool size. *)
  let cfg = matmul_cfg () in
  let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations) in
  let run pool_size =
    Par.Pool.with_pool ~domains:pool_size (fun pool ->
        Mcts.search_parallel
          ~config:(Mcts.default_config ~iterations:60 ())
          ~pool ~trees:3 cfg ~reward ~rng:(Nd.Rng.create ~seed:17) ())
  in
  let seq = run 1 and par = run 3 in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same operator"
        (Graph.operator_signature a.Mcts.operator)
        (Graph.operator_signature b.Mcts.operator);
      Alcotest.(check (float 0.0)) "same reward" a.Mcts.reward b.Mcts.reward;
      Alcotest.(check int) "same visits" a.Mcts.visits b.Mcts.visits)
    seq par

let test_mcts_parallel_merges_trees () =
  (* More trees never lose operators relative to any single tree. *)
  let cfg = matmul_cfg () in
  let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations) in
  let merged =
    Par.Pool.with_pool ~domains:2 (fun pool ->
        Mcts.search_parallel
          ~config:(Mcts.default_config ~iterations:60 ())
          ~pool ~trees:4 cfg ~reward ~rng:(Nd.Rng.create ~seed:29) ())
  in
  Alcotest.(check bool) "found operators" true (merged <> []);
  let sigs = List.map (fun r -> Graph.operator_signature r.Mcts.operator) merged in
  Alcotest.(check int) "deduplicated" (List.length sigs)
    (List.length (List.sort_uniq compare sigs))

(* --- Single-tree parallel MCTS -------------------------------------------- *)

let test_single_tree_matches_sequential () =
  (* With one worker the shared-tree selection policy and the caller's
     generator are exactly the sequential search's, so the result must
     be bit-for-bit identical: same operators, same rewards, same visit
     counts. *)
  let cfg = matmul_cfg () in
  let reward ~cancel:_ op = Reward.score op (List.hd matmul_valuations) in
  let fingerprint rs =
    List.map
      (fun r -> (Graph.operator_signature r.Mcts.operator, r.Mcts.reward, r.Mcts.visits))
      rs
  in
  List.iter
    (fun seed ->
      let config = Mcts.default_config ~iterations:120 () in
      let seq = Mcts.search ~config cfg ~reward ~rng:(Nd.Rng.create ~seed) () in
      let st =
        Par.Pool.with_pool ~domains:2 (fun pool ->
            Mcts.search_single_tree ~config ~pool ~workers:1 cfg ~reward
              ~rng:(Nd.Rng.create ~seed) ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: single tree (1 worker) = sequential" seed)
        true
        (fingerprint seq = fingerprint st))
    [ 13; 17; 29 ]

let test_single_tree_parallel_workers () =
  (* Several workers share one tree and one reward memo: the search
     still finds operators, deduplicates by signature, calls the reward
     thunk at most once per distinct signature across all workers, and
     every returned reward is the deterministic memoized score. *)
  let cfg = matmul_cfg () in
  let calls = Atomic.make 0 in
  let reward ~cancel:_ op =
    Atomic.incr calls;
    Reward.score op (List.hd matmul_valuations)
  in
  let results =
    Par.Pool.with_pool ~domains:3 (fun pool ->
        Mcts.search_single_tree
          ~config:(Mcts.default_config ~iterations:150 ())
          ~pool cfg ~reward ~rng:(Nd.Rng.create ~seed:13) ())
  in
  Alcotest.(check bool) "found operators" true (results <> []);
  let sigs = List.map (fun r -> Graph.operator_signature r.Mcts.operator) results in
  Alcotest.(check int) "deduplicated" (List.length sigs)
    (List.length (List.sort_uniq compare sigs));
  Alcotest.(check int) "at most one reward call per distinct signature"
    (List.length results) (Atomic.get calls);
  List.iter
    (fun r ->
      Alcotest.(check (float 0.0)) "memoized deterministic reward"
        (Reward.score r.Mcts.operator (List.hd matmul_valuations))
        r.Mcts.reward)
    results

let test_single_tree_cancellation_partial () =
  (* A token tripped mid-search makes the workers return the partial
     memo instead of raising; evaluation stops well short of what the
     uncancelled search performs. *)
  let cfg = matmul_cfg () in
  let config = Mcts.default_config ~iterations:2_000 () in
  let baseline = Atomic.make 0 in
  let (_ : Mcts.result list) =
    Par.Pool.with_pool ~domains:2 (fun pool ->
        Mcts.search_single_tree ~config ~pool cfg
          ~reward:(fun ~cancel:_ op ->
            Atomic.incr baseline;
            Reward.score op (List.hd matmul_valuations))
          ~rng:(Nd.Rng.create ~seed:7) ())
  in
  let tok = Robust.Cancel.create () in
  let evals = Atomic.make 0 in
  let run =
    Par.Pool.with_pool ~domains:2 (fun pool ->
        Mcts.search_single_tree_run ~config ~pool ~cancel:tok cfg
          ~reward:(fun ~cancel:_ op ->
            if Atomic.fetch_and_add evals 1 >= 2 then
              Robust.Cancel.cancel ~reason:"test" tok;
            Reward.score op (List.hd matmul_valuations))
          ~rng:(Nd.Rng.create ~seed:7) ())
  in
  Alcotest.(check bool) "returns partial results, does not raise" true
    (run.Mcts.results <> []);
  Alcotest.(check bool)
    (Printf.sprintf "stopped early (%d evals vs %d uncancelled)" (Atomic.get evals)
       (Atomic.get baseline))
    true
    (Atomic.get evals < Atomic.get baseline);
  (* a pre-tripped token returns immediately with nothing *)
  let dead = Robust.Cancel.create () in
  Robust.Cancel.cancel dead;
  let untouched = Atomic.make 0 in
  let empty =
    Par.Pool.with_pool ~domains:2 (fun pool ->
        Mcts.search_single_tree ~config ~pool ~cancel:dead cfg
          ~reward:(fun ~cancel:_ _ ->
            Atomic.incr untouched;
            1.0)
          ~rng:(Nd.Rng.create ~seed:7) ())
  in
  Alcotest.(check int) "pre-tripped: no results" 0 (List.length empty);
  Alcotest.(check int) "pre-tripped: no evaluations" 0 (Atomic.get untouched)

(* --- Reward features ------------------------------------------------------ *)

let conv_valuation = Syno.Zoo.Vars.conv_valuation ~n:1 ~c_in:16 ~c_out:16 ~hw:8 ()

let test_reward_features () =
  let f e = Reward.features e.Syno.Zoo.operator conv_valuation in
  let conv = f Syno.Zoo.conv2d in
  Alcotest.(check bool) "conv mixes spatially" true conv.Reward.spatial_mixing;
  Alcotest.(check bool) "conv mixes channels" true conv.Reward.channel_mixing;
  let pw = f Syno.Zoo.conv1x1 in
  Alcotest.(check bool) "1x1 no spatial mixing" false pw.Reward.spatial_mixing;
  Alcotest.(check bool) "1x1 channel mixing" true pw.Reward.channel_mixing;
  let shift = f Syno.Zoo.shift_conv in
  Alcotest.(check bool) "shift counts as spatial mixing" true shift.Reward.spatial_mixing

let test_reward_ordering () =
  let score e = Reward.score e.Syno.Zoo.operator conv_valuation in
  Alcotest.(check bool) "conv scores higher than 1x1" true
    (score Syno.Zoo.conv2d > score Syno.Zoo.conv1x1);
  let budget = 100 in
  Alcotest.(check (float 0.0)) "over budget scores zero" 0.0
    (Reward.score ~flops_budget:budget Syno.Zoo.conv2d.Syno.Zoo.operator conv_valuation)

let () =
  Alcotest.run "search"
    [
      ( "enumerate",
        [
          Alcotest.test_case "children canonical" `Quick test_children_are_canonical;
          Alcotest.test_case "finds matmul" `Quick test_synthesize_finds_matmul;
          Alcotest.test_case "results valid" `Quick test_synthesized_ops_valid;
          Alcotest.test_case "flops budget" `Quick test_flops_budget_respected;
        ] );
      ( "random-trials",
        [
          Alcotest.test_case "guided succeeds" `Quick test_random_completion_guided;
          Alcotest.test_case "guided beats unguided" `Quick test_random_completion_unguided_worse;
        ] );
      ( "mcts",
        [
          Alcotest.test_case "finds operators" `Quick test_mcts_finds_operators;
          Alcotest.test_case "rollout depth honored" `Quick test_mcts_rollout_depth_honored;
          Alcotest.test_case "reward memoized" `Quick test_mcts_reward_memoized;
          Alcotest.test_case "parallel = sequential" `Quick
            test_mcts_parallel_matches_sequential_pool;
          Alcotest.test_case "parallel merges trees" `Quick test_mcts_parallel_merges_trees;
        ] );
      ( "single-tree",
        [
          Alcotest.test_case "1 worker = sequential" `Quick
            test_single_tree_matches_sequential;
          Alcotest.test_case "shared tree and memo" `Quick
            test_single_tree_parallel_workers;
          Alcotest.test_case "cancellation partial" `Quick
            test_single_tree_cancellation_partial;
        ] );
      ( "reward",
        [
          Alcotest.test_case "features" `Quick test_reward_features;
          Alcotest.test_case "ordering" `Quick test_reward_ordering;
        ] );
    ]
