(* Tests for the dense tensor substrate. *)

module Rng = Nd.Rng
module Tensor = Nd.Tensor
module Einsum = Nd.Einsum

let tensor = Alcotest.testable Tensor.pp (Tensor.equal ~eps:1e-9)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check (list (float 0.0))) "same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 10 (fun _ -> Rng.float c) in
  Alcotest.(check bool) "different seed differs" false (xs = zs)

let test_rng_ranges () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_normal_moments () =
  let r = Rng.create ~seed:11 in
  let n = 20000 in
  let samples = List.init n (fun _ -> Rng.normal r) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. float_of_int n
  in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_create_get_set () =
  let t = Tensor.create [| 2; 3 |] in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Tensor.set t [| 1; 2 |] 5.0;
  Alcotest.(check (float 0.0)) "get back" 5.0 (Tensor.get t [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "others zero" 0.0 (Tensor.get t [| 0; 0 |])

let test_ravel () =
  Alcotest.(check int) "ravel" 7 (Tensor.ravel_index [| 2; 4 |] [| 1; 3 |]);
  Alcotest.(check (array int)) "unravel" [| 1; 3 |] (Tensor.unravel_index [| 2; 4 |] 7)

let test_reshape_transpose () =
  let t = Tensor.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 3) + idx.(1))) in
  let r = Tensor.reshape t [| 3; 2 |] in
  Alcotest.(check (float 0.0)) "reshape row-major" 3.0 (Tensor.get r [| 1; 1 |]);
  let tr = Tensor.transpose t [| 1; 0 |] in
  Alcotest.(check (array int)) "transposed shape" [| 3; 2 |] (Tensor.shape tr);
  Alcotest.(check (float 0.0)) "transposed value" (Tensor.get t [| 1; 2 |])
    (Tensor.get tr [| 2; 1 |])

let test_elementwise () =
  let a = Tensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array [| 3 |] [| 10.0; 20.0; 30.0 |] in
  Alcotest.check tensor "add" (Tensor.of_array [| 3 |] [| 11.0; 22.0; 33.0 |]) (Tensor.add a b);
  Alcotest.check tensor "mul" (Tensor.of_array [| 3 |] [| 10.0; 40.0; 90.0 |]) (Tensor.mul a b);
  Alcotest.check tensor "scale" (Tensor.of_array [| 3 |] [| 2.0; 4.0; 6.0 |]) (Tensor.scale 2.0 a);
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Tensor.sum a);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Tensor.mean a);
  Alcotest.(check int) "argmax" 2 (Tensor.argmax a)

let test_sum_axis () =
  let t = Tensor.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 3) + idx.(1))) in
  Alcotest.check tensor "axis 0" (Tensor.of_array [| 3 |] [| 3.0; 5.0; 7.0 |]) (Tensor.sum_axis t 0);
  Alcotest.check tensor "axis 1" (Tensor.of_array [| 2 |] [| 3.0; 12.0 |]) (Tensor.sum_axis t 1)

let test_matmul () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  Alcotest.check tensor "2x3 * 3x2"
    (Tensor.of_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    (Tensor.matmul a b)

let test_axpy () =
  let x = Tensor.of_array [| 2 |] [| 1.0; 2.0 |] in
  let y = Tensor.of_array [| 2 |] [| 10.0; 20.0 |] in
  Tensor.axpy_ 0.5 x y;
  Alcotest.check tensor "y = 0.5x + y" (Tensor.of_array [| 2 |] [| 10.5; 21.0 |]) y

(* --- Einsum -------------------------------------------------------------- *)

let test_einsum_matmul () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  Alcotest.check tensor "ik,kj->ij" (Tensor.matmul a b) (Einsum.einsum "ik,kj->ij" [ a; b ])

let test_einsum_outer_inner () =
  let a = Tensor.of_array [| 2 |] [| 1.; 2. |] in
  let b = Tensor.of_array [| 3 |] [| 3.; 4.; 5. |] in
  Alcotest.check tensor "outer"
    (Tensor.of_array [| 2; 3 |] [| 3.; 4.; 5.; 6.; 8.; 10. |])
    (Einsum.einsum "i,j->ij" [ a; b ]);
  let c = Tensor.of_array [| 3 |] [| 1.; 1.; 2. |] in
  Alcotest.check tensor "inner" (Tensor.scalar 17.0) (Einsum.einsum "i,i->" [ b; c ])

let test_einsum_batched () =
  let rng = Rng.create ~seed:3 in
  let x = Tensor.rand_normal rng ~scale:1.0 [| 2; 3; 4 |] in
  let w = Tensor.rand_normal rng ~scale:1.0 [| 4; 5 |] in
  let out = Einsum.einsum "bik,kj->bij" [ x; w ] in
  Alcotest.(check (array int)) "shape" [| 2; 3; 5 |] (Tensor.shape out);
  (* Spot check one element against a manual dot product. *)
  let manual = ref 0.0 in
  for k = 0 to 3 do
    manual := !manual +. (Tensor.get x [| 1; 2; k |] *. Tensor.get w [| k; 4 |])
  done;
  Alcotest.(check (float 1e-9)) "value" !manual (Tensor.get out [| 1; 2; 4 |])

let test_einsum_trace_sum () =
  let t = Tensor.init [| 3; 3 |] (fun idx -> if idx.(0) = idx.(1) then 1.0 else 5.0) in
  Alcotest.check tensor "trace" (Tensor.scalar 3.0) (Einsum.einsum "ii->" [ t ]);
  Alcotest.check tensor "full sum" (Tensor.scalar 33.0) (Einsum.einsum "ij->" [ t ])

let test_einsum_errors () =
  let a = Tensor.create [| 2; 3 |] in
  (try
     ignore (Einsum.einsum "ij,jk->ik" [ a ]);
     Alcotest.fail "arity"
   with Invalid_argument _ -> ());
  try
    ignore (Einsum.einsum "ijk->i" [ a ]);
    Alcotest.fail "rank"
  with Invalid_argument _ -> ()

let test_einsum_repeated_output_label () =
  (* "ij->ii" used to silently produce a dense rank-2 output with wrong
     semantics; numpy rejects it and so do we. *)
  let a = Tensor.create [| 3; 3 |] in
  (try
     ignore (Einsum.einsum "ij->ii" [ a ]);
     Alcotest.fail "repeated output label accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Einsum.plan "ii->ii" [ [| 3; 3 |] ]);
     Alcotest.fail "repeated output label accepted in plan"
   with Invalid_argument _ -> ());
  (* a repeated *input* label stays legal (trace semantics) *)
  let t = Tensor.init [| 3; 3 |] (fun idx -> if idx.(0) = idx.(1) then 2.0 else 9.0) in
  Alcotest.check tensor "trace still works" (Tensor.scalar 6.0) (Einsum.einsum "ii->" [ t ])

let test_einsum_scalar_output () =
  let b = Tensor.of_array [| 3 |] [| 3.; 4.; 5. |] in
  let c = Tensor.of_array [| 3 |] [| 1.; 1.; 2. |] in
  let p = Einsum.plan "i,i->" [ [| 3 |]; [| 3 |] ] in
  let out = Einsum.run p [ b; c ] in
  Alcotest.(check (array int)) "rank-0 shape" [||] (Tensor.shape out);
  Alcotest.check tensor "dot product" (Tensor.scalar 17.0) out;
  (* a second run of the same plan must be independent of the first *)
  Alcotest.check tensor "replay" (Tensor.scalar 17.0) (Einsum.run p [ b; c ])

let test_einsum_nonfinite_propagation () =
  (* IEEE semantics must survive the contraction: a NaN or Inf operand
     poisons exactly the output elements whose reduction touches it
     (nan * 0 = nan, so even a zero partner does not mask it). *)
  let a = Tensor.of_array [| 2; 2 |] [| 1.0; Float.nan; 3.0; 4.0 |] in
  let id = Tensor.of_array [| 2; 2 |] [| 1.0; 0.0; 0.0; 1.0 |] in
  let p = Einsum.plan "ik,kj->ij" [ [| 2; 2 |]; [| 2; 2 |] ] in
  let c = Einsum.run p [ a; id ] in
  Alcotest.(check bool) "row with NaN is NaN" true
    (Float.is_nan (Tensor.get c [| 0; 0 |]) && Float.is_nan (Tensor.get c [| 0; 1 |]));
  Alcotest.(check (float 1e-12)) "clean row untouched" 3.0 (Tensor.get c [| 1; 0 |]);
  Alcotest.(check (float 1e-12)) "clean row untouched" 4.0 (Tensor.get c [| 1; 1 |]);
  let b = Tensor.of_array [| 2; 2 |] [| Float.infinity; 0.0; 0.0; 2.0 |] in
  let d = Einsum.run p [ b; id ] in
  Alcotest.(check bool) "inf survives" true (Tensor.get d [| 0; 0 |] = Float.infinity);
  (* inf * 0 = nan: the contraction must not shortcut it away *)
  Alcotest.(check bool) "inf * 0 is NaN" true (Float.is_nan (Tensor.get d [| 0; 1 |]));
  Alcotest.(check (float 1e-12)) "finite corner" 2.0 (Tensor.get d [| 1; 1 |])

(* --- Properties ----------------------------------------------------------- *)

let arb_shape =
  QCheck.make
    ~print:(fun sh -> String.concat "x" (List.map string_of_int (Array.to_list sh)))
    QCheck.Gen.(map Array.of_list (list_size (int_range 1 3) (int_range 1 4)))

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose twice is identity" ~count:100 arb_shape (fun sh ->
      let rng = Rng.create ~seed:5 in
      let t = Tensor.rand_normal rng ~scale:1.0 sh in
      let n = Array.length sh in
      let perm = Array.init n (fun i -> n - 1 - i) in
      let inv = Array.make n 0 in
      Array.iteri (fun i p -> inv.(p) <- i) perm;
      Tensor.equal t (Tensor.transpose (Tensor.transpose t perm) inv))

let prop_sum_axis_preserves_total =
  QCheck.Test.make ~name:"sum_axis preserves total" ~count:100 arb_shape (fun sh ->
      QCheck.assume (Array.length sh >= 1);
      let rng = Rng.create ~seed:9 in
      let t = Tensor.rand_normal rng ~scale:1.0 sh in
      Float.abs (Tensor.sum (Tensor.sum_axis t 0) -. Tensor.sum t) < 1e-9)

let prop_einsum_matmul_associative =
  QCheck.Test.make ~name:"(AB)C = A(BC) via einsum" ~count:50 QCheck.(int_range 1 4)
    (fun n ->
      let rng = Rng.create ~seed:(100 + n) in
      let a = Tensor.rand_normal rng ~scale:1.0 [| n; n |] in
      let b = Tensor.rand_normal rng ~scale:1.0 [| n; n |] in
      let c = Tensor.rand_normal rng ~scale:1.0 [| n; n |] in
      let ab_c = Einsum.einsum "ik,kj->ij" [ Einsum.einsum "ik,kj->ij" [ a; b ]; c ] in
      let a_bc = Einsum.einsum "ik,kj->ij" [ a; Einsum.einsum "ik,kj->ij" [ b; c ] ] in
      Tensor.equal ~eps:1e-6 ab_c a_bc)

let () =
  Alcotest.run "nd"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "ravel" `Quick test_ravel;
          Alcotest.test_case "reshape/transpose" `Quick test_reshape_transpose;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "sum_axis" `Quick test_sum_axis;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "axpy" `Quick test_axpy;
        ] );
      ( "einsum",
        [
          Alcotest.test_case "matmul" `Quick test_einsum_matmul;
          Alcotest.test_case "outer/inner" `Quick test_einsum_outer_inner;
          Alcotest.test_case "batched" `Quick test_einsum_batched;
          Alcotest.test_case "trace/sum" `Quick test_einsum_trace_sum;
          Alcotest.test_case "errors" `Quick test_einsum_errors;
          Alcotest.test_case "repeated output label" `Quick test_einsum_repeated_output_label;
          Alcotest.test_case "scalar output" `Quick test_einsum_scalar_output;
          Alcotest.test_case "non-finite propagation" `Quick test_einsum_nonfinite_propagation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_transpose_involutive; prop_sum_axis_preserves_total; prop_einsum_matmul_associative ] );
    ]
