(* The syno command-line tool.

     syno list                         catalog of built-in operators
     syno describe conv2d              pGraph, generated code, costs
     syno describe saved.syno          ... same for a saved operator
     syno search --iterations 2000     run the MCTS synthesis
     syno latency operator2 --model resnet18
     syno train operator1 --epochs 8

   Operators are saved and loaded in the Trace_io textual format. *)

module Size = Shape.Size
module Graph = Pgraph.Graph
module Trace_io = Pgraph.Trace_io
module Zoo = Syno.Zoo
module Api = Syno.Api
open Cmdliner

let default_valuation ~c_in ~c_out ~hw ~k ~g ~s =
  Zoo.Vars.conv_valuation ~n:1 ~c_in ~c_out ~hw ~k ~g ~s ()

(* Resolve an operator by zoo name or by file path. *)
let resolve name =
  match List.find_opt (fun e -> e.Zoo.name = name) Zoo.all with
  | Some e -> Ok (e.Zoo.name, e.Zoo.operator)
  | None ->
      if Sys.file_exists name then
        let ic = open_in name in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Result.map (fun op -> (Filename.basename name, op)) (Trace_io.of_string text)
      else Error (Printf.sprintf "no such operator or file: %s" name)

(* Validated argument converters: a bad value fails at parse time with
   a one-line message naming the flag and the constraint, instead of an
   exception (or silent nonsense) deep inside the search. *)
let bounded_int ~what ~min =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | None -> Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" what s))
        | Some n when n < min ->
            Error (`Msg (Printf.sprintf "%s must be >= %d (got %d)" what min n))
        | Some n -> Ok n),
      Format.pp_print_int )

let positive_float ~what =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | None -> Error (`Msg (Printf.sprintf "%s: expected a number, got %S" what s))
        | Some v when not (v > 0.0) ->
            Error (`Msg (Printf.sprintf "%s must be > 0 (got %g)" what v))
        | Some v -> Ok v),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

(* A rate/probability: finite and within [0, 1] — "nan", "inf" and 1.5
   are all parse-time errors, not searches that silently never (or
   always) fault. *)
let unit_float ~what =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | None -> Error (`Msg (Printf.sprintf "%s: expected a number, got %S" what s))
        | Some v when not (Float.is_finite v && v >= 0.0 && v <= 1.0) ->
            Error (`Msg (Printf.sprintf "%s must be in [0, 1] (got %s)" what s))
        | Some v -> Ok v),
      (fun ppf v -> Format.fprintf ppf "%g" v) )

(* A plain integer, but the error names the flag (cmdliner's stock int
   converter reports only the value). *)
let any_int ~what =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | None -> Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" what s))
        | Some n -> Ok n),
      Format.pp_print_int )

(* A path we will create or read as a *file*: empty strings and
   existing directories die at parse time, instead of as an ENOENT /
   EISDIR exception after minutes of search. *)
let file_path ~what =
  Arg.conv
    ( (fun s ->
        if String.trim s = "" then
          Error (`Msg (Printf.sprintf "%s: path must not be empty" what))
        else if Sys.file_exists s && Sys.is_directory s then
          Error (`Msg (Printf.sprintf "%s: %s is a directory, expected a file path" what s))
        else Ok s),
      Format.pp_print_string )

(* The --specialize mode: exactly the three values the proof-guided
   specialization pipeline accepts; junk fails at parse time. *)
let specialize_conv ~what =
  Arg.conv
    ( (fun s ->
        match Api.specialize_mode_of_string s with
        | Some m -> Ok m
        | None ->
            Error (`Msg (Printf.sprintf "%s: expected on, off or auto, got %S" what s))),
      fun ppf m -> Format.pp_print_string ppf (Api.specialize_mode_to_string m) )

(* Shared --domains flag: sizes the search's worker pool and the
   default pool used by the einsum/staged executors (0 = auto-detect). *)
let domains_arg =
  let doc = "Worker domains for parallel evaluation (0 = auto-detect)." in
  Arg.(value & opt (bounded_int ~what:"--domains" ~min:0) 1 & info [ "domains" ] ~doc)

let resolve_domains d = if d <= 0 then Par.Pool.num_domains () else d

let shape_args =
  let open Term in
  let c_in = Arg.(value & opt int 64 & info [ "c-in" ] ~doc:"Input channels.") in
  let c_out = Arg.(value & opt int 64 & info [ "c-out" ] ~doc:"Output channels.") in
  let hw = Arg.(value & opt int 28 & info [ "hw" ] ~doc:"Spatial size.") in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Kernel/window size.") in
  let g = Arg.(value & opt int 2 & info [ "g" ] ~doc:"Group factor.") in
  let s = Arg.(value & opt int 2 & info [ "s" ] ~doc:"Shrink factor.") in
  const (fun c_in c_out hw k g s -> default_valuation ~c_in ~c_out ~hw ~k ~g ~s)
  $ c_in $ c_out $ hw $ k $ g $ s

(* --- list ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Format.printf "%-28s %s@." "name" "description";
    List.iter
      (fun e -> Format.printf "%-28s %s@." e.Zoo.name e.Zoo.description)
      Zoo.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in operator catalog.")
    Term.(const run $ const ())

(* --- describe ---------------------------------------------------------------- *)

let describe_cmd =
  let run name valuation =
    match resolve name with
    | Error e ->
        prerr_endline e;
        1
    | Ok (name, op) ->
        Format.printf "== %s ==@.@.%a@.@." name Graph.pp_operator op;
        Format.printf "trace: %s@.@."
          (String.concat "; " (List.map Pgraph.Trace_io.prim_to_string op.Graph.op_trace));
        (try
           let ep = Lower.Einsum_program.compile op valuation in
           Format.printf "PyTorch-style:@.%s@." (Lower.Einsum_program.to_pytorch ep);
           Format.printf "TVM-TE-style:@.%s@." (Lower.Einsum_program.to_te ep);
           Format.printf "naive FLOPs %d, params %d@."
             (Pgraph.Flops.naive_flops op valuation)
             (Pgraph.Flops.params op valuation);
           let plan = Lower.Staging.optimize op valuation in
           Format.printf "staging:@.%a@.@." Lower.Staging.pp_plan plan;
           Format.printf "%-14s %-14s %12s@." "platform" "compiler" "latency";
           List.iter
             (fun platform ->
               List.iter
                 (fun compiler ->
                   Format.printf "%-14s %-14s %10.1fus@." platform.Perf.Platform.name
                     (Perf.Compiler_model.name compiler)
                     (Perf.Roofline.operator_time_us compiler platform op valuation))
                 Perf.Compiler_model.all)
             Perf.Platform.all
         with Failure msg ->
           Format.printf "(cannot instantiate at this valuation: %s)@." msg);
        0
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OPERATOR") in
  Cmd.v
    (Cmd.info "describe" ~doc:"Show an operator's pGraph, generated code, and costs.")
    Term.(const run $ name_arg $ shape_args)

(* --- search ------------------------------------------------------------------ *)

(* Graceful shutdown: SIGINT/SIGTERM trip the root token; the search
   stops at the next iteration boundary, flushes its final checkpoint,
   and the partial top-k is reported before exiting with the
   conventional 128+SIGINT = 130.  The handler only flips an atomic
   (via [Cancel.cancel]), which is safe at signal time. *)
let install_shutdown_handlers root =
  let handle name signal =
    Sys.set_signal signal
      (Sys.Signal_handle (fun _ -> Robust.Cancel.cancel ~reason:name root))
  in
  handle "SIGINT" Sys.sigint;
  handle "SIGTERM" Sys.sigterm

let exit_interrupted = 130
let exit_failed_shard = 3

let print_candidates ~top ~save candidates =
  List.iteri
    (fun i c ->
      if i < top then begin
        Format.printf "#%-3d reward %.2f  flops %d  params %d%s@.     %s@." (i + 1)
          c.Api.reward c.Api.flops c.Api.params
          (if c.Api.quarantined then "  [quarantined]" else "")
          c.Api.signature;
        match save with
        | Some dir ->
            let path = Filename.concat dir (Printf.sprintf "candidate_%02d.syno" (i + 1)) in
            let oc = open_out path in
            output_string oc (Trace_io.to_string c.Api.operator);
            close_out oc;
            Format.printf "     saved to %s@." path
        | None -> ()
      end)
    candidates

(* Coordinator-mode dispatch: fork [shards] workers, supervise, merge.
   The merged memo lives in per-shard files next to --checkpoint, which
   is why the flag is required here. *)
let run_sharded ~iterations ~max_prims ~budget_ratio ~top ~save ~seed ~guard ~inject
    ~checkpoint ~checkpoint_every ~max_bytes ~max_flops ~validate ~static_gate ~corpus
    ~corpus_readonly ~root ~shards ~workers ~max_restarts ~heartbeat_timeout ~shard_deadline
    ~kill_after ~inline =
  match checkpoint with
  | None ->
      prerr_endline "search: --shards > 1 needs --checkpoint FILE as the merge base path";
      1
  | Some base -> (
      let t0 = Unix.gettimeofday () in
      match
        Api.search_conv_operators_sharded_run ~iterations ~max_prims
          ~flops_budget_ratio:budget_ratio ~shards ?workers ?max_restarts ?heartbeat_timeout
          ?shard_deadline ~guard ~inject ~checkpoint_every ?max_bytes ?max_flops ~validate
          ~static_gate ?corpus ~corpus_readonly ?kill_after ~inline ~cancel:root
          ~checkpoint_base:base ~seed ~valuations:Api.default_search_valuations ()
      with
      | exception Failure msg ->
          prerr_endline msg;
          2
      | { Api.sh_candidates; sh_report = r; sh_corpus } ->
          let open Search.Coordinator in
          (match Robust.Cancel.status root with
          | Some reason ->
              Format.printf "interrupted (%s): workers cascaded, checkpoints flushed@."
                (Robust.Cancel.reason_to_string reason)
          | None -> ());
          Format.printf
            "merged %d distinct canonical operators from %d shards in %.1fs (%s, %d \
             restarts)@."
            (List.length sh_candidates) shards
            (Unix.gettimeofday () -. t0)
            (if inline then "inline" else "forked workers")
            r.rp_restarts;
          List.iter
            (fun s ->
              Format.printf "shard %d: %s (%d attempt%s%s)@." s.sh_id
                (match s.sh_status with
                | Done -> "done"
                | Interrupted -> "interrupted"
                | Failed reason -> "FAILED: " ^ reason)
                s.sh_attempts
                (if s.sh_attempts = 1 then "" else "s")
                (if s.sh_kills > 0 then Printf.sprintf ", %d supervisor kill(s)" s.sh_kills
                 else ""))
            r.rp_shards;
          let m = r.rp_merge in
          if m.Search.Shard.mr_quarantined <> [] then
            List.iter
              (fun (id, err) ->
                Format.printf "shard %d checkpoint quarantined: %s@." id
                  (Search.Checkpoint.string_of_error err))
              m.Search.Shard.mr_quarantined;
          if m.Search.Shard.mr_conflicts > 0 then
            Format.printf "merge: %d signature conflict(s) resolved@."
              m.Search.Shard.mr_conflicts;
          (match sh_corpus with
          | Some cm ->
              Format.printf "corpus: %d counterexamples merged from %d shard corpora@."
                (List.length cm.Validate.Corpus.mr_entries)
                (List.length cm.Validate.Corpus.mr_loaded);
              List.iter
                (fun (id, err) ->
                  Format.printf "shard %d corpus quarantined: %s@." id
                    (Validate.Corpus.string_of_error err))
                cm.Validate.Corpus.mr_quarantined
          | None -> ());
          Format.printf "@.";
          print_candidates ~top ~save sh_candidates;
          let failed =
            List.exists
              (fun s -> match s.sh_status with Failed _ -> true | _ -> false)
              r.rp_shards
          in
          if r.rp_interrupted then exit_interrupted
          else if failed then exit_failed_shard
          else 0)

let search_cmd =
  let run iterations max_prims budget_ratio top save seed domains trees retries timeout
      fault_rate fault_seed checkpoint checkpoint_every resume resume_ignore_corrupt max_bytes
      max_flops validate no_static_gate no_graceful (corpus, corpus_readonly, no_corpus)
      (shards, workers, max_restarts, heartbeat_timeout, shard_deadline, kill_after, inline) =
    let domains = resolve_domains domains in
    (* The corpus defaults on next to the checkpoint whenever an
       admission gate is configured: the flags exist to move it
       (--corpus), freeze it (--corpus-readonly), or kill it
       (--no-corpus). *)
    let corpus =
      if no_corpus then None
      else
        match corpus with
        | Some _ as c -> c
        | None -> (
            match checkpoint with
            | Some base when validate || max_bytes <> None || max_flops <> None ->
                Some (base ^ ".corpus")
            | _ -> None)
    in
    let rng = Nd.Rng.create ~seed in
    let guard = Robust.Guard.policy ~retries ?timeout () in
    let inject =
      if fault_rate > 0.0 then
        Robust.Inject.create ~seed:fault_seed ~rate:fault_rate ()
      else Robust.Inject.none
    in
    let on_corrupt = if resume_ignore_corrupt then `Restart else `Fail in
    let root = Robust.Cancel.create () in
    if not no_graceful then install_shutdown_handlers root;
    if shards > 1 then
      run_sharded ~iterations ~max_prims ~budget_ratio ~top ~save ~seed ~guard ~inject
        ~checkpoint ~checkpoint_every ~max_bytes ~max_flops ~validate
        ~static_gate:(not no_static_gate) ~corpus ~corpus_readonly ~root ~shards ~workers
        ~max_restarts ~heartbeat_timeout ~shard_deadline ~kill_after ~inline
    else begin
    let t0 = Unix.gettimeofday () in
    match
      Api.search_conv_operators_run ~iterations ~max_prims ~flops_budget_ratio:budget_ratio
        ~domains ?trees ~guard ~inject ?checkpoint ~checkpoint_every ?resume ~on_corrupt
        ?max_bytes
        ?max_flops ~validate ~static_gate:(not no_static_gate) ?corpus ~corpus_readonly
        ~cancel:root ~rng ~valuations:Api.default_search_valuations ()
    with
    | exception Failure msg ->
        prerr_endline msg;
        2
    | { Api.candidates; failures; admission; corpus_stats } ->
    let interrupted = Robust.Cancel.status root in
    (match interrupted with
    | Some reason ->
        Format.printf "interrupted (%s): stopping at the iteration boundary%s@."
          (Robust.Cancel.reason_to_string reason)
          (match checkpoint with
          | Some path -> Printf.sprintf ", checkpoint flushed to %s" path
          | None -> "")
    | None -> ());
    Format.printf "found %d distinct canonical operators in %.1fs (%d domains)@."
      (List.length candidates)
      (Unix.gettimeofday () -. t0)
      domains;
    let open Search.Mcts in
    Format.printf
      "evaluations %d (quarantined %d), attempts %d (retries %d)%s, checkpoint writes %d@."
      failures.evaluations failures.quarantined failures.attempts failures.retries
      (match failures.failed_attempts with
      | [] -> ""
      | kinds ->
          Printf.sprintf ", failed: %s"
            (String.concat ", "
               (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) kinds)))
      failures.checkpoint_writes;
    (match admission with
    | Some s ->
        Format.printf
          "admission: %d gated, %d rejected (replay %d, static %d, budget %d, differential \
           %d), %.2fs in gate@."
          s.Validate.Admit.calls s.Validate.Admit.rejected s.Validate.Admit.rejected_replay
          s.Validate.Admit.rejected_static s.Validate.Admit.rejected_budget
          s.Validate.Admit.rejected_differential s.Validate.Admit.seconds;
        if s.Validate.Admit.distilled > 0 then
          Format.printf "admission: %d counterexample(s) distilled into the corpus@."
            s.Validate.Admit.distilled
    | None -> ());
    (match corpus_stats with
    | Some cs ->
        Format.printf
          "corpus: %d entries (%d added this run), replay checked %d, matched %d, executed \
           %d, rejected %d@."
          cs.Validate.Corpus.st_entries cs.Validate.Corpus.st_added
          cs.Validate.Corpus.st_checked cs.Validate.Corpus.st_matched
          cs.Validate.Corpus.st_executed cs.Validate.Corpus.st_rejected
    | None -> ());
    Format.printf "@.";
    print_candidates ~top ~save candidates;
    if interrupted <> None then exit_interrupted else 0
    end
  in
  let iterations =
    Arg.(value & opt int 2000 & info [ "iterations" ] ~doc:"MCTS iterations.")
  in
  let max_prims = Arg.(value & opt int 8 & info [ "max-prims" ] ~doc:"Maximum pGraph size.") in
  let budget =
    Arg.(value & opt float 1.0 & info [ "budget-ratio" ] ~doc:"FLOPs budget vs conv2d.")
  in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Candidates to print.") in
  let save =
    Arg.(value & opt (some dir) None & info [ "save" ] ~doc:"Directory for .syno files.")
  in
  let seed = Arg.(value & opt int 2024 & info [ "seed" ] ~doc:"Search RNG seed.") in
  let trees =
    Arg.(value & opt (some (bounded_int ~what:"--trees" ~min:1)) None
         & info [ "trees" ]
             ~doc:"Root-parallel search with this many independent trees (iterations split \
                   across them); without it, --domains > 1 runs single-tree parallel search \
                   sharing one tree and the full iteration budget.")
  in
  let retries =
    Arg.(value & opt (bounded_int ~what:"--retries" ~min:0) 2
         & info [ "retries" ] ~doc:"Retries per failed candidate evaluation (>= 0).")
  in
  let timeout =
    Arg.(value & opt (some (positive_float ~what:"--eval-timeout")) None
         & info [ "eval-timeout" ] ~doc:"Per-candidate wall-clock budget in seconds (> 0).")
  in
  let fault_rate =
    Arg.(value & opt (unit_float ~what:"--fault-rate") 0.0
         & info [ "fault-rate" ]
             ~doc:"Inject deterministic transient faults into this fraction of candidates \
                   (0 to 1).")
  in
  let fault_seed =
    Arg.(value & opt (any_int ~what:"--fault-seed") 0
         & info [ "fault-seed" ] ~doc:"Fault injection seed.")
  in
  let checkpoint =
    Arg.(value & opt (some (file_path ~what:"--checkpoint")) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Serialize the reward memo to $(docv) during the search.")
  in
  let checkpoint_every =
    Arg.(value & opt (bounded_int ~what:"--checkpoint-every" ~min:1) 50
         & info [ "checkpoint-every" ] ~doc:"New evaluations between checkpoint writes (>= 1).")
  in
  let resume =
    Arg.(value & opt (some (file_path ~what:"--resume")) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Preload a checkpoint written by --checkpoint; a missing file starts fresh.")
  in
  let resume_ignore_corrupt =
    Arg.(value & flag
         & info [ "resume-ignore-corrupt" ]
             ~doc:"Start fresh when the --resume file is truncated or corrupt, instead of \
                   failing.")
  in
  let max_bytes =
    Arg.(value & opt (some (bounded_int ~what:"--max-bytes" ~min:1)) None
         & info [ "max-bytes" ]
             ~doc:"Reject candidates whose estimated peak intermediate size exceeds this many \
                   bytes, before any allocation.")
  in
  let max_flops =
    Arg.(value & opt (some (bounded_int ~what:"--max-flops" ~min:1)) None
         & info [ "max-flops" ]
             ~doc:"Reject candidates whose estimated FLOPs exceed this budget, before any \
                   allocation.")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Differentially validate every candidate across the three lowering backends \
                   on small seeded inputs; disagreeing candidates are quarantined.")
  in
  let no_static_gate =
    Arg.(value & flag
         & info [ "no-static-gate" ]
             ~doc:"Skip the static bounds verifier that otherwise runs ahead of budget and \
                   differential admission whenever any gate is configured.")
  in
  let no_graceful =
    Arg.(value & flag
         & info [ "no-graceful-shutdown" ]
             ~doc:"Keep the default signal behaviour: SIGINT/SIGTERM kill the process \
                   immediately instead of stopping at the next iteration boundary and \
                   flushing a final checkpoint.")
  in
  let corpus_args =
    let corpus =
      Arg.(value & opt (some (file_path ~what:"--corpus")) None
           & info [ "corpus" ] ~docv:"FILE"
               ~doc:"Persist distilled counterexamples to $(docv) and replay them against \
                     every candidate ahead of the other admission stages (default: \
                     <checkpoint>.corpus when --checkpoint is set and any admission gate is \
                     configured).")
    in
    let corpus_readonly =
      Arg.(value & flag
           & info [ "corpus-readonly" ]
               ~doc:"Replay the corpus but never add to it (shared or frozen corpora).")
    in
    let no_corpus =
      Arg.(value & flag
           & info [ "no-corpus" ]
               ~doc:"Disable the counterexample corpus entirely, including the default \
                     derived from --checkpoint.")
    in
    Term.(const (fun a b c -> (a, b, c)) $ corpus $ corpus_readonly $ no_corpus)
  in
  let shard_args =
    let shards =
      Arg.(value & opt (bounded_int ~what:"--shards" ~min:1) 1
           & info [ "shards" ]
               ~doc:"Partition the search space by seeded root action into this many shards \
                     and run each in a supervised worker process (requires --checkpoint; \
                     iterations are split across shards).")
    in
    let workers =
      Arg.(value & opt (some (bounded_int ~what:"--shard-workers" ~min:1)) None
           & info [ "shard-workers" ]
               ~doc:"Maximum concurrent worker processes (default: one per shard).")
    in
    let max_restarts =
      Arg.(value & opt (some (bounded_int ~what:"--max-restarts" ~min:0)) None
           & info [ "max-restarts" ]
               ~doc:"Restarts per crashed shard before it is reported failed (default 2).")
    in
    let heartbeat_timeout =
      Arg.(value & opt (some (positive_float ~what:"--heartbeat-timeout")) None
           & info [ "heartbeat-timeout" ]
               ~doc:"Seconds of worker heartbeat silence before the coordinator kills and \
                     restarts it (default 10).")
    in
    let shard_deadline =
      Arg.(value & opt (some (positive_float ~what:"--shard-deadline")) None
           & info [ "shard-deadline" ]
               ~doc:"Per-shard-attempt wall-clock budget in seconds (default: none).")
    in
    let kill_after =
      Arg.(value & opt (some (bounded_int ~what:"--shard-kill-after" ~min:1)) None
           & info [ "shard-kill-after" ]
               ~doc:"Fault-injection: each shard's first worker attempt kills itself after \
                     this many reward evaluations, exercising restart recovery.")
    in
    let inline =
      Arg.(value & flag
           & info [ "shard-inline" ]
               ~doc:"Run the shards sequentially in-process (no forks) — the deterministic \
                     reference a forked run is asserted against.")
    in
    Term.(const (fun a b c d e f g -> (a, b, c, d, e, f, g))
          $ shards $ workers $ max_restarts $ heartbeat_timeout $ shard_deadline
          $ kill_after $ inline)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Synthesize convolution replacements with MCTS."
       ~exits:
         (Cmd.Exit.info ~doc:"on success." 0
         :: Cmd.Exit.info ~doc:"on a usage or validation error." 1
         :: Cmd.Exit.info ~doc:"on a search failure (e.g. an unreadable --resume file)." 2
         :: Cmd.Exit.info
              ~doc:"when a shard exhausted its restart budget (its partial checkpoint still \
                    merges)."
              exit_failed_shard
         :: Cmd.Exit.info ~doc:"when interrupted by SIGINT/SIGTERM (after flushing the \
                                checkpoint and reporting partial results)." exit_interrupted
         :: Cmd.Exit.defaults))
    Term.(const run $ iterations $ max_prims $ budget $ top $ save $ seed $ domains_arg
          $ trees $ retries $ timeout $ fault_rate $ fault_seed $ checkpoint $ checkpoint_every
          $ resume $ resume_ignore_corrupt $ max_bytes $ max_flops $ validate $ no_static_gate
          $ no_graceful $ corpus_args $ shard_args)

(* --- lint ------------------------------------------------------------------ *)

(* One diagnostic per line, machine-readable:
     <operator> bounds proved | padded regions=N | violation: <detail>
     <operator> regions verdict=... interior=... strips=N nests=N   (--regions)
     <operator> lint <rule> <severity>: <detail>
     <operator> rewrites checked=N approx=N unsound=N
     <operator> rewrite unsound: <detail>
     <operator> skip: not instantiable at the given shape
   Exit 1 when any operator has a bounds violation, an error-severity
   lint finding, or an unsound rewrite. *)
let lint_cmd =
  let module Verify = Analysis.Verify in
  let module Lint = Analysis.Lint in
  let module Rewrite = Analysis.Rewrite in
  let module Regions = Analysis.Regions in
  let run name all regions valuation =
    let targets =
      if all then Ok (List.map (fun e -> (e.Zoo.name, e.Zoo.operator)) Zoo.all)
      else
        match name with
        | None -> Error "lint: name an operator or .syno file, or pass --all"
        | Some n -> Result.map (fun t -> [ t ]) (resolve n)
    in
    match targets with
    | Error e ->
        prerr_endline e;
        1
    | Ok targets ->
        let failed = ref false in
        List.iter
          (fun (name, op) ->
            (* Operators off the conv signature (e.g. matmul) get a
               small fallback shape; neither fitting is a skip, not an
               error — lint must not reject what the search would run. *)
            let fallback = Zoo.Vars.matmul_valuation ~m:4 ~n:4 ~k:4 in
            let v =
              List.find_opt
                (fun v -> Option.is_some (Verify.program_opt op v))
                [ valuation; fallback ]
            in
            match v with
            | None ->
                Format.printf "%s skip: not instantiable at the given shape@." name;
                List.iter
                  (fun f ->
                    if f.Lint.lint_severity = Lint.Error then failed := true;
                    Format.printf "%s lint %s@." name (Lint.finding_to_string f))
                  (Lint.check op)
            | Some v -> (
                (match Verify.program op v with
                | Verify.Proved -> Format.printf "%s bounds proved@." name
                | Verify.Padded regions ->
                    Format.printf "%s bounds padded regions=%d@." name (List.length regions)
                | Verify.Violation d ->
                    failed := true;
                    Format.printf "%s bounds violation: %s@." name
                      (Verify.diagnostic_to_string d));
                if regions then
                  (match Regions.of_staged (Lower.Staged_exec.compile op v) with
                  | exception _ -> Format.printf "%s regions skip@." name
                  | cert ->
                      Format.printf "%s regions %s@." name
                        (Regions.summary_to_string cert));
                List.iter
                  (fun f ->
                    if f.Lint.lint_severity = Lint.Error then failed := true;
                    Format.printf "%s lint %s@." name (Lint.finding_to_string f))
                  (Lint.check ~valuations:[ v ] op);
                let report = Rewrite.check_operator (Coord.Simplify.ctx [ v ]) op in
                Format.printf "%s rewrites checked=%d approx=%d unsound=%d@." name
                  report.Rewrite.rp_checked report.Rewrite.rp_approx
                  (List.length report.Rewrite.rp_failures);
                List.iter
                  (fun f ->
                    failed := true;
                    Format.printf "%s rewrite unsound: %s@." name (Rewrite.failure_to_string f))
                  report.Rewrite.rp_failures))
          targets;
        if !failed then 1 else 0
  in
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"OPERATOR") in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every operator in the built-in catalog.")
  in
  let regions_arg =
    Arg.(value & flag
         & info [ "regions" ]
             ~doc:"Also print each operator's iteration-space partition certificate — \
                   verdict, interior fraction, border-strip count — one machine-readable \
                   line per operator.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify an operator: interval bounds proofs for every tensor access, \
          graph lint rules, and rewrite-soundness checks. No tensor is ever allocated."
       ~exits:
         (Cmd.Exit.info ~doc:"when every check passes." 0
         :: Cmd.Exit.info
              ~doc:"when any bounds violation, error-severity lint finding, or unsound \
                    rewrite is reported."
              1
         :: Cmd.Exit.defaults))
    Term.(const run $ name_arg $ all_arg $ regions_arg $ shape_args)

(* --- latency ------------------------------------------------------------------ *)

let model_conv =
  Arg.conv
    ( (fun s ->
        match
          List.find_opt (fun m -> m.Backbones.Models.name = s) Backbones.Models.vision_models
        with
        | Some m -> Ok m
        | None -> Error (`Msg ("unknown model " ^ s))),
      fun ppf m -> Format.pp_print_string ppf m.Backbones.Models.name )

let latency_cmd =
  let run name model =
    match resolve name with
    | Error e ->
        prerr_endline e;
        1
    | Ok (name, op) ->
        let entry = { Zoo.name; description = ""; operator = op } in
        Format.printf "%s substituted into %s:@.@." name model.Backbones.Models.name;
        Format.printf "%-14s %-14s %10s %10s %8s@." "platform" "compiler" "baseline" "syno"
          "speedup";
        List.iter
          (fun platform ->
            List.iter
              (fun compiler ->
                let base = Api.model_latency_ms model compiler platform in
                let sub = Api.model_latency_ms ~substitute:entry model compiler platform in
                Format.printf "%-14s %-14s %8.2fms %8.2fms %7.2fx@."
                  platform.Perf.Platform.name
                  (Perf.Compiler_model.name compiler)
                  base sub (base /. sub))
              Perf.Compiler_model.all)
          Perf.Platform.all;
        0
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OPERATOR") in
  let model_arg =
    Arg.(value & opt model_conv Backbones.Models.resnet18 & info [ "model" ] ~doc:"Backbone.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"End-to-end latency of a backbone with the operator substituted.")
    Term.(const run $ name_arg $ model_arg)

(* --- train ---------------------------------------------------------------------- *)

let train_cmd =
  let run name epochs lr seed domains clip_norm specialize =
    match resolve name with
    | Error e ->
        prerr_endline e;
        1
    | Ok (name, op) ->
        Par.Pool.set_default_domains (resolve_domains domains);
        let entry = { Zoo.name; description = ""; operator = op } in
        let rng = Nd.Rng.create ~seed in
        let data =
          Dataset.Synth_vision.generate rng ~classes:4 ~channels:4 ~size:10
            ~train_batches:10 ~eval_batches:8 ~batch_size:16 ()
        in
        Format.printf "training %s on the synthetic vision task...@." name;
        let h =
          Api.train_entry ~epochs ~lr ?clip_norm ~specialize
            ~rng:(Nd.Rng.create ~seed:(seed + 1)) entry data
        in
        List.iteri
          (fun i (loss, acc) ->
            Format.printf "  epoch %2d  loss %.3f  accuracy %.3f@." (i + 1) loss acc)
          (List.combine h.Nn.Train.epoch_losses h.Nn.Train.epoch_accuracies);
        (match h.Nn.Train.outcome with
        | Nn.Train.Completed -> ()
        | Nn.Train.Aborted_non_finite { epoch; step } ->
            Format.printf "aborted: non-finite loss at epoch %d, step %d@." epoch step
        | Nn.Train.Aborted_diverged { epoch; loss; initial } ->
            Format.printf "aborted: diverged at epoch %d (loss %.3f vs initial %.3f)@." epoch
              loss initial
        | Nn.Train.Aborted_cancelled { epoch; step } ->
            Format.printf "aborted: cancelled at epoch %d, step %d@." epoch step);
        Format.printf "final eval accuracy: %.3f@." h.Nn.Train.final_eval_accuracy;
        if h.Nn.Train.aborted then 1 else 0
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OPERATOR") in
  let epochs_arg =
    Arg.(value & opt (bounded_int ~what:"--epochs" ~min:1) 8
         & info [ "epochs" ] ~doc:"Training epochs (>= 1).")
  in
  let lr_arg =
    Arg.(value & opt (positive_float ~what:"--lr") 0.1
         & info [ "lr" ] ~doc:"Learning rate (> 0).")
  in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Data/init seed.") in
  let clip_arg =
    Arg.(value & opt (some (positive_float ~what:"--clip-norm")) None
         & info [ "clip-norm" ]
             ~doc:"Clip the global gradient norm to this value each step (> 0).")
  in
  let specialize_arg =
    Arg.(value & opt (specialize_conv ~what:"--specialize") `Off
         & info [ "specialize" ] ~docv:"MODE"
             ~doc:"Run the proxy forward pass through the certified specialized kernel: \
                   $(b,on), $(b,off), or $(b,auto).  The interpreter is the fallback \
                   whenever certification declines the operator.")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a proxy model with the operator substituted.")
    Term.(const run $ name_arg $ epochs_arg $ lr_arg $ seed_arg $ domains_arg $ clip_arg
          $ specialize_arg)

(* --- serve --------------------------------------------------------------------- *)

let serve_cmd =
  let run socket cache cache_capacity cache_every corpus max_queue max_inflight_bytes
      deadline max_deadline retry_after workers max_connections drain_grace retries
      specialize =
    let cfg =
      {
        (Serve.Server.default_config ~socket) with
        Serve.Server.cache_path = cache;
        cache_capacity;
        cache_every;
        corpus_path = corpus;
        max_depth = max_queue;
        max_inflight_bytes;
        default_deadline = deadline;
        max_deadline = Float.max deadline max_deadline;
        retry_after;
        workers;
        max_connections;
        drain_grace;
        guard = Robust.Guard.policy ~retries ~backoff:0.005 ~jitter:0.5 ();
        specialize;
      }
    in
    Serve.Server.run
      ~on_ready:(fun () -> Format.printf "serving on %s@." socket)
      cfg
  in
  let socket =
    Arg.(required & opt (some (file_path ~what:"--socket")) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to serve on.")
  in
  let cache =
    Arg.(value & opt (some (file_path ~what:"--cache")) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Persist the result cache to $(docv) (atomic, fsynced): a killed daemon \
                   restarts warm.")
  in
  let cache_capacity =
    Arg.(value & opt (bounded_int ~what:"--cache-capacity" ~min:1) 1024
         & info [ "cache-capacity" ] ~doc:"LRU cache entries (>= 1).")
  in
  let cache_every =
    Arg.(value & opt (bounded_int ~what:"--cache-every" ~min:1) 16
         & info [ "cache-every" ] ~doc:"Cache insertions between snapshot writes (>= 1).")
  in
  let corpus =
    Arg.(value & opt (some (file_path ~what:"--corpus")) None
         & info [ "corpus" ] ~docv:"FILE"
             ~doc:"Counterexample corpus to replay against every eval and extend with newly \
                   poisoned operators.")
  in
  let max_queue =
    Arg.(value & opt (bounded_int ~what:"--max-queue" ~min:1) 64
         & info [ "max-queue" ]
             ~doc:"Admission bound on queued requests; beyond it the server sheds with an \
                   overloaded response (>= 1).")
  in
  let max_inflight_bytes =
    Arg.(value & opt (bounded_int ~what:"--max-inflight-bytes" ~min:1) (4 * 1024 * 1024)
         & info [ "max-inflight-bytes" ]
             ~doc:"Admission bound on in-flight request payload bytes (>= 1).")
  in
  let deadline =
    Arg.(value & opt (positive_float ~what:"--deadline") 10.0
         & info [ "deadline" ] ~doc:"Default per-request deadline in seconds (> 0).")
  in
  let max_deadline =
    Arg.(value & opt (positive_float ~what:"--max-deadline") 60.0
         & info [ "max-deadline" ] ~doc:"Clamp on client-requested deadlines (> 0).")
  in
  let retry_after =
    Arg.(value & opt (positive_float ~what:"--retry-after") 0.05
         & info [ "retry-after" ] ~doc:"Retry hint attached to shed responses, seconds (> 0).")
  in
  let workers =
    Arg.(value & opt (bounded_int ~what:"--workers" ~min:1) 2
         & info [ "workers" ] ~doc:"Evaluation worker domains (>= 1).")
  in
  let max_connections =
    Arg.(value & opt (bounded_int ~what:"--max-connections" ~min:1) 64
         & info [ "max-connections" ] ~doc:"Concurrent client connections (>= 1).")
  in
  let drain_grace =
    Arg.(value & opt (positive_float ~what:"--drain-grace") 5.0
         & info [ "drain-grace" ]
             ~doc:"Seconds a drain waits for in-flight work before force-cancelling it (> 0).")
  in
  let retries =
    Arg.(value & opt (bounded_int ~what:"--retries" ~min:0) 1
         & info [ "retries" ] ~doc:"Retries per failed request evaluation (>= 0).")
  in
  let specialize_arg =
    Arg.(value & opt (specialize_conv ~what:"--specialize") `Auto
         & info [ "specialize" ] ~docv:"MODE"
             ~doc:"Whether cold evaluations also time the certified specialized kernel: \
                   $(b,on) (a certification failure is a typed reject), $(b,off), or \
                   $(b,auto) (skip silently when certification declines).  The measured \
                   time lands in the cache and the $(b,spec) response parameter.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent operator daemon on a Unix-domain socket: cached \
          lower+verify+validate evals with per-request deadlines, overload shedding, and \
          graceful drain."
       ~exits:
         (Cmd.Exit.info ~doc:"after a graceful drain (SIGTERM or the drain verb)." 0
         :: Cmd.Exit.info ~doc:"on a startup failure (socket already served, bind error)." 2
         :: Cmd.Exit.info ~doc:"when interrupted by SIGINT (cache flushed first)."
              exit_interrupted
         :: Cmd.Exit.defaults))
    Term.(const run $ socket $ cache $ cache_capacity $ cache_every $ corpus $ max_queue
          $ max_inflight_bytes $ deadline $ max_deadline $ retry_after $ workers
          $ max_connections $ drain_grace $ retries $ specialize_arg)

(* --- client -------------------------------------------------------------------- *)

let client_cmd =
  let run socket timeout verb params =
    match Serve.Protocol.verb_of_label verb with
    | None ->
        prerr_endline ("client: unknown verb " ^ verb);
        1
    | Some v -> (
        let parse_param s =
          match String.index_opt s '=' with
          | Some i ->
              Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
          | None -> Error (Printf.sprintf "client: bad parameter %S (expected key=value)" s)
        in
        let rec parse_all acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
              match parse_param p with
              | Ok kv -> parse_all (kv :: acc) rest
              | Error e -> Error e)
        in
        match parse_all [] params with
        | Error e ->
            prerr_endline e;
            1
        | Ok params -> (
            let request =
              { Serve.Protocol.rq_id = "1"; rq_verb = v; rq_params = params }
            in
            match Serve.Client.connect ~timeout socket with
            | Error e ->
                prerr_endline ("client: " ^ e);
                2
            | Ok conn ->
                let result = Serve.Client.call ~timeout conn request in
                Serve.Client.close conn;
                (match result with
                | Error e ->
                    prerr_endline ("client: " ^ e);
                    2
                | Ok resp ->
                    print_endline (Serve.Protocol.render_response ~id:"1" resp);
                    (match resp with
                    | Serve.Protocol.Resp_ok _ -> 0
                    | Serve.Protocol.Resp_error _ -> 1))))
  in
  let socket =
    Arg.(required & opt (some (file_path ~what:"--socket")) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of a running daemon.")
  in
  let timeout =
    Arg.(value & opt (positive_float ~what:"--timeout") 10.0
         & info [ "timeout" ] ~doc:"Connect/response timeout in seconds (> 0).")
  in
  let verb =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"VERB" ~doc:"eval | lint | search | status | ping | drain")
  in
  let params =
    Arg.(value & pos_right 0 string []
         & info [] ~docv:"KEY=VALUE" ~doc:"Request parameters, e.g. op=conv2d deadline=2.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running syno serve daemon and print the response."
       ~exits:
         (Cmd.Exit.info ~doc:"on an ok response." 0
         :: Cmd.Exit.info ~doc:"on a typed error response (printed on stdout)." 1
         :: Cmd.Exit.info ~doc:"on a transport failure (connect/timeout)." 2
         :: Cmd.Exit.defaults))
    Term.(const run $ socket $ timeout $ verb $ params)

let () =
  let info =
    Cmd.info "syno" ~version:"1.0"
      ~doc:"Structured synthesis for neural operators (ASPLOS'25 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; describe_cmd; search_cmd; lint_cmd; latency_cmd; train_cmd; serve_cmd;
            client_cmd;
          ]))
