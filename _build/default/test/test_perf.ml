(* Tests for the hardware/compiler performance models. *)

module Platform = Perf.Platform
module Kernel = Perf.Kernel
module Compiler = Perf.Compiler_model
module Roofline = Perf.Roofline
module Zoo = Syno.Zoo

let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:64 ~c_out:64 ~hw:56 ~k:3 ~g:2 ~s:2 ()
let kernel e = Kernel.of_operator e.Zoo.operator valuation

let test_platforms () =
  Alcotest.(check int) "three platforms" 3 (List.length Platform.all);
  let cpu = Platform.by_name "mobile-cpu" in
  let a100 = Platform.by_name "a100" in
  Alcotest.(check bool) "a100 faster" true (a100.Platform.peak_gflops > cpu.Platform.peak_gflops);
  Alcotest.(check bool) "a100 has tensor cores" true (a100.Platform.tensor_core_gflops <> None);
  Alcotest.(check bool) "cpu has none" true (cpu.Platform.tensor_core_gflops = None);
  Alcotest.check_raises "unknown platform"
    (Invalid_argument "Platform.by_name: unknown platform x") (fun () ->
      ignore (Platform.by_name "x"))

let test_kernel_characterization () =
  let conv = kernel Zoo.conv2d in
  Alcotest.(check bool) "conv regular" true conv.Kernel.regular;
  Alcotest.(check bool) "conv not grouped" false conv.Kernel.grouped;
  let grouped = kernel Zoo.grouped_conv in
  Alcotest.(check bool) "grouped_conv irregular" false grouped.Kernel.regular;
  Alcotest.(check bool) "grouped_conv grouped" true grouped.Kernel.grouped;
  let dw = kernel Zoo.depthwise_conv in
  Alcotest.(check bool) "depthwise grouped" true dw.Kernel.grouped;
  Alcotest.(check bool) "depthwise regular indexing" true dw.Kernel.regular;
  let op2 = kernel Zoo.operator2 in
  Alcotest.(check bool) "operator2 regular" true op2.Kernel.regular;
  Alcotest.(check bool) "operator2 staged" true (op2.Kernel.stages > 1)

let test_kernel_flops () =
  let conv = kernel Zoo.conv2d in
  (* 2 * C_out*H*W * C_in*k*k *)
  Alcotest.(check int) "conv flops" (2 * 64 * 56 * 56 * 64 * 9) conv.Kernel.flops;
  Alcotest.(check int) "conv params bytes" (64 * 64 * 9 * 4) conv.Kernel.param_bytes;
  let op2 = kernel Zoo.operator2 in
  Alcotest.(check bool) "op2 fewer flops" true (op2.Kernel.flops < conv.Kernel.flops);
  Alcotest.(check bool) "op2 fewer params" true
    (op2.Kernel.param_bytes < conv.Kernel.param_bytes)

let test_quantize () =
  let conv = kernel Zoo.conv2d in
  let q = Kernel.quantize_int8 conv in
  Alcotest.(check int) "quarter param bytes" (conv.Kernel.param_bytes / 4) q.Kernel.param_bytes;
  Alcotest.(check int) "half flops" (conv.Kernel.flops / 2) q.Kernel.flops

let test_roofline_monotonic () =
  let conv = kernel Zoo.conv2d in
  let small = Kernel.of_operator Zoo.conv2d.Zoo.operator
      (Zoo.Vars.conv_valuation ~n:1 ~c_in:16 ~c_out:16 ~hw:14 ~k:3 ~g:2 ~s:2 ())
  in
  List.iter
    (fun p ->
      let tb = Roofline.kernel_time_us Compiler.tvm p conv in
      let ts = Roofline.kernel_time_us Compiler.tvm p small in
      Alcotest.(check bool) (p.Platform.name ^ " bigger is slower") true (tb > ts))
    Platform.all

let test_compiler_contrast () =
  let conv = kernel Zoo.conv2d in
  let a100 = Platform.a100 in
  (* Inductor uses tensor cores on regular kernels on A100: faster than
     FP32 TVM. *)
  Alcotest.(check bool) "inductor TC beats tvm on a100 regular" true
    (Compiler.effective_gflops Compiler.torchinductor a100 conv
    > Compiler.effective_gflops Compiler.tvm a100 conv);
  (* On the mobile CPU for a grouped kernel, TVM's generic codegen wins
     (ATen fallback story). *)
  let dw = kernel Zoo.depthwise_conv in
  let cpu = Platform.mobile_cpu in
  Alcotest.(check bool) "tvm beats inductor on mobile grouped" true
    (Compiler.effective_gflops Compiler.tvm cpu dw
    > Compiler.effective_gflops Compiler.torchinductor cpu dw)

let test_cache_spill () =
  (* A parameter-heavy kernel on the cache-limited CPU pays a traffic
     penalty that a parameter-light kernel avoids. *)
  let cpu = Platform.mobile_cpu in
  let heavy = Kernel.of_operator Zoo.conv2d.Zoo.operator
      (Zoo.Vars.conv_valuation ~n:1 ~c_in:512 ~c_out:512 ~hw:7 ~k:3 ~g:2 ~s:2 ())
  in
  Alcotest.(check bool) "big weights exceed cache" true
    (heavy.Kernel.param_bytes > cpu.Platform.cache_bytes);
  let t_heavy = Roofline.kernel_time_us Compiler.tvm cpu heavy in
  (* memory-bound estimate without the spill factor *)
  let naive_mem =
    float_of_int (heavy.Kernel.input_bytes + heavy.Kernel.output_bytes + heavy.Kernel.param_bytes)
    /. (cpu.Platform.mem_bw_gbps *. 1e3)
  in
  Alcotest.(check bool) "spill penalty applies" true (t_heavy > naive_mem)

let test_model_time () =
  let lis =
    [
      {
        Roofline.li_operator = Zoo.conv2d.Zoo.operator;
        li_valuation = valuation;
        li_count = 4;
      };
    ]
  in
  let one =
    Roofline.operator_time_us Compiler.tvm Platform.mobile_cpu Zoo.conv2d.Zoo.operator
      valuation
  in
  Alcotest.(check (float 1e-6)) "sums counts" (4.0 *. one /. 1000.0)
    (Roofline.model_time_ms Compiler.tvm Platform.mobile_cpu lis)

let test_quantized_time_faster () =
  let t =
    Roofline.operator_time_us Compiler.tvm Platform.mobile_cpu Zoo.conv2d.Zoo.operator
      valuation
  in
  let tq =
    Roofline.quantized_operator_time_us Compiler.tvm Platform.mobile_cpu
      Zoo.conv2d.Zoo.operator valuation
  in
  Alcotest.(check bool) "int8 faster" true (tq < t)

let () =
  Alcotest.run "perf"
    [
      ("platforms", [ Alcotest.test_case "catalog" `Quick test_platforms ]);
      ( "kernels",
        [
          Alcotest.test_case "characterization" `Quick test_kernel_characterization;
          Alcotest.test_case "flops" `Quick test_kernel_flops;
          Alcotest.test_case "quantize" `Quick test_quantize;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "monotonic" `Quick test_roofline_monotonic;
          Alcotest.test_case "compiler contrast" `Quick test_compiler_contrast;
          Alcotest.test_case "cache spill" `Quick test_cache_spill;
          Alcotest.test_case "model time" `Quick test_model_time;
          Alcotest.test_case "quantized" `Quick test_quantized_time_faster;
        ] );
    ]
