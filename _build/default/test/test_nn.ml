(* Tests for layers, optimizers, attention, and the training loop. *)

module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Tape = Grad.Tape
module Op = Grad.Op

let rng () = Rng.create ~seed:7

let test_linear_shapes () =
  let l = Nn.Layer.linear (rng ()) ~in_features:4 ~out_features:3 in
  Alcotest.(check int) "params" ((4 * 3) + 3) (Nn.Layer.num_params l);
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) l.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.create [| 2; 4 |]) in
  let y = l.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "output shape" [| 2; 3 |] (Tensor.shape (Tape.data y));
  (* higher-rank input maps over the last axis *)
  let x3 = Tape.constant tape (Tensor.create [| 2; 5; 4 |]) in
  let y3 = l.Nn.Layer.apply tape params x3 in
  Alcotest.(check (array int)) "rank-3 shape" [| 2; 5; 3 |] (Tensor.shape (Tape.data y3))

let test_sequential_residual () =
  let r = rng () in
  let body = Nn.Layer.sequential "s" [ Nn.Layer.relu; Nn.Layer.relu ] in
  Alcotest.(check int) "no params" 0 (Nn.Layer.num_params body);
  let res = Nn.Layer.residual "r" [ body ] in
  let tape = Tape.create () in
  let x = Tape.constant tape (Tensor.of_array [| 2 |] [| -1.0; 2.0 |]) in
  let y = res.Nn.Layer.apply tape [] x in
  (* residual: x + relu(relu x) *)
  Alcotest.(check (float 1e-9)) "neg passes via skip" (-1.0) (Tensor.get (Tape.data y) [| 0 |]);
  Alcotest.(check (float 1e-9)) "pos doubled" 4.0 (Tensor.get (Tape.data y) [| 1 |]);
  ignore r

let quadratic_descent make_opt =
  (* minimize ||p - target||^2 by gradient steps *)
  let p = Tensor.of_array [| 2 |] [| 5.0; -3.0 |] in
  let target = Tensor.of_array [| 2 |] [| 1.0; 2.0 |] in
  let opt = make_opt () in
  for _ = 1 to 200 do
    let grad = Tensor.scale 2.0 (Tensor.sub p target) in
    Nn.Optimizer.step opt ~params:[ p ] ~grads:[ grad ]
  done;
  Tensor.sum (Tensor.map Float.abs (Tensor.sub p target))

let test_sgd () =
  let err = quadratic_descent (fun () -> Nn.Optimizer.sgd ~momentum:0.9 ~lr:0.05 ()) in
  Alcotest.(check bool) "sgd converges" true (err < 1e-3)

let test_adam () =
  let err = quadratic_descent (fun () -> Nn.Optimizer.adam ~lr:0.1 ()) in
  Alcotest.(check bool) "adam converges" true (err < 1e-2)

let test_cosine_schedule () =
  Alcotest.(check (float 1e-9)) "start" 1.0 (Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 0);
  Alcotest.(check (float 1e-9)) "end" 0.0 (Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 100);
  let mid = Nn.Optimizer.cosine_lr ~base:1.0 ~total_steps:100 50 in
  Alcotest.(check (float 1e-9)) "mid" 0.5 mid

let test_linear_model_learns () =
  (* Separable 2-class problem in 4 features. *)
  let r = rng () in
  let model =
    Nn.Model.of_layer
      (Nn.Layer.sequential "clf"
         [ Nn.Layer.linear r ~in_features:4 ~out_features:2 ])
  in
  let make_batch () =
    let images = Tensor.create [| 16; 4 |] in
    let labels = Array.make 16 0 in
    for i = 0 to 15 do
      let cls = Rng.int r 2 in
      labels.(i) <- cls;
      for j = 0 to 3 do
        let mean = if cls = 0 then 1.0 else -1.0 in
        Tensor.set images [| i; j |] (mean +. (0.5 *. Rng.normal r))
      done
    done;
    { Nn.Train.images; labels }
  in
  let train = List.init 10 (fun _ -> make_batch ()) in
  let eval = List.init 3 (fun _ -> make_batch ()) in
  let opt = Nn.Optimizer.sgd ~lr:0.1 () in
  let h = Nn.Train.fit model opt ~epochs:5 ~train ~eval in
  Alcotest.(check bool) "learns separable task" true (h.Nn.Train.final_eval_accuracy > 0.95)

let test_attention_shapes () =
  let r = rng () in
  let attn = Nn.Attention.causal_self_attention r ~embed:8 ~heads:2 () in
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) attn.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.rand_normal r ~scale:1.0 [| 2; 5; 8 |]) in
  let y = attn.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "shape preserved" [| 2; 5; 8 |] (Tensor.shape (Tape.data y))

let test_attention_causality () =
  (* Changing a future token must not change earlier outputs. *)
  let r = rng () in
  let attn = Nn.Attention.causal_self_attention r ~embed:4 ~heads:1 () in
  let x0 = Tensor.rand_normal r ~scale:1.0 [| 1; 4; 4 |] in
  let x1 = Tensor.copy x0 in
  for j = 0 to 3 do
    Tensor.set x1 [| 0; 3; j |] 9.0
  done;
  let run x =
    let tape = Tape.create () in
    let params = List.map (Tape.var tape) attn.Nn.Layer.params in
    Tape.data (attn.Nn.Layer.apply tape params (Tape.constant tape x))
  in
  let y0 = run x0 and y1 = run x1 in
  for t = 0 to 2 do
    for j = 0 to 3 do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "t=%d j=%d unchanged" t j)
        (Tensor.get y0 [| 0; t; j |])
        (Tensor.get y1 [| 0; t; j |])
    done
  done;
  Alcotest.(check bool) "last position changed" true
    (Float.abs (Tensor.get y0 [| 0; 3; 0 |] -. Tensor.get y1 [| 0; 3; 0 |]) > 1e-9)

let test_transformer_block () =
  let r = rng () in
  let block = Nn.Attention.transformer_block r ~embed:8 ~heads:2 () in
  let tape = Tape.create () in
  let params = List.map (Tape.var tape) block.Nn.Layer.params in
  let x = Tape.constant tape (Tensor.rand_normal r ~scale:1.0 [| 1; 3; 8 |]) in
  let y = block.Nn.Layer.apply tape params x in
  Alcotest.(check (array int)) "block preserves shape" [| 1; 3; 8 |] (Tensor.shape (Tape.data y))

let test_operator_layer_trains () =
  (* A Syno conv operator substituted as a layer learns the synthetic
     vision task clearly above chance. *)
  let r = rng () in
  let data =
    Dataset.Synth_vision.generate r ~classes:3 ~channels:4 ~size:8 ~motif:3
      ~train_batches:8 ~eval_batches:3 ~batch_size:16 ()
  in
  let make_op rng (stage : Backbones.Proxy.stage_shape) =
    let valuation =
      Syno.Zoo.Vars.conv_valuation ~n:16 ~c_in:stage.Backbones.Proxy.in_ch
        ~c_out:stage.Backbones.Proxy.out_ch ~hw:stage.Backbones.Proxy.hw ~k:3 ~g:2 ~s:2 ()
    in
    Nn.Layer.of_operator rng ~name:"conv"
      (Lower.Reference.compile Syno.Zoo.conv2d.Syno.Zoo.operator valuation)
  in
  let model =
    Backbones.Proxy.vision_model r ~make_op ~in_channels:4 ~channels:8 ~classes:3 ~size:8 ()
  in
  let opt = Nn.Optimizer.sgd ~momentum:0.9 ~lr:0.05 () in
  let h =
    Nn.Train.fit model opt ~epochs:10 ~train:data.Dataset.Synth_vision.train
      ~eval:data.Dataset.Synth_vision.eval
  in
  Alcotest.(check bool)
    (Printf.sprintf "above chance (got %.2f)" h.Nn.Train.final_eval_accuracy)
    true
    (h.Nn.Train.final_eval_accuracy > 0.5)

let () =
  Alcotest.run "nn"
    [
      ( "layers",
        [
          Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
          Alcotest.test_case "sequential/residual" `Quick test_sequential_residual;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "sgd" `Quick test_sgd;
          Alcotest.test_case "adam" `Quick test_adam;
          Alcotest.test_case "cosine" `Quick test_cosine_schedule;
        ] );
      ( "training",
        [
          Alcotest.test_case "linear model learns" `Quick test_linear_model_learns;
          Alcotest.test_case "operator layer trains" `Slow test_operator_layer_trains;
        ] );
      ( "attention",
        [
          Alcotest.test_case "shapes" `Quick test_attention_shapes;
          Alcotest.test_case "causality" `Quick test_attention_causality;
          Alcotest.test_case "transformer block" `Quick test_transformer_block;
        ] );
    ]
