(* Cross-cutting property tests on randomly synthesized operators.

   These exercise the paper's core invariants end to end: the search
   only emits canonical operators; the shape-distance bound never
   overestimates along a real synthesis path (so Algorithm 1's pruning
   is sound); staging never exceeds the naive cost; and every
   synthesized operator is a *linear* map, as \u{00a7}4 requires. *)

module Size = Shape.Size
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Distance = Pgraph.Distance
module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Zoo = Syno.Zoo

let conv_cfg ?(max_prims = 7) () =
  let open Zoo.Vars in
  let sz = Size.of_var in
  let valuations = [ Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:8 ~k:3 ~g:2 ~s:2 () ] in
  let base =
    Search.Enumerate.default_config
      ~output_shape:[ sz n; sz c_out; sz h; sz w ]
      ~desired_shape:[ sz n; sz c_in; sz h; sz w ]
      ~valuations ()
  in
  {
    base with
    Search.Enumerate.max_prims;
    coefficient_candidates = [ sz k; sz s ];
    reduce_candidates = [ sz c_in; sz k ];
    frozen_sizes = [ sz n ];
  }

let sample_operator seed =
  let cfg = conv_cfg () in
  let rng = Rng.create ~seed in
  (cfg, Search.Enumerate.random_completion cfg rng ~use_distance:true)

let small_valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:8 ~k:3 ~g:2 ~s:2 ()

let seed_arb = QCheck.(int_range 0 1_000_000)

(* 1. Everything the guided random synthesis emits replays through the
      canonicalizer: the search space is canonical by construction. *)
let prop_search_output_canonical =
  QCheck.Test.make ~name:"search output is canonical" ~count:40 seed_arb (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | cfg, Some op ->
          Pgraph.Canon.trace_is_canonical cfg.Search.Enumerate.canon
            cfg.Search.Enumerate.output_shape op.Graph.op_trace)

(* 2. Shape-distance admissibility along real synthesis paths: at every
      prefix, the bound is at most the number of primitives the path
      actually still used. *)
let prop_distance_admissible =
  QCheck.Test.make ~name:"shape distance never overestimates" ~count:120 seed_arb
    (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | cfg, Some op ->
          let dist = Distance.create () in
          let total = List.length op.Graph.op_trace in
          let rec check g i = function
            | [] -> true
            | p :: rest ->
                let ok =
                  match
                    Distance.distance dist ~current:(Graph.frontier_sizes g)
                      ~desired:cfg.Search.Enumerate.desired_shape
                  with
                  | Some d -> d <= total - i
                  | None -> false
                in
                ok && check (Graph.apply_exn g p) (i + 1) rest
          in
          check (Graph.init cfg.Search.Enumerate.output_shape) 0 op.Graph.op_trace)

(* 3. Staging never exceeds the naive cost, and its stage costs add up. *)
let prop_staging_bounded =
  QCheck.Test.make ~name:"staged flops <= naive flops" ~count:40 seed_arb (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | _, Some op ->
          let plan = Lower.Staging.optimize op small_valuation in
          let stage_sum =
            List.fold_left (fun acc s -> acc + s.Lower.Staging.flops) 0 plan.Lower.Staging.stages
          in
          plan.Lower.Staging.total_flops <= plan.Lower.Staging.naive_flops
          && stage_sum + plan.Lower.Staging.final_flops = plan.Lower.Staging.total_flops)

(* 4. Synthesized operators are linear in the input (\u{00a7}4: Syno searches
      for linear operators): f(ax + by) = a f(x) + b f(y). *)
let prop_linearity =
  QCheck.Test.make ~name:"operators are linear maps" ~count:25 seed_arb (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | _, Some op ->
          let r = Lower.Reference.compile op small_valuation in
          let rng = Rng.create ~seed:(seed + 7) in
          let shape = Lower.Reference.input_shape r in
          let x = Tensor.rand_normal rng ~scale:1.0 shape in
          let y = Tensor.rand_normal rng ~scale:1.0 shape in
          let weights = Lower.Reference.init_weights r rng in
          let f t = Lower.Reference.forward r ~input:t ~weights in
          let a = 1.7 and b = -0.6 in
          let combo = Tensor.add (Tensor.scale a x) (Tensor.scale b y) in
          let lhs = f combo in
          let rhs = Tensor.add (Tensor.scale a (f x)) (Tensor.scale b (f y)) in
          Tensor.equal ~eps:1e-4 lhs rhs)

(* 5. Homogeneity in each weight group: scaling one group scales the
      output by the same factor (multilinearity of the contraction). *)
let prop_weight_multilinearity =
  QCheck.Test.make ~name:"output is multilinear in the weights" ~count:25 seed_arb
    (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | _, Some op ->
          let r = Lower.Reference.compile op small_valuation in
          let rng = Rng.create ~seed:(seed + 13) in
          let x = Tensor.rand_normal rng ~scale:1.0 (Lower.Reference.input_shape r) in
          let weights = Lower.Reference.init_weights r rng in
          (match weights with
          | [] -> true
          | w0 :: rest ->
              let base = Lower.Reference.forward r ~input:x ~weights in
              let scaled =
                Lower.Reference.forward r ~input:x ~weights:(Tensor.scale 3.0 w0 :: rest)
              in
              Tensor.equal ~eps:1e-4 scaled (Tensor.scale 3.0 base)))

(* 6. Operator FLOPs and params evaluate consistently across the two
      independent implementations (Flops vs Reference). *)
let prop_flops_consistent =
  QCheck.Test.make ~name:"flops accounting agrees with the compiled loop nest" ~count:40
    seed_arb (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | _, Some op ->
          let r = Lower.Reference.compile op small_valuation in
          Lower.Reference.flops r = Pgraph.Flops.naive_flops op small_valuation)

(* 7. Completion shape contract: input expressions evaluate within the
      declared input bounds... except where Unfold clipping applies, in
      which case they may stray by less than the window radius. *)
let prop_signature_deterministic =
  QCheck.Test.make ~name:"operator signature is deterministic" ~count:40 seed_arb
    (fun seed ->
      match sample_operator seed with
      | _, None -> true
      | cfg, Some op -> (
          (* rebuilding from the same trace gives the same signature *)
          match
            Result.bind
              (Graph.apply_all (Graph.init cfg.Search.Enumerate.output_shape) op.Graph.op_trace)
              (fun g -> Graph.complete g ~desired:cfg.Search.Enumerate.desired_shape)
          with
          | Ok op' -> Graph.operator_signature op = Graph.operator_signature op'
          | Error _ -> false))

let () =
  Alcotest.run "properties"
    [
      ( "search-invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_search_output_canonical;
            prop_distance_admissible;
            prop_signature_deterministic;
          ] );
      ( "cost-invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_staging_bounded; prop_flops_consistent ] );
      ( "semantics-invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_linearity; prop_weight_multilinearity ] );
    ]
