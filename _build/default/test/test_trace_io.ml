(* Serialization round-trip tests for operators. *)

module Size = Shape.Size
module Var = Shape.Var
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Trace_io = Pgraph.Trace_io
module Zoo = Syno.Zoo

let size = Alcotest.testable Size.pp Size.equal

let test_size_roundtrip () =
  let cases =
    [
      Size.of_int 4;
      Size.of_var (Var.primary "C_in");
      Size.of_var (Var.coefficient "k");
      Size.mul (Size.of_int 2) (Size.mul (Size.of_var (Var.primary "H")) (Size.var_pow (Var.coefficient "s") (-1)));
      Size.mul (Size.var_pow (Var.coefficient "g") (-1)) (Size.of_var (Var.primary "C_out"));
    ]
  in
  List.iter
    (fun s ->
      match Trace_io.size_of_string (Trace_io.size_to_string s) with
      | Ok s' -> Alcotest.check size (Trace_io.size_to_string s) s s'
      | Error e -> Alcotest.failf "parse of %S failed: %s" (Trace_io.size_to_string s) e)
    cases

let test_size_errors () =
  let bad = [ ""; "H^x"; "-3"; "0"; "H^-1"; "a b" ] in
  List.iter
    (fun t ->
      match Trace_io.size_of_string t with
      | Error _ -> ()
      | Ok s -> Alcotest.failf "%S should not parse (got %s)" t (Size.to_string s))
    bad

let test_prim_roundtrip () =
  let k = Size.of_var (Var.coefficient "k") in
  let cases =
    [
      Prim.Split (0, 3);
      Prim.Merge (1, k);
      Prim.Shift 2;
      Prim.Unfold (2, 5);
      Prim.Expand 0;
      Prim.Stride (1, k);
      Prim.Reduce (Size.of_var (Var.primary "C_in"));
      Prim.Share (4, Prim.New_group);
      Prim.Share (4, Prim.Current_group);
      Prim.Match 1;
    ]
  in
  List.iter
    (fun p ->
      match Trace_io.prim_of_string (Trace_io.prim_to_string p) with
      | Ok p' ->
          Alcotest.(check bool) (Trace_io.prim_to_string p) true (Prim.equal p p')
      | Error e -> Alcotest.failf "parse of %s failed: %s" (Trace_io.prim_to_string p) e)
    cases

let test_prim_errors () =
  List.iter
    (fun t ->
      match Trace_io.prim_of_string t with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" t)
    [ "Bogus(1)"; "Split(1)"; "Share(1,maybe)"; "Match"; "Reduce()" ]

let test_operator_roundtrip_all_zoo () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Zoo.name ^ " roundtrips")
        true
        (Trace_io.roundtrip_exact e.Zoo.operator))
    Zoo.all

let test_parse_with_comments () =
  let text =
    "# a saved operator\nsyno-operator v1\noutput: M Nd\n# the matmul signature\ninput: M Kd\ntrace: Reduce(Kd); Share(2,new); Match(1)\n"
  in
  match Trace_io.of_string text with
  | Ok op ->
      Alcotest.(check int) "weights" 1 (List.length op.Graph.op_weights);
      Alcotest.(check bool) "same as zoo matmul" true
        (Graph.operator_signature op = Graph.operator_signature Zoo.matmul.Zoo.operator)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_errors () =
  List.iter
    (fun t ->
      match Trace_io.of_string t with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %S" t)
    [
      "";
      "not-a-header\noutput: M\ninput: M\ntrace: ";
      "syno-operator v1\ninput: M\ntrace: Shift(0)";
      (* invalid trace: Match without Share *)
      "syno-operator v1\noutput: M Nd\ninput: M Nd\ntrace: Match(1)";
      (* completes against the wrong shape *)
      "syno-operator v1\noutput: M Nd\ninput: M Kd\ntrace: Shift(0)";
    ]

(* Property: random synthesized operators survive the round trip. *)
let roundtrip_property =
  QCheck.Test.make ~name:"random operators roundtrip" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let open Zoo.Vars in
      let sz = Size.of_var in
      let valuations =
        [ Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:8 ~k:3 ~g:2 ~s:2 () ]
      in
      let base =
        Search.Enumerate.default_config
          ~output_shape:[ sz n; sz c_out; sz h; sz w ]
          ~desired_shape:[ sz n; sz c_in; sz h; sz w ]
          ~valuations ()
      in
      let cfg =
        {
          base with
          Search.Enumerate.max_prims = 7;
          coefficient_candidates = [ sz k; sz s ];
          reduce_candidates = [ sz c_in; sz k ];
          frozen_sizes = [ sz n ];
        }
      in
      let rng = Nd.Rng.create ~seed in
      match Search.Enumerate.random_completion cfg rng ~use_distance:true with
      | None -> true
      | Some op -> Trace_io.roundtrip_exact op)

let () =
  Alcotest.run "trace_io"
    [
      ( "sizes",
        [
          Alcotest.test_case "roundtrip" `Quick test_size_roundtrip;
          Alcotest.test_case "errors" `Quick test_size_errors;
        ] );
      ( "prims",
        [
          Alcotest.test_case "roundtrip" `Quick test_prim_roundtrip;
          Alcotest.test_case "errors" `Quick test_prim_errors;
        ] );
      ( "operators",
        [
          Alcotest.test_case "zoo roundtrip" `Quick test_operator_roundtrip_all_zoo;
          Alcotest.test_case "comments" `Quick test_parse_with_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest roundtrip_property ]);
    ]
