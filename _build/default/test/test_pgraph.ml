(* Tests for pGraph construction, completion, and canonicalization. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify
module Prim = Pgraph.Prim
module Graph = Pgraph.Graph
module Canon = Pgraph.Canon

let n = Var.primary "N"
let c_in = Var.primary "C_in"
let c_out = Var.primary "C_out"
let h = Var.primary "H"
let w = Var.primary "W"
let m = Var.primary "M"
let nn = Var.primary "Nd"
let kk = Var.primary "K"
let k = Var.coefficient "k"
let s = Var.coefficient "s"

let sz = Size.of_var

let conv_valuation =
  Valuation.of_list
    [ (n, 2); (c_in, 8); (c_out, 16); (h, 16); (w, 16); (m, 8); (nn, 8); (kk, 8); (k, 3); (s, 2) ]

let ctx = Simplify.ctx ~approx_factor:None [ conv_valuation ]
let cfg = Canon.default_config ctx

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* The matmul of Table 2: out[i:M, j:N] += in[i, r] * w[r, j]. *)
let build_matmul () =
  let g = Graph.init [ sz m; sz nn ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz kk))) in
  let g = ok_or_fail (Graph.apply g (Prim.Share (2, Prim.New_group))) in
  let g = ok_or_fail (Graph.apply g (Prim.Match 1)) in
  ok_or_fail (Graph.complete g ~desired:[ sz m; sz kk ])

let test_matmul () =
  let op = build_matmul () in
  Alcotest.(check int) "one weight group" 1 (List.length op.Graph.op_weights);
  Alcotest.(check int) "weight rank 2" 2 (List.length (List.hd op.Graph.op_weights));
  Alcotest.(check int) "two input dims" 2 (List.length op.Graph.op_input_exprs);
  Alcotest.(check int) "one reduction" 1 (List.length op.Graph.op_reductions)

(* Average pooling of Table 2: out[i] += in[s*i + r_s]. *)
let build_avgpool () =
  let out_h = Size.mul (Size.var_pow s (-1)) (sz h) in
  let g = Graph.init [ out_h ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz s))) in
  let g = ok_or_fail (Graph.apply g (Prim.Split (0, 1))) in
  ok_or_fail (Graph.complete g ~desired:[ sz h ])

let test_avgpool () =
  let op = build_avgpool () in
  Alcotest.(check int) "no weights" 0 (List.length op.Graph.op_weights);
  let e = List.hd op.Graph.op_input_exprs in
  (* s*i + r *)
  let lookup = Valuation.lookup conv_valuation in
  let v = Ast.eval ~env:(fun id -> if id = 0 then 3 else 1) ~lookup e in
  Alcotest.(check int) "s*3+1" 7 v

(* The full conv2d of Fig. 2 in canonical order. *)
let conv_trace =
  [
    Prim.Reduce (sz c_in);
    (* frontier: N C_out H W r_Ci *)
    Prim.Reduce (sz k);
    Prim.Reduce (sz k);
    (* frontier: N C_out H W r_Ci r_KH r_KW *)
    Prim.Share (4, Prim.New_group);
    Prim.Share (5, Prim.Current_group);
    Prim.Unfold (2, 5);
    (* H window; frontier: N C_out H' W r_Ci r_KW *)
    Prim.Share (5, Prim.Current_group);
    Prim.Unfold (3, 5);
    (* frontier: N C_out H' W' r_Ci *)
    Prim.Match 1;
    (* C_out to the weight *)
  ]

let build_conv () =
  let g = Graph.init [ sz n; sz c_out; sz h; sz w ] in
  let g = ok_or_fail (Graph.apply_all g conv_trace) in
  ok_or_fail (Graph.complete g ~desired:[ sz n; sz c_in; sz h; sz w ])

let test_conv () =
  let op = build_conv () in
  Alcotest.(check int) "weight groups" 1 (List.length op.Graph.op_weights);
  Alcotest.(check int) "weight rank 4" 4 (List.length (List.hd op.Graph.op_weights));
  Alcotest.(check int) "three reductions" 3 (List.length op.Graph.op_reductions);
  (* Input H expression is i_H + r_KH - k/2. *)
  let lookup = Valuation.lookup conv_valuation in
  let e_h = List.nth op.Graph.op_input_exprs 2 in
  let env id = match id with 2 -> 5 | 5 -> 2 | _ -> 0 in
  Alcotest.(check int) "unfold centering" 6 (Ast.eval ~env ~lookup e_h)

let test_conv_is_canonical () =
  Alcotest.(check bool) "conv trace canonical" true
    (Canon.trace_is_canonical cfg [ sz n; sz c_out; sz h; sz w ] conv_trace)

(* --- Structural error cases ------------------------------------------- *)

let test_merge_requires_divisibility () =
  let g = Graph.init [ sz h ] in
  (match Graph.apply g (Prim.Merge (0, sz c_in)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merge by non-divisor must fail");
  match Graph.apply g (Prim.Merge (0, sz s)) with
  | Ok g' ->
      Alcotest.(check int) "two dims after merge" 2 (List.length (Graph.frontier g'))
  | Error msg -> Alcotest.failf "merge by s should work: %s" msg

let test_share_requires_bare_iter () =
  let g = Graph.init [ sz h ] in
  let g = ok_or_fail (Graph.apply g (Prim.Merge (0, sz s))) in
  match Graph.apply g (Prim.Share (0, Prim.New_group)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Share of a compound expression must fail"

let test_match_needs_group () =
  let g = Graph.init [ sz m; sz nn ] in
  match Graph.apply g (Prim.Match 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Match without a weight group must fail"

let test_pending_stride () =
  let g = Graph.init [ sz h ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz k))) in
  let g = ok_or_fail (Graph.apply g (Prim.Stride (1, sz s))) in
  (* The strided dim may not be merged... *)
  (match Graph.apply g (Prim.Merge (1, sz s)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "view on a pending-stride dim must fail");
  (* ... but may be an Unfold window (dilated convolution). *)
  let g = ok_or_fail (Graph.apply g (Prim.Unfold (0, 1))) in
  Alcotest.(check int) "window folded" 1 (List.length (Graph.frontier g))

let test_incomplete_rejected () =
  let g = Graph.init [ sz m; sz nn ] in
  match Graph.complete g ~desired:[ sz m; sz kk ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched shape must not complete"

let test_unused_spatial_rejected () =
  (* Expanding away an output dim without other use replicates data;
     matching then forgets i entirely. *)
  let g = Graph.init [ sz m; sz m ] in
  let g = ok_or_fail (Graph.apply g (Prim.Expand 1)) in
  match Graph.complete g ~desired:[ sz m ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unused output iterator must be rejected"

let test_futile_reduce_rejected () =
  (* A reduction iterator that ends up in exactly one weight group and
     nowhere else only scales the result. *)
  let g = Graph.init [ sz m ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz kk))) in
  let g = ok_or_fail (Graph.apply g (Prim.Share (0, Prim.New_group))) in
  let g = ok_or_fail (Graph.apply g (Prim.Match 1)) in
  (match Graph.complete g ~desired:[ sz m ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "futile reduction must be rejected");
  (* The canonicalizer already rejects the stranding Match up front. *)
  let g2 = Graph.init [ sz m ] in
  let g2 = ok_or_fail (Graph.apply g2 (Prim.Reduce (sz kk))) in
  let g2 = ok_or_fail (Graph.apply g2 (Prim.Share (0, Prim.New_group))) in
  Alcotest.(check bool) "canon rejects stranding Match" false
    (Canon.is_canonical cfg g2 (Prim.Match 1))

(* --- Canonicalization --------------------------------------------------- *)

let test_merge_above_split_uncanonical () =
  (* Fig. 3(a): Split then Merge(B*C) is not canonical. *)
  let a = Var.primary "A" in
  let b = Var.coefficient "b" in
  let c = Var.coefficient "c" in
  let v = Valuation.of_list [ (a, 4); (b, 6); (c, 2) ] in
  let cfg = Canon.default_config (Simplify.ctx ~approx_factor:None [ v ]) in
  let g = Graph.init [ Size.mul (sz a) (sz b); sz c ] in
  let g = ok_or_fail (Graph.apply g (Prim.Split (0, 1))) in
  Alcotest.(check bool) "Merge above Split rejected" false
    (Canon.is_canonical cfg g (Prim.Merge (0, Size.mul (sz b) (sz c))))

let test_split_above_merge_uncanonical () =
  (* Merge then Split of the same pieces is the identity. *)
  let g = Graph.init [ Size.mul (sz h) (sz s) ] in
  let g = ok_or_fail (Graph.apply g (Prim.Merge (0, sz s))) in
  Alcotest.(check bool) "Split above Merge rejected" false
    (Canon.is_canonical cfg g (Prim.Split (0, 1)))

let test_expand_of_reduce_uncanonical () =
  let g = Graph.init [ sz m ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz kk))) in
  Alcotest.(check bool) "Expand of Reduce rejected" false
    (Canon.is_canonical cfg g (Prim.Expand 1))

let test_ordering_views_before_contractions () =
  (* A view on an untouched dim after an independent Reduce is not
     canonical: it should have been applied before. *)
  let g = Graph.init [ sz h; sz w ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz k))) in
  Alcotest.(check bool) "late independent Merge rejected" false
    (Canon.is_canonical cfg g (Prim.Merge (0, sz s)));
  (* But a view involving the Reduce-created dim is fine. *)
  Alcotest.(check bool) "Unfold of the reduce dim accepted" true
    (Canon.is_canonical cfg g (Prim.Unfold (0, 2)))

let test_budgets () =
  let g = Graph.init [ sz h; sz w; sz m ] in
  let g = ok_or_fail (Graph.apply g (Prim.Expand 0)) in
  Alcotest.(check bool) "second Expand rejected" false
    (Canon.is_canonical cfg g (Prim.Expand 0))

let test_reduce_one_rejected () =
  let g = Graph.init [ sz h ] in
  Alcotest.(check bool) "Reduce(1) rejected" false
    (Canon.is_canonical cfg g (Prim.Reduce Size.one))

let test_unfold_window_size () =
  (* A window larger than the main dim is rejected. *)
  let g = Graph.init [ sz s ] in
  (* dom 2 *)
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz h))) in
  Alcotest.(check bool) "oversized window rejected" false
    (Canon.is_canonical cfg g (Prim.Unfold (0, 1)))

(* --- Shape distance ------------------------------------------------------ *)

let dist = Pgraph.Distance.create ()

let test_distance_zero_when_matched () =
  Alcotest.(check (option int))
    "identical" (Some 0)
    (Pgraph.Distance.distance dist ~current:[ sz m; sz kk ] ~desired:[ sz m; sz kk ]);
  Alcotest.(check (option int))
    "permutation is free" (Some 0)
    (Pgraph.Distance.distance dist ~current:[ sz kk; sz m ] ~desired:[ sz m; sz kk ])

let test_distance_paper_example () =
  (* §7.1: [C_in, s^-1*H, s*W, k] vs [C_in, H, W] has distance 3. *)
  let current =
    [ sz c_in; Size.mul (Size.var_pow s (-1)) (sz h); Size.mul (sz s) (sz w); sz k ]
  in
  Alcotest.(check (option int))
    "paper example" (Some 3)
    (Pgraph.Distance.distance dist ~current ~desired:[ sz c_in; sz h; sz w ])

let test_distance_regroup () =
  (* [H*W] vs [H, W]: a single Merge. *)
  Alcotest.(check (option int))
    "one merge" (Some 1)
    (Pgraph.Distance.distance dist ~current:[ Size.mul (sz h) (sz w) ] ~desired:[ sz h; sz w ]);
  (* [H, W] vs [H*W]: a single Split. *)
  Alcotest.(check (option int))
    "one split" (Some 1)
    (Pgraph.Distance.distance dist ~current:[ sz h; sz w ] ~desired:[ Size.mul (sz h) (sz w) ])

let test_distance_window_elimination () =
  (* [H, k] vs [H]: one Unfold. *)
  Alcotest.(check (option int))
    "unfold needed" (Some 1)
    (Pgraph.Distance.distance dist ~current:[ sz h; sz k ] ~desired:[ sz h ])

let test_distance_unreachable () =
  (* A desired dim with no counterpart needs a Reduce to introduce the
     missing variable: one step. *)
  Alcotest.(check (option int))
    "reduce introduces missing variable" (Some 1)
    (Pgraph.Distance.distance dist ~current:[ sz h ] ~desired:[ sz h; sz c_in ]);
  (* ... but a primary variable cannot be manufactured into an existing
     group's product. *)
  Alcotest.(check (option int))
    "cannot regroup into missing primary" None
    (Pgraph.Distance.distance dist ~current:[ sz h ] ~desired:[ Size.mul (sz h) (sz c_in) ])

let test_distance_conv_prefix () =
  (* Partial conv pGraph states must stay within a small distance. *)
  let g = Graph.init [ sz n; sz c_out; sz h; sz w ] in
  let g = ok_or_fail (Graph.apply g (Prim.Reduce (sz c_in))) in
  let d =
    Pgraph.Distance.distance dist ~current:(Graph.frontier_sizes g)
      ~desired:[ sz n; sz c_in; sz h; sz w ]
  in
  match d with
  | Some d -> Alcotest.(check bool) "reachable and small" true (d <= 2)
  | None -> Alcotest.fail "conv prefix must be reachable"

(* --- FLOPs ---------------------------------------------------------------- *)

let test_flops_matmul () =
  let op = build_matmul () in
  (* M=8, N=8, K=8: 2*M*N*K = 1024 *)
  Alcotest.(check int) "matmul flops" 1024 (Pgraph.Flops.naive_flops op conv_valuation);
  Alcotest.(check int) "matmul params" 64 (Pgraph.Flops.params op conv_valuation);
  Alcotest.(check int) "in elems" 64 (Pgraph.Flops.input_elems op conv_valuation);
  Alcotest.(check int) "out elems" 64 (Pgraph.Flops.output_elems op conv_valuation)

let test_flops_conv () =
  let op = build_conv () in
  (* 2 * (N*C_out*H*W) * (C_in*k*k) *)
  let expected = 2 * (2 * 16 * 16 * 16) * (8 * 3 * 3) in
  Alcotest.(check int) "conv flops" expected (Pgraph.Flops.naive_flops op conv_valuation);
  Alcotest.(check int) "conv params" (16 * 8 * 3 * 3) (Pgraph.Flops.params op conv_valuation)

let test_budgets_flops () =
  let op = build_matmul () in
  Alcotest.(check bool) "within" true
    (Pgraph.Flops.within_budgets ~max_flops:2000 op [ conv_valuation ]);
  Alcotest.(check bool) "exceeded" false
    (Pgraph.Flops.within_budgets ~max_flops:1000 op [ conv_valuation ])

let () =
  Alcotest.run "pgraph"
    [
      ( "operators",
        [
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "avgpool" `Quick test_avgpool;
          Alcotest.test_case "conv2d" `Quick test_conv;
          Alcotest.test_case "conv canonical" `Quick test_conv_is_canonical;
        ] );
      ( "structure",
        [
          Alcotest.test_case "merge divisibility" `Quick test_merge_requires_divisibility;
          Alcotest.test_case "share bare iter" `Quick test_share_requires_bare_iter;
          Alcotest.test_case "match needs group" `Quick test_match_needs_group;
          Alcotest.test_case "pending stride" `Quick test_pending_stride;
          Alcotest.test_case "incomplete rejected" `Quick test_incomplete_rejected;
          Alcotest.test_case "unused spatial" `Quick test_unused_spatial_rejected;
          Alcotest.test_case "futile reduce" `Quick test_futile_reduce_rejected;
        ] );
      ( "canon",
        [
          Alcotest.test_case "merge above split" `Quick test_merge_above_split_uncanonical;
          Alcotest.test_case "split above merge" `Quick test_split_above_merge_uncanonical;
          Alcotest.test_case "expand of reduce" `Quick test_expand_of_reduce_uncanonical;
          Alcotest.test_case "ordering" `Quick test_ordering_views_before_contractions;
          Alcotest.test_case "budgets" `Quick test_budgets;
          Alcotest.test_case "reduce(1)" `Quick test_reduce_one_rejected;
          Alcotest.test_case "unfold window size" `Quick test_unfold_window_size;
        ] );
      ( "distance",
        [
          Alcotest.test_case "zero when matched" `Quick test_distance_zero_when_matched;
          Alcotest.test_case "paper example" `Quick test_distance_paper_example;
          Alcotest.test_case "regroup" `Quick test_distance_regroup;
          Alcotest.test_case "window elimination" `Quick test_distance_window_elimination;
          Alcotest.test_case "unreachable" `Quick test_distance_unreachable;
          Alcotest.test_case "conv prefix" `Quick test_distance_conv_prefix;
        ] );
      ( "flops",
        [
          Alcotest.test_case "matmul" `Quick test_flops_matmul;
          Alcotest.test_case "conv" `Quick test_flops_conv;
          Alcotest.test_case "budgets" `Quick test_budgets_flops;
        ] );
    ]
