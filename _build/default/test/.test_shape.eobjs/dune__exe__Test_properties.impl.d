test/test_properties.ml: Alcotest List Lower Nd Pgraph QCheck QCheck_alcotest Result Search Shape Syno
