test/test_nd.ml: Alcotest Array Float List Nd QCheck QCheck_alcotest String
