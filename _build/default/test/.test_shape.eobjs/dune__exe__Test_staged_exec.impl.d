test/test_staged_exec.ml: Alcotest Array Float List Lower Nd Pgraph QCheck QCheck_alcotest Search Shape Syno
