test/test_coord.mli:
