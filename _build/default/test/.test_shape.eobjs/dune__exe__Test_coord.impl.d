test/test_coord.ml: Alcotest Coord List QCheck QCheck_alcotest Shape
