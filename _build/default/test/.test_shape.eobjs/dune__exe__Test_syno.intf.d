test/test_syno.mli:
