test/test_nn.ml: Alcotest Array Backbones Dataset Float Grad List Lower Nd Nn Printf Syno
