test/test_perf.ml: Alcotest List Perf Syno
