test/test_trace_io.ml: Alcotest List Nd Pgraph QCheck QCheck_alcotest Search Shape Syno
