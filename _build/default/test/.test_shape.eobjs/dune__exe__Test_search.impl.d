test/test_search.ml: Alcotest Coord List Nd Pgraph Printf Search Shape Syno
