test/test_backbones.ml: Alcotest Array Backbones Dataset Float Grad List Nd Nn Printf
