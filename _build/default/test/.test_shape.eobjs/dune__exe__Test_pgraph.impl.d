test/test_pgraph.ml: Alcotest Coord List Pgraph Shape
