test/test_backbones.mli:
