test/test_nd.mli:
