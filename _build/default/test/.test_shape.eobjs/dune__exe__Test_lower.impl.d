test/test_lower.ml: Alcotest Array Astring Coord Float List Lower Nd Pgraph Shape
