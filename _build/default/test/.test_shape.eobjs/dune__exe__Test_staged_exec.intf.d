test/test_staged_exec.mli:
