test/test_dataset.ml: Alcotest Array Dataset Float List Nd Nn Printf
