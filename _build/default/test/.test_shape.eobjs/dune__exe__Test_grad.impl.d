test/test_grad.ml: Alcotest Array Float Grad List Nd Printf
