test/test_syno.ml: Alcotest Array Backbones Coord Float List Lower Nd Perf Pgraph Printf Shape String Syno
