test/test_grad.mli:
