(* Tests for the synthetic datasets. *)

module Tensor = Nd.Tensor
module Rng = Nd.Rng

let test_vision_shapes () =
  let rng = Rng.create ~seed:1 in
  let d =
    Dataset.Synth_vision.generate rng ~classes:5 ~channels:2 ~size:10 ~train_batches:3
      ~eval_batches:2 ~batch_size:4 ()
  in
  Alcotest.(check int) "train batches" 3 (List.length d.Dataset.Synth_vision.train);
  Alcotest.(check int) "eval batches" 2 (List.length d.Dataset.Synth_vision.eval);
  List.iter
    (fun b ->
      Alcotest.(check (array int)) "image shape" [| 4; 2; 10; 10 |]
        (Tensor.shape b.Nn.Train.images);
      Array.iter
        (fun l -> Alcotest.(check bool) "label range" true (l >= 0 && l < 5))
        b.Nn.Train.labels)
    d.Dataset.Synth_vision.train

let test_vision_deterministic () =
  let gen () =
    let rng = Rng.create ~seed:42 in
    Dataset.Synth_vision.generate rng ~train_batches:2 ~eval_batches:1 ~batch_size:4 ()
  in
  let a = gen () and b = gen () in
  let ba = List.hd a.Dataset.Synth_vision.train and bb = List.hd b.Dataset.Synth_vision.train in
  Alcotest.(check bool) "same images" true (Tensor.equal ba.Nn.Train.images bb.Nn.Train.images);
  Alcotest.(check bool) "same labels" true (ba.Nn.Train.labels = bb.Nn.Train.labels)

let test_vision_classes_distinct () =
  (* Images of different classes must differ more (on average) than
     repeated draws of the same class: the motifs carry signal. *)
  let rng = Rng.create ~seed:3 in
  let d =
    Dataset.Synth_vision.generate rng ~classes:2 ~channels:3 ~size:12 ~train_batches:10
      ~eval_batches:1 ~batch_size:16 ()
  in
  (* mean image per class *)
  let sums = Array.init 2 (fun _ -> Tensor.create [| 3; 12; 12 |]) in
  let counts = Array.make 2 0 in
  List.iter
    (fun b ->
      Array.iteri
        (fun i label ->
          counts.(label) <- counts.(label) + 1;
          Tensor.iteri
            (fun idx v ->
              if idx.(0) = i then
                let pos = [| idx.(1); idx.(2); idx.(3) |] in
                Tensor.set sums.(label) pos (Tensor.get sums.(label) pos +. v))
            b.Nn.Train.images)
        b.Nn.Train.labels)
    d.Dataset.Synth_vision.train;
  (* Class means should differ somewhere notably. *)
  let m0 = Tensor.scale (1.0 /. float_of_int counts.(0)) sums.(0) in
  let m1 = Tensor.scale (1.0 /. float_of_int counts.(1)) sums.(1) in
  let diff = Tensor.max_value (Tensor.map Float.abs (Tensor.sub m0 m1)) in
  Alcotest.(check bool) (Printf.sprintf "class means differ (%.3f)" diff) true (diff > 0.3)

let test_lm_shapes () =
  let rng = Rng.create ~seed:5 in
  let d = Dataset.Synth_lm.generate rng ~vocab:16 ~seq_len:8 ~batches:4 ~batch_size:3 () in
  Alcotest.(check int) "batches" 4 (List.length d.Dataset.Synth_lm.batches);
  List.iter
    (fun (inputs, targets) ->
      Alcotest.(check int) "batch size" 3 (Array.length inputs);
      Alcotest.(check int) "seq len" 8 (Array.length inputs.(0));
      (* targets are inputs shifted by one *)
      for b = 0 to 2 do
        for i = 0 to 6 do
          Alcotest.(check int) "shift" inputs.(b).(i + 1) targets.(b).(i)
        done;
        Array.iter
          (fun tok -> Alcotest.(check bool) "token range" true (tok >= 0 && tok < 16))
          inputs.(b)
      done)
    d.Dataset.Synth_lm.batches

let test_lm_entropy () =
  let rng = Rng.create ~seed:6 in
  let d = Dataset.Synth_lm.generate rng ~vocab:32 ~branching:3 () in
  let floor = Dataset.Synth_lm.floor_perplexity d in
  let uniform = Dataset.Synth_lm.uniform_perplexity d in
  Alcotest.(check bool) "floor below uniform" true (floor < uniform);
  Alcotest.(check bool) "floor above 1" true (floor > 1.0);
  (* branching 3 with geometric weights: perplexity well under 4 *)
  Alcotest.(check bool) "floor sane" true (floor < 4.0)

let test_lm_learnable () =
  (* A bigram count model should achieve near-floor perplexity,
     confirming the data really has first-order structure. *)
  let rng = Rng.create ~seed:7 in
  let d = Dataset.Synth_lm.generate rng ~vocab:8 ~seq_len:16 ~batches:60 ~batch_size:8 () in
  let counts = Array.make_matrix 8 8 1.0 in
  let train, eval =
    let rec split n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> split (n - 1) (x :: acc) rest
      | [] -> (List.rev acc, [])
    in
    split 50 [] d.Dataset.Synth_lm.batches
  in
  List.iter
    (fun (inputs, targets) ->
      Array.iteri
        (fun b row ->
          Array.iteri (fun i tok -> counts.(tok).(targets.(b).(i)) <- counts.(tok).(targets.(b).(i)) +. 1.0) row)
        inputs)
    train;
  let row_sums = Array.map (Array.fold_left ( +. ) 0.0) counts in
  let nll = ref 0.0 and n = ref 0 in
  List.iter
    (fun (inputs, targets) ->
      Array.iteri
        (fun b row ->
          Array.iteri
            (fun i tok ->
              let p = counts.(tok).(targets.(b).(i)) /. row_sums.(tok) in
              nll := !nll -. log p;
              incr n)
            row)
        inputs)
    eval;
  let ppl = exp (!nll /. float_of_int !n) in
  Alcotest.(check bool)
    (Printf.sprintf "bigram model near floor (%.2f vs uniform 8)" ppl)
    true (ppl < 4.0)

let () =
  Alcotest.run "dataset"
    [
      ( "vision",
        [
          Alcotest.test_case "shapes" `Quick test_vision_shapes;
          Alcotest.test_case "deterministic" `Quick test_vision_deterministic;
          Alcotest.test_case "classes distinct" `Quick test_vision_classes_distinct;
        ] );
      ( "lm",
        [
          Alcotest.test_case "shapes" `Quick test_lm_shapes;
          Alcotest.test_case "entropy" `Quick test_lm_entropy;
          Alcotest.test_case "learnable" `Quick test_lm_learnable;
        ] );
    ]
