(* Differential and gradient tests for the code generators. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Prim = Pgraph.Prim
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Rng = Nd.Rng
module Reference = Lower.Reference
module Einsum_program = Lower.Einsum_program
module Staging = Lower.Staging

let n = Var.primary "N"
let c_in = Var.primary "C_in"
let c_out = Var.primary "C_out"
let h = Var.primary "H"
let m = Var.primary "M"
let nd_ = Var.primary "Nd"
let kk = Var.primary "K"
let k = Var.coefficient "k"
let s = Var.coefficient "s"
let sz = Size.of_var

let valuation =
  Valuation.of_list
    [ (n, 2); (c_in, 4); (c_out, 6); (h, 12); (m, 5); (nd_, 7); (kk, 4); (k, 3); (s, 2) ]

let ok = function Ok v -> v | Error e -> Alcotest.failf "error: %s" e

let matmul_op () =
  let g = Graph.init [ sz m; sz nd_ ] in
  let g = ok (Graph.apply g (Prim.Reduce (sz kk))) in
  let g = ok (Graph.apply g (Prim.Share (2, Prim.New_group))) in
  let g = ok (Graph.apply g (Prim.Match 1)) in
  ok (Graph.complete g ~desired:[ sz m; sz kk ])

let conv1d_op () =
  (* out[n, co, x] += in[n, ci, x + r - k/2] * w[co, ci, r] *)
  let g = Graph.init [ sz n; sz c_out; sz h ] in
  let g = ok (Graph.apply g (Prim.Reduce (sz c_in))) in
  let g = ok (Graph.apply g (Prim.Reduce (sz k))) in
  let g = ok (Graph.apply g (Prim.Share (3, Prim.New_group))) in
  let g = ok (Graph.apply g (Prim.Share (4, Prim.Current_group))) in
  let g = ok (Graph.apply g (Prim.Unfold (2, 4))) in
  let g = ok (Graph.apply g (Prim.Match 1)) in
  ok (Graph.complete g ~desired:[ sz n; sz c_in; sz h ])

let avgpool_op () =
  let out_h = Size.mul (Size.var_pow s (-1)) (sz h) in
  let g = Graph.init [ out_h ] in
  let g = ok (Graph.apply g (Prim.Reduce (sz s))) in
  let g = ok (Graph.apply g (Prim.Split (0, 1))) in
  ok (Graph.complete g ~desired:[ sz h ])

let shift_op () =
  (* out[i] = in[(i + 1) % H]: a pure view, no weights. *)
  let g = Graph.init [ sz h ] in
  let g = ok (Graph.apply g (Prim.Shift 0)) in
  ok (Graph.complete g ~desired:[ sz h ])

(* --- Reference semantics ------------------------------------------------ *)

let test_matmul_matches_tensor_matmul () =
  let r = Reference.compile (matmul_op ()) valuation in
  let rng = Rng.create ~seed:1 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let out = Reference.forward r ~input:x ~weights:w in
  (* weight iterators are [r_K; j], i.e. the weight is [K, Nd]. *)
  let expected = Tensor.matmul x (List.hd w) in
  Alcotest.(check bool) "matches matmul" true (Tensor.equal ~eps:1e-6 out expected)

let test_avgpool_semantics () =
  let r = Reference.compile (avgpool_op ()) valuation in
  let x = Tensor.init [| 12 |] (fun idx -> float_of_int idx.(0)) in
  let out = Reference.forward r ~input:x ~weights:[] in
  Alcotest.(check (array int)) "out shape" [| 6 |] (Reference.output_shape r);
  (* out[i] = x[2i] + x[2i+1] *)
  Alcotest.(check (float 1e-9)) "out[0]" 1.0 (Tensor.get out [| 0 |]);
  Alcotest.(check (float 1e-9)) "out[5]" 21.0 (Tensor.get out [| 5 |])

let test_shift_semantics () =
  let r = Reference.compile (shift_op ()) valuation in
  let x = Tensor.init [| 12 |] (fun idx -> float_of_int idx.(0)) in
  let out = Reference.forward r ~input:x ~weights:[] in
  Alcotest.(check (float 1e-9)) "out[0] = x[1]" 1.0 (Tensor.get out [| 0 |]);
  Alcotest.(check (float 1e-9)) "out[11] = x[0]" 0.0 (Tensor.get out [| 11 |])

let test_conv_clipping () =
  let r = Reference.compile (conv1d_op ()) valuation in
  let rng = Rng.create ~seed:2 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let out = Reference.forward r ~input:x ~weights:w in
  Alcotest.(check (array int)) "out shape" [| 2; 6; 12 |] (Tensor.shape out);
  (* Manual conv at an interior and a boundary point. *)
  let wt = List.hd w in
  let manual nb co x_pos =
    let acc = ref 0.0 in
    for ci = 0 to 3 do
      for r = 0 to 2 do
        let xi = x_pos + r - 1 in
        if xi >= 0 && xi < 12 then
          (* weight iterators in creation order: r_Ci, r_k, then matched C_out *)
          acc := !acc +. (Tensor.get x [| nb; ci; xi |] *. Tensor.get wt [| ci; r; co |])
      done
    done;
    !acc
  in
  Alcotest.(check (float 1e-6)) "interior" (manual 1 3 5) (Tensor.get out [| 1; 3; 5 |]);
  Alcotest.(check (float 1e-6)) "left boundary" (manual 0 2 0) (Tensor.get out [| 0; 2; 0 |]);
  Alcotest.(check (float 1e-6)) "right boundary" (manual 1 5 11) (Tensor.get out [| 1; 5; 11 |])

(* --- Differential: einsum program vs reference -------------------------- *)

let differential op name =
  let r = Reference.compile op valuation in
  let ep = Einsum_program.compile op valuation in
  let rng = Rng.create ~seed:77 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let a = Reference.forward r ~input:x ~weights:w in
  let b = Einsum_program.forward ep ~input:x ~weights:w in
  Alcotest.(check bool) (name ^ ": both backends agree") true (Tensor.equal ~eps:1e-6 a b)

let test_differential_all () =
  differential (matmul_op ()) "matmul";
  differential (conv1d_op ()) "conv1d";
  differential (avgpool_op ()) "avgpool";
  differential (shift_op ()) "shift"

(* --- Gradient checks ----------------------------------------------------- *)

let loss r ~input ~weights =
  let out = Reference.forward r ~input ~weights in
  (* sum of squares / 2 so that dL/dout = out *)
  0.5 *. Tensor.sum (Tensor.mul out out)

let finite_difference op name =
  let r = Reference.compile op valuation in
  let rng = Rng.create ~seed:5 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Reference.input_shape r) in
  let w = Reference.init_weights r rng in
  let out = Reference.forward r ~input:x ~weights:w in
  let grad_in, grad_ws = Reference.backward r ~input:x ~weights:w ~grad_out:out in
  let eps = 1e-4 in
  let check_tensor label t grad probe_count =
    let data = Tensor.unsafe_data t in
    let g = Tensor.unsafe_data grad in
    let n = Array.length data in
    for p = 0 to probe_count - 1 do
      let i = p * max 1 (n / probe_count) mod n in
      let saved = data.(i) in
      data.(i) <- saved +. eps;
      let l1 = loss r ~input:x ~weights:w in
      data.(i) <- saved -. eps;
      let l0 = loss r ~input:x ~weights:w in
      data.(i) <- saved;
      let numeric = (l1 -. l0) /. (2.0 *. eps) in
      if Float.abs (numeric -. g.(i)) > 1e-2 *. (1.0 +. Float.abs numeric) then
        Alcotest.failf "%s %s[%d]: numeric %.6f vs analytic %.6f" name label i numeric g.(i)
    done
  in
  check_tensor "input" x grad_in 8;
  List.iter2 (fun w gw -> check_tensor "weight" w gw 8) w grad_ws

let test_gradients () =
  finite_difference (matmul_op ()) "matmul";
  finite_difference (conv1d_op ()) "conv1d"

let test_gradients_views () =
  finite_difference (avgpool_op ()) "avgpool"

(* --- Staging (materialized reduction, Fig. 4) --------------------------- *)

let fig4_op () =
  (* The Fig. 4 pattern: a reduction (here over channels) performed
     after an Unfold is evaluated once per window element; materializing
     it first removes the duplication.
     out[co, x] = sum_ci sum_rk in[ci, x + rk - k/2] * w[ci, co] *)
  let g = Graph.init [ sz c_out; sz h ] in
  let g = ok (Graph.apply g (Prim.Reduce (sz c_in))) in
  let g = ok (Graph.apply g (Prim.Reduce (sz k))) in
  let g = ok (Graph.apply g (Prim.Share (2, Prim.New_group))) in
  let g = ok (Graph.apply g (Prim.Unfold (1, 3))) in
  let g = ok (Graph.apply g (Prim.Match 0)) in
  ok (Graph.complete g ~desired:[ sz c_in; sz h ])

let test_staging_fig4 () =
  let op = fig4_op () in
  let plan = Staging.optimize op valuation in
  (* Naive: 2 * (C_out*H) * (C_in*k) = 2*72*12 = 1728. *)
  Alcotest.(check int) "naive flops" 1728 plan.Staging.naive_flops;
  Alcotest.(check bool) "staging helps" true (plan.Staging.total_flops < plan.Staging.naive_flops);
  Alcotest.(check bool) "at least one stage" true (plan.Staging.stages <> []);
  (* Optimal: materialize the window sum Z[ci, x'] = sum_rk X[ci, x'+rk-k/2]
     (2*48*3 = 288 flops), then contract channels (2*72*4 = 576). *)
  Alcotest.(check int) "optimal staged flops" 864 plan.Staging.total_flops;
  Alcotest.(check bool) "speedup reported" true (Staging.speedup plan > 1.5)

let test_staging_matmul_no_gain () =
  let plan = Staging.optimize (matmul_op ()) valuation in
  Alcotest.(check int) "matmul cannot stage below naive" plan.Staging.naive_flops
    plan.Staging.total_flops

(* --- Textual codegen ------------------------------------------------------ *)

let test_codegen_text () =
  let ep = Einsum_program.compile (matmul_op ()) valuation in
  let py = Einsum_program.to_pytorch ep in
  Alcotest.(check bool) "pytorch has einsum" true
    (Astring.String.is_infix ~affix:"torch.einsum" py);
  let te = Einsum_program.to_te ep in
  Alcotest.(check bool) "te has RDom" true (Astring.String.is_infix ~affix:"RDom" te)

let () =
  Alcotest.run "lower"
    [
      ( "reference",
        [
          Alcotest.test_case "matmul" `Quick test_matmul_matches_tensor_matmul;
          Alcotest.test_case "avgpool" `Quick test_avgpool_semantics;
          Alcotest.test_case "shift" `Quick test_shift_semantics;
          Alcotest.test_case "conv clipping" `Quick test_conv_clipping;
        ] );
      ("differential", [ Alcotest.test_case "all backends" `Quick test_differential_all ]);
      ( "gradients",
        [
          Alcotest.test_case "contractions" `Quick test_gradients;
          Alcotest.test_case "views" `Quick test_gradients_views;
        ] );
      ( "staging",
        [
          Alcotest.test_case "fig4" `Quick test_staging_fig4;
          Alcotest.test_case "matmul no gain" `Quick test_staging_matmul_no_gain;
        ] );
      ("codegen", [ Alcotest.test_case "text" `Quick test_codegen_text ]);
    ]
