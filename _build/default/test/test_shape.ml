(* Unit and property tests for the symbolic size algebra. *)

module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation

let h = Var.primary "H"
let w = Var.primary "W"
let c_in = Var.primary "C_in"
let k = Var.coefficient "k"
let s = Var.coefficient "s"

let valuation = Valuation.of_list [ (h, 32); (w, 32); (c_in, 64); (k, 3); (s, 2) ]
let lookup = Valuation.lookup valuation

let size = Alcotest.testable Size.pp Size.equal

let test_var_kinds () =
  Alcotest.(check bool) "H primary" true (Var.is_primary h);
  Alcotest.(check bool) "k coefficient" true (Var.is_coefficient k);
  Alcotest.(check bool) "same name same var" true (Var.equal h (Var.primary "H"));
  Alcotest.(check bool) "kind distinguishes" false (Var.equal h (Var.coefficient "H"))

let test_mul_eval () =
  let hw = Size.mul (Size.of_var h) (Size.of_var w) in
  Alcotest.(check int) "H*W" 1024 (Size.eval hw lookup);
  let s2 = Size.mul (Size.of_int 2) (Size.of_var h) in
  Alcotest.(check int) "2*H" 64 (Size.eval s2 lookup)

let test_div () =
  let hw = Size.mul (Size.of_var h) (Size.of_var w) in
  (match Size.div hw (Size.of_var w) with
  | Some q -> Alcotest.check size "HW/W = H" (Size.of_var h) q
  | None -> Alcotest.fail "HW/W should divide");
  (* Primary variable may not end up in a denominator. *)
  Alcotest.(check bool)
    "H/W invalid" true
    (Size.div (Size.of_var h) (Size.of_var w) = None);
  (* Coefficient variable may. *)
  (match Size.div (Size.of_var h) (Size.of_var s) with
  | Some q -> Alcotest.(check int) "H/s = 16" 16 (Size.eval q lookup)
  | None -> Alcotest.fail "H/s should be allowed")

let test_div_constants () =
  Alcotest.(check bool) "6/4 fails" true (Size.div (Size.of_int 6) (Size.of_int 4) = None);
  match Size.div (Size.of_int 6) (Size.of_int 2) with
  | Some q -> Alcotest.check size "6/2" (Size.of_int 3) q
  | None -> Alcotest.fail "6/2 should divide"

let test_negative_exponent () =
  let inv_s_h = Size.mul (Size.var_pow s (-1)) (Size.of_var h) in
  Alcotest.(check int) "s^-1*H = 16" 16 (Size.eval inv_s_h lookup);
  Alcotest.(check bool) "has negative exponent" true (Size.has_negative_exponent inv_s_h);
  (* Evaluation that is non-integer must be rejected. *)
  let bad = Valuation.of_list [ (h, 31); (s, 2) ] in
  Alcotest.(check bool)
    "non-divisible eval" true
    (Size.eval_opt inv_s_h (Valuation.lookup bad) = None)

let test_primary_denominator_rejected () =
  Alcotest.check_raises "var_pow primary negative"
    (Invalid_argument "Size.var_pow: negative power of a primary variable") (fun () ->
      ignore (Size.var_pow h (-1)))

let test_parts () =
  let m = Size.mul (Size.of_int 2) (Size.mul (Size.of_var h) (Size.var_pow k 2)) in
  Alcotest.check size "primary part" (Size.of_var h) (Size.primary_part m);
  Alcotest.check size "coefficient part"
    (Size.mul (Size.of_int 2) (Size.var_pow k 2))
    (Size.coefficient_part m)

let test_gcd () =
  let a = Size.mul (Size.of_int 6) (Size.mul (Size.of_var h) (Size.of_var k)) in
  let b = Size.mul (Size.of_int 4) (Size.mul (Size.of_var h) (Size.of_var s)) in
  Alcotest.check size "gcd" (Size.mul (Size.of_int 2) (Size.of_var h)) (Size.gcd a b)

let test_product () =
  let sizes = [ Size.of_var h; Size.of_var w; Size.of_int 3 ] in
  Alcotest.(check int) "product" (32 * 32 * 3) (Size.eval (Size.product sizes) lookup)

let test_valuation () =
  Alcotest.(check int) "find" 3 (Valuation.find valuation k);
  Alcotest.(check bool) "mem" false (Valuation.mem valuation (Var.primary "Z"));
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Valuation.add: non-positive value") (fun () ->
      ignore (Valuation.add h 0 Valuation.empty))

(* --- Property tests ---------------------------------------------------- *)

let gen_size =
  let open QCheck.Gen in
  let var =
    oneofl [ Size.of_var h; Size.of_var w; Size.of_var c_in; Size.of_var k; Size.of_var s ]
  in
  let rec go n =
    if n = 0 then oneof [ var; map Size.of_int (int_range 1 6) ]
    else
      frequency
        [ (2, var); (1, map Size.of_int (int_range 1 6)); (3, map2 Size.mul (go (n - 1)) (go (n - 1))) ]
  in
  go 3

let arb_size = QCheck.make ~print:Size.to_string gen_size

let prop_mul_commutative =
  QCheck.Test.make ~name:"mul commutative" ~count:200 (QCheck.pair arb_size arb_size)
    (fun (a, b) -> Size.equal (Size.mul a b) (Size.mul b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:200
    (QCheck.triple arb_size arb_size arb_size)
    (fun (a, b, c) ->
      Size.equal (Size.mul a (Size.mul b c)) (Size.mul (Size.mul a b) c))

let prop_div_mul_roundtrip =
  QCheck.Test.make ~name:"(a*b)/b = a" ~count:200 (QCheck.pair arb_size arb_size)
    (fun (a, b) ->
      match Size.div (Size.mul a b) b with Some q -> Size.equal q a | None -> false)

let prop_eval_mul_homomorphic =
  QCheck.Test.make ~name:"eval (a*b) = eval a * eval b" ~count:200
    (QCheck.pair arb_size arb_size) (fun (a, b) ->
      Size.eval (Size.mul a b) lookup = Size.eval a lookup * Size.eval b lookup)

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:200 (QCheck.pair arb_size arb_size)
    (fun (a, b) ->
      let g = Size.gcd a b in
      Size.div a g <> None && Size.div b g <> None)

let () =
  Alcotest.run "shape"
    [
      ( "var",
        [
          Alcotest.test_case "kinds" `Quick test_var_kinds;
          Alcotest.test_case "valuation" `Quick test_valuation;
        ] );
      ( "size",
        [
          Alcotest.test_case "mul and eval" `Quick test_mul_eval;
          Alcotest.test_case "div" `Quick test_div;
          Alcotest.test_case "div constants" `Quick test_div_constants;
          Alcotest.test_case "negative exponent" `Quick test_negative_exponent;
          Alcotest.test_case "primary denominator rejected" `Quick
            test_primary_denominator_rejected;
          Alcotest.test_case "primary/coefficient parts" `Quick test_parts;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "product" `Quick test_product;
        ] );
      ( "size-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mul_commutative;
            prop_mul_assoc;
            prop_div_mul_roundtrip;
            prop_eval_mul_homomorphic;
            prop_gcd_divides;
          ] );
    ]
