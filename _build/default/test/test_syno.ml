(* Tests for the operator zoo and the end-to-end facade. *)

module Size = Shape.Size
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops
module Zoo = Syno.Zoo
module Api = Syno.Api

let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:32 ~c_out:32 ~hw:16 ~k:3 ~g:2 ~s:2 ()

let test_zoo_builds () =
  (* all entries are constructed at module load; check basic sanity *)
  Alcotest.(check int) "catalog size" 15 (List.length Zoo.all);
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Zoo.name ^ " has a name") true (String.length e.Zoo.name > 0);
      Alcotest.(check bool)
        (e.Zoo.name ^ " positive flops")
        true
        (Flops.naive_flops e.Zoo.operator valuation > 0 || e.Zoo.name = "pixel_shuffle"))
    Zoo.conv_like

let test_conv_flops_formula () =
  (* 2 * N*C_out*H*W * C_in*k*k *)
  Alcotest.(check int) "conv2d flops" (2 * 32 * 16 * 16 * 32 * 9)
    (Flops.naive_flops Zoo.conv2d.Zoo.operator valuation);
  Alcotest.(check int) "conv2d params" (32 * 32 * 9) (Flops.params Zoo.conv2d.Zoo.operator valuation)

let test_operator1_weight_shapes () =
  (* Listing 2: w1 = [C_out/g/s, C_in, k]; w2 = [C_out, k*k*C_out/s]. *)
  let lookup = Shape.Valuation.lookup valuation in
  match Zoo.operator1.Zoo.operator.Graph.op_weights with
  | [ w1; w2 ] ->
      let elems grp =
        List.fold_left (fun acc it -> acc * Size.eval it.Coord.Ast.dom lookup) 1 grp
      in
      Alcotest.(check int) "w1 elems" (32 / 2 / 2 * 32 * 3) (elems w1);
      Alcotest.(check int) "w2 elems" (32 * (3 * 3 * 32 / 2)) (elems w2)
  | _ -> Alcotest.fail "operator1 must have two weight groups"

let test_operator2_parameter_saving () =
  (* Paper: fewer than 1/4 of the parameters of a standard conv. *)
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:64 ~c_out:64 ~hw:16 ~k:3 ~g:2 ~s:4 () in
  let conv = Flops.params Zoo.conv2d.Zoo.operator v in
  let op2 = Flops.params Zoo.operator2.Zoo.operator v in
  Alcotest.(check bool)
    (Printf.sprintf "op2 params %d < conv/4 = %d" op2 (conv / 4))
    true (op2 < conv / 4)

let test_operator1_staged_flops () =
  (* Staged execution must undercut the standard convolution. *)
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:64 ~c_out:64 ~hw:28 ~k:3 ~g:2 ~s:4 () in
  let conv = (Lower.Staging.optimize Zoo.conv2d.Zoo.operator v).Lower.Staging.total_flops in
  let op1 = (Lower.Staging.optimize Zoo.operator1.Zoo.operator v).Lower.Staging.total_flops in
  Alcotest.(check bool)
    (Printf.sprintf "op1 staged %d < conv %d" op1 conv)
    true
    (float_of_int op1 < 0.6 *. float_of_int conv)

let test_stacked_conv_wider_receptive () =
  (* stacked conv unfolds W twice: its W receptive field is 2k-1. *)
  let lookup = Shape.Valuation.lookup valuation in
  let w_span op =
    let e = List.nth op.Graph.op_input_exprs 3 in
    let lo, hi = Coord.Ast.bounds ~lookup e in
    (* the output iterator contributes H-1 of the range *)
    hi - lo + 1 - (16 - 1)
  in
  Alcotest.(check int) "op1 W span 3" 3 (w_span Zoo.operator1.Zoo.operator);
  Alcotest.(check int) "stacked W span 5" 5 (w_span Zoo.stacked_conv.Zoo.operator)

let test_semantics_depthwise () =
  (* depthwise never mixes channels: grad-free numeric check. *)
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:6 ~k:3 ~g:2 ~s:2 () in
  let r = Lower.Reference.compile Zoo.depthwise_conv.Zoo.operator v in
  let rng = Nd.Rng.create ~seed:31 in
  let weights = Lower.Reference.init_weights r rng in
  let x0 = Nd.Tensor.create [| 1; 4; 6; 6 |] in
  let x1 = Nd.Tensor.copy x0 in
  (* perturb channel 2 only *)
  Nd.Tensor.set x1 [| 0; 2; 3; 3 |] 1.0;
  let y0 = Lower.Reference.forward r ~input:x0 ~weights in
  let y1 = Lower.Reference.forward r ~input:x1 ~weights in
  let diff = Nd.Tensor.sub y1 y0 in
  Nd.Tensor.iteri
    (fun idx d ->
      if idx.(1) <> 2 && Float.abs d > 1e-12 then
        Alcotest.failf "channel %d affected by channel 2" idx.(1))
    diff

let test_grouped_semantics () =
  (* grouped conv: output channel in group 0 ignores input channels of
     group 1. *)
  let v = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:4 ~hw:6 ~k:3 ~g:2 ~s:2 () in
  let r = Lower.Reference.compile Zoo.grouped_conv.Zoo.operator v in
  let rng = Nd.Rng.create ~seed:32 in
  let weights = Lower.Reference.init_weights r rng in
  let x0 = Nd.Tensor.create [| 1; 4; 6; 6 |] in
  let x1 = Nd.Tensor.copy x0 in
  (* channel 3 is in group 1 (channels 2,3) *)
  Nd.Tensor.set x1 [| 0; 3; 3; 3 |] 1.0;
  let y0 = Lower.Reference.forward r ~input:x0 ~weights in
  let y1 = Lower.Reference.forward r ~input:x1 ~weights in
  let diff = Nd.Tensor.sub y1 y0 in
  (* output channels 0,1 (group 0) unaffected *)
  Nd.Tensor.iteri
    (fun idx d ->
      if idx.(1) < 2 && Float.abs d > 1e-12 then
        Alcotest.failf "group 0 output affected by group 1 input")
    diff;
  Alcotest.(check bool) "group 1 output affected" true
    (Nd.Tensor.max_value (Nd.Tensor.map Float.abs diff) > 1e-9)

(* --- Facade -------------------------------------------------------------- *)

let test_substitution_fallback () =
  let dw_spec =
    {
      Backbones.Convspec.layer = "dw";
      in_channels = 32;
      out_channels = 32;
      height = 8;
      width = 8;
      kernel = 3;
      groups = 32;
      count = 1;
    }
  in
  let sub = Api.substituted_layer_op Zoo.operator1 dw_spec in
  Alcotest.(check bool) "depthwise layer keeps baseline" true
    (sub.Api.op == Zoo.depthwise_conv.Zoo.operator)

let test_speedup_directions () =
  let model = Backbones.Models.resnet18 in
  let tvm = Perf.Compiler_model.tvm in
  let cpu = Perf.Platform.mobile_cpu in
  let s2 = Api.speedup Zoo.operator2 model tvm cpu in
  Alcotest.(check bool) (Printf.sprintf "op2 speeds up resnet18 on cpu (%.2fx)" s2) true (s2 > 1.5);
  let s1 = Api.speedup Zoo.operator1 model tvm cpu in
  Alcotest.(check bool) (Printf.sprintf "op1 speeds up resnet18 on cpu (%.2fx)" s1) true (s1 > 1.2);
  (* model flops drop under substitution *)
  Alcotest.(check bool) "flops drop" true
    (Api.model_flops ~substitute:Zoo.operator2 model < Api.model_flops model)

let test_search_end_to_end () =
  let rng = Nd.Rng.create ~seed:41 in
  let candidates =
    Api.search_conv_operators ~iterations:400 ~max_prims:7 ~rng
      ~valuations:Api.default_search_valuations ()
  in
  Alcotest.(check bool) "finds candidates" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "reward in range" true (c.Api.reward >= 0.0 && c.Api.reward <= 1.0);
      Alcotest.(check bool) "positive flops" true (c.Api.flops > 0))
    candidates

let () =
  Alcotest.run "syno"
    [
      ( "zoo",
        [
          Alcotest.test_case "builds" `Quick test_zoo_builds;
          Alcotest.test_case "conv flops" `Quick test_conv_flops_formula;
          Alcotest.test_case "operator1 weights" `Quick test_operator1_weight_shapes;
          Alcotest.test_case "operator2 params" `Quick test_operator2_parameter_saving;
          Alcotest.test_case "operator1 staged" `Quick test_operator1_staged_flops;
          Alcotest.test_case "receptive fields" `Quick test_stacked_conv_wider_receptive;
          Alcotest.test_case "depthwise semantics" `Quick test_semantics_depthwise;
          Alcotest.test_case "grouped semantics" `Quick test_grouped_semantics;
        ] );
      ( "facade",
        [
          Alcotest.test_case "fallback" `Quick test_substitution_fallback;
          Alcotest.test_case "speedups" `Quick test_speedup_directions;
          Alcotest.test_case "search" `Slow test_search_end_to_end;
        ] );
    ]
