(* Tests for the backbone inventories and the GPT-2 proxy. *)

module Models = Backbones.Models
module Convspec = Backbones.Convspec
module Gpt2 = Backbones.Gpt2
module Rng = Nd.Rng

let test_spec_flops () =
  let s =
    {
      Convspec.layer = "t";
      in_channels = 64;
      out_channels = 128;
      height = 28;
      width = 28;
      kernel = 3;
      groups = 1;
      count = 2;
    }
  in
  Alcotest.(check int) "conv flops" (2 * 128 * 28 * 28 * 64 * 9) (Convspec.flops s);
  Alcotest.(check int) "conv params" (128 * 64 * 9) (Convspec.params s);
  Alcotest.(check bool) "dense substitutable" true (Convspec.substitutable s);
  let dw = { s with groups = 64; out_channels = 64 } in
  Alcotest.(check bool) "depthwise not substitutable" false (Convspec.substitutable dw);
  Alcotest.(check int) "depthwise params" (64 * 9) (Convspec.params dw)

let test_resnet_totals () =
  (* ResNet-18's conv FLOPs at 224x224 are ~3.6 GFLOPs (2x 1.8 GMACs). *)
  let f18 = Models.total_flops Models.resnet18 in
  Alcotest.(check bool)
    (Printf.sprintf "resnet18 flops plausible (%d)" f18)
    true
    (f18 > 3_000_000_000 && f18 < 4_200_000_000);
  let f34 = Models.total_flops Models.resnet34 in
  Alcotest.(check bool) "resnet34 bigger" true (f34 > f18);
  (* ResNet-18 conv params ~11M. *)
  let p18 = Models.total_params Models.resnet18 in
  Alcotest.(check bool)
    (Printf.sprintf "resnet18 params plausible (%d)" p18)
    true
    (p18 > 9_000_000 && p18 < 13_000_000)

let test_five_models () =
  Alcotest.(check int) "five vision models" 5 (List.length Models.vision_models);
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Models.name ^ " nonempty") true (m.Models.specs <> []);
      Alcotest.(check bool) (m.Models.name ^ " positive flops") true (Models.total_flops m > 0))
    Models.vision_models;
  (* EfficientNet has depthwise layers that are not substituted. *)
  Alcotest.(check bool) "efficientnet has depthwise" true
    (List.exists
       (fun s -> s.Convspec.groups > 1)
       Models.efficientnet_v2_s.Models.specs)

let test_profile_layers () =
  Alcotest.(check int) "four fig9 layers" 4 (List.length Models.resnet34_profile_layers)

let lm_data rng = Dataset.Synth_lm.generate rng ~vocab:12 ~seq_len:8 ~batches:6 ~batch_size:4 ()

let test_gpt2_shapes () =
  let rng = Rng.create ~seed:21 in
  let model = Gpt2.create rng ~vocab:12 ~seq_len:8 ~embed:16 ~heads:2 ~layers:2 () in
  Alcotest.(check bool) "has params" true (Gpt2.num_params model > 0);
  (* QKV params: 2 layers x 3 projections x (16*16 + 16). *)
  Alcotest.(check int) "qkv params" (2 * 3 * ((16 * 16) + 16)) (Gpt2.qkv_params model)

let test_gpt2_initial_loss () =
  let rng = Rng.create ~seed:22 in
  let model = Gpt2.create rng ~vocab:12 ~seq_len:8 ~embed:16 ~heads:2 ~layers:1 () in
  let data = lm_data rng in
  let loss = Gpt2.eval_loss model data.Dataset.Synth_lm.batches in
  (* Untrained loss should be near log(vocab). *)
  Alcotest.(check bool)
    (Printf.sprintf "initial loss near uniform (%.2f vs %.2f)" loss (log 12.0))
    true
    (loss > 1.5 && loss < log 12.0 +. 1.2)

let test_gpt2_learns () =
  let rng = Rng.create ~seed:23 in
  let model = Gpt2.create rng ~vocab:12 ~seq_len:8 ~embed:16 ~heads:2 ~layers:1 () in
  let data = lm_data rng in
  let before = Gpt2.perplexity model data.Dataset.Synth_lm.batches in
  let opt = Nn.Optimizer.adam ~lr:3e-3 () in
  for _ = 1 to 3 do
    List.iter
      (fun (inputs, targets) -> ignore (Gpt2.train_step model opt ~inputs ~targets))
      data.Dataset.Synth_lm.batches
  done;
  let after = Gpt2.perplexity model data.Dataset.Synth_lm.batches in
  Alcotest.(check bool)
    (Printf.sprintf "perplexity improves (%.1f -> %.1f)" before after)
    true (after < before)

let test_gpt2_custom_qkv () =
  (* Substituting a grouped QKV projection must change the parameter
     count and still run. *)
  let rng = Rng.create ~seed:24 in
  let make_qkv rng ~embed =
    (* two groups: block-diagonal projection with half the params *)
    let grouped () =
      let half = embed / 2 in
      Nn.Layer.sequential "grouped-proj"
        [
          (let l1 = Nn.Layer.linear rng ~in_features:half ~out_features:half in
           let l2 = Nn.Layer.linear rng ~in_features:half ~out_features:half in
           {
             Nn.Layer.name = "block-diag";
             params = l1.Nn.Layer.params @ l2.Nn.Layer.params;
             apply =
               (fun tape params x ->
                 let n1 = List.length l1.Nn.Layer.params in
                 let p1 = List.filteri (fun i _ -> i < n1) params in
                 let p2 = List.filteri (fun i _ -> i >= n1) params in
                 let sh = Nd.Tensor.shape (Grad.Tape.data x) in
                 let b = sh.(0) and t = sh.(1) in
                 let x1 =
                   Grad.Op.einsum tape "bte,ef->btf"
                     [ x; Grad.Tape.constant tape (Nd.Tensor.init [| embed; half |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0)) ]
                 in
                 let x2 =
                   Grad.Op.einsum tape "bte,ef->btf"
                     [ x; Grad.Tape.constant tape (Nd.Tensor.init [| embed; half |] (fun i -> if i.(0) = i.(1) + half then 1.0 else 0.0)) ]
                 in
                 let y1 = l1.Nn.Layer.apply tape p1 x1 in
                 let y2 = l2.Nn.Layer.apply tape p2 x2 in
                 (* concatenate along the feature axis via einsum sums *)
                 let pad1 =
                   Grad.Op.einsum tape "btf,fe->bte"
                     [ y1; Grad.Tape.constant tape (Nd.Tensor.init [| half; embed |] (fun i -> if i.(1) = i.(0) then 1.0 else 0.0)) ]
                 in
                 let pad2 =
                   Grad.Op.einsum tape "btf,fe->bte"
                     [ y2; Grad.Tape.constant tape (Nd.Tensor.init [| half; embed |] (fun i -> if i.(1) = i.(0) + half then 1.0 else 0.0)) ]
                 in
                 ignore (b, t);
                 Grad.Op.add tape pad1 pad2);
           });
        ]
    in
    (grouped (), grouped (), grouped ())
  in
  let model = Gpt2.create rng ~vocab:12 ~seq_len:8 ~embed:16 ~heads:2 ~layers:1 ~make_qkv () in
  let default = Gpt2.create rng ~vocab:12 ~seq_len:8 ~embed:16 ~heads:2 ~layers:1 () in
  Alcotest.(check bool) "fewer qkv params" true (Gpt2.qkv_params model < Gpt2.qkv_params default);
  let data = lm_data rng in
  let loss = Gpt2.eval_loss model data.Dataset.Synth_lm.batches in
  Alcotest.(check bool) "finite loss" true (Float.is_finite loss)

let () =
  Alcotest.run "backbones"
    [
      ( "specs",
        [
          Alcotest.test_case "flops/params" `Quick test_spec_flops;
          Alcotest.test_case "resnet totals" `Quick test_resnet_totals;
          Alcotest.test_case "five models" `Quick test_five_models;
          Alcotest.test_case "profile layers" `Quick test_profile_layers;
        ] );
      ( "gpt2",
        [
          Alcotest.test_case "shapes" `Quick test_gpt2_shapes;
          Alcotest.test_case "initial loss" `Quick test_gpt2_initial_loss;
          Alcotest.test_case "learns" `Slow test_gpt2_learns;
          Alcotest.test_case "custom qkv" `Quick test_gpt2_custom_qkv;
        ] );
    ]
