(** Coordinate expressions.

    A coordinate expression indexes a tensor dimension.  It is built
    from {e iterators} (the output iterators of the operator and the
    reduction iterators introduced by [Reduce]), integer constants,
    symbolic size constants, and the arithmetic that Syno primitives
    generate: addition, multiplication / division / modulo by a
    symbolic size (Table 1). *)

type role =
  | Spatial  (** an output iterator; one per output dimension *)
  | Reduction  (** introduced by a [Reduce]; summed over *)

type iter = { id : int; dom : Shape.Size.t; role : role }
(** An iterator ranging over [0 .. dom - 1].  [id] is unique within an
    operator. *)

type t =
  | Iter of iter
  | Const of int
  | Size_const of Shape.Size.t
      (** A symbolic constant, e.g. the [K] in the [- K/2] centering
          offset of [Unfold]. *)
  | Add of t * t
  | Sub of t * t
  | Mul of Shape.Size.t * t
  | Div of t * Shape.Size.t  (** floor division *)
  | Mod of t * Shape.Size.t  (** Euclidean modulo: result in [[0, s)] *)

val iter : iter -> t
val const : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : Shape.Size.t -> t -> t
val div : t -> Shape.Size.t -> t
val modulo : t -> Shape.Size.t -> t
val compare_iter : iter -> iter -> int

val iters : t -> iter list
(** All distinct iterators, in order of first occurrence. *)

val eval : env:(int -> int) -> lookup:(Shape.Var.t -> int) -> t -> int
(** [eval ~env ~lookup e] evaluates [e] with [env id] giving the value
    of iterator [id] and [lookup] the valuation of size variables.
    Division is floored; modulo is Euclidean. *)

val bounds : lookup:(Shape.Var.t -> int) -> t -> int * int
(** Inclusive [(lo, hi)] interval bounds of the expression when every
    iterator ranges over its full domain. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val size_of_ast : t -> int
(** Number of AST nodes, used as the simplicity measure by the
    term-rewriting simplifier. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val fdiv : int -> int -> int
(** Floored integer division. *)

val emod : int -> int -> int
(** Euclidean modulo (result in [[0, d)] for [d > 0]). *)
