module Size = Shape.Size

type role =
  | Spatial
  | Reduction

type iter = { id : int; dom : Size.t; role : role }

type t =
  | Iter of iter
  | Const of int
  | Size_const of Size.t
  | Add of t * t
  | Sub of t * t
  | Mul of Size.t * t
  | Div of t * Size.t
  | Mod of t * Size.t

let iter i = Iter i
let const c = Const c
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let mul s e = Mul (s, e)
let div e s = Div (e, s)
let modulo e s = Mod (e, s)

let iters e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Iter i ->
        if not (Hashtbl.mem seen i.id) then begin
          Hashtbl.add seen i.id ();
          acc := i :: !acc
        end
    | Const _ | Size_const _ -> ()
    | Add (a, b) | Sub (a, b) ->
        go a;
        go b
    | Mul (_, e) | Div (e, _) | Mod (e, _) -> go e
  in
  go e;
  List.rev !acc

let fdiv a b =
  if b <= 0 then invalid_arg "Ast.fdiv: non-positive divisor";
  if a >= 0 then a / b else -((-a + b - 1) / b)

let emod a b =
  let r = a mod b in
  if r < 0 then r + b else r

let eval ~env ~lookup e =
  let rec go = function
    | Iter i -> env i.id
    | Const c -> c
    | Size_const s -> Size.eval s lookup
    | Add (a, b) -> go a + go b
    | Sub (a, b) -> go a - go b
    | Mul (s, e) -> Size.eval s lookup * go e
    | Div (e, s) -> fdiv (go e) (Size.eval s lookup)
    | Mod (e, s) -> emod (go e) (Size.eval s lookup)
  in
  go e

let bounds ~lookup e =
  let rec go = function
    | Iter i -> (0, Size.eval i.dom lookup - 1)
    | Const c -> (c, c)
    | Size_const s ->
        let n = Size.eval s lookup in
        (n, n)
    | Add (a, b) ->
        let la, ha = go a and lb, hb = go b in
        (la + lb, ha + hb)
    | Sub (a, b) ->
        let la, ha = go a and lb, hb = go b in
        (la - hb, ha - lb)
    | Mul (s, e) ->
        let n = Size.eval s lookup in
        let lo, hi = go e in
        (n * lo, n * hi)
    | Div (e, s) ->
        let n = Size.eval s lookup in
        let lo, hi = go e in
        (fdiv lo n, fdiv hi n)
    | Mod (e, s) ->
        let n = Size.eval s lookup in
        let lo, hi = go e in
        if lo >= 0 && hi < n then (lo, hi) else (0, n - 1)
  in
  go e

let compare_iter i j =
  match Int.compare i.id j.id with
  | 0 -> (
      match Size.compare i.dom j.dom with
      | 0 -> Stdlib.compare i.role j.role
      | c -> c)
  | c -> c

let rec compare a b =
  match (a, b) with
  | Iter i, Iter j -> compare_iter i j
  | Iter _, _ -> -1
  | _, Iter _ -> 1
  | Const x, Const y -> Int.compare x y
  | Const _, _ -> -1
  | _, Const _ -> 1
  | Size_const x, Size_const y -> Size.compare x y
  | Size_const _, _ -> -1
  | _, Size_const _ -> 1
  | Add (a1, a2), Add (b1, b2) | Sub (a1, a2), Sub (b1, b2) -> (
      match compare a1 b1 with 0 -> compare a2 b2 | c -> c)
  | Add _, _ -> -1
  | _, Add _ -> 1
  | Sub _, _ -> -1
  | _, Sub _ -> 1
  | Mul (s1, e1), Mul (s2, e2) -> (
      match Size.compare s1 s2 with 0 -> compare e1 e2 | c -> c)
  | Mul _, _ -> -1
  | _, Mul _ -> 1
  | Div (e1, s1), Div (e2, s2) | Mod (e1, s1), Mod (e2, s2) -> (
      match compare e1 e2 with 0 -> Size.compare s1 s2 | c -> c)
  | Div _, _ -> -1
  | _, Div _ -> 1

let equal a b = compare a b = 0

let rec size_of_ast = function
  | Iter _ | Const _ | Size_const _ -> 1
  | Add (a, b) | Sub (a, b) -> 1 + size_of_ast a + size_of_ast b
  | Mul (_, e) | Div (e, _) | Mod (e, _) -> 1 + size_of_ast e

let rec pp ppf = function
  | Iter i ->
      let prefix = match i.role with Spatial -> "i" | Reduction -> "r" in
      Format.fprintf ppf "%s%d" prefix i.id
  | Const c -> Format.pp_print_int ppf c
  | Size_const s -> Size.pp ppf s
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (s, e) -> Format.fprintf ppf "%a*%a" Size.pp s pp e
  | Div (e, s) -> Format.fprintf ppf "(%a / %a)" pp e Size.pp s
  | Mod (e, s) -> Format.fprintf ppf "(%a %% %a)" pp e Size.pp s

let to_string e = Format.asprintf "%a" pp e
