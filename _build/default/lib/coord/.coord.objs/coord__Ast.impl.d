lib/coord/ast.ml: Format Hashtbl Int List Shape Stdlib
