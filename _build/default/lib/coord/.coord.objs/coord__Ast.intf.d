lib/coord/ast.mli: Format Shape
