lib/coord/simplify.ml: Ast Int List Option Shape
