lib/coord/simplify.mli: Ast Shape
