lib/grad/tape.mli: Nd
