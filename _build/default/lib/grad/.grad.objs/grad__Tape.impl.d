lib/grad/tape.ml: List Nd
