lib/grad/op.ml: Array List Nd String Tape
