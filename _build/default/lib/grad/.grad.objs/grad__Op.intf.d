lib/grad/op.mli: Tape
