(** Differentiable tensor operations.

    Every function records itself on the tape; gradients flow through
    {!Tape.backward}.  The einsum op derives each input's cotangent as
    another einsum (swapping that input's labels with the output's), so
    attention and linear layers need no bespoke backward code.

    Restriction on {!einsum} specs: every label of an input must also
    appear in the output or another input (no intra-tensor-only summed
    labels, e.g. no traces) so the cotangent einsum stays well-formed. *)

type v = Tape.v

val add : Tape.t -> v -> v -> v
val sub : Tape.t -> v -> v -> v
val mul : Tape.t -> v -> v -> v
val scale : Tape.t -> float -> v -> v
val relu : Tape.t -> v -> v
val reshape : Tape.t -> v -> int array -> v
val transpose : Tape.t -> v -> int array -> v
val einsum : Tape.t -> string -> v list -> v

val add_bias : Tape.t -> v -> bias:v -> axis:int -> v
(** Broadcast-add a rank-1 bias along [axis] of the value. *)

val add_broadcast : Tape.t -> v -> v -> v
(** [add_broadcast t x y] where [y]'s shape is a suffix of [x]'s:
    [y] is repeated over the leading axes (e.g. positional embeddings
    [[T; E]] added to activations [[B; T; E]]). *)

val global_avg_pool : Tape.t -> v -> v
(** [N; C; d1; ...; dk] -> [N; C], averaging the trailing axes. *)

val softmax : Tape.t -> v -> v
(** Along the last axis. *)

val causal_mask : Tape.t -> v -> v
(** For scores [...; T; T]: positions with key index > query index get
    a large negative additive constant. *)

val layer_norm : Tape.t -> v -> gain:v -> bias:v -> v
(** Normalize over the last axis ([gain], [bias] rank 1). *)

val embedding : Tape.t -> table:v -> ids:int array array -> v
(** [table : [V; D]], [ids : B x T] -> [B; T; D]. *)

val cross_entropy : Tape.t -> v -> labels:int array -> v
(** Mean softmax cross-entropy of logits [[B; C]]; returns a scalar. *)

val mean : Tape.t -> v -> v
(** Scalar mean of all elements. *)

val accuracy : v -> labels:int array -> float
(** Fraction of rows of logits [[B; C]] whose argmax equals the label
    (not differentiable, reads data only). *)
