module Tensor = Nd.Tensor
module Einsum = Nd.Einsum

type v = Tape.v

let add t a b =
  Tape.custom t ~inputs:[ a; b ]
    ~output:(Tensor.add (Tape.data a) (Tape.data b))
    ~vjp:(fun ~grad_out -> [ Some grad_out; Some grad_out ])

let sub t a b =
  Tape.custom t ~inputs:[ a; b ]
    ~output:(Tensor.sub (Tape.data a) (Tape.data b))
    ~vjp:(fun ~grad_out -> [ Some grad_out; Some (Tensor.scale (-1.0) grad_out) ])

let mul t a b =
  Tape.custom t ~inputs:[ a; b ]
    ~output:(Tensor.mul (Tape.data a) (Tape.data b))
    ~vjp:(fun ~grad_out ->
      [ Some (Tensor.mul grad_out (Tape.data b)); Some (Tensor.mul grad_out (Tape.data a)) ])

let scale t s a =
  Tape.custom t ~inputs:[ a ]
    ~output:(Tensor.scale s (Tape.data a))
    ~vjp:(fun ~grad_out -> [ Some (Tensor.scale s grad_out) ])

let relu t a =
  let x = Tape.data a in
  Tape.custom t ~inputs:[ a ]
    ~output:(Tensor.map (fun v -> if v > 0.0 then v else 0.0) x)
    ~vjp:(fun ~grad_out ->
      [ Some (Tensor.map2 (fun g xv -> if xv > 0.0 then g else 0.0) grad_out x) ])

let reshape t a shape =
  let original = Tensor.shape (Tape.data a) in
  Tape.custom t ~inputs:[ a ]
    ~output:(Tensor.reshape (Tape.data a) shape)
    ~vjp:(fun ~grad_out -> [ Some (Tensor.reshape grad_out original) ])

let transpose t a perm =
  let n = Array.length perm in
  let inverse = Array.make n 0 in
  Array.iteri (fun i p -> inverse.(p) <- i) perm;
  Tape.custom t ~inputs:[ a ]
    ~output:(Tensor.transpose (Tape.data a) perm)
    ~vjp:(fun ~grad_out -> [ Some (Tensor.transpose grad_out inverse) ])

let einsum t spec values =
  let inputs_labels = Einsum.input_labels spec in
  let out_labels = Einsum.output_labels spec in
  let tensors = List.map Tape.data values in
  let output = Einsum.einsum spec tensors in
  let vjp ~grad_out =
    List.mapi
      (fun i _ ->
        let other_labels =
          List.filteri (fun j _ -> j <> i) inputs_labels
        in
        let other_tensors = List.filteri (fun j _ -> j <> i) tensors in
        let spec_i =
          String.concat "," (out_labels :: other_labels) ^ "->" ^ List.nth inputs_labels i
        in
        Some (Einsum.einsum spec_i (grad_out :: other_tensors)))
      values
  in
  Tape.custom t ~inputs:values ~output ~vjp

let add_bias t a ~bias ~axis =
  let x = Tape.data a and b = Tape.data bias in
  let sh = Tensor.shape x in
  if Tensor.rank b <> 1 || (Tensor.shape b).(0) <> sh.(axis) then
    invalid_arg "Op.add_bias: bias must be rank 1 matching the axis";
  let b_data = Tensor.unsafe_data b in
  let output =
    Tensor.init sh (fun idx -> Tensor.get x idx +. b_data.(idx.(axis)))
  in
  Tape.custom t ~inputs:[ a; bias ] ~output ~vjp:(fun ~grad_out ->
      let gb = Tensor.create (Tensor.shape b) in
      let gb_data = Tensor.unsafe_data gb in
      Tensor.iteri (fun idx g -> gb_data.(idx.(axis)) <- gb_data.(idx.(axis)) +. g) grad_out;
      [ Some grad_out; Some gb ])

let add_broadcast t a b =
  let x = Tape.data a and y = Tape.data b in
  let shx = Tensor.shape x and shy = Tensor.shape y in
  let nx = Array.length shx and ny = Array.length shy in
  if ny > nx || Array.sub shx (nx - ny) ny <> shy then
    invalid_arg "Op.add_broadcast: second shape must be a suffix of the first";
  let inner = Tensor.numel y in
  let repeats = Tensor.numel x / max 1 inner in
  let xd = Tensor.unsafe_data x and yd = Tensor.unsafe_data y in
  let out = Tensor.create shx in
  let od = Tensor.unsafe_data out in
  for r = 0 to repeats - 1 do
    let off = r * inner in
    for i = 0 to inner - 1 do
      od.(off + i) <- xd.(off + i) +. yd.(i)
    done
  done;
  Tape.custom t ~inputs:[ a; b ] ~output:out ~vjp:(fun ~grad_out ->
      let gd = Tensor.unsafe_data grad_out in
      let gy = Tensor.create shy in
      let gyd = Tensor.unsafe_data gy in
      for r = 0 to repeats - 1 do
        let off = r * inner in
        for i = 0 to inner - 1 do
          gyd.(i) <- gyd.(i) +. gd.(off + i)
        done
      done;
      [ Some grad_out; Some gy ])

let global_avg_pool t a =
  let x = Tape.data a in
  let sh = Tensor.shape x in
  if Array.length sh < 2 then invalid_arg "Op.global_avg_pool: rank < 2";
  let batch = sh.(0) and channels = sh.(1) in
  let spatial = Tensor.numel x / (batch * channels) in
  let inv = 1.0 /. float_of_int spatial in
  let flat = Tensor.reshape x [| batch; channels; spatial |] in
  let out = Tensor.create [| batch; channels |] in
  for n = 0 to batch - 1 do
    for c = 0 to channels - 1 do
      let acc = ref 0.0 in
      for s = 0 to spatial - 1 do
        acc := !acc +. Tensor.get flat [| n; c; s |]
      done;
      Tensor.set out [| n; c |] (!acc *. inv)
    done
  done;
  Tape.custom t ~inputs:[ a ] ~output:out ~vjp:(fun ~grad_out ->
      let gx = Tensor.create [| batch; channels; spatial |] in
      for n = 0 to batch - 1 do
        for c = 0 to channels - 1 do
          let g = Tensor.get grad_out [| n; c |] *. inv in
          for s = 0 to spatial - 1 do
            Tensor.set gx [| n; c; s |] g
          done
        done
      done;
      [ Some (Tensor.reshape gx sh) ])

(* Softmax along the last axis; rows processed independently. *)
let softmax_rows x =
  let sh = Tensor.shape x in
  let n = Array.length sh in
  let cols = sh.(n - 1) in
  let rows = Tensor.numel x / cols in
  let data = Tensor.unsafe_data x in
  let out = Tensor.create sh in
  let out_data = Tensor.unsafe_data out in
  for r = 0 to rows - 1 do
    let off = r * cols in
    let m = ref neg_infinity in
    for c = 0 to cols - 1 do
      if data.(off + c) > !m then m := data.(off + c)
    done;
    let z = ref 0.0 in
    for c = 0 to cols - 1 do
      let e = exp (data.(off + c) -. !m) in
      out_data.(off + c) <- e;
      z := !z +. e
    done;
    for c = 0 to cols - 1 do
      out_data.(off + c) <- out_data.(off + c) /. !z
    done
  done;
  out

let softmax t a =
  let y = softmax_rows (Tape.data a) in
  Tape.custom t ~inputs:[ a ] ~output:y ~vjp:(fun ~grad_out ->
      let sh = Tensor.shape y in
      let n = Array.length sh in
      let cols = sh.(n - 1) in
      let rows = Tensor.numel y / cols in
      let yd = Tensor.unsafe_data y and gd = Tensor.unsafe_data grad_out in
      let gx = Tensor.create sh in
      let gxd = Tensor.unsafe_data gx in
      for r = 0 to rows - 1 do
        let off = r * cols in
        let dot = ref 0.0 in
        for c = 0 to cols - 1 do
          dot := !dot +. (gd.(off + c) *. yd.(off + c))
        done;
        for c = 0 to cols - 1 do
          gxd.(off + c) <- yd.(off + c) *. (gd.(off + c) -. !dot)
        done
      done;
      [ Some gx ])

let causal_mask t a =
  let x = Tape.data a in
  let sh = Tensor.shape x in
  let n = Array.length sh in
  if n < 2 || sh.(n - 1) <> sh.(n - 2) then
    invalid_arg "Op.causal_mask: expected trailing [T; T] axes";
  let tt = sh.(n - 1) in
  let out =
    Tensor.init sh (fun idx ->
        let q = idx.(n - 2) and k = idx.(n - 1) in
        if k > q then -1e9 else Tensor.get x idx)
  in
  Tape.custom t ~inputs:[ a ] ~output:out ~vjp:(fun ~grad_out ->
      let gx =
        Tensor.init sh (fun idx ->
            let q = idx.(n - 2) and k = idx.(n - 1) in
            if k > q then 0.0 else Tensor.get grad_out idx)
      in
      ignore tt;
      [ Some gx ])

let layer_norm t a ~gain ~bias =
  let eps = 1e-5 in
  let x = Tape.data a in
  let sh = Tensor.shape x in
  let n = Array.length sh in
  let cols = sh.(n - 1) in
  let rows = Tensor.numel x / cols in
  let xd = Tensor.unsafe_data x in
  let g_data = Tensor.unsafe_data (Tape.data gain) in
  let b_data = Tensor.unsafe_data (Tape.data bias) in
  let xhat = Tensor.create sh in
  let xh = Tensor.unsafe_data xhat in
  let inv_std = Array.make rows 0.0 in
  let out = Tensor.create sh in
  let od = Tensor.unsafe_data out in
  for r = 0 to rows - 1 do
    let off = r * cols in
    let mu = ref 0.0 in
    for c = 0 to cols - 1 do
      mu := !mu +. xd.(off + c)
    done;
    let mu = !mu /. float_of_int cols in
    let var = ref 0.0 in
    for c = 0 to cols - 1 do
      let d = xd.(off + c) -. mu in
      var := !var +. (d *. d)
    done;
    let istd = 1.0 /. sqrt ((!var /. float_of_int cols) +. eps) in
    inv_std.(r) <- istd;
    for c = 0 to cols - 1 do
      xh.(off + c) <- (xd.(off + c) -. mu) *. istd;
      od.(off + c) <- (xh.(off + c) *. g_data.(c)) +. b_data.(c)
    done
  done;
  Tape.custom t ~inputs:[ a; gain; bias ] ~output:out ~vjp:(fun ~grad_out ->
      let gd = Tensor.unsafe_data grad_out in
      let gx = Tensor.create sh in
      let gxd = Tensor.unsafe_data gx in
      let ggain = Tensor.create [| cols |] in
      let gg = Tensor.unsafe_data ggain in
      let gbias = Tensor.create [| cols |] in
      let gb = Tensor.unsafe_data gbias in
      for r = 0 to rows - 1 do
        let off = r * cols in
        let mean_dyg = ref 0.0 and mean_dyg_xh = ref 0.0 in
        for c = 0 to cols - 1 do
          let dyg = gd.(off + c) *. g_data.(c) in
          mean_dyg := !mean_dyg +. dyg;
          mean_dyg_xh := !mean_dyg_xh +. (dyg *. xh.(off + c));
          gg.(c) <- gg.(c) +. (gd.(off + c) *. xh.(off + c));
          gb.(c) <- gb.(c) +. gd.(off + c)
        done;
        let fc = float_of_int cols in
        let m1 = !mean_dyg /. fc and m2 = !mean_dyg_xh /. fc in
        for c = 0 to cols - 1 do
          let dyg = gd.(off + c) *. g_data.(c) in
          gxd.(off + c) <- inv_std.(r) *. (dyg -. m1 -. (xh.(off + c) *. m2))
        done
      done;
      [ Some gx; Some ggain; Some gbias ])

let embedding t ~table ~ids =
  let tbl = Tape.data table in
  let v, d =
    match Tensor.shape tbl with
    | [| v; d |] -> (v, d)
    | _ -> invalid_arg "Op.embedding: table must be rank 2"
  in
  let batch = Array.length ids in
  let seq = Array.length ids.(0) in
  let out = Tensor.create [| batch; seq; d |] in
  for b = 0 to batch - 1 do
    for s = 0 to seq - 1 do
      let tok = ids.(b).(s) in
      if tok < 0 || tok >= v then invalid_arg "Op.embedding: token out of range";
      for j = 0 to d - 1 do
        Tensor.set out [| b; s; j |] (Tensor.get tbl [| tok; j |])
      done
    done
  done;
  Tape.custom t ~inputs:[ table ] ~output:out ~vjp:(fun ~grad_out ->
      let gt = Tensor.create [| v; d |] in
      for b = 0 to batch - 1 do
        for s = 0 to seq - 1 do
          let tok = ids.(b).(s) in
          for j = 0 to d - 1 do
            Tensor.set gt [| tok; j |]
              (Tensor.get gt [| tok; j |] +. Tensor.get grad_out [| b; s; j |])
          done
        done
      done;
      [ Some gt ])

let cross_entropy t logits ~labels =
  let x = Tape.data logits in
  let b, c =
    match Tensor.shape x with
    | [| b; c |] -> (b, c)
    | _ -> invalid_arg "Op.cross_entropy: logits must be [B; C]"
  in
  if Array.length labels <> b then invalid_arg "Op.cross_entropy: label count";
  let probs = softmax_rows x in
  let pd = Tensor.unsafe_data probs in
  let loss = ref 0.0 in
  for r = 0 to b - 1 do
    loss := !loss -. log (max 1e-12 pd.((r * c) + labels.(r)))
  done;
  let loss = !loss /. float_of_int b in
  Tape.custom t ~inputs:[ logits ] ~output:(Tensor.scalar loss) ~vjp:(fun ~grad_out ->
      let g = Tensor.flat_get grad_out 0 /. float_of_int b in
      let gx = Tensor.copy probs in
      let gd = Tensor.unsafe_data gx in
      for r = 0 to b - 1 do
        gd.((r * c) + labels.(r)) <- gd.((r * c) + labels.(r)) -. 1.0
      done;
      for i = 0 to (b * c) - 1 do
        gd.(i) <- gd.(i) *. g
      done;
      [ Some gx ])

let mean t a =
  let x = Tape.data a in
  let n = float_of_int (Tensor.numel x) in
  Tape.custom t ~inputs:[ a ]
    ~output:(Tensor.scalar (Tensor.sum x /. n))
    ~vjp:(fun ~grad_out ->
      let g = Tensor.flat_get grad_out 0 /. n in
      [ Some (Tensor.map (fun _ -> g) x) ])

let accuracy logits ~labels =
  let x = Tape.data logits in
  let b, c =
    match Tensor.shape x with
    | [| b; c |] -> (b, c)
    | _ -> invalid_arg "Op.accuracy: logits must be [B; C]"
  in
  let correct = ref 0 in
  let d = Tensor.unsafe_data x in
  for r = 0 to b - 1 do
    let best = ref 0 in
    for j = 1 to c - 1 do
      if d.((r * c) + j) > d.((r * c) + !best) then best := j
    done;
    if !best = labels.(r) then incr correct
  done;
  float_of_int !correct /. float_of_int b
