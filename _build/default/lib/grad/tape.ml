module Tensor = Nd.Tensor

type v = {
  id : int;
  tape_id : int;
  data : Tensor.t;
  mutable grad : Tensor.t option;
  requires_grad : bool;
}

type node = { inputs : v list; out : v; vjp : grad_out:Tensor.t -> Tensor.t option list }

type t = { tid : int; mutable nodes : node list; mutable next : int }

let tape_counter = ref 0

let create () =
  incr tape_counter;
  { tid = !tape_counter; nodes = []; next = 0 }

let fresh t data requires_grad =
  let id = t.next in
  t.next <- id + 1;
  { id; tape_id = t.tid; data; grad = None; requires_grad }

let var t data = fresh t data true
let constant t data = fresh t data false
let data v = v.data

let grad v =
  match v.grad with
  | Some g -> g
  | None -> Tensor.create (Tensor.shape v.data)

let custom t ~inputs ~output ~vjp =
  List.iter
    (fun v ->
      if v.tape_id <> t.tid then invalid_arg "Tape.custom: input from another tape")
    inputs;
  let out = fresh t output (List.exists (fun v -> v.requires_grad) inputs) in
  if out.requires_grad then t.nodes <- { inputs; out; vjp } :: t.nodes;
  out

let accumulate v g =
  if v.requires_grad then
    match v.grad with
    | None -> v.grad <- Some (Tensor.copy g)
    | Some acc -> Tensor.add_ acc g

let backward t seed =
  if seed.tape_id <> t.tid then invalid_arg "Tape.backward: value not on this tape";
  let ones = Tensor.map (fun _ -> 1.0) seed.data in
  seed.grad <- Some ones;
  (* nodes are stored newest-first: exactly reverse topological order *)
  List.iter
    (fun node ->
      match node.out.grad with
      | None -> ()
      | Some g ->
          let cotangents = node.vjp ~grad_out:g in
          List.iter2
            (fun input ct ->
              match ct with
              | Some ct when input.requires_grad -> accumulate input ct
              | Some _ | None -> ())
            node.inputs cotangents)
    t.nodes

let num_nodes t = List.length t.nodes
