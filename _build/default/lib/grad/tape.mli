(** Reverse-mode automatic differentiation over [nd] tensors.

    A {e tape} records the forward computation as a sequence of nodes;
    {!backward} replays it in reverse, accumulating gradients.  This is
    the training engine standing in for PyTorch autograd: backbone
    models wrap their parameters as tape variables each step, and
    synthesized operators plug in through {!custom} with the exact
    gradients computed by [Lower.Reference.backward]. *)

type t
(** The tape. *)

type v
(** A tracked value. *)

val create : unit -> t
val var : t -> Nd.Tensor.t -> v
(** A leaf variable (parameter or input). *)

val constant : t -> Nd.Tensor.t -> v
(** A value excluded from gradient accumulation. *)

val data : v -> Nd.Tensor.t
val grad : v -> Nd.Tensor.t
(** Accumulated gradient; zeros before {!backward} runs. *)

val custom :
  t ->
  inputs:v list ->
  output:Nd.Tensor.t ->
  vjp:(grad_out:Nd.Tensor.t -> Nd.Tensor.t option list) ->
  v
(** Register an operation.  [vjp ~grad_out] returns one cotangent per
    input ([None] for inputs that need no gradient, e.g. integer-like
    data); it runs during {!backward}. *)

val backward : t -> v -> unit
(** Seed the given (scalar or any-shape) value with ones and propagate.
    Raises [Invalid_argument] if the value is not on this tape. *)

val num_nodes : t -> int
