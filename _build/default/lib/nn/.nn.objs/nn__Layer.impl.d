lib/nn/layer.ml: Array Grad List Lower Nd Printf
