lib/nn/optimizer.mli: Nd
