lib/nn/optimizer.ml: Array Float Hashtbl List Nd
