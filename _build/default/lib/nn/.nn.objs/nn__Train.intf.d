lib/nn/train.mli: Model Nd Optimizer
