lib/nn/attention.ml: Array Grad Layer List Nd Printf
