lib/nn/model.mli: Grad Layer Nd Optimizer
