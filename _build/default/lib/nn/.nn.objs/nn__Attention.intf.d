lib/nn/attention.mli: Layer Nd
