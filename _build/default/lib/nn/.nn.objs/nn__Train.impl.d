lib/nn/train.ml: Array List Model Nd Optimizer
