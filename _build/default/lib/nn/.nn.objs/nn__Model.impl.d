lib/nn/model.ml: Grad Layer List Nd Optimizer
