lib/nn/layer.mli: Grad Lower Nd
