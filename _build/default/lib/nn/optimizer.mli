(** In-place parameter optimizers (SGD with momentum, Adam).

    State (momentum buffers, Adam moments) is keyed by the position of
    the parameter in the list, so the same optimizer instance must
    always be stepped with the same parameter list. *)

type t

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?weight_decay:float -> lr:float -> unit -> t

val set_lr : t -> float -> unit
val lr : t -> float

val step : t -> params:Nd.Tensor.t list -> grads:Nd.Tensor.t list -> unit
(** Update parameters in place. *)

val cosine_lr : base:float -> total_steps:int -> int -> float
(** Cosine decay schedule value at the given step. *)
