type batch = { images : Nd.Tensor.t; labels : int array }

type history = {
  epoch_losses : float list;
  epoch_accuracies : float list;
  final_train_accuracy : float;
  final_eval_accuracy : float;
}

let evaluate model batches =
  let total, correct =
    List.fold_left
      (fun (total, correct) { images; labels } ->
        let stats = Model.evaluate model ~images ~labels in
        let n = Array.length labels in
        (total + n, correct +. (stats.Model.accuracy *. float_of_int n)))
      (0, 0.0) batches
  in
  if total = 0 then 0.0 else correct /. float_of_int total

let fit ?log model opt ~epochs ~train ~eval =
  let base_lr = Optimizer.lr opt in
  let steps_per_epoch = List.length train in
  let total_steps = epochs * steps_per_epoch in
  let step = ref 0 in
  let losses = ref [] and accs = ref [] in
  for epoch = 1 to epochs do
    let loss_sum = ref 0.0 and acc_sum = ref 0.0 in
    List.iter
      (fun { images; labels } ->
        Optimizer.set_lr opt (Optimizer.cosine_lr ~base:base_lr ~total_steps !step);
        incr step;
        let stats = Model.train_step model opt ~images ~labels in
        loss_sum := !loss_sum +. stats.Model.loss;
        acc_sum := !acc_sum +. stats.Model.accuracy)
      train;
    let n = float_of_int (max 1 steps_per_epoch) in
    let epoch_loss = !loss_sum /. n and epoch_acc = !acc_sum /. n in
    losses := epoch_loss :: !losses;
    accs := epoch_acc :: !accs;
    match log with
    | Some f -> f ~epoch ~loss:epoch_loss ~accuracy:epoch_acc
    | None -> ()
  done;
  Optimizer.set_lr opt base_lr;
  {
    epoch_losses = List.rev !losses;
    epoch_accuracies = List.rev !accs;
    final_train_accuracy = (match !accs with a :: _ -> a | [] -> 0.0);
    final_eval_accuracy = evaluate model eval;
  }
