module Tensor = Nd.Tensor
module Tape = Grad.Tape
module Op = Grad.Op

let layer_norm rng ~dim =
  ignore rng;
  let gain = Tensor.init [| dim |] (fun _ -> 1.0) in
  let bias = Tensor.create [| dim |] in
  {
    Layer.name = Printf.sprintf "ln(%d)" dim;
    params = [ gain; bias ];
    apply =
      (fun tape params x ->
        match params with
        | [ g; b ] -> Op.layer_norm tape x ~gain:g ~bias:b
        | _ -> invalid_arg "layer_norm: params");
  }

let causal_self_attention rng ~embed ~heads ?qkv () =
  if embed mod heads <> 0 then invalid_arg "attention: embed must divide by heads";
  let head_dim = embed / heads in
  let proj () = Layer.linear rng ~in_features:embed ~out_features:embed in
  let q_l, k_l, v_l = match qkv with Some t -> t | None -> (proj (), proj (), proj ()) in
  let out_l = proj () in
  let layers = [ q_l; k_l; v_l; out_l ] in
  {
    Layer.name = Printf.sprintf "attn(e=%d,h=%d)" embed heads;
    params = List.concat_map (fun l -> l.Layer.params) layers;
    apply =
      (fun tape params x ->
        let split_params =
          let rec go acc remaining = function
            | [] -> List.rev acc
            | l :: rest ->
                let n = List.length l.Layer.params in
                let mine = List.filteri (fun i _ -> i < n) remaining in
                let others = List.filteri (fun i _ -> i >= n) remaining in
                go ((l, mine) :: acc) others rest
          in
          go [] params layers
        in
        let apply_l l x =
          let _, mine = List.find (fun (l', _) -> l' == l) split_params in
          l.Layer.apply tape mine x
        in
        let sh = Tensor.shape (Tape.data x) in
        let b, t = (sh.(0), sh.(1)) in
        let heads4 v = Op.reshape tape v [| b; t; heads; head_dim |] in
        let q = heads4 (apply_l q_l x) in
        let k = heads4 (apply_l k_l x) in
        let v = heads4 (apply_l v_l x) in
        let scores = Op.einsum tape "bqhd,bkhd->bhqk" [ q; k ] in
        let scores = Op.scale tape (1.0 /. sqrt (float_of_int head_dim)) scores in
        let scores = Op.causal_mask tape scores in
        let probs = Op.softmax tape scores in
        let ctx = Op.einsum tape "bhqk,bkhd->bqhd" [ probs; v ] in
        let ctx = Op.reshape tape ctx [| b; t; embed |] in
        apply_l out_l ctx);
  }

let mlp rng ~embed ~hidden =
  Layer.sequential "mlp"
    [
      Layer.linear rng ~in_features:embed ~out_features:hidden;
      Layer.relu;
      Layer.linear rng ~in_features:hidden ~out_features:embed;
    ]

let transformer_block rng ~embed ~heads ?qkv () =
  let attn = causal_self_attention rng ~embed ~heads ?qkv () in
  Layer.sequential "block"
    [
      Layer.residual "attn-res" [ layer_norm rng ~dim:embed; attn ];
      Layer.residual "mlp-res" [ layer_norm rng ~dim:embed; mlp rng ~embed ~hidden:(4 * embed) ];
    ]
