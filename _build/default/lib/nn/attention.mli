(** Multi-head causal self-attention and the transformer block used by
    the GPT-2 proxy.  The Q, K, V projections are pluggable layers so a
    Syno-synthesized operator can replace them (\u{00a7}9.3). *)

val causal_self_attention :
  Nd.Rng.t ->
  embed:int ->
  heads:int ->
  ?qkv:Layer.t * Layer.t * Layer.t ->
  unit ->
  Layer.t
(** Input and output [[B; T; embed]].  Defaults to linear projections
    when [qkv] is omitted. *)

val layer_norm : Nd.Rng.t -> dim:int -> Layer.t

val mlp : Nd.Rng.t -> embed:int -> hidden:int -> Layer.t

val transformer_block :
  Nd.Rng.t ->
  embed:int ->
  heads:int ->
  ?qkv:Layer.t * Layer.t * Layer.t ->
  unit ->
  Layer.t
(** Pre-norm block: [x + attn(ln x)] then [x + mlp(ln x)]. *)
