(** Supervised training loops for the vision proxy task. *)

type batch = { images : Nd.Tensor.t; labels : int array }

type history = {
  epoch_losses : float list;
  epoch_accuracies : float list;
  final_train_accuracy : float;
  final_eval_accuracy : float;
}

val fit :
  ?log:(epoch:int -> loss:float -> accuracy:float -> unit) ->
  Model.t ->
  Optimizer.t ->
  epochs:int ->
  train:batch list ->
  eval:batch list ->
  history
(** Cosine learning-rate schedule over the full run; returns per-epoch
    training stats plus the final evaluation accuracy. *)

val evaluate : Model.t -> batch list -> float
