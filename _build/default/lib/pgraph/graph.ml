module Size = Shape.Size
module Ast = Coord.Ast

type dim = {
  expr : Ast.t;
  size : Size.t;
  origin : Prim.kind option;
  pending_stride : bool;
}

type t = {
  frontier : dim list;
  weights : Ast.iter list list;
  spatial : Ast.iter list;
  reductions : Ast.iter list;
  trace_rev : Prim.t list;
  next_id : int;
}

let init output_shape =
  let spatial =
    List.mapi (fun id dom -> { Ast.id; dom; role = Ast.Spatial }) output_shape
  in
  let frontier =
    List.map
      (fun it -> { expr = Ast.iter it; size = it.Ast.dom; origin = None; pending_stride = false })
      spatial
  in
  { frontier; weights = []; spatial; reductions = []; trace_rev = []; next_id = List.length spatial }

let frontier g = g.frontier
let frontier_sizes g = List.map (fun d -> d.size) g.frontier
let weights g = g.weights
let spatial_iters g = g.spatial
let reduction_iters g = List.rev g.reductions
let trace g = List.rev g.trace_rev
let num_prims g = List.length g.trace_rev
let counts g ~kind = List.length (List.filter (fun p -> Prim.kind p = kind) g.trace_rev)
let last_prim g = match g.trace_rev with [] -> None | p :: _ -> Some p

let ( let* ) r f = Result.bind r f

let nth_dim g p =
  if p < 0 || p >= List.length g.frontier then Error "position out of range"
  else Ok (List.nth g.frontier p)

(* Replace dims [p .. p + removed - 1] with [inserted]. *)
let splice frontier p removed inserted =
  let rec go i = function
    | rest when i = p -> inserted @ drop removed rest
    | d :: rest -> d :: go (i + 1) rest
    | [] -> invalid_arg "splice"
  and drop n l = if n = 0 then l else match l with _ :: tl -> drop (n - 1) tl | [] -> [] in
  go 0 frontier

let bare_iter d =
  match d.expr with
  | Ast.Iter it -> Some it
  | Ast.Const _ | Ast.Size_const _ | Ast.Add _ | Ast.Sub _ | Ast.Mul _ | Ast.Div _
  | Ast.Mod _ ->
      None

let no_pending d label = if d.pending_stride then Error (label ^ " of a pending-stride dim") else Ok ()

let record g prim g' = { g' with trace_rev = prim :: g.trace_rev }

let apply g prim =
  match prim with
  | Prim.Split (p, q) ->
      if p = q then Error "Split requires two distinct dims"
      else
        let* a = nth_dim g p in
        (* major *)
        let* b = nth_dim g q in
        (* minor *)
        let* () = no_pending a "Split" in
        let* () = no_pending b "Split" in
        let dim =
          {
            expr = Coord.Simplify.flatten (Ast.add (Ast.mul b.size a.expr) b.expr);
            size = Size.mul a.size b.size;
            origin = Some Prim.K_split;
            pending_stride = false;
          }
        in
        (* Remove the higher position first so indices stay valid, then
           replace the lower one with the combined dim. *)
        let hi = max p q and lo = min p q in
        let frontier = splice (splice g.frontier hi 1 []) lo 1 [ dim ] in
        Ok (record g prim { g with frontier })
  | Prim.Merge (p, b) ->
      let* d = nth_dim g p in
      let* () = no_pending d "Merge" in
      if Size.is_one b then Error "Merge block of 1"
      else begin
        match Size.div d.size b with
        | None -> Error "Merge block does not divide the dimension"
        | Some q when Size.is_one q -> Error "Merge block equals the dimension"
        | Some q ->
            let quo =
              { expr = Ast.div d.expr b; size = q; origin = Some Prim.K_merge; pending_stride = false }
            in
            let rem =
              {
                expr = Ast.modulo d.expr b;
                size = b;
                origin = Some Prim.K_merge;
                pending_stride = false;
              }
            in
            Ok (record g prim { g with frontier = splice g.frontier p 1 [ quo; rem ] })
      end
  | Prim.Shift p ->
      let* d = nth_dim g p in
      let* () = no_pending d "Shift" in
      let dim =
        {
          expr = Ast.modulo (Coord.Simplify.flatten (Ast.add d.expr (Ast.const 1))) d.size;
          size = d.size;
          origin = Some Prim.K_shift;
          pending_stride = false;
        }
      in
      Ok (record g prim { g with frontier = splice g.frontier p 1 [ dim ] })
  | Prim.Unfold (p, w) ->
      if p = w then Error "Unfold window must differ from the main dim"
      else
        let* main = nth_dim g p in
        let* win = nth_dim g w in
        let* () = no_pending main "Unfold (main)" in
        let dim =
          {
            expr =
              Coord.Simplify.flatten
                (Ast.add main.expr
                   (Ast.sub win.expr (Ast.div (Ast.Size_const win.size) (Size.of_int 2))));
            size = main.size;
            origin = Some Prim.K_unfold;
            pending_stride = false;
          }
        in
        (* Remove the window dim first so [p]'s index stays valid. *)
        let frontier =
          if w > p then splice (splice g.frontier w 1 []) p 1 [ dim ]
          else splice (splice g.frontier p 1 [ dim ]) w 1 []
        in
        Ok (record g prim { g with frontier })
  | Prim.Expand p ->
      let* d = nth_dim g p in
      let* () = no_pending d "Expand" in
      Ok (record g prim { g with frontier = splice g.frontier p 1 [] })
  | Prim.Stride (p, s) ->
      let* d = nth_dim g p in
      let* () = no_pending d "Stride" in
      if Size.is_one s then Error "Stride of 1"
      else
        let dim =
          {
            expr = Ast.mul s d.expr;
            size = Size.mul s d.size;
            origin = Some Prim.K_stride;
            pending_stride = true;
          }
        in
        Ok (record g prim { g with frontier = splice g.frontier p 1 [ dim ] })
  | Prim.Reduce n ->
      let it = { Ast.id = g.next_id; dom = n; role = Ast.Reduction } in
      let dim = { expr = Ast.iter it; size = n; origin = Some Prim.K_reduce; pending_stride = false } in
      Ok
        (record g prim
           {
             g with
             frontier = g.frontier @ [ dim ];
             reductions = it :: g.reductions;
             next_id = g.next_id + 1;
           })
  | Prim.Share (p, group) ->
      let* d = nth_dim g p in
      let* () = no_pending d "Share" in
      (match bare_iter d with
      | None -> Error "Share requires a bare-iterator dim (weights are never viewed)"
      | Some it -> (
          match (group, List.rev g.weights) with
          | Prim.New_group, _ -> Ok (record g prim { g with weights = g.weights @ [ [ it ] ] })
          | Prim.Current_group, [] -> Error "Share: no current weight group"
          | Prim.Current_group, last :: _ ->
              if List.exists (fun j -> j.Ast.id = it.Ast.id) last then
                Error "Share: iterator already in the current weight group"
              else
                let weights =
                  match List.rev g.weights with
                  | last :: before -> List.rev ((last @ [ it ]) :: before)
                  | [] -> assert false
                in
                Ok (record g prim { g with weights })))
  | Prim.Match p ->
      let* d = nth_dim g p in
      let* () = no_pending d "Match" in
      (match bare_iter d with
      | None -> Error "Match requires a bare-iterator dim"
      | Some it -> (
          match List.rev g.weights with
          | [] -> Error "Match: no weight group (Match accompanies Share)"
          | last :: before ->
              if List.exists (fun j -> j.Ast.id = it.Ast.id) last then
                Error "Match: iterator already in the current weight group"
              else
                let weights = List.rev ((last @ [ it ]) :: before) in
                Ok
                  (record g prim
                     { g with weights; frontier = splice g.frontier p 1 [] })))

let apply_exn g prim =
  match apply g prim with
  | Ok g' -> g'
  | Error msg -> invalid_arg (Printf.sprintf "Graph.apply %s: %s" (Prim.to_string prim) msg)

let apply_all g prims =
  List.fold_left (fun acc p -> Result.bind acc (fun g -> apply g p)) (Ok g) prims

(* --- Completion -------------------------------------------------------- *)

type operator = {
  op_output_iters : Ast.iter list;
  op_output_shape : Size.t list;
  op_input_exprs : Ast.t list;
  op_input_shape : Size.t list;
  op_weights : Ast.iter list list;
  op_reductions : Ast.iter list;
  op_trace : Prim.t list;
}

(* Greedy multiset matching of frontier dims against the desired input
   shape; returns the frontier dims permuted into desired order. *)
let match_shape frontier desired =
  let rec pick size = function
    | [] -> None
    | d :: rest when Size.equal d.size size -> Some (d, rest)
    | d :: rest -> (
        match pick size rest with
        | Some (found, remaining) -> Some (found, d :: remaining)
        | None -> None)
  in
  let rec go remaining = function
    | [] -> if remaining = [] then Some [] else None
    | size :: sizes -> (
        match pick size remaining with
        | None -> None
        | Some (d, rest) -> (
            match go rest sizes with Some tl -> Some (d :: tl) | None -> None))
  in
  go frontier desired

let matches g ~desired = match_shape g.frontier desired <> None

let iter_in_expr it e = List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e)

let complete ?(allow_strided = false) g ~desired =
  match match_shape g.frontier desired with
  | None -> Error "frontier does not match the desired input shape"
  | Some ordered ->
      if (not allow_strided) && List.exists (fun d -> d.pending_stride) g.frontier then
        Error "pending Stride not consumed by a 1-to-many primitive"
      else
        let exprs = List.map (fun d -> d.expr) ordered in
        let in_frontier it = List.exists (iter_in_expr it) exprs in
        let weight_count it =
          List.length
            (List.filter (List.exists (fun j -> j.Ast.id = it.Ast.id)) g.weights)
        in
        let spatial_ok it = in_frontier it || weight_count it >= 1 in
        let reduction_ok it = in_frontier it || weight_count it >= 2 in
        if not (List.for_all spatial_ok g.spatial) then
          Error "an output iterator is unused: output data would be replicated"
        else if not (List.for_all reduction_ok (List.rev g.reductions)) then
          Error "a reduction iterator only scales the result (futile Reduce)"
        else
          Ok
            {
              op_output_iters = g.spatial;
              op_output_shape = List.map (fun it -> it.Ast.dom) g.spatial;
              op_input_exprs = exprs;
              op_input_shape = desired;
              op_weights = g.weights;
              op_reductions = List.rev g.reductions;
              op_trace = trace g;
            }

(* --- Printing ----------------------------------------------------------- *)

let pp_dim ppf d = Format.fprintf ppf "%a:%a" Ast.pp d.expr Size.pp d.size

let pp ppf g =
  Format.fprintf ppf "@[<v>frontier: [%a]@,weights: %a@,trace: %a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_dim)
    g.frontier
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf grp ->
         Format.fprintf ppf "[%a]"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
              (fun ppf it -> Format.fprintf ppf "%a:%a" Ast.pp (Ast.iter it) Size.pp it.Ast.dom))
           grp))
    g.weights
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Prim.pp)
    (trace g)

let pp_operator ppf op =
  let pp_iters ppf its =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf it -> Format.fprintf ppf "%a:%a" Ast.pp (Ast.iter it) Size.pp it.Ast.dom)
      ppf its
  in
  Format.fprintf ppf "@[<v>out[%a] (+)= in[%a]%a@]" pp_iters op.op_output_iters
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Ast.pp)
    op.op_input_exprs
    (fun ppf groups ->
      List.iter (fun grp -> Format.fprintf ppf " * w[%a]" pp_iters grp) groups)
    op.op_weights

let operator_signature op = Format.asprintf "%a" pp_operator op
