(** Shape distance (\u{00a7}7.1): a lower bound on the number of primitives
    that must still be applied to a partial pGraph before its frontier
    can match the desired input shape.

    The metric partitions the current and desired dimensions into
    {e reshape groups} — future primitives only act within a group —
    and charges each group [#lhs + #rhs - 2] regrouping steps
    (Merge/Split), plus one global step when the total domains differ
    (at least one 1-to-many primitive is then required).  Groupings are
    enumerated (dimensions sharing a primary variable are forced
    together; coefficient-only dimensions float) and the minimum bound
    is returned.

    The bound never overestimates, so pruning with it (Algorithm 1,
    line 20) cannot discard a reachable completion. *)

type t

val create : unit -> t
(** A distance calculator with an internal memo table. *)

val distance :
  t -> current:Shape.Size.t list -> desired:Shape.Size.t list -> int option
(** [None] when no grouping scheme is feasible, i.e. the desired shape
    is unreachable with the helpful primitives (Merge, Split, Unfold,
    Expand) alone. *)

val within :
  t -> current:Shape.Size.t list -> desired:Shape.Size.t list -> budget:int -> bool
(** [within ~budget] iff the distance exists and is [<= budget]. *)
