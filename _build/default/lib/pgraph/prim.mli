(** The Syno primitive set (Table 1), viewed as {e actions} applied to a
    partial pGraph during bottom-up synthesis.

    The synthesis state (see {!Graph}) maintains a {e frontier}: the
    list of coordinate dimensions of the (partial) data-input tensor,
    each carrying an expression over the output and reduction
    iterators.  An action transforms the frontier:

    {ul
    {- [Split (p, q)] combines the major frontier dim [p] (domain
       [G]) and the minor dim [q] (domain [B]) into one dim [B*i + j]
       of domain [G*B], placed at [min p q];}
    {- [Merge (p, b)] splits dim [p] (domain [N], [b] must divide [N])
       into [i / b] of domain [N/b] and [i % b] of domain [b];}
    {- [Shift p] rewrites dim [p] to [(i + 1) % N];}
    {- [Unfold (p, w)] folds window dim [w] (domain [K]) into dim [p]
       (domain [N]) as [i + j - K/2] (out-of-bounds clipped);}
    {- [Expand p] deletes dim [p]: the input no longer depends on it,
       i.e. data is repeated along that output coordinate;}
    {- [Stride (p, s)] rewrites dim [p] (domain [K]) to [s * i] of
       domain [s * K];}
    {- [Reduce n] appends a fresh reduction dimension of domain [n];}
    {- [Share (p, g)] assigns the (bare-iterator) dim [p] to weight
       group [g] while keeping it on the frontier: the data tensor and
       the weight are indexed by the same expression and multiplied;}
    {- [Match p] moves the (bare-iterator) dim [p] off the frontier
       into the most recent weight group — the implicit step
       accompanying [Share] in \u{00a7}5.3.}} *)

type group =
  | Current_group  (** extend the weight tensor of the last [Share] *)
  | New_group  (** start a new weight tensor *)

type t =
  | Split of int * int
  | Merge of int * Shape.Size.t
  | Shift of int
  | Unfold of int * int
  | Expand of int
  | Stride of int * Shape.Size.t
  | Reduce of Shape.Size.t
  | Share of int * group
  | Match of int

type kind =
  | K_split
  | K_merge
  | K_shift
  | K_unfold
  | K_expand
  | K_stride
  | K_reduce
  | K_share
  | K_match

val kind : t -> kind
val is_view : kind -> bool
(** Views (Table 1): Split, Merge, Shift, Unfold, Expand, Stride. *)

val is_one_to_one_view : kind -> bool
(** Split, Merge, Shift: neither discard nor replicate elements. *)

val is_one_to_many : kind -> bool
(** Unfold, Expand: eliminate a frontier dimension. *)

val is_contraction : kind -> bool
(** Reduce, Share (and the implicit Match). *)

val positions : t -> int list
(** Frontier positions the action touches (empty for [Reduce]). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val kind_name : kind -> string
