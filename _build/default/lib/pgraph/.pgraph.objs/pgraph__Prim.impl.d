lib/pgraph/prim.ml: Format Shape Stdlib
