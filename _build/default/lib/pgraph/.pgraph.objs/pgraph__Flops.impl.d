lib/pgraph/flops.ml: Coord Graph List Shape
