lib/pgraph/trace_io.mli: Graph Prim Shape
