lib/pgraph/distance.ml: Hashtbl List Option Shape String
