lib/pgraph/distance.mli: Shape
