lib/pgraph/graph.mli: Coord Format Prim Shape
