lib/pgraph/graph.ml: Coord Format List Prim Printf Result Shape
