lib/pgraph/flops.mli: Graph Shape
