lib/pgraph/canon.ml: Coord Format Graph List Prim Result Shape
