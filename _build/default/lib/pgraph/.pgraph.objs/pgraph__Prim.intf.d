lib/pgraph/prim.mli: Format Shape
