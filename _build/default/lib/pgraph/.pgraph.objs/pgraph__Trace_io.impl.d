lib/pgraph/trace_io.ml: Format Graph List Prim Printf Result Shape String
