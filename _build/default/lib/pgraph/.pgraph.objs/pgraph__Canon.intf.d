lib/pgraph/canon.mli: Coord Graph Prim Shape
