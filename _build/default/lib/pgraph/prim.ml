module Size = Shape.Size

type group =
  | Current_group
  | New_group

type t =
  | Split of int * int
  | Merge of int * Size.t
  | Shift of int
  | Unfold of int * int
  | Expand of int
  | Stride of int * Size.t
  | Reduce of Size.t
  | Share of int * group
  | Match of int

type kind =
  | K_split
  | K_merge
  | K_shift
  | K_unfold
  | K_expand
  | K_stride
  | K_reduce
  | K_share
  | K_match

let kind = function
  | Split _ -> K_split
  | Merge _ -> K_merge
  | Shift _ -> K_shift
  | Unfold _ -> K_unfold
  | Expand _ -> K_expand
  | Stride _ -> K_stride
  | Reduce _ -> K_reduce
  | Share _ -> K_share
  | Match _ -> K_match

let is_view = function
  | K_split | K_merge | K_shift | K_unfold | K_expand | K_stride -> true
  | K_reduce | K_share | K_match -> false

let is_one_to_one_view = function
  | K_split | K_merge | K_shift -> true
  | K_unfold | K_expand | K_stride | K_reduce | K_share | K_match -> false

let is_one_to_many = function
  | K_unfold | K_expand -> true
  | K_split | K_merge | K_shift | K_stride | K_reduce | K_share | K_match -> false

let is_contraction = function
  | K_reduce | K_share | K_match -> true
  | K_split | K_merge | K_shift | K_unfold | K_expand | K_stride -> false

let positions = function
  | Split (p, q) -> [ p; q ]
  | Merge (p, _) | Shift p | Expand p | Stride (p, _) | Share (p, _) | Match p -> [ p ]
  | Unfold (p, w) -> [ p; w ]
  | Reduce _ -> []

let compare = Stdlib.compare
let equal a b = compare a b = 0

let kind_name = function
  | K_split -> "Split"
  | K_merge -> "Merge"
  | K_shift -> "Shift"
  | K_unfold -> "Unfold"
  | K_expand -> "Expand"
  | K_stride -> "Stride"
  | K_reduce -> "Reduce"
  | K_share -> "Share"
  | K_match -> "Match"

let pp ppf = function
  | Split (p, q) -> Format.fprintf ppf "Split@(%d,%d)" p q
  | Merge (p, b) -> Format.fprintf ppf "Merge(%a)@%d" Size.pp b p
  | Shift p -> Format.fprintf ppf "Shift@%d" p
  | Unfold (p, w) -> Format.fprintf ppf "Unfold@(%d,%d)" p w
  | Expand p -> Format.fprintf ppf "Expand@%d" p
  | Stride (p, s) -> Format.fprintf ppf "Stride(%a)@%d" Size.pp s p
  | Reduce n -> Format.fprintf ppf "Reduce(%a)" Size.pp n
  | Share (p, Current_group) -> Format.fprintf ppf "Share@%d" p
  | Share (p, New_group) -> Format.fprintf ppf "Share*@%d" p
  | Match p -> Format.fprintf ppf "Match@%d" p

let to_string p = Format.asprintf "%a" pp p
