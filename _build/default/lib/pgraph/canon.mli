(** On-the-fly canonicalization (\u{00a7}6).

    Rather than rewriting pGraphs, Syno discards any candidate action
    that would create an uncanonical form.  The rules implemented here:

    {ul
    {- {b expression normal form}: a view primitive whose freshly built
       coordinate expressions are not already in TRS normal form is
       redundant — a structurally simpler construction of the same (or
       almost the same, under the approximate rules of Fig. 3(c))
       semantics exists.  This subsumes "Merge cannot be above Split"
       and friends (Fig. 3(a), (c));}
    {- {b commuting-action ordering}: when an action commutes with the
       previously applied one (they touch disjoint frontier dims), only
       the ordering with non-decreasing action keys is canonical.  With
       contractions ranked above views this also implements "push down
       1-to-1 views after contractions" (Fig. 3(b));}
    {- {b futile contractions}: no [Expand] of a [Reduce]-created dim;
       no [Match] that strands a reduction iterator in a single weight
       group; [Unfold] may involve at most one reduced coordinate;}
    {- {b occurrence budgets} for the restricted primitives [Expand],
       [Stride], [Shift] (\u{00a7}5.2);}
    {- {b window sanity}: an [Unfold] window must not exceed the main
       dimension under any extracted valuation.}} *)

type config = {
  simplify_ctx : Coord.Simplify.ctx;
  max_expand : int;  (** default 1 *)
  max_stride : int;  (** default 1 *)
  max_shift : int;  (** default 2 *)
  max_reduce : int;  (** default 4 *)
  max_frontier : int;  (** frontier dims cap, default 8 *)
}

val default_config : Coord.Simplify.ctx -> config

val check : config -> Graph.t -> Prim.t -> (Graph.t, string) result
(** [check cfg g prim] applies [prim] and validates canonicality;
    [Error reason] if the action is inapplicable or uncanonical. *)

val is_canonical : config -> Graph.t -> Prim.t -> bool

val trace_is_canonical : config -> Shape.Size.t list -> Prim.t list -> bool
(** Replay a whole trace from an output shape through [check] — used by
    the Table 3 / \u{00a7}9.4 canonical-rate experiments. *)
