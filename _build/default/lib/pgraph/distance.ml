module Size = Shape.Size
module Var = Shape.Var

type side =
  | Current
  | Desired

(* Exact divisibility without introducing denominators. *)
let div_exact a b =
  match Size.div a b with
  | Some q when not (Size.has_negative_exponent q) -> Some q
  | Some _ | None -> None

let multiset_equal a b =
  List.length a = List.length b
  &&
  let sa = List.sort Size.compare a and sb = List.sort Size.compare b in
  List.for_all2 Size.equal sa sb

(* Cost of one reshape group.  [None] = infeasible group. *)
let group_cost lhs rhs =
  if multiset_equal lhs rhs then Some 0
  else
    match (lhs, rhs) with
    (* Desired dims with no current counterpart need a Reduce to
       introduce the missing variables, then regrouping: one step for
       the Reduce plus (1 + #rhs - 2) reshapes. *)
    | [], _ :: _ -> Some (List.length rhs)
    | [], [] -> Some 0
    | _ :: _, _ -> (
        match div_exact (Size.product lhs) (Size.product rhs) with
        | None -> None
        | Some ratio ->
            (* When the group's product shrinks, at least one
               eliminating primitive (Unfold window, Expand, Match) is
               required.  A single Unfold both regroups and eliminates,
               so the two requirements overlap: the bound is their
               maximum, not their sum. *)
            let elim = if Size.is_one ratio then 0 else 1 in
            let reshapes =
              match rhs with
              | [] -> max 0 (List.length lhs - 1)
              | _ :: _ -> max 0 (List.length lhs + List.length rhs - 2)
            in
            Some (max reshapes elim))

(* --- Grouping enumeration ---------------------------------------------- *)

(* Dimensions sharing a primary variable must live in the same group;
   we union-find primary variables, turning the dims into "units", then
   enumerate set partitions of the units and attachments of the
   coefficient-only dims. *)

let primary_vars size = List.filter Var.is_primary (Size.vars size)

let units_of dims =
  (* dims : (side * Size.t) list.  Returns unit list, each a list of
     (side * Size.t), plus the coefficient-only dims. *)
  let with_primary, coeff_only =
    List.partition (fun (_, s) -> primary_vars s <> []) dims
  in
  (* Union-find over primary variable names. *)
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
        let root = find p in
        if root <> p then Hashtbl.replace parent v root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun (_, s) ->
      match List.map Var.name (primary_vars s) with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    with_primary;
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun ((_, s) as dim) ->
      let root = find (Var.name (List.hd (primary_vars s))) in
      let existing = try Hashtbl.find buckets root with Not_found -> [] in
      Hashtbl.replace buckets root (dim :: existing))
    with_primary;
  let units = Hashtbl.fold (fun _ dims acc -> dims :: acc) buckets [] in
  (units, coeff_only)

(* All set partitions of [items], capped. *)
let rec partitions items =
  match items with
  | [] -> [ [] ]
  | x :: rest ->
      List.concat_map
        (fun parts ->
          (* x joins each existing block, or starts a new one. *)
          let joined =
            List.mapi
              (fun i _ -> List.mapi (fun j b -> if i = j then x :: b else b) parts)
              parts
          in
          ([ x ] :: parts) :: joined)
        (partitions rest)

(* Attach each coefficient-only dim to one of the blocks, or (for
   current-side dims) to a fresh elimination block. *)
let rec attachments coeff_dims blocks =
  match coeff_dims with
  | [] -> [ blocks ]
  | ((side, _) as dim) :: rest ->
      let with_join =
        List.concat_map
          (fun blocks' ->
            List.mapi
              (fun i _ -> List.mapi (fun j b -> if i = j then dim :: b else b) blocks')
              blocks')
          (attachments rest blocks)
      in
      let with_own =
        match side with
        | Current -> List.map (fun blocks' -> [ dim ] :: blocks') (attachments rest blocks)
        | Desired -> []
      in
      with_own @ with_join

let max_schemes = 20_000

let raw_distance ~current ~desired =
  if multiset_equal current desired then Some 0
  else
    let dims =
      List.map (fun s -> (Current, s)) current @ List.map (fun s -> (Desired, s)) desired
    in
    let units, coeff_only = units_of dims in
    let unit_partitions = partitions (List.map (fun u -> u) units) in
    let best = ref None in
    let count = ref 0 in
    (try
       List.iter
         (fun unit_part ->
           (* Each block of the unit partition is a list of units; flatten
              to dims, then attach coefficient-only dims. *)
           let blocks = List.map List.concat unit_part in
           List.iter
             (fun blocks' ->
               incr count;
               if !count > max_schemes then raise Exit;
               let cost =
                 List.fold_left
                   (fun acc block ->
                     match acc with
                     | None -> None
                     | Some acc ->
                         let lhs =
                           List.filter_map
                             (fun (side, s) -> if side = Current then Some s else None)
                             block
                         in
                         let rhs =
                           List.filter_map
                             (fun (side, s) -> if side = Desired then Some s else None)
                             block
                         in
                         Option.map (fun c -> acc + c) (group_cost lhs rhs))
                   (Some 0) blocks'
               in
               match cost with
               | None -> ()
               | Some total -> (
                   match !best with
                   | Some b when b <= total -> ()
                   | Some _ | None -> best := Some total))
             (attachments coeff_only blocks))
         unit_partitions
     with Exit -> ());
    !best

(* --- Memoization -------------------------------------------------------- *)

type t = (string, int option) Hashtbl.t

let create () = Hashtbl.create 1024

let key ~current ~desired =
  let part dims =
    String.concat ";" (List.map Size.to_string (List.sort Size.compare dims))
  in
  part current ^ "|" ^ part desired

let distance t ~current ~desired =
  let k = key ~current ~desired in
  match Hashtbl.find_opt t k with
  | Some d -> d
  | None ->
      let d = raw_distance ~current ~desired in
      Hashtbl.add t k d;
      d

let within t ~current ~desired ~budget =
  match distance t ~current ~desired with Some d -> d <= budget | None -> false
