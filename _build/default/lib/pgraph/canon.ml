module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify

type config = {
  simplify_ctx : Simplify.ctx;
  max_expand : int;
  max_stride : int;
  max_shift : int;
  max_reduce : int;
  max_frontier : int;
}

let default_config simplify_ctx =
  { simplify_ctx; max_expand = 1; max_stride = 1; max_shift = 2; max_reduce = 4; max_frontier = 8 }

let ( let* ) r f = Result.bind r f
let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

(* For-all-valuations size comparison (footnote 4 of the paper). *)
let size_le ctx a b =
  match Simplify.valuations ctx with
  | [] -> false
  | vs ->
      List.for_all
        (fun v ->
          match (Valuation.size_opt v a, Valuation.size_opt v b) with
          | Some x, Some y -> x <= y
          | _, _ -> false)
        vs

(* --- Occurrence budgets ------------------------------------------------ *)

let check_budgets cfg g prim =
  let over kind limit name =
    if Graph.counts g ~kind + 1 > limit then fail "%s budget exceeded" name else Ok ()
  in
  match Prim.kind prim with
  | Prim.K_expand -> over Prim.K_expand cfg.max_expand "Expand"
  | Prim.K_stride -> over Prim.K_stride cfg.max_stride "Stride"
  | Prim.K_shift -> over Prim.K_shift cfg.max_shift "Shift"
  | Prim.K_reduce -> over Prim.K_reduce cfg.max_reduce "Reduce"
  | Prim.K_split | Prim.K_merge | Prim.K_unfold | Prim.K_share | Prim.K_match -> Ok ()

(* --- Futile-contraction rules ------------------------------------------ *)

let dim_has_reduction (d : Graph.dim) =
  List.exists (fun it -> it.Ast.role = Ast.Reduction) (Ast.iters d.Graph.expr)

let check_contraction_rules cfg g prim =
  let dim p = List.nth (Graph.frontier g) p in
  match prim with
  | Prim.Expand p ->
      if (dim p).Graph.origin = Some Prim.K_reduce then
        fail "Expand of a Reduce dim only scales the result"
      else if dim_has_reduction (dim p) then fail "Expand of a reduced coordinate"
      else Ok ()
  | Prim.Unfold (p, w) ->
      if dim_has_reduction (dim p) && dim_has_reduction (dim w) then
        fail "Unfold allows at most one reduced coordinate"
      else if not (size_le cfg.simplify_ctx (dim w).Graph.size (dim p).Graph.size) then
        fail "Unfold window exceeds the main dimension"
      else Ok ()
  | Prim.Reduce n -> if Size.is_constant n && Size.constant n = 1 then fail "Reduce(1)" else Ok ()
  | Prim.Match p -> (
      let d = dim p in
      match d.Graph.expr with
      | Ast.Iter it when it.Ast.role = Ast.Reduction ->
          let in_groups =
            List.length
              (List.filter
                 (List.exists (fun j -> j.Ast.id = it.Ast.id))
                 (Graph.weights g))
          in
          let elsewhere_in_frontier =
            List.exists
              (fun (d' : Graph.dim) ->
                d' != d && List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters d'.Graph.expr))
              (Graph.frontier g)
          in
          (* After the Match the iterator must still connect at least two
             tensors, otherwise the reduction is a constant factor. *)
          if in_groups >= 1 || elsewhere_in_frontier then Ok ()
          else fail "Match would strand a reduction iterator in one weight group"
      | Ast.Iter _ -> Ok ()
      | Ast.Const _ | Ast.Size_const _ | Ast.Add _ | Ast.Sub _ | Ast.Mul _ | Ast.Div _
      | Ast.Mod _ ->
          Ok () (* Graph.apply will reject non-bare dims anyway *))
  | Prim.Split _ | Prim.Merge _ | Prim.Shift _ | Prim.Stride _ | Prim.Share _ -> Ok ()

(* --- Expression normal form -------------------------------------------- *)

(* The freshly created dims of a view must already be in TRS normal
   form; otherwise the same (or an almost identical) operator has a
   syntactically simpler construction, which is the canonical one. *)
let check_expr_normal_form cfg g g' prim =
  if not (Prim.is_view (Prim.kind prim)) then Ok ()
  else
    let before = Graph.frontier g and after = Graph.frontier g' in
    let fresh =
      List.filter (fun (d : Graph.dim) -> not (List.memq d before)) after
    in
    let bad (d : Graph.dim) =
      let simplified = Simplify.simplify cfg.simplify_ctx d.Graph.expr in
      if not (Ast.equal simplified d.Graph.expr) then
        Some
          (Format.asprintf "%a is not in normal form (= %a)" Ast.pp d.Graph.expr Ast.pp
             simplified)
      else None
    in
    match List.filter_map bad fresh with
    | [] -> Ok ()
    | msg :: _ -> Error msg

(* --- Commuting-action ordering ----------------------------------------- *)

let kind_rank = function
  | Prim.K_shift -> 0
  | Prim.K_stride -> 1
  | Prim.K_merge -> 2
  | Prim.K_split -> 3
  | Prim.K_unfold -> 4
  | Prim.K_expand -> 5
  | Prim.K_reduce -> 6
  | Prim.K_share -> 7
  | Prim.K_match -> 8

(* Frontier positions the previous action wrote, expressed in the
   current frontier's indexing. *)
let written_positions frontier_len = function
  | Prim.Split (p, q) -> [ min p q ]
  | Prim.Merge (p, _) -> [ p; p + 1 ]
  | Prim.Shift p | Prim.Stride (p, _) | Prim.Share (p, _) -> [ p ]
  | Prim.Unfold (p, w) -> [ (if w < p then p - 1 else p) ]
  | Prim.Expand _ | Prim.Match _ -> []
  | Prim.Reduce _ -> [ frontier_len - 1 ]

let action_key prim =
  let pos = match Prim.positions prim with [] -> max_int | p :: _ -> p in
  (kind_rank (Prim.kind prim), pos, prim)

let key_le (r1, p1, a1) (r2, p2, a2) =
  r1 < r2 || (r1 = r2 && (p1 < p2 || (p1 = p2 && Prim.compare a1 a2 <= 0)))

let check_ordering g prim =
  match Graph.last_prim g with
  | None -> Ok ()
  | Some last ->
      let written = written_positions (List.length (Graph.frontier g)) last in
      let read = Prim.positions prim in
      (* Disjoint touched positions means the two actions could have
         been applied in either order with the same result.  Weight
         actions (Share / Match) are stateful with respect to the
         current weight group, so they never commute with each other. *)
      let weight_action p =
        match Prim.kind p with
        | Prim.K_share | Prim.K_match -> true
        | Prim.K_split | Prim.K_merge | Prim.K_shift | Prim.K_unfold | Prim.K_expand
        | Prim.K_stride | Prim.K_reduce ->
            false
      in
      let commute =
        (not (List.exists (fun p -> List.mem p read) written))
        && not (weight_action last && weight_action prim)
      in
      if (not commute) || key_le (action_key last) (action_key prim) then Ok ()
      else fail "uncanonical ordering: %s then %s" (Prim.to_string last) (Prim.to_string prim)

(* --- Entry points ------------------------------------------------------- *)

(* Every dimension size must be a positive integer under every
   extracted valuation, otherwise the operator cannot be instantiated
   on the backbone's concrete shapes. *)
let check_concrete_sizes cfg g' =
  let ok size =
    match Simplify.valuations cfg.simplify_ctx with
    | [] -> true
    | vs -> List.for_all (fun v -> Valuation.size_opt v size <> None) vs
  in
  if List.for_all (fun (d : Graph.dim) -> ok d.Graph.size) (Graph.frontier g') then Ok ()
  else fail "a dimension size is not integral under some valuation"

let check cfg g prim =
  let* () = check_budgets cfg g prim in
  let* () = check_contraction_rules cfg g prim in
  let* () = check_ordering g prim in
  let* g' = Graph.apply g prim in
  if List.length (Graph.frontier g') > cfg.max_frontier then fail "frontier too wide"
  else
    let* () = check_concrete_sizes cfg g' in
    let* () = check_expr_normal_form cfg g g' prim in
    Ok g'

let is_canonical cfg g prim = Result.is_ok (check cfg g prim)

let trace_is_canonical cfg output_shape trace =
  let rec go g = function
    | [] -> true
    | p :: rest -> ( match check cfg g p with Ok g' -> go g' rest | Error _ -> false)
  in
  go (Graph.init output_shape) trace
