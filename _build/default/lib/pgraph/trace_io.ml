module Size = Shape.Size
module Var = Shape.Var

let ( let* ) r f = Result.bind r f
let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt

(* --- Sizes --------------------------------------------------------------- *)

let size_to_string s =
  let factors =
    (if Size.constant s <> 1 || Size.vars s = [] then [ string_of_int (Size.constant s) ]
     else [])
    @ List.map
        (fun v ->
          let prefix = if Var.is_coefficient v then "'" else "" in
          let e = Size.exponent s v in
          if e = 1 then prefix ^ Var.name v
          else Printf.sprintf "%s%s^%d" prefix (Var.name v) e)
        (Size.vars s)
  in
  String.concat "*" factors

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let parse_factor token =
  let token = String.trim token in
  if token = "" then fail "empty size factor"
  else
    let base, power =
      match String.index_opt token '^' with
      | Some i -> (
          let b = String.sub token 0 i in
          let p = String.sub token (i + 1) (String.length token - i - 1) in
          match int_of_string_opt p with
          | Some p -> (b, Ok p)
          | None -> (b, fail "bad exponent %S" p))
      | None -> (token, Ok 1)
    in
    let* power = power in
    if base = "" then fail "empty base in %S" token
    else if base.[0] = '\'' then
      let name = String.sub base 1 (String.length base - 1) in
      if name = "" || not (String.for_all is_ident_char name) then
        fail "bad coefficient variable %S" base
      else Ok (Size.var_pow (Var.coefficient name) power)
    else if String.for_all (fun c -> c >= '0' && c <= '9') base then
      match int_of_string_opt base with
      | Some n when n > 0 && power = 1 -> Ok (Size.of_int n)
      | Some n when n > 0 -> (
          match Size.pow (Size.of_int n) power with
          | Some s -> Ok s
          | None -> fail "non-integer constant power in %S" token)
      | Some _ | None -> fail "bad integer literal %S" base
    else if String.for_all is_ident_char base then
      if power < 0 then fail "primary variable %S cannot have a negative power" base
      else Ok (Size.var_pow (Var.primary base) power)
    else fail "bad size factor %S" token

let size_of_string text =
  let tokens = String.split_on_char '*' text in
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      let* f = parse_factor token in
      Ok (Size.mul acc f))
    (Ok Size.one) tokens

(* --- Primitives ----------------------------------------------------------- *)

let prim_to_string = function
  | Prim.Split (p, q) -> Printf.sprintf "Split(%d,%d)" p q
  | Prim.Merge (p, b) -> Printf.sprintf "Merge(%d,%s)" p (size_to_string b)
  | Prim.Shift p -> Printf.sprintf "Shift(%d)" p
  | Prim.Unfold (p, w) -> Printf.sprintf "Unfold(%d,%d)" p w
  | Prim.Expand p -> Printf.sprintf "Expand(%d)" p
  | Prim.Stride (p, s) -> Printf.sprintf "Stride(%d,%s)" p (size_to_string s)
  | Prim.Reduce s -> Printf.sprintf "Reduce(%s)" (size_to_string s)
  | Prim.Share (p, Prim.New_group) -> Printf.sprintf "Share(%d,new)" p
  | Prim.Share (p, Prim.Current_group) -> Printf.sprintf "Share(%d,cur)" p
  | Prim.Match p -> Printf.sprintf "Match(%d)" p

let split_args inner = List.map String.trim (String.split_on_char ',' inner)

let parse_int text =
  match int_of_string_opt (String.trim text) with
  | Some i when i >= 0 -> Ok i
  | Some _ | None -> fail "bad position %S" text

let prim_of_string text =
  let text = String.trim text in
  match (String.index_opt text '(', String.rindex_opt text ')') with
  | Some i, Some j when j = String.length text - 1 && i < j ->
      let head = String.sub text 0 i in
      let args = split_args (String.sub text (i + 1) (j - i - 1)) in
      let pos1 = function
        | [ a ] -> parse_int a
        | _ -> fail "%s expects one position" head
      in
      (match (head, args) with
      | "Split", [ a; b ] ->
          let* p = parse_int a in
          let* q = parse_int b in
          Ok (Prim.Split (p, q))
      | "Merge", [ a; b ] ->
          let* p = parse_int a in
          let* s = size_of_string b in
          Ok (Prim.Merge (p, s))
      | "Shift", args ->
          let* p = pos1 args in
          Ok (Prim.Shift p)
      | "Unfold", [ a; b ] ->
          let* p = parse_int a in
          let* w = parse_int b in
          Ok (Prim.Unfold (p, w))
      | "Expand", args ->
          let* p = pos1 args in
          Ok (Prim.Expand p)
      | "Stride", [ a; b ] ->
          let* p = parse_int a in
          let* s = size_of_string b in
          Ok (Prim.Stride (p, s))
      | "Reduce", [ a ] ->
          let* s = size_of_string a in
          Ok (Prim.Reduce s)
      | "Share", [ a; "new" ] ->
          let* p = parse_int a in
          Ok (Prim.Share (p, Prim.New_group))
      | "Share", [ a; "cur" ] ->
          let* p = parse_int a in
          Ok (Prim.Share (p, Prim.Current_group))
      | "Match", args ->
          let* p = pos1 args in
          Ok (Prim.Match p)
      | head, _ -> fail "unknown primitive %S" head)
  | _, _ -> fail "malformed primitive %S" text

(* --- Whole operators -------------------------------------------------------- *)

let to_string (op : Graph.operator) =
  let shapes sizes = String.concat " " (List.map size_to_string sizes) in
  Printf.sprintf "syno-operator v1\noutput: %s\ninput: %s\ntrace: %s\n"
    (shapes op.Graph.op_output_shape)
    (shapes op.Graph.op_input_shape)
    (String.concat "; " (List.map prim_to_string op.Graph.op_trace))

type parsed = {
  output_shape : Size.t list;
  input_shape : Size.t list;
  trace : Prim.t list;
}

let parse_shape_list text =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim text))
  in
  if tokens = [] then fail "empty shape"
  else
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        let* s = size_of_string t in
        Ok (s :: acc))
      (Ok []) tokens
    |> Result.map List.rev

let field_of_line line =
  match String.index_opt line ':' with
  | Some i ->
      Some
        ( String.trim (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  | None -> None

let parse text =
  let lines =
    List.filter
      (fun l -> l <> "" && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' text))
  in
  match lines with
  | header :: rest when String.trim header = "syno-operator v1" ->
      let find key =
        match List.find_map (fun l ->
            match field_of_line l with
            | Some (k, v) when k = key -> Some v
            | Some _ | None -> None) rest
        with
        | Some v -> Ok v
        | None -> fail "missing field %S" key
      in
      let* output = find "output" in
      let* input = find "input" in
      let* trace_text = find "trace" in
      let* output_shape = parse_shape_list output in
      let* input_shape = parse_shape_list input in
      let* trace =
        List.fold_left
          (fun acc t ->
            let* acc = acc in
            let t = String.trim t in
            if t = "" then Ok acc
            else
              let* p = prim_of_string t in
              Ok (p :: acc))
          (Ok [])
          (String.split_on_char ';' trace_text)
        |> Result.map List.rev
      in
      Ok { output_shape; input_shape; trace }
  | header :: _ -> fail "unknown header %S" header
  | [] -> fail "empty operator file"

let rebuild ?allow_strided parsed =
  let* g = Graph.apply_all (Graph.init parsed.output_shape) parsed.trace in
  Graph.complete ?allow_strided g ~desired:parsed.input_shape

let of_string ?allow_strided text =
  let* parsed = parse text in
  rebuild ?allow_strided parsed

let roundtrip_exact op =
  match of_string ~allow_strided:true (to_string op) with
  | Ok op' -> Graph.operator_signature op = Graph.operator_signature op'
  | Error _ -> false
