(** Textual serialization of operators.

    A discovered operator is fully determined by its output shape, its
    desired input shape, and the primitive trace; this module prints
    and parses that triple so search results can be saved and reloaded
    (the paper's search sessions persist their samples the same way).

    Format (one logical field per line, [#] comments allowed):
    {v
    syno-operator v1
    output: N C_out H W
    input: N C_in H W
    trace: Reduce(C_in); Reduce(k); Share(4,new); Unfold(2,5); Match(1)
    v}

    Sizes are products of factors separated by [*]: positive integer
    literals, primary variables (identifiers), and coefficient
    variables (identifiers prefixed with [']), each optionally raised
    with [^] to an integer power, e.g. [C_out*'g^-1*'s^-1]. *)

val size_to_string : Shape.Size.t -> string
val size_of_string : string -> (Shape.Size.t, string) result

val prim_to_string : Prim.t -> string
val prim_of_string : string -> (Prim.t, string) result

val to_string : Graph.operator -> string

type parsed = {
  output_shape : Shape.Size.t list;
  input_shape : Shape.Size.t list;
  trace : Prim.t list;
}

val parse : string -> (parsed, string) result

val rebuild : ?allow_strided:bool -> parsed -> (Graph.operator, string) result
(** Replay the trace and complete against the input shape. *)

val of_string : ?allow_strided:bool -> string -> (Graph.operator, string) result
(** [parse] followed by [rebuild]. *)

val roundtrip_exact : Graph.operator -> bool
(** [of_string (to_string op)] yields an operator with the same
    signature — used as a property test. *)
