(** Partial pGraphs: the bottom-up synthesis state of \u{00a7}5 and \u{00a7}7.1.

    Synthesis starts from the output coordinates of the operator (the
    "bottom" of the pGraph) and applies primitives that transform the
    current {e frontier} of coordinate expressions towards the input
    tensor (the "top").  A frontier dimension carries the expression —
    over output (spatial) and reduction iterators — that will index the
    input tensor along that dimension if the pGraph is completed now. *)

type dim = {
  expr : Coord.Ast.t;
  size : Shape.Size.t;
  origin : Prim.kind option;
      (** The primitive that produced this dim; [None] for an original
          output dimension.  Used by canonicalization. *)
  pending_stride : bool;
      (** Set by [Stride]; such a dim may only be consumed as the
          window of an [Unfold] (\u{00a7}5.2: Stride must pair with a
          1-to-many primitive to keep the no-discard property). *)
}

type t

val init : Shape.Size.t list -> t
(** [init output_shape] is the empty pGraph whose bottom coordinates
    are fresh spatial iterators over [output_shape]. *)

val frontier : t -> dim list
val frontier_sizes : t -> Shape.Size.t list
val weights : t -> Coord.Ast.iter list list
(** Weight groups, oldest first; each is the (bare) iterators indexing
    one weight tensor, in assignment order. *)

val spatial_iters : t -> Coord.Ast.iter list
val reduction_iters : t -> Coord.Ast.iter list
val trace : t -> Prim.t list
(** Applied primitives, oldest first. *)

val num_prims : t -> int
val counts : t -> kind:Prim.kind -> int
(** How many applied primitives have the given kind. *)

val last_prim : t -> Prim.t option

val apply : t -> Prim.t -> (t, string) result
(** Apply an action; [Error reason] when structurally inapplicable
    (position out of range, non-dividing [Merge] block, [Share]/[Match]
    of a non-bare dim, misuse of a pending-stride dim, ...). *)

val apply_exn : t -> Prim.t -> t
val apply_all : t -> Prim.t list -> (t, string) result

(** {1 Complete operators} *)

type operator = {
  op_output_iters : Coord.Ast.iter list;
  op_output_shape : Shape.Size.t list;
  op_input_exprs : Coord.Ast.t list;
      (** one per input dimension, in input-shape order *)
  op_input_shape : Shape.Size.t list;
  op_weights : Coord.Ast.iter list list;
  op_reductions : Coord.Ast.iter list;
  op_trace : Prim.t list;
}

val complete :
  ?allow_strided:bool -> t -> desired:Shape.Size.t list -> (operator, string) result
(** Close the pGraph against the desired input shape.  Succeeds when
    the frontier sizes are a permutation of [desired] (transposition is
    free at the final match, \u{00a7}7.1) and the quality conditions hold:
    no pending strides; every spatial iterator appears in the input
    expressions or a weight (no replicated output slices); every
    reduction iterator appears in the input expressions or in at least
    two weight groups (no futile constant-factor reductions). *)

val matches : t -> desired:Shape.Size.t list -> bool
(** Whether [complete] would succeed on shape grounds (permutation
    match of frontier sizes). *)

val pp : Format.formatter -> t -> unit
val pp_operator : Format.formatter -> operator -> unit

val operator_signature : operator -> string
(** A canonical textual form of the operator semantics (input
    expressions, weights, reductions), usable for deduplication. *)
