(** Deterministic pseudo-random number generator (splitmix64-based).

    All stochastic components of the reproduction (weight init, data
    synthesis, search sampling) draw from explicitly seeded generators
    so every experiment is bit-reproducible. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent generator derived from the current state. *)

val int : t -> int -> int
(** [int t bound] in [[0, bound)]; [bound > 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
val normal : t -> float
(** Standard normal (Box–Muller). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
val choose : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on an empty list. *)
