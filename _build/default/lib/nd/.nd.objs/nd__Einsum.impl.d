lib/nd/einsum.ml: Array Char Hashtbl List Printf String Tensor
