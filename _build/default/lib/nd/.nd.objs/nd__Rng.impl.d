lib/nd/rng.ml: Array Float Int64 List
