lib/nd/tensor.mli: Format Rng
