lib/nd/einsum.mli: Tensor
