lib/nd/rng.mli:
