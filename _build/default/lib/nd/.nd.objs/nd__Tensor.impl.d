lib/nd/tensor.ml: Array Float Format List Rng String
