type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let normal t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))
