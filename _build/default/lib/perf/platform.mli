(** Hardware platform models (\u{00a7}9.1).

    The paper evaluates on an NVIDIA Jetson Orin Nano (6-core
    Cortex-A78AE CPU and a 1024-core Ampere GPU) and an A100.  We model
    each as a roofline: peak FP32 throughput, DRAM bandwidth, a
    last-level cache capacity that decides whether weights stay
    resident, and a per-kernel launch overhead.  Numbers come from
    public datasheets; only latency {e ratios} matter downstream. *)

type t = {
  name : string;
  peak_gflops : float;  (** FP32 peak *)
  tensor_core_gflops : float option;
      (** TF32 tensor-core peak, exploitable only by compilers that
          emit tensor-core code (TorchInductor, not TVM in FP32). *)
  mem_bw_gbps : float;
  cache_bytes : int;
  launch_overhead_us : float;
}

val mobile_cpu : t
val mobile_gpu : t
val a100 : t
val all : t list
val by_name : string -> t
