(** Roofline latency estimation.

    A kernel's time is the maximum of its compute time (staged FLOPs at
    the compiler's sustained rate) and its memory time (data traffic at
    DRAM bandwidth, with weights that overflow the last-level cache
    charged multiple times), plus per-kernel launch overhead for each
    stage.  End-to-end model latency sums the per-layer kernels. *)

val kernel_time_us : Compiler_model.t -> Platform.t -> Kernel.t -> float

val operator_time_us :
  Compiler_model.t -> Platform.t -> Pgraph.Graph.operator -> Shape.Valuation.t -> float

val quantized_operator_time_us :
  Compiler_model.t -> Platform.t -> Pgraph.Graph.operator -> Shape.Valuation.t -> float
(** INT8-quantized execution of the same operator (Fig. 8 baseline). *)

type layer_instance = {
  li_operator : Pgraph.Graph.operator;
  li_valuation : Shape.Valuation.t;
  li_count : int;  (** occurrences of this layer shape in the model *)
}

val model_time_ms : Compiler_model.t -> Platform.t -> layer_instance list -> float
