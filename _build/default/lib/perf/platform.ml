type t = {
  name : string;
  peak_gflops : float;
  tensor_core_gflops : float option;
  mem_bw_gbps : float;
  cache_bytes : int;
  launch_overhead_us : float;
}

(* 6x Cortex-A78AE @ ~1.5 GHz, 2x128-bit NEON FMA: ~6*1.5*16 = 144;
   derated to sustained ~72 GFLOPs.  Shared LPDDR5 at 34 GB/s. *)
let mobile_cpu =
  {
    name = "mobile-cpu";
    peak_gflops = 72.0;
    tensor_core_gflops = None;
    mem_bw_gbps = 34.0;
    cache_bytes = 4 * 1024 * 1024;
    launch_overhead_us = 2.0;
  }

(* Orin Nano GPU: 1024 CUDA cores @ 0.625 GHz * 2 = 1.28 TFLOPs FP32;
   same 34 GB/s LPDDR5; small L2. *)
let mobile_gpu =
  {
    name = "mobile-gpu";
    peak_gflops = 1280.0;
    tensor_core_gflops = Some 2560.0;
    mem_bw_gbps = 34.0;
    cache_bytes = 2 * 1024 * 1024;
    launch_overhead_us = 8.0;
  }

(* A100-40GB: 19.5 TFLOPs FP32, 156 TFLOPs TF32 tensor cores,
   1555 GB/s HBM2, 40 MB L2. *)
let a100 =
  {
    name = "a100";
    peak_gflops = 19500.0;
    tensor_core_gflops = Some 156000.0;
    mem_bw_gbps = 1555.0;
    cache_bytes = 40 * 1024 * 1024;
    launch_overhead_us = 1.0;
  }

let all = [ mobile_cpu; mobile_gpu; a100 ]

let by_name name =
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None -> invalid_arg ("Platform.by_name: unknown platform " ^ name)
