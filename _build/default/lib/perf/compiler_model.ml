type t = { name : string; rate : Platform.t -> Kernel.t -> float }

let name t = t.name

let is_big_gpu (p : Platform.t) = p.Platform.name = "a100"
let is_cpu (p : Platform.t) = p.Platform.name = "mobile-cpu"

(* TVM: tuned generic codegen.  FP32 only (no TF32 tensor cores), solid
   efficiency everywhere, slightly lower on irregular indexing. *)
let tvm_rate (p : Platform.t) (k : Kernel.t) =
  let eff = if k.Kernel.regular then 0.60 else 0.42 in
  let eff = if k.Kernel.grouped && is_cpu p then eff *. 0.9 else eff in
  eff *. p.Platform.peak_gflops

(* TorchInductor: template-based.  Tensor cores on regular kernels when
   the GPU is "big"; ATen fallback for grouped/irregular kernels, which
   is particularly poor on mobile targets (see the EfficientNet-V2 and
   NAS-PTE discussions in the paper). *)
let inductor_rate (p : Platform.t) (k : Kernel.t) =
  if is_big_gpu p then
    if k.Kernel.regular && not k.Kernel.grouped then
      match p.Platform.tensor_core_gflops with
      | Some tc -> 0.30 *. tc (* TF32 templates, batch-1 utilization *)
      | None -> 0.75 *. p.Platform.peak_gflops
    else 0.42 *. p.Platform.peak_gflops (* Triton, FP32 *)
  else if k.Kernel.regular && (not k.Kernel.grouped) && k.Kernel.stages = 1 then
    0.50 *. p.Platform.peak_gflops
  else if is_cpu p then
    if k.Kernel.grouped then 0.10 *. p.Platform.peak_gflops
      (* ATen grouped-conv fallback *)
    else 0.28 *. p.Platform.peak_gflops (* multi-stage einsum via ATen *)
  else if k.Kernel.grouped then 0.25 *. p.Platform.peak_gflops
  else 0.32 *. p.Platform.peak_gflops

let tvm = { name = "tvm"; rate = tvm_rate }
let torchinductor = { name = "torchinductor"; rate = inductor_rate }
let all = [ tvm; torchinductor ]

let by_name name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> invalid_arg ("Compiler_model.by_name: unknown compiler " ^ name)

let effective_gflops t p k = t.rate p k
let efficiency t p k = t.rate p k /. p.Platform.peak_gflops
