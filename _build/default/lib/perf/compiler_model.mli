(** Compiler backend models (\u{00a7}9.1, \u{00a7}9.2 discussion).

    {ul
    {- {b TVM (MetaSchedule)}: generic code generation with extensive
       tuning — consistent efficiency on every kernel shape, but no
       tensor cores for FP32, so it trails TorchInductor on large GPUs
       for regular matmul-like kernels.}
    {- {b TorchInductor}: template-based.  Efficient (and tensor-core
       capable via TF32) for the regular kernels its templates cover on
       large GPUs; on mobile CPUs/GPUs or for irregular/grouped kernels
       it falls back to pre-compiled ATen kernels with a substantial
       penalty — the instability seen in Fig. 5 and Fig. 9.}} *)

type t

val tvm : t
val torchinductor : t
val all : t list
val name : t -> string
val by_name : string -> t

val effective_gflops : t -> Platform.t -> Kernel.t -> float
(** Sustained compute throughput for this kernel on this platform. *)

val efficiency : t -> Platform.t -> Kernel.t -> float
(** [effective / platform peak] (can exceed 1 with tensor cores). *)
