module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops

type t = {
  flops : int;
  naive_flops : int;
  stages : int;
  input_bytes : int;
  output_bytes : int;
  param_bytes : int;
  regular : bool;
  grouped : bool;
  arithmetic_intensity : float;
}

(* Division of a pure constant (e.g. the K/2 centering offset) does not
   make the access pattern irregular; division of an iterator does. *)
let is_dynamic e = Ast.iters e <> []

let rec irregular_expr = function
  | Ast.Div (e, _) | Ast.Mod (e, _) -> is_dynamic e
  | Ast.Add (a, b) | Ast.Sub (a, b) -> irregular_expr a || irregular_expr b
  | Ast.Mul (_, e) -> irregular_expr e
  | Ast.Iter _ | Ast.Const _ | Ast.Size_const _ -> false

let of_operator (op : Graph.operator) valuation =
  let plan = Lower.Staging.optimize op valuation in
  let bytes_per = 4 in
  let input_bytes = bytes_per * Flops.input_elems op valuation in
  let output_bytes = bytes_per * Flops.output_elems op valuation in
  let param_bytes = bytes_per * Flops.params op valuation in
  let irregular = List.exists irregular_expr op.Graph.op_input_exprs in
  (* Depthwise/grouped character: a weight dimension indexed by a
     spatial iterator that also indexes the input (per-channel weights).
     Multiple weight groups alone are fine — they lower to separate
     regular contraction stages. *)
  let spatial_weight_sharing =
    List.exists
      (List.exists (fun it ->
           it.Ast.role = Ast.Spatial
           && List.exists
                (fun e -> List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e))
                op.Graph.op_input_exprs))
      op.Graph.op_weights
  in
  let grouped = irregular || spatial_weight_sharing in
  let flops = plan.Lower.Staging.total_flops in
  let total_bytes = input_bytes + output_bytes + param_bytes in
  {
    flops;
    naive_flops = plan.Lower.Staging.naive_flops;
    stages = 1 + List.length plan.Lower.Staging.stages;
    input_bytes;
    output_bytes;
    param_bytes;
    regular = not irregular;
    grouped;
    arithmetic_intensity = float_of_int flops /. float_of_int (max 1 total_bytes);
  }

let quantize_int8 k =
  {
    k with
    flops = k.flops / 2;
    naive_flops = k.naive_flops / 2;
    input_bytes = k.input_bytes / 4;
    output_bytes = k.output_bytes / 4;
    param_bytes = k.param_bytes / 4;
    arithmetic_intensity =
      float_of_int (k.flops / 2)
      /. float_of_int (max 1 ((k.input_bytes + k.output_bytes + k.param_bytes) / 4));
  }

let pp ppf k =
  Format.fprintf ppf "kernel{flops=%d (naive %d, %d stages), bytes=%d+%d+%d, %s%s, ai=%.2f}"
    k.flops k.naive_flops k.stages k.input_bytes k.output_bytes k.param_bytes
    (if k.regular then "regular" else "irregular")
    (if k.grouped then ",grouped" else "")
    k.arithmetic_intensity
