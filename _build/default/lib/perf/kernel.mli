(** Characterization of an operator instance as a kernel for the
    performance model: FLOPs (after materialized-reduction staging),
    memory traffic, and access-pattern regularity flags that decide how
    well each compiler handles it. *)

type t = {
  flops : int;  (** staged (materialized-reduction) FLOPs *)
  naive_flops : int;
  stages : int;  (** number of kernels after staging *)
  input_bytes : int;
  output_bytes : int;
  param_bytes : int;
  regular : bool;
      (** no division/modulo indexing: contiguous matmul/conv-like *)
  grouped : bool;
      (** grouped/depthwise character: div/mod channel indexing or
          multiple weight tensors *)
  arithmetic_intensity : float;  (** flops / total bytes *)
}

val of_operator : Pgraph.Graph.operator -> Shape.Valuation.t -> t
val quantize_int8 : t -> t
(** INT8 variant: quarter-size data and parameters, and effectively
    double compute throughput (modelled as halved FLOPs). *)

val pp : Format.formatter -> t -> unit
