lib/perf/roofline.mli: Compiler_model Kernel Pgraph Platform Shape
