lib/perf/compiler_model.mli: Kernel Platform
