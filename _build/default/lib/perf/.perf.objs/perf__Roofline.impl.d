lib/perf/roofline.ml: Compiler_model Float Kernel List Pgraph Platform Shape
