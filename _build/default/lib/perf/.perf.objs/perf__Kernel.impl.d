lib/perf/kernel.ml: Coord Format List Lower Pgraph
