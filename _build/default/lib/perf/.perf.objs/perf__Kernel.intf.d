lib/perf/kernel.mli: Format Pgraph Shape
