lib/perf/platform.ml: List
