lib/perf/platform.mli:
