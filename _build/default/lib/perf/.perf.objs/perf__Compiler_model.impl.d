lib/perf/compiler_model.ml: Kernel List Platform
