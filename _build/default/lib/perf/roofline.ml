let kernel_time_us compiler platform (k : Kernel.t) =
  let open Platform in
  let gflops = Compiler_model.effective_gflops compiler platform k in
  let compute_us = float_of_int k.Kernel.flops /. (gflops *. 1e3) in
  (* Weights that exceed the cache are streamed from DRAM repeatedly;
     charge them a reuse factor.  This is what makes parameter-light
     operators (Operator 2) win big on edge devices. *)
  let param_traffic =
    if k.Kernel.param_bytes <= platform.cache_bytes then float_of_int k.Kernel.param_bytes
    else float_of_int k.Kernel.param_bytes *. 6.0
  in
  let bytes =
    float_of_int (k.Kernel.input_bytes + k.Kernel.output_bytes) +. param_traffic
  in
  let memory_us = bytes /. (platform.mem_bw_gbps *. 1e3) in
  Float.max compute_us memory_us
  +. (float_of_int k.Kernel.stages *. platform.launch_overhead_us)

let operator_time_us compiler platform op valuation =
  kernel_time_us compiler platform (Kernel.of_operator op valuation)

let quantized_operator_time_us compiler platform op valuation =
  kernel_time_us compiler platform (Kernel.quantize_int8 (Kernel.of_operator op valuation))

type layer_instance = {
  li_operator : Pgraph.Graph.operator;
  li_valuation : Shape.Valuation.t;
  li_count : int;
}

let model_time_ms compiler platform layers =
  List.fold_left
    (fun acc li ->
      acc
      +. float_of_int li.li_count
         *. operator_time_us compiler platform li.li_operator li.li_valuation)
    0.0 layers
  /. 1000.0
