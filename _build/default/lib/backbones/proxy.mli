(** Trainable proxy models.

    The paper trains full models on CIFAR-100 for 100 epochs per
    candidate; here a scaled-down backbone with the candidate operator
    substituted into every "conv" position is trained on the synthetic
    vision task.  The operator builder receives the concrete stage
    shapes, so one symbolic operator serves every position (\u{00a7}5.4). *)

type stage_shape = { in_ch : int; out_ch : int; hw : int }

val vision_model :
  Nd.Rng.t ->
  make_op:(Nd.Rng.t -> stage_shape -> Nn.Layer.t) ->
  ?in_channels:int ->
  ?channels:int ->
  ?classes:int ->
  ?size:int ->
  unit ->
  Nn.Model.t
(** Two operator stages with ReLU and per-channel affine between them,
    global average pooling, and a linear classifier. *)
