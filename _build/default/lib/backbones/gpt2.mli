(** A scaled-down GPT-2-shaped language model (\u{00a7}9.3).

    Token + positional embeddings, pre-norm transformer blocks with
    causal self-attention, final layer norm, and a linear LM head.  The
    Q/K/V projections are pluggable so Syno-discovered operators can
    replace them, exactly the substitution evaluated in Fig. 10. *)

type t

val create :
  Nd.Rng.t ->
  vocab:int ->
  seq_len:int ->
  embed:int ->
  heads:int ->
  layers:int ->
  ?make_qkv:(Nd.Rng.t -> embed:int -> Nn.Layer.t * Nn.Layer.t * Nn.Layer.t) ->
  unit ->
  t

val num_params : t -> int

val qkv_params : t -> int
(** Parameters in the Q/K/V projections only (the substituted part). *)

val train_step :
  t -> Nn.Optimizer.t -> inputs:int array array -> targets:int array array -> float
(** One LM step; returns the mean cross-entropy loss (nats/token). *)

val eval_loss : t -> (int array array * int array array) list -> float
val perplexity : t -> (int array array * int array array) list -> float
