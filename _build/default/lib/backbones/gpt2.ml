module Tensor = Nd.Tensor
module Tape = Grad.Tape
module Op = Grad.Op

type t = {
  vocab : int;
  seq_len : int;
  embed : int;
  token_table : Tensor.t;
  pos_table : Tensor.t;
  body : Nn.Layer.t;  (* blocks + final layer norm *)
  head : Nn.Layer.t;  (* LM head *)
  qkv_param_count : int;
}

let create rng ~vocab ~seq_len ~embed ~heads ~layers ?make_qkv () =
  let token_table = Tensor.rand_normal rng ~scale:0.05 [| vocab; embed |] in
  let pos_table = Tensor.rand_normal rng ~scale:0.05 [| seq_len; embed |] in
  let qkv_param_count = ref 0 in
  let default_qkv rng ~embed =
    let proj () = Nn.Layer.linear rng ~in_features:embed ~out_features:embed in
    (proj (), proj (), proj ())
  in
  let make_qkv = Option.value make_qkv ~default:default_qkv in
  let blocks =
    List.init layers (fun _ ->
        let ((q, k, v) as qkv) = make_qkv rng ~embed in
        qkv_param_count :=
          !qkv_param_count + Nn.Layer.num_params q + Nn.Layer.num_params k
          + Nn.Layer.num_params v;
        Nn.Attention.transformer_block rng ~embed ~heads ~qkv ())
  in
  let body =
    Nn.Layer.sequential "gpt2-body" (blocks @ [ Nn.Attention.layer_norm rng ~dim:embed ])
  in
  let head = Nn.Layer.linear rng ~in_features:embed ~out_features:vocab in
  { vocab; seq_len; embed; token_table; pos_table; body; head; qkv_param_count = !qkv_param_count }

let params t = (t.token_table :: t.pos_table :: t.body.Nn.Layer.params) @ t.head.Nn.Layer.params

let num_params t = List.fold_left (fun acc p -> acc + Tensor.numel p) 0 (params t)
let qkv_params t = t.qkv_param_count

let forward t tape ~inputs =
  let table_v = Tape.var tape t.token_table in
  let pos_v = Tape.var tape t.pos_table in
  let body_params = List.map (Tape.var tape) t.body.Nn.Layer.params in
  let head_params = List.map (Tape.var tape) t.head.Nn.Layer.params in
  let x = Op.embedding tape ~table:table_v ~ids:inputs in
  let x = Op.add_broadcast tape x pos_v in
  let x = t.body.Nn.Layer.apply tape body_params x in
  let logits = t.head.Nn.Layer.apply tape head_params x in
  (logits, (table_v :: pos_v :: body_params) @ head_params)

let batch_loss t tape ~inputs ~targets =
  let logits, param_vars = forward t tape ~inputs in
  let b = Array.length inputs and s = t.seq_len in
  let flat = Op.reshape tape logits [| b * s; t.vocab |] in
  let labels = Array.concat (Array.to_list targets) in
  (Op.cross_entropy tape flat ~labels, param_vars)

let train_step t opt ~inputs ~targets =
  let tape = Tape.create () in
  let loss, param_vars = batch_loss t tape ~inputs ~targets in
  Tape.backward tape loss;
  let grads = List.map Tape.grad param_vars in
  Nn.Optimizer.step opt ~params:(params t) ~grads;
  Tensor.flat_get (Tape.data loss) 0

let eval_loss t batches =
  let total, count =
    List.fold_left
      (fun (total, count) (inputs, targets) ->
        let tape = Tape.create () in
        let loss, _ = batch_loss t tape ~inputs ~targets in
        (total +. Tensor.flat_get (Tape.data loss) 0, count + 1))
      (0.0, 0) batches
  in
  total /. float_of_int (max 1 count)

let perplexity t batches = exp (eval_loss t batches)
