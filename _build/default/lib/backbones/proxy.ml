type stage_shape = { in_ch : int; out_ch : int; hw : int }

let vision_model rng ~make_op ?(in_channels = 4) ?(channels = 8) ?(classes = 4) ?(size = 12) () =
  let stage1 = make_op rng { in_ch = in_channels; out_ch = channels; hw = size } in
  let stage2 = make_op rng { in_ch = channels; out_ch = channels; hw = size } in
  Nn.Model.of_layer
    (Nn.Layer.sequential "proxy-vision"
       [
         stage1;
         Nn.Layer.channel_affine rng ~channels;
         Nn.Layer.relu;
         stage2;
         Nn.Layer.channel_affine rng ~channels;
         Nn.Layer.relu;
         Nn.Layer.global_avg_pool;
         Nn.Layer.linear rng ~in_features:channels ~out_features:classes;
       ])
