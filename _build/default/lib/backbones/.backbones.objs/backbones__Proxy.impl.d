lib/backbones/proxy.ml: Nn
