lib/backbones/gpt2.ml: Array Grad List Nd Nn Option
