lib/backbones/gpt2.mli: Nd Nn
