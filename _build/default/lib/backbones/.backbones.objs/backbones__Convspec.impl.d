lib/backbones/convspec.ml: Shape
