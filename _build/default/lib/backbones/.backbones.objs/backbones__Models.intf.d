lib/backbones/models.mli: Convspec
