lib/backbones/convspec.mli: Shape
