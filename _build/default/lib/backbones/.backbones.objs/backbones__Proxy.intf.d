lib/backbones/proxy.mli: Nd Nn
