lib/backbones/models.ml: Convspec List
