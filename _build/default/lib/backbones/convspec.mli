(** Convolution-layer inventories of the evaluation backbones (\u{00a7}9.1).

    A spec records one distinct convolution shape and how many times it
    occurs in the model; substituting an operator and summing per-spec
    latencies gives the end-to-end time.  Spatial sizes follow the
    ImageNet-resolution versions of the models (the paper rescales
    CIFAR-100 images to ImageNet size so performance is identical). *)

type t = {
  layer : string;
  in_channels : int;
  out_channels : int;
  height : int;
  width : int;  (** output spatial size *)
  kernel : int;
  groups : int;  (** 1 = dense; [in_channels] = depthwise *)
  count : int;  (** occurrences in the model *)
}

val flops : t -> int
(** MAC-based FLOPs of the standard convolution at this shape. *)

val params : t -> int

val substitutable : t -> bool
(** Standard (dense, k >= 1) convolutions are substitution targets;
    depthwise layers are kept as-is, mirroring the paper which replaces
    "all standard convolutions". *)

val valuation :
  n:Shape.Var.t ->
  c_in:Shape.Var.t ->
  c_out:Shape.Var.t ->
  h:Shape.Var.t ->
  w:Shape.Var.t ->
  t ->
  Shape.Valuation.t
(** Bind a spec's concrete sizes to the symbolic conv variables. *)
