type t = { name : string; specs : Convspec.t list }

let spec layer in_channels out_channels hw kernel ?(groups = 1) count =
  {
    Convspec.layer;
    in_channels;
    out_channels;
    height = hw;
    width = hw;
    kernel;
    groups;
    count;
  }

(* ResNet-18/34 at ImageNet resolution (224x224 input). *)
let resnet_stages ~blocks =
  let b1, b2, b3, b4 = blocks in
  [
    spec "conv1" 3 64 112 7 1;
    spec "stage1" 64 64 56 3 (2 * b1);
    spec "stage2-down" 64 128 28 3 1;
    spec "stage2" 128 128 28 3 ((2 * b2) - 1);
    spec "stage3-down" 128 256 14 3 1;
    spec "stage3" 256 256 14 3 ((2 * b3) - 1);
    spec "stage4-down" 256 512 7 3 1;
    spec "stage4" 512 512 7 3 ((2 * b4) - 1);
  ]

let resnet18 = { name = "resnet18"; specs = resnet_stages ~blocks:(2, 2, 2, 2) }
let resnet34 = { name = "resnet34"; specs = resnet_stages ~blocks:(3, 4, 6, 3) }

(* DenseNet-121: growth rate 32; each dense layer is a 1x1 bottleneck to
   128 then a 3x3 to 32; block sizes 6/12/24/16 with 1x1 transitions.
   Input channels vary per layer; we bucket them by stage average. *)
let densenet121 =
  {
    name = "densenet121";
    specs =
      [
        spec "conv1" 3 64 112 7 1;
        spec "block1-1x1" 160 128 56 1 6;
        spec "block1-3x3" 128 32 56 3 6;
        spec "trans1" 256 128 28 1 1;
        spec "block2-1x1" 320 128 28 1 12;
        spec "block2-3x3" 128 32 28 3 12;
        spec "trans2" 512 256 14 1 1;
        spec "block3-1x1" 640 128 14 1 24;
        spec "block3-3x3" 128 32 14 3 24;
        spec "trans3" 1024 512 7 1 1;
        spec "block4-1x1" 768 128 7 1 16;
        spec "block4-3x3" 128 32 7 3 16;
      ];
  }

(* ResNeXt-29 2x64d (CIFAR backbone rescaled to ImageNet-size inputs):
   3 stages x 3 blocks, each block 1x1 -> grouped 3x3 (2 groups) -> 1x1. *)
let resnext29_2x64d =
  {
    name = "resnext29_2x64d";
    specs =
      [
        spec "conv1" 3 64 224 3 1;
        spec "stage1-1x1a" 64 128 224 1 3;
        spec "stage1-3x3" 128 128 224 3 ~groups:2 3;
        spec "stage1-1x1b" 128 256 224 1 3;
        spec "stage2-1x1a" 256 256 112 1 3;
        spec "stage2-3x3" 256 256 112 3 ~groups:2 3;
        spec "stage2-1x1b" 256 512 112 1 3;
        spec "stage3-1x1a" 512 512 56 1 3;
        spec "stage3-3x3" 512 512 56 3 ~groups:2 3;
        spec "stage3-1x1b" 512 1024 56 1 3;
      ];
  }

(* EfficientNetV2-S: fused-MBConv stages (dense 3x3) then MBConv stages
   (1x1 expand, depthwise 3x3, 1x1 project).  Representative shapes. *)
let efficientnet_v2_s =
  {
    name = "efficientnet_v2_s";
    specs =
      [
        spec "stem" 3 24 112 3 1;
        spec "fused1" 24 24 112 3 2;
        spec "fused2-expand" 24 96 56 3 4;
        spec "fused2-project" 96 48 56 1 4;
        spec "fused3-expand" 48 192 28 3 4;
        spec "fused3-project" 192 64 28 1 4;
        spec "mb4-expand" 64 256 14 1 6;
        spec "mb4-dw" 256 256 14 3 ~groups:256 6;
        spec "mb4-project" 256 128 14 1 6;
        spec "mb5-expand" 128 768 14 1 9;
        spec "mb5-dw" 768 768 14 3 ~groups:768 9;
        spec "mb5-project" 768 160 14 1 9;
        spec "mb6-expand" 160 960 7 1 15;
        spec "mb6-dw" 960 960 7 3 ~groups:960 15;
        spec "mb6-project" 960 256 7 1 15;
        spec "head" 256 1280 7 1 1;
      ];
  }

let vision_models = [ resnet18; resnet34; densenet121; resnext29_2x64d; efficientnet_v2_s ]

let total_flops m = List.fold_left (fun acc s -> acc + (Convspec.flops s * s.Convspec.count)) 0 m.specs
let total_params m =
  List.fold_left (fun acc s -> acc + (Convspec.params s * s.Convspec.count)) 0 m.specs

let resnet34_profile_layers =
  [
    spec "stage1" 64 64 56 3 1;
    spec "stage2" 128 128 28 3 1;
    spec "stage3" 256 256 14 3 1;
    spec "stage4" 512 512 7 3 1;
  ]
