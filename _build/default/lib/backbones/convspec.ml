type t = {
  layer : string;
  in_channels : int;
  out_channels : int;
  height : int;
  width : int;
  kernel : int;
  groups : int;
  count : int;
}

let flops s =
  2 * s.out_channels * s.height * s.width * (s.in_channels / s.groups) * s.kernel * s.kernel

let params s = s.out_channels * (s.in_channels / s.groups) * s.kernel * s.kernel
let substitutable s = s.groups = 1

let valuation ~n ~c_in ~c_out ~h ~w s =
  Shape.Valuation.of_list
    [ (n, 1); (c_in, s.in_channels); (c_out, s.out_channels); (h, s.height); (w, s.width) ]
