(** The six evaluation backbones of \u{00a7}9.1 as layer-shape inventories. *)

type t = { name : string; specs : Convspec.t list }

val resnet18 : t
val resnet34 : t
val densenet121 : t
val resnext29_2x64d : t
val efficientnet_v2_s : t
val vision_models : t list

val total_flops : t -> int
val total_params : t -> int

val resnet34_profile_layers : Convspec.t list
(** The four distinct ResNet-34 stage shapes used for the layer-wise
    NAS-PTE comparison of Fig. 9. *)
