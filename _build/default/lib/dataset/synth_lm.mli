(** Synthetic language modelling data (substitute for lm1b).

    Sequences are sampled from a sparse first-order Markov chain with a
    few high-probability successors per token, so a model that learns
    the transition structure achieves a perplexity far below the
    uniform baseline; the chain's entropy gives the attainable floor. *)

type t = {
  vocab : int;
  seq_len : int;
  batches : (int array array * int array array) list;
      (** (inputs, targets): targets are inputs shifted by one. *)
  entropy_floor : float;
      (** The chain's conditional entropy in nats: exp of it is the
          best achievable perplexity. *)
}

val generate :
  Nd.Rng.t ->
  ?vocab:int ->
  ?seq_len:int ->
  ?batches:int ->
  ?batch_size:int ->
  ?branching:int ->
  unit ->
  t
(** Defaults: vocab 32, sequence length 16, 30 batches of 8 sequences,
    branching factor 3. *)

val uniform_perplexity : t -> float
val floor_perplexity : t -> float
