(** Synthetic vision classification (substitute for CIFAR-100 /
    ImageNet, see DESIGN.md).

    Each class is defined by a fixed multi-channel spatial motif;
    images are noise plus the class motif stamped at random positions.
    Recovering the label requires detecting local spatial patterns, so
    the task exercises exactly the receptive-field and capacity
    trade-offs that distinguish synthesized operators — a model whose
    operator cannot mix spatial information cannot exceed chance. *)

type t = {
  train : Nn.Train.batch list;
  eval : Nn.Train.batch list;
  classes : int;
  channels : int;
  size : int;
}

val generate :
  Nd.Rng.t ->
  ?classes:int ->
  ?channels:int ->
  ?size:int ->
  ?motif:int ->
  ?train_batches:int ->
  ?eval_batches:int ->
  ?batch_size:int ->
  unit ->
  t
(** Defaults: 4 classes, 3 channels, 12x12 images, 3x3 motifs, 12 train
    batches and 4 eval batches of 16 images. *)
