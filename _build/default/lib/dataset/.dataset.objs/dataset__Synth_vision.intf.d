lib/dataset/synth_vision.mli: Nd Nn
