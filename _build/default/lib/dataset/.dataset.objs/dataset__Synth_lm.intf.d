lib/dataset/synth_lm.mli: Nd
