lib/dataset/synth_lm.ml: Array Hashtbl List Nd Option
