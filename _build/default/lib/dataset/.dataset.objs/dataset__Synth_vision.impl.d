lib/dataset/synth_vision.ml: Array List Nd Nn
