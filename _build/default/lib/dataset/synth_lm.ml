module Rng = Nd.Rng

type t = {
  vocab : int;
  seq_len : int;
  batches : (int array array * int array array) list;
  entropy_floor : float;
}

(* Build a sparse row-stochastic transition matrix: each token has
   [branching] successors with geometrically decaying probabilities. *)
let make_chain rng ~vocab ~branching =
  Array.init vocab (fun _ ->
      let successors = Array.init branching (fun _ -> Rng.int rng vocab) in
      let weights = Array.init branching (fun i -> 0.6 ** float_of_int i) in
      let z = Array.fold_left ( +. ) 0.0 weights in
      Array.map2 (fun s w -> (s, w /. z)) successors weights)

let entropy chain =
  let per_row =
    Array.map
      (fun row ->
        (* merge duplicate successors before computing entropy *)
        let tbl = Hashtbl.create 4 in
        Array.iter
          (fun (s, p) ->
            Hashtbl.replace tbl s (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl s)))
          row;
        Hashtbl.fold (fun _ p acc -> acc -. (p *. log p)) tbl 0.0)
      chain
  in
  Array.fold_left ( +. ) 0.0 per_row /. float_of_int (Array.length chain)

let sample_next rng row =
  let u = Rng.float rng in
  let rec go acc = function
    | [] -> fst row.(Array.length row - 1)
    | (s, p) :: rest -> if u < acc +. p then s else go (acc +. p) rest
  in
  go 0.0 (Array.to_list row)

let sample_sequence rng chain ~vocab ~len =
  let seq = Array.make (len + 1) 0 in
  seq.(0) <- Rng.int rng vocab;
  for i = 1 to len do
    seq.(i) <- sample_next rng chain.(seq.(i - 1))
  done;
  seq

let generate rng ?(vocab = 32) ?(seq_len = 16) ?(batches = 30) ?(batch_size = 8)
    ?(branching = 3) () =
  let chain = make_chain rng ~vocab ~branching in
  let make_batch () =
    let inputs = Array.make_matrix batch_size seq_len 0 in
    let targets = Array.make_matrix batch_size seq_len 0 in
    for b = 0 to batch_size - 1 do
      let seq = sample_sequence rng chain ~vocab ~len:seq_len in
      for i = 0 to seq_len - 1 do
        inputs.(b).(i) <- seq.(i);
        targets.(b).(i) <- seq.(i + 1)
      done
    done;
    (inputs, targets)
  in
  {
    vocab;
    seq_len;
    batches = List.init batches (fun _ -> make_batch ());
    entropy_floor = entropy chain;
  }

let uniform_perplexity t = float_of_int t.vocab
let floor_perplexity t = exp t.entropy_floor
