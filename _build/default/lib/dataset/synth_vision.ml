module Tensor = Nd.Tensor
module Rng = Nd.Rng

type t = {
  train : Nn.Train.batch list;
  eval : Nn.Train.batch list;
  classes : int;
  channels : int;
  size : int;
}

let make_motifs rng ~classes ~channels ~motif =
  Array.init classes (fun _ ->
      Tensor.init [| channels; motif; motif |] (fun _ -> 2.0 *. Rng.normal rng))

let stamp image motif ~channels ~size ~m ~y0 ~x0 =
  for c = 0 to channels - 1 do
    for dy = 0 to m - 1 do
      for dx = 0 to m - 1 do
        let y = y0 + dy and x = x0 + dx in
        if y < size && x < size then
          Tensor.set image [| c; y; x |]
            (Tensor.get image [| c; y; x |] +. Tensor.get motif [| c; dy; dx |])
      done
    done
  done

let make_image rng motifs ~channels ~size ~m label =
  let image = Tensor.init [| channels; size; size |] (fun _ -> 0.4 *. Rng.normal rng) in
  let stamps = 2 + Rng.int rng 2 in
  for _ = 1 to stamps do
    let y0 = Rng.int rng (max 1 (size - m + 1)) in
    let x0 = Rng.int rng (max 1 (size - m + 1)) in
    stamp image motifs.(label) ~channels ~size ~m ~y0 ~x0
  done;
  image

let make_batch rng motifs ~classes ~channels ~size ~m ~batch_size =
  let images = Tensor.create [| batch_size; channels; size; size |] in
  let labels = Array.make batch_size 0 in
  for i = 0 to batch_size - 1 do
    let label = Rng.int rng classes in
    labels.(i) <- label;
    let img = make_image rng motifs ~channels ~size ~m label in
    Tensor.iteri
      (fun idx v -> Tensor.set images [| i; idx.(0); idx.(1); idx.(2) |] v)
      img
  done;
  { Nn.Train.images; labels }

let generate rng ?(classes = 4) ?(channels = 3) ?(size = 12) ?(motif = 3)
    ?(train_batches = 12) ?(eval_batches = 4) ?(batch_size = 16) () =
  let motifs = make_motifs rng ~classes ~channels ~motif in
  let batches n =
    List.init n (fun _ ->
        make_batch rng motifs ~classes ~channels ~size ~m:motif ~batch_size)
  in
  { train = batches train_batches; eval = batches eval_batches; classes; channels; size }
