lib/syno/api.ml: Backbones Dataset List Lower Nn Option Perf Pgraph Search Shape Zoo
