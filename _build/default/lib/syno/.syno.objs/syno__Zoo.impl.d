lib/syno/zoo.ml: Pgraph Printf Shape
