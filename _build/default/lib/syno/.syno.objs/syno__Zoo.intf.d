lib/syno/zoo.mli: Pgraph Shape
