lib/syno/api.mli: Backbones Dataset Nd Nn Perf Pgraph Shape Zoo
