(** Operator catalog: the Table 2 examples, the standard operators they
    replace, the two case-study operators of \u{00a7}9.2 (Fig. 7 / Listing 2),
    and the baselines (stacked grouped convolution, NAS-PTE's
    loop-transformation operators).

    All operators are built over one shared set of symbolic variables
    ({!Vars}), so a single pGraph instantiates at every layer shape of a
    backbone by changing the valuation (\u{00a7}5.4). *)

module Vars : sig
  val n : Shape.Var.t  (** batch *)

  val c_in : Shape.Var.t
  val c_out : Shape.Var.t
  val h : Shape.Var.t
  val w : Shape.Var.t
  val m : Shape.Var.t  (** matmul rows *)

  val nd : Shape.Var.t  (** matmul cols *)

  val kd : Shape.Var.t  (** matmul contraction *)

  val k : Shape.Var.t  (** kernel/window size (coefficient) *)

  val g : Shape.Var.t  (** group count (coefficient) *)

  val s : Shape.Var.t  (** shrink/stride factor (coefficient) *)

  val conv_valuation :
    ?n:int -> c_in:int -> c_out:int -> hw:int -> ?k:int -> ?g:int -> ?s:int -> unit ->
    Shape.Valuation.t

  val matmul_valuation : m:int -> n:int -> k:int -> Shape.Valuation.t
end

type entry = {
  name : string;
  description : string;
  operator : Pgraph.Graph.operator;
}

val conv2d : entry
(** Standard KxK convolution (Fig. 2). *)

val conv1x1 : entry
(** Pointwise convolution (channel mixing only). *)

val grouped_conv : entry
(** KxK convolution in [g] channel groups. *)

val depthwise_conv : entry
(** Per-channel KxK convolution ([C_in = C_out] assumed). *)

val matmul : entry
val avgpool : entry
(** Table 2's AvgPool1d along H with factor [s]. *)

val pixel_shuffle : entry
(** Table 2's PixelShuffle along H with block [s]. *)

val operator1 : entry
(** The Fig. 7 / Listing 2 discovery: two stages where the stage-1
    window is Shared with both weights rather than reduced. *)

val operator2 : entry
(** The low-rank two-1D-convolutions variant with Share-connected
    weights (rank [C_out/s]). *)

val stacked_conv : entry
(** The Fig. 8 baseline: two stacked grouped convolutions with the
    stage-1 window reduced in stage 1 and fresh windows in stage 2. *)

val shift_conv : entry
(** The ShiftNet-like pattern \u{00a7}9.2 reports: one spatial Unfold replaced
    by a Shift. *)

val nas_pte_grouped : entry
val nas_pte_bottleneck : entry
(** NAS-PTE's loop-grouping and bottlenecking transformations applied
    to convolution (Turner et al., used as the Fig. 9 baselines). *)

val nas_pte_range_bottleneck : entry
(** NAS-PTE's loop-range bottleneck: the channel reduction reads only
    every s-th input channel — discards data, so it sits outside Syno's
    quality-constrained space. *)

val nas_pte_depthwise_separable : entry

val conv_like : entry list
(** All operators with conv-shaped input/output, for substitution into
    the vision backbones. *)

val all : entry list
