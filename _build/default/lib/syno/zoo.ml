module Var = Shape.Var
module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim

module Vars = struct
  let n = Var.primary "N"
  let c_in = Var.primary "C_in"
  let c_out = Var.primary "C_out"
  let h = Var.primary "H"
  let w = Var.primary "W"
  let m = Var.primary "M"
  let nd = Var.primary "Nd"
  let kd = Var.primary "Kd"
  let k = Var.coefficient "k"
  let g = Var.coefficient "g"
  let s = Var.coefficient "s"

  let conv_valuation ?(n = 1) ~c_in ~c_out ~hw ?(k = 3) ?(g = 2) ?(s = 2) () =
    Valuation.of_list
      [
        (Var.primary "N", n);
        (Var.primary "C_in", c_in);
        (Var.primary "C_out", c_out);
        (Var.primary "H", hw);
        (Var.primary "W", hw);
        (Var.coefficient "k", k);
        (Var.coefficient "g", g);
        (Var.coefficient "s", s);
      ]

  let matmul_valuation ~m ~n ~k =
    Valuation.of_list [ (Var.primary "M", m); (Var.primary "Nd", n); (Var.primary "Kd", k) ]
end

open Vars

let sz = Size.of_var
let inv v = Size.var_pow v (-1)

type entry = { name : string; description : string; operator : Graph.operator }

let build ?allow_strided name description ~output ~desired trace =
  let g = Graph.init output in
  match Graph.apply_all g trace with
  | Error msg -> invalid_arg (Printf.sprintf "Zoo.%s: %s" name msg)
  | Ok g -> (
      match Graph.complete ?allow_strided g ~desired with
      | Error msg -> invalid_arg (Printf.sprintf "Zoo.%s (complete): %s" name msg)
      | Ok operator -> { name; description; operator })

let conv_io = ([ sz n; sz c_out; sz h; sz w ], [ sz n; sz c_in; sz h; sz w ])

(* out[n,co,h,w] += in[n,ci,h+kh-k/2,w+kw-k/2] * W[ci,kh,kw,co] *)
let conv2d =
  let output, desired = conv_io in
  build "conv2d" "standard KxK convolution (Fig. 2)" ~output ~desired
    [
      Prim.Reduce (sz c_in);
      Prim.Reduce (sz k);
      Prim.Reduce (sz k);
      (* frontier: N co H W ci kh kw *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (2, 5);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (3, 5);
      Prim.Match 1;
    ]

let conv1x1 =
  let output, desired = conv_io in
  build "conv1x1" "pointwise convolution: channel mixing only" ~output ~desired
    [
      Prim.Reduce (sz c_in);
      Prim.Share (4, Prim.New_group);
      Prim.Match 1;
    ]

(* out[n,co,h,w] += in[n,(C_in/g)*(co/(C_out/g))+ci',h+kh,w+kw] * W[co,ci',kh,kw] *)
let grouped_conv =
  let output, desired = conv_io in
  build "grouped_conv" "KxK convolution in g channel groups" ~output ~desired
    [
      Prim.Reduce (Size.mul (inv g) (sz c_in));
      (* ci' : C_in/g at 4 *)
      Prim.Reduce (sz k);
      (* kh at 5 *)
      Prim.Reduce (sz k);
      (* kw at 6 *)
      Prim.Share (1, Prim.New_group);
      (* co indexes input group and weight *)
      Prim.Share (4, Prim.Current_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (2, 5);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (3, 5);
      (* frontier: N co H' W' ci' *)
      Prim.Merge (1, Size.mul (inv g) (sz c_out));
      (* co -> [co/B : g, co%B : C_out/g] at 1,2 *)
      Prim.Expand 2;
      (* weight handles co%B; input ignores it *)
      (* frontier: N q H' W' ci' with q = co/(C_out/g) : g *)
      Prim.Split (1, 4);
      (* (C_in/g)*q + ci' : C_in *)
    ]

(* out[n,c,h,w] += in[n,c,h+kh,w+kw] * W[c,kh,kw]; C_out = C_in *)
let depthwise_conv =
  let output = [ sz n; sz c_in; sz h; sz w ] in
  let desired = [ sz n; sz c_in; sz h; sz w ] in
  build "depthwise_conv" "per-channel KxK convolution" ~output ~desired
    [
      Prim.Reduce (sz k);
      Prim.Reduce (sz k);
      Prim.Share (1, Prim.New_group);
      Prim.Share (4, Prim.Current_group);
      Prim.Unfold (2, 4);
      Prim.Share (4, Prim.Current_group);
      Prim.Unfold (3, 4);
    ]

let matmul =
  build "matmul" "torch.mm: out[i,j] += in[i,r] * w[r,j]"
    ~output:[ sz m; sz nd ]
    ~desired:[ sz m; sz kd ]
    [ Prim.Reduce (sz kd); Prim.Share (2, Prim.New_group); Prim.Match 1 ]

let avgpool =
  build "avgpool" "AvgPool1d(s) along H (sum-pooling; the 1/s factor is affine)"
    ~output:[ Size.mul (inv s) (sz h) ]
    ~desired:[ sz h ]
    [ Prim.Reduce (sz s); Prim.Split (0, 1) ]

let pixel_shuffle =
  build "pixel_shuffle" "PixelShuffle(s) along H: in[(H/s)*(i%s) + i/s]"
    ~output:[ sz h ] ~desired:[ sz h ]
    [ Prim.Merge (0, sz s); Prim.Split (1, 0) ]

(* Operator 1 (Fig. 7 / Listing 2).  Stage 1: a 1D grouped convolution
   whose window k1w is Shared with the stage-1 weight but NOT reduced;
   stage 2 contracts the surviving window together with the H window.
   w1 = [d, g', ci', k1w] ~ [C_out/(g*s), C_in, k1]
   w2 = [k1h, co, d, g', k1w] ~ [C_out, k1*k1*C_out/s] *)
let operator1 =
  let output, desired = conv_io in
  let d_size = Size.mul (sz c_out) (Size.mul (inv g) (inv s)) in
  build "operator1"
    "Syno discovery: two-stage conv passing the unfolded window to stage 2" ~output
    ~desired
    [
      Prim.Reduce d_size;
      (* d at 4 *)
      Prim.Reduce (sz g);
      (* g' at 5 *)
      Prim.Reduce (Size.mul (inv g) (sz c_in));
      (* ci' at 6 *)
      Prim.Reduce (sz k);
      (* k1h at 7 *)
      Prim.Reduce (sz k);
      (* k1w at 8 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Share (6, Prim.Current_group);
      Prim.Share (8, Prim.Current_group);
      (* w1 = [d, g', ci', k1w] *)
      Prim.Share (7, Prim.New_group);
      (* w2 = [k1h] *)
      Prim.Match 1;
      (* + co ; frontier: N H W d g' ci' k1h k1w *)
      Prim.Match 3;
      (* + d  ; frontier: N H W g' ci' k1h k1w *)
      Prim.Share (3, Prim.Current_group);
      (* + g' *)
      Prim.Share (6, Prim.Current_group);
      (* + k1w: w2 = [k1h, co, d, g', k1w] *)
      Prim.Split (3, 4);
      (* (C_in/g)*g' + ci' : C_in at 3 *)
      Prim.Unfold (1, 4);
      (* h + k1h - k/2 *)
      Prim.Unfold (2, 4);
      (* w + k1w - k/2 *)
    ]

(* Operator 2: low-rank pair of 1D convolutions with Share-connected
   weights.  w1 = [d, ci, k1w], w2 = [k1h, co, d] with d : C_out/s. *)
let operator2 =
  let output, desired = conv_io in
  let d_size = Size.mul (inv s) (sz c_out) in
  build "operator2" "Syno discovery: low-rank two-1D-conv with shared rank dimension"
    ~output ~desired
    [
      Prim.Reduce d_size;
      (* d at 4 *)
      Prim.Reduce (sz c_in);
      (* ci at 5 *)
      Prim.Reduce (sz k);
      (* k1h at 6 *)
      Prim.Reduce (sz k);
      (* k1w at 7 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Share (7, Prim.Current_group);
      (* w1 = [d, ci, k1w] *)
      Prim.Share (6, Prim.New_group);
      (* w2 = [k1h] *)
      Prim.Match 1;
      (* + co; frontier: N H W d ci k1h k1w *)
      Prim.Match 3;
      (* + d;  frontier: N H W ci k1h k1w *)
      Prim.Unfold (1, 4);
      (* h + k1h *)
      Prim.Unfold (2, 4);
      (* w + k1w *)
    ]

(* Fig. 8 baseline: two stacked grouped convolutions — stage 1's window
   is fully reduced inside stage 1 and stage 2 unfolds fresh windows, so
   the W receptive field grows to 2k-1. *)
let stacked_conv =
  let output, desired = conv_io in
  let d_size = Size.mul (sz c_out) (Size.mul (inv g) (inv s)) in
  build "stacked_conv" "two stacked grouped convolutions (Fig. 8 baseline)" ~output
    ~desired
    [
      Prim.Reduce d_size;
      (* d at 4 *)
      Prim.Reduce (sz g);
      (* g' at 5 *)
      Prim.Reduce (Size.mul (inv g) (sz c_in));
      (* ci' at 6 *)
      Prim.Reduce (sz k);
      (* k1w at 7 *)
      Prim.Reduce (sz k);
      (* k2h at 8 *)
      Prim.Reduce (sz k);
      (* k2w at 9 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Share (6, Prim.Current_group);
      Prim.Share (7, Prim.Current_group);
      (* w1 = [d, g', ci', k1w] *)
      Prim.Share (8, Prim.New_group);
      Prim.Share (9, Prim.Current_group);
      (* w2 = [k2h, k2w] *)
      Prim.Match 1;
      (* + co; frontier: N H W d g' ci' k1w k2h k2w *)
      Prim.Match 3;
      (* + d;  frontier: N H W g' ci' k1w k2h k2w *)
      Prim.Share (3, Prim.Current_group);
      (* + g': w2 = [k2h, k2w, co, d, g'] *)
      Prim.Split (3, 4);
      (* C_in dim at 3; frontier: N H W Cin k1w k2h k2w *)
      Prim.Unfold (2, 4);
      (* w + k1w *)
      Prim.Unfold (1, 4);
      (* h + k2h *)
      Prim.Unfold (2, 4);
      (* (w + k1w) + k2w *)
    ]

(* ShiftNet-style pattern: the W-axis Unfold replaced by a Shift. *)
let shift_conv =
  let output, desired = conv_io in
  build "shift_conv" "1D conv on H with a Shift mixing W (ShiftNet-like)" ~output
    ~desired
    [
      Prim.Reduce (sz c_in);
      Prim.Reduce (sz k);
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (2, 5);
      Prim.Shift 3;
      Prim.Match 1;
    ]

let nas_pte_grouped =
  { grouped_conv with name = "nas_pte_grouped"; description = "NAS-PTE loop grouping" }

(* Bottleneck: 1x1 down to C_in/s channels then KxK conv, fused as one
   operator (the 1x1 is pointwise so the fusion is exact). *)
let nas_pte_bottleneck =
  let output, desired = conv_io in
  let d_size = Size.mul (inv s) (sz c_in) in
  build "nas_pte_bottleneck" "NAS-PTE bottlenecking: 1x1 reduce then KxK conv" ~output
    ~desired
    [
      Prim.Reduce d_size;
      (* d at 4 *)
      Prim.Reduce (sz c_in);
      (* ci at 5 *)
      Prim.Reduce (sz k);
      (* kh at 6 *)
      Prim.Reduce (sz k);
      (* kw at 7 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      (* w1 = [d, ci] *)
      Prim.Share (6, Prim.New_group);
      Prim.Share (7, Prim.Current_group);
      (* w2 = [kh, kw] *)
      Prim.Match 1;
      (* + co; frontier: N H W d ci kh kw *)
      Prim.Match 3;
      (* + d: w2 = [kh, kw, co, d]; frontier: N H W ci kh kw *)
      Prim.Unfold (1, 4);
      Prim.Unfold (2, 4);
    ]

(* NAS-PTE's "bottleneck the loop range": the channel reduction only
   reads every s-th input channel — a strided, element-discarding
   access outside Syno's quality space (which is exactly why NAS-PTE
   operators lose more accuracy). *)
let nas_pte_range_bottleneck =
  let output, desired = conv_io in
  build ~allow_strided:true "nas_pte_range_bottleneck"
    "NAS-PTE loop-range bottleneck: subsample input channels by s" ~output ~desired
    [
      Prim.Reduce (Size.mul (inv s) (sz c_in));
      (* ci' at 4 *)
      Prim.Reduce (sz k);
      (* kh at 5 *)
      Prim.Reduce (sz k);
      (* kw at 6 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (2, 5);
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (3, 5);
      Prim.Match 1;
      (* w = [ci', kh, kw, co]; frontier: N H' W' ci' *)
      Prim.Stride (3, sz s);
      (* input channel = s * ci' : C_in *)
    ]

let nas_pte_depthwise_separable =
  let output, desired = conv_io in
  build "nas_pte_depthwise_separable" "depthwise KxK then pointwise, fused" ~output
    ~desired
    [
      Prim.Reduce (sz c_in);
      (* c at 4 *)
      Prim.Reduce (sz k);
      (* kh at 5 *)
      Prim.Reduce (sz k);
      (* kw at 6 *)
      Prim.Share (4, Prim.New_group);
      Prim.Share (5, Prim.Current_group);
      Prim.Share (6, Prim.Current_group);
      (* wd = [c, kh, kw] *)
      Prim.Share (4, Prim.New_group);
      (* wp = [c] *)
      Prim.Match 1;
      (* wp = [c, co] *)
      Prim.Unfold (1, 4);
      Prim.Unfold (2, 4);
    ]

let conv_like =
  [
    conv2d;
    conv1x1;
    grouped_conv;
    operator1;
    operator2;
    stacked_conv;
    shift_conv;
    nas_pte_grouped;
    nas_pte_bottleneck;
    nas_pte_range_bottleneck;
    nas_pte_depthwise_separable;
  ]

let all = conv_like @ [ depthwise_conv; matmul; avgpool; pixel_shuffle ]
