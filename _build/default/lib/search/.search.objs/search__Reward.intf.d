lib/search/reward.mli: Pgraph Shape
