lib/search/enumerate.ml: Array Coord Hashtbl List Nd Pgraph Shape
