lib/search/mcts.mli: Enumerate Nd Pgraph
