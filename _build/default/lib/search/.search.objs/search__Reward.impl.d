lib/search/reward.ml: Coord Float List Pgraph
