lib/search/mcts.ml: Array Enumerate Float Hashtbl List Pgraph
