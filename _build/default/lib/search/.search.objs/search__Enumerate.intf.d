lib/search/enumerate.mli: Nd Pgraph Shape
