module Size = Shape.Size
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Canon = Pgraph.Canon
module Distance = Pgraph.Distance
module Flops = Pgraph.Flops

type config = {
  canon : Canon.config;
  output_shape : Size.t list;
  desired_shape : Size.t list;
  max_prims : int;
  coefficient_candidates : Size.t list;
  reduce_candidates : Size.t list;
  max_flops : int option;
  max_params : int option;
  valuations : Shape.Valuation.t list;
  frozen_sizes : Size.t list;
}

let default_config ~output_shape ~desired_shape ~valuations () =
  let ctx = Coord.Simplify.ctx valuations in
  {
    canon = Canon.default_config ctx;
    output_shape;
    desired_shape;
    max_prims = 9;
    coefficient_candidates = [];
    reduce_candidates = [];
    max_flops = None;
    max_params = None;
    valuations;
    frozen_sizes = [];
  }

(* Candidate actions on the current frontier, before canonicalization. *)
let candidate_actions cfg g =
  let dims = Array.of_list (Graph.frontier g) in
  let n = Array.length dims in
  let frozen p =
    List.exists (fun s -> Size.equal s dims.(p).Graph.size) cfg.frozen_sizes
  in
  let acc = ref [] in
  let push p = acc := p :: !acc in
  for p = 0 to n - 1 do
    if not (frozen p) then begin
      for q = 0 to n - 1 do
        if q <> p && not (frozen q) then push (Prim.Split (p, q))
      done;
      push (Prim.Shift p);
      push (Prim.Expand p);
      push (Prim.Share (p, Prim.New_group));
      push (Prim.Share (p, Prim.Current_group));
      push (Prim.Match p);
      List.iter
        (fun b ->
          push (Prim.Merge (p, b));
          push (Prim.Stride (p, b)))
        cfg.coefficient_candidates;
      for w = 0 to n - 1 do
        if w <> p && not (frozen w) then push (Prim.Unfold (p, w))
      done
    end
  done;
  List.iter (fun s -> push (Prim.Reduce s)) cfg.reduce_candidates;
  List.rev !acc

let children cfg g =
  if Graph.num_prims g >= cfg.max_prims then []
  else
    List.filter_map
      (fun prim ->
        match Canon.check cfg.canon g prim with
        | Ok g' -> Some (prim, g')
        | Error _ -> None)
      (candidate_actions cfg g)

let try_complete cfg g =
  match Graph.complete g ~desired:cfg.desired_shape with
  | Error _ -> None
  | Ok op ->
      if
        Flops.within_budgets ?max_flops:cfg.max_flops ?max_params:cfg.max_params op
          cfg.valuations
      then Some op
      else None

type stats = {
  mutable visited : int;
  mutable completed : int;
  mutable pruned_by_distance : int;
}

let make_stats () = { visited = 0; completed = 0; pruned_by_distance = 0 }

let synthesize ?(max_results = 1000) ?(max_visits = 200_000) ?stats cfg =
  let dist = Distance.create () in
  let stats = match stats with Some s -> s | None -> make_stats () in
  let results = Hashtbl.create 64 in
  let exception Done in
  let rec go depth g =
    stats.visited <- stats.visited + 1;
    if stats.visited > max_visits then raise Done;
    (match try_complete cfg g with
    | Some op ->
        let key = Graph.operator_signature op in
        if not (Hashtbl.mem results key) then begin
          Hashtbl.add results key op;
          stats.completed <- stats.completed + 1;
          if Hashtbl.length results >= max_results then raise Done
        end
    | None -> ());
    if depth < cfg.max_prims then
      List.iter
        (fun (_, g') ->
          let budget = cfg.max_prims - depth - 1 in
          if
            Distance.within dist ~current:(Graph.frontier_sizes g')
              ~desired:cfg.desired_shape ~budget
          then go (depth + 1) g'
          else stats.pruned_by_distance <- stats.pruned_by_distance + 1)
        (children cfg g)
  in
  (try go 0 (Graph.init cfg.output_shape) with Done -> ());
  Hashtbl.fold (fun _ op acc -> op :: acc) results []

(* Children annotated with the shape distance of their successor state,
   restricted to those still within the remaining budget. *)
let guided_children cfg dist g ~budget =
  List.filter_map
    (fun (prim, g') ->
      match
        Distance.distance dist ~current:(Graph.frontier_sizes g') ~desired:cfg.desired_shape
      with
      | Some d when d <= budget -> Some (prim, g', d)
      | Some _ | None -> None)
    (children cfg g)

(* Rollout policy: children are weighted by a prior on the primitive
   kind (contractions and windows assemble useful operators far more
   often than speculative reshapes -- the structure the paper's MCTS
   learns from rewards) damped by the successor's shape distance.
   Pure uniform walks rarely complete an operator before the size
   limit. *)
let kind_prior prim =
  match Prim.kind prim with
  | Prim.K_reduce -> 4.0
  | Prim.K_share -> 3.0
  | Prim.K_match -> 3.0
  | Prim.K_unfold -> 3.0
  | Prim.K_split -> 0.6
  | Prim.K_merge -> 0.4
  | Prim.K_shift -> 0.4
  | Prim.K_expand -> 0.3
  | Prim.K_stride -> 0.3

let pick_guided rng options =
  let weight (prim, _, d) = kind_prior prim /. ((1.0 +. float_of_int d) ** 2.0) in
  let total = List.fold_left (fun acc o -> acc +. weight o) 0.0 options in
  let u = Nd.Rng.float rng *. total in
  let rec go acc = function
    | [ (_, g', _) ] -> g'
    | ((_, g', _) as o) :: rest ->
        let acc = acc +. weight o in
        if u < acc then g' else go acc rest
    | [] -> invalid_arg "Enumerate.pick_guided: empty options"
  in
  go 0.0 options

let random_completion cfg rng ~use_distance =
  let dist = Distance.create () in
  let rec go depth g =
    match try_complete cfg g with
    | Some op -> Some op
    | None ->
        if depth >= cfg.max_prims then None
        else if use_distance then
          match guided_children cfg dist g ~budget:(cfg.max_prims - depth - 1) with
          | [] -> None
          | options -> go (depth + 1) (pick_guided rng options)
        else
          let options = children cfg g in
          if options = [] then None
          else
            let _, g' = List.nth options (Nd.Rng.int rng (List.length options)) in
            go (depth + 1) g'
  in
  go 0 (Graph.init cfg.output_shape)
