(** Analytic accuracy proxy for MCTS rollouts.

    Training every rollout sample is unaffordable even for the paper
    (which caps evaluation at 0.1 GPU-hours per sample by early
    termination); rollouts instead score an operator by cheap structural
    features that correlate with trainability: spatial information
    mixing (receptive field), channel mixing through weights, parameter
    capacity, and staying within the FLOPs budget.  Final candidates are
    ranked by real training in the [syno] layer. *)

type features = {
  spatial_mixing : bool;
      (** some input expression combines a spatial iterator with a
          reduction (window/neighborhood access) or shifts it *)
  channel_mixing : bool;
      (** a weight contracts a reduction iterator also used by the
          input (learnable mixing, not just gating) *)
  channel_diversity : bool;
      (** some output iterator indexes a weight without indexing the
          input: each output channel gets its own filter, avoiding the
          replicated-channel pattern of \u{00a7}5.1 *)
  params : int;
  flops : int;
  weight_groups : int;
  uses_expand : bool;
}

val features : Pgraph.Graph.operator -> Shape.Valuation.t -> features

val score : ?flops_budget:int -> Pgraph.Graph.operator -> Shape.Valuation.t -> float
(** In [[0, 1]]; 0 for operators over the FLOPs budget. *)
