module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops

type features = {
  spatial_mixing : bool;
  channel_mixing : bool;
  channel_diversity : bool;
  params : int;
  flops : int;
  weight_groups : int;
  uses_expand : bool;
}

let features (op : Graph.operator) valuation =
  let has_role role e = List.exists (fun it -> it.Ast.role = role) (Ast.iters e) in
  let spatial_mixing =
    List.exists
      (fun e ->
        (has_role Ast.Spatial e && has_role Ast.Reduction e)
        ||
        (* a Shift also mixes spatial information *)
        let rec shifted = function
          | Ast.Mod (inner, _) -> Ast.iters inner <> [] && has_role Ast.Spatial inner
          | Ast.Add (a, b) | Ast.Sub (a, b) -> shifted a || shifted b
          | Ast.Mul (_, e) | Ast.Div (e, _) -> shifted e
          | Ast.Iter _ | Ast.Const _ | Ast.Size_const _ -> false
        in
        shifted e)
      op.Graph.op_input_exprs
  in
  let channel_mixing =
    List.exists
      (fun grp ->
        List.exists
          (fun it ->
            it.Ast.role = Ast.Reduction
            && List.exists
                 (fun e -> List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e))
                 op.Graph.op_input_exprs)
          grp)
      op.Graph.op_weights
  in
  (* An output iterator that indexes a weight but not the input gives
     each output channel its own learned filter; without one, channels
     are replicas up to views (the low-quality i_Co/2 pattern of \u{00a7}5.1). *)
  let channel_diversity =
    List.exists
      (fun grp ->
        List.exists
          (fun it ->
            it.Ast.role = Ast.Spatial
            && not
                 (List.exists
                    (fun e -> List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e))
                    op.Graph.op_input_exprs))
          grp)
      op.Graph.op_weights
  in
  {
    spatial_mixing;
    channel_mixing;
    channel_diversity;
    params = Flops.params op valuation;
    flops = Flops.naive_flops op valuation;
    weight_groups = List.length op.Graph.op_weights;
    uses_expand = List.exists (fun p -> Pgraph.Prim.kind p = Pgraph.Prim.K_expand) op.Graph.op_trace;
  }

let score ?flops_budget op valuation =
  let f = features op valuation in
  match flops_budget with
  | Some budget when f.flops > budget -> 0.0
  | Some _ | None ->
      let base = 0.15 in
      let mixing =
        (if f.spatial_mixing then 0.25 else 0.0)
        +. (if f.channel_mixing then 0.25 else 0.0)
        +. if f.channel_diversity then 0.2 else 0.0
      in
      (* Diminishing returns on parameter capacity. *)
      let capacity = Float.min 0.15 (0.025 *. log (1.0 +. float_of_int f.params)) in
      let penalty = if f.uses_expand && not f.spatial_mixing then 0.1 else 0.0 in
      Float.max 0.0 (Float.min 1.0 (base +. mixing +. capacity -. penalty))
