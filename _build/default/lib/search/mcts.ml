module Graph = Pgraph.Graph
module Distance = Pgraph.Distance

type config = { iterations : int; exploration : float; rollout_depth : int }

let default_config ?(iterations = 300) () =
  { iterations; exploration = sqrt 2.0; rollout_depth = 12 }

type result = { operator : Graph.operator; reward : float; visits : int }

type node = {
  state : Graph.t;
  depth : int;
  mutable children : (Pgraph.Prim.t * node) array option;  (* None = unexpanded *)
  mutable visits : int;
  mutable total : float;
}

let make_node state depth = { state; depth; children = None; visits = 0; total = 0.0 }

let search ?(config = default_config ()) enum_cfg ~reward ~rng () =
  let dist = Distance.create () in
  let found : (string, Graph.operator * float * int) Hashtbl.t = Hashtbl.create 64 in
  let record op r =
    let key = Graph.operator_signature op in
    match Hashtbl.find_opt found key with
    | None -> Hashtbl.add found key (op, r, 1)
    | Some (op0, r0, n) -> Hashtbl.replace found key (op0, Float.max r0 r, n + 1)
  in
  let evaluate op =
    let r = reward op in
    record op r;
    r
  in
  (* Rollout: random guided walk from the node's state.  Every complete
     state along the way is evaluated and recorded (Algorithm 1 keeps
     enumerating past a match); the rollout's value is the best reward
     seen. *)
  let rollout node =
    let rec go depth g best =
      let best =
        match Enumerate.try_complete enum_cfg g with
        | Some op -> Float.max best (evaluate op)
        | None -> best
      in
      if depth >= enum_cfg.Enumerate.max_prims then best
      else
        match
          Enumerate.guided_children enum_cfg dist g
            ~budget:(enum_cfg.Enumerate.max_prims - depth - 1)
        with
        | [] -> best
        | options -> go (depth + 1) (Enumerate.pick_guided rng options) best
    in
    go node.depth node.state 0.0
  in
  let expand node =
    match node.children with
    | Some c -> c
    | None ->
        let kids =
          List.filter
            (fun (_, g') ->
              Distance.within dist
                ~current:(Graph.frontier_sizes g')
                ~desired:enum_cfg.Enumerate.desired_shape
                ~budget:(enum_cfg.Enumerate.max_prims - node.depth - 1))
            (Enumerate.children enum_cfg node.state)
        in
        let arr =
          Array.of_list (List.map (fun (p, g') -> (p, make_node g' (node.depth + 1))) kids)
        in
        node.children <- Some arr;
        arr
  in
  let ucb parent_visits child =
    if child.visits = 0 then infinity
    else
      (child.total /. float_of_int child.visits)
      +. (config.exploration
          *. sqrt (log (float_of_int (max 1 parent_visits)) /. float_of_int child.visits))
  in
  let rec simulate node =
    node.visits <- node.visits + 1;
    (* Terminal reward opportunity at this node. *)
    let r =
      let kids = expand node in
      if Array.length kids = 0 then
        match Enumerate.try_complete enum_cfg node.state with
        | Some op -> evaluate op
        | None -> 0.0
      else begin
        (* pick by UCB; unvisited children first *)
        let best = ref 0 in
        for i = 1 to Array.length kids - 1 do
          let _, ci = kids.(i) and _, cb = kids.(!best) in
          if ucb node.visits ci > ucb node.visits cb then best := i
        done;
        let _, child = kids.(!best) in
        if child.visits = 0 then begin
          child.visits <- 1;
          let r = rollout child in
          child.total <- child.total +. r;
          r
        end
        else simulate child
      end
    in
    node.total <- node.total +. r;
    r
  in
  let root = make_node (Graph.init enum_cfg.Enumerate.output_shape) 0 in
  for _ = 1 to config.iterations do
    ignore (simulate root)
  done;
  Hashtbl.fold (fun _ (op, r, n) acc -> { operator = op; reward = r; visits = n } :: acc) found []
  |> List.sort (fun a b -> compare b.reward a.reward)
