(** Guided bottom-up synthesis (Algorithm 1).

    Children of a partial pGraph are all canonical one-primitive
    extensions; the depth-first synthesis backtracks whenever the shape
    distance to the desired input shape exceeds the remaining primitive
    budget (line 20 of Algorithm 1). *)

type config = {
  canon : Pgraph.Canon.config;
  output_shape : Shape.Size.t list;
  desired_shape : Shape.Size.t list;
  max_prims : int;  (** d_max *)
  coefficient_candidates : Shape.Size.t list;
      (** parameter pool for Merge blocks and Stride factors *)
  reduce_candidates : Shape.Size.t list;
      (** parameter pool for Reduce domains *)
  max_flops : int option;
  max_params : int option;
  valuations : Shape.Valuation.t list;
  frozen_sizes : Shape.Size.t list;
      (** Frontier dims with these sizes pass through untouched — used
          to keep the batch dimension out of the action space (weights
          must not depend on the batch index). *)
}

val default_config :
  output_shape:Shape.Size.t list ->
  desired_shape:Shape.Size.t list ->
  valuations:Shape.Valuation.t list ->
  unit ->
  config

val candidate_actions : config -> Pgraph.Graph.t -> Pgraph.Prim.t list
(** All syntactic candidate actions {e before} canonicalization — the
    raw action space used by the Table 3 canonical-rate ablation. *)

val children : config -> Pgraph.Graph.t -> (Pgraph.Prim.t * Pgraph.Graph.t) list
(** All canonical applicable actions with their successor states
    (EnumerateChildren in Algorithm 1). *)

val try_complete : config -> Pgraph.Graph.t -> Pgraph.Graph.operator option
(** Complete against the desired shape and check FLOPs/params budgets. *)

type stats = {
  mutable visited : int;
  mutable completed : int;
  mutable pruned_by_distance : int;
}

val synthesize :
  ?max_results:int ->
  ?max_visits:int ->
  ?stats:stats ->
  config ->
  Pgraph.Graph.operator list
(** Exhaustive DFS up to the visit budget, deduplicated by operator
    signature. *)

val guided_children :
  config ->
  Pgraph.Distance.t ->
  Pgraph.Graph.t ->
  budget:int ->
  (Pgraph.Prim.t * Pgraph.Graph.t * int) list
(** Canonical children whose shape distance fits the remaining budget,
    annotated with that distance. *)

val pick_guided :
  Nd.Rng.t -> (Pgraph.Prim.t * Pgraph.Graph.t * int) list -> Pgraph.Graph.t
(** Sampling policy for rollouts: children are drawn with probability
    proportional to a primitive-kind prior (contractions and windows
    over speculative reshapes) damped polynomially by the successor's
    shape distance.  The list must be non-empty. *)

val random_completion :
  config -> Nd.Rng.t -> use_distance:bool -> Pgraph.Graph.operator option
(** One randomized synthesis trial: sample canonical actions uniformly
    (with or without shape-distance backtracking) until completion or a
    dead end.  Used by the \u{00a7}9.4 shape-distance ablation and as the
    MCTS rollout policy. *)

val make_stats : unit -> stats
