(** Monte Carlo Tree Search over partial pGraphs (\u{00a7}7.2).

    The search space is a Markov decision process whose states are
    partial pGraphs and whose actions are canonical primitive
    applications; terminal states are complete operators.  Selection
    uses UCB1; rollouts sample shape-distance-guided random completions;
    rewards come from a caller-provided evaluator (the accuracy proxy or
    real training).  All completed operators seen during the search are
    recorded and returned with their best observed reward. *)

type config = {
  iterations : int;
  exploration : float;  (** UCB1 constant, default sqrt 2 *)
  rollout_depth : int;  (** unused actions beyond this fail the rollout *)
}

val default_config : ?iterations:int -> unit -> config

type result = {
  operator : Pgraph.Graph.operator;
  reward : float;
  visits : int;  (** times this operator was reached *)
}

val search :
  ?config:config ->
  Enumerate.config ->
  reward:(Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** Results sorted by decreasing reward, deduplicated by operator
    signature. *)
