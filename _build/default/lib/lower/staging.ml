module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify
module Graph = Pgraph.Graph

type stage = { reduced : Ast.iter; extent : int; flops : int }

type plan = {
  stages : stage list;
  final_flops : int;
  total_flops : int;
  naive_flops : int;
}

(* A factor of the product being summed: one dimension of a tensor
   access, with its coordinate expression and concrete extent.  Factors
   group dims belonging to one tensor. *)
type fdim = { fexpr : Ast.t; fextent : int }
type factor = { fdims : fdim list }

let iter_in it e = List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e)
let factor_has it f = List.exists (fun d -> iter_in it d.fexpr) f.fdims

(* [r] occurs "linearly at top level" in [e] iff every additive term of
   [e] containing [r] is exactly [r] or [c * r]. *)
let linear_occurrence it e =
  let rec terms sign acc = function
    | Ast.Add (a, b) -> terms sign (terms sign acc b) a
    | Ast.Sub (a, b) -> terms sign (terms (-sign) acc b) a
    | t -> (sign, t) :: acc
  in
  List.for_all
    (fun (_, t) ->
      match t with
      | Ast.Iter _ | Ast.Mul (_, Ast.Iter _) -> true
      | t -> not (iter_in it t))
    (terms 1 [] e)

(* Remove the [r]-terms from [e]. *)
let residual it e =
  let rec strip e =
    match e with
    | Ast.Add (a, b) -> Ast.add (strip a) (strip b)
    | Ast.Sub (a, b) -> Ast.sub (strip a) (strip b)
    | Ast.Iter j when j.Ast.id = it.Ast.id -> Ast.const 0
    | Ast.Mul (_, Ast.Iter j) when j.Ast.id = it.Ast.id -> Ast.const 0
    | e -> e
  in
  Simplify.flatten (strip e)

(* Materialize the early reduction of [it] over the participating
   factors; returns the replacement factor, or [None] if [it] occurs
   non-linearly somewhere. *)
let materialize lookup it factors =
  let participating, others = List.partition (factor_has it) factors in
  let ok =
    List.for_all
      (fun f ->
        List.for_all
          (fun d -> (not (iter_in it d.fexpr)) || linear_occurrence it d.fexpr)
          f.fdims)
      participating
  in
  if not ok then None
  else
    let new_dims =
      List.concat_map
        (fun f ->
          List.filter_map
            (fun d ->
              if iter_in it d.fexpr then
                let res = residual it d.fexpr in
                match res with
                | Ast.Const _ -> None (* dimension fully consumed *)
                | res ->
                    (* Distinct index values are bounded both by the
                       value range and by the number of iterator
                       assignments (a strided residual like (C/g)*r has
                       only dom(r) values across a wide range). *)
                    let lo, hi = Ast.bounds ~lookup res in
                    let assignments =
                      List.fold_left
                        (fun acc it -> acc * Size.eval it.Ast.dom lookup)
                        1 (Ast.iters res)
                    in
                    Some { fexpr = res; fextent = min (hi - lo + 1) assignments }
              else Some d)
            f.fdims)
        participating
    in
    (* Deduplicate dims indexed by syntactically identical expressions
       (e.g. an iterator shared between two weights). *)
    let dedup =
      List.fold_left
        (fun acc d ->
          if List.exists (fun d' -> Ast.equal d'.fexpr d.fexpr) acc then acc else d :: acc)
        [] new_dims
    in
    Some ({ fdims = List.rev dedup }, others)

let factor_extent f = List.fold_left (fun acc d -> acc * d.fextent) 1 f.fdims

let initial_factors lookup (op : Graph.operator) =
  let input =
    {
      fdims =
        List.map2
          (fun e s -> { fexpr = e; fextent = Size.eval s lookup })
          op.Graph.op_input_exprs op.Graph.op_input_shape;
    }
  in
  let weights =
    List.map
      (fun grp ->
        {
          fdims =
            List.map
              (fun it -> { fexpr = Ast.iter it; fextent = Size.eval it.Ast.dom lookup })
              grp;
        })
      op.Graph.op_weights
  in
  input :: weights

let optimize (op : Graph.operator) valuation =
  let lookup = Valuation.lookup valuation in
  let out_elems =
    List.fold_left (fun acc s -> acc * Size.eval s lookup) 1 op.Graph.op_output_shape
  in
  let dom it = Size.eval it.Ast.dom lookup in
  let naive =
    2 * out_elems * List.fold_left (fun acc it -> acc * dom it) 1 op.Graph.op_reductions
  in
  (* DFS over sequences of early-materialized reductions. *)
  let best = ref (naive, []) in
  let rec explore factors remaining spent stages =
    let final =
      2 * out_elems * List.fold_left (fun acc it -> acc * dom it) 1 remaining
    in
    let total = spent + final in
    if total < fst !best then best := (total, List.rev stages);
    List.iter
      (fun it ->
        match materialize lookup it factors with
        | None -> ()
        | Some (t, others) ->
            let extent = factor_extent t in
            let cost = 2 * extent * dom it in
            if spent + cost < fst !best then
              explore (t :: others)
                (List.filter (fun j -> j.Ast.id <> it.Ast.id) remaining)
                (spent + cost)
                ({ reduced = it; extent; flops = cost } :: stages))
      remaining
  in
  explore (initial_factors lookup op) op.Graph.op_reductions 0 [];
  let total, stages = !best in
  let spent = List.fold_left (fun acc s -> acc + s.flops) 0 stages in
  { stages; final_flops = total - spent; total_flops = total; naive_flops = naive }

let speedup p = float_of_int p.naive_flops /. float_of_int (max 1 p.total_flops)

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "materialize sum over r%d: %d elements, %d flops@," s.reduced.Ast.id
        s.extent s.flops)
    p.stages;
  Format.fprintf ppf "final stage: %d flops@,total %d (naive %d, %.2fx)@]" p.final_flops
    p.total_flops p.naive_flops (speedup p)
