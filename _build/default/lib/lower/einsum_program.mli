(** The einsum-program code generator (\u{00a7}8, "PyTorch code generator").

    A complete operator lowers to a two-step tensor program over the
    [nd] substrate:

    + a {e gather} that materializes [G[o, r] = input[f(o, r)]] with
      out-of-bounds clipped to zero (all the view primitives in one
      indexed copy), then
    + a single einsum contraction of [G] with the weight tensors.

    The result is numerically identical to {!Reference.forward} and is
    differential-tested against it.  [to_pytorch] and [to_te] print the
    equivalent PyTorch-style and TVM-TE/Halide-style programs. *)

type t

val compile : Pgraph.Graph.operator -> Shape.Valuation.t -> t
val forward : t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t
val spec : t -> string
(** The einsum specification string, e.g. ["abcde,ce->abc"]. *)

val gather_shape : t -> int array
val to_pytorch : t -> string
val to_te : t -> string
