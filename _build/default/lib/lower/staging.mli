(** Materialized reduction (\u{00a7}8, Fig. 4).

    A naive lowering evaluates the whole loop nest at once, so a
    [Reduce] performed after a 1-to-many primitive (e.g. [Unfold])
    recomputes its sum once per window element.  Materializing the
    partial reduction as an intermediate tensor removes the
    duplication: [Z[i'] = sum_is X[i' + s*is]] followed by
    [Y[i] = sum_ik Z[i + ik - k/2]] costs [(1 + k/s) * H] instead of
    [k * H] multiply-accumulates.

    [optimize] enumerates the orders in which reduction iterators can
    be materialized early (each must occur only as a top-level linear
    term of the input coordinate expressions) and returns the cheapest
    staging. *)

type stage = {
  reduced : Coord.Ast.iter;  (** the reduction summed by this stage *)
  extent : int;  (** elements of the materialized tensor *)
  flops : int;  (** 2 * extent * dom(reduced) *)
}

type plan = {
  stages : stage list;  (** early-materialized reductions, in order *)
  final_flops : int;  (** the concluding stage over the remaining loops *)
  total_flops : int;
  naive_flops : int;
}

val optimize : Pgraph.Graph.operator -> Shape.Valuation.t -> plan

val speedup : plan -> float
(** [naive / total], >= 1. *)

val pp_plan : Format.formatter -> plan -> unit
