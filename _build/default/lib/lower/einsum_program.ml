module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor

type t = {
  reference : Reference.t;  (* reuse the compiled indexers for the gather *)
  op : Graph.operator;
  gather_shape : int array;
  spec : string;
  plan : Nd.Einsum.plan Lazy.t;
  weight_shapes : int array list;
}

(* Letters for iterators: spatial and reduction iterators get stable
   labels by id. *)
let letter_of_id id =
  if id < 26 then Char.chr (Char.code 'a' + id)
  else invalid_arg "Einsum_program: too many iterators"

let compile (op : Graph.operator) valuation =
  let reference = Reference.compile op valuation in
  let lookup = Valuation.lookup valuation in
  let out_shape = Reference.output_shape reference in
  let red_doms =
    List.map (fun it -> Size.eval it.Ast.dom lookup) op.Graph.op_reductions
  in
  let gather_shape = Array.append out_shape (Array.of_list red_doms) in
  let labels its = String.init (List.length its) (fun i -> letter_of_id (List.nth its i).Ast.id) in
  let g_labels = labels (op.Graph.op_output_iters @ op.Graph.op_reductions) in
  let w_labels = List.map labels op.Graph.op_weights in
  let out_labels = labels op.Graph.op_output_iters in
  let spec = String.concat "," (g_labels :: w_labels) ^ "->" ^ out_labels in
  let weight_shapes = Reference.weight_shapes reference in
  let plan =
    lazy (Nd.Einsum.plan spec (gather_shape :: weight_shapes))
  in
  { reference; op; gather_shape; spec; plan; weight_shapes }

let spec t = t.spec
let gather_shape t = Array.copy t.gather_shape

(* The gather step: evaluate every input coordinate expression over the
   full (output x reduction) iteration space. *)
let gather t ~input =
  let lookup_failure () = invalid_arg "Einsum_program.forward: input shape mismatch" in
  if Tensor.shape input <> Reference.input_shape t.reference then lookup_failure ();
  let g = Tensor.create t.gather_shape in
  let g_data = Tensor.unsafe_data g in
  let in_data = Tensor.unsafe_data input in
  (* Reuse Reference's loop nest: it enumerates (output, reduction)
     pairs in row-major order matching [gather_shape]. *)
  let pos = ref 0 in
  Reference.iter_points t.reference (fun off ->
      if off >= 0 then g_data.(!pos) <- in_data.(off);
      incr pos);
  g

let forward t ~input ~weights =
  List.iter2
    (fun w sh -> if Tensor.shape w <> sh then invalid_arg "Einsum_program: weight shape")
    weights t.weight_shapes;
  let g = gather t ~input in
  Nd.Einsum.run (Lazy.force t.plan) (g :: weights)

(* --- Textual code generation ------------------------------------------- *)

let pp_shape ppf sizes =
  Format.fprintf ppf "[%s]" (String.concat ", " (List.map Size.to_string sizes))

let to_pytorch t =
  let op = t.op in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "def forward(self, x):\n";
  add "    # x: %s\n" (Format.asprintf "%a" pp_shape op.Graph.op_input_shape);
  add "    g = syno_gather(x, index_exprs=[%s],\n"
    (String.concat ", "
       (List.map (fun e -> Printf.sprintf "%S" (Ast.to_string e)) op.Graph.op_input_exprs));
  add "                    out_dims=%s)\n"
    (Format.asprintf "%a" pp_shape
       (op.Graph.op_output_shape @ List.map (fun it -> it.Ast.dom) op.Graph.op_reductions));
  let ws = List.mapi (fun i _ -> Printf.sprintf "self.w%d" i) op.Graph.op_weights in
  add "    return torch.einsum(%S, g%s)\n" t.spec
    (String.concat "" (List.map (fun w -> ", " ^ w) ws));
  Buffer.contents buf

let to_te t =
  let op = t.op in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let reductions = op.Graph.op_reductions in
  if reductions <> [] then
    add "auto [%s] = RDom(%s);\n"
      (String.concat ", " (List.map (fun it -> Printf.sprintf "r%d" it.Ast.id) reductions))
      (String.concat ", "
         (List.map (fun it -> Printf.sprintf "0, %s" (Size.to_string it.Ast.dom)) reductions));
  let out_args =
    String.concat ", "
      (List.map (fun it -> Printf.sprintf "i%d" it.Ast.id) op.Graph.op_output_iters)
  in
  let in_args = String.concat ", " (List.map Ast.to_string op.Graph.op_input_exprs) in
  let weight_accesses =
    List.mapi
      (fun i grp ->
        Printf.sprintf " * w%d(%s)" i
          (String.concat ", "
             (List.map
                (fun it ->
                  Printf.sprintf "%s%d"
                    (match it.Ast.role with Ast.Spatial -> "i" | Ast.Reduction -> "r")
                    it.Ast.id)
                grp)))
      op.Graph.op_weights
  in
  add "out(%s) %s= input(%s)%s;\n" out_args
    (if reductions = [] && op.Graph.op_weights = [] then "" else "+")
    in_args
    (String.concat "" weight_accesses);
  Buffer.contents buf
