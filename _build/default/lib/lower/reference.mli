(** Reference execution of complete operators: the exact loop-nest
    semantics of a pGraph, with analytically derived gradients.

    [out[o] = sum over r of in[f(o, r)] * prod_g w_g[idx_g(o, r)]]

    where [f] are the input coordinate expressions and out-of-bounds
    input accesses contribute zero (the clipping semantics of [Unfold]
    in Table 1).  This is the ground truth that the faster lowered
    programs are differential-tested against, and the executor used for
    training synthesized operators inside real models. *)

type t

val compile_expr : (Shape.Var.t -> int) -> Coord.Ast.t -> int array -> int
(** Compile a coordinate expression into a closure over the iterator
    environment (indexed by iterator id), with sizes resolved through
    the lookup.  Shared with {!Staged_exec}. *)

val compile : Pgraph.Graph.operator -> Shape.Valuation.t -> t

val output_shape : t -> int array
val input_shape : t -> int array
val weight_shapes : t -> int array list
val operator : t -> Pgraph.Graph.operator

val init_weights : t -> Nd.Rng.t -> Nd.Tensor.t list
(** Kaiming-style initialization generalized to weight products: the
    variance budget [2 / reduction extent] is split evenly across the
    weight groups so the accumulated output keeps unit-order scale. *)

val forward : t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t

val backward :
  t ->
  input:Nd.Tensor.t ->
  weights:Nd.Tensor.t list ->
  grad_out:Nd.Tensor.t ->
  Nd.Tensor.t * Nd.Tensor.t list
(** [(grad_input, grad_weights)]. *)

val flops : t -> int
(** Naive loop-nest FLOPs (no staging). *)

val iter_points : t -> (int -> unit) -> unit
(** Enumerate the (output, reduction) iteration space in row-major
    order — outputs outermost — passing the flat input offset of each
    point, or [-1] when the access is clipped out of bounds.  Used by
    the gather step of {!Einsum_program}. *)
