lib/lower/reference.mli: Coord Nd Pgraph Shape
