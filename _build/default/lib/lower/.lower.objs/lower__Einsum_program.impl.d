lib/lower/einsum_program.ml: Array Buffer Char Coord Format Lazy List Nd Pgraph Printf Reference Shape String
