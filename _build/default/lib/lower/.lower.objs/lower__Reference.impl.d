lib/lower/reference.ml: Array Coord Float List Nd Pgraph Shape
