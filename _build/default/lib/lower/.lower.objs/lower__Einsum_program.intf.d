lib/lower/einsum_program.mli: Nd Pgraph Shape
