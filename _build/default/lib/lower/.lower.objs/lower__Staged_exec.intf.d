lib/lower/staged_exec.mli: Nd Pgraph Shape Staging
