lib/lower/staging.mli: Coord Format Pgraph Shape
