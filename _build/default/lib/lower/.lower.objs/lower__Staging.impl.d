lib/lower/staging.ml: Coord Format List Pgraph Shape
