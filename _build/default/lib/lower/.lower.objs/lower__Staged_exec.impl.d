lib/lower/staged_exec.ml: Array Coord List Nd Pgraph Reference Shape Staging
