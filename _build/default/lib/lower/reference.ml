module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor

(* Compile a coordinate expression into a closure over the iterator
   environment (an int array indexed by iterator id). *)
let rec compile_expr lookup (e : Ast.t) : int array -> int =
  match e with
  | Ast.Iter it ->
      let id = it.Ast.id in
      fun env -> env.(id)
  | Ast.Const c -> fun _ -> c
  | Ast.Size_const s ->
      let v = Size.eval s lookup in
      fun _ -> v
  | Ast.Add (a, b) ->
      let fa = compile_expr lookup a and fb = compile_expr lookup b in
      fun env -> fa env + fb env
  | Ast.Sub (a, b) ->
      let fa = compile_expr lookup a and fb = compile_expr lookup b in
      fun env -> fa env - fb env
  | Ast.Mul (s, a) ->
      let n = Size.eval s lookup in
      let fa = compile_expr lookup a in
      fun env -> n * fa env
  | Ast.Div (a, s) ->
      let n = Size.eval s lookup in
      let fa = compile_expr lookup a in
      fun env -> Ast.fdiv (fa env) n
  | Ast.Mod (a, s) ->
      let n = Size.eval s lookup in
      let fa = compile_expr lookup a in
      fun env -> Ast.emod (fa env) n

type t = {
  op : Graph.operator;
  out_shape : int array;
  in_shape : int array;
  weight_shapes : int array list;
  n_env : int;  (* environment size: max iterator id + 1 *)
  spatial_ids : int array;
  reduction_ids : int array;
  reduction_doms : int array;
  input_indexers : (int array -> int) array;  (* one per input dim *)
  weight_indexers : int array array;  (* iterator ids per weight group *)
}

let compile (op : Graph.operator) valuation =
  let lookup = Valuation.lookup valuation in
  let eval_size s = Size.eval s lookup in
  let out_shape = Array.of_list (List.map eval_size op.Graph.op_output_shape) in
  let in_shape = Array.of_list (List.map eval_size op.Graph.op_input_shape) in
  let weight_shapes =
    List.map
      (fun grp -> Array.of_list (List.map (fun it -> eval_size it.Ast.dom) grp))
      op.Graph.op_weights
  in
  let all_ids =
    List.map (fun it -> it.Ast.id) op.Graph.op_output_iters
    @ List.map (fun it -> it.Ast.id) op.Graph.op_reductions
  in
  let n_env = 1 + List.fold_left max (-1) all_ids in
  {
    op;
    out_shape;
    in_shape;
    weight_shapes;
    n_env;
    spatial_ids = Array.of_list (List.map (fun it -> it.Ast.id) op.Graph.op_output_iters);
    reduction_ids = Array.of_list (List.map (fun it -> it.Ast.id) op.Graph.op_reductions);
    reduction_doms =
      Array.of_list (List.map (fun it -> eval_size it.Ast.dom) op.Graph.op_reductions);
    input_indexers = Array.of_list (List.map (compile_expr lookup) op.Graph.op_input_exprs);
    weight_indexers =
      Array.of_list
        (List.map (fun grp -> Array.of_list (List.map (fun it -> it.Ast.id) grp))
           op.Graph.op_weights);
  }

let output_shape t = Array.copy t.out_shape
let input_shape t = Array.copy t.in_shape
let weight_shapes t = List.map Array.copy t.weight_shapes
let operator t = t.op

(* Same convention as {!Pgraph.Flops.naive_flops}: the product of the
   spatial and reduction loop extents, two FLOPs per point. *)
let flops t =
  let out = Array.fold_left ( * ) 1 t.out_shape in
  let red = Array.fold_left ( * ) 1 t.reduction_doms in
  2 * out * red

(* Each accumulated term multiplies the input by one element of every
   weight group, so the variance budget 2/fan_in (Kaiming, with fan_in
   the reduction-space extent) is split evenly across the groups:
   prod_g var(w_g) = 2 / red. *)
let init_weights t rng =
  let red = float_of_int (Array.fold_left ( * ) 1 t.reduction_doms) in
  let n_groups = List.length t.weight_shapes in
  if n_groups = 0 then []
  else
    let scale = (2.0 /. Float.max 1.0 red) ** (1.0 /. (2.0 *. float_of_int n_groups)) in
    List.map (fun sh -> Tensor.rand_normal rng ~scale sh) t.weight_shapes

(* Iterate [body env] over every (output x reduction) assignment.  The
   environment array is reused across iterations. *)
let loop_nest t body =
  let env = Array.make (max 1 t.n_env) 0 in
  let n_out = Array.length t.out_shape in
  let n_red = Array.length t.reduction_ids in
  let out_total = Array.fold_left ( * ) 1 t.out_shape in
  let red_total = Array.fold_left ( * ) 1 t.reduction_doms in
  for flat_out = 0 to out_total - 1 do
    let rem = ref flat_out in
    for i = n_out - 1 downto 0 do
      env.(t.spatial_ids.(i)) <- !rem mod t.out_shape.(i);
      rem := !rem / t.out_shape.(i)
    done;
    for flat_red = 0 to red_total - 1 do
      let rem = ref flat_red in
      for i = n_red - 1 downto 0 do
        env.(t.reduction_ids.(i)) <- !rem mod t.reduction_doms.(i);
        rem := !rem / t.reduction_doms.(i)
      done;
      body flat_out env
    done
  done

(* Input flat offset for the current environment; [-1] when clipped. *)
let input_offset t env =
  let n = Array.length t.in_shape in
  let off = ref 0 in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       let v = t.input_indexers.(i) env in
       if v < 0 || v >= t.in_shape.(i) then begin
         ok := false;
         raise Exit
       end;
       off := (!off * t.in_shape.(i)) + v
     done
   with Exit -> ());
  if !ok then !off else -1

let weight_offset ids shape env =
  let off = ref 0 in
  Array.iteri (fun i id -> off := (!off * shape.(i)) + env.(id)) ids;
  !off

let iter_points t f = loop_nest t (fun _ env -> f (input_offset t env))

let forward t ~input ~weights =
  if Tensor.shape input <> t.in_shape then invalid_arg "Reference.forward: input shape";
  let w_datas = Array.of_list (List.map Tensor.unsafe_data weights) in
  let w_shapes = Array.of_list t.weight_shapes in
  let w_ids = t.weight_indexers in
  let n_w = Array.length w_ids in
  let in_data = Tensor.unsafe_data input in
  let out = Tensor.create t.out_shape in
  let out_data = Tensor.unsafe_data out in
  loop_nest t (fun flat_out env ->
      let off = input_offset t env in
      if off >= 0 then begin
        let v = ref in_data.(off) in
        for g = 0 to n_w - 1 do
          v := !v *. w_datas.(g).(weight_offset w_ids.(g) w_shapes.(g) env)
        done;
        out_data.(flat_out) <- out_data.(flat_out) +. !v
      end);
  out

let backward t ~input ~weights ~grad_out =
  if Tensor.shape grad_out <> t.out_shape then invalid_arg "Reference.backward: grad shape";
  let w_datas = Array.of_list (List.map Tensor.unsafe_data weights) in
  let w_shapes = Array.of_list t.weight_shapes in
  let w_ids = t.weight_indexers in
  let n_w = Array.length w_ids in
  let in_data = Tensor.unsafe_data input in
  let go_data = Tensor.unsafe_data grad_out in
  let grad_in = Tensor.create t.in_shape in
  let gi_data = Tensor.unsafe_data grad_in in
  let grad_ws = List.map Tensor.create t.weight_shapes in
  let gw_datas = Array.of_list (List.map Tensor.unsafe_data grad_ws) in
  let w_offs = Array.make n_w 0 in
  loop_nest t (fun flat_out env ->
      let off = input_offset t env in
      if off >= 0 then begin
        let g_out = go_data.(flat_out) in
        if g_out <> 0.0 then begin
          let w_prod = ref 1.0 in
          for g = 0 to n_w - 1 do
            w_offs.(g) <- weight_offset w_ids.(g) w_shapes.(g) env;
            w_prod := !w_prod *. w_datas.(g).(w_offs.(g))
          done;
          (* d input *)
          gi_data.(off) <- gi_data.(off) +. (g_out *. !w_prod);
          (* d weights: product of all factors except the one being
             differentiated *)
          let x = in_data.(off) in
          for g = 0 to n_w - 1 do
            let others = ref (g_out *. x) in
            for g' = 0 to n_w - 1 do
              if g' <> g then others := !others *. w_datas.(g').(w_offs.(g'))
            done;
            gw_datas.(g).(w_offs.(g)) <- gw_datas.(g).(w_offs.(g)) +. !others
          done
        end
      end);
  (grad_in, grad_ws)
