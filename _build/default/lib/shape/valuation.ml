module Var_map = Map.Make (Var)

type t = int Var_map.t

let empty = Var_map.empty

let add v n t =
  if n <= 0 then invalid_arg "Valuation.add: non-positive value";
  Var_map.add v n t

let of_list l = List.fold_left (fun t (v, n) -> add v n t) empty l

let find t v = Var_map.find v t
let find_opt t v = Var_map.find_opt v t
let mem t v = Var_map.mem v t
let bindings t = Var_map.bindings t

let lookup t v =
  match Var_map.find_opt v t with
  | Some n -> n
  | None -> failwith ("Valuation.lookup: unbound variable " ^ Var.to_string v)

let size t s = Size.eval s (lookup t)
let size_opt t s = Size.eval_opt s (lookup t)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v, n) -> Format.fprintf ppf "%a=%d" Var.pp v n))
    (bindings t)
