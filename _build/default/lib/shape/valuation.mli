(** Concrete valuations of symbolic variables.

    Syno synthesizes on symbolic shapes and substitutes concrete sizes
    at code-generation time (\u{00a7}5.4).  A valuation maps every variable
    appearing in an operator to a positive integer. *)

type t

val empty : t
val add : Var.t -> int -> t -> t
(** Raises [Invalid_argument] on a non-positive value. *)

val of_list : (Var.t * int) list -> t
val find : t -> Var.t -> int
(** Raises [Not_found] when the variable is unbound. *)

val find_opt : t -> Var.t -> int option
val mem : t -> Var.t -> bool
val bindings : t -> (Var.t * int) list
val lookup : t -> Var.t -> int
(** Like [find] but raises [Failure] with the variable name, for use as
    the callback of {!Size.eval}. *)

val size : t -> Size.t -> int
(** [size t s] evaluates [s] under [t]; raises [Failure] if not a
    positive integer. *)

val size_opt : t -> Size.t -> int option
val pp : Format.formatter -> t -> unit
