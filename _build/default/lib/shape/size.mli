(** Symbolic dimension sizes.

    A size is a monomial [c * v1^e1 * ... * vn^en] with a positive
    integer constant [c] and integer exponents.  Primary variables must
    have non-negative exponents (they may not appear in denominators,
    \u{00a7}5.4); coefficient variables may have negative exponents, as in the
    pooling example of Table 2 whose output height is [s{^-1} * H]. *)

type t

val one : t
val of_int : int -> t
(** [of_int c] is the constant size [c]. Raises [Invalid_argument] if
    [c <= 0]. *)

val of_var : Var.t -> t
val var_pow : Var.t -> int -> t

val mul : t -> t -> t
val div : t -> t -> t option
(** [div a b] is [Some (a / b)] when the quotient is a well-formed size
    (integer constant part, no primary variable left in a denominator),
    [None] otherwise. *)

val pow : t -> int -> t option
(** [pow a k]; [None] if a negative power would put a primary variable
    in a denominator or make the constant non-integer. *)

val inv : t -> t option

val constant : t -> int
val exponent : t -> Var.t -> int
val vars : t -> Var.t list
(** Variables with non-zero exponent, sorted. *)

val is_one : t -> bool
val is_constant : t -> bool
val has_negative_exponent : t -> bool

val primary_part : t -> t
(** The sub-monomial restricted to primary variables (constant 1). *)

val coefficient_part : t -> t
(** Constant and coefficient-variable part. *)

val eval : t -> (Var.t -> int) -> int
(** Evaluate under a valuation.  Raises [Failure] if the result is not a
    positive integer (non-exact division). *)

val eval_opt : t -> (Var.t -> int) -> int option

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val product : t list -> t
(** Product of a list of sizes; [one] for the empty list. *)

val gcd : t -> t -> t
(** Greatest common divisor: gcd of the constants and per-variable
    minimum of the exponents (only non-negative exponents of variables
    common to both are considered). *)
