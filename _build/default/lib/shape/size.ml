(* A size is kept in normal form: the constant is a positive integer and
   the exponent list is sorted by variable with no zero exponents.  The
   constant may carry a denominator transiently during [div]; we reject
   any result whose constant is not integral, so externally the
   constant is always a positive int. *)

type t = { const : int; pows : (Var.t * int) list }

let well_formed s =
  s.const > 0
  && List.for_all (fun (v, e) -> e <> 0 && (Var.is_coefficient v || e > 0)) s.pows

let one = { const = 1; pows = [] }

let of_int c =
  if c <= 0 then invalid_arg "Size.of_int: non-positive constant";
  { const = c; pows = [] }

let var_pow v e =
  if e = 0 then one
  else if e < 0 && Var.is_primary v then
    invalid_arg "Size.var_pow: negative power of a primary variable"
  else { const = 1; pows = [ (v, e) ] }

let of_var v = var_pow v 1

let rec merge_pows xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | (vx, ex) :: xs', (vy, ey) :: ys' -> (
      match Var.compare vx vy with
      | 0 ->
          let e = ex + ey in
          if e = 0 then merge_pows xs' ys' else (vx, e) :: merge_pows xs' ys'
      | c when c < 0 -> (vx, ex) :: merge_pows xs' ys
      | _ -> (vy, ey) :: merge_pows xs ys')

let mul a b = { const = a.const * b.const; pows = merge_pows a.pows b.pows }

let negate_pows pows = List.map (fun (v, e) -> (v, -e)) pows

let check s = if well_formed s then Some s else None

let div a b =
  if a.const mod b.const <> 0 then None
  else
    check { const = a.const / b.const; pows = merge_pows a.pows (negate_pows b.pows) }

let inv s = if s.const = 1 then check { const = 1; pows = negate_pows s.pows } else None

let rec int_pow base = function
  | 0 -> 1
  | k -> base * int_pow base (k - 1)

let pow s k =
  if k = 0 then Some one
  else if k > 0 then
    Some { const = int_pow s.const k; pows = List.map (fun (v, e) -> (v, e * k)) s.pows }
  else
    match inv s with
    | None -> None
    | Some s' -> Some { s' with pows = List.map (fun (v, e) -> (v, e * -k)) s'.pows }

let constant s = s.const
let exponent s v = try List.assoc v s.pows with Not_found -> 0
let vars s = List.map fst s.pows
let is_one s = s.const = 1 && s.pows = []
let is_constant s = s.pows = []
let has_negative_exponent s = List.exists (fun (_, e) -> e < 0) s.pows

let primary_part s =
  { const = 1; pows = List.filter (fun (v, _) -> Var.is_primary v) s.pows }

let coefficient_part s =
  { const = s.const; pows = List.filter (fun (v, _) -> Var.is_coefficient v) s.pows }

let eval_opt s valuation =
  (* Accumulate numerator and denominator separately so intermediate
     results stay integral. *)
  let num, den =
    List.fold_left
      (fun (num, den) (v, e) ->
        let base = valuation v in
        if base <= 0 then failwith "Size.eval: non-positive valuation"
        else if e > 0 then (num * int_pow base e, den)
        else (num, den * int_pow base (-e)))
      (s.const, 1) s.pows
  in
  if den <> 0 && num mod den = 0 && num / den > 0 then Some (num / den) else None

let eval s valuation =
  match eval_opt s valuation with
  | Some n -> n
  | None -> failwith "Size.eval: not a positive integer under this valuation"

let compare a b =
  match Int.compare a.const b.const with
  | 0 ->
      List.compare
        (fun (v1, e1) (v2, e2) ->
          match Var.compare v1 v2 with 0 -> Int.compare e1 e2 | c -> c)
        a.pows b.pows
  | c -> c

let equal a b = compare a b = 0
let hash s = Hashtbl.hash (s.const, List.map (fun (v, e) -> (Var.to_string v, e)) s.pows)

let pp ppf s =
  let pp_pow ppf (v, e) =
    if e = 1 then Var.pp ppf v else Format.fprintf ppf "%a^%d" Var.pp v e
  in
  match (s.const, s.pows) with
  | c, [] -> Format.pp_print_int ppf c
  | 1, pows ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '*')
        pp_pow ppf pows
  | c, pows ->
      Format.fprintf ppf "%d*%a" c
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '*')
           pp_pow)
        pows

let to_string s = Format.asprintf "%a" pp s
let product sizes = List.fold_left mul one sizes

let rec int_gcd a b = if b = 0 then a else int_gcd b (a mod b)

let gcd a b =
  let pows =
    List.filter_map
      (fun (v, ea) ->
        let eb = exponent b v in
        let e = min ea eb in
        if e > 0 then Some (v, e) else None)
      a.pows
  in
  { const = int_gcd a.const b.const; pows }
