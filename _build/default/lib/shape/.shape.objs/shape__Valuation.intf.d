lib/shape/valuation.mli: Format Size Var
