lib/shape/var.ml: Format String
