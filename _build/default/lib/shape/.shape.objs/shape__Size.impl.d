lib/shape/size.ml: Format Hashtbl Int List Var
