lib/shape/var.mli: Format
