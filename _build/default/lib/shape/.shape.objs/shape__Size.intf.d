lib/shape/size.mli: Format Var
