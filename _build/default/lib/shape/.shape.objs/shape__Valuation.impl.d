lib/shape/valuation.ml: Format List Map Size Var
