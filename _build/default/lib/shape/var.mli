(** Symbolic size variables.

    Syno (\u{00a7}5.4) distinguishes two classes of variables:
    {ul
    {- {e primary} variables stand for input/output dimensions of the
       operator being synthesized (e.g. [C_out], [H]).  They are assumed
       relatively large and may never appear in the denominator of a
       size or coordinate expression;}
    {- {e coefficient} variables are introduced by primitive parameters
       (e.g. the kernel size [k] of an [Unfold]).  They are assumed
       relatively small and may appear in denominators.}} *)

type kind =
  | Primary
  | Coefficient

type t

val make : kind -> string -> t
(** [make kind name] creates a variable.  Variables are compared
    structurally: two calls with the same kind and name yield equal
    variables. *)

val primary : string -> t
val coefficient : string -> t

val name : t -> string
val kind : t -> kind
val is_primary : t -> bool
val is_coefficient : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
