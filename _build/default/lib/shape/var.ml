type kind =
  | Primary
  | Coefficient

type t = { kind : kind; name : string }

let make kind name =
  if String.length name = 0 then invalid_arg "Var.make: empty name";
  { kind; name }

let primary name = make Primary name
let coefficient name = make Coefficient name
let name v = v.name
let kind v = v.kind

let is_primary v =
  match v.kind with
  | Primary -> true
  | Coefficient -> false

let is_coefficient v = not (is_primary v)

let compare a b =
  match compare a.kind b.kind with
  | 0 -> String.compare a.name b.name
  | c -> c

let equal a b = compare a b = 0
let pp ppf v = Format.pp_print_string ppf v.name
let to_string v = v.name
