examples/quickstart.ml: Array Format List Lower Nd Perf Pgraph Shape String Syno
