examples/gpt2_substitution.mli:
