examples/operator_search.mli:
