examples/edge_deployment.ml: Backbones Format List Perf Syno
