examples/operator_search.ml: Backbones Dataset Format List Nd Nn Perf Pgraph Printf Syno Unix
