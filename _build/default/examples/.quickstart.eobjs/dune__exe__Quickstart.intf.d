examples/quickstart.mli:
