examples/gpt2_substitution.ml: Array Backbones Dataset Format Nd Nn Unix
