(* Quickstart: build an operator from Syno primitives, inspect it,
   lower it through both code generators, and run it on real data.

   Run with: dune exec examples/quickstart.exe *)

module Size = Shape.Size
module Valuation = Shape.Valuation
module Prim = Pgraph.Prim
module Graph = Pgraph.Graph
module Zoo = Syno.Zoo
module Tensor = Nd.Tensor

let () =
  Format.printf "=== 1. Building a 2D convolution from Syno primitives (Fig. 2) ===@.";
  (* The pGraph is built bottom-up: start from the output coordinates
     [N, C_out, H, W] and apply primitives until the frontier matches
     the input shape [N, C_in, H, W]. *)
  let open Zoo.Vars in
  let sz = Size.of_var in
  let g = Graph.init [ sz n; sz c_out; sz h; sz w ] in
  let steps =
    [
      Prim.Reduce (sz c_in);
      (* introduce the input-channel contraction *)
      Prim.Reduce (sz k);
      (* the H window *)
      Prim.Reduce (sz k);
      (* the W window *)
      Prim.Share (4, Prim.New_group);
      (* r_Ci indexes input and weight *)
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (2, 5);
      (* i_H + r_KH - k/2 *)
      Prim.Share (5, Prim.Current_group);
      Prim.Unfold (3, 5);
      (* i_W + r_KW - k/2 *)
      Prim.Match 1;
      (* C_out indexes the weight only *)
    ]
  in
  let g =
    List.fold_left
      (fun g p ->
        let g = Graph.apply_exn g p in
        Format.printf "  after %-12s frontier = [%s]@." (Prim.to_string p)
          (String.concat "; " (List.map Size.to_string (Graph.frontier_sizes g)));
        g)
      g steps
  in
  let op =
    match Graph.complete g ~desired:[ sz n; sz c_in; sz h; sz w ] with
    | Ok op -> op
    | Error e -> failwith e
  in
  Format.printf "@.operator: %a@.@." Graph.pp_operator op;

  Format.printf "=== 2. Code generation (\u{00a7}8) ===@.";
  let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:4 ~c_out:8 ~hw:10 ~k:3 ~g:2 ~s:2 () in
  let ep = Lower.Einsum_program.compile op valuation in
  Format.printf "PyTorch-style program:@.%s@." (Lower.Einsum_program.to_pytorch ep);
  Format.printf "TVM-TE/Halide-style program:@.%s@." (Lower.Einsum_program.to_te ep);

  Format.printf "=== 3. Executing on the nd tensor substrate ===@.";
  let reference = Lower.Reference.compile op valuation in
  let rng = Nd.Rng.create ~seed:1 in
  let x = Tensor.rand_normal rng ~scale:1.0 (Lower.Reference.input_shape reference) in
  let weights = Lower.Reference.init_weights reference rng in
  let y_ref = Lower.Reference.forward reference ~input:x ~weights in
  let y_ein = Lower.Einsum_program.forward ep ~input:x ~weights in
  Format.printf "output shape: %s@."
    (String.concat "x" (Array.to_list (Array.map string_of_int (Tensor.shape y_ref))));
  Format.printf "loop-nest and einsum backends agree: %b@.@."
    (Tensor.equal ~eps:1e-6 y_ref y_ein);

  Format.printf "=== 4. Cost analysis ===@.";
  Format.printf "naive FLOPs: %d, params: %d@."
    (Pgraph.Flops.naive_flops op valuation)
    (Pgraph.Flops.params op valuation);
  let plan = Lower.Staging.optimize op valuation in
  Format.printf "materialized-reduction plan:@.%a@.@." Lower.Staging.pp_plan plan;

  Format.printf "=== 5. Shape distance (\u{00a7}7.1) ===@.";
  let dist = Pgraph.Distance.create () in
  let show current =
    Format.printf "  distance([%s] -> [N, C_in, H, W]) = %s@."
      (String.concat "; " (List.map Size.to_string current))
      (match
         Pgraph.Distance.distance dist ~current ~desired:[ sz n; sz c_in; sz h; sz w ]
       with
      | Some d -> string_of_int d
      | None -> "unreachable")
  in
  show [ sz n; sz c_in; sz h; sz w ];
  show [ sz n; sz c_in; Size.mul (sz h) (sz w) ];
  show [ sz n; sz c_in; sz h; sz w; sz k ];
  show [ sz n; sz h; sz w ];

  Format.printf "@.=== 6. Latency on modelled hardware (\u{00a7}9.1) ===@.";
  List.iter
    (fun platform ->
      List.iter
        (fun compiler ->
          Format.printf "  %-12s %-14s %8.1f us@." platform.Perf.Platform.name
            (Perf.Compiler_model.name compiler)
            (Perf.Roofline.operator_time_us compiler platform op valuation))
        Perf.Compiler_model.all)
    Perf.Platform.all
