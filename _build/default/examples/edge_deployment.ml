(* Edge deployment study: how the operator zoo performs across the
   three hardware platforms and two compiler backends of \u{00a7}9.1,
   including INT8 quantization (Fig. 8's comparison point).

   Run with: dune exec examples/edge_deployment.exe *)

module Api = Syno.Api
module Zoo = Syno.Zoo

let () =
  Format.printf "=== End-to-end latency of the five vision backbones ===@.";
  List.iter
    (fun model ->
      Format.printf "@.%s (conv FLOPs %.2f G):@." model.Backbones.Models.name
        (float_of_int (Backbones.Models.total_flops model) /. 1e9);
      Format.printf "  %-14s %-12s %10s %10s %10s %10s@." "compiler" "platform" "baseline"
        "op1" "op2" "shift";
      List.iter
        (fun compiler ->
          List.iter
            (fun platform ->
              let base = Api.model_latency_ms model compiler platform in
              let sub e = Api.model_latency_ms ~substitute:e model compiler platform in
              Format.printf "  %-14s %-12s %8.2fms %8.2fms %8.2fms %8.2fms@."
                (Perf.Compiler_model.name compiler)
                platform.Perf.Platform.name base (sub Zoo.operator1) (sub Zoo.operator2)
                (sub Zoo.shift_conv))
            Perf.Platform.all)
        Perf.Compiler_model.all)
    Backbones.Models.vision_models;

  Format.printf "@.=== Per-operator kernel study at a ResNet stage shape ===@.";
  let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:128 ~c_out:128 ~hw:28 ~k:3 ~g:2 ~s:4 () in
  Format.printf "  %-28s %12s %10s %8s@." "operator" "staged flops" "params" "kind";
  List.iter
    (fun e ->
      let k = Perf.Kernel.of_operator e.Zoo.operator valuation in
      Format.printf "  %-28s %12d %10d %8s@." e.Zoo.name k.Perf.Kernel.flops
        (k.Perf.Kernel.param_bytes / 4)
        (if k.Perf.Kernel.grouped then "grouped"
         else if k.Perf.Kernel.regular then "regular"
         else "irreg"))
    Zoo.conv_like;

  Format.printf "@.=== INT8 quantization vs operator synthesis (Fig. 8 axis) ===@.";
  let cpu = Perf.Platform.mobile_cpu and tvm = Perf.Compiler_model.tvm in
  let conv = Zoo.conv2d.Zoo.operator in
  let fp32 = Perf.Roofline.operator_time_us tvm cpu conv valuation in
  let int8 = Perf.Roofline.quantized_operator_time_us tvm cpu conv valuation in
  let op1 = Perf.Roofline.operator_time_us tvm cpu Zoo.operator1.Zoo.operator valuation in
  Format.printf "  conv fp32: %8.1f us@." fp32;
  Format.printf "  conv int8: %8.1f us (%.2fx)@." int8 (fp32 /. int8);
  Format.printf "  operator1: %8.1f us (%.2fx) — and the two compose@." op1 (fp32 /. op1)
