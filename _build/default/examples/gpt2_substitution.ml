(* GPT-2 QKV substitution (\u{00a7}9.3, Fig. 10): train the GPT-2 proxy with
   its original dense QKV projections and with the grouped projections
   Syno discovers, and compare perplexity and per-step cost.

   Run with: dune exec examples/gpt2_substitution.exe *)

module Gpt2 = Backbones.Gpt2

let vocab = 24
let seq_len = 12
let embed = 24
let heads = 2
let layers = 2
let steps = 120

let train name make_qkv data =
  let rng = Nd.Rng.create ~seed:99 in
  let model = Gpt2.create rng ~vocab ~seq_len ~embed ~heads ~layers ?make_qkv () in
  let opt = Nn.Optimizer.adam ~lr:3e-3 () in
  Format.printf "@.%s: %d params (%d in QKV)@." name (Gpt2.num_params model)
    (Gpt2.qkv_params model);
  let batches = Array.of_list data.Dataset.Synth_lm.batches in
  let t0 = Unix.gettimeofday () in
  for step = 1 to steps do
    let inputs, targets = batches.(step mod Array.length batches) in
    let loss = Gpt2.train_step model opt ~inputs ~targets in
    if step mod 30 = 0 || step = 1 then
      Format.printf "  step %4d  loss %.3f  ppl %.1f@." step loss (exp loss)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let ppl = Gpt2.perplexity model data.Dataset.Synth_lm.batches in
  Format.printf "  final perplexity %.2f  (%.1f ms/step)@." ppl (1000.0 *. wall /. float_of_int steps);
  (ppl, wall)

let () =
  let rng = Nd.Rng.create ~seed:3 in
  let data =
    Dataset.Synth_lm.generate rng ~vocab ~seq_len ~batches:24 ~batch_size:6 ~branching:3 ()
  in
  Format.printf "synthetic LM: vocab %d, uniform ppl %.0f, entropy floor ppl %.2f@." vocab
    (Dataset.Synth_lm.uniform_perplexity data)
    (Dataset.Synth_lm.floor_perplexity data);
  let ppl_orig, wall_orig = train "original (dense QKV)" None data in
  let grouped rng ~embed =
    let proj () = Nn.Layer.grouped_linear rng ~features:embed ~groups:4 in
    (proj (), proj (), proj ())
  in
  let ppl_sub, wall_sub = train "Syno-substituted (grouped QKV, g=4)" (Some grouped) data in
  Format.printf "@.summary: perplexity %.2f -> %.2f, training wall time speedup %.2fx@."
    ppl_orig ppl_sub (wall_orig /. wall_sub)
