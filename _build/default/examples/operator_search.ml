(* Operator synthesis end to end: run the MCTS-guided search over the
   convolution signature, then train the best discovered operator
   against the standard convolution on the synthetic vision task.

   Run with: dune exec examples/operator_search.exe *)

module Graph = Pgraph.Graph
module Api = Syno.Api
module Zoo = Syno.Zoo

let () =
  let rng = Nd.Rng.create ~seed:2024 in
  Format.printf "=== Searching for conv replacements (Algorithm 1 + MCTS) ===@.";
  let t0 = Unix.gettimeofday () in
  let candidates =
    Api.search_conv_operators ~iterations:2000 ~max_prims:8 ~flops_budget_ratio:1.0 ~rng
      ~valuations:Api.default_search_valuations ()
  in
  Format.printf "found %d distinct canonical operators in %.1fs@.@."
    (List.length candidates)
    (Unix.gettimeofday () -. t0);
  let top = List.filteri (fun i _ -> i < 8) candidates in
  List.iteri
    (fun i c ->
      Format.printf "#%d reward=%.2f flops=%d params=%d@.    %s@." (i + 1) c.Api.reward
        c.Api.flops c.Api.params c.Api.signature)
    top;

  Format.printf "@.=== Training the best candidates on the synthetic vision task ===@.";
  let data_rng = Nd.Rng.create ~seed:7 in
  let data =
    Dataset.Synth_vision.generate data_rng ~classes:4 ~channels:4 ~size:10
      ~train_batches:10 ~eval_batches:4 ~batch_size:16 ()
  in
  let train name op =
    let entry = { Zoo.name; description = name; operator = op } in
    let h = Api.train_entry ~rng:(Nd.Rng.create ~seed:5) entry data in
    Format.printf "  %-22s eval accuracy %.3f@." name h.Nn.Train.final_eval_accuracy;
    h.Nn.Train.final_eval_accuracy
  in
  let conv_acc = train "conv2d (baseline)" Zoo.conv2d.Zoo.operator in
  (* The analytic proxy only guides the search; like the paper, the
     final ranking comes from actually training the top candidates. *)
  let top3 = List.filteri (fun i _ -> i < 3) top in
  (match
     List.map
       (fun (c : Api.candidate) ->
         (train (Printf.sprintf "candidate (reward %.2f)" c.Api.reward) c.Api.operator, c))
       top3
   with
  | [] -> Format.printf "no candidate found@."
  | trained ->
      let best_acc, best =
        List.fold_left
          (fun (a, b) (a', b') -> if a' > a then (a', b') else (a, b))
          (List.hd trained) (List.tl trained)
      in
      Format.printf "@.best candidate after training: %+.3f accuracy vs conv@."
        (best_acc -. conv_acc);
      Format.printf "  %s@." best.Api.signature);

  Format.printf "@.=== Latency of the discovered operators on ResNet-18 ===@.";
  match top with
  | best :: _ ->
      let entry =
        { Zoo.name = "discovered"; description = ""; operator = best.Api.operator }
      in
      List.iter
        (fun platform ->
          let s =
            Api.speedup entry Backbones.Models.resnet18 Perf.Compiler_model.tvm platform
          in
          Format.printf "  %-12s TVM speedup %.2fx@." platform.Perf.Platform.name s)
        Perf.Platform.all
  | [] -> ()
