(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (\u{00a7}9) on the OCaml substrate.

     dune exec bench/main.exe           -- run everything
     dune exec bench/main.exe fig5      -- one experiment
     dune exec bench/main.exe check    -- validate every BENCH_*.json
     (experiments: fig5 fig6 fig8 fig9 fig10 tab3 ablation micro par robust
      validate analysis cancel shard cegis serve kernel, plus *-smoke
      variants for CI)

   Paper-reported numbers are printed alongside the measured ones; the
   hardware/datasets are simulated (see DESIGN.md), so the comparison
   targets the *shape* of each result, not absolute values. *)

module Size = Shape.Size
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Zoo = Syno.Zoo
module Api = Syno.Api
module Models = Backbones.Models

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* --- Shared accuracy evaluation ------------------------------------------ *)

(* Trained proxy accuracy per operator, cached across experiments (the
   paper likewise reuses the CIFAR-100 search accuracies). *)
let accuracy_cache : (string, float) Hashtbl.t = Hashtbl.create 8

(* The standard proxy mirrors the paper's CIFAR-100 regime: trainable
   operators all converge and the <1% admissibility gate passes them.
   The hard proxy (larger motifs, more classes, tighter budget) leaves
   headroom so operator-quality differences show (Fig. 8). *)
let proxy_data =
  lazy
    (let rng = Nd.Rng.create ~seed:1234 in
     Dataset.Synth_vision.generate rng ~classes:4 ~channels:4 ~size:10 ~train_batches:10
       ~eval_batches:8 ~batch_size:16 ())

let hard_data =
  lazy
    (let rng = Nd.Rng.create ~seed:4321 in
     Dataset.Synth_vision.generate rng ~classes:6 ~channels:4 ~size:10 ~motif:4
       ~train_batches:8 ~eval_batches:8 ~batch_size:16 ())

let hard_cache : (string, float) Hashtbl.t = Hashtbl.create 8

let trained_accuracy_on cache data label (entry : Zoo.entry) =
  match Hashtbl.find_opt cache entry.Zoo.name with
  | Some acc -> acc
  | None ->
      let t0 = Unix.gettimeofday () in
      let h = Api.train_entry ~rng:(Nd.Rng.create ~seed:55) entry (Lazy.force data) in
      let acc = h.Nn.Train.final_eval_accuracy in
      Format.printf "  [train %s] %-16s accuracy %.3f  (%.0fs)@." label entry.Zoo.name acc
        (Unix.gettimeofday () -. t0);
      Hashtbl.add cache entry.Zoo.name acc;
      acc

let trained_accuracy entry = trained_accuracy_on accuracy_cache proxy_data "proxy" entry
let hard_accuracy entry = trained_accuracy_on hard_cache hard_data "hard" entry

let discovered = [ Zoo.operator1; Zoo.operator2; Zoo.shift_conv ]

(* --- Figure 5: end-to-end speedups --------------------------------------- *)

let fig5 () =
  section "Figure 5: end-to-end speedup, five vision models (CIFAR-100 proxy)";
  note "Syno picks the fastest discovered operator within 1%% accuracy loss";
  let conv_acc = trained_accuracy Zoo.conv2d in
  let admissible =
    List.filter (fun e -> trained_accuracy e >= conv_acc -. 0.01) discovered
  in
  note "admissible operators: %s"
    (String.concat ", " (List.map (fun e -> e.Zoo.name) admissible));
  let geomeans = Hashtbl.create 8 in
  Format.printf "@.  %-18s" "model";
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          Format.printf "%15s"
            (Printf.sprintf "%s/%s"
               (if Perf.Compiler_model.name c = "tvm" then "tvm" else "ind")
               p.Perf.Platform.name))
        Perf.Platform.all)
    Perf.Compiler_model.all;
  Format.printf "@.";
  List.iter
    (fun model ->
      Format.printf "  %-18s" model.Models.name;
      List.iter
        (fun compiler ->
          List.iter
            (fun platform ->
              let best =
                List.fold_left
                  (fun acc e -> Float.max acc (Api.speedup e model compiler platform))
                  1.0 admissible
              in
              let key = (Perf.Compiler_model.name compiler, platform.Perf.Platform.name) in
              let sum, n = try Hashtbl.find geomeans key with Not_found -> (0.0, 0) in
              Hashtbl.replace geomeans key (sum +. log best, n + 1);
              Format.printf "%14.2fx" best)
            Perf.Platform.all)
        Perf.Compiler_model.all;
      Format.printf "@.")
    Models.vision_models;
  Format.printf "  %-18s" "geomean";
  List.iter
    (fun compiler ->
      List.iter
        (fun platform ->
          let key = (Perf.Compiler_model.name compiler, platform.Perf.Platform.name) in
          let sum, n = Hashtbl.find geomeans key in
          Format.printf "%14.2fx" (exp (sum /. float_of_int n)))
        Perf.Platform.all)
    Perf.Compiler_model.all;
  Format.printf "@.";
  note "paper geomeans: TVM 2.06x/1.72x/1.47x, TorchInductor 1.37x/1.62x/1.60x";
  note "(mobile-cpu / mobile-gpu / a100)"

(* --- Figure 6: accuracy-latency Pareto ------------------------------------ *)

let fig6 () =
  section "Figure 6: accuracy vs inference-time Pareto points (ImageNet proxy)";
  let conv_acc = trained_accuracy Zoo.conv2d in
  let points model =
    let latency = function
      | None -> Api.model_latency_ms model Perf.Compiler_model.tvm Perf.Platform.mobile_cpu
      | Some e ->
          Api.model_latency_ms ~substitute:e model Perf.Compiler_model.tvm
            Perf.Platform.mobile_cpu
    in
    (None, conv_acc, latency None)
    :: List.map (fun e -> (Some e, trained_accuracy e, latency (Some e))) discovered
  in
  List.iter
    (fun model ->
      Format.printf "@.  %s (mobile CPU, TVM):@." model.Models.name;
      let pts = points model in
      let pareto (me, acc, lat) =
        not
          (List.exists
             (fun (other, acc', lat') ->
               (match (other, me) with
               | None, None -> false
               | Some a, Some b -> a.Zoo.name <> b.Zoo.name
               | _, _ -> true)
               && acc' >= acc && lat' < lat)
             pts)
      in
      List.iter
        (fun ((e, acc, lat) as pt) ->
          Format.printf "    %-18s acc %.3f (%+.3f)  %8.2f ms %s@."
            (match e with None -> "baseline" | Some e -> e.Zoo.name)
            acc (acc -. conv_acc) lat
            (if pareto pt then "[pareto]" else ""))
        pts)
    Models.vision_models;
  note "";
  note "paper: Syno points sit below-left of the baselines with 1-2%% accuracy";
  note "loss and up to 4.73x (TVM) speedup; the fastest admissible point per";
  note "model reproduces that corner"

(* --- Figure 8: Operator 1 case study -------------------------------------- *)

let fig8 () =
  section "Figure 8: Operator 1 vs stacked convolution vs INT8 quantization";
  Format.printf "@.  Operator 1 structure (Fig. 7 / Listing 2):@.";
  let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:64 ~c_out:64 ~hw:28 ~k:3 ~g:2 ~s:2 () in
  let ep = Lower.Einsum_program.compile Zoo.operator1.Zoo.operator valuation in
  print_string (Lower.Einsum_program.to_pytorch ep);
  let conv_acc = hard_accuracy Zoo.conv2d in
  let op1_acc = hard_accuracy Zoo.operator1 in
  let stacked_acc = hard_accuracy Zoo.stacked_conv in
  (* INT8 quantization degrades the baseline by about one point in the
     paper; we reuse that reported delta (this substrate trains FP32). *)
  let int8_acc = conv_acc -. 0.012 in
  let model = Models.resnet18 in
  let tvm = Perf.Compiler_model.tvm in
  Format.printf "@.  %-24s %8s  %12s %12s %12s@." "configuration" "accuracy" "mobile-cpu"
    "mobile-gpu" "a100";
  let row name acc latency =
    Format.printf "  %-24s %8.3f  %10.2fms %10.2fms %10.2fms@." name acc
      (latency Perf.Platform.mobile_cpu)
      (latency Perf.Platform.mobile_gpu)
      (latency Perf.Platform.a100)
  in
  row "conv (fp32 baseline)" conv_acc (fun p -> Api.model_latency_ms model tvm p);
  row "operator 1" op1_acc (fun p -> Api.model_latency_ms ~substitute:Zoo.operator1 model tvm p);
  row "stacked grouped conv" stacked_acc (fun p ->
      Api.model_latency_ms ~substitute:Zoo.stacked_conv model tvm p);
  let int8_latency p =
    List.fold_left
      (fun acc spec ->
        let lo = Api.baseline_layer_op spec in
        acc
        +. float_of_int spec.Backbones.Convspec.count
           *. Perf.Roofline.quantized_operator_time_us tvm p lo.Api.op lo.Api.valuation)
      0.0 model.Models.specs
    /. 1000.0
  in
  row "conv INT8 (paper delta)" int8_acc int8_latency;
  note "";
  note "paper shape: Operator 1 keeps accuracy within 1%%; the stacked";
  note "convolution has similar latency but roughly doubles the degradation;";
  note "Operator 1 also beats INT8 on CPU latency with better accuracy"

(* --- Figure 9: layer-wise comparison with NAS-PTE ------------------------- *)

let fig9 () =
  section "Figure 9: layer-wise latency vs NAS-PTE on ResNet-34";
  let ops =
    [
      ("conv", Zoo.conv2d);
      ("pte-group", Zoo.nas_pte_grouped);
      ("pte-bneck", Zoo.nas_pte_bottleneck);
      ("pte-range", Zoo.nas_pte_range_bottleneck);
      ("syno-op1", Zoo.operator1);
      ("syno-op2", Zoo.operator2);
    ]
  in
  List.iter
    (fun compiler ->
      Format.printf "@.  [%s] latency in us:@." (Perf.Compiler_model.name compiler);
      Format.printf "  %-12s %-12s" "layer" "platform";
      List.iter (fun (name, _) -> Format.printf "%11s" name) ops;
      Format.printf "@.";
      List.iter
        (fun spec ->
          List.iter
            (fun platform ->
              Format.printf "  %-12s %-12s" spec.Backbones.Convspec.layer
                platform.Perf.Platform.name;
              List.iter
                (fun (_, e) ->
                  let lo = Api.substituted_layer_op e spec in
                  Format.printf "%11.1f"
                    (Perf.Roofline.operator_time_us compiler platform lo.Api.op
                       lo.Api.valuation))
                ops;
              Format.printf "@.")
            Perf.Platform.all)
        Models.resnet34_profile_layers)
    Perf.Compiler_model.all;
  Format.printf "@.  FLOPs and parameter reduction of best Syno vs best NAS-PTE:@.";
  List.iter
    (fun spec ->
      let staged e =
        let lo = Api.substituted_layer_op e spec in
        (Lower.Staging.optimize lo.Api.op lo.Api.valuation).Lower.Staging.total_flops
      in
      let params e =
        let lo = Api.substituted_layer_op e spec in
        Pgraph.Flops.params lo.Api.op lo.Api.valuation
      in
      let ptes =
        [ Zoo.nas_pte_grouped; Zoo.nas_pte_bottleneck; Zoo.nas_pte_range_bottleneck ]
      in
      let best_pte f = List.fold_left (fun acc e -> min acc (f e)) max_int ptes in
      let best_syno f = min (f Zoo.operator1) (f Zoo.operator2) in
      Format.printf "    %-12s flops %5.2fx  params %5.2fx@." spec.Backbones.Convspec.layer
        (float_of_int (best_pte staged) /. float_of_int (best_syno staged))
        (float_of_int (best_pte params) /. float_of_int (best_syno params)))
    Models.resnet34_profile_layers;
  note "";
  note "paper: Syno's best ops beat NAS-PTE's best by 2.13x/1.68x/1.63x with";
  note "TVM (cpu/mobile-gpu/a100), with 1.76-4.32x fewer FLOPs and 1.80-9.50x";
  note "fewer parameters; with TorchInductor on mobile, NAS-PTE's standard";
  note "convolutions keep template support while novel operators fall back";
  note "to ATen, reversing the ranking (0.83x-0.84x)"

(* --- Figure 10: GPT-2 ------------------------------------------------------ *)

let fig10 () =
  section "Figure 10: GPT-2 perplexity vs training steps";
  let vocab = 24 and seq_len = 12 and embed = 24 and heads = 2 and layers = 2 in
  let steps = 150 in
  let rng = Nd.Rng.create ~seed:3 in
  let data =
    Dataset.Synth_lm.generate rng ~vocab ~seq_len ~batches:24 ~batch_size:6 ~branching:3 ()
  in
  note "synthetic LM: uniform ppl %.0f, entropy-floor ppl %.2f"
    (Dataset.Synth_lm.uniform_perplexity data)
    (Dataset.Synth_lm.floor_perplexity data);
  let run name make_qkv =
    let rng = Nd.Rng.create ~seed:99 in
    let model = Backbones.Gpt2.create rng ~vocab ~seq_len ~embed ~heads ~layers ?make_qkv () in
    let opt = Nn.Optimizer.adam ~lr:3e-3 () in
    let batches = Array.of_list data.Dataset.Synth_lm.batches in
    let curve = ref [] in
    let t0 = Unix.gettimeofday () in
    for step = 1 to steps do
      let inputs, targets = batches.(step mod Array.length batches) in
      let loss = Backbones.Gpt2.train_step model opt ~inputs ~targets in
      if step mod 25 = 0 then curve := (step, exp loss) :: !curve
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let final = Backbones.Gpt2.perplexity model data.Dataset.Synth_lm.batches in
    (name, Backbones.Gpt2.qkv_params model, List.rev !curve, final, wall)
  in
  let orig = run "original" None in
  let grouped rng ~embed =
    let proj () = Nn.Layer.grouped_linear rng ~features:embed ~groups:4 in
    (proj (), proj (), proj ())
  in
  let substituted = run "syno (grouped QKV)" (Some grouped) in
  List.iter
    (fun (name, qkv, curve, final, wall) ->
      Format.printf "@.  %-20s qkv-params %5d  %.1f ms/step@." name qkv
        (1000.0 *. wall /. float_of_int steps);
      List.iter (fun (s, p) -> Format.printf "    step %4d  ppl %7.2f@." s p) curve;
      Format.printf "    final ppl %.2f@." final)
    [ orig; substituted ];
  let _, _, _, p0, w0 = orig and _, _, _, p1, w1 = substituted in
  note "";
  note "measured: perplexity %.2f -> %.2f, training speedup %.2fx" p0 p1 (w0 /. w1);
  note "paper:    perplexity 111 -> 99,  training speedup 1.1x"

(* --- Table 3 + canonicalization ablation ----------------------------------- *)

let search_space_cfg ?(max_prims = 9) () =
  let open Zoo.Vars in
  let sz = Size.of_var in
  let base =
    Search.Enumerate.default_config
      ~output_shape:[ sz n; sz c_out; sz h; sz w ]
      ~desired_shape:[ sz n; sz c_in; sz h; sz w ]
      ~valuations:Api.default_search_valuations ()
  in
  {
    base with
    Search.Enumerate.max_prims;
    coefficient_candidates = [ sz k; sz s; sz g ];
    reduce_candidates = [ sz c_in; sz k; Size.mul (Size.var_pow s (-1)) (sz c_out) ];
    frozen_sizes = [ sz n ];
  }

let tab3 () =
  section "Table 3 / \u{00a7}9.4: canonicalization ablation";
  let cfg = search_space_cfg () in
  let open Zoo.Vars in
  let sz = Size.of_var in
  let output = [ sz n; sz c_out; sz h; sz w ] in
  let rng = Nd.Rng.create ~seed:77 in
  (* Sample random primitive sequences WITHOUT canonicalization and
     measure how many replay through the canonicalizer. *)
  let random_trace len =
    let rec go g remaining acc =
      if remaining = 0 then Some (List.rev acc)
      else
        let actions =
          List.filter
            (fun p -> Result.is_ok (Graph.apply g p))
            (Search.Enumerate.candidate_actions cfg g)
        in
        match actions with
        | [] -> None
        | actions ->
            let p = List.nth actions (Nd.Rng.int rng (List.length actions)) in
            go (Graph.apply_exn g p) (remaining - 1) (p :: acc)
    in
    go (Graph.init output) len []
  in
  let paper =
    [ (2, 100.0); (3, 18.18); (4, 13.97); (5, 4.40); (6, 1.22); (7, 0.08); (8, 0.0) ]
  in
  Format.printf "@.  %-6s %12s %12s@." "size" "measured" "paper";
  let total = ref 0 and canon_total = ref 0 in
  List.iter
    (fun (len, paper_rate) ->
      let samples = 400 in
      let canonical = ref 0 and drawn = ref 0 in
      for _ = 1 to samples do
        match random_trace len with
        | Some trace ->
            incr drawn;
            if Pgraph.Canon.trace_is_canonical cfg.Search.Enumerate.canon output trace then
              incr canonical
        | None -> ()
      done;
      total := !total + !drawn;
      canon_total := !canon_total + !canonical;
      Format.printf "  %-6d %11.2f%% %11.2f%%@." len
        (100.0 *. float_of_int !canonical /. float_of_int (max 1 !drawn))
        paper_rate)
    paper;
  note "";
  note "overall: %d of %d random pGraphs canonical (%.0fx redundancy removed)"
    !canon_total !total
    (float_of_int !total /. float_of_int (max 1 !canon_total));
  note "paper: 86 of 6452 samples canonical (more than 70x redundancy)"

(* --- Shape-distance ablation ------------------------------------------------ *)

let ablation () =
  section "\u{00a7}9.4: shape-distance guidance ablation";
  let cfg = search_space_cfg ~max_prims:8 () in
  let trials = 3000 in
  let run use_distance =
    let rng = Nd.Rng.create ~seed:5 in
    let distinct = Hashtbl.create 64 in
    let successes = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to trials do
      match Search.Enumerate.random_completion cfg rng ~use_distance with
      | Some op ->
          incr successes;
          Hashtbl.replace distinct (Graph.operator_signature op) ()
      | None -> ()
    done;
    (!successes, Hashtbl.length distinct, Unix.gettimeofday () -. t0)
  in
  let ok_with, distinct_with, t_with = run true in
  let ok_without, distinct_without, t_without = run false in
  Format.printf "@.  %-22s %10s %10s %10s@." "" "successes" "distinct" "seconds";
  Format.printf "  %-22s %10d %10d %10.2f@." "with shape distance" ok_with distinct_with
    t_with;
  Format.printf "  %-22s %10d %10d %10.2f@." "without" ok_without distinct_without t_without;
  note "";
  note "paper: 253 distinct operators from 5M guided trials in 68s;";
  note "500M unguided trials in 181s found none"

(* --- Microbenchmarks --------------------------------------------------------- *)

let micro () =
  section "Microbenchmarks of the core machinery (Bechamel)";
  let open Bechamel in
  let valuations = Api.default_search_valuations in
  let ctx = Coord.Simplify.ctx valuations in
  let conv = Zoo.conv2d.Zoo.operator in
  let expr = List.nth conv.Graph.op_input_exprs 2 in
  let cfg_canon = Pgraph.Canon.default_config ctx in
  let open Zoo.Vars in
  let sz = Size.of_var in
  let g0 = Graph.init [ sz n; sz c_out; sz h; sz w ] in
  let g1 = Graph.apply_exn g0 (Prim.Reduce (sz c_in)) in
  let valuation = Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:8 ~k:3 ~g:2 ~s:2 () in
  let compiled = Lower.Reference.compile conv valuation in
  let rng = Nd.Rng.create ~seed:1 in
  let x = Nd.Tensor.rand_normal rng ~scale:1.0 (Lower.Reference.input_shape compiled) in
  let conv_weights = Lower.Reference.init_weights compiled rng in
  let mat_a = Nd.Tensor.rand_normal rng ~scale:1.0 [| 32; 32 |] in
  let mat_b = Nd.Tensor.rand_normal rng ~scale:1.0 [| 32; 32 |] in
  let tests =
    Test.make_grouped ~name:"syno" ~fmt:"%s/%s"
      [
        Test.make ~name:"simplify-conv-expr"
          (Staged.stage (fun () -> Coord.Simplify.simplify ctx expr));
        Test.make ~name:"canon-check"
          (Staged.stage (fun () ->
               Pgraph.Canon.is_canonical cfg_canon g1 (Prim.Unfold (2, 4))));
        Test.make ~name:"shape-distance"
          (Staged.stage (fun () ->
               Pgraph.Distance.distance
                 (Pgraph.Distance.create ())
                 ~current:(Graph.frontier_sizes g1)
                 ~desired:[ sz n; sz c_in; sz h; sz w ]));
        Test.make ~name:"einsum-32x32-matmul"
          (Staged.stage (fun () -> Nd.Einsum.einsum "ik,kj->ij" [ mat_a; mat_b ]));
        Test.make ~name:"reference-conv-8ch-8x8"
          (Staged.stage (fun () -> Lower.Reference.forward compiled ~input:x ~weights:conv_weights));
      ]
  in
  let benchmark_cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all benchmark_cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun key v acc -> (key, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with Some [ t ] -> t | Some _ | None -> nan
      in
      Format.printf "  %-32s %12.1f ns/run@." name ns)
    (List.sort compare rows)

(* --- Parallel evaluation engine ---------------------------------------------- *)

(* Throughput of the two hot paths at 1 domain vs N domains, verifying
   that the parallel einsum results are exactly the sequential ones and
   that single-tree parallel MCTS reaches a best reward no worse than
   the sequential search on the same budget, and emitting the
   measurements as a BENCH_par.json trajectory file.  Timing is
   interleaved best-of-k so a background hiccup cannot fake a slowdown.
   The speedup gate is hardware-aware: with >= 2 hardware threads every
   case must reach >= 1x at the parallel pool size; on a single
   hardware thread (where the granularity tuner declines to
   parallelize) the gate is no-regression instead.  The smoke variant
   (bench-smoke alias, run from CI and `dune runtest`) uses tiny
   iteration counts so the gates run on every test run. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let par_bench ~smoke () =
  section
    (Printf.sprintf "Parallel evaluation engine (Domains)%s" (if smoke then " [smoke]" else ""));
  let hw = Domain.recommended_domain_count () in
  (* Never oversubscribe past 4, never less than 2 — the point is to
     measure the parallel machinery even where it cannot win. *)
  let n_domains = max 2 (min 4 (Par.Pool.num_domains ())) in
  let min_speedup = if hw >= 2 then 1.0 else 0.85 in
  note "pool sizes: 1 vs %d (hardware threads %d, speedup gate %.2fx)" n_domains hw
    min_speedup;
  let pool1 = Par.Pool.create ~domains:1 () in
  let pooln = Par.Pool.create ~domains:n_domains () in
  let rng = Nd.Rng.create ~seed:2025 in
  (* Einsum: the default bench shapes. *)
  let iters = if smoke then 4 else 20 in
  let reps = if smoke then 3 else 5 in
  let einsum_cases =
    [
      ("matmul-128", "ik,kj->ij", [ [| 128; 128 |]; [| 128; 128 |] ]);
      ("batched-matmul", "bik,kj->bij", [ [| 8; 64; 64 |]; [| 64; 64 |] ]);
      ("pointwise-conv", "nchw,dc->ndhw", [ [| 2; 32; 24; 24 |]; [| 32; 32 |] ]);
    ]
  in
  let einsum_rows =
    List.map
      (fun (name, spec, shapes) ->
        let tensors =
          List.map (fun sh -> Nd.Tensor.rand_normal rng ~scale:1.0 sh) shapes
        in
        let p = Nd.Einsum.plan spec shapes in
        let run pool =
          let out = ref (Nd.Einsum.run ~pool p tensors) in
          let (), t =
            time (fun () ->
                for _ = 1 to iters do
                  out := Nd.Einsum.run ~pool p tensors
                done)
          in
          (!out, t +. 1e-12)
        in
        (* Warm both pools once, then interleave timed repetitions and
           keep the best of each. *)
        let out1 = ref (fst (run pool1)) and outn = ref (fst (run pooln)) in
        let t1 = ref infinity and tn = ref infinity in
        for _ = 1 to reps do
          let o, t = run pool1 in
          out1 := o;
          if t < !t1 then t1 := t;
          let o, t = run pooln in
          outn := o;
          if t < !tn then tn := t
        done;
        let t1 = !t1 and tn = !tn in
        let identical = Nd.Tensor.unsafe_data !out1 = Nd.Tensor.unsafe_data !outn in
        note "einsum %-16s %-16s 1-domain %8.1f runs/s  %d-domain %8.1f runs/s  %5.2fx  %s"
          name spec
          (float_of_int iters /. t1)
          n_domains
          (float_of_int iters /. tn)
          (t1 /. tn)
          (if identical then "bit-identical" else "MISMATCH");
        (name, spec, t1, tn, identical))
      einsum_cases
  in
  (* MCTS: sequential search vs single-tree parallel search on the
     same total iteration budget and the same seed.  Two properties
     gate: (a) single-tree search with one worker reproduces the
     sequential search bit-for-bit — same operators, same rewards,
     same visit counts — so sharing the tree preserves the search
     semantics exactly; (b) with [n_domains] workers the same total
     budget must not run slower than sequential (gated on real
     parallel hardware only — interleaving makes the *explored set*
     scheduling-dependent, so its best reward is recorded, not
     gated; every reward is still the deterministic memoized score). *)
  let mcts_iterations = if smoke then 200 else 400 in
  (* Unlike the einsum rows (whose granularity tuner falls back to a
     sequential run when parallelism cannot win), MCTS workers always
     contend for the tree lock — so never run more of them than there
     are hardware threads.  On a 1-core host this times 1 worker, a
     meaningful overhead measurement rather than a fake slowdown. *)
  let mcts_workers = max 1 (min n_domains hw) in
  let cfg = search_space_cfg ~max_prims:6 () in
  let mcts_cfg = Search.Mcts.default_config ~iterations:mcts_iterations () in
  let reward ~cancel:_ op = Search.Reward.score op (List.hd Api.default_search_valuations) in
  let res1, mt1 =
    time (fun () ->
        Search.Mcts.search ~config:mcts_cfg cfg ~reward ~rng:(Nd.Rng.create ~seed:41) ())
  in
  let resw1 =
    Search.Mcts.search_single_tree ~config:mcts_cfg ~pool:pooln ~workers:1 cfg ~reward
      ~rng:(Nd.Rng.create ~seed:41) ()
  in
  let resn, mtn =
    time (fun () ->
        Search.Mcts.search_single_tree ~config:mcts_cfg ~pool:pooln ~workers:mcts_workers
          cfg ~reward ~rng:(Nd.Rng.create ~seed:41) ())
  in
  let fingerprint rs =
    List.map
      (fun (r : Search.Mcts.result) ->
        ( Graph.operator_signature r.Search.Mcts.operator,
          r.Search.Mcts.reward,
          r.Search.Mcts.visits ))
      rs
  in
  let mcts_identical = fingerprint res1 = fingerprint resw1 in
  let best rs =
    List.fold_left
      (fun acc (r : Search.Mcts.result) ->
        if r.Search.Mcts.quarantined then acc else Float.max acc r.Search.Mcts.reward)
      neg_infinity rs
  in
  let best1 = best res1 and bestn = best resn in
  note "mcts   %d iters (single tree)  sequential %5.2fs best %.4f   1-worker %s   %d-worker %5.2fs best %.4f  %5.2fx"
    mcts_iterations mt1 best1
    (if mcts_identical then "identical" else "MISMATCH")
    mcts_workers mtn bestn (mt1 /. mtn);
  Par.Pool.shutdown pool1;
  Par.Pool.shutdown pooln;
  (* Trajectory file. *)
  let oc = open_out "BENCH_par.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"domains\": %d,\n" n_domains;
  out "  \"hw_domains\": %d,\n" hw;
  out "  \"min_speedup_gate\": %.2f,\n" min_speedup;
  out "  \"einsum_iterations\": %d,\n" iters;
  out "  \"einsum\": [\n";
  List.iteri
    (fun i (name, spec, t1, tn, identical) ->
      out
        "    {\"name\": \"%s\", \"spec\": \"%s\", \"seconds_1domain\": %.6f, \
         \"seconds_ndomain\": %.6f, \"speedup\": %.3f, \"bit_identical\": %b}%s\n"
        name spec t1 tn (t1 /. tn) identical
        (if i = List.length einsum_rows - 1 then "" else ","))
    einsum_rows;
  out "  ],\n";
  out
    "  \"mcts\": {\"mode\": \"single-tree\", \"iterations\": %d, \"workers\": %d, \
     \"workers_clamped_to_hw\": %b, \
     \"operators_sequential\": %d, \"operators_parallel\": %d, \
     \"best_reward_sequential\": %.6f, \"best_reward_parallel\": %.6f, \
     \"seconds_1domain\": %.6f, \"seconds_ndomain\": %.6f, \"speedup\": %.3f, \
     \"single_worker_identical\": %b}\n"
    mcts_iterations mcts_workers
    (mcts_workers < n_domains)
    (List.length res1) (List.length resn) best1 bestn mt1 mtn
    (mt1 /. mtn) mcts_identical;
  out "}\n";
  close_out oc;
  note "wrote BENCH_par.json";
  let einsum_identical = List.for_all (fun (_, _, _, _, id) -> id) einsum_rows in
  if not (einsum_identical && mcts_identical) then begin
    prerr_endline "parallel results diverged from sequential results";
    exit 1
  end;
  (* The MCTS gate only makes sense on real parallel hardware: with one
     hardware thread the clamp above runs a single worker, whose timing
     is an overhead measurement, not a speedup claim — it is recorded in
     the JSON but informational (the einsum paths fall back to the
     tuner's sequential run instead, so they still gate). *)
  let speedup_ok =
    List.for_all (fun (_, _, t1, tn, _) -> t1 /. tn >= min_speedup) einsum_rows
    && (hw < 2 || mt1 /. mtn >= min_speedup)
  in
  if not speedup_ok then begin
    Printf.eprintf "parallel speedup below the %.2fx gate at %d domains (%d hw threads)\n"
      min_speedup n_domains hw;
    exit 1
  end

(* --- Fault-tolerant evaluation ------------------------------------------------ *)

(* Measures what robustness costs: Robust.Guard wrapping overhead per
   reward call, checkpoint write cost, and end-to-end validation that a
   fault-injected search (with retries) and a kill/resume cycle both
   reproduce the fault-free results.  Emits BENCH_robust.json; the
   smoke variant runs inside `dune runtest` via the bench-smoke alias. *)

let robust_bench ~smoke () =
  section
    (Printf.sprintf "Fault-tolerant candidate evaluation (Robust)%s"
       (if smoke then " [smoke]" else ""));
  (* 1) Guard overhead on a cheap thunk: the worst case, since a real
     reward evaluation dwarfs the wrapper. *)
  let calls = if smoke then 20_000 else 2_000_000 in
  let acc = ref 0.0 in
  let thunk i _token = Float.of_int (i land 1023) *. 0.5 in
  let never = Robust.Cancel.create () in
  let (), t_raw =
    time (fun () ->
        for i = 1 to calls do
          acc := !acc +. (thunk i) never
        done)
  in
  let policy = Robust.Guard.policy ~retries:2 () in
  let (), t_guarded =
    time (fun () ->
        for i = 1 to calls do
          let out = Robust.Guard.run ~policy ~key:"k" (thunk i) in
          match out.Robust.Guard.result with Ok r -> acc := !acc +. r | Error _ -> ()
        done)
  in
  ignore !acc;
  let ns t = 1e9 *. t /. float_of_int calls in
  note "guard overhead: raw %6.1f ns/call, guarded %6.1f ns/call (%.2fx)" (ns t_raw)
    (ns t_guarded)
    (t_guarded /. Float.max 1e-12 t_raw);
  (* 2) A real search, three ways: fault-free, fault-injected with
     retries, and killed + resumed.  All three must agree. *)
  let iterations = if smoke then 150 else 600 in
  let max_prims = 6 in
  let seed = 2024 in
  let run ?guard ?inject ?checkpoint ?resume label =
    let r, t =
      time (fun () ->
          Api.search_conv_operators_run ~iterations ~max_prims ?guard ?inject ?checkpoint
            ~checkpoint_every:10 ?resume ~rng:(Nd.Rng.create ~seed)
            ~valuations:Api.default_search_valuations ())
    in
    note "%-24s %3d operators, %4d evaluations, %4d attempts, %5.2fs" label
      (List.length r.Api.candidates)
      r.Api.failures.Search.Mcts.evaluations r.Api.failures.Search.Mcts.attempts t;
    (r, t)
  in
  let sigs r = List.map (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward)) r.Api.candidates in
  let clean, t_clean = run "fault-free" in
  let inject = Robust.Inject.create ~seed:7 ~rate:0.25 ~max_failures:2 () in
  let faulted, t_faulted =
    run ~guard:(Robust.Guard.policy ~retries:3 ()) ~inject "injected (rate 0.25)"
  in
  let injected_delivered = Robust.Inject.injected_count inject in
  let injected_recorded =
    Option.value ~default:0
      (List.assoc_opt "injected" faulted.Api.failures.Search.Mcts.failed_attempts)
  in
  let faulted_ok = sigs clean = sigs faulted in
  let accounted = injected_delivered = injected_recorded in
  note "injected faults delivered %d, recorded %d (%s); results %s" injected_delivered
    injected_recorded
    (if accounted then "accounted" else "LOST")
    (if faulted_ok then "identical to fault-free" else "DIVERGED");
  (* Kill/resume: a truncated run checkpoints, then a full run resumes
     from the snapshot and must replay to the fault-free results. *)
  let ckpt = Filename.temp_file "syno_bench" ".ckpt" in
  let (_ : Api.search_run), _ =
    time (fun () ->
        Api.search_conv_operators_run ~iterations:(max 1 (iterations / 3)) ~max_prims
          ~checkpoint:ckpt ~checkpoint_every:5 ~rng:(Nd.Rng.create ~seed)
          ~valuations:Api.default_search_valuations ())
  in
  let entries =
    match Search.Checkpoint.load ~path:ckpt with
    | Ok es -> es
    | Error msg -> failwith ("checkpoint load failed: " ^ msg)
  in
  let resumed, t_resumed = run ~resume:ckpt "resumed after kill" in
  let resumed_ok = sigs clean = sigs resumed in
  note "kill/resume: %d entries preloaded, %d fresh evaluations; results %s"
    (List.length entries) resumed.Api.failures.Search.Mcts.evaluations
    (if resumed_ok then "identical to uninterrupted" else "DIVERGED");
  (* 3) Checkpoint write cost at the final table size. *)
  let writes = if smoke then 5 else 50 in
  let (), t_save =
    time (fun () ->
        for _ = 1 to writes do
          Search.Checkpoint.save ~path:ckpt entries
        done)
  in
  let bytes = (Unix.stat ckpt).Unix.st_size in
  note "checkpoint: %d entries, %d bytes, %.2f ms/write" (List.length entries) bytes
    (1000.0 *. t_save /. float_of_int writes);
  Sys.remove ckpt;
  (* Trajectory file. *)
  let oc = open_out "BENCH_robust.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"guard\": {\"calls\": %d, \"raw_ns_per_call\": %.2f, \"guarded_ns_per_call\": %.2f, \
       \"overhead\": %.3f},\n"
    calls (ns t_raw) (ns t_guarded)
    (t_guarded /. Float.max 1e-12 t_raw);
  out "  \"search\": {\"iterations\": %d, \"operators\": %d, \"seconds_clean\": %.6f, \
       \"seconds_injected\": %.6f, \"seconds_resumed\": %.6f},\n"
    iterations
    (List.length clean.Api.candidates)
    t_clean t_faulted t_resumed;
  out "  \"faults\": {\"rate\": 0.25, \"delivered\": %d, \"recorded\": %d, \"accounted\": %b, \
       \"identical_results\": %b},\n"
    injected_delivered injected_recorded accounted faulted_ok;
  out "  \"resume\": {\"entries\": %d, \"fresh_evaluations\": %d, \"identical_results\": %b},\n"
    (List.length entries) resumed.Api.failures.Search.Mcts.evaluations resumed_ok;
  out "  \"checkpoint\": {\"entries\": %d, \"bytes\": %d, \"ms_per_write\": %.4f}\n"
    (List.length entries) bytes
    (1000.0 *. t_save /. float_of_int writes);
  out "}\n";
  close_out oc;
  note "wrote BENCH_robust.json";
  if not (faulted_ok && resumed_ok && accounted) then begin
    prerr_endline "fault-injected or resumed results diverged from the fault-free run";
    exit 1
  end

(* --- Candidate admission & differential validation ---------------------------- *)

(* Measures what the Validate layer costs and proves what it catches:
   over-budget candidates are rejected before any tensor allocation
   (verified with the Nd.Tensor allocation probe), a seeded miscompile
   in one lowering backend is caught as backend_mismatch without
   aborting the search, a fault-free validated search returns exactly
   the unvalidated top-k, and the per-candidate validation cost stays
   under 10% of a candidate evaluation.  Emits BENCH_validate.json. *)

let validate_bench ~smoke () =
  section
    (Printf.sprintf "Candidate admission & differential validation%s"
       (if smoke then " [smoke]" else ""));
  let v0 = List.hd Api.default_search_valuations in
  (* 1) Budget rejection happens before any allocation. *)
  let conv = Zoo.conv2d.Zoo.operator in
  let est = Validate.Budget.estimate conv v0 in
  note "conv2d at the search shape: %d est. bytes (gather %d elems), %d est. flops"
    est.Validate.Budget.est_bytes est.Validate.Budget.est_gather_elems
    est.Validate.Budget.est_flops;
  let alloc0 = Nd.Tensor.allocations () in
  let verdict = Validate.Budget.admit ~max_bytes:1 conv [ v0 ] in
  let allocs_during = Nd.Tensor.allocations () - alloc0 in
  let rejected_before_alloc =
    (match verdict with Error (Robust.Guard.Over_budget _) -> true | Ok () | Error _ -> false)
    && allocs_during = 0
  in
  note "budget gate at max-bytes 1: %s, %d tensor allocations during the check"
    (match verdict with
    | Error k -> Robust.Guard.kind_label k
    | Ok () -> "admitted (BUG)")
    allocs_during;
  (* 2) Searches: unvalidated baseline, fault-free validated (must agree),
     seeded-miscompile validated (must catch), starved budget (must
     reject everything without evaluating anything). *)
  let iterations = if smoke then 150 else 600 in
  let max_prims = 6 in
  let seed = 2024 in
  let run ?max_bytes ?max_flops ?validate ?validate_config label =
    let r, t =
      time (fun () ->
          Api.search_conv_operators_run ~iterations ~max_prims ?max_bytes ?max_flops
            ?validate ?validate_config ~rng:(Nd.Rng.create ~seed)
            ~valuations:Api.default_search_valuations ())
    in
    note "%-28s %3d operators, %4d evaluations, %3d quarantined, %5.2fs" label
      (List.length r.Api.candidates)
      r.Api.failures.Search.Mcts.evaluations r.Api.failures.Search.Mcts.quarantined t;
    (r, t)
  in
  let sigs (r : Api.search_run) =
    List.map (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward)) r.Api.candidates
  in
  let failed_kind (r : Api.search_run) kind =
    Option.value ~default:0 (List.assoc_opt kind r.Api.failures.Search.Mcts.failed_attempts)
  in
  let clean, t_clean = run "unvalidated" in
  let validated, t_validated = run ~validate:true "validated (fault-free)" in
  let same_topk = sigs clean = sigs validated in
  (match validated.Api.admission with
  | Some s ->
      note "admission gate: %d gated, %d rejected, %.3fs total" s.Validate.Admit.calls
        s.Validate.Admit.rejected s.Validate.Admit.seconds
  | None -> ());
  note "fault-free validated results %s"
    (if same_topk then "identical to unvalidated" else "DIVERGED");
  let fault = Validate.Differential.fault ~seed:3 ~rate:0.5 Validate.Differential.Einsum in
  let mutated, _ =
    run ~validate:true
      ~validate_config:(Validate.Differential.config ~fault ())
      "validated (seeded miscompile)"
  in
  let delivered = Validate.Differential.fault_count fault in
  let mismatches = failed_kind mutated "backend_mismatch" in
  let caught = delivered > 0 && mismatches = delivered in
  note "seeded miscompiles (einsum backend, rate 0.5): %d delivered, %d caught as \
       backend_mismatch (%s)"
    delivered mismatches
    (if caught then "all caught" else "MISSED");
  let starved, _ = run ~max_flops:1 "max-flops 1 (all rejected)" in
  let over_budget = failed_kind starved "over_budget" in
  let starved_ok =
    starved.Api.failures.Search.Mcts.evaluations = 0 && over_budget > 0
  in
  note "starved budget: %d over_budget rejections, %d reward evaluations (%s)" over_budget
    starved.Api.failures.Search.Mcts.evaluations
    (if starved_ok then "nothing evaluated" else "LEAKED");
  (* 3) Validator overhead per candidate, against the cost of one
     candidate evaluation (analytic reward + one einsum-program forward
     at the search shape).  Validation runs three small forwards at the
     tiny validation shape, so it must stay well under the 10% gate. *)
  let candidates =
    List.filteri (fun i _ -> i < if smoke then 4 else 8)
      (List.filter_map
         (fun (c : Api.candidate) -> if c.Api.quarantined then None else Some c.Api.operator)
         clean.Api.candidates)
  in
  let repeats = if smoke then 3 else 10 in
  let eval_once op =
    ignore (Search.Reward.score op v0);
    let compiled = Lower.Reference.compile op v0 in
    let rng = Nd.Rng.create ~seed:9 in
    let input =
      Nd.Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0 (Lower.Reference.input_shape compiled)
    in
    let weights = Lower.Reference.init_weights compiled rng in
    let ep = Lower.Einsum_program.compile op v0 in
    ignore (Lower.Einsum_program.forward ep ~input ~weights)
  in
  let validate_once op =
    match Validate.Differential.check op Api.default_validation_valuations with
    | Ok _ | Error _ -> ()
  in
  let mean f =
    let (), t =
      time (fun () -> List.iter (fun op -> for _ = 1 to repeats do f op done) candidates)
    in
    t /. float_of_int (max 1 (repeats * List.length candidates))
  in
  let mean_eval = mean eval_once in
  let mean_validate = mean validate_once in
  let ratio = mean_validate /. Float.max 1e-12 mean_eval in
  let overhead_ok = ratio <= 0.10 in
  note "per-candidate cost over %d candidates: evaluation %.3f ms, validation %.3f ms \
       (%.1f%% %s)"
    (List.length candidates) (1000.0 *. mean_eval) (1000.0 *. mean_validate)
    (100.0 *. ratio)
    (if overhead_ok then "<= 10% gate" else "OVER the 10% gate");
  (* Trajectory file. *)
  let oc = open_out "BENCH_validate.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"budget\": {\"est_bytes\": %d, \"est_flops\": %d, \"rejected_before_alloc\": %b, \
       \"allocations_during_check\": %d},\n"
    est.Validate.Budget.est_bytes est.Validate.Budget.est_flops rejected_before_alloc
    allocs_during;
  out "  \"search\": {\"iterations\": %d, \"operators\": %d, \"seconds_unvalidated\": %.6f, \
       \"seconds_validated\": %.6f, \"identical_topk\": %b},\n"
    iterations
    (List.length clean.Api.candidates)
    t_clean t_validated same_topk;
  out "  \"mutation\": {\"backend\": \"einsum\", \"rate\": 0.5, \"delivered\": %d, \
       \"caught_as_backend_mismatch\": %d, \"all_caught\": %b},\n"
    delivered mismatches caught;
  out "  \"over_budget\": {\"rejections\": %d, \"evaluations\": %d},\n" over_budget
    starved.Api.failures.Search.Mcts.evaluations;
  out "  \"overhead\": {\"candidates\": %d, \"repeats\": %d, \"mean_eval_ms\": %.4f, \
       \"mean_validate_ms\": %.4f, \"ratio\": %.4f, \"within_gate\": %b}\n"
    (List.length candidates) repeats (1000.0 *. mean_eval) (1000.0 *. mean_validate) ratio
    overhead_ok;
  out "}\n";
  close_out oc;
  note "wrote BENCH_validate.json";
  if not (rejected_before_alloc && same_topk && caught && starved_ok && overhead_ok) then begin
    prerr_endline "validation bench assertions failed";
    exit 1
  end

(* --- Static analysis gate ----------------------------------------------------- *)

(* Measures what the Analysis layer costs and proves what it catches:
   every zoo operator's tensor accesses are statically proved in
   bounds (or exactly characterized as legal zero-padding), seeded
   out-of-bounds gathers — which every backend zero-clips, so
   differential validation passes them — are all rejected as
   static_violation before any tensor allocation, the graph lint and
   rewrite-soundness sweeps come back clean, and the static gate costs
   under 20% of the differential gate on the same candidate set.
   Emits BENCH_analysis.json; the smoke variant runs inside
   `dune runtest` via the bench-smoke alias. *)

let analysis_bench ~smoke () =
  section
    (Printf.sprintf "Static analysis gate (Analysis)%s" (if smoke then " [smoke]" else ""));
  let module Verify = Analysis.Verify in
  let module Lint = Analysis.Lint in
  let module Rewrite = Analysis.Rewrite in
  let vs = Api.default_validation_valuations in
  (* 1) Bounds verdicts over the whole catalog: never a violation. *)
  let conv_v = List.hd vs in
  let matmul_v = Zoo.Vars.matmul_valuation ~m:4 ~n:4 ~k:4 in
  let verdict_of (e : Zoo.entry) =
    let v =
      if Option.is_some (Verify.program_opt e.Zoo.operator conv_v) then conv_v else matmul_v
    in
    (e.Zoo.name, Verify.program e.Zoo.operator v)
  in
  let verdicts, t_zoo = time (fun () -> List.map verdict_of Zoo.all) in
  let count p = List.length (List.filter (fun (_, x) -> p x) verdicts) in
  let proved = count (fun x -> x = Verify.Proved) in
  let padded = count (function Verify.Padded _ -> true | _ -> false) in
  let violations = count (function Verify.Violation _ -> true | _ -> false) in
  note "zoo bounds: %d proved, %d padded, %d violations across %d operators (%.2f ms)"
    proved padded violations (List.length verdicts) (1000.0 *. t_zoo);
  let zoo_sound = violations = 0 in
  (* 2) Candidate set: a short unvalidated search at the usual seed. *)
  let iterations = if smoke then 150 else 600 in
  let clean =
    Api.search_conv_operators_run ~iterations ~max_prims:6 ~rng:(Nd.Rng.create ~seed:2024)
      ~valuations:Api.default_search_valuations ()
  in
  let candidates =
    List.filteri (fun i _ -> i < if smoke then 6 else 12)
      (List.filter_map
         (fun (c : Api.candidate) -> if c.Api.quarantined then None else Some c.Api.operator)
         clean.Api.candidates)
  in
  (* 3) Seeded OOB gathers: every backend zero-clips them, so the
     differential gate passes each one — and the static gate must
     reject each one before any tensor exists. *)
  let corrupted = List.map Validate.Differential.corrupt_operator candidates in
  let alloc0 = Nd.Tensor.allocations () in
  let static_verdicts =
    List.map (fun op -> Verify.admit op vs) corrupted
  in
  let static_allocs = Nd.Tensor.allocations () - alloc0 in
  let caught =
    List.length
      (List.filter
         (function Error (Robust.Guard.Static_violation _) -> true | _ -> false)
         static_verdicts)
  in
  let all_caught = caught = List.length corrupted && corrupted <> [] in
  let differential_passes =
    List.length
      (List.filter
         (fun op ->
           match Validate.Differential.check op vs with Ok _ -> true | Error _ -> false)
         corrupted)
  in
  note "seeded OOB gathers: %d/%d caught as static_violation (%d tensor allocations), \
        %d/%d invisible to differential validation"
    caught (List.length corrupted) static_allocs differential_passes
    (List.length corrupted);
  (* 4) Gate cost on the same (healthy) candidate set. *)
  let repeats = if smoke then 5 else 20 in
  let mean f =
    let (), t =
      time (fun () -> List.iter (fun op -> for _ = 1 to repeats do f op done) candidates)
    in
    t /. float_of_int (max 1 (repeats * List.length candidates))
  in
  let mean_static = mean (fun op -> ignore (Verify.admit op vs)) in
  let mean_differential =
    mean (fun op -> ignore (Validate.Differential.check op vs))
  in
  let ratio = mean_static /. Float.max 1e-12 mean_differential in
  let cost_ok = ratio < 0.20 in
  note "per-candidate gate cost over %d candidates: static %.4f ms, differential %.4f ms \
        (%.1f%% %s)"
    (List.length candidates) (1000.0 *. mean_static) (1000.0 *. mean_differential)
    (100.0 *. ratio)
    (if cost_ok then "< 20% gate" else "OVER the 20% gate");
  (* 5) Lint + rewrite-soundness sweeps stay clean. *)
  let lint_errors, lint_warnings =
    List.fold_left
      (fun (e, w) (entry : Zoo.entry) ->
        let v =
          if Option.is_some (Verify.program_opt entry.Zoo.operator conv_v) then conv_v
          else matmul_v
        in
        let fs = Lint.check ~valuations:[ v ] entry.Zoo.operator in
        (e + List.length (Lint.errors fs), w + (List.length fs - List.length (Lint.errors fs))))
      (0, 0) Zoo.all
  in
  let rewrites =
    List.fold_left
      (fun acc (entry : Zoo.entry) ->
        let v =
          if Option.is_some (Verify.program_opt entry.Zoo.operator conv_v) then conv_v
          else matmul_v
        in
        Rewrite.merge_reports acc
          (Rewrite.check_operator (Coord.Simplify.ctx [ v ]) entry.Zoo.operator))
      Rewrite.empty_report Zoo.all
  in
  let rewrites_sound = rewrites.Rewrite.rp_failures = [] in
  note "lint: %d errors, %d warnings; rewrites: %d checked (%d approx), %d unsound"
    lint_errors lint_warnings rewrites.Rewrite.rp_checked rewrites.Rewrite.rp_approx
    (List.length rewrites.Rewrite.rp_failures);
  (* Trajectory file. *)
  let oc = open_out "BENCH_analysis.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"zoo\": {\"operators\": %d, \"proved\": %d, \"padded\": %d, \"violations\": %d, \
       \"seconds\": %.6f},\n"
    (List.length verdicts) proved padded violations t_zoo;
  out "  \"faults\": {\"seeded\": %d, \"caught_as_static_violation\": %d, \
       \"allocations_during_static_gate\": %d, \"invisible_to_differential\": %d},\n"
    (List.length corrupted) caught static_allocs differential_passes;
  out "  \"cost\": {\"candidates\": %d, \"repeats\": %d, \"mean_static_ms\": %.4f, \
       \"mean_differential_ms\": %.4f, \"ratio\": %.4f, \"within_gate\": %b},\n"
    (List.length candidates) repeats (1000.0 *. mean_static)
    (1000.0 *. mean_differential) ratio cost_ok;
  out "  \"lint\": {\"errors\": %d, \"warnings\": %d},\n" lint_errors lint_warnings;
  out "  \"rewrites\": {\"checked\": %d, \"exhaustive\": %d, \"sampled\": %d, \"approx\": %d, \
       \"unsound\": %d}\n"
    rewrites.Rewrite.rp_checked rewrites.Rewrite.rp_exhaustive rewrites.Rewrite.rp_sampled
    rewrites.Rewrite.rp_approx
    (List.length rewrites.Rewrite.rp_failures);
  out "}\n";
  close_out oc;
  note "wrote BENCH_analysis.json";
  if not zoo_sound then prerr_endline "a zoo operator failed static bounds verification";
  if not all_caught then prerr_endline "a seeded OOB gather escaped the static gate";
  if static_allocs <> 0 then prerr_endline "the static gate allocated a tensor";
  if not cost_ok then prerr_endline "static gate cost exceeded 20% of the differential gate";
  if lint_errors <> 0 then prerr_endline "the zoo lint sweep reported errors";
  if not rewrites_sound then prerr_endline "an unsound rewrite fired on a zoo operator";
  if
    not
      (zoo_sound && all_caught && static_allocs = 0 && cost_ok && lint_errors = 0
     && rewrites_sound)
  then exit 1

(* --- Cooperative cancellation ------------------------------------------------ *)

(* Measures what cancellation costs and proves what it guarantees:
   einsum's per-chunk polling sits at the noise floor (<2%, asserted in
   the full run), Guard's preemptive deadline stops a deliberately slow
   candidate mid-evaluation with an overrun bounded by one poll
   interval, and a search cancelled mid-run — the same token path the
   CLI's SIGINT handler trips — returns partial results, flushes its
   checkpoint, and resumes to the uninterrupted top-k.  Emits
   BENCH_cancel.json; the smoke variant runs inside `dune runtest` via
   the bench-smoke alias. *)

let cancel_bench ~smoke () =
  section
    (Printf.sprintf "Cooperative cancellation (Cancel)%s" (if smoke then " [smoke]" else ""));
  (* 1) Einsum poll overhead: the same plan with and without an
     untripped token, best-of-k so scheduler noise doesn't drown a poll
     every 4096 output elements. *)
  let rng = Nd.Rng.create ~seed:2026 in
  let spec, shapes = ("ik,kj->ij", [ [| 128; 128 |]; [| 128; 128 |] ]) in
  let tensors = List.map (fun sh -> Nd.Tensor.rand_normal rng ~scale:1.0 sh) shapes in
  let p = Nd.Einsum.plan spec shapes in
  let iters = if smoke then 3 else 60 in
  let reps = if smoke then 3 else 5 in
  let best f =
    (* warm-up run, then best-of-reps *)
    f ();
    let b = ref infinity in
    for _ = 1 to reps do
      let (), t =
        time (fun () ->
            for _ = 1 to iters do
              f ()
            done)
      in
      if t < !b then b := t
    done;
    !b
  in
  let token = Robust.Cancel.create () in
  let t_plain = best (fun () -> ignore (Nd.Einsum.run p tensors)) in
  let t_polled = best (fun () -> ignore (Nd.Einsum.run ~cancel:token p tensors)) in
  let poll_overhead = (t_polled -. t_plain) /. Float.max 1e-12 t_plain in
  note "einsum poll overhead: plain %6.2f ms/run, polled %6.2f ms/run (%+.2f%%, best of %d)"
    (1000.0 *. t_plain /. float_of_int iters)
    (1000.0 *. t_polled /. float_of_int iters)
    (100.0 *. poll_overhead) reps;
  (* 2) Preemptive deadline on a deliberately slow candidate: an
     evaluation that loops einsum runs, polled through the token Guard
     hands it.  Without preemption this would run to completion and
     only then be classified Timeout; with it, the evaluation stops at
     the next poll and the overrun past the budget is bounded by one
     poll interval. *)
  let slow_runs = if smoke then 80 else 500 in
  let slow token =
    for _ = 1 to slow_runs do
      ignore (Nd.Einsum.run ~cancel:token p tensors)
    done;
    1.0
  in
  let never = Robust.Cancel.create () in
  let (), t_full = time (fun () -> ignore (slow never)) in
  let budget = Float.min (if smoke then 0.02 else 0.15) (t_full /. 4.0) in
  let policy = Robust.Guard.policy ~retries:0 ~timeout:budget () in
  let preempt_trials = if smoke then 2 else 5 in
  let timed_out = ref true in
  let t_preempted = ref 0.0 in
  let max_overrun = ref 0.0 in
  for _ = 1 to preempt_trials do
    let out, t = time (fun () -> Robust.Guard.run ~policy ~key:"slow-candidate" slow) in
    (match out.Robust.Guard.result with
    | Error Robust.Guard.Timeout -> ()
    | _ -> timed_out := false);
    t_preempted := t;
    if t -. budget > !max_overrun then max_overrun := t -. budget
  done;
  note
    "preemption: full run %.3fs, budget %.3fs -> stopped in %.3fs (%s), worst overrun \
     %.1f ms over %d trials"
    t_full budget !t_preempted
    (if !timed_out then "Timeout" else "NOT TIMEOUT")
    (1000.0 *. !max_overrun) preempt_trials;
  let preempt_ok = !timed_out && !t_preempted < t_full /. 2.0 in
  (* 3) Mid-search cancellation + resume: trip the root token after K
     evaluations (exactly what the CLI's SIGINT handler does), then
     resume from the flushed checkpoint and compare against the
     uninterrupted top-k. *)
  let iterations = if smoke then 150 else 600 in
  let cfg = search_space_cfg ~max_prims:(if smoke then 5 else 6) () in
  let mcts_cfg = Search.Mcts.default_config ~iterations () in
  let reward ~cancel:_ op = Search.Reward.score op (List.hd Api.default_search_valuations) in
  let sigs rs =
    List.map
      (fun r -> (Graph.operator_signature r.Search.Mcts.operator, r.Search.Mcts.reward))
      rs
  in
  let clean, t_clean =
    time (fun () ->
        Search.Mcts.search ~config:mcts_cfg cfg ~reward ~rng:(Nd.Rng.create ~seed:17) ())
  in
  let root = Robust.Cancel.create () in
  let evals = ref 0 in
  let trip_after = if smoke then 5 else 8 in
  let tripping ~cancel op =
    incr evals;
    if !evals >= trip_after then Robust.Cancel.cancel ~reason:"SIGINT" root;
    reward ~cancel op
  in
  let ckpt = Filename.temp_file "syno_cancel" ".ckpt" in
  let sink = Search.Checkpoint.sink ~path:ckpt ~every:5 () in
  let partial, t_partial =
    time (fun () ->
        Search.Mcts.search ~config:mcts_cfg ~checkpoint:sink ~cancel:root cfg
          ~reward:tripping ~rng:(Nd.Rng.create ~seed:17) ())
  in
  let entries =
    match Search.Checkpoint.load ~path:ckpt with
    | Ok es -> es
    | Error msg -> failwith ("checkpoint load failed: " ^ msg)
  in
  let resumed, t_resumed =
    time (fun () ->
        Search.Mcts.search ~config:mcts_cfg ~resume:entries cfg ~reward
          ~rng:(Nd.Rng.create ~seed:17) ())
  in
  Sys.remove ckpt;
  let identical = sigs clean = sigs resumed in
  note
    "cancelled search: %d/%d operators after trip at eval %d (%.2fs vs %.2fs clean), %d \
     checkpoint entries; resumed %.2fs, results %s"
    (List.length partial) (List.length clean) trip_after t_partial t_clean
    (List.length entries) t_resumed
    (if identical then "identical to uninterrupted" else "DIVERGED");
  let shutdown_ok = partial <> [] && entries <> [] && identical in
  (* Trajectory file. *)
  let oc = open_out "BENCH_cancel.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out
    "  \"poll\": {\"iterations\": %d, \"plain_ms_per_run\": %.4f, \"polled_ms_per_run\": \
     %.4f, \"overhead\": %.5f},\n"
    iters
    (1000.0 *. t_plain /. float_of_int iters)
    (1000.0 *. t_polled /. float_of_int iters)
    poll_overhead;
  out
    "  \"preempt\": {\"full_seconds\": %.4f, \"budget_seconds\": %.4f, \
     \"preempted_seconds\": %.4f, \"max_overrun_ms\": %.2f, \"trials\": %d, \"timed_out\": \
     %b},\n"
    t_full budget !t_preempted
    (1000.0 *. !max_overrun)
    preempt_trials !timed_out;
  out
    "  \"shutdown\": {\"iterations\": %d, \"trip_after_evals\": %d, \"partial_operators\": \
     %d, \"clean_operators\": %d, \"checkpoint_entries\": %d, \"identical_results\": %b}\n"
    iterations trip_after (List.length partial) (List.length clean) (List.length entries)
    identical;
  out "}\n";
  close_out oc;
  note "wrote BENCH_cancel.json";
  let overhead_ok = smoke || poll_overhead < 0.02 in
  if not overhead_ok then
    Printf.eprintf "einsum poll overhead %.2f%% exceeds the 2%% bound\n"
      (100.0 *. poll_overhead);
  if not preempt_ok then prerr_endline "preemptive deadline failed to bound the slow candidate";
  if not shutdown_ok then prerr_endline "cancelled search did not flush/resume correctly";
  if not (overhead_ok && preempt_ok && shutdown_ok) then exit 1

(* --- Sharded multi-process search --------------------------------------------- *)

(* Proves the headline guarantee of the sharded coordinator
   (Search.Shard + Search.Coordinator): an N-shard run of forked worker
   processes — even one whose workers are killed and restarted
   mid-search — merges to exactly the candidate list of the fork-free
   inline reference on the same seed, and a shard checkpoint truncated
   behind the coordinator's back is quarantined without aborting the
   merge (the affected shard re-searches and the results still match).
   Also records merged-throughput scaling across shard counts
   (informational on hosts without real parallelism) and the wall-clock
   cost of a kill/restart recovery.  Emits BENCH_shard.json; the smoke
   variant runs inside `dune runtest` via the bench-smoke alias. *)

let shard_bench ~smoke () =
  section
    (Printf.sprintf "Sharded multi-process search (Coordinator)%s"
       (if smoke then " [smoke]" else ""));
  let hw = Domain.recommended_domain_count () in
  let iterations = if smoke then 240 else 900 in
  let max_prims = 6 in
  let seed = 2024 in
  let shards = if smoke then 2 else 3 in
  let base = Filename.temp_file "syno_shard" ".ckpt" in
  Sys.remove base;
  let clear_shards n =
    for i = 0 to n - 1 do
      let p = Search.Shard.checkpoint_path ~base ~shard_id:i in
      if Sys.file_exists p then Sys.remove p
    done
  in
  let run ?(shards = shards) ?kill_after ?(inline = false) ?(clean = true) label =
    if clean then clear_shards shards;
    let r, t =
      time (fun () ->
          Api.search_conv_operators_sharded_run ~iterations ~max_prims ~shards ?kill_after
            ~inline ~checkpoint_base:base ~seed
            ~valuations:Api.default_search_valuations ())
    in
    note "%-28s %3d operators, %d restarts, %5.2fs" label
      (List.length r.Api.sh_candidates)
      r.Api.sh_report.Search.Coordinator.rp_restarts t;
    (r, t)
  in
  let sigs (r : Api.sharded_run) =
    List.map (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward)) r.Api.sh_candidates
  in
  (* 1) Determinism: inline reference vs forked vs forked-with-kills. *)
  let inline_r, t_inline = run ~inline:true "inline reference" in
  let forked_r, t_forked = run "forked workers" in
  let killed_r, t_killed = run ~kill_after:3 "forked + kill/restart" in
  let forked_ok = sigs inline_r = sigs forked_r in
  let killed_ok = sigs inline_r = sigs killed_r in
  let restarts = killed_r.Api.sh_report.Search.Coordinator.rp_restarts in
  let restarted = restarts >= 1 in
  let recovery = t_killed -. t_forked in
  note "forked merge %s the inline reference; after kills %s (%d restarts, +%.2fs recovery)"
    (if forked_ok then "matches" else "DIVERGED from")
    (if killed_ok then "matches" else "DIVERGED")
    restarts recovery;
  (* 2) Corrupt-checkpoint survival: truncate one shard file mid-entry.
     The merge must quarantine exactly that file and keep going, and a
     re-run (whose damaged shard restarts fresh while the others resume
     fully memoized) must still reproduce the inline results. *)
  let shard0 = Search.Shard.checkpoint_path ~base ~shard_id:0 in
  let size = (Unix.stat shard0).Unix.st_size in
  Unix.truncate shard0 (max 1 (size / 2));
  let assignments =
    List.init shards (fun i -> Search.Shard.make ~base ~seed ~shards ~shard_id:i)
  in
  let m = Search.Shard.load_and_merge assignments in
  let quarantined_ids = List.map fst m.Search.Shard.mr_quarantined in
  let corrupt_quarantined =
    quarantined_ids = [ 0 ] && List.length m.Search.Shard.mr_loaded = shards - 1
  in
  note "truncated shard 0 checkpoint: merge quarantined %s, kept %d clean shard(s), %d \
        entries"
    (String.concat "," (List.map string_of_int quarantined_ids))
    (List.length m.Search.Shard.mr_loaded)
    (List.length m.Search.Shard.mr_entries);
  let corrupt_rerun, _ = run ~clean:false "re-run over corrupt shard" in
  let corrupt_ok = sigs inline_r = sigs corrupt_rerun in
  note "re-run over the corrupt shard %s the inline reference"
    (if corrupt_ok then "matches" else "DIVERGED from");
  (* 3) Merged-throughput scaling: the same total budget at 1..N shards.
     Candidate sets legitimately differ across shard counts (different
     partitions); only wall clock is compared, and only informationally
     on hosts without >= 2 hardware threads. *)
  let scaling =
    List.map
      (fun n ->
        clear_shards n;
        let _, t = run ~shards:n ~clean:true (Printf.sprintf "throughput, %d shard(s)" n) in
        (n, t))
      (List.sort_uniq compare [ 1; shards ])
  in
  let t_of n = List.assoc n scaling in
  clear_shards shards;
  (* Trajectory file. *)
  let oc = open_out "BENCH_shard.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"shards\": %d,\n" shards;
  out "  \"iterations\": %d,\n" iterations;
  out "  \"hw_domains\": %d,\n" hw;
  out
    "  \"determinism\": {\"inline_seconds\": %.4f, \"forked_seconds\": %.4f, \
     \"killed_seconds\": %.4f, \"identical_forked\": %b, \"identical_after_kills\": %b, \
     \"restarts\": %d, \"recovery_overhead_seconds\": %.4f},\n"
    t_inline t_forked t_killed forked_ok killed_ok restarts recovery;
  out "  \"corrupt\": {\"quarantined_shards\": [%s], \"clean_shards\": %d, \
       \"merged_entries\": %d, \"identical_after_rerun\": %b},\n"
    (String.concat ", " (List.map string_of_int quarantined_ids))
    (List.length m.Search.Shard.mr_loaded)
    (List.length m.Search.Shard.mr_entries)
    corrupt_ok;
  out "  \"scaling\": [\n";
  List.iteri
    (fun i (n, t) ->
      out
        "    {\"shards\": %d, \"seconds\": %.4f, \"iterations_per_second\": %.1f, \
         \"informational\": %b}%s\n"
        n t
        (float_of_int iterations /. Float.max 1e-9 t)
        (hw < 2)
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  out "  ]\n";
  out "}\n";
  close_out oc;
  note "wrote BENCH_shard.json";
  ignore (t_of 1);
  ignore forked_r;
  if not (forked_ok && killed_ok && restarted && corrupt_quarantined && corrupt_ok) then begin
    prerr_endline "sharded search determinism or crash-tolerance assertions failed";
    exit 1
  end

(* --- Counterexample-guided admission (CEGIS) ----------------------------------- *)

(* Proves the corpus's three headline guarantees (Validate.Corpus).
   (1) Hardening: a seeded-miscompile family caught by differential
   validation on the first run is rejected by corpus replay on the
   second — the faulty backend never executes again (zero fault
   deliveries) and the search trajectory is unchanged.  (2) Cheapness:
   replaying the populated corpus against the zoo costs <= 25% of
   differentially validating the same operators.  (3) Crash tolerance:
   a sharded run whose workers are killed and restarted mid-search
   merges to exactly the corpus and top-k of the fork-free inline
   reference.  Emits BENCH_cegis.json; the smoke variant runs inside
   `dune runtest` via the bench-smoke alias. *)

let cegis_bench ~smoke () =
  section
    (Printf.sprintf "Counterexample-guided admission (Corpus)%s"
       (if smoke then " [smoke]" else ""));
  let iterations = if smoke then 150 else 600 in
  let max_prims = 6 in
  let seed = 2024 in
  let corpus_path = Filename.temp_file "syno_cegis" ".corpus" in
  Sys.remove corpus_path;
  (* Fault delivery is keyed by a hash of the candidate, not by call
     order, so the same candidates miscompile in every run below —
     what changes is which admission stage catches them. *)
  let miscompile () =
    Validate.Differential.fault ~seed:3 ~rate:0.5 Validate.Differential.Einsum
  in
  let run ~fault label =
    let r, t =
      time (fun () ->
          Api.search_conv_operators_run ~iterations ~max_prims ~validate:true
            ~validate_config:(Validate.Differential.config ~fault ())
            ~corpus:corpus_path ~rng:(Nd.Rng.create ~seed)
            ~valuations:Api.default_search_valuations ())
    in
    let s = Option.get r.Api.admission in
    note "%-28s %3d operators, replay %d + differential %d rejections, %5.2fs" label
      (List.length r.Api.candidates)
      s.Validate.Admit.rejected_replay s.Validate.Admit.rejected_differential t;
    (r, s, t)
  in
  let sigs (r : Api.search_run) =
    List.map
      (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward, c.Api.quarantined))
      r.Api.candidates
  in
  (* 1) Hardening: first encounter distills, re-encounter replays. *)
  let fault1 = miscompile () in
  let r1, s1, _ = run ~fault:fault1 "first encounter (faulted)" in
  let delivered1 = Validate.Differential.fault_count fault1 in
  let corpus_entries =
    match Validate.Corpus.load_result ~path:corpus_path with
    | Ok es -> List.length es
    | Error e -> failwith ("corpus load failed: " ^ Validate.Corpus.string_of_error e)
  in
  note "first run: %d miscompiles delivered, %d distilled, %d corpus entries on disk"
    delivered1 s1.Validate.Admit.distilled corpus_entries;
  let fault2 = miscompile () in
  let r2, s2, _ = run ~fault:fault2 "re-encounter (corpus replay)" in
  let delivered2 = Validate.Differential.fault_count fault2 in
  let identical_topk = sigs r1 = sigs r2 in
  let hardened =
    s1.Validate.Admit.rejected_differential > 0
    && s2.Validate.Admit.rejected_replay = s1.Validate.Admit.rejected_differential
    && s2.Validate.Admit.rejected_differential = 0
    && delivered2 = 0
  in
  note "re-encounter: %d replay rejections, %d differential, %d faults delivered (%s); \
        top-k %s"
    s2.Validate.Admit.rejected_replay s2.Validate.Admit.rejected_differential delivered2
    (if hardened then "differential never ran on the family" else "NOT HARDENED")
    (if identical_topk then "identical" else "DIVERGED");
  (* 2) Cheapness: replay vs differential over the zoo, same corpus. *)
  let zoo_corpus, _ = Validate.Corpus.open_file ~readonly:true corpus_path in
  let zoo_ops = List.map (fun e -> e.Zoo.operator) Zoo.all in
  let repeats = if smoke then 5 else 20 in
  let vs = Api.default_validation_valuations in
  let (), t_replay =
    time (fun () ->
        for _ = 1 to repeats do
          List.iter (fun op -> ignore (Validate.Corpus.replay zoo_corpus op)) zoo_ops
        done)
  in
  let (), t_diff =
    time (fun () ->
        for _ = 1 to repeats do
          List.iter
            (fun op ->
              match Validate.Differential.check op vs with Ok _ | Error _ -> ())
            zoo_ops
        done)
  in
  let replay_ratio = t_replay /. Float.max 1e-12 t_diff in
  let replay_cheap = replay_ratio <= 0.25 in
  note "zoo replay %.3f ms vs differential %.3f ms over %d ops x %d (%.1f%% %s)"
    (1000.0 *. t_replay) (1000.0 *. t_diff) (List.length zoo_ops) repeats
    (100.0 *. replay_ratio)
    (if replay_cheap then "<= 25% gate" else "OVER the 25% gate");
  (* 3) Crash tolerance: killed + restarted sharded run vs inline
     reference — identical merged top-k AND identical merged corpus. *)
  let base = Filename.temp_file "syno_cegis_shard" ".ckpt" in
  Sys.remove base;
  let shard_corpus = base ^ ".corpus" in
  let shards = 2 in
  let clear () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      (shard_corpus
      :: List.concat
           (List.init shards (fun i ->
                [
                  Search.Shard.checkpoint_path ~base ~shard_id:i;
                  Validate.Corpus.shard_path ~base:shard_corpus ~shard_id:i;
                ])))
  in
  let sharded ?kill_after ~inline label =
    clear ();
    let r, t =
      time (fun () ->
          Api.search_conv_operators_sharded_run ~iterations ~max_prims ~shards ?kill_after
            ~inline ~validate:true
            ~validate_config:(Validate.Differential.config ~fault:(miscompile ()) ())
            ~corpus:shard_corpus ~checkpoint_base:base ~seed
            ~valuations:Api.default_search_valuations ())
    in
    let idents =
      match r.Api.sh_corpus with
      | Some m -> List.map Validate.Corpus.ident m.Validate.Corpus.mr_entries
      | None -> []
    in
    note "%-28s %3d operators, %d restarts, %d corpus entries, %5.2fs" label
      (List.length r.Api.sh_candidates)
      r.Api.sh_report.Search.Coordinator.rp_restarts (List.length idents) t;
    (r, idents)
  in
  let ssigs (r : Api.sharded_run) =
    List.map
      (fun (c : Api.candidate) -> (c.Api.signature, c.Api.reward, c.Api.quarantined))
      r.Api.sh_candidates
  in
  let inline_r, inline_idents = sharded ~inline:true "sharded inline reference" in
  let killed_r, killed_idents = sharded ~kill_after:3 ~inline:false "sharded + kill/restart" in
  let restarts = killed_r.Api.sh_report.Search.Coordinator.rp_restarts in
  let shard_topk_ok = ssigs inline_r = ssigs killed_r in
  let shard_corpus_ok = inline_idents <> [] && inline_idents = killed_idents in
  note "killed run: top-k %s, merged corpus %s the inline reference (%d restarts)"
    (if shard_topk_ok then "matches" else "DIVERGED from")
    (if shard_corpus_ok then "identical to" else "DIVERGED from")
    restarts;
  clear ();
  Sys.remove corpus_path;
  (* Trajectory file. *)
  let oc = open_out "BENCH_cegis.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"hardening\": {\"iterations\": %d, \"delivered_first\": %d, \"distilled\": %d, \
       \"corpus_entries\": %d, \"replay_rejections\": %d, \"differential_rejections_rerun\": \
       %d, \"delivered_rerun\": %d, \"identical_topk\": %b, \"hardened\": %b},\n"
    iterations delivered1 s1.Validate.Admit.distilled corpus_entries
    s2.Validate.Admit.rejected_replay s2.Validate.Admit.rejected_differential delivered2
    identical_topk hardened;
  out "  \"replay_cost\": {\"zoo_operators\": %d, \"repeats\": %d, \"replay_seconds\": %.6f, \
       \"differential_seconds\": %.6f, \"ratio\": %.4f, \"within_gate\": %b},\n"
    (List.length zoo_ops) repeats t_replay t_diff replay_ratio replay_cheap;
  out "  \"shard\": {\"shards\": %d, \"restarts\": %d, \"identical_topk\": %b, \
       \"identical_corpus\": %b, \"corpus_entries\": %d}\n"
    shards restarts shard_topk_ok shard_corpus_ok (List.length inline_idents);
  out "}\n";
  close_out oc;
  note "wrote BENCH_cegis.json";
  if
    not
      (hardened && identical_topk && replay_cheap && restarts >= 1 && shard_topk_ok
     && shard_corpus_ok)
  then begin
    prerr_endline "counterexample-corpus hardening/cost/crash-tolerance assertions failed";
    exit 1
  end

(* --- serve: the operator daemon under load ------------------------------------- *)

(* The syno-as-a-service contract (lib/serve), measured end to end over
   the real CLI binary and Unix-domain socket: cached hits must
   amortize the lower+verify+validate pipeline by >= 10x; a 2x
   open-loop overload must be shed with typed [overloaded] responses
   while accepted requests hold their deadlines and queue gauges stay
   within their bounds; a SIGKILLed daemon must restart warm from its
   persisted cache; a poisoned operator must produce a typed error,
   then a replay rejection on re-encounter, with the daemon still
   serving; and SIGTERM must drain to exit 0 with every in-flight
   request answered before EOF.  Emits BENCH_serve.json; the smoke
   variant runs inside `dune runtest` via the serve-smoke alias. *)

let serve_bench ~smoke () =
  section (Printf.sprintf "Operator daemon (Serve)%s" (if smoke then " [smoke]" else ""));
  let module P = Serve.Protocol in
  let module C = Serve.Client in
  (* The daemon is the *real* binary, spawned fork+exec (never a bare
     fork: this bench process may hold live domains from earlier
     experiments, which do not survive a fork). *)
  let cli =
    Filename.concat
      (Filename.concat (Filename.dirname Sys.executable_name) Filename.parent_dir_name)
      (Filename.concat "bin" "syno_cli.exe")
  in
  let dir = Filename.temp_file "syno_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "sock" in
  let cache_path = Filename.concat dir "cache.snap" in
  let corpus_path = Filename.concat dir "bugs.corpus" in
  let workers = 2 in
  let max_depth = 8 in
  let max_inflight_bytes = 4 * 1024 * 1024 in
  (* Any daemon we spawn is tracked until reaped, and force-killed on
     every exit path — a gate failure must not leave an orphan serving
     on a stale temp socket. *)
  let live = ref [] in
  let spawn_daemon () =
    let args =
      [ cli; "serve"; "--socket"; sock; "--cache"; cache_path; "--cache-every"; "1";
        "--corpus"; corpus_path; "--max-queue"; string_of_int max_depth; "--workers";
        string_of_int workers; "--drain-grace"; "30" ]
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid = Unix.create_process cli (Array.of_list args) Unix.stdin devnull Unix.stderr in
    Unix.close devnull;
    live := pid :: !live;
    pid
  in
  let reaped pid = live := List.filter (fun p -> p <> pid) !live in
  let kill_live () =
    List.iter
      (fun p ->
        (try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ())
      !live;
    live := []
  in
  let fail fmt = Printf.ksprintf (fun m -> failwith ("serve bench: " ^ m)) fmt in
  let must = function Ok v -> v | Error e -> fail "%s" e in
  let connect () = must (C.connect ~timeout:10.0 sock) in
  let ids = ref 0 in
  let request ?(params = []) verb =
    incr ids;
    { P.rq_id = Printf.sprintf "r%d" !ids; rq_verb = verb; rq_params = params }
  in
  let call c ?params verb = must (C.call ~timeout:60.0 c (request ?params verb)) in
  let ok_param resp key =
    match resp with
    | P.Resp_ok ps -> List.assoc_opt key ps
    | P.Resp_error { err_kind; err_detail; _ } ->
        fail "unexpected error %s (%s)" err_kind err_detail
  in
  let err_kind = function P.Resp_error { err_kind; _ } -> err_kind | P.Resp_ok _ -> "ok" in
  Fun.protect ~finally:kill_live @@ fun () ->
  (* --- Phase 1: cold vs cached zoo pass -------------------------------- *)
  let pid_a = spawn_daemon () in
  let conn = ref (connect ()) in
  let zoo_ops =
    let names = List.map (fun e -> e.Zoo.name) Zoo.conv_like in
    if smoke then List.filteri (fun i _ -> i < 3) names else names
  in
  let micros_of resp =
    match ok_param resp "micros" with
    | Some m -> float_of_string m
    | None -> fail "response without micros"
  in
  (* Distinct zoo names can canonicalize to the same operator signature
     (the cache key), so a later entry may warm-hit on the cold pass;
     measure the speedup only over the genuinely-cold set. *)
  let zoo_ops, cold_micros =
    List.fold_left
      (fun (cold_ops, acc) op ->
        let resp = call !conn ~params:[ ("op", op) ] P.Eval in
        match ok_param resp "cached" with
        | Some "0" -> (op :: cold_ops, acc +. micros_of resp)
        | _ -> (cold_ops, acc))
      ([], 0.0) zoo_ops
    |> fun (ops, acc) -> (List.rev ops, acc)
  in
  let warm_micros =
    List.fold_left
      (fun acc op ->
        let resp = call !conn ~params:[ ("op", op) ] P.Eval in
        (match ok_param resp "cached" with
        | Some "1" -> ()
        | _ -> fail "warm pass: %s was not a cache hit" op);
        acc +. micros_of resp)
      0.0 zoo_ops
  in
  let speedup = cold_micros /. Float.max 1.0 warm_micros in
  let cache_gate = speedup >= 10.0 in
  note "cache: %d operators, cold %.0fus, warm %.0fus, speedup %.0fx (gate >= 10x: %s)"
    (List.length zoo_ops) cold_micros warm_micros speedup (if cache_gate then "ok" else "FAIL");
  (* --- Phase 2: 2x open-loop overload ----------------------------------- *)
  (* Size the offered rate from the measured cold service time: 2x the
     daemon's worker capacity, uncacheable requests only (cache=0), so
     every accepted request costs the full pipeline. *)
  let service =
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (call !conn ~params:[ ("op", "conv2d"); ("cache", "0") ] P.Eval)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let duration = if smoke then 1.5 else 5.0 in
  let rate = 2.0 *. float_of_int workers /. Float.max 1e-4 service in
  let total = max 30 (min (if smoke then 150 else 600) (int_of_float (rate *. duration))) in
  let interval = 1.0 /. rate in
  let deadline = 2.0 in
  let statc = connect () in
  let send_times : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let ok_lat = ref [] in
  let shed = ref 0 and timeouts = ref 0 and others = ref 0 and received = ref 0 in
  let max_depth_seen = ref 0 and max_bytes_seen = ref 0 in
  let record line =
    incr received;
    match P.parse_response line with
    | Error e -> fail "bad response: %s" e
    | Ok (id, resp) -> (
        match resp with
        | P.Resp_ok _ -> (
            match Hashtbl.find_opt send_times id with
            | Some t -> ok_lat := (Unix.gettimeofday () -. t) :: !ok_lat
            | None -> ())
        | P.Resp_error { err_kind = "overloaded"; _ } -> incr shed
        | P.Resp_error { err_kind = "timeout"; _ } -> incr timeouts
        | P.Resp_error _ -> incr others)
  in
  let poll_status () =
    let resp = call statc P.Status in
    let gauge key cell =
      match ok_param resp key with
      | Some v -> cell := max !cell (int_of_string v)
      | None -> ()
    in
    gauge "queue_depth" max_depth_seen;
    gauge "inflight_bytes" max_bytes_seen
  in
  let sent = ref 0 in
  let start = Unix.gettimeofday () in
  let next_send = ref start and next_status = ref start in
  while !sent < total do
    let now = Unix.gettimeofday () in
    if now >= !next_status then begin
      next_status := now +. 0.25;
      poll_status ()
    end;
    if now >= !next_send then begin
      let id = Printf.sprintf "o%d" !sent in
      let rq =
        {
          P.rq_id = id;
          rq_verb = P.Eval;
          rq_params =
            [ ("op", "conv2d"); ("cache", "0"); ("deadline", Printf.sprintf "%g" deadline) ];
        }
      in
      Hashtbl.replace send_times id now;
      must (C.send_line !conn (P.render_request rq));
      incr sent;
      next_send := !next_send +. interval
    end
    else
      match C.recv_line ~timeout:(Float.max 0.0005 (Float.min 0.002 (!next_send -. now))) !conn with
      | Ok line -> record line
      | Error "timeout" -> ()
      | Error e -> fail "overload recv: %s" e
  done;
  let tail_deadline = Unix.gettimeofday () +. deadline +. 20.0 in
  while !received < total && Unix.gettimeofday () < tail_deadline do
    match C.recv_line ~timeout:0.2 !conn with
    | Ok line -> record line
    | Error "timeout" -> ()
    | Error e -> fail "overload tail recv: %s" e
  done;
  poll_status ();
  let lats = Array.of_list !ok_lat in
  Array.sort compare lats;
  let pct p =
    if Array.length lats = 0 then 0.0
    else lats.(min (Array.length lats - 1) (int_of_float (p *. float_of_int (Array.length lats - 1))))
  in
  let p50 = pct 0.5 and p99 = pct 0.99 in
  let ok_count = Array.length lats in
  let all_answered = !received = total in
  let overload_gate =
    !shed > 0 && ok_count > 0 && all_answered
    && p99 <= deadline +. 1.0
    && !max_depth_seen <= max_depth
    && !max_bytes_seen <= max_inflight_bytes
  in
  note
    "overload: offered %d at %.0f req/s (2x capacity), ok %d, shed %d, timeout %d, other %d"
    total rate ok_count !shed !timeouts !others;
  note "overload: ok p50 %.3fs, p99 %.3fs (deadline %.1fs), depth<=%d, bytes<=%d (gate: %s)"
    p50 p99 deadline !max_depth_seen !max_bytes_seen
    (if overload_gate then "ok" else "FAIL");
  (* --- Phase 3: SIGKILL mid-load, warm restart --------------------------- *)
  for i = 1 to 8 do
    let rq =
      {
        P.rq_id = Printf.sprintf "k%d" i;
        rq_verb = P.Eval;
        rq_params = [ ("op", "conv2d"); ("cache", "0") ];
      }
    in
    must (C.send_line !conn (P.render_request rq))
  done;
  Unix.sleepf 0.1;
  Unix.kill pid_a Sys.sigkill;
  (match Unix.waitpid [] pid_a with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> reaped pid_a
  | _, _ -> fail "daemon did not die of SIGKILL");
  C.close !conn;
  C.close statc;
  let t_restart = Unix.gettimeofday () in
  let pid_b = spawn_daemon () in
  conn := connect ();
  let first_pass_hits =
    List.fold_left
      (fun acc op ->
        let resp = call !conn ~params:[ ("op", op) ] P.Eval in
        match ok_param resp "cached" with Some "1" -> acc + 1 | _ -> acc)
      0 zoo_ops
  in
  let recovery = Unix.gettimeofday () -. t_restart in
  let restart_gate = first_pass_hits > 0 in
  note "restart: SIGKILL mid-load, warm in %.2fs, %d/%d first-pass cache hits (gate: %s)"
    recovery first_pass_hits (List.length zoo_ops)
    (if restart_gate then "ok" else "FAIL");
  (* --- Phase 4: poisoned operator --------------------------------------- *)
  let poison_kind =
    err_kind
      (call !conn
         ~params:
           [ ("op", "conv1x1"); ("cache", "0"); ("fault_backend", "einsum");
             ("fault_rate", "1"); ("fault_seed", "3") ]
         P.Eval)
  in
  let alive = match call !conn P.Ping with P.Resp_ok _ -> true | P.Resp_error _ -> false in
  let replay_kind = err_kind (call !conn ~params:[ ("op", "conv1x1"); ("cache", "0") ] P.Eval) in
  let poison_gate =
    poison_kind = "backend_mismatch" && alive && replay_kind = "counterexample"
  in
  note "poison: typed %s, daemon alive %b, re-encounter rejected as %s (gate: %s)" poison_kind
    alive replay_kind
    (if poison_gate then "ok" else "FAIL");
  (* --- Phase 5: SIGTERM graceful drain ----------------------------------- *)
  let k_drain = if smoke then 4 else 10 in
  let drain_ids = List.init k_drain (fun i -> Printf.sprintf "d%d" i) in
  List.iter
    (fun id ->
      let rq =
        { P.rq_id = id; rq_verb = P.Eval; rq_params = [ ("op", "conv2d"); ("cache", "0") ] }
      in
      must (C.send_line !conn (P.render_request rq)))
    drain_ids;
  Unix.sleepf 0.15;
  Unix.kill pid_b Sys.sigterm;
  let answered = ref [] in
  let clean_eof = ref false in
  let rec read_all () =
    match C.recv_line ~timeout:60.0 !conn with
    | Ok line -> (
        match P.parse_response line with
        | Ok (id, _) ->
            answered := id :: !answered;
            read_all ()
        | Error e -> fail "drain response: %s" e)
    | Error "eof" -> clean_eof := true
    | Error e -> note "drain: connection ended uncleanly (%s)" e
  in
  read_all ();
  C.close !conn;
  let drain_exit =
    match Unix.waitpid [] pid_b with
    | _, Unix.WEXITED c ->
        reaped pid_b;
        c
    | _, Unix.WSIGNALED s -> -s
    | _, Unix.WSTOPPED s -> -s
  in
  let drain_answered = List.for_all (fun id -> List.mem id !answered) drain_ids in
  let drain_gate = drain_answered && !clean_eof && drain_exit = 0 in
  note "drain: %d in flight at SIGTERM, %d answered, clean EOF %b, exit %d (gate: %s)" k_drain
    (List.length !answered) !clean_eof drain_exit
    (if drain_gate then "ok" else "FAIL");
  (* Cleanup. *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  (* Trajectory file. *)
  let oc = open_out "BENCH_serve.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"cache\": {\"operators\": %d, \"cold_micros\": %.0f, \"warm_micros\": %.0f, \
       \"speedup\": %.1f, \"gate\": %b},\n"
    (List.length zoo_ops) cold_micros warm_micros speedup cache_gate;
  out "  \"overload\": {\"offered\": %d, \"rate_per_s\": %.1f, \"ok\": %d, \"overloaded\": \
       %d, \"timeout\": %d, \"other\": %d, \"all_answered\": %b, \"p50_ok_s\": %.4f, \
       \"p99_ok_s\": %.4f, \"deadline_s\": %.1f, \"max_queue_depth\": %d, \
       \"max_inflight_bytes\": %d, \"gate\": %b},\n"
    total rate ok_count !shed !timeouts !others all_answered p50 p99 deadline !max_depth_seen
    !max_bytes_seen overload_gate;
  out "  \"restart\": {\"recovery_seconds\": %.3f, \"first_pass_hits\": %d, \
       \"first_pass_ops\": %d, \"gate\": %b},\n"
    recovery first_pass_hits (List.length zoo_ops) restart_gate;
  out "  \"poison\": {\"poison_kind\": %S, \"alive\": %b, \"replay_kind\": %S, \"gate\": \
       %b},\n"
    poison_kind alive replay_kind poison_gate;
  out "  \"drain\": {\"in_flight\": %d, \"answered\": %d, \"clean_eof\": %b, \"exit_code\": \
       %d, \"gate\": %b}\n"
    k_drain (List.length !answered) !clean_eof drain_exit drain_gate;
  out "}\n";
  close_out oc;
  note "wrote BENCH_serve.json";
  if not (cache_gate && overload_gate && restart_gate && poison_gate && drain_gate) then begin
    prerr_endline "serve daemon cache/overload/restart/poison/drain assertions failed";
    exit 1
  end

(* --- Proof-guided kernel specialization ---------------------------------------- *)

(* Gates the specializing compiler end to end: over the whole catalog,
   the certified specialized executor must compute bit-identical
   outputs to the staged interpreter while beating the best interpreter
   (einsum program or staged) by >= 1.5x geomean in the full run (the
   smoke gate is no-regression, >= 1.0x — CI machines are noisy);
   certificate construction plus translation validation allocates zero
   tensors; and 100% of seeded plan corruptions are rejected by
   Certify, including the three execution-invisible ones that still
   compute bit-identical outputs when run.  Emits BENCH_kernel.json;
   the smoke variant runs inside `dune runtest` via the kernel-smoke
   alias. *)

let kernel_bench ~smoke () =
  section
    (Printf.sprintf "Proof-guided kernel specialization (Lower.Specialize)%s"
       (if smoke then " [smoke]" else ""));
  let module Verify = Analysis.Verify in
  let module Regions = Analysis.Regions in
  let module Certify = Analysis.Certify in
  let module Staged = Lower.Staged_exec in
  let module Specialize = Lower.Specialize in
  let conv_v =
    if smoke then Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:10 ~k:3 ~g:2 ~s:2 ()
    else Zoo.Vars.conv_valuation ~n:1 ~c_in:32 ~c_out:32 ~hw:28 ~k:3 ~g:2 ~s:2 ()
  in
  let matmul_v =
    if smoke then Zoo.Vars.matmul_valuation ~m:6 ~n:5 ~k:7
    else Zoo.Vars.matmul_valuation ~m:64 ~n:64 ~k:64
  in
  let repeats = if smoke then 3 else 10 in
  let bits t =
    Array.map Int64.bits_of_float (Nd.Tensor.unsafe_data (Nd.Tensor.copy t))
  in
  (* The warm-up run also sizes the repeat count: slow interpreter
     baselines (full-shape einsum materializes the whole gather) get
     fewer repeats so the full run stays in minutes, fast kernels get
     the full count for a stable mean. *)
  let mean_seconds f =
    let _, t_warm = time (fun () -> ignore (f ())) in
    let reps =
      max 1 (min repeats (int_of_float (0.6 /. Float.max 1e-9 t_warm)))
    in
    let (), t = time (fun () -> for _ = 1 to reps do ignore (f ()) done) in
    t /. float_of_int reps
  in
  (* 1) Per-operator: compile all three executors, certify the plan,
     time each forward, and require bit-identity spec vs staged. *)
  let cases =
    List.filter_map
      (fun (e : Zoo.entry) ->
        let op = e.Zoo.operator in
        let v =
          if Option.is_some (Verify.program_opt op conv_v) then conv_v else matmul_v
        in
        let staged = Staged.compile op v in
        let cert = Regions.of_staged staged in
        match Certify.compile staged cert.Regions.rc_plan with
        | Error k ->
            note "%-28s certification REJECTED: %s" e.Zoo.name (Robust.Guard.kind_label k);
            Some (e.Zoo.name, staged, cert, None)
        | Ok sp -> Some (e.Zoo.name, staged, cert, Some sp))
      Zoo.all
  in
  let results =
    List.map
      (fun (name, staged, cert, sp) ->
        let op = Staged.operator staged and v = Staged.valuation staged in
        let compiled = Staged.reference staged in
        let rng = Nd.Rng.create ~seed:17 in
        let input =
          Nd.Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0
            (Lower.Reference.input_shape compiled)
        in
        let weights = Lower.Reference.init_weights compiled rng in
        let ep = Lower.Einsum_program.compile op v in
        let t_einsum =
          mean_seconds (fun () -> Lower.Einsum_program.forward ep ~input ~weights)
        in
        let t_staged = mean_seconds (fun () -> Staged.forward staged ~input ~weights) in
        match sp with
        | None -> (name, cert, t_einsum, t_staged, None, false)
        | Some sp ->
            let t_spec = mean_seconds (fun () -> Specialize.forward sp ~input ~weights) in
            let identical =
              bits (Staged.forward staged ~input ~weights)
              = bits (Specialize.forward sp ~input ~weights)
            in
            (name, cert, t_einsum, t_staged, Some t_spec, identical))
      cases
  in
  let speedups =
    List.filter_map
      (fun (name, cert, t_einsum, t_staged, t_spec, identical) ->
        match t_spec with
        | None -> None
        | Some t_spec ->
            let best = Float.min t_einsum t_staged in
            let s = best /. Float.max 1e-12 t_spec in
            note "%-28s einsum %8.3f ms  staged %8.3f ms  spec %8.3f ms  %5.2fx  \
                  interior %.3f%s"
              name (1000.0 *. t_einsum) (1000.0 *. t_staged) (1000.0 *. t_spec) s
              cert.Regions.rc_interior_fraction
              (if identical then "" else "  NOT BIT-IDENTICAL");
            Some s)
      results
  in
  let all_identical =
    List.for_all (fun (_, _, _, _, sp, id) -> sp = None || id) results
  in
  let all_specialized = List.for_all (fun (_, _, _, _, sp, _) -> sp <> None) results in
  let geomean =
    exp (List.fold_left (fun a s -> a +. log s) 0.0 speedups
         /. float_of_int (max 1 (List.length speedups)))
  in
  let speedup_gate = if smoke then 1.0 else 1.5 in
  let speedup_ok = geomean >= speedup_gate in
  note "geomean speedup vs best interpreter over %d operators: %.2fx (gate >= %.1fx, %s)"
    (List.length speedups) geomean speedup_gate
    (if speedup_ok then "pass" else "FAIL");
  (* 2) Certification is pure arithmetic: certificate construction plus
     translation validation allocates zero tensors. *)
  let alloc0 = Nd.Tensor.allocations () in
  List.iter
    (fun (_, staged, _, _) ->
      let cert = Regions.of_staged staged in
      ignore (Certify.validate staged cert.Regions.rc_plan))
    cases;
  let certify_allocs = Nd.Tensor.allocations () - alloc0 in
  note "certificate + validation over the catalog: %d tensor allocations" certify_allocs;
  (* 3) Seeded plan corruption: every applicable fault on every
     operator must be rejected by translation validation; the
     execution-invisible ones must also run bit-identically, proving
     Certify is the only line of defense. *)
  let faults =
    [
      Specialize.Overlap_strip; Specialize.Duplicate_strip; Specialize.Spurious_clip;
      Specialize.Cover_gap;
    ]
  in
  let seeded = ref 0 and rejected = ref 0 in
  let invisible_checked = ref 0 and invisible_identical = ref 0 in
  List.iter
    (fun (_, staged, cert, sp) ->
      List.iter
        (fun fault ->
          match Specialize.corrupt fault staged cert.Regions.rc_plan with
          | None -> ()
          | Some bad ->
              incr seeded;
              (match Certify.validate staged bad with
              | Error (Robust.Guard.Static_violation _) -> incr rejected
              | Error _ | Ok _ -> ());
              if sp <> None && fault <> Specialize.Cover_gap then begin
                incr invisible_checked;
                let compiled = Staged.reference staged in
                let rng = Nd.Rng.create ~seed:23 in
                let input =
                  Nd.Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0
                    (Lower.Reference.input_shape compiled)
                in
                let weights = Lower.Reference.init_weights compiled rng in
                let corrupted = Specialize.compile staged bad in
                if
                  bits (Specialize.forward corrupted ~input ~weights)
                  = bits (Staged.forward staged ~input ~weights)
                then incr invisible_identical
              end)
        faults)
    cases;
  let faults_ok = !seeded > 0 && !rejected = !seeded in
  let invisible_ok = !invisible_identical = !invisible_checked in
  note "seeded plan corruptions: %d/%d rejected by Certify; %d/%d invisible faults \
        executed bit-identically"
    !rejected !seeded !invisible_identical !invisible_checked;
  (* Trajectory file. *)
  let oc = open_out "BENCH_kernel.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"smoke\": %b,\n" smoke;
  out "  \"zoo\": {\"operators\": %d, \"specialized\": %d, \"repeats\": %d, \"cases\": [\n"
    (List.length results)
    (List.length speedups)
    repeats;
  List.iteri
    (fun i (name, cert, t_einsum, t_staged, t_spec, identical) ->
      out
        "    {\"name\": %S, \"einsum_ms\": %.4f, \"staged_ms\": %.4f, \"spec_ms\": %.4f, \
         \"interior\": %.4f, \"strips\": %d, \"identical\": %b}%s\n"
        name (1000.0 *. t_einsum) (1000.0 *. t_staged)
        (match t_spec with Some t -> 1000.0 *. t | None -> -1.0)
        cert.Regions.rc_interior_fraction (Regions.strips cert) identical
        (if i = List.length results - 1 then "" else ",")
    )
    results;
  out "  ]},\n";
  out "  \"speedup\": {\"geomean\": %.4f, \"gate\": %.2f, \"pass\": %b, \"identical\": %b},\n"
    geomean speedup_gate speedup_ok all_identical;
  out "  \"certify\": {\"allocations\": %d, \"all_specialized\": %b},\n" certify_allocs
    all_specialized;
  out "  \"faults\": {\"seeded\": %d, \"rejected\": %d, \"invisible_checked\": %d, \
       \"invisible_identical\": %d}\n"
    !seeded !rejected !invisible_checked !invisible_identical;
  out "}\n";
  close_out oc;
  note "wrote BENCH_kernel.json";
  if not all_identical then
    prerr_endline "a specialized kernel diverged bit-wise from the staged interpreter";
  if not all_specialized then prerr_endline "a catalog operator failed certification";
  if certify_allocs <> 0 then prerr_endline "certification allocated a tensor";
  if not speedup_ok then prerr_endline "specialized kernels missed the speedup gate";
  if not faults_ok then prerr_endline "a seeded plan corruption escaped Certify";
  if not invisible_ok then
    prerr_endline "an invisible fault was not actually execution-invisible";
  if
    not
      (all_identical && all_specialized && certify_allocs = 0 && speedup_ok && faults_ok
     && invisible_ok)
  then exit 1

(* --- bench check: trajectory-file validation ----------------------------------- *)

(* `bench check` re-parses every BENCH_*.json in the working directory
   with a tiny structural JSON parser and verifies the required
   top-level keys per file, so a formatting regression in any writer
   above fails CI even when the experiment itself passed. *)

module Json_check = struct
  exception Bad of string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word =
      if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
      then pos := !pos + String.length word
      else fail (Printf.sprintf "expected %s" word)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
            advance ();
            (match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                Buffer.add_char b '\\';
                Buffer.add_char b c);
            go ()
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some _ -> ()
      | None -> fail "malformed number"
    in
    (* Returns the top-level keys when the value is an object. *)
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          let keys = ref [] in
          (if peek () = Some '}' then advance ()
           else
             let rec members () =
               skip_ws ();
               let k = string_lit () in
               keys := k :: !keys;
               skip_ws ();
               expect ':';
               ignore (value ());
               skip_ws ();
               match peek () with
               | Some ',' ->
                   advance ();
                   members ()
               | Some '}' -> advance ()
               | _ -> fail "expected ',' or '}'"
             in
             members ());
          List.rev !keys
      | Some '[' ->
          advance ();
          skip_ws ();
          (if peek () = Some ']' then advance ()
           else
             let rec elements () =
               ignore (value ());
               skip_ws ();
               match peek () with
               | Some ',' ->
                   advance ();
                   elements ()
               | Some ']' -> advance ()
               | _ -> fail "expected ',' or ']'"
             in
             elements ());
          []
      | Some '"' ->
          ignore (string_lit ());
          []
      | Some 't' ->
          literal "true";
          []
      | Some 'f' ->
          literal "false";
          []
      | Some 'n' ->
          literal "null";
          []
      | Some _ ->
          number ();
          []
      | None -> fail "unexpected end of input"
    in
    let keys = value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    keys
end

(* Required top-level keys per trajectory file; files not listed here
   only need to be well-formed JSON with a "smoke" key. *)
let bench_required_keys =
  [
    ("BENCH_par.json", [ "smoke"; "domains"; "einsum"; "mcts" ]);
    ("BENCH_robust.json", [ "smoke"; "guard"; "faults"; "resume"; "checkpoint" ]);
    ("BENCH_validate.json", [ "smoke"; "budget"; "mutation"; "over_budget"; "overhead" ]);
    ("BENCH_analysis.json", [ "smoke"; "zoo"; "faults"; "cost"; "lint"; "rewrites" ]);
    ("BENCH_cancel.json", [ "smoke"; "poll"; "preempt"; "shutdown" ]);
    ("BENCH_shard.json", [ "smoke"; "determinism"; "corrupt"; "scaling" ]);
    ("BENCH_cegis.json", [ "smoke"; "hardening"; "replay_cost"; "shard" ]);
    ("BENCH_serve.json", [ "smoke"; "cache"; "overload"; "restart"; "poison"; "drain" ]);
    ("BENCH_kernel.json", [ "smoke"; "zoo"; "speedup"; "certify"; "faults" ]);
  ]

let bench_check () =
  section "Trajectory-file validation (bench check)";
  let files =
    List.sort compare
      (List.filter
         (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
         (Array.to_list (Sys.readdir ".")))
  in
  if files = [] then begin
    note "no BENCH_*.json files found (run the benches first)";
    prerr_endline "bench check: nothing to validate";
    exit 1
  end;
  let failed = ref false in
  List.iter
    (fun file ->
      let ic = open_in file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json_check.parse text with
      | exception Json_check.Bad msg ->
          failed := true;
          note "%-24s MALFORMED: %s" file msg
      | keys ->
          let required =
            Option.value ~default:[ "smoke" ] (List.assoc_opt file bench_required_keys)
          in
          let missing = List.filter (fun k -> not (List.mem k keys)) required in
          if missing <> [] then begin
            failed := true;
            note "%-24s missing required keys: %s" file (String.concat ", " missing)
          end
          else note "%-24s ok (%d keys)" file (List.length keys))
    files;
  if !failed then begin
    prerr_endline "bench check: trajectory-file validation failed";
    exit 1
  end

(* --- Driver ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("tab3", tab3);
    ("ablation", ablation);
    ("micro", micro);
    ("par", par_bench ~smoke:false);
    ("par-smoke", par_bench ~smoke:true);
    ("robust", robust_bench ~smoke:false);
    ("robust-smoke", robust_bench ~smoke:true);
    ("validate", validate_bench ~smoke:false);
    ("validate-smoke", validate_bench ~smoke:true);
    ("analysis", analysis_bench ~smoke:false);
    ("analysis-smoke", analysis_bench ~smoke:true);
    ("cancel", cancel_bench ~smoke:false);
    ("cancel-smoke", cancel_bench ~smoke:true);
    ("shard", shard_bench ~smoke:false);
    ("shard-smoke", shard_bench ~smoke:true);
    ("cegis", cegis_bench ~smoke:false);
    ("cegis-smoke", cegis_bench ~smoke:true);
    ("serve", serve_bench ~smoke:false);
    ("serve-smoke", serve_bench ~smoke:true);
    ("kernel", kernel_bench ~smoke:false);
    ("kernel-smoke", kernel_bench ~smoke:true);
    ("check", bench_check);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ ->
        List.filter
          (fun n ->
            n <> "par-smoke" && n <> "robust-smoke" && n <> "validate-smoke"
            && n <> "analysis-smoke" && n <> "cancel-smoke" && n <> "shard-smoke"
            && n <> "cegis-smoke" && n <> "serve-smoke" && n <> "kernel-smoke"
            && n <> "check")
          (List.map fst experiments)
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Format.printf "unknown experiment %s (available: %s)@." name
            (String.concat " " (List.map fst experiments)))
    requested;
  Format.printf "@.[bench] completed in %.1fs@." (Unix.gettimeofday () -. t0)
