(** Term-rewriting simplification of coordinate expressions (\u{00a7}6).

    Following Halide's TRS approach, expressions are rewritten bottom-up
    to a simplest form, where "simplicity" is the paper's empirical
    criterion of removing parentheses by distributing multiplication,
    division, and modulo over addition.

    Predicates that depend on variable magnitudes (e.g. [dom(j) < B])
    are decided the way the paper's footnote 4 prescribes: a symbolic
    comparison holds iff it holds under {e every} concrete valuation
    extracted from the backbone model. *)

type ctx

val ctx :
  ?approx_factor:int option ->
  Shape.Valuation.t list ->
  ctx
(** [ctx valuations] builds a simplification context.  [approx_factor]
    (default [Some 8]) enables the approximate rules of Fig. 3(c): an
    additive perturbation [d] is dropped from a division when
    [range(d) * factor <= divisor] under every valuation.  Pass
    [~approx_factor:None] to keep only exact rules. *)

val valuations : ctx -> Shape.Valuation.t list

val flatten : Ast.t -> Ast.t
(** Purely structural sum normalization: nested [Add]/[Sub] chains are
    flattened, constants folded, and terms sorted.  No semantic rewrite
    fires, so a pGraph can build its coordinate expressions directly in
    this layout; {!simplify} then differs from the built expression iff
    a genuine simplification exists. *)

val simplify : ctx -> Ast.t -> Ast.t
(** Rewrite to a normal form: constants folded, multiplications
    distributed, divisions and modulos pushed through exact multiples,
    sums flattened and sorted. *)

type rewrite = {
  rw_before : Ast.t;  (** the node the rule fired on *)
  rw_after : Ast.t;  (** what it was rewritten to *)
  rw_approx : bool;
      (** an approximate Fig. 3(c) rule fired: the rewrite deliberately
          changes concrete semantics (drops a perturbation that is tiny
          w.r.t. the divisor) and must not be held to exact equality *)
}
(** One fired rule application, recorded by {!simplify_traced} for
    post-hoc soundness checking ({!Analysis.Rewrite}). *)

val simplify_traced : ctx -> Ast.t -> Ast.t * rewrite list
(** [simplify] that also returns every rule application it fired, in
    firing order.  [simplify c e = fst (simplify_traced c e)]. *)

val equivalent : ctx -> Ast.t -> Ast.t -> bool
(** Structural equality of the simplified forms. *)

val proves_lt : ctx -> Ast.t -> Shape.Size.t -> bool
(** [proves_lt ctx e s] iff [0 <= e < s] under every valuation. *)

val proves_much_lt : ctx -> Ast.t -> Shape.Size.t -> bool
(** The [range(e) * approx_factor <= s] test used by approximate
    rules; always [false] when approximation is disabled. *)
