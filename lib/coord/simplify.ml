module Size = Shape.Size
module Valuation = Shape.Valuation
open Ast

type ctx = { valuations : Valuation.t list; approx_factor : int option }

let ctx ?(approx_factor = Some 8) valuations = { valuations; approx_factor }
let valuations c = c.valuations

(* A predicate "for all valuations" is false on an empty context: with
   no concrete evidence we must stay conservative. *)
let for_all_valuations c p =
  match c.valuations with
  | [] -> false
  | vs -> List.for_all p vs

(* Expressions may contain sizes that fail to evaluate under a given
   valuation (e.g. k/g with k = 3, g = 2); such valuations prove
   nothing. *)
let bounds_opt ~lookup e = try Some (bounds ~lookup e) with Failure _ -> None

let proves_lt c e s =
  for_all_valuations c (fun v ->
      let lookup = Valuation.lookup v in
      match (Size.eval_opt s lookup, bounds_opt ~lookup e) with
      | Some n, Some (lo, hi) -> lo >= 0 && hi < n
      | _, _ -> false)

let proves_nonneg c e =
  for_all_valuations c (fun v ->
      match bounds_opt ~lookup:(Valuation.lookup v) e with
      | Some (lo, _) -> lo >= 0
      | None -> false)

let proves_much_lt c e s =
  match c.approx_factor with
  | None -> false
  | Some factor ->
      for_all_valuations c (fun v ->
          let lookup = Valuation.lookup v in
          match (Size.eval_opt s lookup, bounds_opt ~lookup e) with
          | Some n, Some (lo, hi) ->
              (hi - lo + 1) * factor <= n && abs lo * factor <= n && abs hi * factor <= n
          | _, _ -> false)

(* --- Flattened-sum normalization ------------------------------------- *)

let rec collect_terms sign e acc =
  match e with
  | Add (a, b) -> collect_terms sign a (collect_terms sign b acc)
  | Sub (a, b) -> collect_terms sign a (collect_terms (-sign) b acc)
  | e -> (sign, e) :: acc

let terms_of e = collect_terms 1 e []

(* B*(e/B) + e%B = e: fuse matching quotient/remainder term pairs. *)
let rec fuse_divmod terms =
  let try_fuse (sign, t) rest =
    match t with
    | Mul (b, Div (e, b')) when sign = 1 && Size.equal b b' ->
        let is_mod (sign', t') = sign' = 1 && equal t' (Mod (e, b)) in
        let rec remove = function
          | [] -> None
          | x :: tl when is_mod x -> Some tl
          | x :: tl -> Option.map (fun tl' -> x :: tl') (remove tl)
        in
        Option.map (fun rest' -> ((1, e), rest')) (remove rest)
    | _ -> None
  in
  let rec go before = function
    | [] -> List.rev before
    | term :: rest -> (
        match try_fuse term (List.rev_append before rest) with
        | Some (fused, others) -> fuse_divmod (fused :: others)
        | None -> go (term :: before) rest)
  in
  go [] terms

let rebuild_terms terms =
  let const_sum, rest =
    List.fold_left
      (fun (acc, rest) (sign, e) ->
        match e with
        | Const c -> (acc + (sign * c), rest)
        | e -> (acc, (sign, e) :: rest))
      (0, []) terms
  in
  let cmp (s1, e1) (s2, e2) =
    match Int.compare s2 s1 with 0 -> Ast.compare e1 e2 | c -> c
  in
  let rest = List.sort cmp rest in
  let apply acc (sign, e) =
    match acc with
    | None -> if sign > 0 then Some e else Some (Sub (Const 0, e))
    | Some acc -> if sign > 0 then Some (Add (acc, e)) else Some (Sub (acc, e))
  in
  let body = List.fold_left apply None rest in
  match (body, const_sum) with
  | None, c -> Const c
  | Some b, 0 -> b
  | Some b, c when c > 0 -> Add (b, Const c)
  | Some b, c -> Sub (b, Const (-c))

let normalize_sum e = rebuild_terms (fuse_divmod (terms_of e))
let flatten e = rebuild_terms (terms_of e)

(* --- Division and modulo over sums ------------------------------------ *)

(* The multiplicative coefficient of a term, for divisibility tests. *)
let coeff_of = function
  | Mul (s, _) -> s
  | Size_const s -> s
  | Iter _ | Const _ | Add _ | Sub _ | Div _ | Mod _ -> Size.one

let strip_coeff = function
  | Mul (_, e) -> e
  | Size_const _ -> Const 1
  | (Iter _ | Const _ | Add _ | Sub _ | Div _ | Mod _) as e -> e

let with_coeff s e =
  if Size.is_one s then e
  else
    match e with
    | Const 1 -> Size_const s
    | e -> Mul (s, e)

(* Exact monomial divisibility: the quotient must not introduce a
   denominator (a negative exponent), otherwise e.g. any term would
   count as a "multiple" of a coefficient variable. *)
let div_exact a b =
  match Size.div a b with
  | Some q when not (Size.has_negative_exponent q) -> Some q
  | Some _ | None -> None

(* Split [e]'s terms into multiples of [s] (divided through by [s]) and
   the rest. *)
let split_multiples s terms =
  List.fold_left
    (fun (multiples, rest) (sign, t) ->
      match div_exact (coeff_of t) s with
      | Some q -> ((sign, with_coeff q (strip_coeff t)) :: multiples, rest)
      | None -> (multiples, (sign, t) :: rest))
    ([], []) terms

(* Candidate common factors for the Fig. 3(a) rule: every non-unit gcd
   of a term coefficient with the divisor. *)
let candidate_factors divisor terms =
  List.sort_uniq Size.compare
    (List.filter_map
       (fun (_, t) ->
         let g = Size.gcd (coeff_of t) divisor in
         if Size.is_one g then None else Some g)
       terms)

(* Sum-aware rules return the rewritten node tagged with whether an
   {e approximate} (Fig. 3(c)) branch fired — approximate rewrites
   deliberately change concrete semantics, so the rewrite-soundness
   checker in [Analysis.Rewrite] must not hold them to exact equality. *)

(* (s*X + r) / (s*d') = X / d'        when 0 <= r < s
   (s*X + r) % (s*d') = s*(X % d') + r  idem                     *)
let rec div_of_sum c e divisor =
  let terms = terms_of e in
  (* Terms that are exact multiples of the divisor drop out:
     (d*m + r) / d = m + r/d for any integer r. *)
  let multiples, rest = split_multiples divisor terms in
  if multiples <> [] then
    let rest_e = rebuild_terms rest in
    Some (rebuild_terms ((1, Div (rest_e, divisor)) :: multiples), false)
  else
    let try_factor s =
      match Size.div divisor s with
      | None | Some _ when Size.is_one s -> None
      | None -> None
      | Some d' ->
          let mult, rest = split_multiples s terms in
          if mult = [] then None
          else
            let rest_e = rebuild_terms rest in
            if proves_lt c rest_e s then
              let x = rebuild_terms mult in
              if Size.is_one d' then Some x else Some (Div (x, d'))
            else None
    in
    match List.find_map try_factor (candidate_factors divisor terms) with
    | Some e' -> Some (e', false)
    | None -> (
        match approx_div c terms divisor with
        | Some e' -> Some (e', true)
        | None -> None)

and approx_div c terms divisor =
  (* Fig. 3(c): drop additive perturbations that are tiny w.r.t. the
     divisor, e.g. (i + j - K/2)/B = i/B when dom(j), K << B. *)
  let small, large =
    List.partition
      (fun (sign, t) ->
        let signed = if sign > 0 then t else Sub (Const 0, t) in
        proves_much_lt c signed divisor)
      terms
  in
  if small = [] || large = [] then None
  else
    let large_e = rebuild_terms large in
    if proves_nonneg c large_e then Some (Div (large_e, divisor)) else None

let mod_of_sum c e divisor =
  let terms = terms_of e in
  let multiples, rest = split_multiples divisor terms in
  if multiples <> [] then Some (Mod (rebuild_terms rest, divisor), false)
  else
    let try_factor s =
      match Size.div divisor s with
      | None -> None
      | Some d' ->
          let mult, rest = split_multiples s terms in
          if mult = [] then None
          else
            let rest_e = rebuild_terms rest in
            if proves_lt c rest_e s then
              let x = rebuild_terms mult in
              let inner = if Size.is_one d' then Const 0 else Mod (x, d') in
              Some (rebuild_terms ((1, with_coeff s inner) :: terms_of rest_e))
            else None
    in
    match List.find_map try_factor (candidate_factors divisor terms) with
    | Some e' -> Some (e', false)
    | None ->
        (* Approximate: hoist small perturbations out of the modulo. *)
        let small, large =
          List.partition
            (fun (sign, t) ->
              let signed = if sign > 0 then t else Sub (Const 0, t) in
              proves_much_lt c signed divisor)
            terms
        in
        if small = [] || large = [] then None
        else
          let large_e = rebuild_terms large in
          Some (rebuild_terms ((1, Mod (large_e, divisor)) :: small), true)

(* --- Rewrite rules ---------------------------------------------------- *)

let rule_at c node =
  match node with
  (* Units and constant folding. *)
  | Mul (s, e) when Size.is_one s -> Some (e, false)
  | Mul (_, Const 0) -> Some (Const 0, false)
  | Mul (s, Const k) when k > 0 && Size.is_constant s ->
      Some (Const (Size.constant s * k), false)
  | Mul (s, Const 1) -> Some (Size_const s, false)
  | Mul (s1, Mul (s2, e)) -> Some (Mul (Size.mul s1 s2, e), false)
  | Mul (s, Size_const s') -> Some (Size_const (Size.mul s s'), false)
  | Size_const s when Size.is_constant s -> Some (Const (Size.constant s), false)
  | Div (e, s) when Size.is_one s -> Some (e, false)
  | Mod (_, s) when Size.is_one s -> Some (Const 0, false)
  | Div (Const k, s) when Size.is_constant s -> Some (Const (fdiv k (Size.constant s)), false)
  | Mod (Const k, s) when Size.is_constant s -> Some (Const (emod k (Size.constant s)), false)
  (* Distribute multiplication over sums: removes parentheses (\u{00a7}6). *)
  | Mul (s, Add (a, b)) -> Some (Add (Mul (s, a), Mul (s, b)), false)
  | Mul (s, Sub (a, b)) -> Some (Sub (Mul (s, a), Mul (s, b)), false)
  (* Nested divisions combine. *)
  | Div (Div (e, a), b) -> Some (Div (e, Size.mul a b), false)
  (* Range-based collapses, justified under every extracted valuation. *)
  | Div (e, s) when proves_lt c e s -> Some (Const 0, false)
  | Mod (e, s) when proves_lt c e s -> Some (e, false)
  (* Sum-aware division and modulo (exact rules then Fig. 3 rules). *)
  | Div (e, s) -> div_of_sum c e s
  | Mod (e, s) -> mod_of_sum c e s
  | Mul (_, _) | Iter _ | Const _ | Size_const _ | Add _ | Sub _ -> None

let max_fuel = 400

type rewrite = { rw_before : Ast.t; rw_after : Ast.t; rw_approx : bool }

(* One bottom-up pass with local fixpointing.  [on_rewrite] observes
   every fired rule — including the structural [normalize_sum] step,
   which applies the semantic divmod-fusion rule — so callers can
   re-verify each application.  The callback defaults to a no-op, so
   the plain [simplify] hot path pays nothing. *)
let simplify_pass ?on_rewrite c e =
  let record ~approx before after =
    match on_rewrite with
    | None -> ()
    | Some f -> if not (Ast.equal before after) then f { rw_before = before; rw_after = after; rw_approx = approx }
  in
  let fuel = ref max_fuel in
  let rec fix node =
    if !fuel <= 0 then node
    else
      match rule_at c node with
      | Some (node', approx) when not (Ast.equal node' node) ->
          decr fuel;
          record ~approx node node';
          go node'
      | Some _ | None -> node
  and go e =
    let e' =
      match e with
      | Iter _ | Const _ | Size_const _ -> e
      | Add (a, b) -> Add (go a, go b)
      | Sub (a, b) -> Sub (go a, go b)
      | Mul (s, e) -> Mul (s, go e)
      | Div (e, s) -> Div (go e, s)
      | Mod (e, s) -> Mod (go e, s)
    in
    let e' = fix e' in
    match e' with
    | Add _ | Sub _ ->
        let flat = normalize_sum e' in
        if Ast.equal flat e' then flat
        else begin
          record ~approx:false e' flat;
          fix (go flat)
        end
    | Iter _ | Const _ | Size_const _ | Mul _ | Div _ | Mod _ -> e'
  in
  go e

(* Iterate passes to an outer fixpoint: a single bottom-up pass can
   expose a new redex above the point it just rewrote (e.g. a division
   materialized by [div_of_sum] whose operand only then flattens into a
   recognizable multiple), and idempotence of [simplify] — which the
   canonical-form check in [Pgraph.Canon] relies on — requires running
   those follow-ups to quiescence. *)
let max_passes = 8

let simplify_with ?on_rewrite c e =
  let rec loop n e =
    let e' = simplify_pass ?on_rewrite c e in
    if n <= 1 || Ast.equal e' e then e' else loop (n - 1) e'
  in
  loop max_passes e

let simplify c e = simplify_with c e

let simplify_traced c e =
  let fired = ref [] in
  let e' = simplify_with ~on_rewrite:(fun r -> fired := r :: !fired) c e in
  (e', List.rev !fired)

let equivalent c a b = Ast.equal (simplify c a) (simplify c b)
