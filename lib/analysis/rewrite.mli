(** Rewrite-soundness checking for the coordinate-expression TRS.

    {!Coord.Simplify} (and through it the canonical-form check of
    {!Pgraph.Canon}) rewrites coordinate expressions with rules whose
    side conditions are discharged by "for all valuations" range
    predicates.  A bug in a rule or a predicate silently changes
    operator semantics and only surfaces later as a backend mismatch.
    This module re-verifies each {e actually fired} rule application
    (recorded by {!Coord.Simplify.simplify_traced}): the LHS and RHS
    are compared in the {!Interval} domain and evaluated pointwise
    over the iterator domains under every context valuation —
    exhaustively when the iteration product is small, on corner +
    pseudo-random samples otherwise.

    Approximate Fig. 3(c) rules deliberately change semantics (they
    drop perturbations that are tiny w.r.t. the divisor); they are
    counted but exempt from exact equality. *)

type failure = {
  fl_before : Coord.Ast.t;
  fl_after : Coord.Ast.t;
  fl_valuation : Shape.Valuation.t;
  fl_witness : (int * int) list;  (** iterator id -> value at the disagreement *)
  fl_lhs : int;
  fl_rhs : int;
}
(** A concrete point where an exact rewrite changed the value. *)

type report = {
  rp_checked : int;  (** fired rule applications examined *)
  rp_exhaustive : int;  (** verified over the full iteration product *)
  rp_sampled : int;  (** verified on sampled points only *)
  rp_approx : int;  (** approximate rules (exempt from exact equality) *)
  rp_failures : failure list;
}

val empty_report : report
val merge_reports : report -> report -> report
val failure_to_string : failure -> string

val check_rewrite :
  Shape.Valuation.t list -> Coord.Simplify.rewrite -> failure option * [ `Exhaustive | `Sampled ]
(** Verify one fired application against every valuation (skipping
    valuations it does not evaluate under). *)

val check_expr : Coord.Simplify.ctx -> Coord.Ast.t -> report
(** Re-simplify [e] with tracing and verify every fired application. *)

val check_operator : Coord.Simplify.ctx -> Pgraph.Graph.operator -> report
(** {!check_expr} over every input coordinate expression of the
    operator — exactly the expressions the canonical-form check of
    {!Pgraph.Canon} fires the TRS on. *)
