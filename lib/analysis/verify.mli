(** Static bounds proofs for lowered programs.

    Every tensor access a lowered Syno operator performs — the input
    gather shared by {!Lower.Reference} and {!Lower.Einsum_program},
    the weight indexing, and every per-stage factor access of
    {!Lower.Staged_exec} (via its {!Lower.Staged_exec.access_plan}) —
    is an integer coordinate expression checked against a window.
    This module evaluates each expression in the {!Interval} domain
    and emits a typed verdict:

    - [Proved]: every access is statically inside its window;
    - [Padded regions]: some accesses fall outside, but only into the
      zero-padded boundary regions [Shift]/[Unfold] legally produce —
      [regions] identifies each out-of-bounds range exactly;
    - [Violation d]: an access range never intersects its window, so
      the tensor it reads contributes identically zero (a miscompiled
      or corrupted program) — [d] says which access, where it ranges,
      and what window it missed.

    The whole analysis is arithmetic on the pGraph structure: no
    tensor is allocated (provable via [Nd.Tensor.allocations]). *)

type region = {
  rg_what : string;  (** which program part: ["input"], ["stage k"], ["final"] *)
  rg_dim : int;  (** dimension index within that part *)
  rg_expr : Coord.Ast.t;  (** the indexing expression *)
  rg_window : int * int;  (** inclusive in-bounds window *)
  rg_below : (int * int) option;  (** accessed range below the window *)
  rg_above : (int * int) option;  (** accessed range above the window *)
}

type diagnostic = {
  dg_what : string;
  dg_dim : int;
  dg_expr : Coord.Ast.t;
  dg_range : Interval.t;  (** the full access range *)
  dg_window : int * int;
  dg_reason : string;
}

type verdict =
  | Proved
  | Padded of region list
  | Violation of diagnostic

val region_to_string : region -> string
val diagnostic_to_string : diagnostic -> string
(** One-line, machine-readable renderings used by [syno lint] and the
    [static_violation] guard payload. *)

val verdict_to_string : verdict -> string

val operator : Pgraph.Graph.operator -> Shape.Valuation.t -> verdict
(** Bounds for the direct lowering: every input-gather expression
    against its input dimension and every weight access against its
    iterator domain (covers {!Lower.Reference} and the
    {!Lower.Einsum_program} gather, which share the same access
    structure).  Raises [Failure] when the operator is not
    instantiable under the valuation. *)

val staged : Pgraph.Graph.operator -> Shape.Valuation.t -> verdict
(** Bounds for the materialized-reduction executor: every per-stage
    factor access of the compiled {!Lower.Staged_exec} plan.  Raises
    [Failure] when not instantiable. *)

val program : Pgraph.Graph.operator -> Shape.Valuation.t -> verdict
(** [operator] and [staged] combined: [Proved] only if both prove,
    padded regions concatenated, first violation wins. *)

val program_opt : Pgraph.Graph.operator -> Shape.Valuation.t -> verdict option
(** [program], with [None] for a valuation the operator is not
    instantiable under (mirroring how differential validation skips
    such valuations). *)

val admit :
  Pgraph.Graph.operator -> Shape.Valuation.t list -> (unit, Robust.Guard.kind) result
(** The admission form: check [program] under every valuation
    (skipping non-instantiable ones); any [Violation] rejects the
    candidate with [Robust.Guard.Static_violation] carrying the
    rendered diagnostic.  [Padded] is legal and admits. *)
