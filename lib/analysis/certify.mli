(** Translation validation for specialized kernel plans.

    {!Regions} builds a partition certificate and {!Lower.Specialize}
    executes it — with checkless unchecked reads over interior pieces,
    so a miscompiled plan is not a performance bug but a soundness
    bug.  This pass re-derives every claim a plan makes before it is
    allowed to run:

    - the partition covers each nest's iteration space {e exactly
      once}: piece volumes sum to the box and no two pieces overlap
      (checked symbolically — no iteration-space enumeration);
    - interior pieces re-verify every access Proved in-window via
      {!Regions.access_within};
    - border pieces guard exactly the accesses that may clip: an
      unguarded may-clip access rejects, and so does a guard on an
      access proved in-window (spurious guards signal miscompilation);
    - the clip sets are cross-checked against {!Verify.staged}'s
      independently recorded padded regions; a [Violation] verdict
      never certifies.

    Rejection is the typed admission failure
    [Robust.Guard.Static_violation], same as {!Verify.admit}.  The
    whole pass is arithmetic: zero tensor allocations (provable via
    [Nd.Tensor.allocations]).  The seeded {!Lower.Specialize.fault}
    corruptions — overlap, duplicate, spurious clip — execute with
    bit-identical outputs and are caught {e only} here. *)

type stats = {
  ct_nests : int;
  ct_pieces : int;
  ct_interior_pieces : int;
  ct_cells : int;  (** total positional cells across nests *)
  ct_interior_cells : int;  (** cells on the checkless path *)
}

val validate :
  Lower.Staged_exec.t -> Lower.Specialize.plan -> (stats, Robust.Guard.kind) result
(** Validates [plan] against the executor's symbolic loop structure. *)

val compile :
  Lower.Staged_exec.t ->
  Lower.Specialize.plan ->
  (Lower.Specialize.t, Robust.Guard.kind) result
(** [validate] then {!Lower.Specialize.compile}: the only path the
    rest of the tree should use to obtain a runnable specialized
    kernel. *)
