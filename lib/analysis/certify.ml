module Valuation = Shape.Valuation
module Staged = Lower.Staged_exec
module Specialize = Lower.Specialize

type stats = {
  ct_nests : int;
  ct_pieces : int;
  ct_interior_pieces : int;
  ct_cells : int;
  ct_interior_cells : int;
}

let reject fmt = Printf.ksprintf (fun msg -> Error (Robust.Guard.Static_violation msg)) fmt

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let rec fold_result f acc = function
  | [] -> Ok acc
  | x :: rest -> (
      match f acc x with Error _ as e -> e | Ok acc -> fold_result f acc rest)

(* Two boxes are disjoint iff some axis separates them. *)
let disjoint a b =
  let n = Array.length a.Specialize.pc_lo in
  let rec go i =
    i < n
    && (a.Specialize.pc_hi.(i) < b.Specialize.pc_lo.(i)
        || b.Specialize.pc_hi.(i) < a.Specialize.pc_lo.(i)
        || go (i + 1))
  in
  go 0

let validate_nest ~lookup ~what nest pieces =
  let axes = Regions.nest_axes nest in
  let n_axes = Array.length axes in
  let n_acc = Regions.access_count nest in
  let arr = Array.of_list pieces in
  (* Shape: every piece is a well-formed sub-box with in-range clips. *)
  let* () =
    fold_result
      (fun () p ->
        if
          Array.length p.Specialize.pc_lo <> n_axes
          || Array.length p.Specialize.pc_hi <> n_axes
        then reject "certify: %s: piece rank mismatch" what
        else if
          not
            (Array.for_all2
               (fun lo hi -> 0 <= lo && lo <= hi)
               p.Specialize.pc_lo p.Specialize.pc_hi
            && Array.for_all2 (fun hi e -> hi < e) p.Specialize.pc_hi axes)
        then reject "certify: %s: piece outside its box" what
        else if List.exists (fun i -> i < 0 || i >= n_acc) p.Specialize.pc_clips then
          reject "certify: %s: clip index out of range" what
        else if
          List.length (List.sort_uniq compare p.Specialize.pc_clips)
          <> List.length p.Specialize.pc_clips
        then reject "certify: %s: duplicate clip index" what
        else Ok ())
      () pieces
  in
  (* Exact cover: volumes sum to the box and no two pieces overlap. *)
  let volume = Array.fold_left ( * ) 1 axes in
  let covered =
    List.fold_left (fun acc p -> acc + Specialize.piece_volume p) 0 pieces
  in
  let* () =
    if covered <> volume then
      reject "certify: %s: pieces cover %d of %d cells" what covered volume
    else Ok ()
  in
  let* () =
    let n = Array.length arr in
    let rec pairs i j =
      if i >= n then Ok ()
      else if j >= n then pairs (i + 1) (i + 2)
      else if not (disjoint arr.(i) arr.(j)) then
        reject "certify: %s: pieces %d and %d overlap" what i j
      else pairs i (j + 1)
    in
    pairs 0 1
  in
  (* Re-verify every piece against the access decision procedure:
     interior pieces must prove every access in-window; border pieces
     must prove every unlisted access in-window, and must not list an
     access that is provably in-window (a guard that can never fire is
     a miscompilation signal, not caution). *)
  fold_result
    (fun () p ->
      let lo = p.Specialize.pc_lo and hi = p.Specialize.pc_hi in
      let rec go idx =
        if idx >= n_acc then Ok ()
        else
          let within = Regions.access_within ~lookup nest ~lo ~hi idx in
          let listed = List.mem idx p.Specialize.pc_clips in
          if p.Specialize.pc_interior then
            if listed then reject "certify: %s: interior piece lists clip %d" what idx
            else if not within then
              reject "certify: %s: interior access %d not proved in-window" what idx
            else go (idx + 1)
          else if (not listed) && not within then
            reject "certify: %s: unguarded access %d may clip" what idx
          else if listed && within then
            reject "certify: %s: spurious guard on proved access %d" what idx
          else go (idx + 1)
      in
      go 0)
    () pieces

(* Cross-check against the bounds verifier's independently recorded
   regions: a violation never certifies, and every access Verify saw
   clip must either be guarded somewhere in its nest or be refuted
   piece by piece (the partition analysis is strictly more precise —
   it evaluates over sub-boxes where Verify evaluated the full
   space). *)
let cross_check ~lookup nests plan verdict =
  let n_stages = Array.length nests - 1 in
  let nest_index what =
    if what = "final" then Some (n_stages)
    else
      try Scanf.sscanf what "stage %d" (fun k -> if k < n_stages then Some k else None)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  match verdict with
  | Verify.Violation d ->
      reject "certify: verifier violation: %s" (Verify.diagnostic_to_string d)
  | Verify.Proved -> Ok ()
  | Verify.Padded regions ->
      fold_result
        (fun () (r : Verify.region) ->
          match nest_index r.Verify.rg_what with
          | None -> Ok ()  (* an operator-lowering region, not a staged nest *)
          | Some k ->
              let idx = r.Verify.rg_dim in
              let guarded =
                List.exists
                  (fun p -> List.mem idx p.Specialize.pc_clips)
                  plan.(k)
              in
              let refuted () =
                List.for_all
                  (fun p ->
                    Regions.access_within ~lookup nests.(k)
                      ~lo:p.Specialize.pc_lo ~hi:p.Specialize.pc_hi idx)
                  plan.(k)
              in
              if guarded || refuted () then Ok ()
              else
                reject "certify: %s: access %d clips per verifier but is never guarded"
                  r.Verify.rg_what idx)
        () regions

let validate staged plan =
  let lookup = Valuation.lookup (Staged.valuation staged) in
  let nests = Regions.nests staged in
  let n_nests = Array.length nests in
  let* () =
    if Array.length plan <> n_nests then
      reject "certify: plan has %d partitions, executor has %d nests"
        (Array.length plan) n_nests
    else Ok ()
  in
  let* () =
    fold_result
      (fun () k ->
        let what =
          if k < n_nests - 1 then Printf.sprintf "stage %d" k else "final"
        in
        validate_nest ~lookup ~what nests.(k) plan.(k))
      ()
      (List.init n_nests (fun k -> k))
  in
  let verdict = Verify.staged (Staged.operator staged) (Staged.valuation staged) in
  let* () = cross_check ~lookup nests plan verdict in
  let pieces = Array.fold_left (fun n ps -> n + List.length ps) 0 plan in
  let interior_pieces =
    Array.fold_left
      (fun n ps -> n + List.length (List.filter (fun p -> p.Specialize.pc_interior) ps))
      0 plan
  in
  let cells =
    Array.fold_left
      (fun n nest -> n + Array.fold_left ( * ) 1 (Regions.nest_axes nest))
      0 nests
  in
  let interior_cells =
    Array.fold_left
      (fun n ps ->
        List.fold_left
          (fun n p ->
            if p.Specialize.pc_interior then n + Specialize.piece_volume p else n)
          n ps)
      0 plan
  in
  Ok
    {
      ct_nests = n_nests;
      ct_pieces = pieces;
      ct_interior_pieces = interior_pieces;
      ct_cells = cells;
      ct_interior_cells = interior_cells;
    }

let compile staged plan =
  let* _stats = validate staged plan in
  Ok (Specialize.compile staged plan)
