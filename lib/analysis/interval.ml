module Size = Shape.Size
module Ast = Coord.Ast

type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg (Printf.sprintf "Interval.make: [%d, %d] is empty" lo hi);
  { lo; hi }

let of_const n = { lo = n; hi = n }
let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

let scale n i =
  if n >= 0 then { lo = n * i.lo; hi = n * i.hi } else { lo = n * i.hi; hi = n * i.lo }

let fdiv i n =
  if n <= 0 then invalid_arg "Interval.fdiv: non-positive divisor";
  { lo = Ast.fdiv i.lo n; hi = Ast.fdiv i.hi n }

let emod i n =
  if n <= 0 then invalid_arg "Interval.emod: non-positive divisor";
  (* Exact when the whole range sits inside one period of the modulo
     (same floored quotient): the image is then itself contiguous. *)
  if Ast.fdiv i.lo n = Ast.fdiv i.hi n then { lo = Ast.emod i.lo n; hi = Ast.emod i.hi n }
  else { lo = 0; hi = n - 1 }

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let mem x i = i.lo <= x && x <= i.hi
let within i ~lo ~hi = lo <= i.lo && i.hi <= hi
let disjoint i ~lo ~hi = i.hi < lo || hi < i.lo
let width i = i.hi - i.lo + 1
let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf i = Format.fprintf ppf "[%d, %d]" i.lo i.hi
let to_string i = Format.asprintf "%a" pp i

let eval ~lookup ?env e =
  let env =
    match env with
    | Some f -> f
    | None -> fun (it : Ast.iter) -> { lo = 0; hi = Size.eval it.Ast.dom lookup - 1 }
  in
  let rec go = function
    | Ast.Iter it -> env it
    | Ast.Const c -> of_const c
    | Ast.Size_const s -> of_const (Size.eval s lookup)
    | Ast.Add (a, b) -> add (go a) (go b)
    | Ast.Sub (a, b) -> sub (go a) (go b)
    | Ast.Mul (s, e) -> scale (Size.eval s lookup) (go e)
    | Ast.Div (e, s) -> fdiv (go e) (Size.eval s lookup)
    | Ast.Mod (e, s) -> emod (go e) (Size.eval s lookup)
  in
  go e

let eval_opt ~lookup ?env e = try Some (eval ~lookup ?env e) with Failure _ -> None
