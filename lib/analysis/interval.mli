(** Sound integer intervals for coordinate expressions.

    The abstract domain of the static verifier: an inclusive range
    [[lo, hi]] over-approximating the set of values an expression can
    take when each iterator ranges over its domain.  All operations
    are {e sound} (the concrete image is always contained in the
    abstract result); division and modulo are additionally {e exact}
    on the cases the Syno primitives generate:

    - floored division by a positive constant is monotone, so
      [fdiv [lo, hi] n = [lo/n, hi/n]] is the exact image of a
      contiguous range;
    - Euclidean modulo is exact whenever the operand range lies within
      a single period ([lo/n = hi/n]) — the wraparound [Shift]
      produces — and otherwise widens to the full [[0, n-1]].

    This makes the domain strictly more precise than
    {!Coord.Ast.bounds}, which only passes a modulo through when the
    operand is already in [[0, n)]. *)

type t = private { lo : int; hi : int }
(** An inclusive, non-empty range: [lo <= hi]. *)

val make : int -> int -> t
(** [make lo hi]; raises [Invalid_argument] when [lo > hi]. *)

val of_const : int -> t

val add : t -> t -> t
val sub : t -> t -> t

val scale : int -> t -> t
(** Multiplication by an arbitrary integer constant (negative allowed). *)

val fdiv : t -> int -> t
(** Floored division by a positive constant; raises [Invalid_argument]
    on a non-positive divisor. *)

val emod : t -> int -> t
(** Euclidean modulo by a positive constant: exact when the range lies
    within one period, [[0, n-1]] otherwise. *)

val join : t -> t -> t
(** Smallest interval containing both. *)

val mem : int -> t -> bool

val within : t -> lo:int -> hi:int -> bool
(** The whole interval lies inside the inclusive window. *)

val disjoint : t -> lo:int -> hi:int -> bool
(** No point of the interval lies inside the inclusive window. *)

val width : t -> int
(** [hi - lo + 1]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val eval :
  lookup:(Shape.Var.t -> int) -> ?env:(Coord.Ast.iter -> t) -> Coord.Ast.t -> t
(** Abstract interpretation of a coordinate expression.  [env] gives
    each iterator's interval (default: its full domain
    [[0, dom - 1]]); [lookup] the valuation of size variables.  Raises
    [Failure] like {!Shape.Size.eval} when a size does not evaluate
    under the valuation (e.g. a non-integer quotient). *)

val eval_opt :
  lookup:(Shape.Var.t -> int) -> ?env:(Coord.Ast.iter -> t) -> Coord.Ast.t -> t option
(** [eval] returning [None] instead of raising on an unevaluable
    size. *)
