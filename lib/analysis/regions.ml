module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Staged = Lower.Staged_exec
module Specialize = Lower.Specialize

(* One loop nest of the staged executor, as the partition passes see
   it: either a materialization stage or the final contraction. *)
type nest_sym = Stage of Staged.stage_sym | Final of Staged.final_sym

let nests staged =
  let syms, fsym = Staged.symbolic_plan staged in
  Array.of_list (List.map (fun s -> Stage s) syms @ [ Final fsym ])

let nest_axes = function
  | Stage s -> s.Staged.ss_extents
  | Final f -> f.Staged.fs_out_doms

let access_count = function
  | Stage s -> Array.fold_left (fun n u -> n + Array.length u) 0 s.Staged.ss_uses
  | Final f -> Array.fold_left (fun n d -> n + Array.length d) 0 f.Staged.fs_factors

(* Fetch the [idx]th access, numbering factor-major in executor order —
   the same order {!Lower.Staged_exec.access_plan} flattens to, so the
   index aligns with {!Verify.region.rg_dim}. *)
let nth_flat groups idx =
  let rec go g idx =
    if g >= Array.length groups then invalid_arg "Regions: access index out of range"
    else
      let n = Array.length groups.(g) in
      if idx < n then groups.(g).(idx) else go (g + 1) (idx - n)
  in
  go 0 idx

(* The reduction term [u_coef * r] for [r] in [0, dom - 1] spans an
   interval between 0 and [u_coef * (dom - 1)], whichever order. *)
let red_span dom coef =
  let d = coef * (dom - 1) in
  (min 0 d, max 0 d)

let access_within ~lookup nest ~lo ~hi idx =
  match nest with
  | Stage s ->
      let u = nth_flat s.Staged.ss_uses idx in
      let rmin, rmax = red_span s.Staged.ss_dom u.Staged.u_coef in
      let vmin, vmax =
        if u.Staged.u_slot >= 0 then
          let low = s.Staged.ss_lows.(u.Staged.u_slot) in
          (lo.(u.Staged.u_slot) + low + rmin, hi.(u.Staged.u_slot) + low + rmax)
        else (u.Staged.u_base + rmin, u.Staged.u_base + rmax)
      in
      vmin >= u.Staged.u_lo && vmax <= u.Staged.u_lo + u.Staged.u_extent - 1
  | Final f ->
      let expr, wlo, extent = nth_flat f.Staged.fs_factors idx in
      let env (it : Ast.iter) =
        let rec find i =
          if i >= Array.length f.Staged.fs_out_ids then
            Interval.make 0 (Size.eval it.Ast.dom lookup - 1)
          else if f.Staged.fs_out_ids.(i) = it.Ast.id then Interval.make lo.(i) hi.(i)
          else find (i + 1)
        in
        find 0
      in
      Interval.within (Interval.eval ~lookup ~env expr) ~lo:wlo ~hi:(wlo + extent - 1)

(* --- Interior inference --------------------------------------------------- *)

(* Maximal per-axis ranges where every access is provably in-window.
   Stage accesses are linear in their position axis, so the constraint
   inverts exactly; final-nest accesses are scanned value by value in
   the interval domain (sound by inclusion monotonicity) and the
   longest contiguous allowed run is kept. *)
let stage_interior s =
  let ext = s.Staged.ss_extents in
  let alo = Array.make (Array.length ext) 0 in
  let ahi = Array.mapi (fun _ e -> e - 1) ext in
  let ok = ref true in
  Array.iter
    (fun uses ->
      Array.iter
        (fun u ->
          let rmin, rmax = red_span s.Staged.ss_dom u.Staged.u_coef in
          let whi = u.Staged.u_lo + u.Staged.u_extent - 1 in
          if u.Staged.u_slot >= 0 then begin
            let slot = u.Staged.u_slot in
            let low = s.Staged.ss_lows.(slot) in
            alo.(slot) <- max alo.(slot) (u.Staged.u_lo - low - rmin);
            ahi.(slot) <- min ahi.(slot) (whi - low - rmax)
          end
          else if u.Staged.u_base + rmin < u.Staged.u_lo || u.Staged.u_base + rmax > whi
          then ok := false)
        uses)
    s.Staged.ss_uses;
  if !ok && Array.for_all2 (fun a b -> a <= b) alo ahi then Some (alo, ahi) else None

let final_interior ~lookup f =
  let m = Array.length f.Staged.fs_out_doms in
  let accesses = Array.concat (Array.to_list f.Staged.fs_factors) in
  let mentions expr id =
    List.exists (fun (it : Ast.iter) -> it.Ast.id = id) (Ast.iters expr)
  in
  (* Accesses over no output axis clip position-independently. *)
  let pos_independent_ok =
    Array.for_all
      (fun (expr, wlo, extent) ->
        Array.exists (fun id -> mentions expr id) f.Staged.fs_out_ids
        || Interval.within (Interval.eval ~lookup expr) ~lo:wlo ~hi:(wlo + extent - 1))
      accesses
  in
  if not pos_independent_ok then None
  else
    let alo = Array.make m 0 and ahi = Array.make m 0 in
    let empty = ref false in
    for i = 0 to m - 1 do
      let id = f.Staged.fs_out_ids.(i) in
      let constrained =
        Array.exists (fun (expr, _, _) -> mentions expr id) accesses
      in
      if not constrained then ahi.(i) <- f.Staged.fs_out_doms.(i) - 1
      else begin
        let allowed v =
          Array.for_all
            (fun (expr, wlo, extent) ->
              (not (mentions expr id))
              ||
              let env (it : Ast.iter) =
                if it.Ast.id = id then Interval.make v v
                else Interval.make 0 (Size.eval it.Ast.dom lookup - 1)
              in
              Interval.within (Interval.eval ~lookup ~env expr) ~lo:wlo
                ~hi:(wlo + extent - 1))
            accesses
        in
        (* Longest contiguous allowed run. *)
        let best_lo = ref 0 and best_hi = ref (-1) in
        let cur_lo = ref 0 and cur_hi = ref (-1) in
        for v = 0 to f.Staged.fs_out_doms.(i) - 1 do
          if allowed v then begin
            if !cur_hi < !cur_lo then cur_lo := v;
            cur_hi := v;
            if !cur_hi - !cur_lo > !best_hi - !best_lo then begin
              best_lo := !cur_lo;
              best_hi := !cur_hi
            end
          end
          else begin
            cur_lo := v + 1;
            cur_hi := v
          end
        done;
        if !best_hi < !best_lo then empty := true
        else begin
          alo.(i) <- !best_lo;
          ahi.(i) <- !best_hi
        end
      end
    done;
    if !empty then None else Some (alo, ahi)

(* --- Partition construction ----------------------------------------------- *)

(* Onion decomposition: axis [a]'s below/above strips clamp axes < [a]
   to the interior range and leave axes > [a] full — exact cover, no
   overlap.  Every piece's clip set is recomputed from scratch with
   {!access_within}; a strip where nothing can clip is promoted to
   interior. *)
let decompose ~lookup nest =
  let ext = nest_axes nest in
  let n_axes = Array.length ext in
  let n_acc = access_count nest in
  let mk_piece lo hi =
    let clips = ref [] in
    for idx = n_acc - 1 downto 0 do
      if not (access_within ~lookup nest ~lo ~hi idx) then clips := idx :: !clips
    done;
    {
      Specialize.pc_lo = lo;
      pc_hi = hi;
      pc_interior = !clips = [];
      pc_clips = !clips;
    }
  in
  let whole () = [ mk_piece (Array.make n_axes 0) (Array.map (fun e -> e - 1) ext) ] in
  let candidate =
    match nest with
    | Stage s -> stage_interior s
    | Final f -> final_interior ~lookup f
  in
  match candidate with
  | None -> whole ()
  | Some (alo, ahi) ->
      (* The per-axis inference is sound value by value; re-verify the
         joint box with the same decision certification uses, falling
         back to all-border if the interval domain loses precision on
         the joint ranges. *)
      let interior_ok =
        let rec go idx =
          idx >= n_acc || (access_within ~lookup nest ~lo:alo ~hi:ahi idx && go (idx + 1))
        in
        go 0
      in
      if not interior_ok then whole ()
      else
        let pieces = ref [] in
        for a = n_axes - 1 downto 0 do
          let strip range_a =
            let lo = Array.init n_axes (fun i -> if i < a then alo.(i) else 0) in
            let hi =
              Array.init n_axes (fun i -> if i < a then ahi.(i) else ext.(i) - 1)
            in
            lo.(a) <- fst range_a;
            hi.(a) <- snd range_a;
            pieces := mk_piece lo hi :: !pieces
          in
          if ahi.(a) < ext.(a) - 1 then strip (ahi.(a) + 1, ext.(a) - 1);
          if alo.(a) > 0 then strip (0, alo.(a) - 1)
        done;
        mk_piece (Array.copy alo) (Array.copy ahi) :: !pieces

(* --- Certificates --------------------------------------------------------- *)

type nest_summary = {
  ns_what : string;
  ns_axes : int array;
  ns_pieces : int;
  ns_strips : int;  (** border (guarded) pieces *)
  ns_interior_fraction : float;
}

type t = {
  rc_plan : Specialize.plan;
  rc_nests : nest_summary array;
  rc_verdict : Verify.verdict;
  rc_interior_fraction : float;
      (** volume-weighted over all nests: the fraction of executed
          elements that run the checkless path *)
}

let box_volume axes = Array.fold_left ( * ) 1 axes

let of_staged staged =
  let lookup = Valuation.lookup (Staged.valuation staged) in
  let ns = nests staged in
  let n_stages = Array.length ns - 1 in
  let plan = Array.map (fun nest -> decompose ~lookup nest) ns in
  let summaries =
    Array.mapi
      (fun i nest ->
        let axes = nest_axes nest in
        let total = box_volume axes in
        let interior =
          List.fold_left
            (fun acc p ->
              if p.Specialize.pc_interior then acc + Specialize.piece_volume p else acc)
            0 plan.(i)
        in
        {
          ns_what = (if i < n_stages then Printf.sprintf "stage %d" i else "final");
          ns_axes = axes;
          ns_pieces = List.length plan.(i);
          ns_strips =
            List.length (List.filter (fun p -> not p.Specialize.pc_interior) plan.(i));
          ns_interior_fraction =
            (if total = 0 then 0.0 else float_of_int interior /. float_of_int total);
        })
      ns
  in
  let total = Array.fold_left (fun t nest -> t + box_volume (nest_axes nest)) 0 ns in
  let interior =
    Array.fold_left
      (fun acc pieces ->
        List.fold_left
          (fun acc p ->
            if p.Specialize.pc_interior then acc + Specialize.piece_volume p else acc)
          acc pieces)
      0 plan
  in
  {
    rc_plan = plan;
    rc_nests = summaries;
    rc_verdict = Verify.program (Staged.operator staged) (Staged.valuation staged);
    rc_interior_fraction =
      (if total = 0 then 0.0 else float_of_int interior /. float_of_int total);
  }

let strips t = Array.fold_left (fun n s -> n + s.ns_strips) 0 t.rc_nests

let summary_to_string t =
  Printf.sprintf "verdict=%s interior=%.3f strips=%d nests=%d"
    (match t.rc_verdict with
    | Verify.Proved -> "proved"
    | Verify.Padded _ -> "padded"
    | Verify.Violation _ -> "violation")
    t.rc_interior_fraction (strips t) (Array.length t.rc_nests)
