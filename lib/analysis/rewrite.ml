module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify
module Graph = Pgraph.Graph

type failure = {
  fl_before : Ast.t;
  fl_after : Ast.t;
  fl_valuation : Valuation.t;
  fl_witness : (int * int) list;
  fl_lhs : int;
  fl_rhs : int;
}

type report = {
  rp_checked : int;
  rp_exhaustive : int;
  rp_sampled : int;
  rp_approx : int;
  rp_failures : failure list;
}

let empty_report =
  { rp_checked = 0; rp_exhaustive = 0; rp_sampled = 0; rp_approx = 0; rp_failures = [] }

let merge_reports a b =
  {
    rp_checked = a.rp_checked + b.rp_checked;
    rp_exhaustive = a.rp_exhaustive + b.rp_exhaustive;
    rp_sampled = a.rp_sampled + b.rp_sampled;
    rp_approx = a.rp_approx + b.rp_approx;
    rp_failures = a.rp_failures @ b.rp_failures;
  }

let failure_to_string f =
  let witness =
    String.concat ", "
      (List.map (fun (id, v) -> Printf.sprintf "i%d=%d" id v) f.fl_witness)
  in
  Format.asprintf "unsound rewrite %a => %a at {%s}: lhs %d <> rhs %d" Ast.pp f.fl_before
    Ast.pp f.fl_after witness f.fl_lhs f.fl_rhs

(* Iterators the comparison must quantify over: those of either side
   (a sound rule may drop an iterator, e.g. [j/B = 0]; it must then be
   constant in it, which only quantifying over the union can refute). *)
let joint_iters before after =
  let module M = Map.Make (Int) in
  let add m it = M.add it.Ast.id it m in
  let m = List.fold_left add M.empty (Ast.iters before) in
  let m = List.fold_left add m (Ast.iters after) in
  List.map snd (M.bindings m)

(* Exhaustive-enumeration budget on the iteration product; past it we
   fall back to corners + a deterministic pseudo-random sample. *)
let exhaustive_budget = 4096
let sample_points = 64

(* SplitMix-style deterministic stream; no global state, no clock. *)
let mix seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let check_at ~lookup ~(rw : Simplify.rewrite) valuation iters values =
  let pairs = List.combine (List.map (fun it -> it.Ast.id) iters) values in
  let env id = match List.assoc_opt id pairs with Some v -> v | None -> 0 in
  let lhs = Ast.eval ~env ~lookup rw.Simplify.rw_before in
  let rhs = Ast.eval ~env ~lookup rw.Simplify.rw_after in
  if lhs = rhs then None
  else
    Some
      {
        fl_before = rw.Simplify.rw_before;
        fl_after = rw.Simplify.rw_after;
        fl_valuation = valuation;
        fl_witness = pairs;
        fl_lhs = lhs;
        fl_rhs = rhs;
      }

(* All assignments of [doms] (inclusive upper bounds), in mixed-radix
   order, applied to [f] until it returns [Some _]. *)
let enumerate doms f =
  let n = Array.length doms in
  let total = Array.fold_left ( * ) 1 doms in
  let values = Array.make n 0 in
  let rec go flat =
    if flat >= total then None
    else begin
      let rem = ref flat in
      for i = n - 1 downto 0 do
        values.(i) <- !rem mod doms.(i);
        rem := !rem / doms.(i)
      done;
      match f (Array.to_list values) with Some _ as r -> r | None -> go (flat + 1)
    end
  in
  go 0

let sample doms f =
  let n = Array.length doms in
  (* Corners: every iterator at an extreme; capped so the corner count
     stays bounded for wide expressions. *)
  let corner_iters = min n 12 in
  let corners =
    let rec go k acc =
      if k >= 1 lsl corner_iters then acc
      else
        let values =
          List.init n (fun i ->
              if i < corner_iters && k land (1 lsl i) <> 0 then doms.(i) - 1 else 0)
        in
        go (k + 1) (values :: acc)
    in
    go 0 []
  in
  let random =
    List.init sample_points (fun p ->
        List.init n (fun i ->
            let h = mix (Int64.of_int (((p * 31) + i) * 2654435761)) in
            Int64.to_int (Int64.rem (Int64.logand h 0x7FFFFFFFFFFFFFFFL) (Int64.of_int doms.(i)))))
  in
  List.fold_left
    (fun acc values -> match acc with Some _ -> acc | None -> f values)
    None (corners @ random)

let check_rewrite valuations (rw : Simplify.rewrite) =
  let iters = joint_iters rw.Simplify.rw_before rw.Simplify.rw_after in
  let mode = ref `Exhaustive in
  let failure =
    List.fold_left
      (fun acc valuation ->
        match acc with
        | Some _ -> acc
        | None -> (
            let lookup = Valuation.lookup valuation in
            match
              List.map (fun it -> Shape.Size.eval it.Ast.dom lookup) iters
            with
            | exception Failure _ -> None (* not instantiable: proves nothing *)
            | doms_list -> (
                (* Interval pre-check: sound intervals of semantically
                   equal expressions must intersect, so disjointness
                   alone disproves the rule — the enumeration below
                   then finds a concrete witness. *)
                let doms = Array.of_list doms_list in
                let total = Array.fold_left ( * ) 1 doms in
                let run =
                  if total <= exhaustive_budget then enumerate doms
                  else begin
                    mode := `Sampled;
                    sample doms
                  end
                in
                match run (fun values -> check_at ~lookup ~rw valuation iters values) with
                | Some _ as f -> f
                | None -> (
                    match
                      ( Interval.eval_opt ~lookup rw.Simplify.rw_before,
                        Interval.eval_opt ~lookup rw.Simplify.rw_after )
                    with
                    | Some a, Some b
                      when Interval.disjoint a ~lo:b.Interval.lo ~hi:b.Interval.hi ->
                        (* Can only be reached from a sampled run that
                           missed the witness; report the disjointness
                           with an empty witness. *)
                        Some
                          {
                            fl_before = rw.Simplify.rw_before;
                            fl_after = rw.Simplify.rw_after;
                            fl_valuation = valuation;
                            fl_witness = [];
                            fl_lhs = a.Interval.lo;
                            fl_rhs = b.Interval.lo;
                          }
                    | _ -> None))))
      None valuations
  in
  (failure, !mode)

let check_expr ctx e =
  let _, fired = Simplify.simplify_traced ctx e in
  let valuations = Simplify.valuations ctx in
  List.fold_left
    (fun report (rw : Simplify.rewrite) ->
      if rw.Simplify.rw_approx then
        { report with rp_checked = report.rp_checked + 1; rp_approx = report.rp_approx + 1 }
      else
        let failure, mode = check_rewrite valuations rw in
        {
          report with
          rp_checked = report.rp_checked + 1;
          rp_exhaustive = (report.rp_exhaustive + if mode = `Exhaustive then 1 else 0);
          rp_sampled = (report.rp_sampled + if mode = `Sampled then 1 else 0);
          rp_failures =
            (match failure with
            | Some f -> report.rp_failures @ [ f ]
            | None -> report.rp_failures);
        })
    empty_report fired

let check_operator ctx (op : Graph.operator) =
  List.fold_left
    (fun report e -> merge_reports report (check_expr ctx e))
    empty_report op.Graph.op_input_exprs
