(** Structural lint pass over complete operators.

    Catches pGraph pathologies that are legal enough to execute but
    indicate a miscompiled, hand-corrupted, or degenerate candidate:

    - [unknown-iterator]: an input expression or weight group uses an
      iterator the operator never declared (the executors would index
      an environment slot that is never written — or crash);
    - [dead-axis]: a spatial iterator reaches neither the input gather
      nor any weight, so the output is replicated along it;
    - [futile-reduction]: a reduction iterator occurs in fewer than two
      multiplied tensors (input counts once, each weight group once) —
      including the degenerate zero-occurrence case of a contraction
      label that never reaches any tensor and merely scales the output;
    - [degenerate-size-1]: a primitive in the trace whose size is 1
      under every valuation (Merge by 1, Stride by 1, Unfold of a
      1-wide window, Shift of a 1-sized dim, Reduce 1) — an identity
      the canonicalizer should have pruned;
    - [unreduced-expand]: an [Expand] deleted a dimension whose
      iterators then never reach a weight (spatial) or a second tensor
      (reduction), so the expansion only replicates or scales;
    - [all-border]: the {!Regions} certificate has interior fraction 0
      under some valuation — every element of every loop nest takes
      the guarded border path, so proof-guided specialization
      degenerates to the interpreter plus partitioning overhead;
    - [trace-mismatch]: the recorded trace does not replay;
    - [cost-drift]: the lint pass's own independent FLOPs/elements
      recomputation disagrees with [Pgraph.Flops] (cross-checking the
      estimators [Validate.Budget] prices from).

    The pass allocates no tensors. *)

type severity = Error | Warning

type finding = { lint_rule : string; lint_severity : severity; lint_detail : string }

val finding_to_string : finding -> string
(** One line, machine-readable: ["RULE severity: detail"]. *)

type cost = {
  c_flops : int;
  c_params : int;
  c_input_elems : int;
  c_output_elems : int;
  c_reduction_elems : int;
  c_gather_elems : int;
  c_peak_elems : int;
}

val cost : Pgraph.Graph.operator -> Shape.Valuation.t -> cost
(** Static cost recomputed directly from the operator structure,
    deliberately {e not} via [Pgraph.Flops], so the two can
    cross-check each other.  Raises [Failure] when not instantiable. *)

val check : ?valuations:Shape.Valuation.t list -> Pgraph.Graph.operator -> finding list
(** Run every rule.  [valuations] (default none) enable the
    size-dependent rules (degeneracy, cost drift); structural rules
    run regardless. *)

val errors : finding list -> finding list
(** Only the [Error]-severity findings. *)
