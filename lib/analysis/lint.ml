module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Prim = Pgraph.Prim
module Flops = Pgraph.Flops

type severity = Error | Warning

type finding = { lint_rule : string; lint_severity : severity; lint_detail : string }

let finding_to_string f =
  Printf.sprintf "%s %s: %s" f.lint_rule
    (match f.lint_severity with Error -> "error" | Warning -> "warning")
    f.lint_detail

let errors = List.filter (fun f -> f.lint_severity = Error)

type cost = {
  c_flops : int;
  c_params : int;
  c_input_elems : int;
  c_output_elems : int;
  c_reduction_elems : int;
  c_gather_elems : int;
  c_peak_elems : int;
}

(* Recomputed from the operator record alone — deliberately not via
   [Pgraph.Flops], so the [cost-drift] rule below cross-checks the two
   derivations against each other. *)
let cost (op : Graph.operator) valuation =
  let lookup = Valuation.lookup valuation in
  let prod sizes = List.fold_left (fun acc s -> acc * Size.eval s lookup) 1 sizes in
  let out = prod op.Graph.op_output_shape in
  let inp = prod op.Graph.op_input_shape in
  let red = prod (List.map (fun it -> it.Ast.dom) op.Graph.op_reductions) in
  let params =
    List.fold_left
      (fun acc grp -> acc + prod (List.map (fun it -> it.Ast.dom) grp))
      0 op.Graph.op_weights
  in
  let gather = out * red in
  {
    c_flops = 2 * out * red;
    c_params = params;
    c_input_elems = inp;
    c_output_elems = out;
    c_reduction_elems = red;
    c_gather_elems = gather;
    c_peak_elems = inp + out + params + gather;
  }

let it_name (it : Ast.iter) =
  (match it.Ast.role with Ast.Spatial -> "i" | Ast.Reduction -> "r")
  ^ string_of_int it.Ast.id

(* Where an iterator reaches: the input gather, and how many weight
   groups. *)
let reaches (op : Graph.operator) id =
  let in_expr e = List.exists (fun (j : Ast.iter) -> j.Ast.id = id) (Ast.iters e) in
  let in_input = List.exists in_expr op.Graph.op_input_exprs in
  let weight_groups =
    List.length
      (List.filter (List.exists (fun (j : Ast.iter) -> j.Ast.id = id)) op.Graph.op_weights)
  in
  (in_input, weight_groups)

let occurrences op id =
  let in_input, weight_groups = reaches op id in
  (if in_input then 1 else 0) + weight_groups

(* Mirrors the quality condition of [Graph.complete]: a reduction is a
   genuine data reduction when it sweeps the input, or contracts at
   least two weight tensors against each other. *)
let reduction_futile op id =
  let in_input, weight_groups = reaches op id in
  (not in_input) && weight_groups < 2

let finding rule severity detail =
  { lint_rule = rule; lint_severity = severity; lint_detail = detail }

(* --- Structural rules -------------------------------------------------- *)

let check_unknown_iterators (op : Graph.operator) =
  let declared = Hashtbl.create 16 in
  List.iter
    (fun (it : Ast.iter) -> Hashtbl.replace declared it.Ast.id ())
    (op.Graph.op_output_iters @ op.Graph.op_reductions);
  let used =
    List.concat_map Ast.iters op.Graph.op_input_exprs @ List.concat op.Graph.op_weights
  in
  List.filter_map
    (fun (it : Ast.iter) ->
      if Hashtbl.mem declared it.Ast.id then None
      else
        Some
          (finding "unknown-iterator" Error
             (Printf.sprintf "%s is used but never declared by the operator" (it_name it))))
    (List.sort_uniq Ast.compare_iter used)

let check_dead_axes (op : Graph.operator) =
  List.filter_map
    (fun (it : Ast.iter) ->
      if occurrences op it.Ast.id = 0 then
        Some
          (finding "dead-axis" Error
             (Printf.sprintf "output iterator %s reaches neither the input nor any weight: the output is replicated along it"
                (it_name it)))
      else None)
    op.Graph.op_output_iters

let check_futile_reductions (op : Graph.operator) =
  List.filter_map
    (fun (it : Ast.iter) ->
      if not (reduction_futile op it.Ast.id) then None
      else if occurrences op it.Ast.id = 0 then
        Some
          (finding "futile-reduction" Error
             (Printf.sprintf "reduction %s is a contraction label that reaches no tensor: it only scales the output by its domain"
                (it_name it)))
      else
        Some
          (finding "futile-reduction" Error
             (Printf.sprintf "reduction %s never sweeps the input and contracts a single weight tensor: it folds to a precomputable constant"
                (it_name it))))
    op.Graph.op_reductions

(* --- Trace replay: degenerate primitives & unreduced Expands ----------- *)

let size_is_one valuations s =
  valuations <> []
  && List.for_all
       (fun v ->
         match Size.eval s (Valuation.lookup v) with
         | exception Failure _ -> false
         | n -> n = 1)
       valuations

let replay ~valuations (op : Graph.operator) =
  let degenerate idx what =
    finding "degenerate-size-1" Warning
      (Printf.sprintf "trace step %d: %s" idx what)
  in
  let rec go g idx findings expands = function
    | [] -> Ok (List.rev findings, List.rev expands)
    | prim :: rest -> (
        let dims = Graph.frontier g in
        let dim_at p = List.nth_opt dims p in
        let findings =
          match prim with
          | Prim.Merge (_, b) when size_is_one valuations b ->
              degenerate idx "Merge by a block of size 1 is the identity" :: findings
          | Prim.Stride (_, s) when size_is_one valuations s ->
              degenerate idx "Stride by 1 is the identity" :: findings
          | Prim.Reduce n when size_is_one valuations n ->
              degenerate idx "Reduce over a domain of size 1 sums a single term" :: findings
          | Prim.Unfold (_, w) -> (
              match dim_at w with
              | Some d when size_is_one valuations d.Graph.size ->
                  degenerate idx "Unfold of a 1-wide window is the identity" :: findings
              | _ -> findings)
          | Prim.Shift p -> (
              match dim_at p with
              | Some d when size_is_one valuations d.Graph.size ->
                  degenerate idx "Shift of a size-1 dim is the identity" :: findings
              | _ -> findings)
          | _ -> findings
        in
        let expands =
          match prim with
          | Prim.Expand p -> (
              match dim_at p with
              | Some d -> (idx, Ast.iters d.Graph.expr) :: expands
              | None -> expands)
          | _ -> expands
        in
        match Graph.apply g prim with
        | Error msg -> Error (idx, prim, msg)
        | Ok g' -> go g' (idx + 1) findings expands rest)
  in
  go (Graph.init op.Graph.op_output_shape) 0 [] [] op.Graph.op_trace

let check_trace ~valuations (op : Graph.operator) =
  match replay ~valuations op with
  | Error (idx, prim, msg) ->
      [
        finding "trace-mismatch" Error
          (Printf.sprintf "trace step %d (%s) does not replay: %s" idx
             (Prim.to_string prim) msg);
      ]
  | Ok (degenerate, expands) ->
      let unreduced =
        List.concat_map
          (fun (idx, iters) ->
            List.filter_map
              (fun (it : Ast.iter) ->
                match (it.Ast.role, occurrences op it.Ast.id) with
                | Ast.Spatial, 0 ->
                    Some
                      (finding "unreduced-expand" Error
                         (Printf.sprintf "trace step %d: Expand deleted the only use of %s; the output is replicated along it"
                            idx (it_name it)))
                | Ast.Reduction, _ when reduction_futile op it.Ast.id ->
                    Some
                      (finding "unreduced-expand" Error
                         (Printf.sprintf "trace step %d: Expand left reduction %s uncontracted; the reduction merely scales the output"
                            idx (it_name it)))
                | _ -> None)
              iters)
          expands
      in
      degenerate @ unreduced

(* --- Size-dependent rules ---------------------------------------------- *)

let check_degenerate_reductions ~valuations (op : Graph.operator) =
  List.filter_map
    (fun (it : Ast.iter) ->
      if size_is_one valuations it.Ast.dom then
        Some
          (finding "degenerate-size-1" Warning
             (Printf.sprintf "reduction %s has domain 1 under every valuation" (it_name it)))
      else None)
    op.Graph.op_reductions

(* A certificate whose interior fraction is 0 means the specializer
   has no checkless region at all: every element of every loop nest
   runs the guarded border path, so specialization degenerates to the
   interpreter plus partitioning overhead.  Legal, but a sign the
   candidate is all padding (or that the interval analysis lost it). *)
let check_all_border ~valuations (op : Graph.operator) =
  List.filter_map
    (fun v ->
      match Regions.of_staged (Lower.Staged_exec.compile op v) with
      | exception _ -> None
      | cert ->
          if cert.Regions.rc_interior_fraction = 0.0 then
            Some
              (finding "all-border" Warning
                 (Printf.sprintf
                    "certificate has interior fraction 0 (%s): every element takes the guarded border path; specialization cannot help"
                    (Regions.summary_to_string cert)))
          else None)
    valuations

let check_cost_drift ~valuations (op : Graph.operator) =
  List.concat_map
    (fun v ->
      match cost op v with
      | exception Failure _ -> []
      | c ->
          let drift what ours theirs =
            if ours = theirs then None
            else
              Some
                (finding "cost-drift" Error
                   (Printf.sprintf "%s: lint recomputation %d <> Pgraph.Flops %d" what ours
                      theirs))
          in
          List.filter_map Fun.id
            [
              drift "flops" c.c_flops (Flops.naive_flops op v);
              drift "params" c.c_params (Flops.params op v);
              drift "gather elems" c.c_gather_elems (Flops.gather_elems op v);
              drift "peak elems" c.c_peak_elems (Flops.peak_footprint op v);
            ])
    valuations

let check ?(valuations = []) (op : Graph.operator) =
  check_unknown_iterators op @ check_dead_axes op @ check_futile_reductions op
  @ check_trace ~valuations op
  @ check_degenerate_reductions ~valuations op
  @ check_all_border ~valuations op
  @ check_cost_drift ~valuations op
