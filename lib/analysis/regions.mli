(** Iteration-space partition certificates.

    {!Verify} proves {e which accesses} of a staged program can fall
    out of bounds; this pass turns those proofs into {e where}: for
    every loop nest of {!Lower.Staged_exec.forward} (each
    materialization stage, then the final contraction) it partitions
    the positional iteration space into a maximal {e interior} box —
    where every access of every factor is provably in-window — and
    explicit {e border} strips, each carrying the exact set of accesses
    that may clip inside it.  {!Lower.Specialize} compiles the interior
    checkless and guards only the strips' listed accesses.

    Everything here is arithmetic on
    {!Lower.Staged_exec.symbolic_plan}: no tensor is allocated
    (provable via [Nd.Tensor.allocations]), so certificates are cheap
    enough to build during search. *)

type nest_sym = Stage of Lower.Staged_exec.stage_sym | Final of Lower.Staged_exec.final_sym

val nests : Lower.Staged_exec.t -> nest_sym array
(** The executor's loop nests in execution order: one [Stage] per
    materialization stage, then [Final]. *)

val nest_axes : nest_sym -> int array
(** The nest's positional box (reduction iterators are never
    partitioned). *)

val access_count : nest_sym -> int

val access_within :
  lookup:(Shape.Var.t -> int) ->
  nest_sym ->
  lo:int array ->
  hi:int array ->
  int ->
  bool
(** [access_within ~lookup nest ~lo ~hi idx]: is the [idx]th access
    (factor-major, executor order — the order
    {!Lower.Staged_exec.access_plan} flattens to and
    {!Verify.region.rg_dim} counts in) provably inside its window at
    every position of the inclusive box [lo, hi]?  Stage accesses are
    decided exactly (they are linear in their position axis); final
    accesses soundly, in the {!Interval} domain.  This single decision
    procedure is shared with {!Certify}, which re-derives every piece
    of a plan against it. *)

val decompose :
  lookup:(Shape.Var.t -> int) -> nest_sym -> Lower.Specialize.partition
(** The certified partition of one nest: interior box (when
    non-empty), onion border strips with per-strip clip sets, exact
    cover of the box.  A strip where no access can clip is promoted to
    interior. *)

type nest_summary = {
  ns_what : string;  (** ["stage k"] or ["final"] *)
  ns_axes : int array;
  ns_pieces : int;
  ns_strips : int;  (** border (guarded) pieces *)
  ns_interior_fraction : float;
}

type t = {
  rc_plan : Lower.Specialize.plan;
  rc_nests : nest_summary array;
  rc_verdict : Verify.verdict;  (** {!Verify.program} of the operator *)
  rc_interior_fraction : float;
      (** volume-weighted over all nests: the fraction of executed
          elements that run the checkless path *)
}

val of_staged : Lower.Staged_exec.t -> t
(** Builds the full certificate for a compiled staged program.  Raises
    [Failure] only if the operator is not instantiable under its
    valuation (impossible for a successfully compiled program). *)

val strips : t -> int
(** Total border strips across all nests. *)

val summary_to_string : t -> string
(** One machine-readable line:
    [verdict=proved|padded|violation interior=F strips=N nests=K]. *)
