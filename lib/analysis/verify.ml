module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Staged = Lower.Staged_exec

type region = {
  rg_what : string;
  rg_dim : int;
  rg_expr : Ast.t;
  rg_window : int * int;
  rg_below : (int * int) option;
  rg_above : (int * int) option;
}

type diagnostic = {
  dg_what : string;
  dg_dim : int;
  dg_expr : Ast.t;
  dg_range : Interval.t;
  dg_window : int * int;
  dg_reason : string;
}

type verdict =
  | Proved
  | Padded of region list
  | Violation of diagnostic

let pp_range ppf (lo, hi) = Format.fprintf ppf "[%d, %d]" lo hi

let region_to_string r =
  let side name = function
    | None -> ""
    | Some rng -> Format.asprintf " %s=%a" name pp_range rng
  in
  Format.asprintf "%s dim %d expr %a window %a%s%s" r.rg_what r.rg_dim Ast.pp r.rg_expr
    pp_range r.rg_window
    (side "below" r.rg_below)
    (side "above" r.rg_above)

let diagnostic_to_string d =
  Format.asprintf "%s dim %d expr %a range %a window %a: %s" d.dg_what d.dg_dim Ast.pp
    d.dg_expr Interval.pp d.dg_range pp_range d.dg_window d.dg_reason

let verdict_to_string = function
  | Proved -> "proved"
  | Padded regions ->
      Format.asprintf "padded (%d region%s): %s" (List.length regions)
        (if List.length regions = 1 then "" else "s")
        (String.concat "; " (List.map region_to_string regions))
  | Violation d -> "violation: " ^ diagnostic_to_string d

(* Classify one access: its value interval against the inclusive
   window [lo, hi]. *)
let check ~what ~dim ~expr iv ~lo ~hi =
  if Interval.within iv ~lo ~hi then `Proved
  else if Interval.disjoint iv ~lo ~hi then
    `Violation
      {
        dg_what = what;
        dg_dim = dim;
        dg_expr = expr;
        dg_range = iv;
        dg_window = (lo, hi);
        dg_reason = "access range never intersects the window";
      }
  else
    `Padded
      {
        rg_what = what;
        rg_dim = dim;
        rg_expr = expr;
        rg_window = (lo, hi);
        rg_below = (if iv.Interval.lo < lo then Some (iv.Interval.lo, lo - 1) else None);
        rg_above = (if iv.Interval.hi > hi then Some (hi + 1, iv.Interval.hi) else None);
      }

(* Fold classified accesses into a verdict: first violation wins,
   otherwise collect the padded regions. *)
let conclude results =
  let rec go regions = function
    | [] -> if regions = [] then Proved else Padded (List.rev regions)
    | `Proved :: rest -> go regions rest
    | `Padded r :: rest -> go (r :: regions) rest
    | `Violation d :: _ -> Violation d
  in
  go [] results

let operator (op : Graph.operator) valuation =
  let lookup = Valuation.lookup valuation in
  let inputs =
    List.mapi
      (fun dim (expr, size) ->
        let extent = Size.eval size lookup in
        let iv = Interval.eval ~lookup expr in
        check ~what:"input" ~dim ~expr iv ~lo:0 ~hi:(extent - 1))
      (List.combine op.Graph.op_input_exprs op.Graph.op_input_shape)
  in
  (* Weight tensors are indexed by bare iterators over exactly their
     domain, so in-bounds holds whenever the iterators are genuine —
     but a corrupted trace can carry an arbitrary expression here, and
     unlike the input gather the reference executor does NOT clip
     weight offsets, so a disproof matters. *)
  let weights =
    List.concat
      (List.mapi
         (fun g grp ->
           List.mapi
             (fun dim it ->
               let extent = Size.eval it.Ast.dom lookup in
               let expr = Ast.iter it in
               let iv = Interval.eval ~lookup expr in
               check
                 ~what:(Printf.sprintf "weight %d" g)
                 ~dim ~expr iv ~lo:0 ~hi:(extent - 1))
             grp)
         op.Graph.op_weights)
  in
  conclude (inputs @ weights)

let staged (op : Graph.operator) valuation =
  let lookup = Valuation.lookup valuation in
  let compiled = Staged.compile op valuation in
  let stages = Staged.access_plan compiled in
  let n_stages = List.length stages in
  let results =
    List.concat
      (List.mapi
         (fun k accesses ->
           let what =
             if k = n_stages - 1 then "final" else Printf.sprintf "stage %d" k
           in
           List.mapi
             (fun dim (a : Staged.access) ->
               let iv =
                 match a.Staged.acc_values with
                 | Some (lo, hi) -> Interval.make lo hi
                 | None -> Interval.eval ~lookup a.Staged.acc_expr
               in
               check ~what ~dim ~expr:a.Staged.acc_expr iv ~lo:a.Staged.acc_lo
                 ~hi:(a.Staged.acc_lo + a.Staged.acc_extent - 1))
             accesses)
         stages)
  in
  conclude results

let program op valuation =
  match operator op valuation with
  | Violation _ as v -> v
  | direct -> (
      match (direct, staged op valuation) with
      | _, (Violation _ as v) -> v
      | Proved, Proved -> Proved
      | Padded a, Proved | Proved, Padded a -> Padded a
      | Padded a, Padded b -> Padded (a @ b)
      | Violation _, _ -> assert false)

let program_opt op valuation = try Some (program op valuation) with Failure _ -> None

let admit op valuations =
  let rec go = function
    | [] -> Ok ()
    | v :: rest -> (
        match program_opt op v with
        | None | Some Proved | Some (Padded _) -> go rest
        | Some (Violation d) ->
            Error (Robust.Guard.Static_violation (diagnostic_to_string d)))
  in
  go valuations
