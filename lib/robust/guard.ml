type kind =
  | Eval_error of string
  | Non_finite
  | Timeout
  | Injected
  | Over_budget of string
  | Backend_mismatch of string
  | Diverged of string
  | Static_violation of string
  | Counterexample of string

let kind_label = function
  | Eval_error _ -> "eval_error"
  | Non_finite -> "non_finite"
  | Timeout -> "timeout"
  | Injected -> "injected"
  | Over_budget _ -> "over_budget"
  | Backend_mismatch _ -> "backend_mismatch"
  | Diverged _ -> "diverged"
  | Static_violation _ -> "static_violation"
  | Counterexample _ -> "counterexample"

(* Failures that are a deterministic function of the candidate itself:
   a candidate over its resource budget, a miscompiling backend, a
   diverging training run, or a statically disproven bounds obligation
   fails identically on every attempt, so retrying only burns the
   evaluation budget. *)
let permanent = function
  | Over_budget _ | Backend_mismatch _ | Diverged _ | Static_violation _ | Counterexample _ ->
      true
  | Eval_error _ | Non_finite | Timeout | Injected -> false

exception Reject of kind

type policy = {
  retries : int;
  backoff : float;
  backoff_factor : float;
  max_backoff : float;
  jitter : float;
  jitter_seed : int;
  timeout : float option;
}

let default_policy =
  {
    retries = 2;
    backoff = 0.0;
    backoff_factor = 2.0;
    max_backoff = 1.0;
    jitter = 0.0;
    jitter_seed = 0;
    timeout = None;
  }

let policy ?(retries = default_policy.retries) ?(backoff = default_policy.backoff)
    ?(backoff_factor = default_policy.backoff_factor)
    ?(max_backoff = default_policy.max_backoff) ?(jitter = default_policy.jitter)
    ?(jitter_seed = default_policy.jitter_seed) ?timeout () =
  if not (jitter >= 0.0 && jitter <= 1.0) then
    invalid_arg "Guard.policy: jitter must be in [0, 1]";
  {
    retries = max 0 retries;
    backoff;
    backoff_factor;
    max_backoff;
    jitter;
    jitter_seed;
    timeout;
  }

(* splitmix64 finalizer (same mixer as {!Inject} and the nd PRNG),
   re-implemented locally so the jitter stream stays a pure function of
   (jitter_seed, key, retry) with no shared state. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, 1) from the top 53 bits. *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let jitter_unit ~seed ~key ~retry =
  let h = ref (mix64 (Int64.of_int ((seed * 0x9e3779b9) lxor 0x6a09e667))) in
  String.iter
    (fun c ->
      h := mix64 (Int64.add (Int64.mul !h 0x100000001b3L) (Int64.of_int (Char.code c))))
    key;
  unit_float (mix64 (Int64.add !h (Int64.of_int retry)))

(* Deterministic seeded jitter: without it, N callers that failed on
   the same shared resource at the same moment all sleep the *same*
   schedule and stampede back in lockstep — exactly what a serving
   queue sees.  The per-key hash decorrelates the schedules while
   keeping every run bit-for-bit reproducible under a fixed seed. *)
let delay ?(key = "") p ~retry =
  if p.backoff <= 0.0 || retry < 1 then 0.0
  else
    let base =
      Float.min p.max_backoff (p.backoff *. (p.backoff_factor ** float_of_int (retry - 1)))
    in
    if p.jitter <= 0.0 then base
    else
      let u = jitter_unit ~seed:p.jitter_seed ~key ~retry in
      let scaled = base *. (1.0 +. (p.jitter *. (u -. 0.5))) in
      Float.min p.max_backoff scaled

let delays ?key p = List.init (max 0 p.retries) (fun i -> delay ?key p ~retry:(i + 1))

type outcome = {
  result : (float, kind) Stdlib.result;
  attempts : int;
  failures : kind list;
  slept : float;
}

let run ?(policy = default_policy) ?(inject = Inject.none) ?(sleep = Unix.sleepf)
    ?(now = Unix.gettimeofday) ?cancel ~key f =
  let externally_cancelled () =
    match cancel with Some c -> Cancel.is_cancelled c | None -> false
  in
  let attempt_once attempt =
    if Inject.should_fail inject ~key ~attempt then begin
      Inject.note inject;
      Error Injected
    end
    else
      let t0 = match policy.timeout with Some _ -> now () | None -> 0.0 in
      (* The attempt's token: the policy budget becomes a *preemptive*
         deadline the thunk polls, parented on the external shutdown
         token so either one stops the evaluation mid-flight. *)
      let token =
        match policy.timeout with
        | Some budget -> Cancel.of_deadline ?parent:cancel ~clock:now (t0 +. budget)
        | None -> (
            match cancel with Some c -> c | None -> Cancel.create ~clock:now ())
      in
      let over_budget () =
        match policy.timeout with
        | Some budget -> now () -. t0 > budget
        | None -> false
      in
      match f token with
      | exception (Cancel.Cancelled _ as e) when externally_cancelled () ->
          (* Shutdown, not a verdict on this candidate: let the search
             loop see it and stop at its own safe point. *)
          raise e
      | exception Cancel.Cancelled _ -> Error Timeout
      | exception Inject.Fault _ ->
          Inject.note inject;
          Error Injected
      | exception Reject k -> Error k
      | exception e ->
          (* An exception *after* the budget expired is a symptom of the
             overrun (allocation failure, a cascading invariant break),
             not an independent evaluation bug: classify it as the
             timeout it is. *)
          if over_budget () then Error Timeout
          else Error (Eval_error (Printexc.to_string e))
      | r ->
          (* Post-hoc check kept for thunks that never poll. *)
          if over_budget () then Error Timeout
          else if Float.is_finite r then Ok r
          else Error Non_finite
  in
  let retries = max 0 policy.retries in
  let rec go attempt failures slept =
    (match cancel with Some c -> Cancel.check c | None -> ());
    let slept =
      if attempt = 0 then slept
      else begin
        let d = delay ~key policy ~retry:attempt in
        if d > 0.0 then sleep d;
        slept +. d
      end
    in
    match attempt_once attempt with
    | Ok r -> { result = Ok r; attempts = attempt + 1; failures = List.rev failures; slept }
    | Error k ->
        if attempt >= retries || permanent k then
          { result = Error k; attempts = attempt + 1; failures = List.rev (k :: failures); slept }
        else go (attempt + 1) (k :: failures) slept
  in
  go 0 [] 0.0
