type kind =
  | Eval_error of string
  | Non_finite
  | Timeout
  | Injected
  | Over_budget of string
  | Backend_mismatch of string
  | Diverged of string
  | Static_violation of string
  | Counterexample of string

let kind_label = function
  | Eval_error _ -> "eval_error"
  | Non_finite -> "non_finite"
  | Timeout -> "timeout"
  | Injected -> "injected"
  | Over_budget _ -> "over_budget"
  | Backend_mismatch _ -> "backend_mismatch"
  | Diverged _ -> "diverged"
  | Static_violation _ -> "static_violation"
  | Counterexample _ -> "counterexample"

(* Failures that are a deterministic function of the candidate itself:
   a candidate over its resource budget, a miscompiling backend, a
   diverging training run, or a statically disproven bounds obligation
   fails identically on every attempt, so retrying only burns the
   evaluation budget. *)
let permanent = function
  | Over_budget _ | Backend_mismatch _ | Diverged _ | Static_violation _ | Counterexample _ ->
      true
  | Eval_error _ | Non_finite | Timeout | Injected -> false

exception Reject of kind

type policy = {
  retries : int;
  backoff : float;
  backoff_factor : float;
  max_backoff : float;
  timeout : float option;
}

let default_policy =
  { retries = 2; backoff = 0.0; backoff_factor = 2.0; max_backoff = 1.0; timeout = None }

let policy ?(retries = default_policy.retries) ?(backoff = default_policy.backoff)
    ?(backoff_factor = default_policy.backoff_factor)
    ?(max_backoff = default_policy.max_backoff) ?timeout () =
  { retries = max 0 retries; backoff; backoff_factor; max_backoff; timeout }

let delay p ~retry =
  if p.backoff <= 0.0 || retry < 1 then 0.0
  else Float.min p.max_backoff (p.backoff *. (p.backoff_factor ** float_of_int (retry - 1)))

let delays p = List.init (max 0 p.retries) (fun i -> delay p ~retry:(i + 1))

type outcome = {
  result : (float, kind) Stdlib.result;
  attempts : int;
  failures : kind list;
  slept : float;
}

let run ?(policy = default_policy) ?(inject = Inject.none) ?(sleep = Unix.sleepf)
    ?(now = Unix.gettimeofday) ?cancel ~key f =
  let externally_cancelled () =
    match cancel with Some c -> Cancel.is_cancelled c | None -> false
  in
  let attempt_once attempt =
    if Inject.should_fail inject ~key ~attempt then begin
      Inject.note inject;
      Error Injected
    end
    else
      let t0 = match policy.timeout with Some _ -> now () | None -> 0.0 in
      (* The attempt's token: the policy budget becomes a *preemptive*
         deadline the thunk polls, parented on the external shutdown
         token so either one stops the evaluation mid-flight. *)
      let token =
        match policy.timeout with
        | Some budget -> Cancel.of_deadline ?parent:cancel ~clock:now (t0 +. budget)
        | None -> (
            match cancel with Some c -> c | None -> Cancel.create ~clock:now ())
      in
      let over_budget () =
        match policy.timeout with
        | Some budget -> now () -. t0 > budget
        | None -> false
      in
      match f token with
      | exception (Cancel.Cancelled _ as e) when externally_cancelled () ->
          (* Shutdown, not a verdict on this candidate: let the search
             loop see it and stop at its own safe point. *)
          raise e
      | exception Cancel.Cancelled _ -> Error Timeout
      | exception Inject.Fault _ ->
          Inject.note inject;
          Error Injected
      | exception Reject k -> Error k
      | exception e ->
          (* An exception *after* the budget expired is a symptom of the
             overrun (allocation failure, a cascading invariant break),
             not an independent evaluation bug: classify it as the
             timeout it is. *)
          if over_budget () then Error Timeout
          else Error (Eval_error (Printexc.to_string e))
      | r ->
          (* Post-hoc check kept for thunks that never poll. *)
          if over_budget () then Error Timeout
          else if Float.is_finite r then Ok r
          else Error Non_finite
  in
  let retries = max 0 policy.retries in
  let rec go attempt failures slept =
    (match cancel with Some c -> Cancel.check c | None -> ());
    let slept =
      if attempt = 0 then slept
      else begin
        let d = delay policy ~retry:attempt in
        if d > 0.0 then sleep d;
        slept +. d
      end
    in
    match attempt_once attempt with
    | Ok r -> { result = Ok r; attempts = attempt + 1; failures = List.rev failures; slept }
    | Error k ->
        if attempt >= retries || permanent k then
          { result = Error k; attempts = attempt + 1; failures = List.rev (k :: failures); slept }
        else go (attempt + 1) (k :: failures) slept
  in
  go 0 [] 0.0
