exception Fault of string

type t = {
  rate : float;
  seed : int;
  max_failures : int;
  injected : int Atomic.t;
}

let none = { rate = 0.0; seed = 0; max_failures = 1; injected = Atomic.make 0 }

let create ?(seed = 0) ?(max_failures = 2) ~rate () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Inject.create: rate must be in [0, 1]";
  { rate; seed; max_failures = max 1 max_failures; injected = Atomic.make 0 }

let active t = t.rate > 0.0

(* splitmix64 finalizer: the same mixer the nd PRNG uses, re-implemented
   here so the library stays dependency-free. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_key t key =
  let h = ref (mix64 (Int64.of_int ((t.seed * 0x9e3779b9) lxor 0x6a09e667))) in
  String.iter
    (fun c ->
      h := mix64 (Int64.add (Int64.mul !h 0x100000001b3L) (Int64.of_int (Char.code c))))
    key;
  !h

(* Top 53 bits of the hash as a uniform float in [0, 1). *)
let to_unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let failures_planned t ~key =
  if t.rate <= 0.0 then 0
  else
    let h = hash_key t key in
    if to_unit_float h >= t.rate then 0
    else 1 + Int64.to_int (Int64.rem (Int64.shift_right_logical (mix64 h) 17)
                             (Int64.of_int t.max_failures))

let should_fail t ~key ~attempt = attempt < failures_planned t ~key

let note t = Atomic.incr t.injected

let fire t ~key ~attempt =
  if should_fail t ~key ~attempt then begin
    note t;
    raise (Fault key)
  end

let injected_count t = Atomic.get t.injected

let seed t = t.seed

(* Derived injector for shard [index]: same rate and failure depth, but
   the seed is [seed XOR mix(index)] (mixed so that adjacent indices do
   not produce correlated fault schedules), giving every shard an
   independent deterministic fault stream.  Splitting the disabled
   injector stays disabled; the fault counter is fresh, so each shard
   accounts its own deliveries. *)
let split t ~index =
  if index < 0 then invalid_arg "Inject.split: index must be >= 0";
  if not (t.rate > 0.0) then t
  else
    let mixed = mix64 (Int64.of_int ((index + 1) * 0x9e3779b9)) in
    {
      t with
      seed = t.seed lxor Int64.to_int (Int64.logand mixed 0x3fffffffffffffffL);
      injected = Atomic.make 0;
    }
