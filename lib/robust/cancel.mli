(** Cooperative cancellation tokens with optional deadlines.

    The search stack evaluates thousands of candidates; a single
    pathological one (a hung or quadratically slow einsum) must not
    block a domain forever, and an operator-initiated shutdown
    (Ctrl-C) must stop the whole stack at the next safe point.  Both
    needs share one mechanism: a {e token} that is flipped exactly once
    — explicitly by {!cancel}, or implicitly when its deadline passes —
    and that long-running code {e polls} at safe points ({!check} /
    {!is_cancelled}).  This is the poll-at-safe-points discipline of
    structured-concurrency runtimes (Eio cancellation contexts, Trio
    cancel scopes), without a scheduler: plain domains poll the token.

    Tokens form a tree: a child created with [?parent] observes the
    parent's cancellation (and the parent's deadline) on its next poll,
    while cancelling the child leaves the parent untouched.
    {!Robust.Guard} uses this to derive a per-attempt deadline token
    from the CLI's root shutdown token: either tripping stops the
    evaluation, but only the root one stops the search.

    All operations are thread-safe (a single atomic cell per token) and
    the clock is injectable, so deadline behaviour is testable with a
    fake clock and no real waiting.  Polling an untripped token without
    a deadline costs one atomic load plus a parent walk; once tripped,
    the verdict is cached locally and polls stop consulting the clock
    or the parent. *)

(** Why the token tripped. *)
type reason =
  | Cancelled_by of string  (** explicit {!cancel}; payload names the caller *)
  | Deadline_exceeded of float  (** the deadline (absolute clock time) passed *)

exception Cancelled of reason
(** Raised by {!check}.  Escapes guarded evaluation only when the
    {e external} token tripped (shutdown); a per-attempt deadline is
    classified as [Robust.Guard.Timeout] instead. *)

val reason_to_string : reason -> string

type t

val create : ?parent:t -> ?clock:(unit -> float) -> unit -> t
(** A fresh untripped token with no deadline.  [parent]'s cancellation
    (explicit or deadline) is inherited: the child reports cancelled on
    any poll after the parent trips, with the parent's reason.  [clock]
    (default [Unix.gettimeofday]) is only consulted by deadline
    checks. *)

val of_deadline : ?parent:t -> ?clock:(unit -> float) -> float -> t
(** [of_deadline d] additionally trips once [clock () >= d].  The
    deadline is evaluated lazily at poll time — no timers, no threads —
    so the preemption latency is bounded by the caller's poll
    interval. *)

val with_timeout : ?parent:t -> ?clock:(unit -> float) -> float -> t
(** [with_timeout s] is [of_deadline (clock () + s)]. *)

val cancel : ?reason:string -> t -> unit
(** Trip the token explicitly.  Idempotent; the first reason (explicit
    or deadline) wins and is what every subsequent poll reports.  Safe
    to call from any domain and from signal handlers. *)

val is_cancelled : t -> bool
(** Poll: [true] once this token, its deadline, or any ancestor has
    tripped. *)

val check : t -> unit
(** Poll, raising {!Cancelled} with the (first) reason if tripped.
    This is the standard safe-point call in loops. *)

val status : t -> reason option
(** Poll, returning the reason instead of raising. *)

val deadline : t -> float option
(** The token's own deadline (not consulting ancestors). *)

val remaining : t -> float option
(** Seconds until the deadline ([Some] negative once passed); [None]
    when the token has no deadline. *)
