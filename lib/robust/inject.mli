(** Seeded, rate-controlled fault injection.

    Long searches evaluate thousands of candidates, and in the real
    system individual evaluations fail for reasons outside the search's
    control.  This module simulates those failures deterministically so
    the containment machinery ({!Guard}, quarantine, checkpointing) can
    be tested and benchmarked without flaky sleeps or real crashes.

    For every key (an operator signature), a fixed number of leading
    attempts fail: [0] with probability [1 - rate], otherwise a value in
    [1 .. max_failures] — both derived by hashing [(seed, key)], so the
    fault schedule depends only on the injector's configuration, never
    on evaluation order or parallelism.  With [max_failures <= retries]
    of the surrounding {!Guard.policy}, every candidate eventually
    succeeds and a fault-injected search returns exactly the fault-free
    results. *)

type t

exception Fault of string
(** Raised by {!fire}; carries the key.  {!Guard.run} classifies it as
    [Injected] wherever it escapes an evaluation thunk. *)

val none : t
(** The disabled injector: never fails, counts nothing. *)

val create : ?seed:int -> ?max_failures:int -> rate:float -> unit -> t
(** [create ~rate ()] fails a [rate] fraction of keys (default seed 0).
    Each failing key fails on its first [1 .. max_failures] attempts
    (default 2) and succeeds afterwards.  Raises [Invalid_argument]
    unless [0 <= rate <= 1]. *)

val active : t -> bool
(** [false] only for {!none} and zero-rate injectors. *)

val failures_planned : t -> key:string -> int
(** Number of leading attempts that fail for [key].  Pure. *)

val should_fail : t -> key:string -> attempt:int -> bool
(** [should_fail t ~key ~attempt] — attempts are numbered from 0. *)

val fire : t -> key:string -> attempt:int -> unit
(** Raise {!Fault} (and count it) when [should_fail]; otherwise return.
    For callers that want the fault delivered through the thunk rather
    than checked by {!Guard.run}. *)

val note : t -> unit
(** Count one injected fault.  Used by {!Guard.run}; thread-safe. *)

val injected_count : t -> int
(** Total faults delivered by this injector, across all domains. *)

val seed : t -> int
(** The injector's seed (after any {!split} derivation). *)

val split : t -> index:int -> t
(** An independent injector for shard [index]: same rate and failure
    depth, seed derived as [seed XOR mix(index)], fresh fault counter.
    Deterministic — splitting the same injector at the same index
    always yields the same fault schedule — and distinct indices get
    uncorrelated schedules, so parallel shard workers do not replay an
    identical fault stream.  {!none} (and any zero-rate injector) splits
    to itself.  Raises [Invalid_argument] when [index < 0]. *)
