(* Cooperative cancellation tokens.

   A token is a single atomic cell holding the first cancellation
   reason, plus an optional deadline evaluated lazily against the
   token's own clock and an optional parent whose cancellation is
   inherited.  There is no registration or callback machinery: code
   that wants to stop promptly *polls* the token at safe points
   (chunk claims in the pool, per-output-chunk in einsum, per stage in
   the staged executor, per step in training, per iteration in MCTS).
   Polling an untripped, deadline-free token is one [Atomic.get] plus a
   parent walk, so poll points are cheap enough for hot loops. *)

type reason = Cancelled_by of string | Deadline_exceeded of float

exception Cancelled of reason

let reason_to_string = function
  | Cancelled_by who -> Printf.sprintf "cancelled by %s" who
  | Deadline_exceeded d -> Printf.sprintf "deadline %.6f exceeded" d

type t = {
  clock : unit -> float;
  deadline : float option;
  cell : reason option Atomic.t;
  parent : t option;
}

let create ?parent ?(clock = Unix.gettimeofday) () =
  { clock; deadline = None; cell = Atomic.make None; parent }

let of_deadline ?parent ?(clock = Unix.gettimeofday) deadline =
  { clock; deadline = Some deadline; cell = Atomic.make None; parent }

let with_timeout ?parent ?(clock = Unix.gettimeofday) seconds =
  of_deadline ?parent ~clock (clock () +. seconds)

(* First reason wins: an explicit [cancel] racing a deadline observation
   resolves to whichever lands the compare-and-set, and every later
   reader sees that one reason forever. *)
let cancel ?(reason = "caller") t =
  ignore (Atomic.compare_and_set t.cell None (Some (Cancelled_by reason)))

let rec status t =
  match Atomic.get t.cell with
  | Some _ as r -> r
  | None -> (
      let observed =
        match t.deadline with
        | Some d when t.clock () >= d -> Some (Deadline_exceeded d)
        | Some _ | None -> ( match t.parent with Some p -> status p | None -> None)
      in
      match observed with
      | None -> None
      | Some reason ->
          (* Cache the verdict locally so later polls stop consulting
             the clock or walking the parent chain. *)
          ignore (Atomic.compare_and_set t.cell None (Some reason));
          Atomic.get t.cell)

let is_cancelled t = status t <> None
let check t = match status t with Some r -> raise (Cancelled r) | None -> ()
let deadline t = t.deadline

let remaining t =
  match t.deadline with Some d -> Some (d -. t.clock ()) | None -> None
