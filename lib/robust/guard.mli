(** Exception containment for candidate evaluation.

    The search evaluates thousands of synthesized candidates, and in
    the real system (tuning frameworks such as AutoTVM, or Syno's own
    distributed search) individual evaluations routinely fail — invalid
    lowerings raise, training diverges to NaN, measurements time out —
    without aborting the run.  [Guard.run] wraps one evaluation thunk
    with that policy: every failure is caught and classified, failed
    attempts are retried a bounded number of times with deterministic
    exponential backoff, and the final outcome reports exactly what
    happened so callers can quarantine the candidate and keep going. *)

(** Why an attempt failed. *)
type kind =
  | Eval_error of string  (** the thunk raised; payload is [Printexc.to_string] *)
  | Non_finite  (** the thunk returned NaN or an infinity *)
  | Timeout  (** the attempt exceeded the wall-clock budget *)
  | Injected  (** a fault delivered by {!Inject} *)
  | Over_budget of string
      (** the candidate's estimated peak resource use exceeds the
          admission budget (rejected before any allocation) *)
  | Backend_mismatch of string
      (** the differential validator caught the lowering backends
          disagreeing (or producing NaN/Inf on finite inputs) *)
  | Diverged of string
      (** a training sentinel aborted the evaluation: NaN/Inf loss or
          sustained loss blow-up *)
  | Static_violation of string
      (** the static IR verifier ({!Analysis.Verify}) disproved a
          bounds obligation or the lint pass found a structural error —
          rejected before any tensor allocation *)
  | Counterexample of string
      (** the candidate failed replay against a persisted
          counterexample from the corpus (a previously distilled
          differential or static failure) — the cheapest permanent
          rejection of all *)

val kind_label : kind -> string
(** Stable short name ([eval_error], [non_finite], [timeout],
    [injected], [over_budget], [backend_mismatch], [diverged],
    [static_violation], [counterexample]) for aggregation and
    serialization. *)

val permanent : kind -> bool
(** Whether the failure is a deterministic property of the candidate
    ([Over_budget], [Backend_mismatch], [Diverged], [Static_violation],
    [Counterexample]): such failures are never retried — every attempt
    would fail identically. *)

exception Reject of kind
(** Raise from inside an evaluation thunk to classify the failure
    precisely.  {!run} records the carried kind verbatim (instead of
    wrapping it as [Eval_error]); a {!permanent} kind short-circuits
    the retry schedule. *)

type policy = {
  retries : int;  (** additional attempts after the first; >= 0 *)
  backoff : float;  (** seconds before the first retry; 0 = no waiting *)
  backoff_factor : float;  (** multiplier between consecutive retries *)
  max_backoff : float;  (** cap on any single delay, seconds *)
  jitter : float;
      (** relative spread of seeded jitter in [0, 1]: each delay is
          scaled by a deterministic factor in [1 - jitter/2,
          1 + jitter/2].  0 = the exact exponential schedule. *)
  jitter_seed : int;  (** seed of the jitter stream *)
  timeout : float option;  (** per-attempt wall-clock budget, seconds *)
}

val default_policy : policy
(** 2 retries, no backoff delay, no jitter, no timeout. *)

val policy :
  ?retries:int ->
  ?backoff:float ->
  ?backoff_factor:float ->
  ?max_backoff:float ->
  ?jitter:float ->
  ?jitter_seed:int ->
  ?timeout:float ->
  unit ->
  policy
(** {!default_policy} with fields overridden.
    @raise Invalid_argument if [jitter] is outside [0, 1]. *)

val delay : ?key:string -> policy -> retry:int -> float
(** Seconds slept before retry number [retry] (numbered from 1): the
    base schedule [min max_backoff (backoff *. backoff_factor ^ (retry
    - 1))], scaled by seeded jitter when [policy.jitter > 0] (and
    re-capped at [max_backoff]).

    The jitter factor is a pure splitmix64 hash of [(jitter_seed, key,
    retry)], so the whole schedule is still deterministic and
    bit-for-bit reproducible under a fixed seed — but {e decorrelated}
    across keys: concurrent callers that fail together no longer retry
    in lockstep and stampede the shared resource they just overloaded.
    [key] (default the empty string) should identify the caller, e.g. the
    candidate signature or request id. *)

val delays : ?key:string -> policy -> float list
(** The full schedule: [delay] for retries [1 .. retries]. *)

type outcome = {
  result : (float, kind) Stdlib.result;
      (** the first successful value, or the last failure *)
  attempts : int;  (** total attempts made, >= 1 *)
  failures : kind list;  (** one entry per failed attempt, oldest first *)
  slept : float;  (** total backoff seconds *)
}

val run :
  ?policy:policy ->
  ?inject:Inject.t ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?cancel:Cancel.t ->
  key:string ->
  (Cancel.t -> float) ->
  outcome
(** [run ~key f] evaluates [f] under the policy.  [key] identifies the
    candidate for fault injection.

    [f] receives the attempt's cancellation token.  When the policy has
    a timeout, the token carries a {e preemptive} deadline ([now () +
    timeout], evaluated on [now]): a thunk that polls it
    ({!Cancel.check}) is stopped mid-flight with overrun bounded by its
    poll interval, and the resulting [Cancel.Cancelled] is classified
    as [Timeout].  The post-hoc clock check is kept for thunks that
    never poll.  An exception raised {e after} the budget expired is
    also classified as [Timeout] (the overrun is the root cause), not
    [Eval_error].

    [cancel] is the external (shutdown) token: it parents the attempt
    token, is checked before every attempt, and — unlike a deadline
    trip — its [Cancel.Cancelled] is {e re-raised} so the caller's
    search loop can stop at its own safe point.

    Otherwise no exception from [f] escapes: it is recorded as
    [Eval_error] ([Injected] for {!Inject.Fault}, the carried kind for
    {!Reject}) and retried unless the kind is {!permanent}.  [sleep]
    (default [Unix.sleepf]) and [now] (default [Unix.gettimeofday]) are
    injectable so tests can verify the backoff schedule, the timeout
    classification, and deadline preemption without real waiting. *)
