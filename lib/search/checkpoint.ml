module Graph = Pgraph.Graph
module Trace_io = Pgraph.Trace_io

let ( let* ) r f = Result.bind r f

type entry = {
  signature : string;
  operator : Graph.operator;
  reward : float;
  visits : int;
  quarantined : bool;
  reason : string option;
}

(* --- Snapshot files -------------------------------------------------------- *)

let header = "syno-checkpoint v1"

(* Reasons are guard-kind labels, but keep the header parsable even if
   a caller passes free text: the field must stay a single token. *)
let sanitize_reason r =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' || c = '\r' then '-' else c) r

let to_string entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry: reward %h visits %d quarantined %b%s\n" e.reward e.visits
           e.quarantined
           (match e.reason with
           | None -> ""
           | Some r -> " reason " ^ sanitize_reason r));
      Buffer.add_string buf (Trace_io.to_string e.operator))
    entries;
  Buffer.contents buf

(* Atomic + durable: write the snapshot to a temp file, fsync it, and
   only then rename it into place.  Without the fsync a crash between
   rename and writeback could leave the *new* name pointing at
   truncated data — surfacing as [Corrupt] on resume, defeating the
   whole point of atomic replacement.  The directory fsync (making the
   rename itself durable) is best-effort: some filesystems refuse
   fsync on a directory fd. *)
let save ~path entries =
  let tmp = path ^ ".tmp" in
  let data = to_string entries in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.of_string data in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
      (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
      (try Unix.close dirfd with Unix.Unix_error _ -> ())

type error =
  | Io of string
  | Bad_header of string
  | Truncated of { expected : int; found : int }
  | Corrupt of string

let string_of_error = function
  | Io msg -> "cannot read checkpoint: " ^ msg
  | Bad_header line -> Printf.sprintf "bad checkpoint header %S (expected %S)" line header
  | Truncated { expected; found } ->
      Printf.sprintf "truncated checkpoint: header declares %d entries, found %d" expected
        found
  | Corrupt msg -> "corrupt checkpoint: " ^ msg

(* The [reason] suffix is optional so v1 snapshots written before the
   field existed still load. *)
let parse_entry_header line =
  let bad () = Error (Corrupt (Printf.sprintf "bad entry header %S" line)) in
  match String.split_on_char ' ' (String.trim line) with
  | "entry:" :: "reward" :: r :: "visits" :: v :: "quarantined" :: q :: rest -> (
      match (float_of_string_opt r, int_of_string_opt v, bool_of_string_opt q) with
      | Some r, Some v, Some q -> (
          match rest with
          | [] -> Ok (r, v, q, None)
          | [ "reason"; reason ] -> Ok (r, v, q, Some reason)
          | _ -> bad ())
      | _ -> bad ())
  | _ -> bad ()

(* "entries: N" written right under the header; [None] for hand-edited
   files that dropped it (then the count cannot be cross-checked). *)
let declared_count lines =
  List.find_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "entries:"; n ] -> int_of_string_opt n
      | _ -> None)
    lines

let of_string_result text =
  match String.split_on_char '\n' text with
  | [] -> Error (Corrupt "empty checkpoint")
  | [ "" ] -> Error (Corrupt "empty checkpoint")
  | first :: rest ->
      if String.trim first <> header then Error (Bad_header first)
      else
        (* Group the remaining lines into (entry-header, operator-block)
           pairs; lines before the first "entry:" (the count, comments,
           blanks) are ignored. *)
        let is_entry l =
          String.length (String.trim l) >= 6 && String.sub (String.trim l) 0 6 = "entry:"
        in
        let rec groups acc current = function
          | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
          | line :: rest ->
              if is_entry line then
                let acc = match current with None -> acc | Some g -> g :: acc in
                groups acc (Some (line, [])) rest
              else (
                match current with
                | None -> groups acc None rest
                | Some (h, block) -> groups acc (Some (h, line :: block)) rest)
        in
        let rebuild (head, block_rev) =
          let* reward, visits, quarantined, reason = parse_entry_header head in
          let block = String.concat "\n" (List.rev block_rev) in
          (* [allow_strided]: a snapshot records whatever the search
             evaluated — quality filtering happened at enumeration
             time, and resume must accept its own history. *)
          let* operator =
            Result.map_error
              (fun msg -> Corrupt msg)
              (Trace_io.of_string ~allow_strided:true block)
          in
          Ok
            {
              signature = Graph.operator_signature operator;
              operator;
              reward;
              visits;
              quarantined;
              reason;
            }
        in
        let grouped = groups [] None rest in
        let* entries =
          List.fold_left
            (fun acc g ->
              let* acc = acc in
              let* e = rebuild g in
              Ok (e :: acc))
            (Ok []) grouped
        in
        let* () =
          (* A snapshot is written atomically, so a short read means the
             file was cut after the fact: fail loudly instead of
             resuming from a silently smaller memo. *)
          match declared_count rest with
          | Some expected when expected <> List.length grouped ->
              Error (Truncated { expected; found = List.length grouped })
          | Some _ | None -> Ok ()
        in
        Ok (List.sort (fun a b -> compare a.signature b.signature) entries)

let load_result ~path =
  match open_in path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string_result text

let load ~path = Result.map_error string_of_error (load_result ~path)

(* --- Cadence-driven sink --------------------------------------------------- *)

type sink = {
  sk_path : string;
  sk_every : int;
  sk_mutex : Mutex.t;
  sk_table : (string, entry) Hashtbl.t;
  mutable sk_pending : int;
  mutable sk_writes : int;
}

let sink ~path ?(every = 50) () =
  {
    sk_path = path;
    sk_every = max 1 every;
    sk_mutex = Mutex.create ();
    sk_table = Hashtbl.create 64;
    sk_pending = 0;
    sk_writes = 0;
  }

let snapshot_locked s =
  Hashtbl.fold (fun _ e acc -> e :: acc) s.sk_table []
  |> List.sort (fun a b -> compare a.signature b.signature)

let write_locked s =
  save ~path:s.sk_path (snapshot_locked s);
  s.sk_writes <- s.sk_writes + 1;
  s.sk_pending <- 0

let locked s f =
  Mutex.lock s.sk_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.sk_mutex) f

(* Seed the table with previously persisted entries without counting
   them toward the write cadence: a resumed search must rewrite its
   full history, not just the entries it evaluated after the resume —
   otherwise a second kill/resume cycle silently shrinks the memo. *)
let preload s entries =
  locked s (fun () ->
      List.iter
        (fun e ->
          if not (Hashtbl.mem s.sk_table e.signature) then Hashtbl.add s.sk_table e.signature e)
        entries)

let note s e =
  locked s (fun () ->
      Hashtbl.replace s.sk_table e.signature e;
      s.sk_pending <- s.sk_pending + 1;
      if s.sk_pending >= s.sk_every then write_locked s)

let flush s = locked s (fun () -> if s.sk_pending > 0 || s.sk_writes = 0 then write_locked s)
let writes s = locked s (fun () -> s.sk_writes)
let path s = s.sk_path
