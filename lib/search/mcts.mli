(** Monte Carlo Tree Search over partial pGraphs (\u{00a7}7.2).

    The search space is a Markov decision process whose states are
    partial pGraphs and whose actions are canonical primitive
    applications; terminal states are complete operators.  Selection
    uses UCB1; rollouts sample shape-distance-guided random completions;
    rewards come from a caller-provided evaluator (the accuracy proxy or
    real training).  All completed operators seen during the search are
    recorded and returned with their best observed reward.

    {b Fault tolerance.}  Every reward call is routed through
    {!Robust.Guard}: exceptions, NaN/infinite rewards, per-candidate
    wall-clock overruns, and injected faults are contained, retried per
    the policy, and — if every attempt fails — the candidate is
    {e quarantined}: recorded with a configurable penalty reward, never
    re-evaluated, ranked after every healthy candidate, and accounted
    for in the {!failure_stats} returned by the [_run] variants.  A
    {!Checkpoint.sink} persists the reward memo at a configurable
    cadence, and [resume] pre-seeds it so a killed search replays to the
    same results without repeating completed evaluations. *)

type config = {
  iterations : int;  (** per tree *)
  exploration : float;  (** UCB1 constant, default sqrt 2 *)
  rollout_depth : int;
      (** maximum actions per rollout: the walk is cut off after this
          many steps even when the global primitive budget would allow
          more *)
}

val default_config : ?iterations:int -> unit -> config

type result = {
  operator : Pgraph.Graph.operator;
  reward : float;  (** the penalty reward if quarantined *)
  visits : int;  (** times this operator was reached *)
  quarantined : bool;  (** every guarded attempt failed *)
}

(** Per-run failure accounting.  [attempts] counts every invocation of
    the reward thunk (including attempts suppressed by fault
    injection); [retries] the attempts beyond each candidate's first;
    [failed_attempts] the failed ones, keyed by {!Robust.Guard.kind_label}
    and sorted, so every injected fault is accounted for. *)
type failure_stats = {
  evaluations : int;  (** distinct candidates scored successfully *)
  quarantined : int;  (** distinct candidates that exhausted all attempts *)
  attempts : int;
  retries : int;
  failed_attempts : (string * int) list;
  backoff_seconds : float;
  checkpoint_writes : int;
}

val no_failures : failure_stats

type run = { results : result list; stats : failure_stats }

val search_run :
  ?config:config ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  ?root_filter:(Pgraph.Prim.t -> bool) ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  run
(** Results sorted by decreasing reward (quarantined candidates last,
    NaN rewards ranked as -inf, remaining ties broken on the operator
    signature), deduplicated by operator signature.  [reward] is called
    at most once per distinct signature — including signatures preloaded
    via [resume] — and repeat encounters reuse the memoized score and
    only bump the visit counter.  Resumed entries the trajectory never
    reaches again keep living in the memo/checkpoint but are not
    results of this run (their visit count is 0).

    [admit] is the admission gate (e.g. {!Validate.Admit.gate} composed
    by the API layer: resource budgets plus differential validation),
    consulted once per distinct signature {e before} the reward thunk.
    A rejection is a deterministic verdict on the candidate, so it is
    quarantined immediately — one recorded attempt, no retries, and the
    reward thunk (and any allocation it would do) never runs; the
    rejection kind flows into [failed_attempts] like any other failure.

    [cancel] is the external shutdown token: it is polled at every
    iteration boundary (and parents every guarded attempt's deadline
    token), and a trip makes the search {e return} the results
    gathered so far rather than raise — the caller can still flush
    the checkpoint and report a partial top-k.  [reward] receives the
    attempt's token ([~cancel]); thunks that poll it are preempted
    within one poll interval of a deadline or shutdown.

    [root_filter] restricts the {e root} action set (the first
    primitive applied to the empty pGraph); every deeper level stays
    complete.  {!Shard} uses it to partition the search space across
    worker processes by seeded root-action signature — each shard
    explores exactly the subtrees under the root actions it owns.

    Defaults: [guard = Robust.Guard.default_policy] (2 retries, no
    backoff, no timeout), no injection, [quarantine_reward = 0.0], no
    checkpointing, admit-everything gate. *)

val search :
  ?config:config ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  ?root_filter:(Pgraph.Prim.t -> bool) ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** [search_run] without the statistics. *)

val search_parallel_run :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  trees:int ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  run
(** Root-parallel MCTS: [trees] independent trees, each running
    [config.iterations] iterations with its own generator split off
    [rng] up front, scheduled across [pool] (default:
    [Par.Pool.get_default ()]).  The per-tree found tables are merged
    by operator signature (best reward NaN-safely, summed visits, a
    healthy evaluation overriding a quarantine verdict), so for a fixed
    [rng] and [trees] the result is identical at any pool size.
    [reward] must be safe to call from multiple domains — the analytic
    proxy of {!Reward} is.  Failure statistics are collected per tree
    and summed; the checkpoint sink may be shared across trees (it
    serializes internally).  [cancel] is polled by every tree at its
    own iteration boundary; each tree self-terminates with partial
    results, so a shutdown still merges and returns what all trees
    found. *)

val search_parallel :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  trees:int ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** [search_parallel_run] without the statistics. *)

val search_single_tree_run :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  ?workers:int ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  run
(** Single-tree parallel MCTS with virtual loss: [workers] jobs
    (default: the pool size) share {e one} tree's statistics and one
    signature-keyed reward memo, instead of building [workers] shallow
    independent trees.  [config.iterations] is the {e total} budget,
    claimed from a shared counter — more workers means faster, not
    more, search.

    Selection runs under a tree mutex and applies virtual loss: path
    visit counts are incremented on the way down, before the reward
    lands, so concurrent workers see in-flight paths as
    visited-but-valueless and diversify.  Expansion, rollouts, and
    reward evaluation run outside the lock; backpropagation re-acquires
    it.  The reward memo is a lock-striped table whose in-flight slots
    park duplicate requests on a condition variable, preserving the
    at-most-once-reward-per-signature contract (and the single
    checkpoint note per signature) across workers.  Statistics
    accumulate in per-worker collectors and are summed.

    Unlike {!search_parallel_run}, the result {e set} may vary between
    runs with more than one worker — iteration interleaving is
    scheduling-dependent — but every returned reward is still the
    memoized, deterministic score of its operator, and with [workers =
    1] the search is fully deterministic in [rng].  [cancel] is polled
    at every iteration claim; workers self-terminate and the partial
    memo is still merged, flushed, and returned. *)

val search_single_tree :
  ?config:config ->
  ?pool:Par.Pool.t ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.entry list ->
  ?admit:(Pgraph.Graph.operator -> (unit, Robust.Guard.kind) Stdlib.result) ->
  ?cancel:Robust.Cancel.t ->
  ?workers:int ->
  Enumerate.config ->
  reward:(cancel:Robust.Cancel.t -> Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** [search_single_tree_run] without the statistics. *)
