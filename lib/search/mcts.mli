(** Monte Carlo Tree Search over partial pGraphs (\u{00a7}7.2).

    The search space is a Markov decision process whose states are
    partial pGraphs and whose actions are canonical primitive
    applications; terminal states are complete operators.  Selection
    uses UCB1; rollouts sample shape-distance-guided random completions;
    rewards come from a caller-provided evaluator (the accuracy proxy or
    real training).  All completed operators seen during the search are
    recorded and returned with their best observed reward. *)

type config = {
  iterations : int;  (** per tree *)
  exploration : float;  (** UCB1 constant, default sqrt 2 *)
  rollout_depth : int;
      (** maximum actions per rollout: the walk is cut off after this
          many steps even when the global primitive budget would allow
          more *)
}

val default_config : ?iterations:int -> unit -> config

type result = {
  operator : Pgraph.Graph.operator;
  reward : float;
  visits : int;  (** times this operator was reached *)
}

val search :
  ?config:config ->
  Enumerate.config ->
  reward:(Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** Results sorted by decreasing reward (ties broken on the operator
    signature), deduplicated by operator signature.  [reward] is called
    at most once per distinct signature; repeat encounters reuse the
    memoized score and only bump the visit counter. *)

val search_parallel :
  ?config:config ->
  ?pool:Par.Pool.t ->
  trees:int ->
  Enumerate.config ->
  reward:(Pgraph.Graph.operator -> float) ->
  rng:Nd.Rng.t ->
  unit ->
  result list
(** Root-parallel MCTS: [trees] independent trees, each running
    [config.iterations] iterations with its own generator split off
    [rng] up front, scheduled across [pool] (default:
    [Par.Pool.get_default ()]).  The per-tree found tables are merged
    by operator signature (best reward, summed visits), so for a fixed
    [rng] and [trees] the result is identical at any pool size.
    [reward] must be safe to call from multiple domains — the analytic
    proxy of {!Reward} is. *)
