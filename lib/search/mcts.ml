module Graph = Pgraph.Graph
module Distance = Pgraph.Distance
module Guard = Robust.Guard
module Inject = Robust.Inject

type config = { iterations : int; exploration : float; rollout_depth : int }

let default_config ?(iterations = 300) () =
  { iterations; exploration = sqrt 2.0; rollout_depth = 12 }

type result = {
  operator : Graph.operator;
  reward : float;
  visits : int;
  quarantined : bool;
}

type failure_stats = {
  evaluations : int;
  quarantined : int;
  attempts : int;
  retries : int;
  failed_attempts : (string * int) list;
  backoff_seconds : float;
  checkpoint_writes : int;
}

let no_failures =
  {
    evaluations = 0;
    quarantined = 0;
    attempts = 0;
    retries = 0;
    failed_attempts = [];
    backoff_seconds = 0.0;
    checkpoint_writes = 0;
  }

type run = { results : result list; stats : failure_stats }

(* Per-tree failure accounting.  Each tree owns its collector (domain
   private), merged after the pool joins, so no synchronization and no
   scheduling-dependent state. *)
type collector = {
  mutable c_evaluations : int;
  mutable c_quarantined : int;
  mutable c_attempts : int;
  mutable c_retries : int;
  mutable c_backoff : float;
  c_kinds : (string, int) Hashtbl.t;
}

let new_collector () =
  {
    c_evaluations = 0;
    c_quarantined = 0;
    c_attempts = 0;
    c_retries = 0;
    c_backoff = 0.0;
    c_kinds = Hashtbl.create 4;
  }

let stats_of_collectors ?checkpoint collectors =
  let kinds = Hashtbl.create 4 in
  let stats =
    Array.fold_left
      (fun acc c ->
        Hashtbl.iter
          (fun k n ->
            Hashtbl.replace kinds k (n + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
          c.c_kinds;
        {
          acc with
          evaluations = acc.evaluations + c.c_evaluations;
          quarantined = acc.quarantined + c.c_quarantined;
          attempts = acc.attempts + c.c_attempts;
          retries = acc.retries + c.c_retries;
          backoff_seconds = acc.backoff_seconds +. c.c_backoff;
        })
      no_failures collectors
  in
  {
    stats with
    failed_attempts =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds [] |> List.sort compare;
    checkpoint_writes =
      (match checkpoint with Some s -> Checkpoint.writes s | None -> 0);
  }

(* The found table doubles as the reward memo: signature -> entry.
   Quarantined entries carry the penalty reward and are never retried. *)
type entry = {
  ent_op : Graph.operator;
  mutable ent_reward : float;
  mutable ent_visits : int;
  mutable ent_quarantined : bool;
}

type node = {
  state : Graph.t;
  depth : int;
  mutable children : (Pgraph.Prim.t * node) array option;  (* None = unexpanded *)
  mutable visits : int;
  mutable total : float;
}

let make_node state depth = { state; depth; children = None; visits = 0; total = 0.0 }

(* NaN-safe best: a NaN never wins (or poisons) a comparison. *)
let fmax a b = if Float.is_nan b then a else if Float.is_nan a then b else Float.max a b

let bump_kind collector label =
  Hashtbl.replace collector.c_kinds label
    (1 + Option.value ~default:0 (Hashtbl.find_opt collector.c_kinds label))

let note_sink sink key entry reason =
  match sink with
  | Some s ->
      Checkpoint.note s
        {
          Checkpoint.signature = key;
          operator = entry.ent_op;
          reward = entry.ent_reward;
          visits = 1;
          quarantined = entry.ent_quarantined;
          reason;
        }
  | None -> ()

(* Score one never-seen-before candidate: the admission gate, then the
   guarded reward thunk.  Pure of any memo table — the caller decides
   where the entry lands — but charges the (caller-private) collector.
   A rejection by [admit] is deterministic (budget or validation
   verdict), so it is quarantined directly: one attempt, no retries,
   and the reward thunk never runs. *)
let guarded_entry ~policy ~inject ~penalty ~collector ~admit ~cancel ~reward ~key op =
  match admit op with
  | Error k ->
      let label = Guard.kind_label k in
      collector.c_attempts <- collector.c_attempts + 1;
      bump_kind collector label;
      collector.c_quarantined <- collector.c_quarantined + 1;
      ( { ent_op = op; ent_reward = penalty; ent_visits = 1; ent_quarantined = true },
        Some label )
  | Ok () ->
      let out = Guard.run ~policy ~inject ?cancel ~key (fun token -> reward ~cancel:token op) in
      collector.c_attempts <- collector.c_attempts + out.Guard.attempts;
      collector.c_retries <- collector.c_retries + (out.Guard.attempts - 1);
      List.iter (fun k -> bump_kind collector (Guard.kind_label k)) out.Guard.failures;
      collector.c_backoff <- collector.c_backoff +. out.Guard.slept;
      let r, quarantined, reason =
        match out.Guard.result with
        | Ok r ->
            collector.c_evaluations <- collector.c_evaluations + 1;
            (r, false, None)
        | Error k ->
            collector.c_quarantined <- collector.c_quarantined + 1;
            (penalty, true, Some (Guard.kind_label k))
      in
      ({ ent_op = op; ent_reward = r; ent_visits = 1; ent_quarantined = quarantined }, reason)

(* Rollout: random guided walk from the node's state.  Every complete
   state along the way is evaluated and recorded (Algorithm 1 keeps
   enumerating past a match); the rollout's value is the best reward
   seen.  The walk stops after [rollout_depth] actions or at the
   global primitive cap, whichever comes first. *)
let rollout_walk ~config ~enum_cfg ~dist ~rng ~evaluate node =
  let horizon = min enum_cfg.Enumerate.max_prims (node.depth + config.rollout_depth) in
  let rec go depth g best =
    let best =
      match Enumerate.try_complete enum_cfg g with
      | Some op -> fmax best (evaluate op)
      | None -> best
    in
    if depth >= horizon then best
    else
      match
        Enumerate.guided_children enum_cfg dist g
          ~budget:(enum_cfg.Enumerate.max_prims - depth - 1)
      with
      | [] -> best
      | options -> go (depth + 1) (Enumerate.pick_guided rng options) best
  in
  go node.depth node.state 0.0

(* Enumerate and distance-prune a node's children (without installing
   them — expansion policy differs between the sequential and the
   shared tree).  [root_filter] restricts the {e root} action set only:
   sharded searches partition the space by root action, and every
   deeper level stays complete within the owned subtrees. *)
let accept_all_roots (_ : Pgraph.Prim.t) = true

let node_children ?(root_filter = accept_all_roots) ~enum_cfg ~dist node =
  let children = Enumerate.children enum_cfg node.state in
  let children =
    if node.depth = 0 then List.filter (fun (p, _) -> root_filter p) children else children
  in
  let kids =
    List.filter
      (fun (_, g') ->
        Distance.within dist
          ~current:(Graph.frontier_sizes g')
          ~desired:enum_cfg.Enumerate.desired_shape
          ~budget:(enum_cfg.Enumerate.max_prims - node.depth - 1))
      children
  in
  Array.of_list (List.map (fun (p, g') -> (p, make_node g' (node.depth + 1))) kids)

let ucb config parent_visits child =
  if child.visits = 0 then infinity
  else
    (child.total /. float_of_int child.visits)
    +. (config.exploration
        *. sqrt (log (float_of_int (max 1 parent_visits)) /. float_of_int child.visits))

(* Graceful-stop marker for the iteration loops; never escapes. *)
exception Stop

(* One tree, one domain.  All mutable state (the tree, the distance
   memo, the found/reward table, the failure collector) is private to
   the call, so trees can run on separate domains as long as [reward]
   itself is safe to call from any domain.  The checkpoint sink is the
   one shared structure; it serializes internally. *)
let run_tree ?root_filter ~config ~enum_cfg ~reward ~rng ~policy ~inject ~penalty ~sink
    ~preload ~collector ~admit ~cancel () =
  let dist = Distance.create () in
  let found : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  (* Resumed entries enter with zero visits: the replayed trajectory
     recounts encounters, so a resumed run's counters match an
     uninterrupted run's.  Only their rewards are reused. *)
  List.iter
    (fun e ->
      Hashtbl.replace found e.Checkpoint.signature
        {
          ent_op = e.Checkpoint.operator;
          ent_reward = e.Checkpoint.reward;
          ent_visits = 0;
          ent_quarantined = e.Checkpoint.quarantined;
        })
    preload;
  let evaluate op =
    let key = Graph.operator_signature op in
    match Hashtbl.find_opt found key with
    | Some e ->
        e.ent_visits <- e.ent_visits + 1;
        e.ent_reward
    | None ->
        let entry, reason =
          guarded_entry ~policy ~inject ~penalty ~collector ~admit ~cancel ~reward ~key op
        in
        Hashtbl.add found key entry;
        note_sink sink key entry reason;
        entry.ent_reward
  in
  let rollout node = rollout_walk ~config ~enum_cfg ~dist ~rng ~evaluate node in
  let expand node =
    match node.children with
    | Some c -> c
    | None ->
        let arr = node_children ?root_filter ~enum_cfg ~dist node in
        node.children <- Some arr;
        arr
  in
  let ucb = ucb config in
  let rec simulate node =
    node.visits <- node.visits + 1;
    (* Terminal reward opportunity at this node. *)
    let r =
      let kids = expand node in
      if Array.length kids = 0 then
        match Enumerate.try_complete enum_cfg node.state with
        | Some op -> evaluate op
        | None -> 0.0
      else begin
        (* pick by UCB; unvisited children first *)
        let best = ref 0 in
        for i = 1 to Array.length kids - 1 do
          let _, ci = kids.(i) and _, cb = kids.(!best) in
          if ucb node.visits ci > ucb node.visits cb then best := i
        done;
        let _, child = kids.(!best) in
        if child.visits = 0 then begin
          child.visits <- 1;
          let r = rollout child in
          child.total <- child.total +. r;
          r
        end
        else simulate child
      end
    in
    node.total <- node.total +. r;
    r
  in
  let root = make_node (Graph.init enum_cfg.Enumerate.output_shape) 0 in
  (* Graceful stop: the token is polled at every iteration boundary,
     and a [Cancelled] escaping the guard mid-iteration (external
     shutdown tripping inside an evaluation) lands here too.  Either
     way the tree returns what it has — partial results, not an
     exception — so the caller can still flush a checkpoint and report
     a top-k. *)
  (try
     for _ = 1 to config.iterations do
       (match cancel with
       | Some c when Robust.Cancel.is_cancelled c -> raise_notrace Stop
       | Some _ | None -> ());
       ignore (simulate root)
     done
   with Stop | Robust.Cancel.Cancelled _ -> ());
  found

(* Ranking: quarantined candidates always sort after healthy ones, NaN
   rewards (possible only through a caller-chosen NaN penalty) are
   ranked as -inf instead of poisoning the comparison, and remaining
   ties break on the signature so the ordering is independent of
   hash-table iteration order.  Entries with zero visits are resumed
   memo entries this run never reached; they stay in the memo (and the
   checkpoint) but are not results of this run. *)
let to_results found =
  let key r = if Float.is_nan r then neg_infinity else r in
  Hashtbl.fold
    (fun sg e acc ->
      if e.ent_visits = 0 then acc
      else
        ( sg,
          {
            operator = e.ent_op;
            reward = e.ent_reward;
            visits = e.ent_visits;
            quarantined = e.ent_quarantined;
          } )
        :: acc)
    found []
  |> List.sort (fun (ka, (a : result)) (kb, (b : result)) ->
         match compare a.quarantined b.quarantined with
         | 0 -> (
             match compare (key b.reward) (key a.reward) with
             | 0 -> compare ka kb
             | c -> c)
         | c -> c)
  |> List.map snd

let admit_all _ = Ok ()

let search_run ?(config = default_config ()) ?(guard = Guard.default_policy)
    ?(inject = Inject.none) ?(quarantine_reward = 0.0) ?checkpoint ?(resume = [])
    ?(admit = admit_all) ?cancel ?root_filter enum_cfg ~reward ~rng () =
  let collector = new_collector () in
  let found =
    run_tree ?root_filter ~config ~enum_cfg ~reward ~rng ~policy:guard ~inject
      ~penalty:quarantine_reward ~sink:checkpoint ~preload:resume ~collector ~admit ~cancel ()
  in
  (match checkpoint with Some s -> Checkpoint.flush s | None -> ());
  { results = to_results found; stats = stats_of_collectors ?checkpoint [| collector |] }

let search ?config ?guard ?inject ?quarantine_reward ?checkpoint ?resume ?admit ?cancel
    ?root_filter enum_cfg ~reward ~rng () =
  (search_run ?config ?guard ?inject ?quarantine_reward ?checkpoint ?resume ?admit ?cancel
     ?root_filter enum_cfg ~reward ~rng ())
    .results

let search_parallel_run ?(config = default_config ()) ?pool ?(guard = Guard.default_policy)
    ?(inject = Inject.none) ?(quarantine_reward = 0.0) ?checkpoint ?(resume = [])
    ?(admit = admit_all) ?cancel ~trees enum_cfg ~reward ~rng () =
  let trees = max 1 trees in
  (* Derive the per-tree generators up front, sequentially, so the set
     of trees (and hence the merged result) depends only on [rng] and
     [trees], never on how the pool schedules them. *)
  let rngs = Array.make trees rng in
  for i = 0 to trees - 1 do
    rngs.(i) <- Nd.Rng.split rng
  done;
  let collectors = Array.init trees (fun _ -> new_collector ()) in
  (* Each tree polls the token itself and self-terminates with partial
     results; the pool-level loop is left uncancelled so [Pool.map]
     always returns a full array of tables. *)
  let run (rng, collector) =
    run_tree ~config ~enum_cfg ~reward ~rng ~policy:guard ~inject ~penalty:quarantine_reward
      ~sink:checkpoint ~preload:resume ~collector ~admit ~cancel ()
  in
  let jobs = Array.init trees (fun i -> (rngs.(i), collectors.(i))) in
  let tables =
    match pool with
    | Some pool -> Par.Pool.map pool run jobs
    | None -> Par.Pool.map (Par.Pool.get_default ()) run jobs
  in
  let merged : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun key e ->
          match Hashtbl.find_opt merged key with
          | None ->
              Hashtbl.add merged key
                {
                  ent_op = e.ent_op;
                  ent_reward = e.ent_reward;
                  ent_visits = e.ent_visits;
                  ent_quarantined = e.ent_quarantined;
                }
          | Some m ->
              m.ent_visits <- m.ent_visits + e.ent_visits;
              (* A healthy evaluation beats any quarantine verdict (the
                 guard is deterministic per key, so trees disagree only
                 when their policies saw different transient faults). *)
              if m.ent_quarantined && not e.ent_quarantined then begin
                m.ent_quarantined <- false;
                m.ent_reward <- e.ent_reward
              end
              else if not m.ent_quarantined && not e.ent_quarantined then
                m.ent_reward <- fmax m.ent_reward e.ent_reward)
        tbl)
    tables;
  (match checkpoint with Some s -> Checkpoint.flush s | None -> ());
  { results = to_results merged; stats = stats_of_collectors ?checkpoint collectors }

let search_parallel ?config ?pool ?guard ?inject ?quarantine_reward ?checkpoint ?resume
    ?admit ?cancel ~trees enum_cfg ~reward ~rng () =
  (search_parallel_run ?config ?pool ?guard ?inject ?quarantine_reward ?checkpoint ?resume
     ?admit ?cancel ~trees enum_cfg ~reward ~rng ())
    .results

(* --- Single-tree parallel search ------------------------------------------ *)

(* The shared reward memo, lock-striped by signature hash so workers
   evaluating different candidates never contend on one mutex.  A
   [Pending] slot marks a signature some worker is scoring right now:
   later arrivals park on the stripe's condition instead of paying for
   a duplicate evaluation, preserving the at-most-once-per-signature
   contract of the sequential search. *)
module Shared_memo = struct
  type slot = Pending | Ready of entry

  let stripes = 64 (* power of two; the stripe index is a hash mask *)

  type t = {
    locks : Mutex.t array;
    conds : Condition.t array;
    tables : (string, slot) Hashtbl.t array;
  }

  let stripe key = Hashtbl.hash key land (stripes - 1)

  let create preload =
    let t =
      {
        locks = Array.init stripes (fun _ -> Mutex.create ());
        conds = Array.init stripes (fun _ -> Condition.create ());
        tables = Array.init stripes (fun _ -> Hashtbl.create 16);
      }
    in
    List.iter
      (fun e ->
        let key = e.Checkpoint.signature in
        Hashtbl.replace t.tables.(stripe key) key
          (Ready
             {
               ent_op = e.Checkpoint.operator;
               ent_reward = e.Checkpoint.reward;
               ent_visits = 0;
               ent_quarantined = e.Checkpoint.quarantined;
             }))
      preload;
    t

  (* Snapshot every decided entry into a plain table for [to_results].
     Call only after the workers have joined; a [Pending] at that point
     can only be the leftover of a cancelled evaluation and is dead. *)
  let to_table t =
    let out = Hashtbl.create 64 in
    Array.iter
      (fun tbl ->
        Hashtbl.iter
          (fun k s -> match s with Ready e -> Hashtbl.replace out k e | Pending -> ())
          tbl)
      t.tables;
    out
end

let evaluate_shared memo ~policy ~inject ~penalty ~sink ~admit ~cancel ~reward ~collector op =
  let key = Graph.operator_signature op in
  let i = Shared_memo.stripe key in
  let lock = memo.Shared_memo.locks.(i)
  and cond = memo.Shared_memo.conds.(i)
  and tbl = memo.Shared_memo.tables.(i) in
  Mutex.lock lock;
  let rec claim () =
    match Hashtbl.find_opt tbl key with
    | Some (Shared_memo.Ready e) ->
        e.ent_visits <- e.ent_visits + 1;
        let r = e.ent_reward in
        Mutex.unlock lock;
        r
    | Some Shared_memo.Pending ->
        (* another worker is scoring this signature; wait for its verdict *)
        Condition.wait cond lock;
        claim ()
    | None -> (
        Hashtbl.replace tbl key Shared_memo.Pending;
        Mutex.unlock lock;
        match guarded_entry ~policy ~inject ~penalty ~collector ~admit ~cancel ~reward ~key op with
        | entry, reason ->
            Mutex.lock lock;
            Hashtbl.replace tbl key (Shared_memo.Ready entry);
            Condition.broadcast cond;
            Mutex.unlock lock;
            note_sink sink key entry reason;
            entry.ent_reward
        | exception e ->
            (* external cancellation mid-evaluation: withdraw the
               Pending marker so parked waiters become owners (and then
               observe the trip themselves) instead of deadlocking *)
            Mutex.lock lock;
            Hashtbl.remove tbl key;
            Condition.broadcast cond;
            Mutex.unlock lock;
            raise e)
  in
  claim ()

(* One iteration of the shared tree.  Selection runs under the tree
   mutex and increments [visits] along the path *before* any reward
   lands — that is the virtual loss: concurrent workers see the
   in-flight path as visited-but-valueless, its UCB score drops, and
   they are steered toward different subtrees.  Expansion (child
   enumeration plus distance pruning) and the rollout/evaluation are
   too expensive for the lock, so they run outside it; backpropagation
   re-acquires it to add the reward along the recorded path. *)
let simulate_shared ~tree_mutex ~config ~enum_cfg ~dist ~rng ~evaluate root =
  Mutex.lock tree_mutex;
  let path = ref [] in
  let rec descend node =
    node.visits <- node.visits + 1;
    path := node :: !path;
    let kids =
      match node.children with
      | Some c -> c
      | None -> (
          Mutex.unlock tree_mutex;
          let arr = node_children ~enum_cfg ~dist node in
          Mutex.lock tree_mutex;
          match node.children with
          | Some c -> c (* lost the expansion race; use the winner's *)
          | None ->
              node.children <- Some arr;
              arr)
    in
    if Array.length kids = 0 then `Terminal node
    else begin
      let best = ref 0 in
      for i = 1 to Array.length kids - 1 do
        let _, ci = kids.(i) and _, cb = kids.(!best) in
        if ucb config node.visits ci > ucb config node.visits cb then best := i
      done;
      let _, child = kids.(!best) in
      if child.visits = 0 then begin
        child.visits <- 1;
        path := child :: !path;
        `Rollout child
      end
      else descend child
    end
  in
  let target = descend root in
  Mutex.unlock tree_mutex;
  let r =
    match target with
    | `Terminal node -> (
        match Enumerate.try_complete enum_cfg node.state with
        | Some op -> evaluate op
        | None -> 0.0)
    | `Rollout child -> rollout_walk ~config ~enum_cfg ~dist ~rng ~evaluate child
  in
  Mutex.lock tree_mutex;
  List.iter (fun nd -> nd.total <- nd.total +. r) !path;
  Mutex.unlock tree_mutex

let search_single_tree_run ?(config = default_config ()) ?pool ?(guard = Guard.default_policy)
    ?(inject = Inject.none) ?(quarantine_reward = 0.0) ?checkpoint ?(resume = [])
    ?(admit = admit_all) ?cancel ?workers enum_cfg ~reward ~rng () =
  let pool = match pool with Some p -> p | None -> Par.Pool.get_default () in
  let workers = max 1 (match workers with Some w -> w | None -> Par.Pool.size pool) in
  let memo = Shared_memo.create resume in
  let tree_mutex = Mutex.create () in
  let root = make_node (Graph.init enum_cfg.Enumerate.output_shape) 0 in
  (* The whole iteration budget is one shared pot the workers drain —
     unlike root-parallel, worker count changes wall-clock, not search
     effort. *)
  let next_iter = Atomic.make 0 in
  (* Per-worker generators split off [rng] up front, sequentially, so
     the trajectory set depends on scheduling only through iteration
     interleaving, never through shared generator state.  Worker 0
     keeps [rng] itself: with one worker the selection policy below is
     exactly the sequential one, so [workers = 1] reproduces
     {!search_run} bit-for-bit. *)
  let rngs = Array.make workers rng in
  for i = 1 to workers - 1 do
    rngs.(i) <- Nd.Rng.split rng
  done;
  let collectors = Array.init workers (fun _ -> new_collector ()) in
  let worker (wrng, collector) =
    let dist = Distance.create () in
    let evaluate op =
      evaluate_shared memo ~policy:guard ~inject ~penalty:quarantine_reward ~sink:checkpoint
        ~admit ~cancel ~reward ~collector op
    in
    try
      while Atomic.fetch_and_add next_iter 1 < config.iterations do
        (match cancel with
        | Some c when Robust.Cancel.is_cancelled c -> raise_notrace Stop
        | Some _ | None -> ());
        simulate_shared ~tree_mutex ~config ~enum_cfg ~dist ~rng:wrng ~evaluate root
      done
    with Stop | Robust.Cancel.Cancelled _ -> ()
  in
  let jobs = Array.init workers (fun i -> (rngs.(i), collectors.(i))) in
  (* Workers self-terminate on cancellation, so the pool-level map is
     left uncancelled and always returns. *)
  let (_ : unit array) = Par.Pool.map pool worker jobs in
  (match checkpoint with Some s -> Checkpoint.flush s | None -> ());
  {
    results = to_results (Shared_memo.to_table memo);
    stats = stats_of_collectors ?checkpoint collectors;
  }

let search_single_tree ?config ?pool ?guard ?inject ?quarantine_reward ?checkpoint ?resume
    ?admit ?cancel ?workers enum_cfg ~reward ~rng () =
  (search_single_tree_run ?config ?pool ?guard ?inject ?quarantine_reward ?checkpoint ?resume
     ?admit ?cancel ?workers enum_cfg ~reward ~rng ())
    .results
