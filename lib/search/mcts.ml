module Graph = Pgraph.Graph
module Distance = Pgraph.Distance

type config = { iterations : int; exploration : float; rollout_depth : int }

let default_config ?(iterations = 300) () =
  { iterations; exploration = sqrt 2.0; rollout_depth = 12 }

type result = { operator : Graph.operator; reward : float; visits : int }

type node = {
  state : Graph.t;
  depth : int;
  mutable children : (Pgraph.Prim.t * node) array option;  (* None = unexpanded *)
  mutable visits : int;
  mutable total : float;
}

let make_node state depth = { state; depth; children = None; visits = 0; total = 0.0 }

(* One tree, one domain.  All mutable state (the tree, the distance
   memo, the found/reward table) is private to the call, so trees can
   run on separate domains as long as [reward] itself is pure. *)
let run_tree ~config ~enum_cfg ~reward ~rng =
  let dist = Distance.create () in
  let found : (string, Graph.operator * float * int) Hashtbl.t = Hashtbl.create 64 in
  (* [found] doubles as the reward memo: a signature already recorded is
     never re-scored, it only has its visit counter bumped. *)
  let evaluate op =
    let key = Graph.operator_signature op in
    match Hashtbl.find_opt found key with
    | Some (op0, r, n) ->
        Hashtbl.replace found key (op0, r, n + 1);
        r
    | None ->
        let r = reward op in
        Hashtbl.add found key (op, r, 1);
        r
  in
  (* Rollout: random guided walk from the node's state.  Every complete
     state along the way is evaluated and recorded (Algorithm 1 keeps
     enumerating past a match); the rollout's value is the best reward
     seen.  The walk stops after [rollout_depth] actions or at the
     global primitive cap, whichever comes first. *)
  let rollout node =
    let horizon = min enum_cfg.Enumerate.max_prims (node.depth + config.rollout_depth) in
    let rec go depth g best =
      let best =
        match Enumerate.try_complete enum_cfg g with
        | Some op -> Float.max best (evaluate op)
        | None -> best
      in
      if depth >= horizon then best
      else
        match
          Enumerate.guided_children enum_cfg dist g
            ~budget:(enum_cfg.Enumerate.max_prims - depth - 1)
        with
        | [] -> best
        | options -> go (depth + 1) (Enumerate.pick_guided rng options) best
    in
    go node.depth node.state 0.0
  in
  let expand node =
    match node.children with
    | Some c -> c
    | None ->
        let kids =
          List.filter
            (fun (_, g') ->
              Distance.within dist
                ~current:(Graph.frontier_sizes g')
                ~desired:enum_cfg.Enumerate.desired_shape
                ~budget:(enum_cfg.Enumerate.max_prims - node.depth - 1))
            (Enumerate.children enum_cfg node.state)
        in
        let arr =
          Array.of_list (List.map (fun (p, g') -> (p, make_node g' (node.depth + 1))) kids)
        in
        node.children <- Some arr;
        arr
  in
  let ucb parent_visits child =
    if child.visits = 0 then infinity
    else
      (child.total /. float_of_int child.visits)
      +. (config.exploration
          *. sqrt (log (float_of_int (max 1 parent_visits)) /. float_of_int child.visits))
  in
  let rec simulate node =
    node.visits <- node.visits + 1;
    (* Terminal reward opportunity at this node. *)
    let r =
      let kids = expand node in
      if Array.length kids = 0 then
        match Enumerate.try_complete enum_cfg node.state with
        | Some op -> evaluate op
        | None -> 0.0
      else begin
        (* pick by UCB; unvisited children first *)
        let best = ref 0 in
        for i = 1 to Array.length kids - 1 do
          let _, ci = kids.(i) and _, cb = kids.(!best) in
          if ucb node.visits ci > ucb node.visits cb then best := i
        done;
        let _, child = kids.(!best) in
        if child.visits = 0 then begin
          child.visits <- 1;
          let r = rollout child in
          child.total <- child.total +. r;
          r
        end
        else simulate child
      end
    in
    node.total <- node.total +. r;
    r
  in
  let root = make_node (Graph.init enum_cfg.Enumerate.output_shape) 0 in
  for _ = 1 to config.iterations do
    ignore (simulate root)
  done;
  found

(* Sort by decreasing reward, breaking ties on the signature so the
   ordering is independent of hash-table iteration order. *)
let to_results found =
  Hashtbl.fold (fun key (op, r, n) acc -> (key, { operator = op; reward = r; visits = n }) :: acc)
    found []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b.reward a.reward with 0 -> compare ka kb | c -> c)
  |> List.map snd

let search ?(config = default_config ()) enum_cfg ~reward ~rng () =
  to_results (run_tree ~config ~enum_cfg ~reward ~rng)

let search_parallel ?(config = default_config ()) ?pool ~trees enum_cfg ~reward ~rng () =
  let trees = max 1 trees in
  (* Derive the per-tree generators up front, sequentially, so the set
     of trees (and hence the merged result) depends only on [rng] and
     [trees], never on how the pool schedules them. *)
  let rngs = Array.make trees rng in
  for i = 0 to trees - 1 do
    rngs.(i) <- Nd.Rng.split rng
  done;
  let run rng = run_tree ~config ~enum_cfg ~reward ~rng in
  let tables =
    match pool with
    | Some pool -> Par.Pool.map pool run rngs
    | None -> Par.Pool.map (Par.Pool.get_default ()) run rngs
  in
  let merged : (string, Graph.operator * float * int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun key (op, r, n) ->
          match Hashtbl.find_opt merged key with
          | None -> Hashtbl.add merged key (op, r, n)
          | Some (op0, r0, n0) -> Hashtbl.replace merged key (op0, Float.max r0 r, n0 + n))
        tbl)
    tables;
  to_results merged
