module Cancel = Robust.Cancel

type ctx = {
  assignment : Shard.assignment;
  attempt : int;
  forked : bool;
  beat : unit -> unit;
  cancel : Cancel.t;
}

type config = {
  shards : int;
  workers : int;
  heartbeat_timeout : float;
  shard_deadline : float option;
  max_restarts : int;
  backoff : float;
  grace : float;
}

let default_config ?(shards = 2) () =
  {
    shards = max 1 shards;
    workers = max 1 shards;
    heartbeat_timeout = 10.0;
    shard_deadline = None;
    max_restarts = 2;
    backoff = 0.05;
    grace = 2.0;
  }

type status = Done | Interrupted | Failed of string

type shard_report = { sh_id : int; sh_status : status; sh_attempts : int; sh_kills : int }

type report = {
  rp_merge : Shard.merge_report;
  rp_shards : shard_report list;
  rp_restarts : int;
  rp_interrupted : bool;
  rp_wall : float;
}

(* A shard waiting (again) for a worker slot. *)
type task = { t_shard : int; t_attempt : int; t_not_before : float }

(* A live forked worker. *)
type worker = {
  w_pid : int;
  w_shard : int;
  w_attempt : int;
  w_fd : Unix.file_descr;  (* read end of the heartbeat pipe *)
  mutable w_last_beat : float;
  w_started : float;
  mutable w_killed : bool;  (* supervisor already SIGKILLed it *)
}

let rec waitpid_nohang pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | exception Unix.Unix_error (EINTR, _, _) -> waitpid_nohang pid
  | r -> r

let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* --- The forked-worker body ------------------------------------------------ *)

(* Runs in the child; never returns.  [Unix._exit] skips [at_exit] and
   stdio flushing so inherited buffers are not written twice. *)
let child_main ~assignment ~attempt ~body ~write_fd =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let token = Cancel.create () in
  let trip _ = Cancel.cancel ~reason:"shutdown signal" token in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle trip);
  Sys.set_signal Sys.sigint (Sys.Signal_handle trip);
  (* Heartbeats are rate-limited and non-blocking: a stalled coordinator
     must never wedge a healthy worker on a full pipe. *)
  (try Unix.set_nonblock write_fd with Unix.Unix_error _ -> ());
  let last = ref 0.0 in
  let byte = Bytes.make 1 'b' in
  let beat () =
    let now = Unix.gettimeofday () in
    if now -. !last >= 0.02 then begin
      last := now;
      try ignore (Unix.write write_fd byte 0 1) with Unix.Unix_error _ -> ()
    end
  in
  beat ();
  let code =
    try
      body { assignment; attempt; forked = true; beat; cancel = token };
      if Cancel.is_cancelled token then 130 else 0
    with
    | Cancel.Cancelled _ -> 130
    | exn ->
        (try
           Printf.eprintf "syno shard %d worker: %s\n%!" assignment.Shard.shard_id
             (Printexc.to_string exn)
         with _ -> ());
        70
  in
  Unix._exit code

(* --- Supervision ----------------------------------------------------------- *)

let run ?(config = default_config ()) ?cancel ~base ~seed ~body () =
  let cancel = match cancel with Some c -> c | None -> Cancel.create () in
  let t0 = Unix.gettimeofday () in
  let shards = max 1 config.shards in
  let workers_max = max 1 config.workers in
  let assignments = List.init shards (fun i -> Shard.make ~base ~seed ~shards ~shard_id:i) in
  let assignment = Array.of_list assignments in
  let attempts = Array.make shards 0 in
  let kills = Array.make shards 0 in
  let final : status option array = Array.make shards None in
  let restarts = ref 0 in
  let interrupted = ref false in
  let pending = ref (List.init shards (fun i -> { t_shard = i; t_attempt = 0; t_not_before = 0.0 })) in
  let running : worker list ref = ref [] in

  let spawn task =
    let rfd, wfd = Unix.pipe () in
    (* A failed fork must not leak the pipe: over enough restart cycles
       (EAGAIN under fork pressure) the coordinator would exhaust its fd
       table and take every future spawn down with it. *)
    let fork () =
      try Unix.fork ()
      with e ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        (try Unix.close wfd with Unix.Unix_error _ -> ());
        raise e
    in
    match fork () with
    | 0 ->
        (* Child: drop every coordinator-side fd we inherited — the read
           end of our own pipe and the read ends of every sibling. *)
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        List.iter (fun wk -> try Unix.close wk.w_fd with Unix.Unix_error _ -> ()) !running;
        child_main ~assignment:assignment.(task.t_shard) ~attempt:task.t_attempt ~body
          ~write_fd:wfd
    | pid ->
        (try Unix.close wfd with Unix.Unix_error _ -> ());
        attempts.(task.t_shard) <- attempts.(task.t_shard) + 1;
        let now = Unix.gettimeofday () in
        running :=
          {
            w_pid = pid;
            w_shard = task.t_shard;
            w_attempt = task.t_attempt;
            w_fd = rfd;
            w_last_beat = now;
            w_started = now;
            w_killed = false;
          }
          :: !running
  in

  let start_ready () =
    let now = Unix.gettimeofday () in
    let rec go () =
      if List.length !running < workers_max then
        let ready, waiting = List.partition (fun t -> t.t_not_before <= now) !pending in
        match List.sort (fun a b -> compare a.t_shard b.t_shard) ready with
        | [] -> ()
        | t :: rest ->
            pending := rest @ waiting;
            spawn t;
            go ()
    in
    go ()
  in

  let retire wk outcome =
    (try Unix.close wk.w_fd with Unix.Unix_error _ -> ());
    running := List.filter (fun w -> w != wk) !running;
    match outcome with
    | `Done -> final.(wk.w_shard) <- Some Done
    | `Interrupted -> final.(wk.w_shard) <- Some Interrupted
    | `Failed reason ->
        if Cancel.is_cancelled cancel then final.(wk.w_shard) <- Some Interrupted
        else if wk.w_attempt < config.max_restarts then begin
          incr restarts;
          let delay = config.backoff *. (2.0 ** float_of_int wk.w_attempt) in
          pending :=
            {
              t_shard = wk.w_shard;
              t_attempt = wk.w_attempt + 1;
              t_not_before = Unix.gettimeofday () +. max 0.0 delay;
            }
            :: !pending
        end
        else final.(wk.w_shard) <- Some (Failed reason)
  in

  let reap () =
    List.iter
      (fun wk ->
        match waitpid_nohang wk.w_pid with
        | 0, _ -> ()
        | _, Unix.WEXITED 0 -> retire wk `Done
        | _, Unix.WEXITED 130 -> retire wk `Interrupted
        | _, Unix.WEXITED code -> retire wk (`Failed (Printf.sprintf "exit %d" code))
        | _, Unix.WSIGNALED s -> retire wk (`Failed (Printf.sprintf "signal %d" s))
        | _, Unix.WSTOPPED _ -> ())
      (List.filter (fun _ -> true) !running)
  in

  let drain timeout =
    match !running with
    | [] -> if timeout > 0.0 then Unix.sleepf timeout
    | workers -> (
        let fds = List.map (fun wk -> wk.w_fd) workers in
        match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | ready, _, _ ->
            let now = Unix.gettimeofday () in
            let buf = Bytes.create 256 in
            List.iter
              (fun fd ->
                match Unix.read fd buf 0 256 with
                | exception Unix.Unix_error _ -> ()
                | 0 -> ()  (* EOF: writer exited; [reap] collects it *)
                | _ -> (
                    match List.find_opt (fun wk -> wk.w_fd = fd) !running with
                    | Some wk -> wk.w_last_beat <- now
                    | None -> ()))
              ready)
  in

  let monitor () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun wk ->
        if not wk.w_killed then
          let silent =
            config.heartbeat_timeout > 0.0
            && now -. wk.w_last_beat > config.heartbeat_timeout
          in
          let overdue =
            match config.shard_deadline with
            | Some d -> now -. wk.w_started > d
            | None -> false
          in
          if silent || overdue then begin
            wk.w_killed <- true;
            kills.(wk.w_shard) <- kills.(wk.w_shard) + 1;
            kill_quiet wk.w_pid Sys.sigkill
          end)
      !running
  in

  let cascade () =
    List.iter (fun wk -> kill_quiet wk.w_pid Sys.sigterm) !running;
    let deadline = Unix.gettimeofday () +. max 0.0 config.grace in
    while !running <> [] && Unix.gettimeofday () < deadline do
      drain 0.05;
      reap ()
    done;
    List.iter (fun wk -> kill_quiet wk.w_pid Sys.sigkill) !running;
    let tries = ref 200 in
    while !running <> [] && !tries > 0 do
      decr tries;
      Unix.sleepf 0.02;
      reap ()
    done;
    (* Anything not reaped in time, and every shard that never resolved,
       is interrupted: its checkpoint (if any) still merges below. *)
    List.iter (fun wk -> retire wk `Interrupted) (List.filter (fun _ -> true) !running);
    Array.iteri (fun i f -> if f = None then final.(i) <- Some Interrupted) final
  in

  let all_done () = Array.for_all Option.is_some final in
  while not (all_done ()) do
    if Cancel.is_cancelled cancel then begin
      interrupted := true;
      cascade ()
    end
    else begin
      start_ready ();
      drain 0.05;
      reap ();
      monitor ()
    end
  done;

  let merge = Shard.load_and_merge assignments in
  {
    rp_merge = merge;
    rp_shards =
      List.init shards (fun i ->
          {
            sh_id = i;
            sh_status = (match final.(i) with Some s -> s | None -> Interrupted);
            sh_attempts = attempts.(i);
            sh_kills = kills.(i);
          });
    rp_restarts = !restarts;
    rp_interrupted = !interrupted;
    rp_wall = Unix.gettimeofday () -. t0;
  }

let run_inline ?(config = default_config ()) ?cancel ~base ~seed ~body () =
  let cancel = match cancel with Some c -> c | None -> Cancel.create () in
  let t0 = Unix.gettimeofday () in
  let shards = max 1 config.shards in
  let assignments = List.init shards (fun i -> Shard.make ~base ~seed ~shards ~shard_id:i) in
  let shard_reports =
    List.map
      (fun (a : Shard.assignment) ->
        if Cancel.is_cancelled cancel then
          { sh_id = a.Shard.shard_id; sh_status = Interrupted; sh_attempts = 0; sh_kills = 0 }
        else
          let token = Cancel.create ~parent:cancel () in
          let status =
            try
              body
                {
                  assignment = a;
                  attempt = 0;
                  forked = false;
                  beat = (fun () -> ());
                  cancel = token;
                };
              if Cancel.is_cancelled cancel then Interrupted else Done
            with
            | Cancel.Cancelled _ -> Interrupted
            | exn -> Failed (Printexc.to_string exn)
          in
          { sh_id = a.Shard.shard_id; sh_status = status; sh_attempts = 1; sh_kills = 0 })
      assignments
  in
  {
    rp_merge = Shard.load_and_merge assignments;
    rp_shards = shard_reports;
    rp_restarts = 0;
    rp_interrupted = Cancel.is_cancelled cancel;
    rp_wall = Unix.gettimeofday () -. t0;
  }
