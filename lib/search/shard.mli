(** Search-space sharding and checkpoint merging.

    The paper runs its MCTS on a fleet of worker machines; this module
    is the pure half of our reproduction of that setup: it decides
    {e what each worker owns} and {e how their results combine}, while
    {!Coordinator} owns the processes.

    {b Partitioning.}  The space is split by {e root action}: the first
    primitive applied to the empty pGraph.  Each root action is hashed
    together with the run seed and assigned to exactly one of [shards]
    shards; a shard's search restricts the MCTS root to its owned
    actions ({!Mcts.search_run}'s [root_filter]) and explores the
    subtrees below them completely.  The assignment depends only on
    [(seed, shards, action)], so every process — and a fork-free
    re-execution — computes the same partition.

    {b Merging.}  Workers publish atomic per-shard checkpoints
    ({!Checkpoint}); the coordinator merges them into one reward memo.
    Entries are deduplicated by operator signature (distinct root
    actions can reach the same canonical operator).  On a conflict the
    rule is {e quarantine wins}: a quarantine verdict from any shard is
    a refusal of the candidate and survives the merge, while two clean
    entries keep the NaN-safe best reward; visit counts are summed.
    Corrupt, truncated, or missing shard files are {e quarantined as
    files} — reported, skipped, never fatal — via the typed
    {!Checkpoint.load_result}.

    {b Determinism.}  A shard's trajectory is a deterministic function
    of its derived seed, its partition, and its (deterministic) reward
    memo, and resuming from its own checkpoint replays to identical
    results; the merge is deterministic in shard order.  Hence an
    N-shard run — even one with worker kills and restarts — merges to
    exactly the result of running the same N shard searches
    sequentially in one process ({!Coordinator.run_inline}). *)

type assignment = {
  shard_id : int;  (** in [[0, shards)] *)
  shards : int;
  seed : int;  (** the run seed the partition is keyed on *)
  path : string;  (** this shard's checkpoint file *)
}

val make : base:string -> seed:int -> shards:int -> shard_id:int -> assignment
(** Assignment for one shard; [path] is {!checkpoint_path}[ ~base
    ~shard_id].  Raises [Invalid_argument] unless
    [0 <= shard_id < shards]. *)

val checkpoint_path : base:string -> shard_id:int -> string
(** [base ^ ".shard" ^ id] — every shard writes next to the merged
    run's base path. *)

val derive_seed : seed:int -> shard_id:int -> int
(** The RNG seed for shard [shard_id]'s search: a splitmix64 mix of
    [(seed, shard_id)], so shards never share a random stream yet the
    whole fleet is reproducible from one seed. *)

val owner : seed:int -> shards:int -> string -> int
(** Which shard owns a root-action key (its {!Pgraph.Trace_io}
    rendering).  Pure, stable across processes (no [Hashtbl.hash]). *)

val root_filter : assignment -> Pgraph.Prim.t -> bool
(** The {!Mcts.search_run} [root_filter] for this assignment: accept
    exactly the root actions {!owner} maps to [shard_id]. *)

(** {1 Merging shard checkpoints} *)

val merge_entries : Checkpoint.entry list list -> Checkpoint.entry list * int
(** Merge per-shard entry lists (in shard order) into one memo, with
    the number of signature conflicts resolved.  Dedup by signature;
    quarantine-wins; clean/clean conflicts keep the NaN-safe best
    reward; visits summed.  Result sorted by signature. *)

type merge_report = {
  mr_entries : Checkpoint.entry list;  (** merged memo, sorted by signature *)
  mr_loaded : int list;  (** shards whose checkpoint loaded cleanly *)
  mr_missing : int list;  (** shards with no checkpoint file at all *)
  mr_quarantined : (int * Checkpoint.error) list;
      (** shards whose file existed but failed the typed load — damaged
          after a successful write (e.g. a mid-write SIGKILL of some
          external truncation); their entries are skipped, the merge
          proceeds *)
  mr_conflicts : int;  (** duplicate signatures resolved *)
}

val load_and_merge : assignment list -> merge_report
(** Load every shard's checkpoint with {!Checkpoint.load_result} and
    merge what loads.  Never raises on damaged files. *)

val rank : Checkpoint.entry list -> Checkpoint.entry list
(** Result ordering for a merged memo, matching {!Mcts} ranking:
    quarantined entries last, NaN rewards as -inf, reward descending,
    ties on signature. *)
