module Trace_io = Pgraph.Trace_io

type assignment = { shard_id : int; shards : int; seed : int; path : string }

let checkpoint_path ~base ~shard_id = Printf.sprintf "%s.shard%d" base shard_id

let make ~base ~seed ~shards ~shard_id =
  if shards < 1 || shard_id < 0 || shard_id >= shards then
    invalid_arg
      (Printf.sprintf "Shard.make: shard_id %d out of range for %d shards" shard_id shards);
  { shard_id; shards; seed; path = checkpoint_path ~base ~shard_id }

(* splitmix64 finalizer — the partition must be identical across
   processes and builds, so no [Hashtbl.hash]. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive_seed ~seed ~shard_id =
  Int64.to_int
    (Int64.logand
       (mix64 (Int64.of_int (seed lxor ((shard_id + 1) * 0x9e3779b9))))
       0x3fffffffffffffffL)

let hash_key ~seed key =
  let h = ref (mix64 (Int64.of_int (seed lxor 0x5851f42d))) in
  String.iter
    (fun c ->
      h := mix64 (Int64.add (Int64.mul !h 0x100000001b3L) (Int64.of_int (Char.code c))))
    key;
  !h

let owner ~seed ~shards key =
  let shards = max 1 shards in
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash_key ~seed key) 1)
                  (Int64.of_int shards))

let root_filter a prim =
  owner ~seed:a.seed ~shards:a.shards (Trace_io.prim_to_string prim) = a.shard_id

(* --- Merging --------------------------------------------------------------- *)

(* NaN-safe best: a NaN never wins (or poisons) a comparison. *)
let fmax a b = if Float.is_nan b then a else if Float.is_nan a then b else Float.max a b

(* Quarantine-wins: a quarantine is a deterministic refusal of the
   candidate (admission verdict, or an exhausted retry schedule under
   that shard's fault stream), so it survives the merge; the shards'
   transient disagreements were already retried inside each shard.
   Clean/clean conflicts keep the best reward, as in root-parallel
   merging.  Deterministic in the order of the input lists. *)
let merge_pair (a : Checkpoint.entry) (b : Checkpoint.entry) =
  let visits = a.Checkpoint.visits + b.Checkpoint.visits in
  match (a.Checkpoint.quarantined, b.Checkpoint.quarantined) with
  | true, false -> { a with Checkpoint.visits }
  | false, true -> { b with Checkpoint.visits }
  | true, true -> { a with Checkpoint.visits }
  | false, false ->
      { a with Checkpoint.visits; reward = fmax a.Checkpoint.reward b.Checkpoint.reward }

let merge_entries lists =
  let tbl : (string, Checkpoint.entry) Hashtbl.t = Hashtbl.create 64 in
  let conflicts = ref 0 in
  List.iter
    (List.iter (fun (e : Checkpoint.entry) ->
         match Hashtbl.find_opt tbl e.Checkpoint.signature with
         | None -> Hashtbl.add tbl e.Checkpoint.signature e
         | Some prev ->
             incr conflicts;
             Hashtbl.replace tbl e.Checkpoint.signature (merge_pair prev e)))
    lists;
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
    |> List.sort (fun (a : Checkpoint.entry) b ->
           compare a.Checkpoint.signature b.Checkpoint.signature)
  in
  (entries, !conflicts)

type merge_report = {
  mr_entries : Checkpoint.entry list;
  mr_loaded : int list;
  mr_missing : int list;
  mr_quarantined : (int * Checkpoint.error) list;
  mr_conflicts : int;
}

let load_and_merge assignments =
  let loaded = ref [] and missing = ref [] and quarantined = ref [] in
  let lists =
    List.filter_map
      (fun a ->
        if not (Sys.file_exists a.path) then begin
          missing := a.shard_id :: !missing;
          None
        end
        else
          match Checkpoint.load_result ~path:a.path with
          | Ok entries ->
              loaded := a.shard_id :: !loaded;
              Some entries
          | Error err ->
              quarantined := (a.shard_id, err) :: !quarantined;
              None)
      assignments
  in
  let entries, conflicts = merge_entries lists in
  {
    mr_entries = entries;
    mr_loaded = List.rev !loaded;
    mr_missing = List.rev !missing;
    mr_quarantined = List.rev !quarantined;
    mr_conflicts = conflicts;
  }

let rank entries =
  let key r = if Float.is_nan r then neg_infinity else r in
  List.sort
    (fun (a : Checkpoint.entry) (b : Checkpoint.entry) ->
      match compare a.Checkpoint.quarantined b.Checkpoint.quarantined with
      | 0 -> (
          match compare (key b.Checkpoint.reward) (key a.Checkpoint.reward) with
          | 0 -> compare a.Checkpoint.signature b.Checkpoint.signature
          | c -> c)
      | c -> c)
    entries
