(** Crash-tolerant coordinator for sharded multi-process search.

    {!Shard} decides what each worker owns and how results merge; this
    module owns the processes.  {!run} forks up to [workers] children,
    hands each a {!Shard.assignment}, and supervises them over pipes:
    every worker heartbeats through an inherited pipe, and the
    coordinator SIGKILLs a worker whose heartbeat goes silent for
    [heartbeat_timeout] seconds or whose attempt outlives
    [shard_deadline].  A dead shard (crash, kill, nonzero exit) is
    re-queued with exponential backoff and picked up by the next free
    worker slot — its unfinished partition is redistributed to the
    survivors, resumed from its own atomic checkpoint — until its
    [max_restarts] budget is exhausted, at which point it is reported
    [Failed] and whatever checkpoint it managed still merges.

    Shutdown: when [cancel] trips (the CLI's SIGINT/SIGTERM handlers),
    the coordinator cascades SIGTERM to every live worker; each worker's
    own handler trips its in-process token, the search returns at the
    next safe point, the checkpoint flushes, and the worker exits 130.
    Workers still alive after [grace] seconds are SIGKILLed.

    Determinism: {!run_inline} executes the {e same} shard bodies
    sequentially in-process — identical assignments, identical derived
    seeds, no forks — and merges identically.  Because each shard's
    trajectory is deterministic in (seed, partition, memoized rewards)
    and checkpoint resume replays exactly, a forked run with kills and
    restarts merges to the same result as [run_inline].  [bench shard]
    and the test suite assert this end to end. *)

(** What a shard body sees.  The body runs once per attempt — in a
    forked child under {!run}, in-process under {!run_inline} — and
    must persist its results at [assignment.path] (atomically; see
    {!Checkpoint}) before returning. *)
type ctx = {
  assignment : Shard.assignment;
  attempt : int;  (** 0 on the first try, incremented per restart *)
  forked : bool;  (** [false] under {!run_inline} *)
  beat : unit -> unit;
      (** heartbeat — call it often (e.g. once per reward evaluation).
          Rate-limited and non-blocking internally; a no-op inline. *)
  cancel : Robust.Cancel.t;
      (** per-attempt shutdown token; in a worker it trips on
          SIGTERM/SIGINT, inline it is (a child of) the caller's token *)
}

type config = {
  shards : int;  (** partition count, >= 1 *)
  workers : int;  (** max concurrent worker processes, >= 1 *)
  heartbeat_timeout : float;
      (** seconds of heartbeat silence before the worker is killed;
          [<= 0.] disables the monitor *)
  shard_deadline : float option;  (** per-attempt wall-clock bound *)
  max_restarts : int;  (** restarts per shard beyond the first attempt *)
  backoff : float;
      (** base restart delay in seconds, doubled per attempt *)
  grace : float;
      (** seconds between the SIGTERM cascade and SIGKILL *)
}

val default_config : ?shards:int -> unit -> config
(** [shards] defaults to 2; workers = shards, heartbeat 10s, no
    deadline, 2 restarts, 0.05s backoff, 2s grace. *)

(** How a shard ended. *)
type status =
  | Done  (** final attempt returned normally (worker exit 0) *)
  | Interrupted
      (** shutdown: the body observed [cancel] (worker exit 130), or the
          shard never got to run before the cascade *)
  | Failed of string  (** restart budget exhausted; last failure named *)

type shard_report = {
  sh_id : int;
  sh_status : status;
  sh_attempts : int;  (** attempts actually started *)
  sh_kills : int;  (** supervisor kills (heartbeat / deadline) *)
}

type report = {
  rp_merge : Shard.merge_report;  (** merged from {e all} shard files *)
  rp_shards : shard_report list;  (** in shard order *)
  rp_restarts : int;  (** total re-queues across shards *)
  rp_interrupted : bool;  (** [cancel] tripped during the run *)
  rp_wall : float;  (** coordinator wall-clock seconds *)
}

val run :
  ?config:config ->
  ?cancel:Robust.Cancel.t ->
  base:string ->
  seed:int ->
  body:(ctx -> unit) ->
  unit ->
  report
(** Fork, supervise, restart, merge.  [base] and [seed] fix the
    assignments ({!Shard.make}); [body] runs in each child.  Exceptions
    escaping [body] in a child become exit code 70 and count as a
    failure (restartable); the coordinator itself never raises on
    worker failure or damaged checkpoints. *)

val run_inline :
  ?config:config ->
  ?cancel:Robust.Cancel.t ->
  base:string ->
  seed:int ->
  body:(ctx -> unit) ->
  unit ->
  report
(** The fork-free reference execution: the same shard bodies, run
    sequentially in this process ([forked = false], one attempt each,
    no supervision), merged identically.  An exception from [body]
    marks that shard [Failed] and the run continues; a tripped [cancel]
    marks the remaining shards [Interrupted]. *)
