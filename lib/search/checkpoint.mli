(** Search checkpointing: persist the memoized found-table.

    A search's durable state is exactly its reward memo — the map from
    operator signature to (operator, reward, quarantined) — because the
    MCTS trajectory is a deterministic function of the seed and the
    memoized rewards.  Serializing that table at a configurable cadence
    makes a killed search resumable: reloading the file pre-seeds the
    memo, already-scored candidates are never re-evaluated, and a
    fault-free resumed run reproduces the same results as an
    uninterrupted one (visit counters are recounted by the replayed
    trajectory, so they match too).

    Format (text, one [entry:] header per candidate followed by its
    {!Pgraph.Trace_io} block):
    {v
    syno-checkpoint v1
    entries: 2
    entry: reward 0x1.91p-1 visits 3 quarantined false
    entry: reward -0x1p0 visits 1 quarantined true reason static_violation
    syno-operator v1
    output: N C_out H W
    input: N C_in H W
    trace: Reduce(C_in); ...
    entry: ...
    v}
    Rewards are printed as hexadecimal floats so they round-trip
    exactly.  Files are written atomically (temp file + rename), so a
    kill during a write never corrupts the previous snapshot. *)

type entry = {
  signature : string;
  operator : Pgraph.Graph.operator;
  reward : float;
  visits : int;
  quarantined : bool;
  reason : string option;
      (** why a quarantined entry was refused — a {!Robust.Guard}
          kind label (e.g. [static_violation]); single token, optional
          in the file format so pre-[reason] snapshots still load *)
}

val save : path:string -> entry list -> unit
(** Atomic write of a snapshot. *)

(** Why a snapshot failed to load.  Snapshots are written atomically,
    so any of these means the file was damaged {e after} a successful
    write (or is not a checkpoint at all) — resuming from it would
    silently drop completed evaluations, hence the typed refusal. *)
type error =
  | Io of string  (** the file cannot be opened/read *)
  | Bad_header of string  (** first line is not the checkpoint magic *)
  | Truncated of { expected : int; found : int }
      (** the [entries:] count in the header disagrees with the number
          of entry blocks actually present *)
  | Corrupt of string  (** an entry header or trace block fails to parse *)

val string_of_error : error -> string

val load_result : path:string -> (entry list, error) result
(** Parse a snapshot; each operator is rebuilt by replaying its trace.
    Entries are returned sorted by signature. *)

val load : path:string -> (entry list, string) result
(** [load_result] with the error rendered by {!string_of_error}. *)

(** {1 Cadence-driven sink}

    The sink accumulates every newly evaluated candidate and rewrites
    the snapshot once [every] new entries have arrived (plus a final
    {!flush}).  It is safe to share across the domains of a parallel
    search: notes are serialized by an internal mutex. *)

type sink

val sink : path:string -> ?every:int -> unit -> sink
(** [sink ~path ~every ()] writes after every [every] new candidates
    (default 50, clamped to >= 1). *)

val preload : sink -> entry list -> unit
(** Seed the sink with previously persisted entries {e without}
    counting toward the cadence.  A resumed search must preload the
    entries it resumed from, so every snapshot it writes still carries
    the full history — otherwise a second kill/resume cycle would
    silently shrink the memo.  Entries already in the sink (noted since)
    win over preloaded ones. *)

val note : sink -> entry -> unit
(** Record a candidate (replacing any previous entry with the same
    signature) and write the snapshot when the cadence is reached. *)

val flush : sink -> unit
(** Write the snapshot now if anything changed since the last write (or
    if nothing was ever written, so the file always exists). *)

val writes : sink -> int
(** Snapshots written so far. *)

val path : sink -> string
