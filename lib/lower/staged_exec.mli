(** Execution of materialized-reduction plans (\u{00a7}8).

    {!Staging.optimize} chooses which reductions to materialize early;
    this module actually runs that schedule on [nd] tensors: each stage
    sums one reduction iterator into an intermediate tensor indexed by
    the residual coordinate expressions, and the final stage contracts
    what remains over the output/remaining-reduction loops.

    The result is numerically identical to {!Reference.forward} (up to
    floating-point association) and is differential-tested against it —
    the staging cost model is thereby validated semantically, not just
    arithmetically. *)

type t

val compile : Pgraph.Graph.operator -> Shape.Valuation.t -> t
(** Compiles the operator together with its optimal staging plan. *)

val plan : t -> Staging.plan
val num_stages : t -> int
(** Materialized stages (0 = plain loop nest). *)

val operator : t -> Pgraph.Graph.operator
val valuation : t -> Shape.Valuation.t
val reference : t -> Reference.t
(** The reference lowering used for shapes and the iterator layout. *)

type fdim = { expr : Coord.Ast.t; extent : int; lo : int }
(** A runtime factor dimension: the coordinate expression that indexes
    it, its extent, and the value corresponding to index 0.  Accesses
    outside [lo, lo + extent) clip to zero. *)

type factor = { dims : fdim list; data : Nd.Tensor.t }

val initial_factors : t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> factor list
(** The factor list the first stage starts from: the input gather
    followed by one factor per weight group, in operator order. *)

(** {2 Symbolic plan}

    The complete loop-nest structure of {!forward}, exported so the
    static layer ([Analysis.Regions], [Analysis.Certify]) and the
    specializing compiler ({!Specialize}) consume the very same
    bookkeeping the executor runs — they cannot drift. *)

type use = {
  u_expr : Coord.Ast.t;  (** the original indexing expression *)
  u_lo : int;  (** start of the in-bounds window *)
  u_extent : int;  (** window length; indices outside clip to zero *)
  u_slot : int;  (** slot of the new tensor carrying the residual; -1 if consumed *)
  u_base : int;  (** residual constant when consumed ([u_slot = -1]) *)
  u_coef : int;  (** linear coefficient of the reduced iterator *)
}
(** One factor-dimension access of a materialization stage.  The value
    the executor produces at position [pos] and reduction step [r] is
    [(if u_slot >= 0 then pos.(u_slot) + lows.(u_slot) else u_base) +
    u_coef * r]. *)

type stage_sym = {
  ss_dom : int;  (** extent of the reduced iterator *)
  ss_extents : int array;  (** dims of the materialized tensor *)
  ss_lows : int array;  (** value of position 0 per materialized dim *)
  ss_uses : use array array;  (** per participating factor, per dim *)
  ss_participating : int array;  (** indices into the incoming factor list *)
  ss_others : int array;  (** indices of untouched factors, order preserved *)
  ss_new_dims : fdim list;  (** the materialized factor's dim list *)
}

type final_sym = {
  fs_out_ids : int array;  (** output iterator ids, loop order *)
  fs_out_doms : int array;  (** output iterator extents *)
  fs_red_ids : int array;  (** remaining reduction iterator ids, loop order *)
  fs_red_doms : int array;  (** remaining reduction extents *)
  fs_env_size : int;  (** size of the iterator environment array *)
  fs_factors : (Coord.Ast.t * int * int) array array;
      (** per remaining factor, per dim: (expr, window lo, window extent) *)
}

val symbolic_plan : t -> stage_sym list * final_sym
(** One {!stage_sym} per materialization stage in plan order (the next
    stage's factor list is the materialized tensor followed by the
    [ss_others] factors in order), then the final contraction.  Pure
    arithmetic: allocates no tensor. *)

val poll_mask : int
(** Cancellation poll cadence of the flat element loops (poll every
    [poll_mask + 1] elements); shared with {!Specialize}. *)

val par_threshold : int
(** Minimum estimated scalar work before a flat loop is offered to the
    default pool; shared with {!Specialize}. *)

type access = {
  acc_expr : Coord.Ast.t;  (** the indexing expression *)
  acc_lo : int;  (** start of the in-bounds window *)
  acc_extent : int;  (** window length; indices outside clip to zero *)
  acc_values : (int * int) option;
      (** inclusive range of values the executor actually produces for
          this access, when determined positionally (intermediate
          stages enumerate the dense residual window shifted by the
          reduction term); [None] in the final stage, where the
          expression is evaluated directly over the remaining iterator
          domains and the caller can bound it itself *)
}
(** One factor-dimension access the executor performs, as seen by the
    static bounds verifier ({!Analysis.Verify}). *)

val access_plan : t -> access list list
(** The complete static access structure of {!forward}: one list per
    materialization stage (in plan order) followed by the final
    contraction stage.  Mirrors the executor's factor bookkeeping
    exactly but allocates no tensor. *)

val forward :
  ?cancel:Robust.Cancel.t -> t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t
(** Stages whose estimated work (output elements times reduction
    extent) is large enough run their flat element loop on the default
    pool ({!Par.Pool.get_default}): each output element is computed
    independently with domain-private scratch, so the result is
    bit-identical to the sequential loop at any pool size.  Small
    stages, size-1 pools, and nested or contended submissions run
    sequentially on the caller as before.

    [cancel] makes the executor a cancellation safe point: the token is
    polled at every stage boundary, every few thousand elements inside
    each sequential element loop, and at every range claim when a stage
    runs on the pool, raising [Robust.Cancel.Cancelled] promptly when
    it trips. *)
