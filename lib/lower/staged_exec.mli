(** Execution of materialized-reduction plans (\u{00a7}8).

    {!Staging.optimize} chooses which reductions to materialize early;
    this module actually runs that schedule on [nd] tensors: each stage
    sums one reduction iterator into an intermediate tensor indexed by
    the residual coordinate expressions, and the final stage contracts
    what remains over the output/remaining-reduction loops.

    The result is numerically identical to {!Reference.forward} (up to
    floating-point association) and is differential-tested against it —
    the staging cost model is thereby validated semantically, not just
    arithmetically. *)

type t

val compile : Pgraph.Graph.operator -> Shape.Valuation.t -> t
(** Compiles the operator together with its optimal staging plan. *)

val plan : t -> Staging.plan
val num_stages : t -> int
(** Materialized stages (0 = plain loop nest). *)

type access = {
  acc_expr : Coord.Ast.t;  (** the indexing expression *)
  acc_lo : int;  (** start of the in-bounds window *)
  acc_extent : int;  (** window length; indices outside clip to zero *)
  acc_values : (int * int) option;
      (** inclusive range of values the executor actually produces for
          this access, when determined positionally (intermediate
          stages enumerate the dense residual window shifted by the
          reduction term); [None] in the final stage, where the
          expression is evaluated directly over the remaining iterator
          domains and the caller can bound it itself *)
}
(** One factor-dimension access the executor performs, as seen by the
    static bounds verifier ({!Analysis.Verify}). *)

val access_plan : t -> access list list
(** The complete static access structure of {!forward}: one list per
    materialization stage (in plan order) followed by the final
    contraction stage.  Mirrors the executor's factor bookkeeping
    exactly but allocates no tensor. *)

val forward :
  ?cancel:Robust.Cancel.t -> t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t
(** Stages whose estimated work (output elements times reduction
    extent) is large enough run their flat element loop on the default
    pool ({!Par.Pool.get_default}): each output element is computed
    independently with domain-private scratch, so the result is
    bit-identical to the sequential loop at any pool size.  Small
    stages, size-1 pools, and nested or contended submissions run
    sequentially on the caller as before.

    [cancel] makes the executor a cancellation safe point: the token is
    polled at every stage boundary, every few thousand elements inside
    each sequential element loop, and at every range claim when a stage
    runs on the pool, raising [Robust.Cancel.Cancelled] promptly when
    it trips. *)
