module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Simplify = Coord.Simplify
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor

(* A runtime factor dimension: the coordinate expression that indexes
   it (over the not-yet-reduced iterators), its extent, and the value
   corresponding to index 0.  Accesses outside [lo, lo + extent) clip
   to zero (the Unfold boundary semantics). *)
type fdim = { expr : Ast.t; extent : int; lo : int }

type factor = { dims : fdim list; data : Tensor.t }

type t = {
  reference : Reference.t;  (* for shapes and the iterator layout *)
  op : Graph.operator;
  valuation : Valuation.t;
  plan : Staging.plan;
}

let compile op valuation =
  {
    reference = Reference.compile op valuation;
    op;
    valuation;
    plan = Staging.optimize op valuation;
  }

let plan t = t.plan
let num_stages t = List.length t.plan.Staging.stages
let operator t = t.op
let valuation t = t.valuation
let reference t = t.reference

let iter_in it e = List.exists (fun j -> j.Ast.id = it.Ast.id) (Ast.iters e)

let residual it e =
  let rec strip e =
    match e with
    | Ast.Add (a, b) -> Ast.add (strip a) (strip b)
    | Ast.Sub (a, b) -> Ast.sub (strip a) (strip b)
    | Ast.Iter j when j.Ast.id = it.Ast.id -> Ast.const 0
    | Ast.Mul (_, Ast.Iter j) when j.Ast.id = it.Ast.id -> Ast.const 0
    | e -> e
  in
  Simplify.flatten (strip e)

(* The linear coefficient of [it] in [e]: e = residual + c * it. *)
let coefficient lookup it e =
  let res = residual it e in
  let env1 id = if id = it.Ast.id then 1 else 0 in
  let env0 _ = 0 in
  Ast.eval ~env:env1 ~lookup e - Ast.eval ~env:env1 ~lookup res
  - (Ast.eval ~env:env0 ~lookup e - Ast.eval ~env:env0 ~lookup res)

(* --- Symbolic plan ------------------------------------------------------ *)

(* One factor-dimension access of a materialization stage: the window
   it must hit, the slot of the new tensor that carries its residual
   (or [-1] with the residual constant in [u_base] when the reduction
   alone indexes it), and the linear coefficient of the reduced
   iterator.  The executor's value for this access at position [pos]
   and reduction step [r] is
   [(if u_slot >= 0 then pos.(u_slot) + lows.(u_slot) else u_base) + u_coef * r]. *)
type use = {
  u_expr : Ast.t;
  u_lo : int;
  u_extent : int;
  u_slot : int;
  u_base : int;
  u_coef : int;
}

type stage_sym = {
  ss_dom : int;
  ss_extents : int array;
  ss_lows : int array;
  ss_uses : use array array;
  ss_participating : int array;
  ss_others : int array;
  ss_new_dims : fdim list;
}

type final_sym = {
  fs_out_ids : int array;
  fs_out_doms : int array;
  fs_red_ids : int array;
  fs_red_doms : int array;
  fs_env_size : int;
  fs_factors : (Ast.t * int * int) array array;
}

(* The complete symbolic bookkeeping of one materialization stage.
   [materialize] below consumes this for the numeric loop and
   [access_plan] derives the verifier's access lists from it, so the
   three views (execution, verification, specialization) cannot
   drift. *)
let stage_sym lookup it dom (dims_list : fdim list list) =
  let tagged = List.mapi (fun i dims -> (i, dims)) dims_list in
  let participating, others =
    List.partition
      (fun (_, dims) -> List.exists (fun d -> iter_in it d.expr) dims)
      tagged
  in
  let new_dims : fdim list ref = ref [] in
  let slot_of dim =
    let rec find i = function
      | [] -> None
      | d :: _ when Ast.equal d.expr dim.expr -> Some i
      | _ :: tl -> find (i + 1) tl
    in
    find 0 (List.rev !new_dims)
  in
  let uses =
    List.map
      (fun (_, dims) ->
        Array.of_list
          (List.map
             (fun d ->
               let affected = iter_in it d.expr in
               let c = if affected then coefficient lookup it d.expr else 0 in
               let target =
                 if affected then
                   let res = residual it d.expr in
                   match res with
                   | Ast.Const base -> `Consumed base
                   | res ->
                       (* The executor indexes materialized dims by VALUE,
                          so the extent is the dense range — unlike the
                          cost model, which counts distinct values for
                          strided residuals. *)
                       let lo, hi = Ast.bounds ~lookup res in
                       `Dim { expr = res; extent = hi - lo + 1; lo }
                 else `Dim d
               in
               match target with
               | `Consumed base ->
                   { u_expr = d.expr; u_lo = d.lo; u_extent = d.extent;
                     u_slot = -1; u_base = base; u_coef = c }
               | `Dim nd -> (
                   let slot =
                     match slot_of nd with
                     | Some slot -> slot
                     | None ->
                         new_dims := nd :: !new_dims;
                         List.length !new_dims - 1
                   in
                   { u_expr = d.expr; u_lo = d.lo; u_extent = d.extent;
                     u_slot = slot; u_base = 0; u_coef = c }))
             dims))
      participating
  in
  let dims = List.rev !new_dims in
  {
    ss_dom = dom;
    ss_extents = Array.of_list (List.map (fun d -> d.extent) dims);
    ss_lows = Array.of_list (List.map (fun d -> d.lo) dims);
    ss_uses = Array.of_list uses;
    ss_participating = Array.of_list (List.map fst participating);
    ss_others = Array.of_list (List.map fst others);
    ss_new_dims = dims;
  }

(* Cancellation poll cadence in the flat element loops: coarse enough
   to stay off the per-element profile, fine enough to bound preemption
   latency to a few thousand accumulations. *)
let poll_mask = 4095

(* Minimum estimated scalar operations (output elements times reduction
   extent) before a flat loop is worth offering to the default pool;
   below this the submission overhead dominates.  The pool's own
   granularity tuner still gets the final say — it probes the body and
   falls back to a sequential polled run when the measured per-element
   cost cannot amortize parallel claim overhead. *)
let par_threshold = 1 lsl 12

(* Offer [body] over [0, n) to the default pool when the estimated
   [work] clears the threshold and the pool actually has workers;
   otherwise run [seq ()], the caller's sequential loop with its
   original poll cadence.  Each body invocation must allocate its own
   scratch (index arrays), write only its own output range, and keep
   per-element work self-contained, so results are bit-identical to the
   sequential loop at any pool size. *)
let run_flat ?cancel ~work ~n body seq =
  let pool = Par.Pool.get_default () in
  if work >= par_threshold && Par.Pool.size pool > 1 && n > 1 then
    Par.Pool.parallel_for pool ?cancel ~n body
  else seq ()

(* Materialize the sum over the stage's reduced iterator of the product
   of the participating factors into a new tensor factor, driven by the
   stage's symbolic bookkeeping.  [poll] is called every
   [poll_mask + 1] output elements on the sequential path; the parallel
   path polls [cancel] at every range claim inside the pool. *)
let materialize ~poll ?cancel sym factors =
  let arr = Array.of_list factors in
  let others = List.map (fun i -> arr.(i)) (Array.to_list sym.ss_others) in
  let mapped =
    Array.map
      (fun i -> Tensor.unsafe_data arr.(i).data)
      sym.ss_participating
  in
  let uses = sym.ss_uses in
  let dom = sym.ss_dom in
  let extents = sym.ss_extents in
  let lows = sym.ss_lows in
  let tensor = Tensor.create (if extents = [||] then [||] else Array.copy extents) in
  let data = Tensor.unsafe_data tensor in
  let n_dims = Array.length extents in
  let total = Array.fold_left ( * ) 1 extents in
  let nf = Array.length mapped in
  let element pos flat =
    let rem = ref flat in
    for i = n_dims - 1 downto 0 do
      pos.(i) <- !rem mod extents.(i);
      rem := !rem / extents.(i)
    done;
    let acc = ref 0.0 in
    for r = 0 to dom - 1 do
      let product = ref 1.0 in
      (try
         for fi = 0 to nf - 1 do
           let fdata = mapped.(fi) in
           let fuses = uses.(fi) in
           let off = ref 0 in
           for j = 0 to Array.length fuses - 1 do
             let u = fuses.(j) in
             let value =
               (if u.u_slot >= 0 then pos.(u.u_slot) + lows.(u.u_slot) else u.u_base)
               + (u.u_coef * r)
             in
             let idx = value - u.u_lo in
             if idx < 0 || idx >= u.u_extent then begin
               product := 0.0;
               raise Exit
             end;
             off := (!off * u.u_extent) + idx
           done;
           product := !product *. fdata.(!off)
         done
       with Exit -> ());
      acc := !acc +. !product
    done;
    data.(flat) <- !acc
  in
  let body lo hi =
    let pos = Array.make (max 1 n_dims) 0 in
    for flat = lo to hi - 1 do
      element pos flat
    done
  in
  let seq () =
    let pos = Array.make (max 1 n_dims) 0 in
    for flat = 0 to total - 1 do
      if flat land poll_mask = 0 then poll ();
      element pos flat
    done
  in
  run_flat ?cancel ~work:(total * (dom + 1)) ~n:total body seq;
  ({ dims = sym.ss_new_dims; data = tensor }, others)

(* --- Static access structure ------------------------------------------ *)

(* A faithful dims-only mirror of the factor bookkeeping [forward]
   performs, for the static bounds verifier: which expressions index
   which windows at each stage, without allocating any tensor. *)

type access = {
  acc_expr : Ast.t;
  acc_lo : int;
  acc_extent : int;
  acc_values : (int * int) option;
}

let initial_dims op lookup =
  List.map2
    (fun e s -> { expr = e; extent = Size.eval s lookup; lo = 0 })
    op.Graph.op_input_exprs op.Graph.op_input_shape
  :: List.map
       (fun grp ->
         List.map
           (fun it -> { expr = Ast.iter it; extent = Size.eval it.Ast.dom lookup; lo = 0 })
           grp)
       op.Graph.op_weights

(* The value range of an affected dim's accesses is positional: the
   dense residual window (every position of the materialized tensor is
   enumerated) shifted by [c * r] over the reduction — exactly what the
   executor's [(pos + lo) + c*r] produces.  Unaffected dims of
   participating factors carry [u_coef = 0] and a slot over their own
   window, so the same formula covers them. *)
let stage_sym_accesses sym =
  List.concat_map
    (fun fuses ->
      List.map
        (fun u ->
          let vlo, vhi =
            if u.u_slot >= 0 then
              ( sym.ss_lows.(u.u_slot),
                sym.ss_lows.(u.u_slot) + sym.ss_extents.(u.u_slot) - 1 )
            else (u.u_base, u.u_base)
          in
          let step = u.u_coef * (sym.ss_dom - 1) in
          {
            acc_expr = u.u_expr;
            acc_lo = u.u_lo;
            acc_extent = u.u_extent;
            acc_values = Some (vlo + min 0 step, vhi + max 0 step);
          })
        (Array.to_list fuses))
    (Array.to_list sym.ss_uses)

(* The per-stage symbolic plans, folded over the evolving factor dim
   lists (new tensor first, then the untouched factors in order —
   exactly the factor-list evolution of [forward]), plus the final
   contraction's iteration/access structure. *)
let symbolic_plan t =
  let lookup = Valuation.lookup t.valuation in
  let syms_rev, dims_list =
    List.fold_left
      (fun (acc, dims_list) stage ->
        let it = stage.Staging.reduced in
        let dom = Size.eval it.Ast.dom lookup in
        let sym = stage_sym lookup it dom dims_list in
        let arr = Array.of_list dims_list in
        let dims_list' =
          sym.ss_new_dims :: List.map (fun i -> arr.(i)) (Array.to_list sym.ss_others)
        in
        (sym :: acc, dims_list'))
      ([], initial_dims t.op lookup)
      t.plan.Staging.stages
  in
  let reduced_ids =
    List.map (fun s -> s.Staging.reduced.Ast.id) t.plan.Staging.stages
  in
  let remaining =
    List.filter (fun it -> not (List.mem it.Ast.id reduced_ids)) t.op.Graph.op_reductions
  in
  let spatial = t.op.Graph.op_output_iters in
  let n_env =
    1
    + List.fold_left max (-1)
        (List.map (fun it -> it.Ast.id) (spatial @ t.op.Graph.op_reductions))
  in
  let final =
    {
      fs_out_ids = Array.of_list (List.map (fun it -> it.Ast.id) spatial);
      fs_out_doms =
        Array.of_list (List.map (fun it -> Size.eval it.Ast.dom lookup) spatial);
      fs_red_ids = Array.of_list (List.map (fun it -> it.Ast.id) remaining);
      fs_red_doms =
        Array.of_list (List.map (fun it -> Size.eval it.Ast.dom lookup) remaining);
      fs_env_size = max 1 n_env;
      fs_factors =
        Array.of_list
          (List.map
             (fun dims ->
               Array.of_list (List.map (fun d -> (d.expr, d.lo, d.extent)) dims))
             dims_list);
    }
  in
  (List.rev syms_rev, final)

let access_plan t =
  let syms, final = symbolic_plan t in
  (* Final stage: every remaining factor dim is indexed by evaluating
     its expression over the output / remaining-reduction loops. *)
  let final_accesses =
    List.concat_map
      (fun dims ->
        List.map
          (fun (expr, lo, extent) ->
            { acc_expr = expr; acc_lo = lo; acc_extent = extent; acc_values = None })
          (Array.to_list dims))
      (Array.to_list final.fs_factors)
  in
  List.map stage_sym_accesses syms @ [ final_accesses ]

let initial_factors t ~input ~weights =
  let lookup = Valuation.lookup t.valuation in
  let input_factor =
    {
      dims =
        List.map2
          (fun e s -> { expr = e; extent = Size.eval s lookup; lo = 0 })
          t.op.Graph.op_input_exprs t.op.Graph.op_input_shape;
      data = input;
    }
  in
  let weight_factors =
    List.map2
      (fun grp w ->
        {
          dims =
            List.map
              (fun it -> { expr = Ast.iter it; extent = Size.eval it.Ast.dom lookup; lo = 0 })
              grp;
          data = w;
        })
      t.op.Graph.op_weights weights
  in
  input_factor :: weight_factors

let forward ?cancel t ~input ~weights =
  if Tensor.shape input <> Reference.input_shape t.reference then
    invalid_arg "Staged_exec.forward: input shape";
  let poll =
    match cancel with
    | None -> fun () -> ()
    | Some c -> fun () -> Robust.Cancel.check c
  in
  let lookup = Valuation.lookup t.valuation in
  let syms, _final = symbolic_plan t in
  (* Early stages in plan order; each stage boundary is a safe point. *)
  let factors =
    List.fold_left
      (fun factors sym ->
        poll ();
        let t', others = materialize ~poll ?cancel sym factors in
        t' :: others)
      (initial_factors t ~input ~weights)
      syms
  in
  (* Final stage: loop over outputs and the remaining reductions. *)
  let reduced_ids =
    List.map (fun s -> s.Staging.reduced.Ast.id) t.plan.Staging.stages
  in
  let remaining =
    List.filter (fun it -> not (List.mem it.Ast.id reduced_ids)) t.op.Graph.op_reductions
  in
  let out_shape = Reference.output_shape t.reference in
  let out = Tensor.create out_shape in
  let out_data = Tensor.unsafe_data out in
  let spatial = t.op.Graph.op_output_iters in
  let n_env =
    1
    + List.fold_left max (-1)
        (List.map (fun it -> it.Ast.id) (spatial @ t.op.Graph.op_reductions))
  in
  (* Pre-compile factor accesses. *)
  let compiled_factors =
    List.map
      (fun f ->
        let fdata = Tensor.unsafe_data f.data in
        let accessors =
          List.map
            (fun d ->
              let eval = Reference.compile_expr lookup d.expr in
              (eval, d.lo, d.extent))
            f.dims
        in
        fun env ->
          let off = ref 0 in
          let ok = ref true in
          (try
             List.iter
               (fun (eval, lo, extent) ->
                 let idx = eval env - lo in
                 if idx < 0 || idx >= extent then begin
                   ok := false;
                   raise Exit
                 end;
                 off := (!off * extent) + idx)
               accessors
           with Exit -> ());
          if !ok then fdata.(!off) else 0.0)
      factors
  in
  let out_dims = Array.of_list (List.map (fun it -> Size.eval it.Ast.dom lookup) spatial) in
  let spatial_ids = Array.of_list (List.map (fun it -> it.Ast.id) spatial) in
  let red_dims = Array.of_list (List.map (fun it -> Size.eval it.Ast.dom lookup) remaining) in
  let red_ids = Array.of_list (List.map (fun it -> it.Ast.id) remaining) in
  let out_total = Array.fold_left ( * ) 1 out_dims in
  let red_total = Array.fold_left ( * ) 1 red_dims in
  let element env flat_out =
    let rem = ref flat_out in
    for i = Array.length out_dims - 1 downto 0 do
      env.(spatial_ids.(i)) <- !rem mod out_dims.(i);
      rem := !rem / out_dims.(i)
    done;
    let acc = ref 0.0 in
    for flat_red = 0 to red_total - 1 do
      let rem = ref flat_red in
      for i = Array.length red_dims - 1 downto 0 do
        env.(red_ids.(i)) <- !rem mod red_dims.(i);
        rem := !rem / red_dims.(i)
      done;
      let product = ref 1.0 in
      List.iter (fun access -> product := !product *. access env) compiled_factors;
      acc := !acc +. !product
    done;
    out_data.(flat_out) <- !acc
  in
  let body lo hi =
    let env = Array.make (max 1 n_env) 0 in
    for flat_out = lo to hi - 1 do
      element env flat_out
    done
  in
  let seq () =
    let env = Array.make (max 1 n_env) 0 in
    for flat_out = 0 to out_total - 1 do
      if flat_out land poll_mask = 0 then poll ();
      element env flat_out
    done
  in
  run_flat ?cancel ~work:(out_total * (red_total + 1)) ~n:out_total body seq;
  out
