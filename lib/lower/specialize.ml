module Ast = Coord.Ast
module Tensor = Nd.Tensor
module Staged = Staged_exec

(* A partition certificate piece: an axis-aligned sub-box of one loop
   nest's enumerable position space ([pc_lo]/[pc_hi] inclusive, one
   entry per positional axis), plus the set of accesses that may clip
   inside it.  An interior piece carries an empty clip set and runs the
   checkless fast path; a border piece guards exactly the listed
   accesses and nothing else. *)
type piece = {
  pc_lo : int array;
  pc_hi : int array;
  pc_interior : bool;
  pc_clips : int list;
}

type partition = piece list
type plan = partition array

type fault = Overlap_strip | Duplicate_strip | Spurious_clip | Cover_gap

let fault_to_string = function
  | Overlap_strip -> "overlap-strip"
  | Duplicate_strip -> "duplicate-strip"
  | Spurious_clip -> "spurious-clip"
  | Cover_gap -> "cover-gap"

let piece_volume p =
  let v = ref 1 in
  Array.iteri (fun i lo -> v := !v * (p.pc_hi.(i) - lo + 1)) p.pc_lo;
  !v

(* --- Compiled form -------------------------------------------------------- *)

(* Row-major strides for a dims array. *)
let strides_of extents =
  let n = Array.length extents in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * extents.(i + 1)
  done;
  s

type stage_meta = {
  sm_sym : Staged.stage_sym;
  sm_total : int;
  sm_wstrides : int array;
  sm_consts : int array;  (* per participating factor: constant offset part *)
  sm_axis_coefs : int array array;  (* per factor, per axis: offset per unit position *)
  sm_rcoefs : int array;  (* per factor: offset per unit reduction step *)
  sm_pieces : piece array;
  sm_checks : bool array array array;  (* per piece, per factor, per use *)
}

type ffac = {
  ff_const : int;  (* affine dims: constant offset part *)
  ff_out : int array;  (* affine dims: offset per unit of each output axis *)
  ff_red : int array;  (* affine dims: offset per unit of each reduction axis *)
  ff_red_step : int;  (* offset per unit of the innermost reduction axis *)
  ff_dyn : ((int array -> int) * int * int) array;
      (* non-affine dims over output iterators only: (eval, lo, stride) *)
  ff_red_dyn : bool;  (* some non-affine dim mentions a reduction iterator *)
  ff_dims : ((int array -> int) * int * int * int) array;
      (* every dim, staged order: (eval, window lo, window extent, stride) *)
}

type final_meta = {
  fm_sym : Staged.final_sym;
  fm_red_total : int;
  fm_wstrides : int array;
  fm_pieces : piece array;
  fm_checks : bool array array array;
  fm_factors : ffac array;
  fm_dyn : bool;
}

type t = {
  sp_staged : Staged.t;
  sp_plan : plan;
  sp_stages : stage_meta array;
  sp_final : final_meta;
}

let staged t = t.sp_staged
let plan t = t.sp_plan

(* Translate a piece's flat clip set into per-(factor, use) check
   flags, given the per-factor use counts. *)
let checks_of_clips counts clips =
  let flags = Array.map (fun n -> Array.make n false) counts in
  List.iter
    (fun idx ->
      let rec place f idx =
        if f < Array.length counts then
          if idx < counts.(f) then flags.(f).(idx) <- true else place (f + 1) (idx - counts.(f))
      in
      place 0 idx)
    clips;
  flags

let validate_partition ~what ~axes pieces =
  List.iter
    (fun p ->
      if Array.length p.pc_lo <> Array.length axes || Array.length p.pc_hi <> Array.length axes
      then invalid_arg (Printf.sprintf "Specialize.compile: %s: piece rank mismatch" what);
      Array.iteri
        (fun i lo ->
          if lo < 0 || p.pc_hi.(i) >= axes.(i) || lo > p.pc_hi.(i) then
            invalid_arg (Printf.sprintf "Specialize.compile: %s: piece out of box" what))
        p.pc_lo)
    pieces

let rec affine = function
  | Ast.Div _ | Ast.Mod _ -> false
  | Ast.Add (a, b) | Ast.Sub (a, b) -> affine a && affine b
  | Ast.Mul (_, e) -> affine e
  | Ast.Iter _ | Ast.Const _ | Ast.Size_const _ -> true

let compile staged plan =
  let syms, fsym = Staged.symbolic_plan staged in
  let n_nests = List.length syms + 1 in
  if Array.length plan <> n_nests then
    invalid_arg
      (Printf.sprintf "Specialize.compile: plan has %d partitions, executor has %d nests"
         (Array.length plan) n_nests);
  let lookup = Shape.Valuation.lookup (Staged.valuation staged) in
  let stage_metas =
    List.mapi
      (fun k sym ->
        let pieces = plan.(k) in
        validate_partition ~what:(Printf.sprintf "stage %d" k) ~axes:sym.Staged.ss_extents
          pieces;
        let counts = Array.map Array.length sym.Staged.ss_uses in
        let n_axes = Array.length sym.Staged.ss_extents in
        let consts = Array.map (fun _ -> 0) sym.Staged.ss_uses in
        let axis_coefs = Array.map (fun _ -> Array.make n_axes 0) sym.Staged.ss_uses in
        let rcoefs = Array.map (fun _ -> 0) sym.Staged.ss_uses in
        Array.iteri
          (fun fi uses ->
            let fstrides = strides_of (Array.map (fun u -> u.Staged.u_extent) uses) in
            Array.iteri
              (fun j u ->
                let s = fstrides.(j) in
                let base =
                  if u.Staged.u_slot >= 0 then sym.Staged.ss_lows.(u.Staged.u_slot)
                  else u.Staged.u_base
                in
                consts.(fi) <- consts.(fi) + ((base - u.Staged.u_lo) * s);
                if u.Staged.u_slot >= 0 then
                  axis_coefs.(fi).(u.Staged.u_slot) <- axis_coefs.(fi).(u.Staged.u_slot) + s;
                rcoefs.(fi) <- rcoefs.(fi) + (u.Staged.u_coef * s))
              uses)
          sym.Staged.ss_uses;
        {
          sm_sym = sym;
          sm_total = Array.fold_left ( * ) 1 sym.Staged.ss_extents;
          sm_wstrides = strides_of sym.Staged.ss_extents;
          sm_consts = consts;
          sm_axis_coefs = axis_coefs;
          sm_rcoefs = rcoefs;
          sm_pieces = Array.of_list pieces;
          sm_checks =
            Array.of_list (List.map (fun p -> checks_of_clips counts p.pc_clips) pieces);
        })
      syms
  in
  let fpieces = plan.(n_nests - 1) in
  validate_partition ~what:"final" ~axes:fsym.Staged.fs_out_doms fpieces;
  let out_ids = fsym.Staged.fs_out_ids and red_ids = fsym.Staged.fs_red_ids in
  let m = Array.length out_ids and k = Array.length red_ids in
  let env_size = fsym.Staged.fs_env_size in
  let probe = Array.make env_size 0 in
  let factors =
    Array.map
      (fun dims ->
        let fstrides = strides_of (Array.map (fun (_, _, extent) -> extent) dims) in
        let ff_const = ref 0 in
        let ff_out = Array.make m 0 in
        let ff_red = Array.make k 0 in
        let ff_dyn = ref [] in
        let ff_red_dyn = ref false in
        let ff_dims =
          Array.mapi
            (fun j (expr, lo, extent) ->
              let eval = Reference.compile_expr lookup expr in
              let s = fstrides.(j) in
              if affine expr then begin
                Array.fill probe 0 env_size 0;
                let c0 = eval probe in
                ff_const := !ff_const + ((c0 - lo) * s);
                List.iter
                  (fun (it : Ast.iter) ->
                    probe.(it.Ast.id) <- 1;
                    let c = eval probe - c0 in
                    probe.(it.Ast.id) <- 0;
                    Array.iteri (fun a id -> if id = it.Ast.id then ff_out.(a) <- ff_out.(a) + (c * s)) out_ids;
                    Array.iteri (fun a id -> if id = it.Ast.id then ff_red.(a) <- ff_red.(a) + (c * s)) red_ids)
                  (List.sort_uniq
                     (fun (a : Ast.iter) b -> compare a.Ast.id b.Ast.id)
                     (Ast.iters expr))
              end
              else begin
                let mentions_red =
                  List.exists
                    (fun (it : Ast.iter) -> Array.exists (fun id -> id = it.Ast.id) red_ids)
                    (Ast.iters expr)
                in
                if mentions_red then ff_red_dyn := true
                else ff_dyn := (eval, lo, s) :: !ff_dyn
              end;
              (eval, lo, extent, s))
            dims
        in
        {
          ff_const = !ff_const;
          ff_out;
          ff_red;
          ff_red_step = (if k = 0 then 0 else ff_red.(k - 1));
          ff_dyn = Array.of_list (List.rev !ff_dyn);
          ff_red_dyn = !ff_red_dyn;
          ff_dims;
        })
      fsym.Staged.fs_factors
  in
  let counts = Array.map Array.length fsym.Staged.fs_factors in
  {
    sp_staged = staged;
    sp_plan = plan;
    sp_stages = Array.of_list stage_metas;
    sp_final =
      {
        fm_sym = fsym;
        fm_red_total = Array.fold_left ( * ) 1 fsym.Staged.fs_red_doms;
        fm_wstrides = strides_of fsym.Staged.fs_out_doms;
        fm_pieces = Array.of_list fpieces;
        fm_checks =
          Array.of_list (List.map (fun p -> checks_of_clips counts p.pc_clips) fpieces);
        fm_factors = factors;
        fm_dyn = Array.exists (fun f -> f.ff_red_dyn) factors;
      };
  }

(* --- Execution ------------------------------------------------------------ *)

let poll_mask = Staged.poll_mask
let par_threshold = Staged.par_threshold

let run_flat ?cancel ~work ~n body seq =
  let pool = Par.Pool.get_default () in
  if work >= par_threshold && Par.Pool.size pool > 1 && n > 1 then
    Par.Pool.parallel_for pool ?cancel ~n body
  else seq ()

(* The checkless reduction loop: [n] steps of multiply-accumulate with
   constant per-factor strides.  Accumulation is [acc +. product] with
   the product formed in factor order, exactly like the interpreter —
   so the result is bit-identical element by element. *)
let inner1 acc0 n d0 o0 s0 =
  let acc = ref acc0 and o0 = ref o0 in
  for _ = 1 to n do
    acc := !acc +. Array.unsafe_get d0 !o0;
    o0 := !o0 + s0
  done;
  !acc

let inner2 acc0 n d0 o0 s0 d1 o1 s1 =
  let acc = ref acc0 and o0 = ref o0 and o1 = ref o1 in
  for _ = 1 to n do
    acc := !acc +. (Array.unsafe_get d0 !o0 *. Array.unsafe_get d1 !o1);
    o0 := !o0 + s0;
    o1 := !o1 + s1
  done;
  !acc

let inner3 acc0 n d0 o0 s0 d1 o1 s1 d2 o2 s2 =
  let acc = ref acc0 and o0 = ref o0 and o1 = ref o1 and o2 = ref o2 in
  for _ = 1 to n do
    acc :=
      !acc
      +. (Array.unsafe_get d0 !o0 *. Array.unsafe_get d1 !o1 *. Array.unsafe_get d2 !o2);
    o0 := !o0 + s0;
    o1 := !o1 + s1;
    o2 := !o2 + s2
  done;
  !acc

let inner_n acc0 n (datas : float array array) (offs : int array) (steps : int array) =
  let acc = ref acc0 in
  let nf = Array.length datas in
  for _ = 1 to n do
    let p = ref (Array.unsafe_get (Array.unsafe_get datas 0) (Array.unsafe_get offs 0)) in
    Array.unsafe_set offs 0 (Array.unsafe_get offs 0 + Array.unsafe_get steps 0);
    for f = 1 to nf - 1 do
      p := !p *. Array.unsafe_get (Array.unsafe_get datas f) (Array.unsafe_get offs f);
      Array.unsafe_set offs f (Array.unsafe_get offs f + Array.unsafe_get steps f)
    done;
    acc := !acc +. !p
  done;
  !acc

(* One materialization stage over its certified partition. *)
let run_stage ~poll ?cancel meta factors =
  let sym = meta.sm_sym in
  let arr = Array.of_list factors in
  let others = List.map (fun i -> arr.(i)) (Array.to_list sym.Staged.ss_others) in
  let datas =
    Array.map
      (fun i -> Tensor.unsafe_data arr.(i).Staged.data)
      sym.Staged.ss_participating
  in
  let nf = Array.length datas in
  let extents = sym.Staged.ss_extents in
  let lows = sym.Staged.ss_lows in
  let dom = sym.Staged.ss_dom in
  let n_axes = Array.length extents in
  let tensor = Tensor.create (Array.copy extents) in
  let data = Tensor.unsafe_data tensor in
  Array.iteri
    (fun pi piece ->
      poll ();
      let pdims = Array.init n_axes (fun i -> piece.pc_hi.(i) - piece.pc_lo.(i) + 1) in
      let volume = Array.fold_left ( * ) 1 pdims in
      let checks = meta.sm_checks.(pi) in
      let interior_element pos flat =
        let rem = ref flat in
        for i = n_axes - 1 downto 0 do
          pos.(i) <- piece.pc_lo.(i) + (!rem mod pdims.(i));
          rem := !rem / pdims.(i)
        done;
        let w = ref 0 in
        for i = 0 to n_axes - 1 do
          w := !w + (pos.(i) * meta.sm_wstrides.(i))
        done;
        let base fi =
          let b = ref meta.sm_consts.(fi) in
          let coefs = meta.sm_axis_coefs.(fi) in
          for i = 0 to n_axes - 1 do
            b := !b + (coefs.(i) * pos.(i))
          done;
          !b
        in
        let acc =
          match nf with
          | 1 -> inner1 0.0 dom datas.(0) (base 0) meta.sm_rcoefs.(0)
          | 2 ->
              inner2 0.0 dom datas.(0) (base 0) meta.sm_rcoefs.(0) datas.(1) (base 1)
                meta.sm_rcoefs.(1)
          | 3 ->
              inner3 0.0 dom datas.(0) (base 0) meta.sm_rcoefs.(0) datas.(1) (base 1)
                meta.sm_rcoefs.(1) datas.(2) (base 2) meta.sm_rcoefs.(2)
          | _ ->
              let offs = Array.init nf base in
              inner_n 0.0 dom datas offs meta.sm_rcoefs
        in
        data.(!w) <- acc
      in
      (* Border: the interpreter's loop restricted to the strip, with a
         window test on exactly the accesses the certificate says may
         clip; everything else indexes unchecked. *)
      let border_element pos flat =
        let rem = ref flat in
        for i = n_axes - 1 downto 0 do
          pos.(i) <- piece.pc_lo.(i) + (!rem mod pdims.(i));
          rem := !rem / pdims.(i)
        done;
        let w = ref 0 in
        for i = 0 to n_axes - 1 do
          w := !w + (pos.(i) * meta.sm_wstrides.(i))
        done;
        let acc = ref 0.0 in
        for r = 0 to dom - 1 do
          let product = ref 1.0 in
          (try
             for fi = 0 to nf - 1 do
               let fdata = datas.(fi) in
               let fuses = sym.Staged.ss_uses.(fi) in
               let fchecks = checks.(fi) in
               let off = ref 0 in
               for j = 0 to Array.length fuses - 1 do
                 let u = fuses.(j) in
                 let value =
                   (if u.Staged.u_slot >= 0 then
                      pos.(u.Staged.u_slot) + lows.(u.Staged.u_slot)
                    else u.Staged.u_base)
                   + (u.Staged.u_coef * r)
                 in
                 let idx = value - u.Staged.u_lo in
                 if fchecks.(j) && (idx < 0 || idx >= u.Staged.u_extent) then begin
                   product := 0.0;
                   raise Exit
                 end;
                 off := (!off * u.Staged.u_extent) + idx
               done;
               product := !product *. fdata.(!off)
             done
           with Exit -> ());
          acc := !acc +. !product
        done;
        data.(!w) <- !acc
      in
      let element = if piece.pc_interior then interior_element else border_element in
      let body lo hi =
        let pos = Array.make (max 1 n_axes) 0 in
        for flat = lo to hi - 1 do
          element pos flat
        done
      in
      let seq () =
        let pos = Array.make (max 1 n_axes) 0 in
        for flat = 0 to volume - 1 do
          if flat land poll_mask = 0 then poll ();
          element pos flat
        done
      in
      run_flat ?cancel ~work:(volume * (dom + 1)) ~n:volume body seq)
    meta.sm_pieces;
  { Staged.dims = sym.Staged.ss_new_dims; data = tensor } :: others

(* The final contraction over its certified partition. *)
let run_final ~poll ?cancel meta factors out =
  let sym = meta.fm_sym in
  let out_data = Tensor.unsafe_data out in
  let datas =
    Array.of_list (List.map (fun f -> Tensor.unsafe_data f.Staged.data) factors)
  in
  let nf = Array.length datas in
  let m = Array.length sym.Staged.fs_out_doms in
  let k = Array.length sym.Staged.fs_red_doms in
  let red_total = meta.fm_red_total in
  let red_last = if k = 0 then 1 else sym.Staged.fs_red_doms.(k - 1) in
  let red_outer = red_total / red_last in
  Array.iteri
    (fun pi piece ->
      poll ();
      let pdims = Array.init m (fun i -> piece.pc_hi.(i) - piece.pc_lo.(i) + 1) in
      let volume = Array.fold_left ( * ) 1 pdims in
      let checks = meta.fm_checks.(pi) in
      (* Checkless path: per output point, per-factor base offsets from
         the affine decomposition (plus any output-only non-affine dims
         evaluated once), then nested reduction loops with constant
         strides. *)
      let interior_element env pos flat =
        let rem = ref flat in
        for i = m - 1 downto 0 do
          pos.(i) <- piece.pc_lo.(i) + (!rem mod pdims.(i));
          rem := !rem / pdims.(i)
        done;
        let w = ref 0 in
        for i = 0 to m - 1 do
          env.(sym.Staged.fs_out_ids.(i)) <- pos.(i);
          w := !w + (pos.(i) * meta.fm_wstrides.(i))
        done;
        let base fi =
          let f = meta.fm_factors.(fi) in
          let b = ref f.ff_const in
          for i = 0 to m - 1 do
            b := !b + (f.ff_out.(i) * pos.(i))
          done;
          Array.iter (fun (eval, lo, s) -> b := !b + ((eval env - lo) * s)) f.ff_dyn;
          !b
        in
        let acc = ref 0.0 in
        if k <= 1 then
          acc :=
            (match nf with
            | 1 -> inner1 0.0 red_last datas.(0) (base 0) meta.fm_factors.(0).ff_red_step
            | 2 ->
                inner2 0.0 red_last datas.(0) (base 0) meta.fm_factors.(0).ff_red_step
                  datas.(1) (base 1) meta.fm_factors.(1).ff_red_step
            | 3 ->
                inner3 0.0 red_last datas.(0) (base 0) meta.fm_factors.(0).ff_red_step
                  datas.(1) (base 1) meta.fm_factors.(1).ff_red_step datas.(2) (base 2)
                  meta.fm_factors.(2).ff_red_step
            | _ ->
                let offs = Array.init nf base in
                inner_n 0.0 red_last datas offs
                  (Array.map (fun f -> f.ff_red_step) meta.fm_factors))
        else begin
          let bases = Array.init nf base in
          let rsteps = Array.map (fun f -> f.ff_red_step) meta.fm_factors in
          let rv = Array.make (k - 1) 0 in
          for outer = 0 to red_outer - 1 do
            let rem = ref outer in
            for i = k - 2 downto 0 do
              rv.(i) <- !rem mod sym.Staged.fs_red_doms.(i);
              rem := !rem / sym.Staged.fs_red_doms.(i)
            done;
            let off fi =
              let f = meta.fm_factors.(fi) in
              let o = ref bases.(fi) in
              for i = 0 to k - 2 do
                o := !o + (f.ff_red.(i) * rv.(i))
              done;
              !o
            in
            acc :=
              (match nf with
              | 1 -> inner1 !acc red_last datas.(0) (off 0) rsteps.(0)
              | 2 ->
                  inner2 !acc red_last datas.(0) (off 0) rsteps.(0) datas.(1) (off 1)
                    rsteps.(1)
              | 3 ->
                  inner3 !acc red_last datas.(0) (off 0) rsteps.(0) datas.(1) (off 1)
                    rsteps.(1) datas.(2) (off 2) rsteps.(2)
              | _ ->
                  let offs = Array.init nf off in
                  inner_n !acc red_last datas offs rsteps)
          done
        end;
        out_data.(!w) <- !acc
      in
      (* Guarded path (border strips, and every piece when some access
         is non-affine in a remaining reduction iterator): the
         interpreter's evaluation loop, with window tests on exactly
         the certified may-clip accesses. *)
      let guarded_element env pos flat =
        let rem = ref flat in
        for i = m - 1 downto 0 do
          pos.(i) <- piece.pc_lo.(i) + (!rem mod pdims.(i));
          rem := !rem / pdims.(i)
        done;
        let w = ref 0 in
        for i = 0 to m - 1 do
          env.(sym.Staged.fs_out_ids.(i)) <- pos.(i);
          w := !w + (pos.(i) * meta.fm_wstrides.(i))
        done;
        let acc = ref 0.0 in
        for flat_red = 0 to red_total - 1 do
          let rem = ref flat_red in
          for i = k - 1 downto 0 do
            env.(sym.Staged.fs_red_ids.(i)) <- !rem mod sym.Staged.fs_red_doms.(i);
            rem := !rem / sym.Staged.fs_red_doms.(i)
          done;
          let product = ref 1.0 in
          for fi = 0 to nf - 1 do
            let f = meta.fm_factors.(fi) in
            let fchecks = checks.(fi) in
            let off = ref 0 in
            let ok = ref true in
            (try
               Array.iteri
                 (fun j (eval, lo, extent, _) ->
                   let idx = eval env - lo in
                   if fchecks.(j) && (idx < 0 || idx >= extent) then begin
                     ok := false;
                     raise Exit
                   end;
                   off := (!off * extent) + idx)
                 f.ff_dims
             with Exit -> ());
            product := !product *. (if !ok then datas.(fi).(!off) else 0.0)
          done;
          acc := !acc +. !product
        done;
        out_data.(!w) <- !acc
      in
      let element =
        if piece.pc_interior && not meta.fm_dyn then interior_element else guarded_element
      in
      let body lo hi =
        let env = Array.make sym.Staged.fs_env_size 0 in
        let pos = Array.make (max 1 m) 0 in
        for flat = lo to hi - 1 do
          element env pos flat
        done
      in
      let seq () =
        let env = Array.make sym.Staged.fs_env_size 0 in
        let pos = Array.make (max 1 m) 0 in
        for flat = 0 to volume - 1 do
          if flat land poll_mask = 0 then poll ();
          element env pos flat
        done
      in
      run_flat ?cancel ~work:(volume * (red_total + 1)) ~n:volume body seq)
    meta.fm_pieces

let forward ?cancel t ~input ~weights =
  let staged = t.sp_staged in
  if Tensor.shape input <> Reference.input_shape (Staged.reference staged) then
    invalid_arg "Specialize.forward: input shape";
  let poll =
    match cancel with
    | None -> fun () -> ()
    | Some c -> fun () -> Robust.Cancel.check c
  in
  let factors =
    Array.fold_left
      (fun factors meta -> run_stage ~poll ?cancel meta factors)
      (Staged.initial_factors staged ~input ~weights)
      t.sp_stages
  in
  let out = Tensor.create (Reference.output_shape (Staged.reference staged)) in
  run_final ~poll ?cancel t.sp_final factors out;
  out

(* --- Seeded plan corruption ----------------------------------------------- *)

let nest_access_counts staged =
  let syms, fsym = Staged.symbolic_plan staged in
  Array.of_list
    (List.map
       (fun s -> Array.fold_left (fun n u -> n + Array.length u) 0 s.Staged.ss_uses)
       syms
    @ [ Array.fold_left (fun n d -> n + Array.length d) 0 fsym.Staged.fs_factors ])

(* Apply [fault] to the first nest that can host it.  Every fault except
   [Cover_gap] is execution-invisible by construction: the corrupted
   plan computes bit-identical outputs (overlapping and duplicated
   pieces recompute the same values into the same cells; a spurious
   clip adds a guard that can never fire) — only {!Analysis.Certify}
   can tell it from a sound plan. *)
let corrupt fault staged plan =
  let plan = Array.map (fun pieces -> pieces) plan in
  let replace nest pieces = plan.(nest) <- pieces in
  let find f =
    let rec go nest = if nest >= Array.length plan then None else
      match f nest plan.(nest) with Some pieces -> Some (nest, pieces) | None -> go (nest + 1)
    in
    go 0
  in
  let splittable pieces =
    List.find_opt
      (fun p -> Array.exists (fun i -> p.pc_hi.(i) - p.pc_lo.(i) >= 1) (Array.init (Array.length p.pc_lo) (fun i -> i)))
      pieces
  in
  let applied =
    match fault with
    | Overlap_strip ->
        (* Split a piece into two halves that both contain the middle
           plane: the overlap cells are computed twice, identically. *)
        find (fun _ pieces ->
            match splittable pieces with
            | None -> None
            | Some p ->
                let a =
                  let rec go i = if p.pc_hi.(i) - p.pc_lo.(i) >= 1 then i else go (i + 1) in
                  go 0
                in
                let mid = (p.pc_lo.(a) + p.pc_hi.(a)) / 2 in
                let lo_half = { p with pc_hi = Array.mapi (fun i v -> if i = a then mid else v) p.pc_hi } in
                let hi_half = { p with pc_lo = Array.mapi (fun i v -> if i = a then mid else v) p.pc_lo } in
                Some
                  (List.concat_map
                     (fun q -> if q == p then [ lo_half; hi_half ] else [ q ])
                     pieces))
    | Duplicate_strip ->
        find (fun _ pieces ->
            match
              List.find_opt (fun p -> not p.pc_interior) pieces
              |> fun b -> (match b with Some _ -> b | None -> (match pieces with p :: _ -> Some p | [] -> None))
            with
            | None -> None
            | Some p -> Some (pieces @ [ p ]))
    | Spurious_clip ->
        let counts = nest_access_counts staged in
        find (fun nest pieces ->
            if counts.(nest) = 0 then None
            else
              let rec pick = function
                | [] -> None
                | p :: rest -> (
                    let unlisted =
                      let rec go i =
                        if i >= counts.(nest) then None
                        else if List.mem i p.pc_clips then go (i + 1)
                        else Some i
                      in
                      go 0
                    in
                    match unlisted with
                    | None -> pick rest
                    | Some idx ->
                        Some
                          (List.map
                             (fun q ->
                               if q == p then
                                 { q with pc_interior = false; pc_clips = q.pc_clips @ [ idx ] }
                               else q)
                             pieces))
              in
              pick pieces)
    | Cover_gap ->
        find (fun _ pieces ->
            match splittable pieces with
            | Some p ->
                let a =
                  let rec go i = if p.pc_hi.(i) - p.pc_lo.(i) >= 1 then i else go (i + 1) in
                  go 0
                in
                Some
                  (List.map
                     (fun q ->
                       if q == p then
                         { q with pc_hi = Array.mapi (fun i v -> if i = a then v - 1 else v) p.pc_hi }
                       else q)
                     pieces)
            | None -> ( match pieces with _ :: (_ :: _ as rest) -> Some rest | _ -> None))
  in
  match applied with
  | None -> None
  | Some (nest, pieces) ->
      replace nest pieces;
      Some plan
