(** Proof-guided kernel specialization.

    {!Staged_exec} and {!Reference} window-test every tensor access and
    clip out-of-bounds reads to zero.  When the static layer has proved
    where clipping can actually happen, those tests are pure overhead
    over most of the iteration space.  This module compiles a staged
    program together with an iteration-space {e partition certificate}
    into a specialized executor:

    - {e interior} pieces — where every access is proved in-bounds —
      run checkless inner loops with constant-stride offset arithmetic
      and unchecked array reads;
    - {e border} pieces run the interpreter's loop restricted to the
      strip, window-testing exactly the accesses the certificate lists
      as may-clip and nothing else.

    The output is bit-identical to {!Staged_exec.forward}: pieces
    partition only positional axes, so every output element is computed
    whole by exactly one piece, with products formed in factor order
    and reductions accumulated in the interpreter's order.

    Certificates are produced by [Analysis.Regions] and validated by
    [Analysis.Certify]; {!compile} itself only shape-checks the plan.
    Running a plan that neither came from [Regions] nor passed
    [Certify] is unsound (interior pieces index unchecked). *)

type piece = {
  pc_lo : int array;  (** inclusive lower corner, one entry per axis *)
  pc_hi : int array;  (** inclusive upper corner *)
  pc_interior : bool;  (** checkless fast path when [true] *)
  pc_clips : int list;
      (** flat indices of the accesses that may clip inside this piece,
          numbering the nest's accesses factor-major in executor order
          (the same order {!Staged_exec.access_plan} lists them) *)
}

type partition = piece list

type plan = partition array
(** One partition per materialization stage in plan order, then one for
    the final contraction: [Array.length plan = num_stages + 1].  A
    stage's axes are the dims of its materialized tensor
    ({!Staged_exec.stage_sym.ss_extents}); the final nest's axes are
    the output iterators ({!Staged_exec.final_sym.fs_out_doms}).
    Reduction iterators are never partitioned. *)

val piece_volume : piece -> int

type t

val compile : Staged_exec.t -> plan -> t
(** Precomputes the per-piece offset algebra.  Raises [Invalid_argument]
    if the plan's shape does not match the executor (wrong number of
    partitions, piece rank mismatch, piece outside its nest's box) —
    semantic soundness is [Analysis.Certify]'s job. *)

val staged : t -> Staged_exec.t
val plan : t -> plan

val forward :
  ?cancel:Robust.Cancel.t -> t -> input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t
(** Bit-identical to {!Staged_exec.forward} on the same operator.
    Pieces whose estimated work clears {!Staged_exec.par_threshold} run
    on the default pool; [cancel] is polled at piece boundaries, every
    few thousand elements sequentially, and at every pool range claim,
    exactly like the interpreter. *)

(** {2 Seeded plan corruption}

    Mirrors the [Corrupt_expr] pattern of the bounds verifier: faults
    injected downstream of certification, used to demonstrate that
    translation validation is load-bearing. *)

type fault =
  | Overlap_strip  (** split a piece into two halves sharing a plane *)
  | Duplicate_strip  (** append a copy of an existing piece *)
  | Spurious_clip  (** guard an access the certificate proved in-bounds *)
  | Cover_gap  (** shrink a piece, leaving cells uncovered *)

val fault_to_string : fault -> string

val corrupt : fault -> Staged_exec.t -> plan -> plan option
(** Applies the fault to the first nest that can host it; [None] if no
    nest can.  [Overlap_strip], [Duplicate_strip] and [Spurious_clip]
    are execution-invisible: the corrupted plan still computes
    bit-identical outputs (overlapped and duplicated cells recompute
    the same values; a spurious guard never fires), so only
    [Analysis.Certify] can reject them.  [Cover_gap] leaves stale
    zeros and is visible — it checks that Certify agrees with
    execution where execution {e can} tell. *)
