(** A persistent, crash-tolerant counterexample corpus (CEGIS-style
    admission feedback).

    Every failure the expensive gates find — a differential backend
    mismatch ({!Differential}), a statically disproven bounds
    obligation ({!Analysis.Verify}) — is {e distilled} into a minimal
    concrete record: the offending operator, the valuation and derived
    tensor seed it failed at, the diverging backend pair, and an
    expected-vs-got summary.  The corpus persists those records with
    the {!Search.Checkpoint} durability recipe (hex-float exactness,
    write-temp + fsync + atomic rename, typed load errors, damaged
    files quarantined — never fatal) and {e replays} them against
    future candidates as the cheapest admission stage of all: the
    longer the search runs, the sharper the gate.

    {b Replay semantics.}  Candidates are matched by structural
    {!fingerprint} (the sorted primitive multiset of the trace).  A
    candidate whose fingerprint matches no entry passes in O(1).  An
    exact signature match is rejected immediately — zero tensor work;
    this is the re-encounter fast path.  A family sibling (same
    fingerprint, different signature) is concretely re-executed on each
    recorded counterexample: differential entries re-run the single
    recorded backend pair on the recorded seeded tensors
    ({!Differential.replay_pair}), static entries re-run the interval
    verifier at the recorded valuation.  Healthy siblings pass — replay
    never rejects a candidate that survives the recorded input. *)

type origin = Differential | Static

val origin_label : origin -> string
val origin_of_label : string -> origin option

type entry = {
  ce_operator : Pgraph.Graph.operator;  (** the operator that failed *)
  ce_signature : string;  (** its canonical signature (derived) *)
  ce_fingerprint : string;  (** its structural fingerprint (derived) *)
  ce_origin : origin;  (** which gate distilled it *)
  ce_valuation : Shape.Valuation.t;  (** the valuation it failed at *)
  ce_seed : int;  (** derived tensor RNG seed ({!Differential.derive_seed} output); 0 for static *)
  ce_tolerance : float;  (** comparison tolerance; 0 for static *)
  ce_backend : Differential.backend option;  (** the diverging backend pair *)
  ce_detail : string;  (** one-line human summary of the failure *)
  ce_abs_err : float;  (** worst absolute error observed (differential) *)
  ce_fail : (int * float * float) option;
      (** first failing flat index as [(index, expected, got)] *)
}

val fingerprint : Pgraph.Graph.operator -> string
(** Sorted multiset of {!Pgraph.Trace_io.prim_to_string} renderings —
    the family key replay matching uses. *)

val ident : entry -> string
(** Dedup identity: signature, origin, valuation, seed, and backend —
    everything that determines what replay would execute. *)

val of_differential : tolerance:float -> Pgraph.Graph.operator -> Differential.failure -> entry
(** Distill a structured differential failure ({!Differential.check_full}). *)

val of_static :
  Pgraph.Graph.operator -> Shape.Valuation.t -> Analysis.Verify.diagnostic -> entry
(** Distill a static bounds violation at the valuation it was proven at. *)

(** {1 Serialization} *)

type error =
  | Io of string  (** the file cannot be read *)
  | Bad_header of string  (** wrong or missing format header *)
  | Truncated of { expected : int; found : int }
      (** the declared entry count does not match the entries present *)
  | Corrupt of string  (** an entry failed to parse *)

val string_of_error : error -> string

val to_string : entry list -> string
val of_string_result : string -> (entry list, error) result
(** Entries are rendered with hex floats, so a round trip is exact. *)

val save : path:string -> entry list -> unit
(** Atomic + durable: temp file, fsync, rename, best-effort directory
    fsync — a kill mid-save leaves the previous corpus intact. *)

val load_result : path:string -> (entry list, error) result

(** {1 The live corpus} *)

type t
(** An in-memory corpus optionally bound to a file, with thread-safe
    add/replay and cadence-driven atomic persistence. *)

type open_report = {
  or_loaded : int;  (** entries loaded from an existing file *)
  or_quarantined : (string * error) option;
      (** set when the existing file was damaged: where it was moved
          (best-effort, [path ^ ".corrupt"]) and why it failed *)
}

val open_file : ?readonly:bool -> ?every:int -> string -> t * open_report
(** Bind a corpus to [path].  A missing file is an empty corpus; a
    damaged file is quarantined aside and the corpus starts empty —
    {e never fatal}.  [readonly] loads without ever writing (adds
    become no-ops); [every] (default 1) is the add cadence between
    atomic rewrites. *)

val in_memory : unit -> t
(** A corpus with no backing file (replay and dedup only). *)

val preload : t -> entry list -> unit
(** Seed with existing entries (no write, not counted as additions). *)

val add : t -> entry -> bool
(** Record a distilled counterexample.  Returns [false] (and writes
    nothing) for a duplicate ({!ident}) or a readonly corpus.
    Thread-safe. *)

val merge_into : t -> entry list -> int
(** {!add} in bulk; returns how many entries were new.  Flushes once at
    the end rather than per entry. *)

val replay : t -> Pgraph.Graph.operator -> (unit, Robust.Guard.kind) result
(** Replay the candidate against every fingerprint-matching entry
    (exact-signature hits first, rejected without tensor work).
    Rejections carry [Robust.Guard.Counterexample].  Thread-safe; the
    tensor work runs outside the corpus lock. *)

val entries : t -> entry list
(** Sorted by {!ident}. *)

val size : t -> int
val path : t -> string option
val readonly : t -> bool

val flush : t -> unit
(** Write pending entries now (also writes an initial empty snapshot
    for a fresh file-backed corpus). *)

val writes : t -> int

type stats = {
  st_entries : int;  (** entries currently held *)
  st_added : int;  (** new entries distilled/merged since open *)
  st_checked : int;  (** candidates replayed against the corpus *)
  st_matched : int;  (** entry matches by fingerprint (sum over candidates) *)
  st_executed : int;  (** entries concretely re-executed (family siblings) *)
  st_rejected : int;  (** candidates rejected by replay *)
  st_writes : int;  (** atomic snapshot writes *)
}

val stats : t -> stats

(** {1 Sharding} *)

val shard_path : base:string -> shard_id:int -> string
(** [base ^ ".shard<i>"] — the same naming recipe as
    {!Search.Shard.checkpoint_path}, so each shard's private corpus
    sits next to its checkpoint. *)

type merge_report = {
  mr_entries : entry list;  (** merged corpus, sorted by {!ident} *)
  mr_loaded : int list;  (** shards whose corpus loaded cleanly *)
  mr_missing : int list;  (** shards with no corpus file *)
  mr_quarantined : (int * error) list;
      (** shards whose file existed but failed the typed load — their
          entries are skipped, the merge proceeds *)
  mr_added : int;  (** entries surviving dedup *)
}

val load_and_merge : base:string -> shards:int -> merge_report
(** Load every shard's corpus and merge what loads (dedup by
    {!ident}).  Never raises on damaged files. *)
