(** Differential validation of candidate lowerings.

    Every admitted candidate is compiled by all three execution
    backends — {!Lower.Reference} (the loop-nest ground truth),
    {!Lower.Einsum_program} (gather + einsum) and {!Lower.Staged_exec}
    (materialized reductions) — and run on small seeded random inputs
    with shared weights.  A candidate is quarantined when any backend
    disagrees with the reference beyond a hybrid absolute/relative
    tolerance ([|a - r| <= tol * (1 + |r|)]), or produces NaN/Inf on
    finite inputs.  Inputs and weights are derived from
    [(seed, operator signature)], so verdicts are reproducible and
    independent of evaluation order.

    A seeded {!fault} deterministically corrupts one output element of
    a chosen backend for a rate-controlled fraction of candidates — a
    synthetic miscompile used to prove (in tests and the [validate]
    bench) that real miscompiles would be caught as
    [Backend_mismatch]. *)

type backend = Reference | Einsum | Staged

val backend_label : backend -> string
val backends : backend list

type fault_mode =
  | Corrupt_output  (** flip one element of a backend's output tensor *)
  | Corrupt_expr
      (** shift an input gather out of bounds before compiling anything *)

type fault

val fault : ?seed:int -> ?rate:float -> ?mode:fault_mode -> backend -> fault
(** Corrupt a [rate] fraction of operator signatures (default [1.0]:
    every candidate), selected by hashing [(seed, signature)] exactly
    like {!Robust.Inject}.  [Corrupt_output] (the default) flips one
    element of the given backend's output — a runtime miscompile the
    differential comparison catches.  [Corrupt_expr] instead rewrites
    the operator itself via {!corrupt_operator} before any backend
    compiles; the [backend] argument is ignored in that mode. *)

val corrupt_operator : Pgraph.Graph.operator -> Pgraph.Graph.operator
(** Shift the first input coordinate expression two extents past its
    window.  Every execution backend zero-clips out-of-window reads,
    so all backends agree on an all-zero gather and differential
    comparison alone cannot detect the corruption — only static bounds
    verification ({!Analysis.Verify}) rejects it. *)

val fault_count : fault -> int
(** Corruptions delivered so far (across all domains). *)

type config = {
  tolerance : float;  (** relative tolerance; default [1e-6] *)
  seed : int;  (** input/weight seed; default [0] *)
  fault : fault option;  (** seeded miscompile, for testing the validator *)
}

val default_config : config

val config : ?tolerance:float -> ?seed:int -> ?fault:fault -> unit -> config
(** Raises [Invalid_argument] unless [tolerance > 0]. *)

type report = {
  rep_valuations : int;  (** valuations cross-checked *)
  rep_elements : int;  (** output elements compared (per backend pair) *)
  rep_max_rel_err : float;  (** worst observed [|a - r| / (1 + |r|)] *)
}

val check :
  ?config:config ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (report, Robust.Guard.kind) result
(** Cross-check the operator under every valuation.  Valuations where
    the operator is not instantiable are skipped (not counted in
    [rep_valuations]) — the gate must never quarantine a candidate the
    un-validated search would have scored.  Failures: [Backend_mismatch]
    for disagreement, shape drift, or non-finite outputs on finite
    inputs; [Eval_error] when a backend fails to run at a valuation
    where the operator does instantiate. *)

val admit :
  ?config:config ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (unit, Robust.Guard.kind) result
(** {!check} with the report dropped — the admission-gate shape. *)
