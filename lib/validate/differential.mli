(** Differential validation of candidate lowerings.

    Every admitted candidate is compiled by all three execution
    backends — {!Lower.Reference} (the loop-nest ground truth),
    {!Lower.Einsum_program} (gather + einsum) and {!Lower.Staged_exec}
    (materialized reductions) — and run on small seeded random inputs
    with shared weights.  A candidate is quarantined when any backend
    disagrees with the reference beyond a hybrid absolute/relative
    tolerance ([|a - r| <= tol * (1 + |r|)]), or produces NaN/Inf on
    finite inputs.  Inputs and weights are derived from
    [(seed, operator signature)], so verdicts are reproducible and
    independent of evaluation order.

    A seeded {!fault} deterministically corrupts one output element of
    a chosen backend for a rate-controlled fraction of candidates — a
    synthetic miscompile used to prove (in tests and the [validate]
    bench) that real miscompiles would be caught as
    [Backend_mismatch]. *)

type backend = Reference | Einsum | Staged

val backend_label : backend -> string

val backend_of_label : string -> backend option
(** Inverse of {!backend_label} (used by the corpus parser). *)

val backends : backend list

type fault_mode =
  | Corrupt_output  (** flip one element of a backend's output tensor *)
  | Corrupt_expr
      (** shift an input gather out of bounds before compiling anything *)

type fault

val fault : ?seed:int -> ?rate:float -> ?mode:fault_mode -> backend -> fault
(** Corrupt a [rate] fraction of operator signatures (default [1.0]:
    every candidate), selected by hashing [(seed, signature)] exactly
    like {!Robust.Inject}.  [Corrupt_output] (the default) flips one
    element of the given backend's output — a runtime miscompile the
    differential comparison catches.  [Corrupt_expr] instead rewrites
    the operator itself via {!corrupt_operator} before any backend
    compiles; the [backend] argument is ignored in that mode. *)

val corrupt_operator : Pgraph.Graph.operator -> Pgraph.Graph.operator
(** Shift the first input coordinate expression two extents past its
    window.  Every execution backend zero-clips out-of-window reads,
    so all backends agree on an all-zero gather and differential
    comparison alone cannot detect the corruption — only static bounds
    verification ({!Analysis.Verify}) rejects it. *)

val fault_count : fault -> int
(** Corruptions delivered so far (across all domains). *)

type config = {
  tolerance : float;  (** relative tolerance; default [1e-6] *)
  seed : int;  (** input/weight seed; default [0] *)
  fault : fault option;  (** seeded miscompile, for testing the validator *)
}

val default_config : config

val config : ?tolerance:float -> ?seed:int -> ?fault:fault -> unit -> config
(** Raises [Invalid_argument] unless [tolerance > 0]. *)

val derive_seed : seed:int -> string -> int
(** The RNG seed inputs/weights are drawn from for one operator
    signature: a pure function of [(seed, signature)].  Distilled
    counterexamples record this derived value so {!replay_pair} can
    regenerate the exact failing tensors. *)

type pair_stats = {
  ps_backend : backend;  (** the backend compared against the reference *)
  ps_max_abs_err : float;  (** worst [|a - r|] over the pair *)
  ps_max_rel_err : float;  (** worst [|a - r| / (1 + |r|)] *)
  ps_first_fail : (int * float * float) option;
      (** first element beyond tolerance as [(flat index, reference,
          got)] — always [None] in a successful report *)
}

type report = {
  rep_valuations : int;  (** valuations cross-checked *)
  rep_elements : int;  (** output elements compared (per backend pair) *)
  rep_max_rel_err : float;  (** worst observed [|a - r| / (1 + |r|)] *)
  rep_pairs : pair_stats list;
      (** per-backend-pair worst-case statistics, folded over all
          checked valuations *)
}

type failure = {
  fl_kind : Robust.Guard.kind;  (** what {!check} would have returned *)
  fl_valuation : Shape.Valuation.t;  (** the valuation the failure occurred at *)
  fl_seed : int;  (** the derived RNG seed the failing tensors came from *)
  fl_backend : backend option;
      (** the diverging backend; [None] when the failure predates any
          backend comparison *)
  fl_index : int option;  (** first failing flat output index *)
  fl_expected : float option;  (** reference value at that index *)
  fl_got : float option;  (** diverging value at that index *)
  fl_abs_err : float;  (** worst absolute error over the failing pair *)
}
(** Everything a distilled counterexample needs to re-create the exact
    failing execution: shape of the failure plus the concrete seeded
    input it happened on. *)

val check_full :
  ?config:config ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (report, failure) result
(** Cross-check the operator under every valuation.  Valuations where
    the operator is not instantiable are skipped (not counted in
    [rep_valuations]) — the gate must never quarantine a candidate the
    un-validated search would have scored.  Failure kinds:
    [Backend_mismatch] for disagreement, shape drift, or non-finite
    outputs on finite inputs; [Eval_error] when a backend fails to run
    at a valuation where the operator does instantiate. *)

val check :
  ?config:config ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (report, Robust.Guard.kind) result
(** {!check_full} with the failure collapsed to its kind. *)

val admit :
  ?config:config ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (unit, Robust.Guard.kind) result
(** {!check} with the report dropped — the admission-gate shape. *)

val replay_pair :
  tolerance:float ->
  seed:int ->
  backend:backend ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t ->
  (unit, Robust.Guard.kind) result
(** Re-execute one recorded counterexample against a candidate: the
    reference backend and the single recorded [backend] are run on the
    exact tensors regenerated from the {e derived} [seed]
    ({!derive_seed} output, used verbatim) at the recorded valuation
    and compared under [tolerance] — roughly half the tensor work of a
    full three-backend cross-check at one valuation.  [backend =
    Reference] checks only reference finiteness (the recorded failure
    was on the reference side).  A candidate that is not instantiable
    at the valuation passes vacuously. *)
