module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Guard = Robust.Guard

type stats = { calls : int; rejected : int; seconds : float }

type t = {
  max_bytes : int option;
  max_flops : int option;
  budget_valuations : Valuation.t list;
  differential : Differential.config option;
  check_valuations : Valuation.t list;
  mutex : Mutex.t;
  mutable calls : int;
  mutable rejected : int;
  mutable seconds : float;
}

let create ?max_bytes ?max_flops ?(valuations = []) ?differential ?check_valuations () =
  {
    max_bytes;
    max_flops;
    budget_valuations = valuations;
    differential;
    check_valuations = Option.value check_valuations ~default:valuations;
    mutex = Mutex.create ();
    calls = 0;
    rejected = 0;
    seconds = 0.0;
  }

let active t =
  (t.max_bytes <> None || t.max_flops <> None) && t.budget_valuations <> []
  || t.differential <> None && t.check_valuations <> []

let decide t op =
  match
    Budget.admit ?max_bytes:t.max_bytes ?max_flops:t.max_flops op t.budget_valuations
  with
  | Error _ as e -> e
  | Ok () -> (
      match t.differential with
      | None -> Ok ()
      | Some config -> Differential.admit ~config op t.check_valuations)

let gate t op =
  let t0 = Unix.gettimeofday () in
  let result = decide t op in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  t.calls <- t.calls + 1;
  (match result with Error _ -> t.rejected <- t.rejected + 1 | Ok () -> ());
  t.seconds <- t.seconds +. dt;
  Mutex.unlock t.mutex;
  result

let stats t =
  Mutex.lock t.mutex;
  let s = { calls = t.calls; rejected = t.rejected; seconds = t.seconds } in
  Mutex.unlock t.mutex;
  s
