module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Guard = Robust.Guard

type stats = {
  calls : int;
  rejected : int;
  rejected_static : int;
  rejected_budget : int;
  rejected_differential : int;
  seconds : float;
}

type t = {
  static_valuations : Valuation.t list;
  max_bytes : int option;
  max_flops : int option;
  budget_valuations : Valuation.t list;
  differential : Differential.config option;
  check_valuations : Valuation.t list;
  mutex : Mutex.t;
  mutable calls : int;
  mutable rejected_static : int;
  mutable rejected_budget : int;
  mutable rejected_differential : int;
  mutable seconds : float;
}

let create ?(static = []) ?max_bytes ?max_flops ?(valuations = []) ?differential
    ?check_valuations () =
  {
    static_valuations = static;
    max_bytes;
    max_flops;
    budget_valuations = valuations;
    differential;
    check_valuations = Option.value check_valuations ~default:valuations;
    mutex = Mutex.create ();
    calls = 0;
    rejected_static = 0;
    rejected_budget = 0;
    rejected_differential = 0;
    seconds = 0.0;
  }

let active t =
  t.static_valuations <> []
  || ((t.max_bytes <> None || t.max_flops <> None) && t.budget_valuations <> [])
  || (t.differential <> None && t.check_valuations <> [])

(* Stage order is load-bearing: static verification allocates nothing,
   budgets are pure arithmetic, and only then does differential
   validation compile and run the candidate on real tensors. *)
let decide t op =
  match
    if t.static_valuations = [] then Ok ()
    else Analysis.Verify.admit op t.static_valuations
  with
  | Error _ as e -> (e, `Static)
  | Ok () -> (
      match
        Budget.admit ?max_bytes:t.max_bytes ?max_flops:t.max_flops op t.budget_valuations
      with
      | Error _ as e -> (e, `Budget)
      | Ok () -> (
          match t.differential with
          | None -> (Ok (), `Differential)
          | Some config ->
              (Differential.admit ~config op t.check_valuations, `Differential)))

let gate t op =
  let t0 = Unix.gettimeofday () in
  let result, stage = decide t op in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  t.calls <- t.calls + 1;
  (match (result, stage) with
  | Ok (), _ -> ()
  | Error _, `Static -> t.rejected_static <- t.rejected_static + 1
  | Error _, `Budget -> t.rejected_budget <- t.rejected_budget + 1
  | Error _, `Differential -> t.rejected_differential <- t.rejected_differential + 1);
  t.seconds <- t.seconds +. dt;
  Mutex.unlock t.mutex;
  result

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      calls = t.calls;
      rejected = t.rejected_static + t.rejected_budget + t.rejected_differential;
      rejected_static = t.rejected_static;
      rejected_budget = t.rejected_budget;
      rejected_differential = t.rejected_differential;
      seconds = t.seconds;
    }
  in
  Mutex.unlock t.mutex;
  s
