module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Guard = Robust.Guard

type stats = {
  calls : int;
  rejected : int;
  rejected_replay : int;
  rejected_static : int;
  rejected_budget : int;
  rejected_differential : int;
  distilled : int;
  seconds : float;
  replay_seconds : float;
  static_seconds : float;
  budget_seconds : float;
  differential_seconds : float;
}

type t = {
  corpus : Corpus.t option;
  static_valuations : Valuation.t list;
  max_bytes : int option;
  max_flops : int option;
  budget_valuations : Valuation.t list;
  differential : Differential.config option;
  check_valuations : Valuation.t list;
  mutex : Mutex.t;
  mutable calls : int;
  mutable rejected_replay : int;
  mutable rejected_static : int;
  mutable rejected_budget : int;
  mutable rejected_differential : int;
  mutable distilled : int;
  mutable seconds : float;
  mutable replay_seconds : float;
  mutable static_seconds : float;
  mutable budget_seconds : float;
  mutable differential_seconds : float;
}

let create ?corpus ?(static = []) ?max_bytes ?max_flops ?(valuations = []) ?differential
    ?check_valuations () =
  {
    corpus;
    static_valuations = static;
    max_bytes;
    max_flops;
    budget_valuations = valuations;
    differential;
    check_valuations = Option.value check_valuations ~default:valuations;
    mutex = Mutex.create ();
    calls = 0;
    rejected_replay = 0;
    rejected_static = 0;
    rejected_budget = 0;
    rejected_differential = 0;
    distilled = 0;
    seconds = 0.0;
    replay_seconds = 0.0;
    static_seconds = 0.0;
    budget_seconds = 0.0;
    differential_seconds = 0.0;
  }

let corpus t = t.corpus

let active t =
  t.corpus <> None || t.static_valuations <> []
  || ((t.max_bytes <> None || t.max_flops <> None) && t.budget_valuations <> [])
  || (t.differential <> None && t.check_valuations <> [])

(* The static stage inlined (rather than [Analysis.Verify.admit]) so a
   violation surfaces with the valuation it was proven at — exactly
   what a distilled counterexample must record. *)
let static_check t op =
  let rec go = function
    | [] -> Ok ()
    | v :: rest -> (
        match Analysis.Verify.program_opt op v with
        | None | Some Analysis.Verify.Proved | Some (Analysis.Verify.Padded _) -> go rest
        | Some (Analysis.Verify.Violation d) -> Error (v, d))
  in
  go t.static_valuations

(* Stage order is load-bearing: corpus replay touches a tensor only
   for family siblings (and nothing at all on the exact-signature fast
   path), static verification allocates nothing, budgets are pure
   arithmetic, and only then does differential validation compile and
   run the candidate on real tensors.  Failures the two expensive
   provers find are distilled back into the corpus, so the cheapest
   stage hardens as the search runs. *)
let gate t op =
  let t0 = Unix.gettimeofday () in
  let replay_dt = ref 0.0 in
  let static_dt = ref 0.0 in
  let budget_dt = ref 0.0 in
  let diff_dt = ref 0.0 in
  let distilled = ref 0 in
  let timed acc f =
    let s = Unix.gettimeofday () in
    let r = f () in
    acc := !acc +. (Unix.gettimeofday () -. s);
    r
  in
  let distill entry =
    match t.corpus with
    | Some c -> if Corpus.add c entry then incr distilled
    | None -> ()
  in
  let result, stage =
    match
      timed replay_dt (fun () ->
          match t.corpus with None -> Ok () | Some c -> Corpus.replay c op)
    with
    | Error _ as e -> (e, `Replay)
    | Ok () -> (
        match timed static_dt (fun () -> static_check t op) with
        | Error (v, d) ->
            distill (Corpus.of_static op v d);
            ( Error (Guard.Static_violation (Analysis.Verify.diagnostic_to_string d)),
              `Static )
        | Ok () -> (
            match
              timed budget_dt (fun () ->
                  Budget.admit ?max_bytes:t.max_bytes ?max_flops:t.max_flops op
                    t.budget_valuations)
            with
            | Error _ as e -> (e, `Budget)
            | Ok () -> (
                match t.differential with
                | None -> (Ok (), `Differential)
                | Some config -> (
                    match
                      timed diff_dt (fun () ->
                          Differential.check_full ~config op t.check_valuations)
                    with
                    | Ok _ -> (Ok (), `Differential)
                    | Error f ->
                        distill (Corpus.of_differential ~tolerance:config.tolerance op f);
                        (Error f.Differential.fl_kind, `Differential)))))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  t.calls <- t.calls + 1;
  (match (result, stage) with
  | Ok (), _ -> ()
  | Error _, `Replay -> t.rejected_replay <- t.rejected_replay + 1
  | Error _, `Static -> t.rejected_static <- t.rejected_static + 1
  | Error _, `Budget -> t.rejected_budget <- t.rejected_budget + 1
  | Error _, `Differential -> t.rejected_differential <- t.rejected_differential + 1);
  t.distilled <- t.distilled + !distilled;
  t.seconds <- t.seconds +. dt;
  t.replay_seconds <- t.replay_seconds +. !replay_dt;
  t.static_seconds <- t.static_seconds +. !static_dt;
  t.budget_seconds <- t.budget_seconds +. !budget_dt;
  t.differential_seconds <- t.differential_seconds +. !diff_dt;
  Mutex.unlock t.mutex;
  result

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      calls = t.calls;
      rejected =
        t.rejected_replay + t.rejected_static + t.rejected_budget + t.rejected_differential;
      rejected_replay = t.rejected_replay;
      rejected_static = t.rejected_static;
      rejected_budget = t.rejected_budget;
      rejected_differential = t.rejected_differential;
      distilled = t.distilled;
      seconds = t.seconds;
      replay_seconds = t.replay_seconds;
      static_seconds = t.static_seconds;
      budget_seconds = t.budget_seconds;
      differential_seconds = t.differential_seconds;
    }
  in
  Mutex.unlock t.mutex;
  s
