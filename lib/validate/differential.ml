module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Guard = Robust.Guard
module Inject = Robust.Inject
module Reference = Lower.Reference
module Einsum_program = Lower.Einsum_program
module Staged_exec = Lower.Staged_exec

type backend = Reference | Einsum | Staged

let backend_label = function
  | Reference -> "reference"
  | Einsum -> "einsum"
  | Staged -> "staged"

let backends = [ Reference; Einsum; Staged ]

type fault_mode = Corrupt_output | Corrupt_expr

type fault = { f_backend : backend; f_inject : Inject.t; f_mode : fault_mode }

let fault ?(seed = 0) ?(rate = 1.0) ?(mode = Corrupt_output) backend =
  { f_backend = backend; f_inject = Inject.create ~seed ~rate (); f_mode = mode }

let fault_count f = Inject.injected_count f.f_inject

(* A seeded out-of-bounds gather: shift the first input coordinate
   expression two extents past its window, so its range can never
   intersect [0, extent).  Every backend zero-clips out-of-window
   reads (see [Reference.iter_points]), so all three agree on an
   all-zero gather and differential comparison alone cannot see the
   fault — the static verifier rejects it as a bounds [Violation]. *)
let corrupt_operator (op : Graph.operator) =
  match (op.Graph.op_input_exprs, op.Graph.op_input_shape) with
  | e :: es, s :: _ ->
      let shifted = Ast.add e (Ast.Size_const (Size.mul (Size.of_int 2) s)) in
      { op with Graph.op_input_exprs = shifted :: es }
  | _ -> op

type config = { tolerance : float; seed : int; fault : fault option }

let default_config = { tolerance = 1e-6; seed = 0; fault = None }

let config ?(tolerance = default_config.tolerance) ?(seed = default_config.seed)
    ?fault () =
  if not (tolerance > 0.0) then invalid_arg "Differential.config: tolerance must be > 0";
  { tolerance; seed; fault }

type report = {
  rep_valuations : int;
  rep_elements : int;
  rep_max_rel_err : float;
}

let empty_report = { rep_valuations = 0; rep_elements = 0; rep_max_rel_err = 0.0 }

(* A seeded miscompile: corrupt one deterministic element of the chosen
   backend's output.  The offset depends only on (key, numel) and the
   injected absolute error is >= 1, far outside any sane tolerance. *)
let maybe_corrupt config ~key backend out =
  match config.fault with
  | Some f
    when f.f_mode = Corrupt_output && f.f_backend = backend
         && Inject.should_fail f.f_inject ~key ~attempt:0 ->
      Inject.note f.f_inject;
      let n = Tensor.numel out in
      if n > 0 then begin
        let i = Hashtbl.hash (key, "miscompile") mod n in
        let v = Tensor.flat_get out i in
        Tensor.flat_set out i (v +. 1.0 +. Float.abs v)
      end
  | Some _ | None -> ()

let run_backend config ~key op valuation ~input ~weights backend =
  let forward () =
    match backend with
    | Reference ->
        let t = Reference.compile op valuation in
        Reference.forward t ~input ~weights
    | Einsum ->
        let t = Einsum_program.compile op valuation in
        Einsum_program.forward t ~input ~weights
    | Staged ->
        let t = Staged_exec.compile op valuation in
        Staged_exec.forward t ~input ~weights
  in
  match forward () with
  | exception Failure msg ->
      Error (Guard.Eval_error (Printf.sprintf "validate(%s): %s" (backend_label backend) msg))
  | out ->
      maybe_corrupt config ~key backend out;
      Ok out

let all_finite t =
  let data = Tensor.unsafe_data t in
  let n = Array.length data in
  let rec go i = i >= n || (Float.is_finite data.(i) && go (i + 1)) in
  go 0

(* Hybrid absolute/relative comparison against the reference value:
   |a - r| <= tol * (1 + |r|), so tiny outputs are compared absolutely
   and large ones relatively. *)
let compare_against config ~backend reference candidate =
  if Tensor.shape reference <> Tensor.shape candidate then
    Error
      (Guard.Backend_mismatch
         (Printf.sprintf "%s: output shape differs from reference" (backend_label backend)))
  else begin
    let r = Tensor.unsafe_data reference in
    let c = Tensor.unsafe_data candidate in
    let max_rel = ref 0.0 in
    let violation = ref None in
    Array.iteri
      (fun i rv ->
        let cv = c.(i) in
        let scale = 1.0 +. Float.abs rv in
        let rel = Float.abs (cv -. rv) /. scale in
        if rel > !max_rel then max_rel := rel;
        if rel > config.tolerance && !violation = None then violation := Some (i, rv, cv))
      r;
    match !violation with
    | Some (i, rv, cv) ->
        Error
          (Guard.Backend_mismatch
             (Printf.sprintf "%s[%d] = %h, reference = %h (rel err %.3e > tol %.3e)"
                (backend_label backend) i cv rv !max_rel config.tolerance))
    | None -> Ok !max_rel
  end

(* [Ok None]: the operator is not instantiable at this valuation —
   there is nothing to execute, so nothing to cross-check.  Skipping
   (rather than erroring) keeps the gate's verdict independent of which
   tiny validation shapes the caller picked: admission must never
   quarantine a candidate the un-validated search would have scored. *)
let check_valuation config ~key op valuation =
  let ( let* ) = Result.bind in
  match Reference.compile op valuation with
  | exception Failure _ -> Ok None
  | compiled -> (
      let rng = Nd.Rng.create ~seed:(config.seed lxor (Hashtbl.hash key land 0x3fffffff)) in
      let input = Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0 (Reference.input_shape compiled) in
      let weights = Reference.init_weights compiled rng in
      match Reference.forward compiled ~input ~weights with
      | exception Failure msg -> Error (Guard.Eval_error ("validate(reference): " ^ msg))
      | reference ->
          maybe_corrupt config ~key Reference reference;
          if not (all_finite reference) then
            Error (Guard.Backend_mismatch "reference: non-finite output on finite inputs")
          else
            let check_one backend =
              let* out = run_backend config ~key op valuation ~input ~weights backend in
              if not (all_finite out) then
                Error
                  (Guard.Backend_mismatch
                     (Printf.sprintf "%s: non-finite output on finite inputs"
                        (backend_label backend)))
              else compare_against config ~backend reference out
            in
            let* rel_e = check_one Einsum in
            let* rel_s = check_one Staged in
            Ok (Some (Tensor.numel reference, Float.max rel_e rel_s)))

let check ?(config = default_config) op valuations =
  let key = Graph.operator_signature op in
  let op =
    match config.fault with
    | Some f when f.f_mode = Corrupt_expr && Inject.should_fail f.f_inject ~key ~attempt:0 ->
        Inject.note f.f_inject;
        corrupt_operator op
    | Some _ | None -> op
  in
  let rec go acc = function
    | [] -> Ok acc
    | v :: rest -> (
        match check_valuation config ~key op v with
        | Ok None -> go acc rest
        | Ok (Some (elems, rel)) ->
            go
              {
                rep_valuations = acc.rep_valuations + 1;
                rep_elements = acc.rep_elements + elems;
                rep_max_rel_err = Float.max acc.rep_max_rel_err rel;
              }
              rest
        | Error _ as e -> e)
  in
  go empty_report valuations

let admit ?config op valuations = Result.map (fun _ -> ()) (check ?config op valuations)
