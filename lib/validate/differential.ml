module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast
module Graph = Pgraph.Graph
module Tensor = Nd.Tensor
module Guard = Robust.Guard
module Inject = Robust.Inject
module Reference = Lower.Reference
module Einsum_program = Lower.Einsum_program
module Staged_exec = Lower.Staged_exec

type backend = Reference | Einsum | Staged

let backend_label = function
  | Reference -> "reference"
  | Einsum -> "einsum"
  | Staged -> "staged"

let backend_of_label = function
  | "reference" -> Some Reference
  | "einsum" -> Some Einsum
  | "staged" -> Some Staged
  | _ -> None

let backends = [ Reference; Einsum; Staged ]

type fault_mode = Corrupt_output | Corrupt_expr

type fault = { f_backend : backend; f_inject : Inject.t; f_mode : fault_mode }

let fault ?(seed = 0) ?(rate = 1.0) ?(mode = Corrupt_output) backend =
  { f_backend = backend; f_inject = Inject.create ~seed ~rate (); f_mode = mode }

let fault_count f = Inject.injected_count f.f_inject

(* A seeded out-of-bounds gather: shift the first input coordinate
   expression two extents past its window, so its range can never
   intersect [0, extent).  Every backend zero-clips out-of-window
   reads (see [Reference.iter_points]), so all three agree on an
   all-zero gather and differential comparison alone cannot see the
   fault — the static verifier rejects it as a bounds [Violation]. *)
let corrupt_operator (op : Graph.operator) =
  match (op.Graph.op_input_exprs, op.Graph.op_input_shape) with
  | e :: es, s :: _ ->
      let shifted = Ast.add e (Ast.Size_const (Size.mul (Size.of_int 2) s)) in
      { op with Graph.op_input_exprs = shifted :: es }
  | _ -> op

type config = { tolerance : float; seed : int; fault : fault option }

let default_config = { tolerance = 1e-6; seed = 0; fault = None }

let config ?(tolerance = default_config.tolerance) ?(seed = default_config.seed)
    ?fault () =
  if not (tolerance > 0.0) then invalid_arg "Differential.config: tolerance must be > 0";
  { tolerance; seed; fault }

(* The input/weight RNG seed is a pure function of (config seed,
   operator signature) so verdicts are reproducible and independent of
   evaluation order — and so a distilled counterexample can record the
   derived value and replay the exact same tensors later. *)
let derive_seed ~seed key = seed lxor (Hashtbl.hash key land 0x3fffffff)

type pair_stats = {
  ps_backend : backend;
  ps_max_abs_err : float;
  ps_max_rel_err : float;
  ps_first_fail : (int * float * float) option;
}

type report = {
  rep_valuations : int;
  rep_elements : int;
  rep_max_rel_err : float;
  rep_pairs : pair_stats list;
}

let empty_report =
  { rep_valuations = 0; rep_elements = 0; rep_max_rel_err = 0.0; rep_pairs = [] }

type failure = {
  fl_kind : Guard.kind;
  fl_valuation : Valuation.t;
  fl_seed : int;  (** the derived RNG seed the failing tensors came from *)
  fl_backend : backend option;
  fl_index : int option;
  fl_expected : float option;
  fl_got : float option;
  fl_abs_err : float;
}

(* A seeded miscompile: corrupt one deterministic element of the chosen
   backend's output.  The offset depends only on (key, numel) and the
   injected absolute error is >= 1, far outside any sane tolerance. *)
let maybe_corrupt config ~key backend out =
  match config.fault with
  | Some f
    when f.f_mode = Corrupt_output && f.f_backend = backend
         && Inject.should_fail f.f_inject ~key ~attempt:0 ->
      Inject.note f.f_inject;
      let n = Tensor.numel out in
      if n > 0 then begin
        let i = Hashtbl.hash (key, "miscompile") mod n in
        let v = Tensor.flat_get out i in
        Tensor.flat_set out i (v +. 1.0 +. Float.abs v)
      end
  | Some _ | None -> ()

let compile_and_forward op valuation ~input ~weights backend =
  match backend with
  | Reference ->
      let t = Reference.compile op valuation in
      Reference.forward t ~input ~weights
  | Einsum ->
      let t = Einsum_program.compile op valuation in
      Einsum_program.forward t ~input ~weights
  | Staged ->
      let t = Staged_exec.compile op valuation in
      Staged_exec.forward t ~input ~weights

let run_backend config ~key op valuation ~input ~weights backend =
  match compile_and_forward op valuation ~input ~weights backend with
  | exception Failure msg ->
      Error (Guard.Eval_error (Printf.sprintf "validate(%s): %s" (backend_label backend) msg))
  | out ->
      maybe_corrupt config ~key backend out;
      Ok out

let first_non_finite t =
  let data = Tensor.unsafe_data t in
  let n = Array.length data in
  let rec go i =
    if i >= n then None else if Float.is_finite data.(i) then go (i + 1) else Some i
  in
  go 0

let all_finite t = first_non_finite t = None

(* Hybrid absolute/relative comparison against the reference value:
   |a - r| <= tol * (1 + |r|), so tiny outputs are compared absolutely
   and large ones relatively.  Returns the per-pair statistics the
   report (and a distilled counterexample) records: worst absolute and
   relative errors plus the first element beyond tolerance. *)
let compare_data ~tolerance r c =
  let max_abs = ref 0.0 in
  let max_rel = ref 0.0 in
  let violation = ref None in
  Array.iteri
    (fun i rv ->
      let cv = c.(i) in
      let abs = Float.abs (cv -. rv) in
      let rel = abs /. (1.0 +. Float.abs rv) in
      if abs > !max_abs then max_abs := abs;
      if rel > !max_rel then max_rel := rel;
      if rel > tolerance && !violation = None then violation := Some (i, rv, cv))
    r;
  (!max_abs, !max_rel, !violation)

let compare_against config ~backend reference candidate =
  if Tensor.shape reference <> Tensor.shape candidate then
    Error
      ( Guard.Backend_mismatch
          (Printf.sprintf "%s: output shape differs from reference" (backend_label backend)),
        None )
  else begin
    let max_abs, max_rel, violation =
      compare_data ~tolerance:config.tolerance
        (Tensor.unsafe_data reference)
        (Tensor.unsafe_data candidate)
    in
    match violation with
    | Some (i, rv, cv) ->
        Error
          ( Guard.Backend_mismatch
              (Printf.sprintf
                 "%s[%d] = %h, reference = %h (abs err %.3e, rel err %.3e > tol %.3e)"
                 (backend_label backend) i cv rv max_abs max_rel config.tolerance),
            Some (i, rv, cv, max_abs) )
    | None ->
        Ok
          {
            ps_backend = backend;
            ps_max_abs_err = max_abs;
            ps_max_rel_err = max_rel;
            ps_first_fail = None;
          }
  end

(* [Ok None]: the operator is not instantiable at this valuation —
   there is nothing to execute, so nothing to cross-check.  Skipping
   (rather than erroring) keeps the gate's verdict independent of which
   tiny validation shapes the caller picked: admission must never
   quarantine a candidate the un-validated search would have scored. *)
let check_valuation config ~key op valuation =
  let seed = derive_seed ~seed:config.seed key in
  let fail ?backend ?index ?expected ?got ?(abs_err = 0.0) kind =
    Error
      {
        fl_kind = kind;
        fl_valuation = valuation;
        fl_seed = seed;
        fl_backend = backend;
        fl_index = index;
        fl_expected = expected;
        fl_got = got;
        fl_abs_err = abs_err;
      }
  in
  match Reference.compile op valuation with
  | exception Failure _ -> Ok None
  | compiled -> (
      let rng = Nd.Rng.create ~seed in
      let input = Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0 (Reference.input_shape compiled) in
      let weights = Reference.init_weights compiled rng in
      match Reference.forward compiled ~input ~weights with
      | exception Failure msg -> fail (Guard.Eval_error ("validate(reference): " ^ msg))
      | reference -> (
          maybe_corrupt config ~key Reference reference;
          match first_non_finite reference with
          | Some i ->
              fail ~backend:Reference ~index:i
                ~got:(Tensor.flat_get reference i)
                (Guard.Backend_mismatch "reference: non-finite output on finite inputs")
          | None ->
              let check_one backend =
                match run_backend config ~key op valuation ~input ~weights backend with
                | Error kind -> fail ~backend kind
                | Ok out -> (
                    match first_non_finite out with
                    | Some i ->
                        fail ~backend ~index:i
                          ~expected:(Tensor.flat_get reference i)
                          ~got:(Tensor.flat_get out i)
                          (Guard.Backend_mismatch
                             (Printf.sprintf "%s: non-finite output on finite inputs"
                                (backend_label backend)))
                    | None -> (
                        match compare_against config ~backend reference out with
                        | Ok stats -> Ok stats
                        | Error (kind, Some (i, rv, cv, abs)) ->
                            fail ~backend ~index:i ~expected:rv ~got:cv ~abs_err:abs kind
                        | Error (kind, None) -> fail ~backend kind))
              in
              let ( let* ) = Result.bind in
              let* stats_e = check_one Einsum in
              let* stats_s = check_one Staged in
              Ok (Some (Tensor.numel reference, [ stats_e; stats_s ]))))

(* Fold the per-valuation pair statistics into one worst-case entry per
   backend, so the report stays small no matter how many valuations
   were cross-checked. *)
let merge_pairs acc stats =
  List.fold_left
    (fun acc s ->
      match List.partition (fun p -> p.ps_backend = s.ps_backend) acc with
      | [], rest -> s :: rest
      | p :: _, rest ->
          {
            ps_backend = s.ps_backend;
            ps_max_abs_err = Float.max p.ps_max_abs_err s.ps_max_abs_err;
            ps_max_rel_err = Float.max p.ps_max_rel_err s.ps_max_rel_err;
            ps_first_fail = (if p.ps_first_fail <> None then p.ps_first_fail else s.ps_first_fail);
          }
          :: rest)
    acc stats

let check_full ?(config = default_config) op valuations =
  let key = Graph.operator_signature op in
  let op =
    match config.fault with
    | Some f when f.f_mode = Corrupt_expr && Inject.should_fail f.f_inject ~key ~attempt:0 ->
        Inject.note f.f_inject;
        corrupt_operator op
    | Some _ | None -> op
  in
  let rec go acc = function
    | [] -> Ok acc
    | v :: rest -> (
        match check_valuation config ~key op v with
        | Ok None -> go acc rest
        | Ok (Some (elems, stats)) ->
            let rel =
              List.fold_left (fun m s -> Float.max m s.ps_max_rel_err) acc.rep_max_rel_err
                stats
            in
            go
              {
                rep_valuations = acc.rep_valuations + 1;
                rep_elements = acc.rep_elements + elems;
                rep_max_rel_err = rel;
                rep_pairs = merge_pairs acc.rep_pairs stats;
              }
              rest
        | Error _ as e -> e)
  in
  go empty_report valuations

let check ?config op valuations =
  Result.map_error (fun f -> f.fl_kind) (check_full ?config op valuations)

let admit ?config op valuations = Result.map (fun _ -> ()) (check ?config op valuations)

(* Replay one recorded (valuation, seed, backend) counterexample
   against a fresh candidate: the exact tensors the original failure
   ran on, but only the single backend pair that diverged — roughly
   half the tensor work of a full three-backend cross-check at one
   valuation, with no fault injection in the loop.  A candidate that is
   not instantiable at the recorded valuation passes vacuously, for the
   same reason [check] skips such valuations. *)
let replay_pair ~tolerance ~seed ~backend op valuation =
  match Reference.compile op valuation with
  | exception Failure _ -> Ok ()
  | compiled -> (
      let rng = Nd.Rng.create ~seed in
      let input = Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0 (Reference.input_shape compiled) in
      let weights = Reference.init_weights compiled rng in
      match Reference.forward compiled ~input ~weights with
      | exception Failure msg -> Error (Guard.Eval_error ("replay(reference): " ^ msg))
      | reference -> (
          if not (all_finite reference) then
            Error (Guard.Backend_mismatch "reference: non-finite output on finite inputs")
          else
            match backend with
            | Reference -> Ok ()
            | _ -> (
                match compile_and_forward op valuation ~input ~weights backend with
                | exception Failure msg ->
                    Error
                      (Guard.Eval_error
                         (Printf.sprintf "replay(%s): %s" (backend_label backend) msg))
                | out ->
                    if not (all_finite out) then
                      Error
                        (Guard.Backend_mismatch
                           (Printf.sprintf "%s: non-finite output on finite inputs"
                              (backend_label backend)))
                    else
                      Result.map
                        (fun (_ : pair_stats) -> ())
                        (Result.map_error fst
                           (compare_against
                              { tolerance; seed = 0; fault = None }
                              ~backend reference out)))))
