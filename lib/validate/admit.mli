(** The composed admission gate: resource budgets ({!Budget}) first —
    pure pGraph arithmetic, no tensor ever allocated — then
    differential validation ({!Differential}) for candidates that fit.

    The gate has the exact shape [Search.Mcts] expects for its [?admit]
    hook, and keeps thread-safe running statistics (calls, rejections,
    wall-clock spent) so benches can report validator overhead. *)

type t

type stats = {
  calls : int;  (** candidates gated *)
  rejected : int;  (** candidates refused admission *)
  seconds : float;  (** total wall-clock spent inside the gate *)
}

val create :
  ?max_bytes:int ->
  ?max_flops:int ->
  ?valuations:Shape.Valuation.t list ->
  ?differential:Differential.config ->
  ?check_valuations:Shape.Valuation.t list ->
  unit ->
  t
(** Budgets are enforced under [valuations] (the search valuations,
    where evaluation would actually allocate); differential validation
    runs under [check_valuations] (defaulting to [valuations] — pass
    a smaller valuation list to keep the validator cheap). *)

val active : t -> bool
(** Whether the gate can ever reject (some budget or the differential
    validator is configured with a non-empty valuation list). *)

val gate : t -> Pgraph.Graph.operator -> (unit, Robust.Guard.kind) result
(** Run the gate on one candidate, recording stats.  Thread-safe. *)

val stats : t -> stats
