(** The composed admission gate, cheapest stage first: counterexample
    replay ({!Corpus}) — exact-signature hits are rejected with zero
    tensor work, family siblings re-execute only the recorded failing
    inputs — then static bounds verification ({!Analysis.Verify}) —
    interval arithmetic over the coordinate expressions, no tensor ever
    allocated — then resource budgets ({!Budget}) — pure pGraph
    arithmetic — then differential validation ({!Differential}) for
    candidates that survive everything.

    Failures found by the two provers are {e distilled} back into the
    corpus (when one is attached and writable), so the replay stage
    hardens as the search runs: the CEGIS loop.

    The gate has the exact shape [Search.Mcts] expects for its [?admit]
    hook, and keeps thread-safe running statistics (calls, rejections
    and wall-clock per stage, counterexamples distilled) so benches can
    report validator overhead. *)

type t

type stats = {
  calls : int;  (** candidates gated *)
  rejected : int;  (** candidates refused admission (all stages) *)
  rejected_replay : int;  (** refused by counterexample replay *)
  rejected_static : int;  (** refused by static bounds verification *)
  rejected_budget : int;  (** refused by resource budgets *)
  rejected_differential : int;  (** refused by differential validation *)
  distilled : int;  (** counterexamples added to the corpus *)
  seconds : float;  (** total wall-clock spent inside the gate *)
  replay_seconds : float;  (** wall-clock spent in the replay stage *)
  static_seconds : float;  (** wall-clock spent in the static stage *)
  budget_seconds : float;  (** wall-clock spent in the budget stage *)
  differential_seconds : float;  (** wall-clock spent in differential validation *)
}

val create :
  ?corpus:Corpus.t ->
  ?static:Shape.Valuation.t list ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?valuations:Shape.Valuation.t list ->
  ?differential:Differential.config ->
  ?check_valuations:Shape.Valuation.t list ->
  unit ->
  t
(** [corpus] attaches a counterexample corpus: candidates are replayed
    against it first, and static/differential failures are distilled
    into it (unless it is readonly).  [static] valuations drive the
    interval verifier (empty — the default — disables the static stage;
    valuations where the operator is not instantiable are skipped,
    mirroring the differential gate's skip rule).  Budgets are enforced
    under [valuations] (the search valuations, where evaluation would
    actually allocate); differential validation runs under
    [check_valuations] (defaulting to [valuations] — pass a smaller
    valuation list to keep the validator cheap). *)

val corpus : t -> Corpus.t option
(** The attached corpus, if any (so callers can flush/report it). *)

val active : t -> bool
(** Whether the gate can ever reject (a corpus is attached, or the
    static verifier, some budget, or the differential validator is
    configured with a non-empty valuation list). *)

val gate : t -> Pgraph.Graph.operator -> (unit, Robust.Guard.kind) result
(** Run the gate on one candidate, recording stats.  Thread-safe.
    Replay rejections surface as [Guard.Counterexample], static
    violations as [Guard.Static_violation]. *)

val stats : t -> stats
